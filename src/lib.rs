//! # flov-repro — umbrella crate for the Fly-Over (FLOV) reproduction
//!
//! Re-exports the workspace crates so examples and downstream users can
//! depend on one name:
//!
//! * [`noc`](flov_noc) — the cycle-accurate 2D-mesh NoC simulator,
//! * [`core`](flov_core) — the FLOV mechanism (rFLOV/gFLOV, partition
//!   routing, escape network) and the Router Parking baseline,
//! * [`power`](flov_power) — the 32 nm power/energy/area model,
//! * [`workloads`](flov_workloads) — synthetic + PARSEC-proxy traffic,
//! * [`bench`](flov_bench) — the experiment harness regenerating every
//!   table and figure of the paper.
//!
//! See the repository README for the quickstart and EXPERIMENTS.md for the
//! measured-vs-paper results.
//!
//! ```
//! use flov_repro::prelude::*;
//!
//! let cfg = NocConfig::paper_table1();
//! let mech = mechanism::by_name("gFLOV", &cfg).unwrap();
//! let workload = SyntheticWorkload::new(
//!     cfg.k, Pattern::UniformRandom, 0.02, cfg.synth_packet_len, 5_000,
//!     GatingSchedule::static_fraction(cfg.nodes(), 0.5, 1, &[]), 42,
//! );
//! let mut sim = Simulation::new(cfg, mech, Box::new(workload));
//! sim.run(5_000);
//! sim.drain(100_000);
//! assert!(sim.core.is_empty());
//! ```

pub use flov_bench as bench;
pub use flov_core as core;
pub use flov_noc as noc;
pub use flov_power as power;
pub use flov_workloads as workloads;

/// The most common imports in one place.
pub mod prelude {
    pub use flov_core::mechanism;
    pub use flov_core::{Flov, FlovMode, FlovParams, RouterParking, RpMode};
    pub use flov_noc::baseline::AlwaysOnYx;
    pub use flov_noc::network::{NetworkCore, Simulation};
    pub use flov_noc::traits::{PacketRequest, PowerMechanism, Workload};
    pub use flov_noc::{NocConfig, PowerState};
    pub use flov_power::{GatedResidual, PowerParams};
    pub use flov_workloads::{GatingSchedule, ParsecWorkload, Pattern, SyntheticWorkload};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_covers_a_full_run() {
        let cfg = NocConfig::small_test();
        let mech = mechanism::by_name("rFLOV", &cfg).unwrap();
        let w = SyntheticWorkload::new(
            cfg.k,
            Pattern::Tornado,
            0.03,
            cfg.synth_packet_len,
            2_000,
            GatingSchedule::static_fraction(cfg.nodes(), 0.25, 3, &[]),
            9,
        );
        let mut sim = Simulation::new(cfg, mech, Box::new(w));
        sim.run(2_000);
        sim.drain(50_000);
        assert!(sim.core.is_empty());
        assert!(sim.core.activity.packets_delivered > 0);
    }
}
