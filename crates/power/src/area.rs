//! Area-overhead model reproducing the paper's §V-A analysis.
//!
//! The paper quantifies the FLOV additions — 4 muxes, 4 demuxes, 4 output
//! latches, two 4-entry 2-bit PSR sets, the HSC FSM and its 6-bit
//! inter-router wires, and CCL modifications — at 2.8e-3 mm², i.e. 3% of
//! the baseline router area in 32 nm, with HSC wiring alone ~0.1%.

use serde::{Deserialize, Serialize};

/// Area model of one router at 32 nm \[mm^2\].
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct AreaModel {
    /// Baseline 5-port 3-stage VC router (buffers, crossbar, allocators).
    pub baseline_router_mm2: f64,
    /// One 128-bit output latch.
    pub latch_mm2: f64,
    /// One 128-bit 2:1 mux or 1:2 demux.
    pub mux_mm2: f64,
    /// Power State Registers: bits total (2 sets x 4 entries x 2 bits).
    pub psr_bits: u32,
    /// Area per register bit.
    pub per_bit_mm2: f64,
    /// HSC FSM + CCL modifications.
    pub hsc_fsm_mm2: f64,
    /// HSC inter-router wiring (6 bits per neighbor).
    pub hsc_wires_mm2: f64,
}

impl Default for AreaModel {
    fn default() -> Self {
        AreaModel {
            baseline_router_mm2: 0.0933,
            latch_mm2: 3.2e-4,
            mux_mm2: 1.35e-4,
            psr_bits: 16,
            per_bit_mm2: 1.0e-6,
            hsc_fsm_mm2: 4.0e-4,
            hsc_wires_mm2: 9.3e-5, // ~0.1% of the baseline router
        }
    }
}

impl AreaModel {
    /// Number of HSC wire bits to each adjacent neighbor (paper §V-A):
    /// 4 bits of power-state change notification (current + logical
    /// neighbor), 1 draining bit, 1 physical-neighbor assertion bit.
    pub const HSC_WIRE_BITS: u32 = 6;

    /// Total area of the FLOV additions per router.
    pub fn flov_overhead_mm2(&self) -> f64 {
        let latches = 4.0 * self.latch_mm2;
        let muxes = 8.0 * self.mux_mm2; // 4 muxes + 4 demuxes
        let psr = self.psr_bits as f64 * self.per_bit_mm2;
        latches + muxes + psr + self.hsc_fsm_mm2 + self.hsc_wires_mm2
    }

    /// Overhead as a fraction of the baseline router area.
    pub fn flov_overhead_fraction(&self) -> f64 {
        self.flov_overhead_mm2() / self.baseline_router_mm2
    }

    /// HSC wiring as a fraction of the baseline router area.
    pub fn hsc_wire_fraction(&self) -> f64 {
        self.hsc_wires_mm2 / self.baseline_router_mm2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_matches_paper_quantization() {
        let m = AreaModel::default();
        // Paper: 2.8e-3 mm^2, 3% of baseline router area.
        let mm2 = m.flov_overhead_mm2();
        assert!((mm2 - 2.8e-3).abs() < 0.2e-3, "overhead {mm2} mm^2");
        let frac = m.flov_overhead_fraction();
        assert!((frac - 0.03).abs() < 0.005, "overhead fraction {frac}");
    }

    #[test]
    fn hsc_wires_are_a_tenth_of_a_percent() {
        let m = AreaModel::default();
        let f = m.hsc_wire_fraction();
        assert!((f - 0.001).abs() < 0.0005, "hsc wire fraction {f}");
    }

    #[test]
    fn psr_is_sixteen_bits() {
        // 2 sets x 4 entries x 2 bits (paper §V-A).
        assert_eq!(AreaModel::default().psr_bits, 16);
        assert_eq!(AreaModel::HSC_WIRE_BITS, 6);
    }
}
