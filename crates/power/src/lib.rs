//! # flov-power — DSENT-style power, energy and area model
//!
//! Converts `flov-noc` activity counters and power-state residency into the
//! static / dynamic / total power numbers of the paper's evaluation, at the
//! Table I technology point (32 nm, 2 GHz, 16-byte flits, 1 mm links,
//! 17.7 pJ gating overhead), plus the §V-A area-overhead analysis.
//!
//! ```
//! use flov_power::{compute, GatedResidual, PowerParams};
//! use flov_noc::activity::{ActivityCounters, Residency};
//!
//! let params = PowerParams::dsent_32nm();
//! let residency = vec![Residency { powered: 1000, gated: 0 }; 64];
//! let report = compute(&params, 8, &ActivityCounters::default(), &residency,
//!                      1000, GatedResidual::FullyOff);
//! assert!(report.static_w > 0.5); // ~1 W for an idle always-on 8x8 mesh
//! ```

pub mod area;
pub mod model;
pub mod params;

pub use area::AreaModel;
pub use model::{
    compute, compute_links, directed_links, residency_delta, DynamicEnergy, GatedResidual,
    PowerReport,
};
pub use params::PowerParams;
