//! Power/energy model parameters at 32 nm, 2 GHz, 128-bit (16 B) flits and
//! 1 mm links — the paper's Table I technology point.
//!
//! The paper uses DSENT with 50% switching activity. DSENT itself is a C++
//! tool we cannot ship, so these are *calibration constants* of the same
//! order of magnitude as DSENT's published 32 nm outputs (router leakage in
//! the low tens of mW; per-flit event energies of a few pJ). Every figure
//! we reproduce compares mechanisms under identical constants, so the
//! relative results — which mechanism wins, by what factor, where the
//! crossovers sit — do not depend on the absolute calibration. The two
//! parameters the paper fixes explicitly (17.7 pJ power-gating overhead,
//! 10-cycle wakeup) are used verbatim.

use serde::{Deserialize, Serialize};

/// Energy-per-event and leakage constants.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PowerParams {
    /// Energy to write one flit into an input buffer \[J\].
    pub e_buffer_write: f64,
    /// Energy to read one flit out of an input buffer \[J\].
    pub e_buffer_read: f64,
    /// Energy for one flit crossbar traversal \[J\].
    pub e_xbar: f64,
    /// Energy per allocator grant (VA or SA) \[J\].
    pub e_arbiter: f64,
    /// Energy per flit per 1 mm 128-bit link traversal \[J\].
    pub e_link: f64,
    /// Energy per flit through a FLOV output latch (latch write + mux) \[J\].
    pub e_flov_latch: f64,
    /// Energy per flit per NoRD bypass-ring hop (ring latch + inter-node
    /// wire) \[J\].
    pub e_ring_hop: f64,
    /// Leakage of one NoRD ring bypass station (latch + muxes), always on
    /// at every node \[W\].
    pub p_ring_node_leak: f64,
    /// Energy per credit message wire hop \[J\].
    pub e_credit: f64,
    /// Energy per HSC handshake signal hop \[J\].
    pub e_handshake: f64,
    /// Energy overhead per power-gating transition \[J\] (Table I: 17.7 pJ).
    pub e_gating_event: f64,
    /// Leakage of one powered baseline router \[W\]
    /// (buffers + crossbar + allocators + clock tree).
    pub p_router_leak: f64,
    /// Leakage of the FLOV additions while a router is gated (output
    /// latches, muxes/demuxes kept alive) \[W\].
    pub p_latch_leak: f64,
    /// Leakage of the always-on handshake control logic \[W\].
    pub p_hsc_leak: f64,
    /// Leakage of one directed 1 mm link (driver + repeaters) \[W\].
    pub p_link_leak: f64,
    /// Clock frequency \[Hz\] used to convert per-cycle energy into power.
    pub clock_hz: f64,
}

impl Default for PowerParams {
    fn default() -> Self {
        Self::dsent_32nm()
    }
}

impl PowerParams {
    /// The 32 nm / 2 GHz calibration used throughout the reproduction.
    pub fn dsent_32nm() -> PowerParams {
        PowerParams {
            e_buffer_write: 4.8e-12,
            e_buffer_read: 3.4e-12,
            e_xbar: 6.6e-12,
            e_arbiter: 0.3e-12,
            e_link: 2.6e-12,
            e_flov_latch: 0.9e-12,
            e_ring_hop: 3.5e-12,
            p_ring_node_leak: 0.35e-3,
            e_credit: 0.05e-12,
            e_handshake: 0.05e-12,
            e_gating_event: 17.7e-12,
            p_router_leak: 13.1e-3,
            p_latch_leak: 0.4e-3,
            p_hsc_leak: 0.05e-3,
            p_link_leak: 1.1e-3,
            clock_hz: 2.0e9,
        }
    }

    /// Total dynamic energy of one flit hop through a powered router plus
    /// its outgoing link (write + read + crossbar + arbitration + wire).
    pub fn e_router_hop(&self) -> f64 {
        self.e_buffer_write + self.e_buffer_read + self.e_xbar + self.e_arbiter + self.e_link
    }

    /// Total dynamic energy of one FLOV fly-over hop (latch + wire): the
    /// per-hop energy advantage FLOV links have over full router traversal.
    pub fn e_flov_hop(&self) -> f64 {
        self.e_flov_latch + self.e_link
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_gating_overhead_is_exact() {
        let p = PowerParams::default();
        assert_eq!(p.e_gating_event, 17.7e-12);
        assert_eq!(p.clock_hz, 2.0e9);
    }

    #[test]
    fn flov_hop_is_much_cheaper_than_router_hop() {
        let p = PowerParams::default();
        assert!(p.e_flov_hop() < p.e_router_hop() / 3.0);
    }

    #[test]
    fn latch_leak_is_small_fraction_of_router_leak() {
        let p = PowerParams::default();
        let frac = p.p_latch_leak / p.p_router_leak;
        assert!(frac > 0.005 && frac < 0.1, "latch leakage fraction {frac}");
    }

    #[test]
    fn magnitudes_are_physical() {
        let p = PowerParams::default();
        // Per-event energies in the pJ range; leakage in the mW range.
        assert!(p.e_router_hop() > 1e-12 && p.e_router_hop() < 100e-12);
        assert!(p.p_router_leak > 1e-3 && p.p_router_leak < 100e-3);
    }
}
