//! Converting simulator activity counters + power-state residency into
//! static/dynamic/total power and energy.

use crate::params::PowerParams;
use flov_noc::activity::{ActivityCounters, Residency};
use serde::{Deserialize, Serialize};

/// What a power-gated router keeps alive, which differs per mechanism:
/// FLOV keeps the output latches and HSC powered (fly-over capability);
/// Router Parking turns routers off completely; the Baseline never gates.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum GatedResidual {
    /// FLOV: latches + muxes + HSC stay on while gated.
    FlovLatches,
    /// RP: nothing stays on in a parked router.
    FullyOff,
    /// NoRD: gated routers are fully off, but every node's ring bypass
    /// station leaks constantly (the ring is always on).
    NordBypass,
}

impl GatedResidual {
    /// Residual for a mechanism by its paper name.
    pub fn for_mechanism(name: &str) -> GatedResidual {
        match name {
            "rFLOV" | "gFLOV" => GatedResidual::FlovLatches,
            "NoRD" => GatedResidual::NordBypass,
            _ => GatedResidual::FullyOff,
        }
    }
}

/// Dynamic-energy breakdown by component \[J\].
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct DynamicEnergy {
    pub buffers: f64,
    /// NoRD bypass-ring hop energy.
    pub ring: f64,
    pub crossbar: f64,
    pub arbitration: f64,
    pub links: f64,
    pub flov_latches: f64,
    pub credits: f64,
    pub handshake: f64,
    pub gating: f64,
}

impl DynamicEnergy {
    pub fn total(&self) -> f64 {
        self.buffers
            + self.ring
            + self.crossbar
            + self.arbitration
            + self.links
            + self.flov_latches
            + self.credits
            + self.handshake
            + self.gating
    }
}

/// Power/energy report over one measurement window.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PowerReport {
    /// Window length in cycles.
    pub cycles: u64,
    /// Window length in seconds.
    pub seconds: f64,
    /// Average static (leakage) power \[W\].
    pub static_w: f64,
    /// Static power of routers alone \[W\].
    pub static_router_w: f64,
    /// Static power of links alone \[W\].
    pub static_link_w: f64,
    /// Average dynamic power \[W\].
    pub dynamic_w: f64,
    /// Dynamic breakdown \[J\] over the window.
    pub dynamic_energy: DynamicEnergy,
    /// static + dynamic \[W\].
    pub total_w: f64,
}

impl PowerReport {
    /// Static energy over the window \[J\].
    pub fn static_j(&self) -> f64 {
        self.static_w * self.seconds
    }

    /// Dynamic energy over the window \[J\].
    pub fn dynamic_j(&self) -> f64 {
        self.dynamic_w * self.seconds
    }

    /// Total energy over the window \[J\].
    pub fn total_j(&self) -> f64 {
        self.total_w * self.seconds
    }
}

/// Number of directed inter-router links in a `k x k` mesh
/// (each bidirectional mesh channel is two directed links).
pub fn directed_links(k: u16) -> u64 {
    4 * k as u64 * (k as u64 - 1)
}

/// Compute the power report for one measurement window.
///
/// * `activity` — counter *delta* over the window;
/// * `residency` — per-router powered/gated cycle counts over the window;
/// * `cycles` — window length;
/// * `residual` — what gated routers keep alive (mechanism-dependent).
pub fn compute(
    params: &PowerParams,
    k: u16,
    activity: &ActivityCounters,
    residency: &[Residency],
    cycles: u64,
    residual: GatedResidual,
) -> PowerReport {
    compute_links(params, directed_links(k), activity, residency, cycles, residual)
}

/// [`compute`] with an explicit directed-link count, for fabrics that are
/// not `k x k` meshes (torus wrap links, rectangular grids).
pub fn compute_links(
    params: &PowerParams,
    links: u64,
    activity: &ActivityCounters,
    residency: &[Residency],
    cycles: u64,
    residual: GatedResidual,
) -> PowerReport {
    assert!(cycles > 0, "empty measurement window");
    let seconds = cycles as f64 / params.clock_hz;
    // Static: leakage weighted by residency.
    let mut static_router_w = 0.0;
    for r in residency {
        let total = r.total().max(1) as f64;
        let powered_frac = r.powered as f64 / total;
        let gated_frac = r.gated as f64 / total;
        static_router_w += powered_frac * params.p_router_leak;
        match residual {
            GatedResidual::FlovLatches => {
                static_router_w += gated_frac * params.p_latch_leak + params.p_hsc_leak;
            }
            GatedResidual::FullyOff => {}
            GatedResidual::NordBypass => {
                static_router_w += params.p_ring_node_leak;
            }
        }
    }
    let static_link_w = links as f64 * params.p_link_leak;
    let static_w = static_router_w + static_link_w;
    // Dynamic: event counts x per-event energies.
    let e = DynamicEnergy {
        buffers: activity.buffer_writes as f64 * params.e_buffer_write
            + activity.buffer_reads as f64 * params.e_buffer_read,
        ring: activity.ring_flits as f64 * params.e_ring_hop,
        crossbar: activity.xbar_traversals as f64 * params.e_xbar,
        arbitration: (activity.sa_grants + activity.va_grants) as f64 * params.e_arbiter,
        links: activity.link_flits as f64 * params.e_link,
        flov_latches: activity.flov_latch_flits as f64 * params.e_flov_latch,
        credits: activity.credit_msgs as f64 * params.e_credit,
        handshake: activity.handshake_signals as f64 * params.e_handshake,
        gating: activity.gating_events as f64 * params.e_gating_event,
    };
    let dynamic_w = e.total() / seconds;
    PowerReport {
        cycles,
        seconds,
        static_w,
        static_router_w,
        static_link_w,
        dynamic_w,
        dynamic_energy: e,
        total_w: static_w + dynamic_w,
    }
}

/// Element-wise residency delta between two snapshots (window extraction).
pub fn residency_delta(end: &[Residency], start: &[Residency]) -> Vec<Residency> {
    assert_eq!(end.len(), start.len());
    end.iter()
        .zip(start)
        .map(|(e, s)| Residency { powered: e.powered - s.powered, gated: e.gated - s.gated })
        .collect()
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)]
mod tests {
    use super::*;

    fn params() -> PowerParams {
        PowerParams::default()
    }

    fn all_powered(n: usize, cycles: u64) -> Vec<Residency> {
        vec![Residency { powered: cycles, gated: 0 }; n]
    }

    #[test]
    fn idle_network_has_zero_dynamic_power() {
        let a = ActivityCounters::default();
        let res = all_powered(64, 1000);
        let r = compute(&params(), 8, &a, &res, 1000, GatedResidual::FullyOff);
        assert_eq!(r.dynamic_w, 0.0);
        assert!(r.static_w > 0.0);
        assert_eq!(r.total_w, r.static_w);
    }

    #[test]
    fn baseline_static_magnitude_plausible() {
        // 64 routers x 13.1 mW + 224 links x 1.1 mW ~ 1.08 W.
        let r = compute(
            &params(),
            8,
            &ActivityCounters::default(),
            &all_powered(64, 100),
            100,
            GatedResidual::FullyOff,
        );
        assert!(r.static_w > 0.8 && r.static_w < 1.5, "static {}", r.static_w);
        assert_eq!(directed_links(8), 224);
    }

    #[test]
    fn gating_reduces_static_power() {
        let full = compute(
            &params(),
            8,
            &ActivityCounters::default(),
            &all_powered(64, 100),
            100,
            GatedResidual::FlovLatches,
        );
        let mut res = all_powered(64, 100);
        for r in res.iter_mut().take(32) {
            *r = Residency { powered: 0, gated: 100 };
        }
        let half = compute(
            &params(),
            8,
            &ActivityCounters::default(),
            &res,
            100,
            GatedResidual::FlovLatches,
        );
        assert!(half.static_w < full.static_w);
        // 32 routers' leakage saved, minus latch residual.
        let saved = full.static_w - half.static_w;
        let expect = 32.0 * (params().p_router_leak - params().p_latch_leak);
        assert!((saved - expect).abs() < 1e-9, "saved {saved} vs {expect}");
    }

    #[test]
    fn rp_gated_router_saves_more_than_flov_gated() {
        let mut res = all_powered(64, 100);
        res[0] = Residency { powered: 0, gated: 100 };
        let a = ActivityCounters::default();
        let flov = compute(&params(), 8, &a, &res, 100, GatedResidual::FlovLatches);
        let rp = compute(&params(), 8, &a, &res, 100, GatedResidual::FullyOff);
        assert!(rp.static_w < flov.static_w);
    }

    #[test]
    fn dynamic_scales_with_activity() {
        let res = all_powered(64, 1000);
        let mut a = ActivityCounters::default();
        a.buffer_writes = 1000;
        a.buffer_reads = 1000;
        a.xbar_traversals = 1000;
        a.link_flits = 1000;
        let r1 = compute(&params(), 8, &a, &res, 1000, GatedResidual::FullyOff);
        let mut a2 = a.clone();
        a2.buffer_writes *= 2;
        a2.buffer_reads *= 2;
        a2.xbar_traversals *= 2;
        a2.link_flits *= 2;
        let r2 = compute(&params(), 8, &a2, &res, 1000, GatedResidual::FullyOff);
        assert!((r2.dynamic_w / r1.dynamic_w - 2.0).abs() < 1e-9);
    }

    #[test]
    fn energy_is_power_times_time() {
        let mut a = ActivityCounters::default();
        a.link_flits = 500;
        let r = compute(&params(), 8, &a, &all_powered(64, 2000), 2000, GatedResidual::FullyOff);
        assert!((r.total_j() - (r.static_j() + r.dynamic_j())).abs() < 1e-18);
        assert!((r.seconds - 1e-6).abs() < 1e-12); // 2000 cycles at 2 GHz
    }

    #[test]
    fn gating_events_cost_energy() {
        let mut a = ActivityCounters::default();
        a.gating_events = 100;
        let r = compute(&params(), 8, &a, &all_powered(64, 1000), 1000, GatedResidual::FlovLatches);
        assert!((r.dynamic_energy.gating - 100.0 * 17.7e-12).abs() < 1e-18);
    }

    #[test]
    fn residency_delta_subtracts() {
        let start = vec![Residency { powered: 10, gated: 5 }];
        let end = vec![Residency { powered: 25, gated: 11 }];
        let d = residency_delta(&end, &start);
        assert_eq!(d[0], Residency { powered: 15, gated: 6 });
    }

    #[test]
    fn mechanism_residual_mapping() {
        assert_eq!(GatedResidual::for_mechanism("rFLOV"), GatedResidual::FlovLatches);
        assert_eq!(GatedResidual::for_mechanism("gFLOV"), GatedResidual::FlovLatches);
        assert_eq!(GatedResidual::for_mechanism("RP"), GatedResidual::FullyOff);
        assert_eq!(GatedResidual::for_mechanism("Baseline"), GatedResidual::FullyOff);
    }
}
