//! Property tests for the kernel data structures through the public API:
//! channel ordering, buffer FIFO discipline, PRNG statistics, flit
//! integrity coding, and latency-breakdown arithmetic.

use flov_noc::buffer::VcBuffer;
use flov_noc::flit::{Flit, FlitKind};
use flov_noc::link::{Channel, CreditMsg};
use flov_noc::packet::{DeliveredPacket, Packet};
use flov_noc::rng::Rng;
use proptest::prelude::*;

fn flit(packet: u64, idx: u16, len: u16) -> Flit {
    Packet { id: packet, src: 0, dst: 1, vnet: 0, len, birth: 0 }.flit(idx, 0)
}

proptest! {
    /// Channel delivery is a stable sort by arrival cycle: same-cycle sends
    /// come out in send order, later cycles later.
    #[test]
    fn channel_delivery_is_stable_by_arrival(arrivals in prop::collection::vec(0u64..50, 1..40)) {
        let mut ch = Channel::new();
        for (i, &a) in arrivals.iter().enumerate() {
            ch.send_flit(a, flit(i as u64, 0, 1));
        }
        let mut out = Vec::new();
        for now in 0..=60u64 {
            while let Some(f) = ch.recv_flit(now) {
                out.push((now, f.packet));
            }
        }
        prop_assert_eq!(out.len(), arrivals.len());
        // Each flit is delivered at exactly its arrival cycle (monotone
        // polling) and sorted stably.
        let mut expected: Vec<(u64, u64)> = arrivals
            .iter()
            .enumerate()
            .map(|(i, &a)| (a, i as u64))
            .collect();
        expected.sort_by_key(|&(a, _)| a); // stable: preserves send order per cycle
        prop_assert_eq!(out, expected);
    }

    /// Credits and flits never interfere on a channel.
    #[test]
    fn channel_credits_and_flits_independent(
        n_flits in 0usize..20,
        n_credits in 0usize..20,
    ) {
        let mut ch = Channel::new();
        for i in 0..n_flits {
            ch.send_flit(i as u64, flit(i as u64, 0, 1));
        }
        for i in 0..n_credits {
            ch.send_credit(i as u64, CreditMsg { vnet: 0, vc: (i % 4) as u8 });
        }
        prop_assert_eq!(ch.flits_in_flight(), n_flits);
        prop_assert_eq!(ch.credits_in_flight(), n_credits);
        let mut got_f = 0;
        let mut got_c = 0;
        for now in 0..40u64 {
            while ch.recv_flit(now).is_some() { got_f += 1; }
            while ch.recv_credit(now).is_some() { got_c += 1; }
        }
        prop_assert_eq!(got_f, n_flits);
        prop_assert_eq!(got_c, n_credits);
        prop_assert!(ch.is_idle());
    }

    /// VcBuffer is an exact FIFO and its occupancy arithmetic never drifts.
    #[test]
    fn buffer_fifo_discipline(ops in prop::collection::vec(any::<bool>(), 1..200)) {
        let mut buf = VcBuffer::new(6);
        let mut model: std::collections::VecDeque<u16> = Default::default();
        let mut next = 0u16;
        for push in ops {
            if push {
                if !buf.is_full() {
                    buf.push(flit(7, 0, 1));
                    model.push_back(next);
                    next += 1;
                }
            } else if let Some(_f) = buf.pop() {
                model.pop_front();
            }
            prop_assert_eq!(buf.len(), model.len());
            prop_assert_eq!(buf.free(), 6 - model.len());
            prop_assert_eq!(buf.is_empty(), model.is_empty());
        }
    }

    /// Every flit of every packet carries a verifiable payload, and
    /// corrupting any bit is detected.
    #[test]
    fn flit_integrity_detects_any_single_bitflip(
        packet in 0u64..1_000_000,
        idx in 0u16..16,
        bit in 0u32..64,
    ) {
        let mut f = flit(packet, idx, 16);
        prop_assert!(f.integrity_ok());
        f.payload ^= 1u64 << bit;
        prop_assert!(!f.integrity_ok());
    }

    /// The latency breakdown always sums exactly to the total latency.
    #[test]
    fn breakdown_partition_is_exact(
        birth in 0u64..1000,
        extra in 0u64..500,
        hops_router in 1u16..12,
        hops_flov in 0u16..6,
        len in 1u16..8,
    ) {
        let hops_link = hops_router + hops_flov; // structural relationship
        let min = hops_router as u64 * 3 + hops_link as u64 + (len - 1) as u64
            + hops_flov as u64;
        let d = DeliveredPacket {
            id: 1, src: 0, dst: 1, vnet: 0, len,
            birth,
            inject: birth,
            eject: birth + min + extra,
            hops_router, hops_flov, hops_link,
            used_escape: false,
        };
        let total = d.total_latency();
        let sum = d.router_latency(3) + d.link_latency(1) + d.serialization_latency()
            + d.flov_latency() + d.contention_latency(3, 1);
        prop_assert_eq!(total, sum);
        prop_assert_eq!(d.contention_latency(3, 1), extra);
    }

    /// FlitKind::of is total and consistent for all positions.
    #[test]
    fn flit_kind_classification(len in 1u16..64) {
        for idx in 0..len {
            let kind = FlitKind::of(idx, len);
            prop_assert_eq!(kind.is_head(), idx == 0);
            prop_assert_eq!(kind.is_tail(), idx == len - 1);
        }
    }

    /// PRNG `below` is unbiased enough across arbitrary bounds.
    #[test]
    fn rng_below_bounds_hold(seed in 0u64..u64::MAX, bound in 1u64..10_000) {
        let mut r = Rng::new(seed);
        for _ in 0..100 {
            prop_assert!(r.below(bound) < bound);
        }
    }
}

/// Lower edge of the power-of-two bucket a latency sample lands in
/// (bucket 0 absorbs 0 and 1) — the oracle for `quantile_lower`.
fn bucket_lower(s: u64) -> u64 {
    1u64 << (64 - s.max(1).leading_zeros() as usize - 1).min(31)
}

proptest! {
    /// ActiveSet agrees with a BTreeSet model under arbitrary op
    /// sequences: membership, len/is_empty after every op, and the
    /// ascending-order snapshot at the end. Each op is decoded from one
    /// integer (low bits pick insert/remove/query, the rest the index) so
    /// the sequence shrinks to a reproducible single value per step.
    #[test]
    fn active_set_matches_btreeset_model(
        cap in 1usize..200,
        ops in prop::collection::vec(any::<u64>(), 1..300),
    ) {
        let mut set = flov_noc::active::ActiveSet::new(cap);
        let mut model = std::collections::BTreeSet::new();
        for &v in &ops {
            let idx = (v / 4) as usize % cap;
            match v % 4 {
                // Bias toward inserts so the set actually fills up.
                0 | 3 => {
                    set.insert(idx);
                    model.insert(idx);
                }
                1 => {
                    set.remove(idx);
                    model.remove(&idx);
                }
                _ => prop_assert_eq!(set.contains(idx), model.contains(&idx)),
            }
            prop_assert_eq!(set.len(), model.len());
            prop_assert_eq!(set.is_empty(), model.is_empty());
        }
        let mut out = Vec::new();
        set.collect_into(&mut out);
        let expect: Vec<u32> = model.iter().map(|&i| i as u32).collect();
        prop_assert_eq!(out, expect);
        prop_assert_eq!(set.capacity(), cap);
    }

    /// LatencyHistogram quantiles against a sorted-vector oracle: for any
    /// sample set and quantile, `quantile_lower(q)` is exactly the lower
    /// bucket edge of the ceil(n*q)-th smallest sample — so the reported
    /// value never overstates the true quantile, and understates it by
    /// less than 2x.
    #[test]
    fn histogram_quantiles_match_sorted_oracle(
        samples in prop::collection::vec(0u64..200_000, 1..400),
        q_drawn in 0.0f64..1.0,
    ) {
        let mut h = flov_noc::stats::LatencyHistogram::default();
        for &s in &samples {
            h.record(s);
        }
        prop_assert_eq!(h.count(), samples.len() as u64);
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        for q in [q_drawn, 0.0, 0.5, 0.95, 0.99, 1.0] {
            let target = ((sorted.len() as f64 * q).ceil() as usize).max(1);
            let sample = sorted[target - 1];
            let edge = h.quantile_lower(q);
            prop_assert_eq!(edge, bucket_lower(sample), "q = {}", q);
            prop_assert!(edge <= sample.max(1) && sample.max(1) < 2 * edge);
        }
        let (p50, p95, p99) = h.percentiles();
        prop_assert!(p50 <= p95 && p95 <= p99);
    }
}
