//! Property tests for the kernel data structures through the public API:
//! channel ordering, buffer FIFO discipline, PRNG statistics, flit
//! integrity coding, and latency-breakdown arithmetic.

use flov_noc::buffer::VcBuffer;
use flov_noc::flit::{Flit, FlitKind};
use flov_noc::link::{Channel, CreditMsg};
use flov_noc::packet::{DeliveredPacket, Packet};
use flov_noc::rng::Rng;
use proptest::prelude::*;

fn flit(packet: u64, idx: u16, len: u16) -> Flit {
    Packet { id: packet, src: 0, dst: 1, vnet: 0, len, birth: 0 }.flit(idx, 0)
}

proptest! {
    /// Channel delivery is a stable sort by arrival cycle: same-cycle sends
    /// come out in send order, later cycles later.
    #[test]
    fn channel_delivery_is_stable_by_arrival(arrivals in prop::collection::vec(0u64..50, 1..40)) {
        let mut ch = Channel::new();
        for (i, &a) in arrivals.iter().enumerate() {
            ch.send_flit(a, flit(i as u64, 0, 1));
        }
        let mut out = Vec::new();
        for now in 0..=60u64 {
            while let Some(f) = ch.recv_flit(now) {
                out.push((now, f.packet));
            }
        }
        prop_assert_eq!(out.len(), arrivals.len());
        // Each flit is delivered at exactly its arrival cycle (monotone
        // polling) and sorted stably.
        let mut expected: Vec<(u64, u64)> = arrivals
            .iter()
            .enumerate()
            .map(|(i, &a)| (a, i as u64))
            .collect();
        expected.sort_by_key(|&(a, _)| a); // stable: preserves send order per cycle
        prop_assert_eq!(out, expected);
    }

    /// Credits and flits never interfere on a channel.
    #[test]
    fn channel_credits_and_flits_independent(
        n_flits in 0usize..20,
        n_credits in 0usize..20,
    ) {
        let mut ch = Channel::new();
        for i in 0..n_flits {
            ch.send_flit(i as u64, flit(i as u64, 0, 1));
        }
        for i in 0..n_credits {
            ch.send_credit(i as u64, CreditMsg { vnet: 0, vc: (i % 4) as u8 });
        }
        prop_assert_eq!(ch.flits_in_flight(), n_flits);
        prop_assert_eq!(ch.credits_in_flight(), n_credits);
        let mut got_f = 0;
        let mut got_c = 0;
        for now in 0..40u64 {
            while ch.recv_flit(now).is_some() { got_f += 1; }
            while ch.recv_credit(now).is_some() { got_c += 1; }
        }
        prop_assert_eq!(got_f, n_flits);
        prop_assert_eq!(got_c, n_credits);
        prop_assert!(ch.is_idle());
    }

    /// VcBuffer is an exact FIFO and its occupancy arithmetic never drifts.
    #[test]
    fn buffer_fifo_discipline(ops in prop::collection::vec(any::<bool>(), 1..200)) {
        let mut buf = VcBuffer::new(6);
        let mut model: std::collections::VecDeque<u16> = Default::default();
        let mut next = 0u16;
        for push in ops {
            if push {
                if !buf.is_full() {
                    buf.push(flit(7, 0, 1));
                    model.push_back(next);
                    next += 1;
                }
            } else if let Some(_f) = buf.pop() {
                model.pop_front();
            }
            prop_assert_eq!(buf.len(), model.len());
            prop_assert_eq!(buf.free(), 6 - model.len());
            prop_assert_eq!(buf.is_empty(), model.is_empty());
        }
    }

    /// Every flit of every packet carries a verifiable payload, and
    /// corrupting any bit is detected.
    #[test]
    fn flit_integrity_detects_any_single_bitflip(
        packet in 0u64..1_000_000,
        idx in 0u16..16,
        bit in 0u32..64,
    ) {
        let mut f = flit(packet, idx, 16);
        prop_assert!(f.integrity_ok());
        f.payload ^= 1u64 << bit;
        prop_assert!(!f.integrity_ok());
    }

    /// The latency breakdown always sums exactly to the total latency.
    #[test]
    fn breakdown_partition_is_exact(
        birth in 0u64..1000,
        extra in 0u64..500,
        hops_router in 1u16..12,
        hops_flov in 0u16..6,
        len in 1u16..8,
    ) {
        let hops_link = hops_router + hops_flov; // structural relationship
        let min = hops_router as u64 * 3 + hops_link as u64 + (len - 1) as u64
            + hops_flov as u64;
        let d = DeliveredPacket {
            id: 1, src: 0, dst: 1, vnet: 0, len,
            birth,
            inject: birth,
            eject: birth + min + extra,
            hops_router, hops_flov, hops_link,
            used_escape: false,
        };
        let total = d.total_latency();
        let sum = d.router_latency(3) + d.link_latency(1) + d.serialization_latency()
            + d.flov_latency() + d.contention_latency(3, 1);
        prop_assert_eq!(total, sum);
        prop_assert_eq!(d.contention_latency(3, 1), extra);
    }

    /// FlitKind::of is total and consistent for all positions.
    #[test]
    fn flit_kind_classification(len in 1u16..64) {
        for idx in 0..len {
            let kind = FlitKind::of(idx, len);
            prop_assert_eq!(kind.is_head(), idx == 0);
            prop_assert_eq!(kind.is_tail(), idx == len - 1);
        }
    }

    /// PRNG `below` is unbiased enough across arbitrary bounds.
    #[test]
    fn rng_below_bounds_hold(seed in 0u64..u64::MAX, bound in 1u64..10_000) {
        let mut r = Rng::new(seed);
        for _ in 0..100 {
            prop_assert!(r.below(bound) < bound);
        }
    }
}
