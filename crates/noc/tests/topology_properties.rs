//! Property tests for the topology layer: every `Topology` implementation
//! must expose a reciprocal link relation, a connected fabric, and a
//! deterministic enumeration order — the invariants the network constructor,
//! the chain walks, and the cache keys all lean on.

use flov_noc::topology::{Topology, TopologySpec};
use flov_noc::types::{NodeId, Port};
use proptest::prelude::*;
use std::collections::VecDeque;

/// Strategy over every spec variant at small-but-interesting radixes,
/// including odd `k` and rectangular grids.
fn any_spec() -> impl Strategy<Value = TopologySpec> {
    prop_oneof![
        (2u16..9).prop_map(|k| TopologySpec::Mesh { k }),
        (2u16..7, 2u16..7).prop_map(|(kx, ky)| TopologySpec::RectMesh { kx, ky }),
        (2u16..7).prop_map(|k| TopologySpec::Torus { k }),
        (2u16..6, prop_oneof![Just(2u16), Just(4u16)])
            .prop_map(|(k, c)| TopologySpec::CMesh { k, c }),
    ]
}

fn check_reciprocity(t: &dyn Topology) {
    for n in 0..t.routers() as NodeId {
        for p in Port::ALL {
            if let Some((m, q)) = t.neighbor(n, p) {
                assert!(p != Port::Local, "local port must not link anywhere");
                assert!((m as usize) < t.routers(), "neighbor out of range");
                assert_eq!(
                    t.neighbor(m, q),
                    Some((n, p)),
                    "link {n}:{p:?} -> {m}:{q:?} is not reciprocal"
                );
            }
        }
    }
}

fn check_connected(t: &dyn Topology) {
    let n = t.routers();
    let mut seen = vec![false; n];
    let mut q = VecDeque::new();
    seen[0] = true;
    q.push_back(0 as NodeId);
    while let Some(cur) = q.pop_front() {
        for p in Port::ALL {
            if let Some((m, _)) = t.neighbor(cur, p) {
                if !seen[m as usize] {
                    seen[m as usize] = true;
                    q.push_back(m);
                }
            }
        }
    }
    assert!(seen.iter().all(|&s| s), "fabric is not connected");
}

fn check_deterministic_enumeration(spec: TopologySpec) {
    let a = spec.build().links();
    let b = spec.build().links();
    assert_eq!(a, b, "links() must enumerate identically across builds");
    // Node-major, Port::ALL-order: the (node, port) key sequence is sorted.
    let keys: Vec<(NodeId, usize)> = a.iter().map(|&(n, p, _, _)| (n, p.index())).collect();
    let mut sorted = keys.clone();
    sorted.sort_unstable();
    assert_eq!(keys, sorted, "links() out of node-major order");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn links_are_reciprocal(spec in any_spec()) {
        check_reciprocity(&spec.build());
    }

    #[test]
    fn fabric_is_connected(spec in any_spec()) {
        check_connected(&spec.build());
    }

    #[test]
    fn enumeration_is_deterministic(spec in any_spec()) {
        check_deterministic_enumeration(spec);
    }

    #[test]
    fn ring_claims_are_honest(spec in any_spec()) {
        // admits_ring() ⟺ ring_successors() is a Hamiltonian cycle.
        let t = spec.build();
        match t.ring_successors() {
            Some(succ) => {
                prop_assert!(spec.admits_ring());
                prop_assert_eq!(succ.len(), t.routers());
                let mut seen = vec![false; t.routers()];
                let mut cur: NodeId = 0;
                for _ in 0..t.routers() {
                    prop_assert!(!seen[cur as usize], "ring revisits {}", cur);
                    seen[cur as usize] = true;
                    cur = succ[cur as usize];
                }
                prop_assert_eq!(cur, 0, "ring does not close");
            }
            None => prop_assert!(!spec.admits_ring()),
        }
    }

    #[test]
    fn torus_wraps_and_meshes_do_not(spec in any_spec()) {
        let t = spec.build();
        // Every router on a torus has all four neighbors; a mesh corner
        // is missing two.
        let full_degree = (0..t.routers() as NodeId).all(|n| {
            Port::ALL.iter().filter(|&&p| t.neighbor(n, p).is_some()).count() == 4
        });
        prop_assert_eq!(full_degree, t.wraps() || t.routers() == 1);
    }
}

#[test]
fn grid_view_agrees_with_physical_on_meshes() {
    use flov_noc::types::Dir;
    for spec in [
        TopologySpec::Mesh { k: 5 },
        TopologySpec::RectMesh { kx: 6, ky: 3 },
        TopologySpec::CMesh { k: 4, c: 4 },
    ] {
        let t = spec.build();
        for n in 0..t.routers() as NodeId {
            for d in Dir::ALL {
                assert_eq!(t.neighbor_dir(n, d), t.grid_neighbor(n, d), "{spec:?} {n} {d:?}");
            }
        }
    }
}
