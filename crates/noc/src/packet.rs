//! Packets: the unit of routing and of workload generation.

use crate::flit::{Flit, FlitKind};
use crate::types::{Cycle, NodeId, PacketId};
use serde::{Deserialize, Serialize};

/// A packet as produced by a workload generator. The NIC serializes it into
/// flits at injection time.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Packet {
    pub id: PacketId,
    pub src: NodeId,
    pub dst: NodeId,
    pub vnet: u8,
    /// Length in flits (>= 1).
    pub len: u16,
    /// Creation cycle at the source NIC.
    pub birth: Cycle,
}

impl Packet {
    /// Materialize flit `idx` of this packet.
    #[inline]
    pub fn flit(&self, idx: u16, inject: Cycle) -> Flit {
        debug_assert!(idx < self.len);
        Flit {
            packet: self.id,
            kind: FlitKind::of(idx, self.len),
            src: self.src,
            dst: self.dst,
            vnet: self.vnet,
            vc: 0,
            escape: false,
            flit_idx: idx,
            pkt_len: self.len,
            birth: self.birth,
            inject,
            hops_router: 0,
            hops_flov: 0,
            hops_link: 0,
            payload: Flit::expected_payload(self.id, idx),
        }
    }
}

/// Record of a delivered packet, filled in at tail ejection.
/// Feeds the latency breakdown of paper Fig. 8(a)/(b).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct DeliveredPacket {
    pub id: PacketId,
    pub src: NodeId,
    pub dst: NodeId,
    pub vnet: u8,
    pub len: u16,
    pub birth: Cycle,
    /// Cycle the head flit left the NIC source queue.
    pub inject: Cycle,
    /// Cycle the tail flit was ejected at the destination NIC.
    pub eject: Cycle,
    /// Powered-on routers the head traversed.
    pub hops_router: u16,
    /// FLOV latches the head traversed.
    pub hops_flov: u16,
    /// Links the head traversed (including ejection).
    pub hops_link: u16,
    /// Whether the packet used the escape sub-network.
    pub used_escape: bool,
}

impl DeliveredPacket {
    /// Total latency: creation to tail ejection (includes source queueing).
    #[inline]
    pub fn total_latency(&self) -> u64 {
        self.eject - self.birth
    }

    /// Router pipeline component: hops x pipeline depth.
    #[inline]
    pub fn router_latency(&self, pipeline_stages: u32) -> u64 {
        self.hops_router as u64 * pipeline_stages as u64
    }

    /// Link component: one cycle per link traversal.
    #[inline]
    pub fn link_latency(&self, link_latency: u32) -> u64 {
        self.hops_link as u64 * link_latency as u64
    }

    /// Serialization component: tail trails head by `len - 1` cycles.
    #[inline]
    pub fn serialization_latency(&self) -> u64 {
        (self.len - 1) as u64
    }

    /// FLOV component: one cycle per latch traversal.
    #[inline]
    pub fn flov_latency(&self) -> u64 {
        self.hops_flov as u64
    }

    /// Contention component: whatever is left after the structural terms
    /// (includes source queueing and in-network blocking).
    #[inline]
    pub fn contention_latency(&self, pipeline_stages: u32, link_latency: u32) -> u64 {
        self.total_latency().saturating_sub(
            self.router_latency(pipeline_stages)
                + self.link_latency(link_latency)
                + self.serialization_latency()
                + self.flov_latency(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(len: u16) -> Packet {
        Packet { id: 7, src: 0, dst: 5, vnet: 1, len, birth: 100 }
    }

    #[test]
    fn flit_materialization() {
        let p = pkt(4);
        let f0 = p.flit(0, 110);
        assert_eq!(f0.kind, FlitKind::Head);
        assert_eq!(f0.birth, 100);
        assert_eq!(f0.inject, 110);
        assert!(f0.integrity_ok());
        let f3 = p.flit(3, 113);
        assert_eq!(f3.kind, FlitKind::Tail);
        assert!(f3.integrity_ok());
    }

    #[test]
    fn single_flit_packet() {
        let p = pkt(1);
        assert_eq!(p.flit(0, 100).kind, FlitKind::Single);
    }

    #[test]
    fn latency_breakdown_sums_to_total() {
        let d = DeliveredPacket {
            id: 1,
            src: 0,
            dst: 9,
            vnet: 0,
            len: 4,
            birth: 0,
            inject: 2,
            eject: 40,
            hops_router: 4,
            hops_flov: 2,
            hops_link: 6,
            used_escape: false,
        };
        let total = d.total_latency();
        let parts = d.router_latency(3)
            + d.link_latency(1)
            + d.serialization_latency()
            + d.flov_latency()
            + d.contention_latency(3, 1);
        assert_eq!(total, parts);
        assert_eq!(d.router_latency(3), 12);
        assert_eq!(d.link_latency(1), 6);
        assert_eq!(d.serialization_latency(), 3);
        assert_eq!(d.flov_latency(), 2);
    }

    #[test]
    fn contention_saturates_at_zero() {
        // A pathological record cannot produce a negative component.
        let d = DeliveredPacket {
            id: 1,
            src: 0,
            dst: 1,
            vnet: 0,
            len: 1,
            birth: 0,
            inject: 0,
            eject: 1,
            hops_router: 10,
            hops_flov: 0,
            hops_link: 10,
            used_escape: false,
        };
        assert_eq!(d.contention_latency(3, 1), 0);
    }
}
