//! The topology layer: which routers exist, how they are wired, and what
//! structural properties (edges, wraparound, Hamiltonian rings) the fabric
//! offers. Everything above this module — link construction, routing,
//! mechanism edge logic, the NoRD ring — consumes topology through the
//! [`Topology`] trait (or the concrete [`AnyTopology`] dispatch enum used
//! on the hot path), never through raw `k` arithmetic.
//!
//! Two neighbor views are exposed, and keeping them distinct is what makes
//! the mechanisms correct on a torus:
//!
//! * the **physical** view ([`Topology::neighbor`]) is wrap-aware — it
//!   describes the links that actually exist, and is what the datapath
//!   (channel delivery, FLOV latch chains, credit relays) follows;
//! * the **grid** view ([`Topology::grid_neighbor`]) never wraps — it is
//!   the mesh-semantic view that routing policy and the mechanisms' edge
//!   logic (escape routing's "go East until the edge", FLOV latch
//!   capability, up*/down* tables) are defined over. On a mesh the two
//!   views coincide; on a torus only the baseline's wrap-minimal routing
//!   ever *originates* traffic across wrap links.
//!
//! Node ids are row-major over the router grid: `id = y * kx + x`. A
//! concentrated mesh keeps the router grid as its node space — cores exist
//! only in the workload layer (`core_id / c` is the attachment router).

use crate::ring::ring_successors as square_ring_successors;
use crate::types::{Coord, Dir, NodeId, Port};
use serde::{Deserialize, Serialize};

/// Serializable topology selector carried by `NocConfig`. Externally
/// tagged (the shim's serde encoding), so each variant is cache-key
/// distinct; the field is omitted entirely for the default square mesh,
/// keeping seed cache keys byte-identical.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum TopologySpec {
    /// Square `k x k` 2D mesh — the paper's fabric. Odd `k` is legal (it
    /// simply admits no NoRD ring, the paper's §II critique).
    Mesh { k: u16 },
    /// Rectangular `kx x ky` mesh.
    RectMesh { kx: u16, ky: u16 },
    /// Square `k x k` torus: every row and column closes into a cycle.
    Torus { k: u16 },
    /// Concentrated mesh: a `k x k` router grid with `c` cores per router
    /// (`cmesh64` in the bench lanes is `k = 4, c = 4`).
    CMesh { k: u16, c: u16 },
}

impl TopologySpec {
    /// Router-grid width.
    #[inline]
    pub fn kx(&self) -> u16 {
        match *self {
            TopologySpec::Mesh { k }
            | TopologySpec::Torus { k }
            | TopologySpec::CMesh { k, .. } => k,
            TopologySpec::RectMesh { kx, .. } => kx,
        }
    }

    /// Router-grid height.
    #[inline]
    pub fn ky(&self) -> u16 {
        match *self {
            TopologySpec::Mesh { k }
            | TopologySpec::Torus { k }
            | TopologySpec::CMesh { k, .. } => k,
            TopologySpec::RectMesh { ky, .. } => ky,
        }
    }

    /// Cores per router.
    #[inline]
    pub fn concentration(&self) -> u16 {
        match *self {
            TopologySpec::CMesh { c, .. } => c,
            _ => 1,
        }
    }

    /// Number of routers.
    #[inline]
    pub fn routers(&self) -> usize {
        self.kx() as usize * self.ky() as usize
    }

    /// Number of cores (injectors): routers times concentration.
    #[inline]
    pub fn cores(&self) -> usize {
        self.routers() * self.concentration() as usize
    }

    /// True if the topology has wraparound links.
    #[inline]
    pub fn wraps(&self) -> bool {
        matches!(self, TopologySpec::Torus { .. })
    }

    /// True if the topology admits a Hamiltonian cycle over its routers
    /// (the NoRD bypass ring's existence condition).
    pub fn admits_ring(&self) -> bool {
        match *self {
            // The paper's observation: a bypass ring exists in a k x k
            // mesh iff k is even.
            TopologySpec::Mesh { k } | TopologySpec::CMesh { k, .. } => {
                k >= 2 && k.is_multiple_of(2)
            }
            // A grid has a Hamiltonian cycle iff one side is even.
            TopologySpec::RectMesh { kx, ky } => {
                kx >= 2 && ky >= 2 && (kx.is_multiple_of(2) || ky.is_multiple_of(2))
            }
            // Wrap links admit a "tornado" cycle for every radix, odd
            // included — concentration and wraparound are exactly the two
            // outs the paper names for NoRD's even-radix restriction.
            TopologySpec::Torus { k } => k >= 2,
        }
    }

    /// Instantiate the concrete topology.
    pub fn build(&self) -> AnyTopology {
        match *self {
            TopologySpec::Mesh { k } => AnyTopology::Mesh(Mesh { k }),
            TopologySpec::RectMesh { kx, ky } => AnyTopology::RectMesh(RectMesh { kx, ky }),
            TopologySpec::Torus { k } => AnyTopology::Torus(Torus { k }),
            TopologySpec::CMesh { k, c } => AnyTopology::CMesh(CMesh { k, c }),
        }
    }

    /// FLOV latch capability of a router at `coord`: can flits fly over it
    /// in X (East/West) and in Y (North/South)? On grids that is "not on
    /// the respective boundary"; a torus has no boundary.
    #[inline]
    pub fn flov_capability(&self, coord: Coord) -> (bool, bool) {
        if self.wraps() {
            (true, true)
        } else {
            (coord.x > 0 && coord.x + 1 < self.kx(), coord.y > 0 && coord.y + 1 < self.ky())
        }
    }

    /// Short lane/diagnostic name, e.g. `mesh8x8`, `torus6`, `cmesh4x4c4`.
    pub fn label(&self) -> String {
        match *self {
            TopologySpec::Mesh { k } => format!("mesh{k}x{k}"),
            TopologySpec::RectMesh { kx, ky } => format!("mesh{kx}x{ky}"),
            TopologySpec::Torus { k } => format!("torus{k}x{k}"),
            TopologySpec::CMesh { k, c } => format!("cmesh{k}x{k}c{c}"),
        }
    }
}

/// Step `c` one hop in `d` inside a `kx x ky` grid (no wraparound).
#[inline]
pub fn grid_step(c: Coord, d: Dir, kx: u16, ky: u16) -> Option<Coord> {
    let (dx, dy) = d.delta();
    let nx = c.x as i32 + dx;
    let ny = c.y as i32 + dy;
    if nx < 0 || ny < 0 || nx >= kx as i32 || ny >= ky as i32 {
        None
    } else {
        Some(Coord::new(nx as u16, ny as u16))
    }
}

/// Step `c` one hop in `d` on a `kx x ky` torus (always succeeds).
#[inline]
pub fn wrap_step(c: Coord, d: Dir, kx: u16, ky: u16) -> Coord {
    let (dx, dy) = d.delta();
    Coord::new(
        (c.x as i32 + dx).rem_euclid(kx as i32) as u16,
        (c.y as i32 + dy).rem_euclid(ky as i32) as u16,
    )
}

#[inline]
fn rect_coord(id: NodeId, kx: u16) -> Coord {
    Coord { x: id % kx, y: id / kx }
}

#[inline]
fn rect_id(c: Coord, kx: u16) -> NodeId {
    c.y * kx + c.x
}

/// The topology contract every fabric implements.
///
/// `neighbor` is the link-level (physical, wrap-aware) adjacency:
/// `neighbor(n, p) == Some((m, q))` means a directed link leaves node `n`
/// through port `p` and enters node `m` through port `q`. Links are
/// reciprocal (`neighbor(m, q) == Some((n, p))` — the property test pins
/// this), the local port never leads anywhere, and enumeration order
/// (`0..routers()`, ports in `Port::ALL` order) is deterministic.
pub trait Topology {
    /// Router-grid width.
    fn kx(&self) -> u16;
    /// Router-grid height.
    fn ky(&self) -> u16;
    /// Cores attached per router.
    fn concentration(&self) -> u16 {
        1
    }
    /// True if the fabric has wraparound links.
    fn wraps(&self) -> bool {
        false
    }
    /// Physical neighbor through port `p`: the peer node and the peer's
    /// port this link enters.
    fn neighbor(&self, node: NodeId, p: Port) -> Option<(NodeId, Port)>;
    /// Mesh-semantic (never wrapping) neighbor in direction `d`; `None`
    /// beyond the grid boundary. Routing policy and mechanism edge logic
    /// consume this view.
    fn grid_neighbor(&self, node: NodeId, d: Dir) -> Option<NodeId>;
    /// Hamiltonian ring successor map over the routers, if one exists.
    fn ring_successors(&self) -> Option<Vec<NodeId>>;

    /// Number of routers.
    fn routers(&self) -> usize {
        self.kx() as usize * self.ky() as usize
    }

    /// Number of cores (injectors).
    fn cores(&self) -> usize {
        self.routers() * self.concentration() as usize
    }

    /// Coordinate of `node` in the router grid (row-major, stride `kx`).
    #[inline]
    fn coord(&self, node: NodeId) -> Coord {
        rect_coord(node, self.kx())
    }

    /// Node id of `coord`.
    #[inline]
    fn id_of(&self, coord: Coord) -> NodeId {
        rect_id(coord, self.kx())
    }

    /// Physical neighbor in direction `d` (node only).
    #[inline]
    fn neighbor_dir(&self, node: NodeId, d: Dir) -> Option<NodeId> {
        self.neighbor(node, Port::from_dir(d)).map(|(m, _)| m)
    }

    /// Every directed link as `(node, port, peer, peer_port)`, enumerated
    /// in deterministic (node-major, `Port::ALL`) order.
    fn links(&self) -> Vec<(NodeId, Port, NodeId, Port)> {
        let mut out = Vec::new();
        for n in 0..self.routers() as NodeId {
            for p in Port::ALL {
                if let Some((m, q)) = self.neighbor(n, p) {
                    out.push((n, p, m, q));
                }
            }
        }
        out
    }
}

/// Grid-shaped `neighbor` shared by all non-wrapping fabrics.
#[inline]
fn grid_port_neighbor(node: NodeId, p: Port, kx: u16, ky: u16) -> Option<(NodeId, Port)> {
    let d = p.dir()?;
    let c = grid_step(rect_coord(node, kx), d, kx, ky)?;
    Some((rect_id(c, kx), Port::from_dir(d.opposite())))
}

/// The classic square `k x k` mesh (seed behavior, odd `k` included).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Mesh {
    pub k: u16,
}

impl Topology for Mesh {
    fn kx(&self) -> u16 {
        self.k
    }
    fn ky(&self) -> u16 {
        self.k
    }
    fn neighbor(&self, node: NodeId, p: Port) -> Option<(NodeId, Port)> {
        grid_port_neighbor(node, p, self.k, self.k)
    }
    fn grid_neighbor(&self, node: NodeId, d: Dir) -> Option<NodeId> {
        grid_step(rect_coord(node, self.k), d, self.k, self.k).map(|c| rect_id(c, self.k))
    }
    fn ring_successors(&self) -> Option<Vec<NodeId>> {
        square_ring_successors(self.k)
    }
}

/// A rectangular `kx x ky` mesh.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RectMesh {
    pub kx: u16,
    pub ky: u16,
}

impl Topology for RectMesh {
    fn kx(&self) -> u16 {
        self.kx
    }
    fn ky(&self) -> u16 {
        self.ky
    }
    fn neighbor(&self, node: NodeId, p: Port) -> Option<(NodeId, Port)> {
        grid_port_neighbor(node, p, self.kx, self.ky)
    }
    fn grid_neighbor(&self, node: NodeId, d: Dir) -> Option<NodeId> {
        grid_step(rect_coord(node, self.kx), d, self.kx, self.ky).map(|c| rect_id(c, self.kx))
    }
    fn ring_successors(&self) -> Option<Vec<NodeId>> {
        rect_ring_successors(self.kx, self.ky)
    }
}

/// A square `k x k` torus.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Torus {
    pub k: u16,
}

impl Topology for Torus {
    fn kx(&self) -> u16 {
        self.k
    }
    fn ky(&self) -> u16 {
        self.k
    }
    fn wraps(&self) -> bool {
        true
    }
    fn neighbor(&self, node: NodeId, p: Port) -> Option<(NodeId, Port)> {
        let d = p.dir()?;
        let c = wrap_step(rect_coord(node, self.k), d, self.k, self.k);
        Some((rect_id(c, self.k), Port::from_dir(d.opposite())))
    }
    fn grid_neighbor(&self, node: NodeId, d: Dir) -> Option<NodeId> {
        grid_step(rect_coord(node, self.k), d, self.k, self.k).map(|c| rect_id(c, self.k))
    }
    fn ring_successors(&self) -> Option<Vec<NodeId>> {
        torus_ring_successors(self.k)
    }
}

/// A concentrated mesh: square `k x k` router grid, `c` cores per router.
/// The router fabric is exactly [`Mesh`]; concentration only changes how
/// many injectors map onto each router.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CMesh {
    pub k: u16,
    pub c: u16,
}

impl Topology for CMesh {
    fn kx(&self) -> u16 {
        self.k
    }
    fn ky(&self) -> u16 {
        self.k
    }
    fn concentration(&self) -> u16 {
        self.c
    }
    fn neighbor(&self, node: NodeId, p: Port) -> Option<(NodeId, Port)> {
        grid_port_neighbor(node, p, self.k, self.k)
    }
    fn grid_neighbor(&self, node: NodeId, d: Dir) -> Option<NodeId> {
        grid_step(rect_coord(node, self.k), d, self.k, self.k).map(|c| rect_id(c, self.k))
    }
    fn ring_successors(&self) -> Option<Vec<NodeId>> {
        square_ring_successors(self.k)
    }
}

/// Concrete dispatch over the four topologies — what the simulation kernel
/// holds, so the hot path pays one `match` instead of a vtable call.
#[derive(Clone, Debug, PartialEq)]
pub enum AnyTopology {
    Mesh(Mesh),
    RectMesh(RectMesh),
    Torus(Torus),
    CMesh(CMesh),
}

impl AnyTopology {
    /// The spec this topology was built from.
    pub fn spec(&self) -> TopologySpec {
        match *self {
            AnyTopology::Mesh(Mesh { k }) => TopologySpec::Mesh { k },
            AnyTopology::RectMesh(RectMesh { kx, ky }) => TopologySpec::RectMesh { kx, ky },
            AnyTopology::Torus(Torus { k }) => TopologySpec::Torus { k },
            AnyTopology::CMesh(CMesh { k, c }) => TopologySpec::CMesh { k, c },
        }
    }
}

impl Topology for AnyTopology {
    #[inline]
    fn kx(&self) -> u16 {
        match self {
            AnyTopology::Mesh(t) => t.kx(),
            AnyTopology::RectMesh(t) => t.kx(),
            AnyTopology::Torus(t) => t.kx(),
            AnyTopology::CMesh(t) => t.kx(),
        }
    }
    #[inline]
    fn ky(&self) -> u16 {
        match self {
            AnyTopology::Mesh(t) => t.ky(),
            AnyTopology::RectMesh(t) => t.ky(),
            AnyTopology::Torus(t) => t.ky(),
            AnyTopology::CMesh(t) => t.ky(),
        }
    }
    #[inline]
    fn concentration(&self) -> u16 {
        match self {
            AnyTopology::CMesh(t) => t.concentration(),
            _ => 1,
        }
    }
    #[inline]
    fn wraps(&self) -> bool {
        matches!(self, AnyTopology::Torus(_))
    }
    #[inline]
    fn neighbor(&self, node: NodeId, p: Port) -> Option<(NodeId, Port)> {
        match self {
            AnyTopology::Mesh(t) => t.neighbor(node, p),
            AnyTopology::RectMesh(t) => t.neighbor(node, p),
            AnyTopology::Torus(t) => t.neighbor(node, p),
            AnyTopology::CMesh(t) => t.neighbor(node, p),
        }
    }
    #[inline]
    fn grid_neighbor(&self, node: NodeId, d: Dir) -> Option<NodeId> {
        match self {
            AnyTopology::Mesh(t) => t.grid_neighbor(node, d),
            AnyTopology::RectMesh(t) => t.grid_neighbor(node, d),
            AnyTopology::Torus(t) => t.grid_neighbor(node, d),
            AnyTopology::CMesh(t) => t.grid_neighbor(node, d),
        }
    }
    fn ring_successors(&self) -> Option<Vec<NodeId>> {
        match self {
            AnyTopology::Mesh(t) => t.ring_successors(),
            AnyTopology::RectMesh(t) => t.ring_successors(),
            AnyTopology::Torus(t) => t.ring_successors(),
            AnyTopology::CMesh(t) => t.ring_successors(),
        }
    }
}

/// Hamiltonian cycle over a `kx x ky` grid: the seed's serpentine (rows
/// weaving through columns `x >= 1`, return along column 0) generalized.
/// That construction closes iff `ky` is even; for even `kx` the transposed
/// weave is used instead. A grid with both sides odd has an odd number of
/// cells in a bipartite graph — no cycle exists.
fn rect_ring_successors(kx: u16, ky: u16) -> Option<Vec<NodeId>> {
    if kx < 2 || ky < 2 {
        return None;
    }
    let id = |x: u16, y: u16| rect_id(Coord::new(x, y), kx);
    let n = kx as usize * ky as usize;
    let mut order: Vec<NodeId> = Vec::with_capacity(n);
    if ky.is_multiple_of(2) {
        for x in 0..kx {
            order.push(id(x, 0));
        }
        for y in 1..ky {
            if y % 2 == 1 {
                for x in (1..kx).rev() {
                    order.push(id(x, y));
                }
            } else {
                for x in 1..kx {
                    order.push(id(x, y));
                }
            }
        }
        for y in (1..ky).rev() {
            order.push(id(0, y));
        }
    } else if kx.is_multiple_of(2) {
        for y in 0..ky {
            order.push(id(0, y));
        }
        for x in 1..kx {
            if x % 2 == 1 {
                for y in (1..ky).rev() {
                    order.push(id(x, y));
                }
            } else {
                for y in 1..ky {
                    order.push(id(x, y));
                }
            }
        }
        for x in (1..kx).rev() {
            order.push(id(x, 0));
        }
    } else {
        return None;
    }
    debug_assert_eq!(order.len(), n);
    let mut succ = vec![0 as NodeId; n];
    for i in 0..n {
        succ[order[i] as usize] = order[(i + 1) % n];
    }
    Some(succ)
}

/// Hamiltonian cycle on a `k x k` torus for *any* `k >= 2* — the "tornado"
/// cycle: enter row `y` at `x = (k - y) mod k`, take `k - 1` East hops
/// (wrapping), then one North hop into the next row; the final North hop
/// wraps from `(0, k-1)` back to the start. Wrap links make the ring
/// possible where the mesh's bipartite parity argument forbids it.
fn torus_ring_successors(k: u16) -> Option<Vec<NodeId>> {
    if k < 2 {
        return None;
    }
    let n = k as usize * k as usize;
    let mut order: Vec<NodeId> = Vec::with_capacity(n);
    for y in 0..k {
        let enter = (k - y) % k;
        for step in 0..k {
            let x = (enter + step) % k;
            order.push(rect_id(Coord::new(x, y), k));
        }
    }
    debug_assert_eq!(order.len(), n);
    let mut succ = vec![0 as NodeId; n];
    for i in 0..n {
        succ[order[i] as usize] = order[(i + 1) % n];
    }
    Some(succ)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_specs() -> Vec<TopologySpec> {
        vec![
            TopologySpec::Mesh { k: 4 },
            TopologySpec::Mesh { k: 5 },
            TopologySpec::RectMesh { kx: 6, ky: 3 },
            TopologySpec::Torus { k: 4 },
            TopologySpec::Torus { k: 3 },
            TopologySpec::CMesh { k: 4, c: 4 },
        ]
    }

    /// `succ` is a single cycle visiting every router exactly once, with
    /// every edge physically present in `t`.
    fn assert_hamiltonian(t: &AnyTopology, succ: &[NodeId]) {
        let n = t.routers();
        assert_eq!(succ.len(), n);
        for (a, &b) in succ.iter().enumerate() {
            let adjacent = Dir::ALL.iter().any(|&d| t.neighbor_dir(a as NodeId, d) == Some(b));
            assert!(adjacent, "ring edge {a}->{b} is not a link of {:?}", t.spec());
        }
        let mut cur = 0 as NodeId;
        let mut seen = vec![false; n];
        for _ in 0..n {
            assert!(!seen[cur as usize], "ring revisits {cur}");
            seen[cur as usize] = true;
            cur = succ[cur as usize];
        }
        assert_eq!(cur, 0);
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn default_mesh_matches_seed_adjacency() {
        // The Mesh topology must reproduce Coord::neighbor exactly.
        let t = TopologySpec::Mesh { k: 5 }.build();
        for id in 0..25u16 {
            for d in Dir::ALL {
                let seed = Coord::of(id, 5).neighbor(d, 5).map(|c| c.id(5));
                assert_eq!(t.neighbor_dir(id, d), seed);
                assert_eq!(t.grid_neighbor(id, d), seed);
            }
        }
    }

    #[test]
    fn torus_neighbors_wrap_and_grid_view_does_not() {
        let t = TopologySpec::Torus { k: 4 }.build();
        // (3, 0) East wraps to (0, 0); the grid view sees an edge.
        assert_eq!(t.neighbor_dir(3, Dir::East), Some(0));
        assert_eq!(t.grid_neighbor(3, Dir::East), None);
        // (0, 0) South wraps to (0, 3).
        assert_eq!(t.neighbor_dir(0, Dir::South), Some(12));
        assert_eq!(t.grid_neighbor(0, Dir::South), None);
    }

    #[test]
    fn link_reciprocity_everywhere() {
        for spec in all_specs() {
            let t = spec.build();
            for n in 0..t.routers() as NodeId {
                for p in Port::ALL {
                    match t.neighbor(n, p) {
                        None => assert!(
                            p == Port::Local || !spec.wraps(),
                            "torus must have no edges ({spec:?} node {n} port {p:?})"
                        ),
                        Some((m, q)) => {
                            assert_eq!(
                                t.neighbor(m, q),
                                Some((n, p)),
                                "link {n}:{p:?} -> {m}:{q:?} not reciprocal ({spec:?})"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn ring_existence_matches_admits_ring() {
        for spec in all_specs() {
            let t = spec.build();
            assert_eq!(t.ring_successors().is_some(), spec.admits_ring(), "{spec:?}");
            if let Some(succ) = t.ring_successors() {
                assert_hamiltonian(&t, &succ);
            }
        }
    }

    #[test]
    fn square_ring_is_byte_identical_to_seed() {
        // RectMesh with even ky uses the generalized serpentine; on a
        // square even grid it must reproduce the seed construction that
        // the NoRD equivalence matrix pins.
        for k in [2u16, 4, 6, 8] {
            let seed = square_ring_successors(k).unwrap();
            assert_eq!(rect_ring_successors(k, k).unwrap(), seed, "k={k}");
            assert_eq!(TopologySpec::Mesh { k }.build().ring_successors().unwrap(), seed);
        }
    }

    #[test]
    fn rect_ring_parity() {
        assert!(rect_ring_successors(3, 4).is_some());
        assert!(rect_ring_successors(4, 3).is_some());
        assert!(rect_ring_successors(3, 5).is_none());
        assert!(rect_ring_successors(5, 7).is_none());
        let t = TopologySpec::RectMesh { kx: 4, ky: 3 }.build();
        assert_hamiltonian(&t, &t.ring_successors().unwrap());
    }

    #[test]
    fn torus_ring_exists_for_odd_radix() {
        // The concentrated/wrapped escape hatch from the even-k critique.
        for k in [2u16, 3, 4, 5, 7] {
            let t = TopologySpec::Torus { k }.build();
            assert_hamiltonian(&t, &t.ring_successors().unwrap());
        }
    }

    #[test]
    fn cmesh_counts_cores_separately() {
        let spec = TopologySpec::CMesh { k: 4, c: 4 };
        assert_eq!(spec.routers(), 16);
        assert_eq!(spec.cores(), 64);
        assert_eq!(spec.build().cores(), 64);
    }

    #[test]
    fn flov_capability_interior_on_grid_everywhere_on_torus() {
        let mesh = TopologySpec::Mesh { k: 4 };
        assert_eq!(mesh.flov_capability(Coord::new(0, 2)), (false, true));
        assert_eq!(mesh.flov_capability(Coord::new(2, 0)), (true, false));
        assert_eq!(mesh.flov_capability(Coord::new(2, 2)), (true, true));
        let torus = TopologySpec::Torus { k: 4 };
        assert_eq!(torus.flov_capability(Coord::new(0, 0)), (true, true));
    }

    #[test]
    fn links_enumeration_is_deterministic_and_reciprocal() {
        for spec in all_specs() {
            let t = spec.build();
            let links = t.links();
            assert_eq!(links, t.links(), "unstable enumeration for {spec:?}");
            for &(n, p, m, q) in &links {
                assert!(links.contains(&(m, q, n, p)), "missing reverse of {n}:{p:?}");
            }
        }
    }

    #[test]
    fn spec_roundtrips_through_serde() {
        for spec in all_specs() {
            let v = serde::Serialize::to_value(&spec);
            let back: TopologySpec = serde::Deserialize::from_value(&v).unwrap();
            assert_eq!(back, spec);
        }
    }

    #[test]
    fn spec_labels() {
        assert_eq!(TopologySpec::Mesh { k: 8 }.label(), "mesh8x8");
        assert_eq!(TopologySpec::RectMesh { kx: 8, ky: 4 }.label(), "mesh8x4");
        assert_eq!(TopologySpec::Torus { k: 6 }.label(), "torus6x6");
        assert_eq!(TopologySpec::CMesh { k: 4, c: 4 }.label(), "cmesh4x4c4");
    }
}
