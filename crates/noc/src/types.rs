//! Fundamental identifiers and enumerations shared across the simulator.

use serde::{Deserialize, Serialize};

/// Simulation time, in router clock cycles.
pub type Cycle = u64;

/// Identifier of a node (core + router + NIC) in the mesh, row-major:
/// `id = y * k + x`.
pub type NodeId = u16;

/// Identifier of a packet, unique over a simulation run.
pub type PacketId = u64;

/// One of the four mesh directions.
///
/// Coordinates follow the convention used throughout the crate:
/// `x` grows East (column index), `y` grows North (row index).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[repr(u8)]
pub enum Dir {
    North = 0,
    East = 1,
    South = 2,
    West = 3,
}

impl Dir {
    /// All four directions in a fixed, deterministic order.
    pub const ALL: [Dir; 4] = [Dir::North, Dir::East, Dir::South, Dir::West];

    /// The opposite direction (`North <-> South`, `East <-> West`).
    #[inline]
    pub fn opposite(self) -> Dir {
        match self {
            Dir::North => Dir::South,
            Dir::East => Dir::West,
            Dir::South => Dir::North,
            Dir::West => Dir::East,
        }
    }

    /// Unit step of this direction as `(dx, dy)`.
    #[inline]
    pub fn delta(self) -> (i32, i32) {
        match self {
            Dir::North => (0, 1),
            Dir::East => (1, 0),
            Dir::South => (0, -1),
            Dir::West => (-1, 0),
        }
    }

    /// True for `East`/`West`.
    #[inline]
    pub fn is_x(self) -> bool {
        matches!(self, Dir::East | Dir::West)
    }

    /// Dense index in `0..4`, matching [`Dir::ALL`].
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Inverse of [`Dir::index`].
    #[inline]
    pub fn from_index(i: usize) -> Dir {
        Dir::ALL[i]
    }
}

/// A router port: the four mesh directions plus the local (core/NIC) port.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[repr(u8)]
pub enum Port {
    North = 0,
    East = 1,
    South = 2,
    West = 3,
    Local = 4,
}

/// Number of ports on a mesh router.
pub const NUM_PORTS: usize = 5;

impl Port {
    /// All five ports in a fixed, deterministic order.
    pub const ALL: [Port; 5] = [Port::North, Port::East, Port::South, Port::West, Port::Local];

    /// Dense index in `0..5`, matching [`Port::ALL`].
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Inverse of [`Port::index`].
    #[inline]
    pub fn from_index(i: usize) -> Port {
        Port::ALL[i]
    }

    /// The mesh direction of this port, or `None` for the local port.
    #[inline]
    pub fn dir(self) -> Option<Dir> {
        match self {
            Port::North => Some(Dir::North),
            Port::East => Some(Dir::East),
            Port::South => Some(Dir::South),
            Port::West => Some(Dir::West),
            Port::Local => None,
        }
    }

    /// The port corresponding to a mesh direction.
    #[inline]
    pub fn from_dir(d: Dir) -> Port {
        match d {
            Dir::North => Port::North,
            Dir::East => Port::East,
            Dir::South => Port::South,
            Dir::West => Port::West,
        }
    }
}

/// Power state of a router, per the FLOV state machine (paper Fig. 2).
///
/// `Active` routers run the full 3-stage pipeline. `Draining` routers still
/// run the pipeline but refuse new upstream packet transmissions. `Sleep`
/// routers have the baseline datapath power-gated and forward flits straight
/// through the FLOV latches. `Wakeup` routers are transitioning back to
/// `Active` (powering on, draining latches).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum PowerState {
    Active = 0,
    Draining = 1,
    Sleep = 2,
    Wakeup = 3,
}

impl PowerState {
    /// True if the baseline router datapath is powered (pipeline operates).
    ///
    /// `Draining` routers are still fully powered; `Wakeup` routers are not
    /// yet usable (latches draining / power ramping).
    #[inline]
    pub fn is_powered(self) -> bool {
        matches!(self, PowerState::Active | PowerState::Draining)
    }

    /// True if this router currently forwards flits over FLOV latches.
    #[inline]
    pub fn is_flov(self) -> bool {
        matches!(self, PowerState::Sleep | PowerState::Wakeup)
    }
}

/// A 2D mesh coordinate. `x` is the column (grows East), `y` the row
/// (grows North).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Coord {
    pub x: u16,
    pub y: u16,
}

impl Coord {
    #[inline]
    pub fn new(x: u16, y: u16) -> Coord {
        Coord { x, y }
    }

    /// Row-major node id in a `k x k` mesh.
    #[inline]
    pub fn id(self, k: u16) -> NodeId {
        self.y * k + self.x
    }

    /// Coordinate of a node id in a `k x k` mesh.
    #[inline]
    pub fn of(id: NodeId, k: u16) -> Coord {
        Coord { x: id % k, y: id / k }
    }

    /// Manhattan distance.
    #[inline]
    pub fn manhattan(self, other: Coord) -> u32 {
        (self.x.abs_diff(other.x) + self.y.abs_diff(other.y)) as u32
    }

    /// Neighbor coordinate in direction `d` within a `k x k` mesh, if any.
    #[inline]
    pub fn neighbor(self, d: Dir, k: u16) -> Option<Coord> {
        let (dx, dy) = d.delta();
        let nx = self.x as i32 + dx;
        let ny = self.y as i32 + dy;
        if nx < 0 || ny < 0 || nx >= k as i32 || ny >= k as i32 {
            None
        } else {
            Some(Coord::new(nx as u16, ny as u16))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dir_opposites_are_involutive() {
        for d in Dir::ALL {
            assert_eq!(d.opposite().opposite(), d);
            assert_ne!(d.opposite(), d);
        }
    }

    #[test]
    fn dir_delta_cancels_with_opposite() {
        for d in Dir::ALL {
            let (dx, dy) = d.delta();
            let (ox, oy) = d.opposite().delta();
            assert_eq!((dx + ox, dy + oy), (0, 0));
        }
    }

    #[test]
    fn dir_index_roundtrip() {
        for (i, d) in Dir::ALL.iter().enumerate() {
            assert_eq!(d.index(), i);
            assert_eq!(Dir::from_index(i), *d);
        }
    }

    #[test]
    fn port_index_roundtrip() {
        for (i, p) in Port::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
            assert_eq!(Port::from_index(i), *p);
        }
    }

    #[test]
    fn port_dir_mapping_is_consistent() {
        for d in Dir::ALL {
            assert_eq!(Port::from_dir(d).dir(), Some(d));
        }
        assert_eq!(Port::Local.dir(), None);
    }

    #[test]
    fn coord_id_roundtrip() {
        let k = 8;
        for id in 0..k * k {
            let c = Coord::of(id, k);
            assert_eq!(c.id(k), id);
            assert!(c.x < k && c.y < k);
        }
    }

    #[test]
    fn coord_neighbors_respect_bounds() {
        let k = 4;
        let corner = Coord::new(0, 0);
        assert_eq!(corner.neighbor(Dir::West, k), None);
        assert_eq!(corner.neighbor(Dir::South, k), None);
        assert_eq!(corner.neighbor(Dir::East, k), Some(Coord::new(1, 0)));
        assert_eq!(corner.neighbor(Dir::North, k), Some(Coord::new(0, 1)));
        let far = Coord::new(3, 3);
        assert_eq!(far.neighbor(Dir::East, k), None);
        assert_eq!(far.neighbor(Dir::North, k), None);
    }

    #[test]
    fn manhattan_distance_symmetric() {
        let a = Coord::new(1, 5);
        let b = Coord::new(4, 2);
        assert_eq!(a.manhattan(b), 6);
        assert_eq!(b.manhattan(a), 6);
        assert_eq!(a.manhattan(a), 0);
    }

    #[test]
    fn power_state_predicates() {
        assert!(PowerState::Active.is_powered());
        assert!(PowerState::Draining.is_powered());
        assert!(!PowerState::Sleep.is_powered());
        assert!(!PowerState::Wakeup.is_powered());
        assert!(PowerState::Sleep.is_flov());
        assert!(PowerState::Wakeup.is_flov());
        assert!(!PowerState::Active.is_flov());
    }
}
