//! The two extension points of the simulator: power-gating mechanisms
//! (Baseline / rFLOV / gFLOV / Router Parking) and workloads (synthetic
//! patterns, PARSEC-proxy traffic).

use crate::network::NetworkCore;
use crate::routing::RouteCtx;
use crate::types::{Cycle, NodeId, Port, PowerState};

/// Read-only power-state view of the fabric.
///
/// The per-flit mechanism hooks ([`PowerMechanism::route`],
/// [`PowerMechanism::injection_allowed`]) take this instead of the full
/// [`NetworkCore`]: every implemented policy decides from power states (and
/// its own tables) alone, and the narrow surface is what lets the parallel
/// kernel evaluate those hooks inside worker tiles against an immutable
/// start-of-phase snapshot while other tiles mutate router state.
pub trait PowerView {
    /// Number of routers.
    fn nodes(&self) -> usize;
    /// Power state of router `n`.
    fn power(&self, n: NodeId) -> PowerState;
}

impl PowerView for NetworkCore {
    #[inline]
    fn nodes(&self) -> usize {
        NetworkCore::nodes(self)
    }

    #[inline]
    fn power(&self, n: NodeId) -> PowerState {
        NetworkCore::power(self, n)
    }
}

/// A power-gating mechanism: owns the power-state control decisions and the
/// routing function. The simulator calls [`PowerMechanism::step`] once per
/// cycle (after link delivery, before the router pipelines) and
/// [`PowerMechanism::route`] for every head-flit route computation at a
/// powered router.
///
/// `Sync` is a supertrait: the parallel kernel shares the mechanism
/// immutably across tile workers during the routing phases (`step` keeps
/// `&mut self` and always runs on the driving thread).
pub trait PowerMechanism: Sync {
    /// Human-readable name, used in result tables ("Baseline", "RP", ...).
    fn name(&self) -> &'static str;

    /// Per-cycle control step: run handshakes, drive power transitions via
    /// [`NetworkCore`] transition methods, react to core-activity changes.
    fn step(&mut self, core: &mut NetworkCore);

    /// Route computation for a head flit at a powered router.
    ///
    /// Returns `None` to stall the packet for this cycle (e.g. FLOV's
    /// routing when every viable direction is power-gated and the fallback
    /// would be a U-turn) — the computation is retried every cycle, and the
    /// escape timeout eventually diverts a persistently stalled packet.
    /// A returned port must exist (never walks off the mesh) and, for
    /// non-escape packets, must never be the input port (no U-turns, the
    /// paper's livelock guard).
    fn route(&self, net: &dyn PowerView, ctx: &RouteCtx) -> Option<Port>;

    /// Whether `node` may inject new packets this cycle. Router Parking
    /// stalls all injection during Fabric-Manager reconfiguration.
    fn injection_allowed(&self, _net: &dyn PowerView, _node: NodeId) -> bool {
        true
    }

    /// Next-event horizon for time-domain skipping. Called only while the
    /// fabric is quiescent (no flits anywhere, no NIC backlog, no pending
    /// wakeup requests); returns the earliest cycle `>= core.cycle` at
    /// which [`PowerMechanism::step`] might do anything — mutate its own
    /// state, drive a power transition, or bump a counter — assuming
    /// quiescence persists until then. `None` means the mechanism is
    /// fully settled and will never self-schedule work.
    ///
    /// The contract: for every cycle strictly before the returned horizon,
    /// `step` must be a provable no-op, because the kernel will *not call
    /// it* for skipped cycles. The conservative default pins the horizon
    /// to the present, which disables skipping entirely — custom
    /// mechanisms stay bit-correct without opting in.
    fn next_event(&self, core: &NetworkCore) -> Option<Cycle> {
        Some(core.cycle)
    }

    /// Report mechanism-specific state-legality violations to the
    /// invariant auditor (see [`crate::network::audit`]): call `report`
    /// once per broken rule with a human-readable description. Invoked
    /// only at audit boundaries (between steps, every audit interval), so
    /// implementations may inspect the whole fabric. The default reports
    /// nothing — mechanisms without protocol invariants stay untouched.
    fn audit_state(&self, _core: &NetworkCore, _report: &mut dyn FnMut(String)) {}

    // --- Sharded control step (opt-in; see `network::par::control_phase`) ---
    //
    // A mechanism opts in by returning `true` from `sharded_control` and
    // restructuring its `step` as exactly:
    //
    //   control_prologue(core);
    //   for n in 0..core.nodes() { control_node(core, n); }
    //   control_epilogue(core);
    //
    // The parallel kernel then replaces the middle loop with a parallel
    // read-only `control_quiet` verdict pass plus a serial replay of
    // `control_node` over the non-quiet nodes (escalating to all
    // remaining nodes after the first core mutation), which is
    // bit-identical by construction. Mechanisms with cross-fabric control
    // state (Router Parking's Fabric Manager) simply don't opt in and
    // keep the sequential `step`.

    /// Whether this mechanism's control step may run through the sharded
    /// phase-4 path. Defaults to `false`: the sequential
    /// [`PowerMechanism::step`] is always correct.
    fn sharded_control(&self) -> bool {
        false
    }

    /// Serial pre-scan work of the control step: drain wakeup requests,
    /// run cross-fabric scans — anything the per-node bodies depend on.
    fn control_prologue(&mut self, _core: &mut NetworkCore) {}

    /// Read-only verdict for node `n`, evaluated against pre-step state:
    /// return `true` only if [`PowerMechanism::control_node`] for `n`
    /// would be a complete no-op (no core mutation *and* no own-control
    /// state change), provided no lower-id node mutates the core first.
    /// Must be safe to call concurrently from worker threads. The
    /// conservative default (`false` everywhere) degenerates to the
    /// sequential scan.
    fn control_quiet(&self, _core: &NetworkCore, _n: NodeId) -> bool {
        false
    }

    /// The exact sequential per-node body of the control step. Returns
    /// `true` iff it mutated the core (a power transition, a handshake
    /// signal — anything another node's body or verdict could observe);
    /// self-only control-state ticks return `false`.
    fn control_node(&mut self, _core: &mut NetworkCore, _n: NodeId) -> bool {
        false
    }

    /// Serial post-scan work of the control step (table rebuilds, trims).
    fn control_epilogue(&mut self, _core: &mut NetworkCore) {}
}

/// A request to create one packet; the core assigns the id and birth cycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PacketRequest {
    pub src: NodeId,
    pub dst: NodeId,
    pub vnet: u8,
    pub len: u16,
}

/// A workload: controls which cores are active and generates traffic.
pub trait Workload {
    /// Update the active-core set for this cycle. Return `true` if anything
    /// changed (Router Parking reconfigures on changes).
    fn update_cores(&mut self, cycle: Cycle, active: &mut [bool]) -> bool;

    /// Generate this cycle's new packets into `out`. Implementations must
    /// only use active sources and active destinations.
    fn generate(&mut self, cycle: Cycle, active: &[bool], out: &mut Vec<PacketRequest>);

    /// Network feedback delivered once per cycle before [`Workload::generate`]:
    /// packets delivered so far and packets still in flight (including
    /// NIC-queued). Closed-loop workloads (the PARSEC proxy) throttle on
    /// this, the way cores throttle on outstanding misses; open-loop
    /// synthetic workloads ignore it.
    fn set_feedback(&mut self, _delivered: u64, _in_flight: u64) {}

    /// For work-based runs: report whether the workload is finished given
    /// the number of packets delivered so far. Cycle-based runs ignore this.
    fn done(&self, _delivered_packets: u64) -> bool {
        false
    }

    /// Next-event horizon for time-domain skipping: the earliest cycle
    /// `>= now` at which this workload may generate a packet or change the
    /// active-core set, assuming neither [`Workload::update_cores`] nor
    /// [`Workload::generate`] is called in between. `None` means the
    /// workload will never act again. Cycles strictly before the horizon
    /// are skipped without calling the workload at all, so an optimistic
    /// answer silently drops traffic; the conservative default (the
    /// present cycle) disables skipping.
    fn next_event(&self, now: Cycle) -> Option<Cycle> {
        Some(now)
    }
}

/// The trivial workload: all cores active, no traffic. Useful in tests.
pub struct SilentWorkload;

impl Workload for SilentWorkload {
    fn update_cores(&mut self, _cycle: Cycle, _active: &mut [bool]) -> bool {
        false
    }

    fn generate(&mut self, _cycle: Cycle, _active: &[bool], _out: &mut Vec<PacketRequest>) {}

    fn next_event(&self, _now: Cycle) -> Option<Cycle> {
        None
    }
}

/// Replays an explicit list of `(cycle, request)` events; used heavily in
/// unit and integration tests for precise scenarios.
pub struct ScriptedWorkload {
    /// Sorted by cycle.
    pub events: Vec<(Cycle, PacketRequest)>,
    next: usize,
    /// Core-activity switch events, sorted by cycle: `(cycle, node, active)`.
    pub core_events: Vec<(Cycle, NodeId, bool)>,
    next_core: usize,
}

impl ScriptedWorkload {
    pub fn new(mut events: Vec<(Cycle, PacketRequest)>) -> ScriptedWorkload {
        events.sort_by_key(|e| e.0);
        ScriptedWorkload { events, next: 0, core_events: Vec::new(), next_core: 0 }
    }

    pub fn with_core_events(mut self, mut ev: Vec<(Cycle, NodeId, bool)>) -> ScriptedWorkload {
        ev.sort_by_key(|e| e.0);
        self.core_events = ev;
        self.next_core = 0;
        self
    }
}

impl Workload for ScriptedWorkload {
    fn update_cores(&mut self, cycle: Cycle, active: &mut [bool]) -> bool {
        let mut changed = false;
        while self.next_core < self.core_events.len() && self.core_events[self.next_core].0 <= cycle
        {
            let (_, node, on) = self.core_events[self.next_core];
            if active[node as usize] != on {
                active[node as usize] = on;
                changed = true;
            }
            self.next_core += 1;
        }
        changed
    }

    fn generate(&mut self, cycle: Cycle, _active: &[bool], out: &mut Vec<PacketRequest>) {
        while self.next < self.events.len() && self.events[self.next].0 <= cycle {
            out.push(self.events[self.next].1);
            self.next += 1;
        }
    }

    fn done(&self, delivered_packets: u64) -> bool {
        self.next >= self.events.len() && delivered_packets >= self.events.len() as u64
    }

    fn next_event(&self, now: Cycle) -> Option<Cycle> {
        let pkt = self.events.get(self.next).map(|e| e.0);
        let core = self.core_events.get(self.next_core).map(|e| e.0);
        match (pkt, core) {
            (Some(a), Some(b)) => Some(a.min(b).max(now)),
            (Some(a), None) => Some(a.max(now)),
            (None, Some(b)) => Some(b.max(now)),
            (None, None) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scripted_workload_releases_in_order() {
        let req = |src, dst| PacketRequest { src, dst, vnet: 0, len: 4 };
        let mut w = ScriptedWorkload::new(vec![(10, req(0, 1)), (5, req(1, 2)), (10, req(2, 3))]);
        let mut out = Vec::new();
        w.generate(4, &[], &mut out);
        assert!(out.is_empty());
        w.generate(5, &[], &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].src, 1);
        out.clear();
        w.generate(10, &[], &mut out);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn scripted_core_events_apply_once() {
        let mut w =
            ScriptedWorkload::new(vec![]).with_core_events(vec![(5, 2, false), (9, 2, true)]);
        let mut active = vec![true; 4];
        assert!(!w.update_cores(4, &mut active));
        assert!(w.update_cores(5, &mut active));
        assert!(!active[2]);
        assert!(!w.update_cores(6, &mut active));
        assert!(w.update_cores(9, &mut active));
        assert!(active[2]);
    }

    #[test]
    fn scripted_next_event_follows_cursors() {
        let req = |src, dst| PacketRequest { src, dst, vnet: 0, len: 4 };
        let mut w = ScriptedWorkload::new(vec![(10, req(0, 1))])
            .with_core_events(vec![(5, 2, false), (20, 2, true)]);
        assert_eq!(w.next_event(0), Some(5));
        let mut active = vec![true; 4];
        w.update_cores(5, &mut active);
        assert_eq!(w.next_event(6), Some(10));
        let mut out = Vec::new();
        w.generate(10, &active, &mut out);
        assert_eq!(w.next_event(11), Some(20));
        // A past event clamps to the present (never claims a past horizon).
        assert_eq!(w.next_event(25), Some(25));
        w.update_cores(25, &mut active);
        assert_eq!(w.next_event(25), None);
        assert_eq!(SilentWorkload.next_event(0), None);
    }

    #[test]
    fn scripted_done_requires_delivery() {
        let req = PacketRequest { src: 0, dst: 1, vnet: 0, len: 1 };
        let mut w = ScriptedWorkload::new(vec![(0, req)]);
        let mut out = Vec::new();
        w.generate(0, &[], &mut out);
        assert!(!w.done(0));
        assert!(w.done(1));
    }
}
