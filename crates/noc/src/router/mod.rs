//! The FLOV router model: baseline 3-stage VC router state plus the FLOV
//! additions (output latches, power state, PSR-visible neighbor states).
//!
//! Pipeline *logic* lives in [`crate::network::pipeline`]; this module owns
//! the per-router state and its invariants.

pub mod arbiter;

use crate::buffer::{CreditCounter, VcBuffer};
use crate::config::NocConfig;
use crate::flit::Flit;
use crate::types::{Coord, Cycle, Dir, NodeId, PowerState, NUM_PORTS};
use arbiter::RoundRobin;

/// Ownership of one downstream input VC, tracked at the upstream router.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VcOwner {
    /// No wormhole currently allocated to this VC.
    Free,
    /// A wormhole from local input `(port, flat vc)` holds the VC until its
    /// tail flit departs.
    Owned { in_port: u8, in_vc: u16 },
}

/// One input virtual channel: buffer plus wormhole/pipeline state.
#[derive(Clone, Debug)]
pub struct InVc {
    pub buf: VcBuffer,
    /// Output port + downstream VC granted by VC allocation; present while a
    /// wormhole is in flight through this input VC.
    pub alloc: Option<(u8, u8)>,
    /// Cycle the current front *head* flit became front (route compute
    /// starts then; VA is legal from `head_since + 1`). Also drives the
    /// escape-timeout diversion.
    pub head_since: Cycle,
}

impl InVc {
    fn new(depth: usize) -> InVc {
        InVc { buf: VcBuffer::new(depth), alloc: None, head_since: 0 }
    }

    /// True if this VC is completely quiescent.
    #[inline]
    pub fn is_idle(&self) -> bool {
        self.buf.is_empty() && self.alloc.is_none()
    }
}

/// Per-router state.
#[derive(Clone, Debug)]
pub struct Router {
    pub id: NodeId,
    pub coord: Coord,
    pub power: PowerState,
    /// Input VCs, flattened `[port][vnet * vcs + vc]`.
    pub inputs: Vec<InVc>,
    /// Credit counters toward the *logical* downstream per output port,
    /// flattened like `inputs`. Local (ejection) port entries are unused.
    pub out_credits: Vec<CreditCounter>,
    /// Downstream VC ownership per output port, flattened like `inputs`.
    pub out_vc_state: Vec<VcOwner>,
    /// FLOV output latches, one per direction, live while power-gated.
    /// Entry is `(cycle latched, flit)`.
    pub latches: [Option<(Cycle, Flit)>; 4],
    /// True if this router has FLOV links in the X dimension (neighbors on
    /// both the East and West sides).
    pub flov_x: bool,
    /// True if this router has FLOV links in the Y dimension.
    pub flov_y: bool,
    /// SA stage-1 arbiter: per input port, over that port's VCs.
    pub sa_in: Vec<RoundRobin>,
    /// SA stage-2 arbiter: per output port, over input ports.
    pub sa_out: Vec<RoundRobin>,
    /// VA arbiter: rotates the scan origin over input VCs.
    pub va_rr: RoundRobin,
    /// Occupancy fast path: flits buffered per input port.
    pub port_occupancy: [u32; NUM_PORTS],
    /// Occupancy fast path: bit `v` of `vc_busy[p]` mirrors "the buffer of
    /// input VC `(p, v)` is non-empty". Maintained by [`Router::push_flit`]
    /// and [`Router::pop_flit`]; lets the allocators visit only occupied
    /// slots via `trailing_zeros` instead of scanning every VC.
    pub vc_busy: [u64; NUM_PORTS],
    /// Last cycle with local-port activity (inject/eject/queued traffic);
    /// drives the idle-detection that precedes draining.
    pub last_local_activity: Cycle,
    total_vcs: usize,
}

impl Router {
    pub fn new(cfg: &NocConfig, id: NodeId) -> Router {
        let spec = cfg.topology_spec();
        let coord = Coord { x: id % spec.kx(), y: id / spec.kx() };
        // FLOV latch capability: a gated router can fly flits over in a
        // dimension iff it has physical links on both sides of it — the
        // grid interior, or anywhere on a torus.
        let (flov_x, flov_y) = spec.flov_capability(coord);
        let total_vcs = cfg.total_vcs();
        assert!(total_vcs <= 64, "per-port VC bitmasks hold at most 64 VCs");
        let n = NUM_PORTS * total_vcs;
        Router {
            id,
            coord,
            power: PowerState::Active,
            inputs: (0..n).map(|_| InVc::new(cfg.buf_depth)).collect(),
            out_credits: (0..n).map(|_| CreditCounter::new_full(cfg.buf_depth)).collect(),
            out_vc_state: vec![VcOwner::Free; n],
            latches: [None; 4],
            flov_x,
            flov_y,
            sa_in: (0..NUM_PORTS).map(|_| RoundRobin::new(total_vcs)).collect(),
            sa_out: (0..NUM_PORTS).map(|_| RoundRobin::new(NUM_PORTS)).collect(),
            va_rr: RoundRobin::new(NUM_PORTS * total_vcs),
            port_occupancy: [0; NUM_PORTS],
            vc_busy: [0; NUM_PORTS],
            last_local_activity: 0,
            total_vcs,
        }
    }

    /// Flattened index for `(port, flat vc)`.
    #[inline]
    pub fn slot(&self, port: usize, vc: usize) -> usize {
        port * self.total_vcs + vc
    }

    /// Total VCs per port.
    #[inline]
    pub fn total_vcs(&self) -> usize {
        self.total_vcs
    }

    /// True if this router can fly flits over in direction `d` while gated.
    #[inline]
    pub fn has_flov(&self, d: Dir) -> bool {
        if d.is_x() {
            self.flov_x
        } else {
            self.flov_y
        }
    }

    /// All input buffers empty and no outbound wormhole in progress:
    /// the condition for finishing the drain.
    pub fn is_drained(&self) -> bool {
        self.inputs.iter().all(|vc| vc.is_idle())
            && self.out_vc_state.iter().all(|s| *s == VcOwner::Free)
    }

    /// All FLOV latches empty (wakeup completion condition).
    #[inline]
    pub fn latches_empty(&self) -> bool {
        self.latches.iter().all(|l| l.is_none())
    }

    /// Number of buffered flits across all input ports.
    pub fn buffered_flits(&self) -> u32 {
        self.port_occupancy.iter().sum()
    }

    /// Buffer a flit into input VC slot `s` of `port`, maintaining the
    /// occupancy fast paths (`port_occupancy`, `vc_busy`) and starting the
    /// RC clock when a head flit reaches the buffer front.
    #[inline]
    pub fn push_flit(&mut self, port: usize, s: usize, f: Flit, now: Cycle) {
        let was_empty = self.inputs[s].buf.is_empty();
        self.inputs[s].buf.push(f);
        if was_empty {
            self.vc_busy[port] |= 1 << (s - port * self.total_vcs);
            if f.kind.is_head() {
                self.inputs[s].head_since = now;
            }
        }
        self.port_occupancy[port] += 1;
    }

    /// Pop the front flit of input VC slot `s` of `port`, maintaining the
    /// occupancy fast paths. Panics if the buffer is empty.
    #[inline]
    pub fn pop_flit(&mut self, port: usize, s: usize) -> Flit {
        let f = self.inputs[s].buf.pop().expect("pop from an empty input VC");
        self.port_occupancy[port] -= 1;
        if self.inputs[s].buf.is_empty() {
            self.vc_busy[port] &= !(1 << (s - port * self.total_vcs));
        }
        f
    }

    /// Record local-port activity at `now` (idle detector input).
    #[inline]
    pub fn touch_local(&mut self, now: Cycle) {
        self.last_local_activity = now;
    }

    /// Cycles since the local port was last active.
    #[inline]
    pub fn local_idle(&self, now: Cycle) -> Cycle {
        now.saturating_sub(self.last_local_activity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> NocConfig {
        NocConfig::default()
    }

    #[test]
    fn new_router_is_quiescent() {
        let r = Router::new(&cfg(), 9);
        assert_eq!(r.power, PowerState::Active);
        assert!(r.is_drained());
        assert!(r.latches_empty());
        assert_eq!(r.buffered_flits(), 0);
    }

    #[test]
    fn slot_layout_is_dense_and_unique() {
        let c = cfg();
        let r = Router::new(&c, 0);
        let mut seen = std::collections::HashSet::new();
        for p in 0..NUM_PORTS {
            for v in 0..c.total_vcs() {
                assert!(seen.insert(r.slot(p, v)));
            }
        }
        assert_eq!(seen.len(), r.inputs.len());
        assert_eq!(*seen.iter().max().unwrap() + 1, r.inputs.len());
    }

    #[test]
    fn flov_capability_by_position() {
        let c = cfg(); // 8x8
                       // Corner: no FLOV links at all.
        let corner = Router::new(&c, 0);
        assert!(!corner.flov_x && !corner.flov_y);
        // South edge (3,0): X only.
        let edge = Router::new(&c, 3);
        assert!(edge.flov_x && !edge.flov_y);
        // West edge (0,3): Y only.
        let wedge = Router::new(&c, 3 * 8);
        assert!(!wedge.flov_x && wedge.flov_y);
        // Interior: both.
        let mid = Router::new(&c, 3 * 8 + 3);
        assert!(mid.flov_x && mid.flov_y);
        assert!(mid.has_flov(Dir::East) && mid.has_flov(Dir::North));
    }

    #[test]
    fn idle_detector_counts_from_touch() {
        let mut r = Router::new(&cfg(), 5);
        r.touch_local(100);
        assert_eq!(r.local_idle(130), 30);
        assert_eq!(r.local_idle(100), 0);
        assert_eq!(r.local_idle(50), 0); // saturating
    }

    #[test]
    fn push_pop_maintain_occupancy_fast_paths() {
        let c = cfg();
        let mut r = Router::new(&c, 5);
        let p = crate::packet::Packet { id: 1, src: 0, dst: 5, vnet: 0, len: 2, birth: 0 };
        let port = 2;
        let s = r.slot(port, 3);
        r.push_flit(port, s, p.flit(0, 10), 10);
        assert_eq!(r.inputs[s].head_since, 10);
        r.push_flit(port, s, p.flit(1, 11), 11);
        assert_eq!(r.inputs[s].head_since, 10, "non-front flit must not reset the RC clock");
        assert_eq!(r.port_occupancy[port], 2);
        assert_eq!(r.vc_busy[port], 1 << 3);
        assert!(r.pop_flit(port, s).kind.is_head());
        assert_eq!(r.vc_busy[port], 1 << 3, "mask stays set while flits remain");
        r.pop_flit(port, s);
        assert_eq!(r.port_occupancy[port], 0);
        assert_eq!(r.vc_busy[port], 0);
    }

    #[test]
    fn drained_detects_owned_vc() {
        let c = cfg();
        let mut r = Router::new(&c, 5);
        assert!(r.is_drained());
        r.out_vc_state[3] = VcOwner::Owned { in_port: 0, in_vc: 1 };
        assert!(!r.is_drained());
    }
}
