//! Round-robin arbitration for the separable switch allocator.

/// A rotating-priority (round-robin) arbiter over `n` requesters.
///
/// Grants the first requester at or after the last winner + 1, which is the
/// standard matrix-free round-robin used in NoC switch allocators: starvation
/// free and O(n) per arbitration with no allocation.
#[derive(Clone, Debug)]
pub struct RoundRobin {
    n: usize,
    last: usize,
}

impl RoundRobin {
    pub fn new(n: usize) -> RoundRobin {
        assert!(n > 0);
        RoundRobin { n, last: n - 1 }
    }

    /// Grant among requesters for which `req(i)` is true; updates priority.
    #[inline]
    pub fn grant(&mut self, mut req: impl FnMut(usize) -> bool) -> Option<usize> {
        for off in 1..=self.n {
            let i = (self.last + off) % self.n;
            if req(i) {
                self.last = i;
                return Some(i);
            }
        }
        None
    }

    /// Grant without updating the priority pointer (for speculative passes).
    #[inline]
    pub fn peek(&self, mut req: impl FnMut(usize) -> bool) -> Option<usize> {
        for off in 1..=self.n {
            let i = (self.last + off) % self.n;
            if req(i) {
                return Some(i);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grants_rotate_fairly() {
        let mut rr = RoundRobin::new(4);
        // All requesting: must cycle 0,1,2,3,0,...
        let seq: Vec<usize> = (0..8).map(|_| rr.grant(|_| true).unwrap()).collect();
        assert_eq!(seq, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn skips_non_requesters() {
        let mut rr = RoundRobin::new(4);
        assert_eq!(rr.grant(|i| i == 2), Some(2));
        assert_eq!(rr.grant(|i| i == 2), Some(2));
        assert_eq!(rr.grant(|i| i != 2), Some(3));
    }

    #[test]
    fn none_when_no_requests() {
        let mut rr = RoundRobin::new(3);
        assert_eq!(rr.grant(|_| false), None);
        // Priority pointer unchanged by failed grants.
        assert_eq!(rr.grant(|_| true), Some(0));
    }

    #[test]
    fn no_starvation_under_contention() {
        let mut rr = RoundRobin::new(5);
        let mut counts = [0usize; 5];
        for _ in 0..100 {
            let g = rr.grant(|_| true).unwrap();
            counts[g] += 1;
        }
        for c in counts {
            assert_eq!(c, 20);
        }
    }

    #[test]
    fn peek_does_not_advance() {
        let mut rr = RoundRobin::new(4);
        assert_eq!(rr.peek(|_| true), Some(0));
        assert_eq!(rr.peek(|_| true), Some(0));
        assert_eq!(rr.grant(|_| true), Some(0));
        assert_eq!(rr.peek(|_| true), Some(1));
    }
}
