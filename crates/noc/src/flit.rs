//! Flits: the unit of flow control.
//!
//! A flit is a small `Copy` struct; the hot loop moves flits by value and
//! never allocates. Latency accounting (paper Fig. 8a/b breakdown) rides
//! along in per-flit hop counters and is finalized at ejection.

use crate::types::{Cycle, NodeId, PacketId};
use serde::{Deserialize, Serialize};

/// Position of a flit within its packet.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
#[repr(u8)]
pub enum FlitKind {
    /// First flit of a multi-flit packet.
    Head,
    /// Interior flit.
    Body,
    /// Last flit of a multi-flit packet.
    Tail,
    /// Single-flit packet (head and tail at once).
    Single,
}

impl FlitKind {
    #[inline]
    pub fn is_head(self) -> bool {
        matches!(self, FlitKind::Head | FlitKind::Single)
    }

    #[inline]
    pub fn is_tail(self) -> bool {
        matches!(self, FlitKind::Tail | FlitKind::Single)
    }

    /// Kind of flit `idx` in a packet of `len` flits.
    #[inline]
    pub fn of(idx: u16, len: u16) -> FlitKind {
        debug_assert!(idx < len && len >= 1);
        if len == 1 {
            FlitKind::Single
        } else if idx == 0 {
            FlitKind::Head
        } else if idx == len - 1 {
            FlitKind::Tail
        } else {
            FlitKind::Body
        }
    }
}

/// One flit in flight.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Flit {
    /// Packet this flit belongs to.
    pub packet: PacketId,
    /// Head/Body/Tail/Single.
    pub kind: FlitKind,
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Virtual network (message class).
    pub vnet: u8,
    /// VC (within the vnet) allocated for this flit at the downstream input
    /// buffer it is currently heading to. Set at injection and re-set at
    /// each VC allocation.
    pub vc: u8,
    /// True once the packet has been diverted into the escape sub-network;
    /// it then stays in escape VCs until ejection.
    pub escape: bool,
    /// Index of this flit within the packet.
    pub flit_idx: u16,
    /// Packet length in flits (serialization latency = len - 1).
    pub pkt_len: u16,
    /// Cycle the packet was created at the source NIC (includes source
    /// queueing in total latency).
    pub birth: Cycle,
    /// Cycle this flit entered the network (left the NIC source queue).
    pub inject: Cycle,
    /// Powered-on routers traversed (each costs the full pipeline).
    pub hops_router: u16,
    /// FLOV latches traversed (each costs one cycle).
    pub hops_flov: u16,
    /// Link traversals (including the final ejection link).
    pub hops_link: u16,
    /// Integrity check word; must survive the trip unchanged
    /// (property tests verify conservation and integrity).
    pub payload: u64,
}

impl Flit {
    /// Canonical payload for flit `idx` of packet `packet`; lets the receiver
    /// verify end-to-end integrity without a side table.
    #[inline]
    pub fn expected_payload(packet: PacketId, idx: u16) -> u64 {
        // SplitMix64-style mix of the identifying pair.
        let mut z = packet ^ ((idx as u64) << 48) ^ 0xA076_1D64_78BD_642F;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// True if the payload matches the canonical value.
    #[inline]
    pub fn integrity_ok(&self) -> bool {
        self.payload == Self::expected_payload(self.packet, self.flit_idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_of_single() {
        assert_eq!(FlitKind::of(0, 1), FlitKind::Single);
        assert!(FlitKind::Single.is_head());
        assert!(FlitKind::Single.is_tail());
    }

    #[test]
    fn kind_of_multiflit() {
        assert_eq!(FlitKind::of(0, 4), FlitKind::Head);
        assert_eq!(FlitKind::of(1, 4), FlitKind::Body);
        assert_eq!(FlitKind::of(2, 4), FlitKind::Body);
        assert_eq!(FlitKind::of(3, 4), FlitKind::Tail);
    }

    #[test]
    fn head_tail_predicates() {
        assert!(FlitKind::Head.is_head());
        assert!(!FlitKind::Head.is_tail());
        assert!(FlitKind::Tail.is_tail());
        assert!(!FlitKind::Tail.is_head());
        assert!(!FlitKind::Body.is_head());
        assert!(!FlitKind::Body.is_tail());
    }

    #[test]
    fn payload_distinguishes_flits() {
        let a = Flit::expected_payload(1, 0);
        let b = Flit::expected_payload(1, 1);
        let c = Flit::expected_payload(2, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }

    #[test]
    fn flit_is_small() {
        // Flits are copied by value every cycle; keep them compact.
        assert!(std::mem::size_of::<Flit>() <= 64);
    }
}
