//! Run statistics: aggregate latency (with the Fig. 8 breakdown), throughput,
//! and an optional per-interval latency timeline (Fig. 10).

use crate::packet::DeliveredPacket;
use serde::{Deserialize, Serialize};

/// Accumulated latency components over all measured packets, in cycle-sums.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct LatencyBreakdown {
    pub router: u64,
    pub link: u64,
    pub serialization: u64,
    pub contention: u64,
    pub flov: u64,
}

impl LatencyBreakdown {
    pub fn total(&self) -> u64 {
        self.router + self.link + self.serialization + self.contention + self.flov
    }

    /// Per-packet averages given a packet count.
    pub fn averages(&self, packets: u64) -> [f64; 5] {
        if packets == 0 {
            return [0.0; 5];
        }
        let n = packets as f64;
        [
            self.router as f64 / n,
            self.link as f64 / n,
            self.serialization as f64 / n,
            self.contention as f64 / n,
            self.flov as f64 / n,
        ]
    }
}

/// Power-of-two latency histogram: bucket `i` counts total latencies in
/// `[2^i, 2^(i+1))` (bucket 0 covers 0 and 1). Compact, allocation-free,
/// and good enough for p50/p95/p99 tails.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct LatencyHistogram {
    buckets: [u64; 32],
    count: u64,
}

impl LatencyHistogram {
    #[inline]
    fn bucket_of(latency: u64) -> usize {
        (64 - latency.max(1).leading_zeros() as usize - 1).min(31)
    }

    /// Record one latency sample.
    #[inline]
    pub fn record(&mut self, latency: u64) {
        self.buckets[Self::bucket_of(latency)] += 1;
        self.count += 1;
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The *lower edge* of the bucket containing the q-quantile
    /// (0.0..=1.0). Convention: with bucket `i` spanning `[2^i, 2^(i+1))`,
    /// the reported value is `2^i`, so the true quantile sample `s`
    /// satisfies `value <= s < 2 * value` (bucket 0, which also absorbs
    /// latency 0, reports 1). The previous convention returned the bucket's
    /// *upper* edge `2^(i+1) - 1`, which overstated p50/p95/p99 by up to
    /// 2x; the lower edge never overstates. Returns 0 with no samples.
    pub fn quantile_lower(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((self.count as f64) * q.clamp(0.0, 1.0)).ceil() as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target.max(1) {
                return 1u64 << i;
            }
        }
        u64::MAX
    }

    /// Shorthand: (p50, p95, p99) bucket lower edges.
    pub fn percentiles(&self) -> (u64, u64, u64) {
        (self.quantile_lower(0.50), self.quantile_lower(0.95), self.quantile_lower(0.99))
    }
}

/// One bucket of the latency timeline: packets ejected in
/// `[start, start + width)`.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct IntervalSample {
    pub start: u64,
    pub packets: u64,
    pub latency_sum: u64,
}

impl IntervalSample {
    pub fn avg_latency(&self) -> f64 {
        if self.packets == 0 {
            0.0
        } else {
            self.latency_sum as f64 / self.packets as f64
        }
    }
}

/// Statistics collector. Packets *born* inside the measurement window are
/// counted; warmup packets are delivered but ignored, matching the paper's
/// 10k-cycle warmup methodology.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct NetStats {
    /// Packets born at or after this cycle are measured.
    pub measure_from: u64,
    /// Packets born after this cycle are not measured (exclusive bound);
    /// `u64::MAX` means "until the end".
    pub measure_until: u64,
    pipeline_stages: u32,
    link_latency: u32,
    /// Measured packets delivered.
    pub packets: u64,
    /// Measured flits delivered.
    pub flits: u64,
    /// Sum of total latencies of measured packets.
    pub latency_sum: u64,
    /// Max total latency observed.
    pub latency_max: u64,
    pub breakdown: LatencyBreakdown,
    /// Measured packets that used the escape sub-network.
    pub escape_packets: u64,
    /// Sum of per-packet powered-router hop counts.
    pub hop_sum: u64,
    /// Sum of per-packet FLOV hop counts.
    pub flov_hop_sum: u64,
    /// Latency histogram of measured packets (percentile estimation).
    pub histogram: LatencyHistogram,
    /// Per-vnet (message class) packet counts and latency sums, up to 8
    /// vnets — separates e.g. coherence-control from data-response latency
    /// in full-system runs.
    pub per_vnet: [(u64, u64); 8],
    /// Interval width for the timeline (0 disables).
    pub interval_width: u64,
    /// Latency timeline by ejection cycle (includes warmup packets so the
    /// full execution is visible, as in Fig. 10).
    pub timeline: Vec<IntervalSample>,
    /// Self-addressed packet requests rejected at the NIC (`src == dst`
    /// has no loopback path in the model); counted over the whole run,
    /// not just the measurement window. Serialized with the rest of the
    /// stats — see DESIGN.md §4c for the schema note.
    pub self_addressed_dropped: u64,
}

impl NetStats {
    pub fn new(measure_from: u64, pipeline_stages: u32, link_latency: u32) -> NetStats {
        NetStats {
            measure_from,
            measure_until: u64::MAX,
            pipeline_stages,
            link_latency,
            packets: 0,
            flits: 0,
            latency_sum: 0,
            latency_max: 0,
            breakdown: LatencyBreakdown::default(),
            escape_packets: 0,
            hop_sum: 0,
            flov_hop_sum: 0,
            histogram: LatencyHistogram::default(),
            per_vnet: [(0, 0); 8],
            interval_width: 0,
            timeline: Vec::new(),
            self_addressed_dropped: 0,
        }
    }

    /// Enable the per-interval timeline with the given bucket width.
    pub fn with_timeline(mut self, width: u64) -> NetStats {
        self.interval_width = width;
        self
    }

    /// Record a delivered packet.
    pub fn record(&mut self, d: &DeliveredPacket) {
        if let Some(bucket) = d.eject.checked_div(self.interval_width) {
            let bucket = bucket as usize;
            if self.timeline.len() <= bucket {
                self.timeline.resize_with(bucket + 1, IntervalSample::default);
                for (i, s) in self.timeline.iter_mut().enumerate() {
                    s.start = i as u64 * self.interval_width;
                }
            }
            let s = &mut self.timeline[bucket];
            s.packets += 1;
            s.latency_sum += d.total_latency();
        }
        if d.birth < self.measure_from || d.birth >= self.measure_until {
            return;
        }
        self.packets += 1;
        self.flits += d.len as u64;
        let total = d.total_latency();
        self.latency_sum += total;
        self.latency_max = self.latency_max.max(total);
        self.histogram.record(total);
        if (d.vnet as usize) < self.per_vnet.len() {
            let e = &mut self.per_vnet[d.vnet as usize];
            e.0 += 1;
            e.1 += total;
        }
        self.breakdown.router += d.router_latency(self.pipeline_stages);
        self.breakdown.link += d.link_latency(self.link_latency);
        self.breakdown.serialization += d.serialization_latency();
        self.breakdown.flov += d.flov_latency();
        self.breakdown.contention += d.contention_latency(self.pipeline_stages, self.link_latency);
        if d.used_escape {
            self.escape_packets += 1;
        }
        self.hop_sum += d.hops_router as u64;
        self.flov_hop_sum += d.hops_flov as u64;
    }

    /// Mean total packet latency over the measurement window.
    pub fn avg_latency(&self) -> f64 {
        if self.packets == 0 {
            0.0
        } else {
            self.latency_sum as f64 / self.packets as f64
        }
    }

    /// Mean powered-router hops per packet.
    pub fn avg_hops(&self) -> f64 {
        if self.packets == 0 {
            0.0
        } else {
            self.hop_sum as f64 / self.packets as f64
        }
    }

    /// Mean FLOV-latch hops per packet.
    pub fn avg_flov_hops(&self) -> f64 {
        if self.packets == 0 {
            0.0
        } else {
            self.flov_hop_sum as f64 / self.packets as f64
        }
    }

    /// Mean latency of one vnet's packets (0.0 if none).
    pub fn vnet_avg_latency(&self, vnet: usize) -> f64 {
        let (n, sum) = self.per_vnet[vnet];
        if n == 0 {
            0.0
        } else {
            sum as f64 / n as f64
        }
    }

    /// Delivered throughput in flits per cycle over `cycles`.
    pub fn throughput(&self, cycles: u64) -> f64 {
        if cycles == 0 {
            0.0
        } else {
            self.flits as f64 / cycles as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn delivered(birth: u64, eject: u64) -> DeliveredPacket {
        DeliveredPacket {
            id: 1,
            src: 0,
            dst: 5,
            vnet: 0,
            len: 4,
            birth,
            inject: birth,
            eject,
            hops_router: 3,
            hops_flov: 1,
            hops_link: 4,
            used_escape: false,
        }
    }

    #[test]
    fn warmup_packets_excluded() {
        let mut s = NetStats::new(100, 3, 1);
        s.record(&delivered(50, 80));
        assert_eq!(s.packets, 0);
        s.record(&delivered(100, 140));
        assert_eq!(s.packets, 1);
        assert_eq!(s.latency_sum, 40);
    }

    #[test]
    fn measure_until_bound_excludes() {
        let mut s = NetStats::new(0, 3, 1);
        s.measure_until = 100;
        s.record(&delivered(99, 120));
        s.record(&delivered(100, 130));
        assert_eq!(s.packets, 1);
    }

    #[test]
    fn breakdown_components_sum_to_total() {
        let mut s = NetStats::new(0, 3, 1);
        s.record(&delivered(0, 60));
        s.record(&delivered(10, 50));
        assert_eq!(s.breakdown.total(), s.latency_sum);
    }

    #[test]
    fn averages_divide_by_count() {
        let mut s = NetStats::new(0, 3, 1);
        s.record(&delivered(0, 40));
        s.record(&delivered(0, 60));
        assert!((s.avg_latency() - 50.0).abs() < 1e-9);
        assert!((s.avg_hops() - 3.0).abs() < 1e-9);
        assert!((s.avg_flov_hops() - 1.0).abs() < 1e-9);
        let avgs = s.breakdown.averages(s.packets);
        let sum: f64 = avgs.iter().sum();
        assert!((sum - 50.0).abs() < 1e-9);
    }

    #[test]
    fn timeline_buckets_by_ejection() {
        let mut s = NetStats::new(1_000_000, 3, 1).with_timeline(100);
        s.record(&delivered(0, 50));
        s.record(&delivered(0, 250));
        assert_eq!(s.timeline.len(), 3);
        assert_eq!(s.timeline[0].packets, 1);
        assert_eq!(s.timeline[1].packets, 0);
        assert_eq!(s.timeline[2].packets, 1);
        assert_eq!(s.timeline[2].start, 200);
        // Timeline includes warmup packets; measured stats do not.
        assert_eq!(s.packets, 0);
    }

    #[test]
    fn histogram_buckets_powers_of_two() {
        let mut h = LatencyHistogram::default();
        for v in [0u64, 1, 2, 3, 4, 7, 8, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 8);
        // The largest sample (1000) sits in bucket 9 = [512, 1024); its
        // lower edge is 512.
        assert_eq!(h.quantile_lower(1.0), 512);
        // The 4th-smallest sample (3) sits in bucket 1 = [2, 4).
        assert_eq!(h.quantile_lower(0.5), 2);
    }

    #[test]
    fn histogram_percentiles_ordered() {
        // 20 samples of each value in 10..=59: p50 target is the 500th
        // sample = 32 (bucket 5), and p95/p99 land in the same bucket.
        let mut h = LatencyHistogram::default();
        for i in 0..1000u64 {
            h.record(10 + i % 50);
        }
        let (p50, p95, p99) = h.percentiles();
        assert!(p50 <= p95 && p95 <= p99);
        assert_eq!((p50, p95, p99), (32, 32, 32));
        assert_eq!(h.quantile_lower(0.0), h.quantile_lower(0.001));
    }

    #[test]
    fn quantile_lower_exact_values() {
        // Pins the lower-edge convention: the reported value is the lower
        // edge 2^i of the bucket holding the ceil(count * q)-th sample, so
        // value <= sample < 2 * value (bucket 0 reports 1 and also covers
        // latency 0).
        let mut h = LatencyHistogram::default();
        for v in [1u64, 2, 16, 100, 300] {
            h.record(v);
        }
        assert_eq!(h.quantile_lower(0.2), 1); // 1st sample: 1, bucket 0
        assert_eq!(h.quantile_lower(0.4), 2); // 2nd sample: 2, bucket 1
        assert_eq!(h.quantile_lower(0.6), 16); // 3rd sample: 16, bucket 4
        assert_eq!(h.quantile_lower(0.8), 64); // 4th sample: 100 in [64,128)
        assert_eq!(h.quantile_lower(1.0), 256); // 5th sample: 300 in [256,512)
        assert_eq!(LatencyHistogram::default().quantile_lower(0.5), 0);
        let mut zeros = LatencyHistogram::default();
        zeros.record(0);
        assert_eq!(zeros.quantile_lower(1.0), 1);
    }

    #[test]
    fn per_vnet_latency_separated() {
        let mut s = NetStats::new(0, 3, 1);
        s.record(&delivered(0, 40));
        let mut d1 = delivered(0, 100);
        d1.vnet = 2;
        s.record(&d1);
        assert_eq!(s.per_vnet[0], (1, 40));
        assert_eq!(s.per_vnet[2], (1, 100));
        assert!((s.vnet_avg_latency(0) - 40.0).abs() < 1e-9);
        assert!((s.vnet_avg_latency(2) - 100.0).abs() < 1e-9);
        assert_eq!(s.vnet_avg_latency(5), 0.0);
    }

    #[test]
    fn stats_feed_histogram() {
        let mut s = NetStats::new(0, 3, 1);
        s.record(&delivered(0, 40));
        s.record(&delivered(0, 400));
        assert_eq!(s.histogram.count(), 2);
        // Latency 400 falls in bucket [256, 512); lower edge 256.
        assert_eq!(s.histogram.quantile_lower(1.0), 256);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = NetStats::new(0, 3, 1);
        assert_eq!(s.avg_latency(), 0.0);
        assert_eq!(s.throughput(100), 0.0);
        assert_eq!(s.breakdown.averages(0), [0.0; 5]);
    }
}
