//! The NoRD bypass ring (Chen & Pinkston, MICRO'12): a unidirectional
//! Hamiltonian ring over all nodes, built from the node-router decoupling
//! bypass at each node. It keeps every NIC reachable even when routers are
//! power-gated — at the cost of O(N) worst-case hop counts, which is the
//! scalability critique the FLOV paper makes of it.
//!
//! Topology: for even `k`, the classic grid Hamiltonian cycle — serpentine
//! through columns x >= 1, return along column x = 0. For odd `k` no
//! Hamiltonian cycle exists on a k x k grid (odd number of cells in a
//! bipartite graph), which reproduces the paper's observation that "a
//! bypass can be constructed in a (k x k) mesh, if and only if k is even".
//!
//! Flow control: credit-based with two virtual channels and a dateline at
//! ring position 0 — packets start on VC0 and switch to VC1 when crossing
//! the dateline, which breaks the cyclic channel dependency of the ring.
//! Each hop takes [`RING_HOP_LATENCY`] cycles (bypass latch + wire).

use crate::flit::Flit;
use crate::types::{Coord, Cycle, NodeId};
use std::collections::VecDeque;

/// Cycles per ring hop (bypass latch + inter-node wire).
pub const RING_HOP_LATENCY: u64 = 2;

/// Ring buffer depth per VC per node.
pub const RING_BUF_DEPTH: usize = 4;

/// Build the Hamiltonian ring successor map for a `k x k` mesh.
/// Returns `None` for odd `k` (no Hamiltonian cycle exists).
pub fn ring_successors(k: u16) -> Option<Vec<NodeId>> {
    if k < 2 || !k.is_multiple_of(2) {
        return None;
    }
    let id = |x: u16, y: u16| Coord::new(x, y).id(k);
    let n = (k as usize) * (k as usize);
    let mut order: Vec<NodeId> = Vec::with_capacity(n);
    // Bottom row eastward: (0,0) .. (k-1,0).
    for x in 0..k {
        order.push(id(x, 0));
    }
    // Serpentine upward through columns x >= 1: row 1..k-1 alternating.
    for y in 1..k {
        if y % 2 == 1 {
            // westward down to x = 1
            for x in (1..k).rev() {
                order.push(id(x, y));
            }
        } else {
            for x in 1..k {
                order.push(id(x, y));
            }
        }
    }
    // Return along column 0 from (0, k-1) down to (0, 1); then back to (0,0).
    for y in (1..k).rev() {
        order.push(id(0, y));
    }
    debug_assert_eq!(order.len(), n);
    let mut succ = vec![0 as NodeId; n];
    for i in 0..n {
        succ[order[i] as usize] = order[(i + 1) % n];
    }
    Some(succ)
}

/// Ring distance (hops) from `a` to `b` following successors.
pub fn ring_distance(succ: &[NodeId], a: NodeId, b: NodeId) -> u32 {
    let mut cur = a;
    let mut hops = 0;
    while cur != b {
        cur = succ[cur as usize];
        hops += 1;
        debug_assert!((hops as usize) <= succ.len(), "ring not a single cycle");
    }
    hops
}

/// One flit riding the ring, tagged with its VC (dateline discipline).
#[derive(Clone, Copy, Debug)]
struct RingFlit {
    flit: Flit,
    vc: u8,
}

/// Per-node ring state.
#[derive(Clone, Debug)]
pub struct RingNode {
    /// Forwarding buffers, one FIFO per VC.
    buf: [VecDeque<RingFlit>; 2],
    /// Credits toward the successor, per VC.
    credits: [u8; 2],
    /// Station: packets entering the ring here (injection from a gated
    /// node's bypass, or mesh-to-ring transfer). Unbounded by design — the
    /// station is NIC-side memory, and it is what breaks mesh<->ring
    /// coupling cycles (documented simplification).
    pub station: VecDeque<Flit>,
    /// Output wormhole lock: the packet currently being forwarded on each
    /// VC (flits of two packets must not interleave).
    out_lock: [Option<u64>; 2],
    /// Which source (0 = ring-through, 1 = station) last won arbitration.
    rr: u8,
}

impl Default for RingNode {
    fn default() -> Self {
        RingNode {
            buf: [VecDeque::new(), VecDeque::new()],
            credits: [RING_BUF_DEPTH as u8; 2],
            station: VecDeque::new(),
            out_lock: [None; 2],
            rr: 0,
        }
    }
}

/// Events the ring hands back to its owner each cycle.
#[derive(Clone, Debug, PartialEq)]
pub enum RingDelivery {
    /// Flit reached its destination node's bypass ejection.
    Eject(NodeId, Flit),
    /// Flit should transfer into the mesh at this (powered) node.
    MeshEntry(NodeId, Flit),
}

/// The bypass ring transport.
#[derive(Clone, Debug)]
pub struct BypassRing {
    succ: Vec<NodeId>,
    pred: Vec<NodeId>,
    nodes: Vec<RingNode>,
    /// In-flight flits: (arrival_cycle, to, RingFlit).
    wire: VecDeque<(Cycle, NodeId, RingFlit)>,
    /// In-flight credits: (arrival_cycle, to, vc).
    credit_wire: VecDeque<(Cycle, NodeId, u8)>,
    /// The dateline sits on the edge out of this node.
    dateline: NodeId,
    /// Total flits forwarded (activity/energy accounting).
    pub flits_forwarded: u64,
    /// Total ring ejections + mesh entries.
    pub flits_delivered: u64,
}

impl BypassRing {
    /// Build the ring for an even-radix mesh. `None` when no Hamiltonian
    /// cycle exists (odd `k`).
    pub fn new(k: u16) -> Option<BypassRing> {
        Some(BypassRing::from_successors(ring_successors(k)?))
    }

    /// Build the ring transport over an arbitrary Hamiltonian successor
    /// map (one entry per node; `succ[n]` is n's ring successor). The
    /// topology layer supplies these — the seed serpentine for even square
    /// meshes, generalized serpentines for rectangles, and the "tornado"
    /// cycle for tori (which admit a ring at any radix, odd included).
    pub fn from_successors(succ: Vec<NodeId>) -> BypassRing {
        let n = succ.len();
        let mut pred = vec![0 as NodeId; n];
        for (a, &b) in succ.iter().enumerate() {
            pred[b as usize] = a as NodeId;
        }
        BypassRing {
            succ,
            pred,
            nodes: vec![RingNode::default(); n],
            wire: VecDeque::new(),
            credit_wire: VecDeque::new(),
            dateline: 0,
            flits_forwarded: 0,
            flits_delivered: 0,
        }
    }

    /// Ring successor of `n`.
    pub fn successor(&self, n: NodeId) -> NodeId {
        self.succ[n as usize]
    }

    /// Hops from `a` to `b` along the ring.
    pub fn distance(&self, a: NodeId, b: NodeId) -> u32 {
        ring_distance(&self.succ, a, b)
    }

    /// Queue a flit for ring transport at node `n`'s station.
    pub fn enqueue(&mut self, n: NodeId, flit: Flit) {
        self.nodes[n as usize].station.push_back(flit);
    }

    /// Flits anywhere in the ring (stations, buffers, wires).
    pub fn flits_in_ring(&self) -> u64 {
        let buffered: usize =
            self.nodes.iter().map(|rn| rn.buf[0].len() + rn.buf[1].len() + rn.station.len()).sum();
        buffered as u64 + self.wire.len() as u64
    }

    /// Advance one cycle. `exit_here(node, &flit)` decides whether a flit
    /// leaves the ring at `node` (destination bypass ejection or mesh
    /// re-entry); deliveries are appended to `out`. The rule must be a pure
    /// function of the flit (e.g. an exit node stamped at ingress) so that
    /// all flits of one packet exit at the same node.
    pub fn step(
        &mut self,
        now: Cycle,
        mut exit_here: impl FnMut(NodeId, &Flit) -> bool,
        out: &mut Vec<RingDelivery>,
    ) {
        // 1. Deliver arrived credits.
        while self.credit_wire.front().is_some_and(|&(t, _, _)| t <= now) {
            let (_, to, vc) = self.credit_wire.pop_front().unwrap();
            let c = &mut self.nodes[to as usize].credits[vc as usize];
            debug_assert!((*c as usize) < RING_BUF_DEPTH);
            *c += 1;
        }
        // 2. Deliver arrived flits into ring buffers.
        while self.wire.front().is_some_and(|&(t, _, _)| t <= now) {
            let (_, to, rf) = self.wire.pop_front().unwrap();
            let node = &mut self.nodes[to as usize];
            assert!(
                node.buf[rf.vc as usize].len() < RING_BUF_DEPTH,
                "ring buffer overflow at {to}"
            );
            node.buf[rf.vc as usize].push_back(rf);
        }
        // 3. Per node: retire exits, then forward one flit.
        for n in 0..self.nodes.len() as NodeId {
            // Exits: flits at the head of either VC that leave the ring
            // here (consume without credits — stations/NICs are the sink).
            for vc in 0..2usize {
                while let Some(head) = self.nodes[n as usize].buf[vc].front().copied() {
                    if !exit_here(n, &head.flit) {
                        break;
                    }
                    self.nodes[n as usize].buf[vc].pop_front();
                    self.send_credit(now, n, vc as u8);
                    self.flits_delivered += 1;
                    if head.flit.dst == n {
                        out.push(RingDelivery::Eject(n, head.flit));
                    } else {
                        out.push(RingDelivery::MeshEntry(n, head.flit));
                    }
                }
            }
            self.forward_one(now, n);
        }
    }

    /// Invariant audit hook: per ring edge `n -> succ(n)` and VC, the
    /// sender's credits plus the receiver's buffered flits plus flits in
    /// flight on the wire plus credits in flight back must equal
    /// [`RING_BUF_DEPTH`] — every launch/arrival/pop/refund moves one unit
    /// between exactly two of those terms. Calls `report` once per broken
    /// edge. (Stations are unbounded by design and excluded.)
    pub fn audit(&self, report: &mut dyn FnMut(String)) {
        for n in 0..self.nodes.len() as NodeId {
            let s = self.succ[n as usize];
            for vc in 0..2usize {
                let credits = self.nodes[n as usize].credits[vc] as usize;
                let buffered = self.nodes[s as usize].buf[vc].len();
                let wired = self
                    .wire
                    .iter()
                    .filter(|&&(_, to, rf)| to == s && rf.vc as usize == vc)
                    .count();
                let refunds = self
                    .credit_wire
                    .iter()
                    .filter(|&&(_, to, cvc)| to == n && cvc as usize == vc)
                    .count();
                let total = credits + buffered + wired + refunds;
                if total != RING_BUF_DEPTH {
                    report(format!(
                        "ring edge {n}->{s} vc {vc}: credits {credits} + buffered {buffered} + \
                         wired {wired} + refunds {refunds} = {total}, expected {RING_BUF_DEPTH}"
                    ));
                }
            }
        }
    }

    /// Credit back to the predecessor for a freed slot.
    fn send_credit(&mut self, now: Cycle, n: NodeId, vc: u8) {
        let pred = self.pred[n as usize];
        self.credit_wire.push_back((now + RING_HOP_LATENCY, pred, vc));
    }

    /// Forward at most one flit from node `n` to its successor: ring-through
    /// traffic and station ingress arbitrate round-robin; wormhole locks
    /// keep packets contiguous per VC.
    fn forward_one(&mut self, now: Cycle, n: NodeId) {
        let succ = self.succ[n as usize];
        // Candidate 0: ring-through (head of a VC buffer that is NOT
        // exiting here — exits were already retired above).
        // Candidate 1: station ingress (starts on VC0; switching VC happens
        // at the dateline below).
        let order = if self.nodes[n as usize].rr == 0 { [0u8, 1] } else { [1u8, 0] };
        for cand in order {
            if cand == 0 {
                // Try each VC's head.
                for vc in 0..2usize {
                    let Some(&head) = self.nodes[n as usize].buf[vc].front() else { continue };
                    // Dateline: crossing the edge out of `dateline` bumps to VC1.
                    let out_vc = if n == self.dateline { 1u8 } else { head.vc };
                    // Wormhole lock on the output VC.
                    let lock = self.nodes[n as usize].out_lock[out_vc as usize];
                    if lock.is_some_and(|p| p != head.flit.packet) {
                        continue;
                    }
                    if self.nodes[n as usize].credits[out_vc as usize] == 0 {
                        continue;
                    }
                    let rf = self.nodes[n as usize].buf[vc].pop_front().unwrap();
                    self.send_credit(now, n, vc as u8);
                    self.launch(now, n, succ, RingFlit { flit: rf.flit, vc: out_vc });
                    return;
                }
            } else {
                // Station ingress: only when VC0's output is free for us.
                let Some(&head) = self.nodes[n as usize].station.front() else { continue };
                let out_vc = 0u8;
                let lock = self.nodes[n as usize].out_lock[out_vc as usize];
                if lock.is_some_and(|p| p != head.packet) {
                    continue;
                }
                if self.nodes[n as usize].credits[out_vc as usize] == 0 {
                    continue;
                }
                let flit = self.nodes[n as usize].station.pop_front().unwrap();
                self.launch(now, n, succ, RingFlit { flit, vc: out_vc });
                self.nodes[n as usize].rr ^= 1;
                return;
            }
        }
    }

    fn launch(&mut self, now: Cycle, n: NodeId, succ: NodeId, mut rf: RingFlit) {
        self.nodes[n as usize].credits[rf.vc as usize] -= 1;
        let node = &mut self.nodes[n as usize];
        node.out_lock[rf.vc as usize] =
            if rf.flit.kind.is_tail() { None } else { Some(rf.flit.packet) };
        rf.flit.hops_flov += 1; // ring bypass hops counted as bypass latency
        rf.flit.hops_link += 1;
        self.flits_forwarded += 1;
        self.wire.push_back((now + RING_HOP_LATENCY, succ, rf));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::Packet;

    #[test]
    fn ring_exists_iff_k_even() {
        // The paper's NoRD critique: bypass ring iff k is even.
        assert!(ring_successors(2).is_some());
        assert!(ring_successors(4).is_some());
        assert!(ring_successors(8).is_some());
        assert!(ring_successors(3).is_none());
        assert!(ring_successors(5).is_none());
        assert!(ring_successors(7).is_none());
    }

    #[test]
    fn ring_is_a_single_hamiltonian_cycle() {
        for k in [2u16, 4, 6, 8] {
            let succ = ring_successors(k).unwrap();
            let n = succ.len();
            // Adjacent in the mesh.
            for (a, &b) in succ.iter().enumerate() {
                let ca = Coord::of(a as NodeId, k);
                let cb = Coord::of(b, k);
                assert_eq!(ca.manhattan(cb), 1, "ring edge {a}->{b} not a mesh edge (k={k})");
            }
            // Single cycle covering all nodes.
            let mut cur = 0 as NodeId;
            let mut seen = vec![false; n];
            for _ in 0..n {
                assert!(!seen[cur as usize], "ring revisits {cur}");
                seen[cur as usize] = true;
                cur = succ[cur as usize];
            }
            assert_eq!(cur, 0);
            assert!(seen.iter().all(|&s| s));
        }
    }

    #[test]
    fn ring_distance_sums_to_n() {
        let succ = ring_successors(4).unwrap();
        for a in 0..16u16 {
            for b in 0..16u16 {
                if a == b {
                    continue;
                }
                let d1 = ring_distance(&succ, a, b);
                let d2 = ring_distance(&succ, b, a);
                assert_eq!(d1 + d2, 16);
            }
        }
    }

    fn packet_flits(id: u64, src: NodeId, dst: NodeId, len: u16) -> Vec<Flit> {
        let p = Packet { id, src, dst, vnet: 0, len, birth: 0 };
        (0..len).map(|i| p.flit(i, 0)).collect()
    }

    /// Drive the ring until idle, delivering everything to destinations.
    fn run_ring(ring: &mut BypassRing, max_cycles: u64) -> Vec<RingDelivery> {
        let mut out = Vec::new();
        for now in 0..max_cycles {
            ring.step(now, |node, flit| flit.dst == node, &mut out);
            if ring.flits_in_ring() == 0 {
                break;
            }
        }
        out
    }

    #[test]
    fn single_packet_rides_ring_to_destination() {
        let mut ring = BypassRing::new(4).unwrap();
        for f in packet_flits(1, 0, 5, 4) {
            ring.enqueue(0, f);
        }
        let out = run_ring(&mut ring, 500);
        assert_eq!(out.len(), 4);
        for d in &out {
            assert!(matches!(d, RingDelivery::Eject(5, _)));
        }
        assert_eq!(ring.flits_in_ring(), 0);
    }

    #[test]
    fn packets_cross_the_dateline() {
        let mut ring = BypassRing::new(4).unwrap();
        // Source just after... pick a pair whose ring path crosses node 0.
        let succ = ring_successors(4).unwrap();
        // Find the predecessor of 0 on the ring and send from there to succ(0).
        let pred0 = (0..16u16).find(|&n| succ[n as usize] == 0).unwrap();
        let target = succ[0];
        for f in packet_flits(2, pred0, target, 4) {
            ring.enqueue(pred0, f);
        }
        let out = run_ring(&mut ring, 500);
        assert_eq!(out.len(), 4);
        for d in &out {
            assert!(matches!(d, RingDelivery::Eject(t, _) if *t == target));
        }
    }

    #[test]
    fn many_packets_from_many_sources_all_delivered_intact() {
        let mut ring = BypassRing::new(4).unwrap();
        let mut expected = std::collections::HashMap::new();
        for i in 0..24u64 {
            let src = (i % 16) as NodeId;
            let dst = ((i * 7 + 3) % 16) as NodeId;
            if src == dst {
                continue;
            }
            expected.insert(i, (dst, 4u16));
            for f in packet_flits(i, src, dst, 4) {
                ring.enqueue(src, f);
            }
        }
        let out = run_ring(&mut ring, 5_000);
        let mut got: std::collections::HashMap<u64, u16> = Default::default();
        for d in out {
            let RingDelivery::Eject(node, f) = d else { panic!("unexpected mesh entry") };
            assert!(f.integrity_ok());
            assert_eq!(f.dst, node);
            *got.entry(f.packet).or_default() += 1;
        }
        for (id, (_, len)) in expected {
            assert_eq!(got.get(&id).copied().unwrap_or(0), len, "packet {id} incomplete");
        }
    }

    #[test]
    fn wormholes_never_interleave_per_vc() {
        // Two sources merging at the same node: the downstream receive
        // order within one packet must stay contiguous per VC lock. We
        // detect interleaving via the per-packet flit index order at eject.
        let mut ring = BypassRing::new(4).unwrap();
        for f in packet_flits(10, 1, 9, 4) {
            ring.enqueue(1, f);
        }
        for f in packet_flits(11, 2, 9, 4) {
            ring.enqueue(2, f);
        }
        let out = run_ring(&mut ring, 1_000);
        let mut idx: std::collections::HashMap<u64, u16> = Default::default();
        for d in out {
            let RingDelivery::Eject(_, f) = d else { panic!() };
            let next = idx.entry(f.packet).or_default();
            assert_eq!(f.flit_idx, *next, "flits of packet {} out of order", f.packet);
            *next += 1;
        }
    }

    #[test]
    fn mesh_entry_exit_rule_is_honored() {
        let mut ring = BypassRing::new(4).unwrap();
        for f in packet_flits(3, 0, 10, 4) {
            ring.enqueue(0, f);
        }
        // Exit rule: transfer to mesh at node 5 (pretend its router is on).
        let mut out = Vec::new();
        for now in 0..500 {
            ring.step(now, |node, flit| flit.dst == node || node == 5, &mut out);
            if ring.flits_in_ring() == 0 {
                break;
            }
        }
        assert_eq!(out.len(), 4);
        for d in out {
            assert!(matches!(d, RingDelivery::MeshEntry(5, _)));
        }
    }
}
