//! Inter-router channels: flit wires plus the reverse-direction credit wires.
//!
//! Every ordered pair of adjacent routers has one [`Channel`]. A channel from
//! A to B carries (a) flits travelling A->B with the configured link latency
//! and (b) credit messages travelling A->B that refund flits which earlier
//! flowed B->A (credits always flow against their flits). Both queues are
//! monotone in arrival cycle because each has a constant delay, so delivery
//! is O(1) per event with no heap.

use crate::flit::Flit;
use crate::types::Cycle;
use std::collections::VecDeque;

/// A credit refund for one VC, in flight on a channel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CreditMsg {
    pub vnet: u8,
    pub vc: u8,
}

/// One directed inter-router channel.
#[derive(Clone, Debug, Default)]
pub struct Channel {
    flits: VecDeque<(Cycle, Flit)>,
    credits: VecDeque<(Cycle, CreditMsg)>,
}

impl Channel {
    pub fn new() -> Channel {
        Channel { flits: VecDeque::new(), credits: VecDeque::new() }
    }

    /// Schedule a flit to arrive at `arrival`.
    ///
    /// Arrivals are almost always monotone (constant wire delay); around
    /// power-state transitions the emitter changes (router pipeline vs FLOV
    /// latch) and a one-cycle inversion is possible, so out-of-order sends
    /// are inserted in arrival order to keep delivery O(1).
    #[inline]
    pub fn send_flit(&mut self, arrival: Cycle, f: Flit) {
        if self.flits.back().is_some_and(|&(a, _)| a > arrival) {
            let pos = self.flits.partition_point(|&(a, _)| a <= arrival);
            self.flits.insert(pos, (arrival, f));
        } else {
            self.flits.push_back((arrival, f));
        }
    }

    /// Schedule a credit to arrive at `arrival` (same ordering rule as flits).
    #[inline]
    pub fn send_credit(&mut self, arrival: Cycle, c: CreditMsg) {
        if self.credits.back().is_some_and(|&(a, _)| a > arrival) {
            let pos = self.credits.partition_point(|&(a, _)| a <= arrival);
            self.credits.insert(pos, (arrival, c));
        } else {
            self.credits.push_back((arrival, c));
        }
    }

    /// Count credits in flight for one VC (used to seed credit counters
    /// during FLOV power transitions).
    pub fn credits_in_flight_for(&self, vnet: u8, vc: u8) -> usize {
        self.credits.iter().filter(|&&(_, m)| m.vnet == vnet && m.vc == vc).count()
    }

    /// Count flits in flight for one VC (credit-audit input at transitions).
    pub fn flits_in_flight_for(&self, vnet: u8, vc: u8) -> usize {
        self.flits.iter().filter(|&&(_, f)| f.vnet == vnet && f.vc == vc).count()
    }

    /// Drop all in-flight credits. Used at wakeup completion: the upstream
    /// counter is about to be seeded to full, and FIFO ordering of the real
    /// wires guarantees these relayed credits would have been absorbed into
    /// the old (discarded) counter before the set-full signal.
    pub fn clear_credits(&mut self) {
        self.credits.clear();
    }

    /// Pop the next flit if it has arrived by `now`.
    #[inline]
    pub fn recv_flit(&mut self, now: Cycle) -> Option<Flit> {
        if self.flits.front().is_some_and(|&(a, _)| a <= now) {
            Some(self.flits.pop_front().unwrap().1)
        } else {
            None
        }
    }

    /// Pop the next credit if it has arrived by `now`.
    #[inline]
    pub fn recv_credit(&mut self, now: Cycle) -> Option<CreditMsg> {
        if self.credits.front().is_some_and(|&(a, _)| a <= now) {
            Some(self.credits.pop_front().unwrap().1)
        } else {
            None
        }
    }

    /// Earliest pending arrival cycle across both wires, if anything is in
    /// flight. Both queues are kept sorted by arrival, so this is O(1); the
    /// active-set kernel uses it to skip channels whose traffic is still on
    /// the wire.
    #[inline]
    pub fn earliest_arrival(&self) -> Option<Cycle> {
        let f = self.flits.front().map(|&(a, _)| a);
        let c = self.credits.front().map(|&(a, _)| a);
        match (f, c) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (Some(a), None) => Some(a),
            (None, b) => b,
        }
    }

    /// Number of flits currently in flight on this channel.
    #[inline]
    pub fn flits_in_flight(&self) -> usize {
        self.flits.len()
    }

    /// Iterate the flits currently on the wire (auditor diagnostics).
    pub fn iter_in_flight(&self) -> impl Iterator<Item = &Flit> {
        self.flits.iter().map(|(_, f)| f)
    }

    /// Number of credits currently in flight on this channel.
    #[inline]
    pub fn credits_in_flight(&self) -> usize {
        self.credits.len()
    }

    /// True if nothing (flit or credit) is in flight.
    #[inline]
    pub fn is_idle(&self) -> bool {
        self.flits.is_empty() && self.credits.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flit::FlitKind;

    fn flit(idx: u16) -> Flit {
        Flit {
            packet: 9,
            kind: FlitKind::of(idx, 4),
            src: 0,
            dst: 3,
            vnet: 0,
            vc: 1,
            escape: false,
            flit_idx: idx,
            pkt_len: 4,
            birth: 0,
            inject: 0,
            hops_router: 0,
            hops_flov: 0,
            hops_link: 0,
            payload: Flit::expected_payload(9, idx),
        }
    }

    #[test]
    fn flits_delivered_at_arrival_cycle() {
        let mut ch = Channel::new();
        ch.send_flit(5, flit(0));
        assert_eq!(ch.recv_flit(4), None);
        assert_eq!(ch.recv_flit(5).unwrap().flit_idx, 0);
        assert_eq!(ch.recv_flit(5), None);
    }

    #[test]
    fn late_poll_still_delivers() {
        let mut ch = Channel::new();
        ch.send_flit(5, flit(0));
        assert_eq!(ch.recv_flit(100).unwrap().flit_idx, 0);
    }

    #[test]
    fn fifo_order_across_cycles() {
        let mut ch = Channel::new();
        ch.send_flit(2, flit(0));
        ch.send_flit(3, flit(1));
        ch.send_flit(3, flit(2));
        assert_eq!(ch.recv_flit(3).unwrap().flit_idx, 0);
        assert_eq!(ch.recv_flit(3).unwrap().flit_idx, 1);
        assert_eq!(ch.recv_flit(3).unwrap().flit_idx, 2);
        assert!(ch.is_idle());
    }

    #[test]
    fn credits_are_independent_of_flits() {
        let mut ch = Channel::new();
        ch.send_credit(1, CreditMsg { vnet: 0, vc: 2 });
        ch.send_flit(9, flit(0));
        assert_eq!(ch.recv_credit(1), Some(CreditMsg { vnet: 0, vc: 2 }));
        assert_eq!(ch.recv_flit(1), None);
        assert_eq!(ch.flits_in_flight(), 1);
        assert_eq!(ch.credits_in_flight(), 0);
    }

    #[test]
    fn out_of_order_send_is_reordered() {
        let mut ch = Channel::new();
        ch.send_flit(5, flit(0));
        ch.send_flit(4, flit(1));
        assert_eq!(ch.recv_flit(4).unwrap().flit_idx, 1);
        assert_eq!(ch.recv_flit(5).unwrap().flit_idx, 0);
    }

    #[test]
    fn earliest_arrival_tracks_both_wires() {
        let mut ch = Channel::new();
        assert_eq!(ch.earliest_arrival(), None);
        ch.send_flit(7, flit(0));
        assert_eq!(ch.earliest_arrival(), Some(7));
        ch.send_credit(3, CreditMsg { vnet: 0, vc: 0 });
        assert_eq!(ch.earliest_arrival(), Some(3));
        ch.send_flit(2, flit(1)); // out-of-order send re-sorts
        assert_eq!(ch.earliest_arrival(), Some(2));
        assert!(ch.recv_flit(2).is_some());
        assert!(ch.recv_credit(3).is_some());
        assert_eq!(ch.earliest_arrival(), Some(7));
    }

    #[test]
    fn per_vc_credit_counting() {
        let mut ch = Channel::new();
        ch.send_credit(1, CreditMsg { vnet: 0, vc: 1 });
        ch.send_credit(2, CreditMsg { vnet: 0, vc: 1 });
        ch.send_credit(3, CreditMsg { vnet: 1, vc: 1 });
        assert_eq!(ch.credits_in_flight_for(0, 1), 2);
        assert_eq!(ch.credits_in_flight_for(1, 1), 1);
        assert_eq!(ch.credits_in_flight_for(0, 0), 0);
    }
}
