//! Activity counters: the raw event counts the power model converts into
//! dynamic energy, plus per-router powered/gated residency for leakage.
//!
//! The simulator increments these in the hot loop; they are plain integers
//! (no allocation, no floating point) and are read once at the end of a run.

use serde::{Deserialize, Serialize};

/// Per-run activity totals, aggregated over all routers and links.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ActivityCounters {
    /// Flits written into input VC buffers.
    pub buffer_writes: u64,
    /// Flits read out of input VC buffers (switch traversal).
    pub buffer_reads: u64,
    /// Crossbar traversals (one per flit per powered router hop).
    pub xbar_traversals: u64,
    /// Switch-allocator arbitration operations (granted requests).
    pub sa_grants: u64,
    /// VC-allocator grants.
    pub va_grants: u64,
    /// Flit traversals of inter-router links (plus ejection links).
    pub link_flits: u64,
    /// Flit traversals of FLOV latches in power-gated routers.
    pub flov_latch_flits: u64,
    /// Flit hops on the NoRD bypass ring.
    pub ring_flits: u64,
    /// Credit messages carried on reverse wires.
    pub credit_msgs: u64,
    /// Credit messages relayed through sleeping routers.
    pub credit_relays: u64,
    /// Handshake signal transmissions (HSC wires), including relays.
    pub handshake_signals: u64,
    /// Power-gating transitions (each costs the 17.7 pJ overhead of Table I):
    /// counted once on every sleep entry and once on every wakeup completion.
    pub gating_events: u64,
    /// Packets injected into the network.
    pub packets_injected: u64,
    /// Flits injected into the network.
    pub flits_injected: u64,
    /// Packets delivered.
    pub packets_delivered: u64,
    /// Flits delivered.
    pub flits_delivered: u64,
}

impl ActivityCounters {
    /// Element-wise difference, for measuring a window (e.g. post-warmup).
    pub fn delta_since(&self, earlier: &ActivityCounters) -> ActivityCounters {
        ActivityCounters {
            buffer_writes: self.buffer_writes - earlier.buffer_writes,
            buffer_reads: self.buffer_reads - earlier.buffer_reads,
            xbar_traversals: self.xbar_traversals - earlier.xbar_traversals,
            sa_grants: self.sa_grants - earlier.sa_grants,
            va_grants: self.va_grants - earlier.va_grants,
            link_flits: self.link_flits - earlier.link_flits,
            flov_latch_flits: self.flov_latch_flits - earlier.flov_latch_flits,
            ring_flits: self.ring_flits - earlier.ring_flits,
            credit_msgs: self.credit_msgs - earlier.credit_msgs,
            credit_relays: self.credit_relays - earlier.credit_relays,
            handshake_signals: self.handshake_signals - earlier.handshake_signals,
            gating_events: self.gating_events - earlier.gating_events,
            packets_injected: self.packets_injected - earlier.packets_injected,
            flits_injected: self.flits_injected - earlier.flits_injected,
            packets_delivered: self.packets_delivered - earlier.packets_delivered,
            flits_delivered: self.flits_delivered - earlier.flits_delivered,
        }
    }
}

/// Per-router residency in each power condition, in cycles.
/// Leakage is weighted by these: a powered router leaks fully; a gated
/// router leaks only through its (active) FLOV latches and the always-on
/// handshake logic.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Residency {
    /// Cycles with the baseline datapath powered (Active or Draining).
    pub powered: u64,
    /// Cycles power-gated with FLOV latches live (Sleep or Wakeup ramp).
    pub gated: u64,
}

impl Residency {
    #[inline]
    pub fn total(&self) -> u64 {
        self.powered + self.gated
    }

    /// Fraction of time powered; 1.0 for an empty window (no gating evidence).
    pub fn powered_fraction(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            1.0
        } else {
            self.powered as f64 / t as f64
        }
    }
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)]
mod tests {
    use super::*;

    #[test]
    fn delta_subtracts_fieldwise() {
        let mut a = ActivityCounters::default();
        a.buffer_writes = 10;
        a.link_flits = 5;
        a.gating_events = 2;
        let mut b = a.clone();
        b.buffer_writes = 25;
        b.link_flits = 9;
        b.gating_events = 2;
        let d = b.delta_since(&a);
        assert_eq!(d.buffer_writes, 15);
        assert_eq!(d.link_flits, 4);
        assert_eq!(d.gating_events, 0);
    }

    #[test]
    fn residency_fraction() {
        let r = Residency { powered: 75, gated: 25 };
        assert!((r.powered_fraction() - 0.75).abs() < 1e-12);
        assert_eq!(r.total(), 100);
        assert_eq!(Residency::default().powered_fraction(), 1.0);
    }
}
