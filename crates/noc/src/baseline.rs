//! The Baseline mechanism: no power gating, YX dimension-order routing
//! (paper Table I). Routers stay Active forever; gated cores simply stop
//! injecting.

use crate::network::NetworkCore;
use crate::routing::{torus_yx_route, yx_route, RouteCtx};
use crate::traits::{PowerMechanism, PowerView};
use crate::types::{Cycle, NodeId, Port};

/// Always-on network with YX routing.
#[derive(Clone, Copy, Debug, Default)]
pub struct AlwaysOnYx;

impl PowerMechanism for AlwaysOnYx {
    fn name(&self) -> &'static str {
        "Baseline"
    }

    fn step(&mut self, _core: &mut NetworkCore) {}

    fn route(&self, _net: &dyn PowerView, ctx: &RouteCtx) -> Option<Port> {
        // On a torus the regular VCs route wrap-minimally; escape packets
        // keep strict grid YX (the acyclic Duato escape layer that breaks
        // the intra-dimension wrap cycles).
        if ctx.torus && !ctx.escape {
            Some(torus_yx_route(ctx.at, ctx.dst, ctx.kx, ctx.ky))
        } else {
            Some(yx_route(ctx.at, ctx.dst))
        }
    }

    fn injection_allowed(&self, _net: &dyn PowerView, _node: NodeId) -> bool {
        true
    }

    fn next_event(&self, _core: &NetworkCore) -> Option<Cycle> {
        // Stateless: a quiescent fabric stays quiescent until new traffic.
        None
    }

    fn audit_state(&self, core: &NetworkCore, report: &mut dyn FnMut(String)) {
        // The baseline never gates: every router must stay Active.
        for (i, r) in core.routers.iter().enumerate() {
            if r.power != crate::types::PowerState::Active {
                report(format!("Baseline router {i} is {:?}; the baseline never gates", r.power));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NocConfig;
    use crate::network::Simulation;
    use crate::traits::{PacketRequest, ScriptedWorkload};

    #[test]
    fn single_packet_crosses_idle_mesh() {
        let cfg = NocConfig::small_test();
        let req = PacketRequest { src: 0, dst: 15, vnet: 0, len: 4 };
        let w = ScriptedWorkload::new(vec![(0, req)]);
        let mut sim = Simulation::new(cfg, Box::new(AlwaysOnYx), Box::new(w));
        let end = sim.run_until_done(5_000);
        assert!(end < 5_000, "packet not delivered");
        assert_eq!(sim.core.activity.packets_delivered, 1);
        assert_eq!(sim.core.activity.flits_delivered, 4);
        let s = &sim.core.stats;
        assert_eq!(s.packets, 1);
        // (0,0) -> (3,3): 6 inter-router hops, 7 routers, 7 links (incl.
        // ejection), len-1 = 3 serialization; everything else contention ~ 0.
        assert_eq!(s.hop_sum, 7);
        assert_eq!(s.breakdown.router, 21);
        assert_eq!(s.breakdown.link, 7);
        assert_eq!(s.breakdown.serialization, 3);
        assert_eq!(s.breakdown.flov, 0);
        // Unloaded latency: injection + 7 * (3 + 1) + 3.
        assert!(s.avg_latency() <= 34.0, "latency {} too high", s.avg_latency());
    }

    #[test]
    fn adjacent_hop_latency_matches_model() {
        let cfg = NocConfig::small_test();
        let req = PacketRequest { src: 0, dst: 1, vnet: 0, len: 1 };
        let w = ScriptedWorkload::new(vec![(0, req)]);
        let mut sim = Simulation::new(cfg, Box::new(AlwaysOnYx), Box::new(w));
        sim.run_until_done(1_000);
        let s = &sim.core.stats;
        assert_eq!(s.packets, 1);
        // Two routers (src + dst), two link traversals (1 link + ejection):
        // 2*3 + 2*1 = 8 cycles in-network, plus the injection cycle.
        assert_eq!(s.breakdown.router, 6);
        assert_eq!(s.breakdown.link, 2);
        assert!(s.avg_latency() <= 10.0, "latency {}", s.avg_latency());
    }

    #[test]
    fn many_packets_all_delivered_uniform() {
        let cfg = NocConfig::small_test();
        let mut events = Vec::new();
        let mut rng = crate::rng::Rng::new(99);
        for t in 0..400u64 {
            let src = rng.below(16) as u16;
            let mut dst = rng.below(16) as u16;
            while dst == src {
                dst = rng.below(16) as u16;
            }
            events.push((t * 3, PacketRequest { src, dst, vnet: 0, len: 4 }));
        }
        let w = ScriptedWorkload::new(events);
        let mut sim = Simulation::new(cfg, Box::new(AlwaysOnYx), Box::new(w));
        let end = sim.run_until_done(60_000);
        assert!(end < 60_000, "not all packets delivered");
        assert_eq!(sim.core.activity.packets_delivered, 400);
        assert!(sim.core.is_empty());
        assert_eq!(sim.core.flits_in_network(), 0);
    }
}
