//! Power-state transitions and their datapath consequences: mux switching
//! (modeled by the power state itself), credit-counter zero/copy, and VC
//! ownership resets — paper §IV and Fig. 3(d)-(f).
//!
//! The *decisions* live in the mechanism implementations (`flov-core`); this
//! module enforces the preconditions each transition contractually requires
//! and applies the state changes consistently.

use super::NetworkCore;
use crate::router::VcOwner;
use crate::types::{Dir, NodeId, Port, PowerState};

impl NetworkCore {
    /// `Active -> Draining`: the router stops accepting new upstream packet
    /// transmissions (enforced by the VC allocator's chain walk) and starts
    /// emptying its buffers.
    pub fn begin_drain(&mut self, node: NodeId) {
        let r = &mut self.routers[node as usize];
        assert_eq!(r.power, PowerState::Active, "begin_drain from non-Active at {node}");
        r.power = PowerState::Draining;
    }

    /// `Draining -> Active`: lost the drain arbitration or saw new local
    /// traffic; resume normal operation.
    pub fn abort_drain(&mut self, node: NodeId) {
        let r = &mut self.routers[node as usize];
        assert_eq!(r.power, PowerState::Draining, "abort_drain from non-Draining at {node}");
        r.power = PowerState::Active;
    }

    /// `Draining -> Sleep`: power-gate the baseline datapath and activate
    /// the FLOV latches. Requires full quiescence (buffers drained, no open
    /// wormholes in or out, wires clear) — the handshake protocol must have
    /// established this. Re-seeds upstream credit counters to track the new
    /// logical downstream (paper Fig. 3(d)-(e)).
    pub fn enter_sleep(&mut self, node: NodeId) {
        {
            let r = &self.routers[node as usize];
            assert_eq!(r.power, PowerState::Draining, "enter_sleep from non-Draining at {node}");
            assert!(r.is_drained(), "enter_sleep with undrained buffers at {node}");
            assert!(r.latches_empty(), "enter_sleep with occupied latches at {node}");
        }
        assert!(self.fully_quiescent(node), "enter_sleep without quiescence at {node}");
        // Crossing the powered->gated boundary: settle residency first.
        self.settle_residency(node as usize);
        self.routers[node as usize].power = PowerState::Sleep;
        self.activity.gating_events += 1;
        // For each pass-through flow direction, the powered upstream
        // inherits this router's *own* credit counter — the paper's Fig.
        // 3(e): "the credit information is copied from Router B to A". The
        // sleeping router's counter is the ground truth of the downstream
        // flow (it already accounts for buffered flits, in-flight flits and
        // in-flight refunds). Credits still on the wire from this router
        // toward the upstream refer to this router's now-powered-off
        // buffers; on the real FIFO wires they arrive (and are absorbed
        // into the upstream's soon-to-be-overwritten counter) strictly
        // before the in-band sleep/copy signal, so here they are dropped.
        for d in Dir::ALL {
            let Some(u) = self.powered_walk(node, d.opposite()) else { continue };
            let port = Port::from_dir(d);
            // Drop stale refunds on the wires from node back to u.
            let mut cur = node;
            while cur != u {
                let prev = self.neighbor(cur, d.opposite()).unwrap();
                self.channel_mut(cur, d.opposite()).clear_credits();
                cur = prev;
            }
            // A sleeping edge router has no wire in `d`: nothing can flow
            // onward, so the upstream's credits are zeroed (its packets for
            // nodes on this dead chain wait on wakeup requests instead).
            let dead_end = self.neighbor(node, d).is_none();
            for flat in 0..self.cfg.total_vcs() {
                let seed = if dead_end {
                    0
                } else {
                    let n = &self.routers[node as usize];
                    n.out_credits[n.slot(port.index(), flat)].available()
                };
                let r = &mut self.routers[u as usize];
                let slot = r.slot(port.index(), flat);
                assert_eq!(
                    r.out_vc_state[slot],
                    VcOwner::Free,
                    "open wormhole from {u} across sleeping {node}"
                );
                r.out_credits[slot].set(seed);
            }
        }
    }

    /// `Sleep -> Wakeup`: begin powering the baseline datapath back on. The
    /// FLOV latches keep forwarding in-flight traffic during the ramp.
    pub fn begin_wakeup(&mut self, node: NodeId) {
        let r = &mut self.routers[node as usize];
        assert_eq!(r.power, PowerState::Sleep, "begin_wakeup from non-Sleep at {node}");
        r.power = PowerState::Wakeup;
    }

    /// `Wakeup -> Active`: the power ramp finished and the neighborhood is
    /// quiescent; switch the muxes back, set upstream credits to full (the
    /// woken buffers are empty) and receive credit state from downstream.
    pub fn complete_wakeup(&mut self, node: NodeId) {
        {
            let r = &self.routers[node as usize];
            assert_eq!(r.power, PowerState::Wakeup, "complete_wakeup from non-Wakeup at {node}");
            assert!(r.latches_empty(), "complete_wakeup with occupied latches at {node}");
            assert!(r.is_drained(), "woken router has stale buffer state at {node}");
        }
        assert!(self.fully_quiescent(node), "complete_wakeup without quiescence at {node}");
        // Crossing the gated->powered boundary: settle residency first.
        self.settle_residency(node as usize);
        self.routers[node as usize].power = PowerState::Active;
        self.activity.gating_events += 1;
        // Re-mark for the active-set kernel: a newly powered router is
        // schedulable again (its buffers are drained, so these marks are
        // cleaned lazily unless work actually arrives).
        self.mark_work(node);
        for d in Dir::ALL {
            // (a) Upstream side of the flow entering `node` travelling `d`:
            // the powered upstream now has `node` as its logical downstream
            // with empty buffers. Relayed credits still on the wire would
            // have been absorbed into the old counter before the in-band
            // set-full signal (FIFO wires), so drop them.
            if let Some(u) = self.powered_walk(node, d.opposite()) {
                // Clear credit wires hop-by-hop from node back to u.
                let mut cur = node;
                while cur != u {
                    let prev = self.neighbor(cur, d.opposite()).unwrap();
                    self.channel_mut(cur, d.opposite()).clear_credits();
                    cur = prev;
                }
                let port = Port::from_dir(d);
                for flat in 0..self.cfg.total_vcs() {
                    let r = &mut self.routers[u as usize];
                    let slot = r.slot(port.index(), flat);
                    assert_eq!(
                        r.out_vc_state[slot],
                        VcOwner::Free,
                        "open wormhole from {u} across waking {node}"
                    );
                    r.out_credits[slot].set_full();
                }
            }
            // (b) `node`'s own downstream counters: seeded from the current
            // logical downstream's occupancy ("receives credit information
            // from its downstream router").
            let downstream = self.powered_walk(node, d);
            let port = Port::from_dir(d);
            for vnet in 0..self.cfg.vnets {
                for vc in 0..self.cfg.vcs_per_vnet() {
                    let seed = match downstream {
                        Some(l) => self.audit_credits(node, l, d, vnet, vc),
                        None => 0,
                    };
                    let flat = self.cfg.vc_index(vnet, vc);
                    let r = &mut self.routers[node as usize];
                    let slot = r.slot(port.index(), flat);
                    r.out_vc_state[slot] = VcOwner::Free;
                    r.out_credits[slot].set(seed);
                }
            }
        }
        // Local (ejection) port state is untouched by gating; reset it too
        // for hygiene.
        let total = self.cfg.total_vcs();
        let r = &mut self.routers[node as usize];
        for flat in 0..total {
            let slot = r.slot(Port::Local.index(), flat);
            r.out_vc_state[slot] = VcOwner::Free;
        }
        r.touch_local(self.cycle);
    }

    /// Nearest *powered* (Active or Draining) router from `node` in `d`,
    /// skipping routers that are asleep or waking.
    pub fn powered_walk(&self, node: NodeId, d: Dir) -> Option<NodeId> {
        let mut cur = node;
        loop {
            let next = self.neighbor(cur, d)?;
            if self.power(next).is_powered() {
                // On a torus wrap cycle this may be `node` itself (the only
                // powered router on the cycle): flits it sends in `d` fly
                // over every sleeper and wrap back to its own input, so the
                // self-loop is the correct logical downstream.
                return Some(next);
            }
            if next == node {
                // Fully-unpowered torus wrap cycle: no powered router.
                return None;
            }
            cur = next;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NocConfig;
    use crate::types::Coord;

    fn core() -> NetworkCore {
        NetworkCore::new(NocConfig::small_test())
    }

    fn id(x: u16, y: u16) -> NodeId {
        Coord::new(x, y).id(4)
    }

    /// Full legal transition sequence on an idle network.
    #[test]
    fn full_power_cycle() {
        let mut c = core();
        let n = id(1, 1);
        c.begin_drain(n);
        assert_eq!(c.power(n), PowerState::Draining);
        c.enter_sleep(n);
        assert_eq!(c.power(n), PowerState::Sleep);
        c.begin_wakeup(n);
        assert_eq!(c.power(n), PowerState::Wakeup);
        c.complete_wakeup(n);
        assert_eq!(c.power(n), PowerState::Active);
        assert_eq!(c.activity.gating_events, 2);
    }

    #[test]
    fn abort_returns_to_active() {
        let mut c = core();
        c.begin_drain(5);
        c.abort_drain(5);
        assert_eq!(c.power(5), PowerState::Active);
    }

    #[test]
    #[should_panic(expected = "non-Active")]
    fn double_drain_is_a_bug() {
        let mut c = core();
        c.begin_drain(5);
        c.begin_drain(5);
    }

    #[test]
    fn sleep_reseeds_upstream_credits() {
        let mut c = core();
        let n = id(1, 1);
        c.begin_drain(n);
        c.enter_sleep(n);
        // Upstream (0,1) now tracks (2,1)'s buffers: all empty => full depth.
        let u = &c.routers[id(0, 1) as usize];
        let slot = u.slot(Port::East.index(), 0);
        assert_eq!(u.out_credits[slot].available(), c.cfg.buf_depth);
    }

    #[test]
    fn corner_sleep_zeroes_dangling_credits() {
        let mut c = core();
        let corner = id(0, 0);
        c.begin_drain(corner);
        c.enter_sleep(corner);
        // (1,0)'s West output now leads nowhere: zero credits.
        let u = &c.routers[id(1, 0) as usize];
        let slot = u.slot(Port::West.index(), 0);
        assert_eq!(u.out_credits[slot].available(), 0);
        // (0,1)'s South output likewise.
        let u2 = &c.routers[id(0, 1) as usize];
        let slot2 = u2.slot(Port::South.index(), 0);
        assert_eq!(u2.out_credits[slot2].available(), 0);
    }

    #[test]
    fn wakeup_restores_full_credits_both_sides() {
        let mut c = core();
        let n = id(2, 1);
        c.begin_drain(n);
        c.enter_sleep(n);
        c.begin_wakeup(n);
        c.complete_wakeup(n);
        // Upstream (1,1) East counter: full (n's buffers empty).
        let u = &c.routers[id(1, 1) as usize];
        assert_eq!(u.out_credits[u.slot(Port::East.index(), 0)].available(), c.cfg.buf_depth);
        // n's own counters point at its physical neighbors: full.
        let r = &c.routers[n as usize];
        for p in [Port::North, Port::East, Port::South, Port::West] {
            assert_eq!(r.out_credits[r.slot(p.index(), 0)].available(), c.cfg.buf_depth);
        }
    }

    #[test]
    fn consecutive_sleepers_chain_credits() {
        let mut c = core();
        for x in [1, 2] {
            let n = id(x, 2);
            c.begin_drain(n);
            c.enter_sleep(n);
        }
        // (0,2) East counter tracks (3,2) across two sleepers.
        let u = &c.routers[id(0, 2) as usize];
        assert_eq!(u.out_credits[u.slot(Port::East.index(), 0)].available(), c.cfg.buf_depth);
        // Waking the first sleeper re-points (0,2) at it.
        let n1 = id(1, 2);
        c.begin_wakeup(n1);
        c.complete_wakeup(n1);
        let u = &c.routers[id(0, 2) as usize];
        assert_eq!(u.out_credits[u.slot(Port::East.index(), 0)].available(), c.cfg.buf_depth);
        // And the woken router's East counter tracks (3,2) across (2,2).
        let r = &c.routers[n1 as usize];
        assert_eq!(r.out_credits[r.slot(Port::East.index(), 0)].available(), c.cfg.buf_depth);
    }

    #[test]
    fn powered_walk_skips_sleepers() {
        let mut c = core();
        c.begin_drain(id(1, 3));
        c.enter_sleep(id(1, 3));
        assert_eq!(c.powered_walk(id(0, 3), Dir::East), Some(id(2, 3)));
        assert_eq!(c.powered_walk(id(0, 3), Dir::West), None);
    }
}
