//! The simulation kernel: owns routers, channels and NICs, and advances the
//! network one cycle at a time with a fixed, deterministic phase order:
//!
//! 1. workload update (core activity + packet generation),
//! 2. FLOV latch forwarding in power-gated routers,
//! 3. link delivery (flits, credits, ejection),
//! 4. mechanism control step (handshakes, power transitions),
//! 5. NIC injection,
//! 6. router pipelines (VA, then SA/ST) for powered routers,
//! 7. accounting (watchdog; residency accumulates lazily at transitions).
//!
//! Two interchangeable scheduling strategies drive phases 2, 3, 5 and 6
//! (see [`KernelMode`]): the *reference* kernel scans every router, slot
//! and channel each cycle, while the default *active-set* kernel visits
//! only resources with work, tracked incrementally. Both produce
//! bit-identical results; the invariant that makes this safe is that every
//! state change which can give a resource work re-marks it (see the
//! marking helpers below and `DESIGN.md` § "Kernel scheduling").

pub mod audit;
mod chain;
mod par;
mod pipeline;
#[cfg(test)]
mod tests;
mod transitions;

pub use audit::{AuditKind, AuditViolation, Auditor};
pub use chain::ChainTarget;

use crate::active::ActiveSet;
use crate::activity::{ActivityCounters, Residency};
use crate::config::{ConfigError, NocConfig};
use crate::flit::Flit;
use crate::link::Channel;
use crate::nic::Nic;
use crate::packet::Packet;
use crate::ring::{BypassRing, RingDelivery};
use crate::router::Router;
use crate::stats::NetStats;
use crate::topology::{AnyTopology, Topology};
use crate::traits::{PacketRequest, PowerMechanism, Workload};
use crate::types::{Coord, Cycle, Dir, NodeId, PacketId, PowerState};

/// Scheduling strategy for the per-cycle kernel loops.
///
/// Not part of [`NocConfig`]: all kernel modes are proven bit-identical by
/// the equivalence suite, so the choice never affects results (or result
/// cache keys) — only wall-clock speed. Switching modes mid-run is safe:
/// the active sets are maintained unconditionally and cleaned lazily.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum KernelMode {
    /// Visit only routers, channels and NICs with work, tracked
    /// incrementally; per-cycle cost scales with activity. Additionally
    /// jumps the clock over fully quiescent windows (the time-domain skip;
    /// see [`NetworkCore::quiescent`] and the next-event horizons on
    /// [`crate::traits::PowerMechanism`] / [`crate::traits::Workload`]),
    /// so total run cost scales with how many cycles are *busy*.
    #[default]
    ActiveSet,
    /// Full scan of every router, slot and channel each cycle, never
    /// skipping — the original kernel, kept as the equivalence oracle.
    Reference,
    /// The sharded in-run parallel kernel: [`KernelMode::ActiveSet`]
    /// scheduling (including the time-domain skip), with phases 2, 3, 5
    /// and 6 fanned out over a 2-D grid of tiles on persistent worker
    /// threads and a deterministic boundary exchange merging cross-tile
    /// effects back into sequential order (see the `par` module). Phase 4
    /// (the mechanism control step) also shards for mechanisms that opt
    /// in via [`crate::traits::PowerMechanism::sharded_control`].
    /// Bit-identical to the sequential kernels at every geometry;
    /// `Parallel { tiles: 1, grid: None }` degenerates to single-threaded
    /// execution on the driving thread.
    Parallel {
        /// Requested tile (worker) count; the planner factorizes it into
        /// a seam-minimizing rows × columns grid (clamped to the mesh
        /// dimensions, so an oversized request quietly caps out — see
        /// [`KernelMode::planned_grid`] for the effective geometry).
        tiles: usize,
        /// Explicit `rows × cols` tile geometry, overriding the planner
        /// (each axis clamps to the grid dimensions).
        grid: Option<(u16, u16)>,
    },
}

impl KernelMode {
    /// The effective tile geometry (`rows, cols`) this mode runs with on a
    /// `kx × ky` router grid; `None` for the sequential kernels. This is
    /// what the engine reports so oversized `--threads` requests clamp
    /// loudly instead of silently.
    pub fn planned_grid(&self, kx: u16, ky: u16) -> Option<(u16, u16)> {
        match *self {
            KernelMode::Parallel { tiles, grid } => {
                Some(par::planned_geometry(kx, ky, tiles, grid))
            }
            _ => None,
        }
    }
}

/// Active-set scheduling state: which resources may have work this cycle.
/// Entries are inserted eagerly by producers and removed lazily by the
/// consuming phase when it finds them idle.
struct SchedSets {
    /// Routers with occupied FLOV latches (`latch_phase` candidates).
    latch: ActiveSet,
    /// Routers with buffered flits (`pipeline_phase` candidates).
    work: ActiveSet,
    /// Nodes whose NIC has queued or mid-serialization traffic.
    inject: ActiveSet,
    /// Inter-router channels with in-flight flits or credits.
    chan: ActiveSet,
    /// Ejection channels with in-flight flits.
    eject: ActiveSet,
    /// Scratch index buffer reused by phase iterations.
    scratch: Vec<u32>,
}

impl SchedSets {
    fn new(nodes: usize) -> SchedSets {
        SchedSets {
            latch: ActiveSet::new(nodes),
            work: ActiveSet::new(nodes),
            inject: ActiveSet::new(nodes),
            chan: ActiveSet::new(nodes * 4),
            eject: ActiveSet::new(nodes),
            scratch: Vec::new(),
        }
    }
}

/// The network state, without the mechanism/workload policies.
pub struct NetworkCore {
    pub cfg: NocConfig,
    /// The instantiated fabric topology (from `cfg.topology`); all
    /// adjacency queries go through it.
    pub topo: AnyTopology,
    pub cycle: Cycle,
    pub routers: Vec<Router>,
    /// Directed inter-router channels, indexed `node * 4 + dir`; the channel
    /// leads *out of* `node` in direction `dir`. Edge slots exist but stay
    /// unused.
    channels: Vec<Channel>,
    /// Ejection channels, router -> NIC, one per node.
    eject: Vec<Channel>,
    pub nics: Vec<Nic>,
    /// OS-visible core power state, driven by the workload. Indexed by
    /// *core* id (`cfg.cores()` entries): on a concentrated mesh several
    /// cores share a router (core `c` attaches to router
    /// `c / concentration`); everywhere else core ids equal router ids.
    pub core_active: Vec<bool>,
    wake_flag: Vec<bool>,
    wake_list: Vec<NodeId>,
    pub activity: ActivityCounters,
    /// Per-router powered/gated cycle tallies, accumulated lazily: each
    /// entry is settled up to `res_since` and folded forward when the
    /// router crosses the powered/gated boundary (or on read, via
    /// [`NetworkCore::residency`]).
    residency: Vec<Residency>,
    /// Cycle up to which `residency[i]` has been accumulated.
    res_since: Vec<Cycle>,
    pub stats: NetStats,
    next_packet: PacketId,
    /// Packets injected (head entered the network or NIC queue) minus
    /// packets delivered.
    pub in_flight_packets: u64,
    last_progress: Cycle,
    /// Node-cycles in which a node wanted to inject but was stalled by the
    /// mechanism's injection gate: each stalled node counts once per cycle
    /// (Router Parking reconfiguration accounting).
    pub stalled_injection_node_cycles: u64,
    /// Packets diverted into the escape sub-network by the timeout.
    pub escape_diversions: u64,
    /// Cycles the clock jumped over while the fabric was quiescent (the
    /// time-domain skip; only ever non-zero under [`KernelMode::ActiveSet`]
    /// or [`KernelMode::Parallel`], and never part of results — skipped
    /// cycles are provable no-ops).
    pub cycles_skipped: u64,
    /// Flit count per directed channel (`node * 4 + dir`), for hotspot
    /// analysis (the paper attributes RP's contention to routing hotspots).
    pub link_util: Vec<u64>,
    /// NoRD bypass ring, when `cfg.enable_ring` is set.
    pub ring: Option<BypassRing>,
    /// Ring-to-mesh transfer queues, one per node (flits that exited the
    /// ring at a powered node and await mesh injection).
    ring_transfer: Vec<std::collections::VecDeque<Flit>>,
    /// Per-node wormhole state of the transfer injector: packet id of the
    /// in-flight transfer (the reserved transfer VC keeps it contiguous).
    transfer_open: Vec<Option<crate::types::PacketId>>,
    /// Per-packet staging of mesh-to-ring transfers: flits of different
    /// packets interleave on the ejection channel, but the ring station
    /// must receive whole packets contiguously (its wormhole lock would
    /// otherwise deadlock). Flits collect here until the tail arrives.
    ring_stage: Vec<Vec<(crate::types::PacketId, Vec<Flit>)>>,
    ring_out: Vec<RingDelivery>,
    gen_buf: Vec<PacketRequest>,
    /// Scheduling strategy for the hot phase loops; see [`KernelMode`].
    pub kernel: KernelMode,
    sched: SchedSets,
    /// Scratch: occupied VA slots in rotated scan order (see `va_stage`).
    va_order: Vec<u16>,
    /// Parallel-kernel state (tile plan, worker pool, per-tile buffers),
    /// created lazily on the first [`KernelMode::Parallel`] phase.
    par: Option<Box<par::ParState>>,
    /// Flag-gated per-phase wall-time accumulators; see [`PhaseNanos`].
    /// `None` (the default) costs one branch per phase.
    pub phase_nanos: Option<Box<PhaseNanos>>,
}

/// Per-phase wall-time accumulators in nanoseconds, for the kernel
/// bench's serial-fraction breakdown ([`Simulation::step`] fills them
/// when `NetworkCore::phase_nanos` is enabled). Timing never feeds back
/// into simulation state, so enabling it cannot affect results or the
/// equivalence digests.
#[derive(Clone, Debug, Default, serde::Serialize)]
pub struct PhaseNanos {
    /// Phase 2: FLOV latch forwarding.
    pub latch: u64,
    /// Phase 3: link delivery (plus the 2b ring hop).
    pub delivery: u64,
    /// Phase 5: NIC injection (plus ring transfers).
    pub inject: u64,
    /// Phase 6: router pipelines.
    pub pipeline: u64,
    /// Phase 4: the mechanism control step.
    pub mechanism: u64,
    /// Boundary-exchange replay inside the parallel kernel's sharded
    /// phases. Already *included* in the four sharded-phase buckets
    /// above — this isolates their serial replay fraction.
    pub exchange: u64,
}

impl NetworkCore {
    /// Construct the network, panicking on misconfiguration (the original
    /// entry point; library callers wanting diagnostics use
    /// [`NetworkCore::try_new`]).
    pub fn new(cfg: NocConfig) -> NetworkCore {
        Self::try_new(cfg).unwrap_or_else(|e| panic!("invalid NoC configuration: {e}"))
    }

    /// Construct the network, returning a structured [`ConfigError`] on
    /// misconfiguration (including NoRD on a ring-less topology).
    pub fn try_new(cfg: NocConfig) -> Result<NetworkCore, ConfigError> {
        cfg.validate()?;
        let topo = cfg.build_topology();
        let n = topo.routers();
        let cores = topo.cores();
        let measure_from = 0;
        Ok(NetworkCore {
            routers: (0..n).map(|i| Router::new(&cfg, i as NodeId)).collect(),
            channels: (0..n * 4).map(|_| Channel::new()).collect(),
            eject: (0..n).map(|_| Channel::new()).collect(),
            nics: (0..n).map(|_| Nic::new(cfg.vnets)).collect(),
            core_active: vec![true; cores],
            wake_flag: vec![false; n],
            wake_list: Vec::new(),
            activity: ActivityCounters::default(),
            residency: vec![Residency::default(); n],
            res_since: vec![0; n],
            stats: NetStats::new(measure_from, cfg.pipeline_stages, cfg.link_latency),
            next_packet: 0,
            in_flight_packets: 0,
            last_progress: 0,
            stalled_injection_node_cycles: 0,
            escape_diversions: 0,
            cycles_skipped: 0,
            link_util: vec![0; n * 4],
            ring: if cfg.enable_ring {
                // `validate` established that the topology admits a
                // Hamiltonian cycle, n <= 256, and regular_vcs >= 2.
                let succ = topo.ring_successors().expect("validated ring topology");
                Some(BypassRing::from_successors(succ))
            } else {
                None
            },
            ring_transfer: vec![std::collections::VecDeque::new(); n],
            transfer_open: vec![None; n],
            ring_stage: vec![Vec::new(); n],
            ring_out: Vec::new(),
            gen_buf: Vec::new(),
            kernel: KernelMode::default(),
            sched: SchedSets::new(n),
            va_order: Vec::new(),
            par: None,
            phase_nanos: None,
            cycle: 0,
            topo,
            cfg,
        })
    }

    // --- Active-set marking -------------------------------------------------
    //
    // The invariant behind the active-set kernel: any state change that can
    // make a resource schedulable must re-mark it. Marks are idempotent bit
    // ORs, maintained in *both* kernel modes (so modes can be switched
    // mid-run); the consuming phases remove entries lazily when they find
    // them idle. The producers:
    //
    // * `work` (router has buffered flits): flit delivery into a buffer,
    //   NIC injection, ring-to-mesh transfer, credit refunds (defensive; a
    //   router waiting on credits already has occupancy > 0), and wakeup
    //   completion (defensive).
    // * `latch` (router has occupied FLOV latches): flit delivery into a
    //   latch of a gated router.
    // * `inject` (NIC backlog): packet submission; entries persist across
    //   gated periods until the backlog drains.
    // * `chan`/`eject` (in-flight traffic): every `send_flit`/`send_credit`
    //   on the corresponding channel.

    #[inline]
    pub(crate) fn mark_work(&mut self, node: NodeId) {
        self.sched.work.insert(node as usize);
    }

    #[inline]
    fn mark_latch(&mut self, node: NodeId) {
        self.sched.latch.insert(node as usize);
    }

    #[inline]
    fn mark_inject(&mut self, node: NodeId) {
        self.sched.inject.insert(node as usize);
    }

    #[inline]
    pub(crate) fn mark_chan(&mut self, e: usize) {
        self.sched.chan.insert(e);
    }

    #[inline]
    pub(crate) fn mark_eject(&mut self, node: NodeId) {
        self.sched.eject.insert(node as usize);
    }

    /// Router-grid width (`kx`; the historical square radix).
    #[inline]
    pub fn k(&self) -> u16 {
        self.topo.kx()
    }

    /// Router-grid height.
    #[inline]
    pub fn ky(&self) -> u16 {
        self.topo.ky()
    }

    /// Number of routers.
    #[inline]
    pub fn nodes(&self) -> usize {
        self.routers.len()
    }

    /// Number of cores (`core_active` entries): routers x concentration.
    #[inline]
    pub fn cores(&self) -> usize {
        self.core_active.len()
    }

    /// Attachment router of core `core`.
    #[inline]
    pub fn core_router(&self, core: NodeId) -> NodeId {
        core / self.topo.concentration()
    }

    /// True if any core attached to router `node` is OS-active. With
    /// concentration 1 this is exactly `core_active[node]`; mechanisms key
    /// their gating decisions off this view.
    #[inline]
    pub fn router_core_active(&self, node: NodeId) -> bool {
        let c = self.topo.concentration() as usize;
        if c == 1 {
            self.core_active[node as usize]
        } else {
            self.core_active[node as usize * c..(node as usize + 1) * c].iter().any(|&a| a)
        }
    }

    /// Coordinate of `node`.
    #[inline]
    pub fn coord(&self, node: NodeId) -> Coord {
        self.topo.coord(node)
    }

    /// Physical (link-level, wrap-aware on a torus) neighbor of `node` in
    /// `d`, if any. The datapath — delivery, latch chains, credit relays —
    /// follows this view; routing policy uses [`NetworkCore::grid_neighbor`].
    #[inline]
    pub fn neighbor(&self, node: NodeId, d: Dir) -> Option<NodeId> {
        self.topo.neighbor_dir(node, d)
    }

    /// Mesh-semantic (never wrapping) neighbor of `node` in `d`, if any.
    #[inline]
    pub fn grid_neighbor(&self, node: NodeId, d: Dir) -> Option<NodeId> {
        self.topo.grid_neighbor(node, d)
    }

    /// Index of the outgoing channel of `node` in direction `d`.
    #[inline]
    fn edge(&self, node: NodeId, d: Dir) -> usize {
        node as usize * 4 + d.index()
    }

    /// The outgoing channel of `node` in direction `d` (must exist).
    #[inline]
    pub fn channel(&self, node: NodeId, d: Dir) -> &Channel {
        &self.channels[self.edge(node, d)]
    }

    #[inline]
    pub(crate) fn channel_mut(&mut self, node: NodeId, d: Dir) -> &mut Channel {
        let e = self.edge(node, d);
        &mut self.channels[e]
    }

    /// Power state of `node`.
    #[inline]
    pub fn power(&self, node: NodeId) -> PowerState {
        self.routers[node as usize].power
    }

    /// Grid-neighbor power states as seen from `node` (the PSR view).
    /// Deliberately the *grid* view: routing policy and the mechanisms'
    /// edge logic stay mesh-semantic on a torus (wrap links carry only the
    /// baseline's wrap-minimal traffic and physical transit).
    pub fn psr(&self, node: NodeId) -> [Option<PowerState>; 4] {
        let mut out = [None; 4];
        for d in Dir::ALL {
            out[d.index()] = self.grid_neighbor(node, d).map(|m| self.power(m));
        }
        out
    }

    /// True if the NIC of `node` has traffic queued or mid-serialization.
    #[inline]
    pub fn nic_pending(&self, node: NodeId) -> bool {
        self.nics[node as usize].pending()
    }

    /// Register a wakeup request for a sleeping router holding up traffic
    /// (paper: "its neighbor has a packet destined for its core").
    pub(crate) fn request_wakeup(&mut self, node: NodeId) {
        if !self.wake_flag[node as usize] {
            self.wake_flag[node as usize] = true;
            self.wake_list.push(node);
        }
    }

    /// Drain pending wakeup requests; called by the mechanism each step.
    pub fn take_wakeup_requests(&mut self, out: &mut Vec<NodeId>) {
        out.clear();
        out.extend_from_slice(&self.wake_list);
        for &n in &self.wake_list {
            self.wake_flag[n as usize] = false;
        }
        self.wake_list.clear();
    }

    /// Peek at pending wakeup requests without clearing them.
    pub fn wakeup_requests(&self) -> &[NodeId] {
        &self.wake_list
    }

    /// Enqueue a generated packet at its source NIC. Request endpoints are
    /// *core* ids; on a concentrated mesh they are mapped down to the
    /// attachment routers (each router's NIC is shared by its cores).
    ///
    /// Requests whose endpoints share a router (`src == dst` after the
    /// mapping — including self-addressed requests) are rejected and
    /// counted in `stats.self_addressed_dropped` rather than admitted: the
    /// model has no local loopback path, so such a packet would inflate
    /// `in_flight_packets` forever (a silent stats corruption in release
    /// builds when this was only a `debug_assert`). Returns the assigned
    /// packet id, or `None` for a rejected request.
    pub fn submit(&mut self, req: PacketRequest) -> Option<PacketId> {
        debug_assert!((req.src as usize) < self.cores() && (req.dst as usize) < self.cores());
        debug_assert!((req.vnet as usize) < self.cfg.vnets);
        let src = self.core_router(req.src);
        let dst = self.core_router(req.dst);
        if src == dst {
            self.stats.self_addressed_dropped += 1;
            return None;
        }
        let id = self.next_packet;
        self.next_packet += 1;
        let pkt = Packet { id, src, dst, vnet: req.vnet, len: req.len, birth: self.cycle };
        self.nics[src as usize].enqueue(pkt);
        self.routers[src as usize].touch_local(self.cycle);
        self.in_flight_packets += 1;
        self.mark_inject(src);
        Some(id)
    }

    /// Total flits buffered in routers, latches, channels and partial
    /// serializations — zero means the network fabric is empty.
    pub fn flits_in_network(&self) -> u64 {
        let buffered: u64 = self.routers.iter().map(|r| r.buffered_flits() as u64).sum();
        let latched: u64 = self
            .routers
            .iter()
            .map(|r| r.latches.iter().filter(|l| l.is_some()).count() as u64)
            .sum();
        let in_flight: u64 = self.channels.iter().map(|c| c.flits_in_flight() as u64).sum();
        let ejecting: u64 = self.eject.iter().map(|c| c.flits_in_flight() as u64).sum();
        let ringed: u64 = self.ring.as_ref().map_or(0, |r| r.flits_in_ring());
        let transfers: u64 = self.ring_transfer.iter().map(|q| q.len() as u64).sum();
        let staged: u64 =
            self.ring_stage.iter().flat_map(|v| v.iter()).map(|(_, fs)| fs.len() as u64).sum();
        buffered + latched + in_flight + ejecting + ringed + transfers + staged
    }

    /// True if no packet is anywhere between generation and delivery.
    pub fn is_empty(&self) -> bool {
        self.in_flight_packets == 0
    }

    /// True when ring-exit flits are queued at `node` awaiting mesh
    /// injection. The transfer injector only runs while the router is
    /// powered, and the ring picks a flit's mesh-entry node at ingress
    /// time — so a node that gates after ingress but before arrival
    /// strands this queue unless its mechanism reacts (NoRD wakes the
    /// router and refuses to complete a drain while transfers pend).
    pub fn ring_transfer_pending(&self, node: NodeId) -> bool {
        !self.ring_transfer[node as usize].is_empty()
    }

    /// True when a cycle step would move no flit anywhere: every scheduling
    /// set is empty (no latched, buffered, in-flight or NIC-pending
    /// traffic), no wakeup requests are queued, and the bypass ring (when
    /// present) holds no flits. The sets are maintained eagerly and
    /// cleaned lazily, so right after activity ends this may stay false
    /// for one cleaning step — which only delays a jump, never corrupts
    /// one. In-flight ring credits are deliberately *not* checked: their
    /// delivery is `arrival <= now`, so a jump past the arrival lands the
    /// same credits at the next real step with identical state.
    pub fn quiescent(&self) -> bool {
        self.sched.latch.is_empty()
            && self.sched.work.is_empty()
            && self.sched.inject.is_empty()
            && self.sched.chan.is_empty()
            && self.sched.eject.is_empty()
            && self.wake_list.is_empty()
            && self.ring.as_ref().is_none_or(|r| r.flits_in_ring() == 0)
            && self.ring_transfer.iter().all(|q| q.is_empty())
            && self.ring_stage.iter().all(|v| v.is_empty())
    }

    /// Flits generated so far: injected plus still queued at the NICs
    /// (including the remainder of partial serializations). This is the
    /// *offered* load — visible even while injection is stalled, which is
    /// what a Fabric Manager's congestion estimate needs.
    pub fn generated_flits(&self) -> u64 {
        let queued: u64 = self
            .nics
            .iter()
            .map(|nic| {
                let q: u64 = nic.queues.iter().flat_map(|q| q.iter()).map(|p| p.len as u64).sum();
                let partial: u64 =
                    nic.in_progress.iter().flatten().map(|st| (st.pkt.len - st.next) as u64).sum();
                q + partial
            })
            .sum();
        self.activity.flits_injected + queued
    }

    /// True if every channel between `a` and its neighbor in `d` (both
    /// directions) is idle. Used by handshake quiescence checks.
    pub fn link_quiescent(&self, a: NodeId, d: Dir) -> bool {
        let Some(b) = self.neighbor(a, d) else { return true };
        self.channel(a, d).is_idle() && self.channel(b, d.opposite()).is_idle()
    }

    /// Incoming flit channels of `node` are all empty.
    pub fn incoming_flits_clear(&self, node: NodeId) -> bool {
        Dir::ALL.iter().all(|&d| {
            self.neighbor(node, d)
                .is_none_or(|m| self.channel(m, d.opposite()).flits_in_flight() == 0)
        })
    }

    fn note_progress(&mut self) {
        self.last_progress = self.cycle;
    }

    /// Phase 2: power-gated routers move latched flits onward.
    fn latch_phase(&mut self) {
        match self.kernel {
            KernelMode::Reference => {
                for i in 0..self.routers.len() {
                    if !self.routers[i].power.is_flov() {
                        debug_assert!(self.routers[i].latches_empty());
                        continue;
                    }
                    self.latch_router(i);
                }
            }
            KernelMode::ActiveSet => {
                let mut scratch = std::mem::take(&mut self.sched.scratch);
                self.sched.latch.collect_into(&mut scratch);
                for &i in &scratch {
                    let i = i as usize;
                    // A marked router may have woken since (wakeup requires
                    // empty latches) — then this is just the lazy removal.
                    if self.routers[i].latches_empty() {
                        self.sched.latch.remove(i);
                        continue;
                    }
                    self.latch_router(i);
                    if self.routers[i].latches_empty() {
                        self.sched.latch.remove(i);
                    }
                }
                self.sched.scratch = scratch;
            }
            KernelMode::Parallel { tiles, grid } => par::latch_phase(self, tiles, grid),
        }
    }

    /// Forward every forwardable latched flit of router `i` (latch-phase
    /// body shared by both kernels).
    fn latch_router(&mut self, i: usize) {
        let now = self.cycle;
        let link_lat = self.cfg.link_latency as u64;
        for d in Dir::ALL {
            let Some((t0, flit)) = self.routers[i].latches[d.index()] else { continue };
            if t0 >= now {
                continue; // latched this cycle; hold for one cycle
            }
            assert!(
                self.neighbor(i as NodeId, d).is_some(),
                "FLOV latch forwarding would leave the mesh"
            );
            let mut f = flit;
            f.hops_link += 1;
            self.activity.link_flits += 1;
            let e = self.edge(i as NodeId, d);
            self.link_util[e] += 1;
            self.channels[e].send_flit(now + link_lat, f);
            self.mark_chan(e);
            self.routers[i].latches[d.index()] = None;
            self.note_progress();
        }
    }

    /// Phase 3: deliver arrived flits and credits.
    fn delivery_phase(&mut self) {
        match self.kernel {
            KernelMode::Reference => {
                for e in 0..self.channels.len() {
                    let node = (e / 4) as NodeId;
                    let d = Dir::from_index(e % 4);
                    let Some(target) = self.neighbor(node, d) else {
                        debug_assert!(self.channels[e].is_idle(), "traffic on an edge channel");
                        continue;
                    };
                    self.deliver_channel(e, d, target);
                }
                for n in 0..self.eject.len() {
                    self.deliver_eject(n);
                }
            }
            KernelMode::ActiveSet => {
                let now = self.cycle;
                let mut scratch = std::mem::take(&mut self.sched.scratch);
                self.sched.chan.collect_into(&mut scratch);
                for &e in &scratch {
                    let e = e as usize;
                    match self.channels[e].earliest_arrival() {
                        None => {
                            self.sched.chan.remove(e);
                            continue;
                        }
                        // Everything in flight is still on the wire.
                        Some(a) if a > now => continue,
                        Some(_) => {}
                    }
                    let node = (e / 4) as NodeId;
                    let d = Dir::from_index(e % 4);
                    // Edge channels are never sent on, hence never marked.
                    let target = self.neighbor(node, d).expect("active channel on a mesh edge");
                    self.deliver_channel(e, d, target);
                    if self.channels[e].is_idle() {
                        self.sched.chan.remove(e);
                    }
                }
                self.sched.eject.collect_into(&mut scratch);
                for &n in &scratch {
                    let n = n as usize;
                    if self.eject[n].is_idle() {
                        self.sched.eject.remove(n);
                        continue;
                    }
                    self.deliver_eject(n);
                    if self.eject[n].is_idle() {
                        self.sched.eject.remove(n);
                    }
                }
                self.sched.scratch = scratch;
            }
            KernelMode::Parallel { tiles, grid } => par::delivery_phase(self, tiles, grid),
        }
    }

    /// Deliver everything that has arrived on inter-router channel `e`
    /// (delivery-phase body shared by both kernels).
    fn deliver_channel(&mut self, e: usize, d: Dir, target: NodeId) {
        let now = self.cycle;
        // Flits.
        while let Some(flit) = self.channels[e].recv_flit(now) {
            self.deliver_flit(target, d, flit);
        }
        // Credits: travel in direction `d`; at a powered router they
        // refund the output facing back along `opposite(d)`.
        while let Some(c) = self.channels[e].recv_credit(now) {
            self.deliver_credit(target, d, c);
        }
    }

    /// Deliver everything that has arrived on ejection channel `n`
    /// (delivery-phase body shared by both kernels).
    fn deliver_eject(&mut self, n: usize) {
        let now = self.cycle;
        while let Some(flit) = self.eject[n].recv_flit(now) {
            if flit.dst != n as NodeId {
                // Mesh-to-ring transfer at a proxy node: the routing
                // function ejected the flit here so it can ride the
                // bypass ring the rest of the way (NoRD only).
                assert!(
                    self.ring.is_some(),
                    "flit misdelivered: dst {} ejected at {n} without a ring",
                    flit.dst
                );
                let exit = flit.dst;
                self.ring_ingress(n as NodeId, flit, exit);
                continue;
            }
            self.activity.flits_delivered += 1;
            self.routers[n].touch_local(now);
            if let Some(done) = self.nics[n].receive(flit, now, n as NodeId) {
                self.activity.packets_delivered += 1;
                self.in_flight_packets -= 1;
                self.stats.record(&done);
            }
            self.note_progress();
        }
    }

    fn deliver_flit(&mut self, target: NodeId, travel: Dir, flit: crate::flit::Flit) {
        let now = self.cycle;
        let r = &mut self.routers[target as usize];
        if r.power.is_flov() {
            // Fly over: into the output latch of the same travel direction.
            debug_assert!(
                r.has_flov(travel),
                "flit flying over router {target} without FLOV capability in {travel:?}"
            );
            debug_assert!(flit.dst != target, "flit for a gated router reached its latch");
            let slot = &mut r.latches[travel.index()];
            assert!(slot.is_none(), "FLOV latch conflict at router {target}");
            let mut f = flit;
            f.hops_flov += 1;
            *slot = Some((now, f));
            self.activity.flov_latch_flits += 1;
            self.mark_latch(target);
        } else {
            let in_port = crate::types::Port::from_dir(travel.opposite());
            let vc_flat = self.cfg.vc_index(flit.vnet as usize, flit.vc as usize);
            let slot = r.slot(in_port.index(), vc_flat);
            r.push_flit(in_port.index(), slot, flit, now);
            self.activity.buffer_writes += 1;
            self.mark_work(target);
        }
        self.note_progress();
    }

    /// True if a credit relayed onward from `from` in `travel` can ever
    /// reach a powered consumer. Trivially true on a mesh (the relay path
    /// either hits a powered router or falls off the edge and is dropped);
    /// on a torus a fully-gated wrap cycle would relay the credit forever,
    /// so the (rare, sleeping-router-only) relay path checks ahead.
    fn relay_has_consumer(&self, from: NodeId, travel: Dir) -> bool {
        if !self.topo.wraps() {
            return true;
        }
        let mut cur = from;
        loop {
            let Some(next) = self.neighbor(cur, travel) else { return false };
            if next == from {
                return false; // full wrap: nothing powered on the cycle
            }
            if self.routers[next as usize].power.is_powered() {
                return true;
            }
            cur = next;
        }
    }

    fn deliver_credit(&mut self, target: NodeId, travel: Dir, c: crate::link::CreditMsg) {
        let now = self.cycle;
        if self.routers[target as usize].power.is_flov() {
            // Relay upstream: one extra cycle per sleeping hop.
            if self.neighbor(target, travel).is_some() && self.relay_has_consumer(target, travel) {
                self.activity.credit_msgs += 1;
                self.activity.credit_relays += 1;
                let e = self.edge(target, travel);
                self.channels[e].send_credit(now + 1, c);
                self.mark_chan(e);
            }
            // At a mesh edge (or on a fully-gated torus wrap cycle) the
            // credit has no consumer left; drop it.
        } else {
            let out_port = crate::types::Port::from_dir(travel.opposite());
            let vc_flat = self.cfg.vc_index(c.vnet as usize, c.vc as usize);
            let logical = self.logical_neighbor(target, travel.opposite());
            let r = &mut self.routers[target as usize];
            let slot = r.slot(out_port.index(), vc_flat);
            assert!(
                r.out_credits[slot].available() < self.cfg.buf_depth,
                "credit overflow at router {target} port {out_port:?} vnet {} vc {} \
                 (cycle {now}, router state {:?}, logical downstream {logical:?})",
                c.vnet,
                c.vc,
                r.power,
            );
            r.out_credits[slot].refund();
            // A refund can unblock SA at `target`. Defensive: the flit
            // waiting on this credit is buffered at `target`, so the router
            // is already in the work set — re-mark anyway per the marking
            // invariant.
            self.mark_work(target);
        }
    }

    /// Ring exit node for a packet entering the ring at `from` with
    /// destination `dst`: the first node after `from` (ring order) whose
    /// router is powered — where the packet re-enters the mesh — or `dst`
    /// itself if it comes first or nothing is powered (full ring ride).
    pub fn ring_exit_for(&self, from: NodeId, dst: NodeId) -> NodeId {
        let ring = self.ring.as_ref().expect("ring not enabled");
        let mut cur = ring.successor(from);
        while cur != from {
            if cur == dst || self.routers[cur as usize].power.is_powered() {
                return cur;
            }
            cur = ring.successor(cur);
        }
        dst
    }

    /// Queue a flit onto the bypass ring at `node`, stamping its exit node
    /// into the (ring-unused) `vc` field. Flits are staged per packet and
    /// released to the ring station only once the tail arrives, so packets
    /// stay contiguous (flits of different packets interleave on the
    /// ejection channel).
    fn ring_ingress(&mut self, node: NodeId, mut flit: Flit, exit: NodeId) {
        debug_assert!(exit != node);
        flit.vc = exit as u8;
        let is_tail = flit.kind.is_tail();
        let stage = &mut self.ring_stage[node as usize];
        match stage.iter_mut().find(|(p, _)| *p == flit.packet) {
            Some((_, fs)) => fs.push(flit),
            None => stage.push((flit.packet, vec![flit])),
        }
        if is_tail {
            let pos = stage.iter().position(|(p, _)| *p == flit.packet).unwrap();
            let (_, fs) = stage.swap_remove(pos);
            let ring = self.ring.as_mut().unwrap();
            for f in fs {
                ring.enqueue(node, f);
            }
        }
        self.note_progress();
    }

    /// Ring phase: advance the bypass ring one cycle; ejections complete
    /// packets at NICs, mesh entries queue for transfer injection.
    fn ring_phase(&mut self) {
        if self.ring.is_none() {
            return;
        }
        let now = self.cycle;
        let mut out = std::mem::take(&mut self.ring_out);
        out.clear();
        {
            let ring = self.ring.as_mut().unwrap();
            ring.step(now, |node, flit| flit.vc as NodeId == node, &mut out);
            self.activity.ring_flits = ring.flits_forwarded;
        }
        for d in out.drain(..) {
            match d {
                RingDelivery::Eject(node, flit) => {
                    self.activity.flits_delivered += 1;
                    self.routers[node as usize].touch_local(now);
                    if let Some(done) = self.nics[node as usize].receive(flit, now, node) {
                        self.activity.packets_delivered += 1;
                        self.in_flight_packets -= 1;
                        self.stats.record(&done);
                    }
                    self.note_progress();
                }
                RingDelivery::MeshEntry(node, flit) => {
                    self.ring_transfer[node as usize].push_back(flit);
                    self.note_progress();
                }
            }
        }
        self.ring_out = out;
    }

    /// Transfer + bypass injection (one flit per node per cycle each way):
    /// ring-to-mesh transfers enter the reserved transfer VC of the local
    /// port; gated nodes serialize NIC packets straight onto the ring.
    fn ring_injection_phase(&mut self) {
        if self.ring.is_none() {
            return;
        }
        let now = self.cycle;
        for node in 0..self.nodes() as NodeId {
            // (a) Ring-to-mesh transfer at powered routers.
            if self.routers[node as usize].power.is_powered()
                && !self.ring_transfer[node as usize].is_empty()
            {
                let front = *self.ring_transfer[node as usize].front().unwrap();
                let open = self.transfer_open[node as usize];
                let ok_packet = match open {
                    Some(p) => p == front.packet,
                    None => front.kind.is_head(),
                };
                if ok_packet {
                    let vc = (self.cfg.regular_vcs - 1) as u8; // reserved transfer VC
                    let flat = self.cfg.vc_index(front.vnet as usize, vc as usize);
                    let r = &mut self.routers[node as usize];
                    let slot = r.slot(crate::types::Port::Local.index(), flat);
                    if r.inputs[slot].buf.free() > 0 {
                        let mut f = self.ring_transfer[node as usize].pop_front().unwrap();
                        f.vc = vc;
                        r.push_flit(crate::types::Port::Local.index(), slot, f, now);
                        self.activity.buffer_writes += 1;
                        self.transfer_open[node as usize] =
                            if f.kind.is_tail() { None } else { Some(f.packet) };
                        self.mark_work(node);
                        self.note_progress();
                    }
                }
            }
            // (b) Bypass injection at gated nodes: one NIC packet per cycle
            // rides the ring (the station is NIC-side memory; the ring
            // itself still serializes at one flit per cycle).
            if !self.routers[node as usize].power.is_powered() {
                let vnets = self.cfg.vnets;
                let rr0 = self.nics[node as usize].vnet_rr;
                for i in 0..vnets {
                    let vn = (rr0 + i) % vnets;
                    let Some(pkt) = self.nics[node as usize].queues[vn].pop_front() else {
                        continue;
                    };
                    self.nics[node as usize].vnet_rr = (vn + 1) % vnets;
                    let exit = self.ring_exit_for(node, pkt.dst);
                    for idx in 0..pkt.len {
                        self.ring_ingress(node, pkt.flit(idx, now), exit);
                        self.activity.flits_injected += 1;
                    }
                    self.activity.packets_injected += 1;
                    self.routers[node as usize].touch_local(now);
                    break;
                }
            }
        }
    }

    /// Fold the open residency interval of router `i` — `[res_since,
    /// cycle)` — into the tally under the router's *current* powered/gated
    /// condition.
    ///
    /// Called before a transition flips the router across the
    /// powered/gated boundary (`enter_sleep`, `complete_wakeup`): those
    /// happen in phase 4 of cycle `c`, and the per-cycle accounting this
    /// replaces tallied cycle `c` in phase 7, i.e. under the
    /// *post*-transition condition — so the pre-flip settle covers cycles
    /// up to but excluding `c`. The condition is constant over the open
    /// interval exactly because these two transitions are the only
    /// boundary crossings.
    pub(crate) fn settle_residency(&mut self, i: usize) {
        let dt = self.cycle - self.res_since[i];
        if dt > 0 {
            if self.routers[i].power.is_powered() {
                self.residency[i].powered += dt;
            } else {
                self.residency[i].gated += dt;
            }
            self.res_since[i] = self.cycle;
        }
    }

    /// Per-router powered/gated cycle tallies, settled up to the last
    /// completed cycle. Each router's total equals the cycles stepped so
    /// far. (Intended to be read between steps, as the harness does; the
    /// open interval is attributed to each router's current condition.)
    pub fn residency(&mut self) -> &[Residency] {
        for i in 0..self.routers.len() {
            self.settle_residency(i);
        }
        &self.residency
    }

    /// Phase 7 bookkeeping: the deadlock watchdog (residency accumulates
    /// lazily at power transitions; see [`NetworkCore::settle_residency`]).
    /// With `panic_on_stall` false (an [`Auditor`] is attached) the panic
    /// is suppressed — the auditor reports the stall as a structured
    /// [`AuditViolation`] instead.
    fn accounting_phase(&mut self, panic_on_stall: bool) {
        if panic_on_stall
            && self.cfg.watchdog_cycles > 0
            && self.in_flight_packets > 0
            && self.cycle - self.last_progress > self.cfg.watchdog_cycles
        {
            panic!(
                "watchdog: no progress for {} cycles at cycle {} with {} packets in flight \
                 ({} flits in network); power states: {:?}",
                self.cfg.watchdog_cycles,
                self.cycle,
                self.in_flight_packets,
                self.flits_in_network(),
                self.routers.iter().map(|r| r.power).collect::<Vec<_>>()
            );
        }
    }
}

/// A complete simulation: the network core plus a mechanism and a workload.
pub struct Simulation {
    pub core: NetworkCore,
    pub mech: Box<dyn PowerMechanism>,
    pub workload: Box<dyn Workload>,
    /// Optional invariant auditor, checked at step boundaries every
    /// `auditor.interval` cycles. `None` (the default) costs one branch
    /// per step. When attached, the core's panicking deadlock watchdog is
    /// replaced by the auditor's structured no-progress check.
    pub auditor: Option<Box<Auditor>>,
}

impl Simulation {
    pub fn new(
        cfg: NocConfig,
        mech: Box<dyn PowerMechanism>,
        workload: Box<dyn Workload>,
    ) -> Simulation {
        Simulation { core: NetworkCore::new(cfg), mech, workload, auditor: None }
    }

    /// Attach an [`Auditor`] configured from the core's watchdog setting.
    pub fn attach_auditor(&mut self, interval: Cycle) {
        self.auditor =
            Some(Box::new(Auditor::with_interval(interval, self.core.cfg.watchdog_cycles)));
    }

    /// Set the measurement window start (warmup end).
    pub fn measure_from(&mut self, cycle: Cycle) {
        self.core.stats.measure_from = cycle;
    }

    /// Advance one cycle.
    pub fn step(&mut self) {
        let core = &mut self.core;
        let cycle = core.cycle;
        // Phase 1: workload.
        self.workload.set_feedback(core.activity.packets_delivered, core.in_flight_packets);
        self.workload.update_cores(cycle, &mut core.core_active);
        let mut buf = std::mem::take(&mut core.gen_buf);
        buf.clear();
        self.workload.generate(cycle, &core.core_active, &mut buf);
        for req in buf.drain(..) {
            core.submit(req);
        }
        core.gen_buf = buf;
        // Optional per-phase wall-time accounting; see [`PhaseNanos`].
        let mut t0 = core.phase_nanos.as_deref().map(|_| std::time::Instant::now());
        // Phase 2: FLOV latches.
        core.latch_phase();
        lap(core, &mut t0, |p| &mut p.latch);
        // Phase 2b: the NoRD bypass ring (if enabled).
        core.ring_phase();
        // Phase 3: link delivery.
        core.delivery_phase();
        lap(core, &mut t0, |p| &mut p.delivery);
        // Phase 4: mechanism control — sharded when the kernel is parallel
        // and the mechanism opts in (see `par::control_phase`), otherwise
        // the mechanism's own sequential step.
        match core.kernel {
            KernelMode::Parallel { tiles, grid } if self.mech.sharded_control() => {
                par::control_phase(core, self.mech.as_mut(), tiles, grid);
            }
            _ => self.mech.step(core),
        }
        lap(core, &mut t0, |p| &mut p.mechanism);
        // Phase 5: NIC injection (plus ring transfers / bypass injection).
        pipeline::injection_phase(core, self.mech.as_ref());
        core.ring_injection_phase();
        lap(core, &mut t0, |p| &mut p.inject);
        // Phase 6: router pipelines.
        pipeline::pipeline_phase(core, self.mech.as_ref());
        lap(core, &mut t0, |p| &mut p.pipeline);
        // Phase 7: accounting, then (optionally) the invariant audit over
        // the settled end-of-cycle state.
        core.accounting_phase(self.auditor.is_none());
        if let Some(aud) = self.auditor.as_deref_mut() {
            if aud.due(core.cycle) {
                aud.check(core, self.mech.as_ref());
            }
        }
        core.cycle += 1;
    }

    /// Time-domain skip: under [`KernelMode::ActiveSet`], when the fabric
    /// is quiescent, jump the clock straight to the earliest cycle at
    /// which anything can happen — the workload's next injection or gating
    /// boundary, or the mechanism's next timer expiry — bounded by
    /// `deadline` (the enclosing run's edge). Every skipped cycle is a
    /// provable no-op for every subsystem (the horizon contract; see
    /// DESIGN.md), so counters and statistics come out bit-identical to
    /// stepping cycle-by-cycle: residency accumulates lazily from
    /// `res_since`, delivery stats are per-packet events, and the stall /
    /// watchdog counters need in-flight traffic that quiescence excludes.
    /// The [`KernelMode::Reference`] oracle never jumps, so the kernel
    /// equivalence suite proves exactly this property.
    ///
    /// Returns true if the clock moved.
    fn try_jump(&mut self, deadline: Cycle) -> bool {
        if !matches!(self.core.kernel, KernelMode::ActiveSet | KernelMode::Parallel { .. })
            || !self.core.quiescent()
        {
            return false;
        }
        let now = self.core.cycle;
        let mut horizon = deadline;
        if let Some(w) = self.workload.next_event(now) {
            horizon = horizon.min(w.max(now));
        }
        if let Some(m) = self.mech.next_event(&self.core) {
            horizon = horizon.min(m.max(now));
        }
        if horizon <= now {
            return false;
        }
        self.core.cycles_skipped += horizon - now;
        self.core.cycle = horizon;
        true
    }

    /// Run for `cycles` cycles.
    pub fn run(&mut self, cycles: u64) {
        let deadline = self.core.cycle + cycles;
        while self.core.cycle < deadline {
            if !self.try_jump(deadline) {
                self.step();
            }
        }
    }

    /// Run until the workload reports done and the network is empty, or
    /// `max_cycles` elapses. Returns the cycle count reached.
    pub fn run_until_done(&mut self, max_cycles: u64) -> Cycle {
        while self.core.cycle < max_cycles {
            if self.workload.done(self.core.activity.packets_delivered) && self.core.is_empty() {
                break;
            }
            if !self.try_jump(max_cycles) {
                self.step();
            }
        }
        self.core.cycle
    }

    /// Keep cycling (the workload keeps running) until every in-flight
    /// packet is delivered or `max_extra` cycles pass. Used at the end of
    /// measured runs so late packets count.
    pub fn drain(&mut self, max_extra: u64) {
        let deadline = self.core.cycle + max_extra;
        while !self.core.is_empty() && self.core.cycle < deadline {
            self.step();
        }
    }
}

/// Phase-timing lap: attribute the interval since `*t0` to the
/// [`PhaseNanos`] bucket selected by `f`, then restart the lap. A no-op
/// when timing is disabled (`t0` stays `None`).
#[inline]
fn lap(
    core: &mut NetworkCore,
    t0: &mut Option<std::time::Instant>,
    f: impl FnOnce(&mut PhaseNanos) -> &mut u64,
) {
    if let Some(prev) = *t0 {
        let now = std::time::Instant::now();
        if let Some(p) = core.phase_nanos.as_deref_mut() {
            *f(p) += now.duration_since(prev).as_nanos() as u64;
        }
        *t0 = Some(now);
    }
}

pub use pipeline::build_route_ctx;
