//! Kernel behavior tests that need access to network internals: pipeline
//! timing, wormhole streaming, credit back-pressure, FLOV latch streaming,
//! VA gating during handshakes.

use super::*;
use crate::baseline::AlwaysOnYx;
use crate::routing::{yx_route, RouteCtx};
use crate::traits::{PacketRequest, PowerView, ScriptedWorkload, SilentWorkload};
use crate::types::Port;

/// A mechanism that executes scripted power transitions at fixed cycles and
/// routes YX. Lets tests construct precise power-state scenarios without a
/// protocol in the way.
struct ManualMech {
    /// `(cycle, node, action)`; actions: 0=begin_drain, 1=enter_sleep,
    /// 2=begin_wakeup, 3=complete_wakeup, 4=abort_drain.
    script: Vec<(Cycle, NodeId, u8)>,
    next: usize,
}

impl ManualMech {
    fn new(mut script: Vec<(Cycle, NodeId, u8)>) -> ManualMech {
        script.sort_by_key(|e| e.0);
        ManualMech { script, next: 0 }
    }
}

impl PowerMechanism for ManualMech {
    fn name(&self) -> &'static str {
        "manual"
    }

    fn step(&mut self, core: &mut NetworkCore) {
        while self.next < self.script.len() && self.script[self.next].0 <= core.cycle {
            let (_, node, action) = self.script[self.next];
            match action {
                0 => core.begin_drain(node),
                1 => core.enter_sleep(node),
                2 => core.begin_wakeup(node),
                3 => core.complete_wakeup(node),
                4 => core.abort_drain(node),
                _ => unreachable!(),
            }
            self.next += 1;
        }
    }

    fn route(&self, _net: &dyn PowerView, ctx: &RouteCtx) -> Option<Port> {
        Some(yx_route(ctx.at, ctx.dst))
    }
}

fn small_cfg() -> NocConfig {
    NocConfig::small_test()
}

#[test]
fn wormhole_streams_one_flit_per_cycle() {
    // A single long packet across one hop: tail arrives len-1 cycles after
    // the head.
    let cfg = NocConfig { synth_packet_len: 6, ..small_cfg() };
    let w = ScriptedWorkload::new(vec![(0, PacketRequest { src: 0, dst: 1, vnet: 0, len: 6 })]);
    let mut sim = Simulation::new(cfg, Box::new(AlwaysOnYx), Box::new(w));
    sim.run_until_done(1_000);
    let s = &sim.core.stats;
    assert_eq!(s.packets, 1);
    assert_eq!(s.breakdown.serialization, 5);
    // Head path: 2 routers + 2 links = 8 cycles; tail 5 later; inject 1.
    assert!(s.avg_latency() <= 15.0, "latency {}", s.avg_latency());
}

#[test]
fn credit_backpressure_limits_vc_throughput() {
    // Saturate one VC path: throughput per VC is bounded by
    // buf_depth / credit-round-trip, total by VC count.
    let cfg = small_cfg();
    let mut events = Vec::new();
    for i in 0..200u64 {
        events.push((i, PacketRequest { src: 0, dst: 3, vnet: 0, len: 4 }));
    }
    let w = ScriptedWorkload::new(events);
    let mut sim = Simulation::new(cfg, Box::new(AlwaysOnYx), Box::new(w));
    let end = sim.run_until_done(20_000);
    assert!(end < 20_000);
    // 800 flits over a single row path; the row link is the bottleneck at
    // <= 1 flit/cycle, so at least 800 cycles passed.
    assert!(sim.core.cycle >= 800, "finished impossibly fast: {}", sim.core.cycle);
}

#[test]
fn flits_fly_over_sleeping_router_in_one_cycle_each() {
    // Manually gate router 1 on the path 0 -> 2 along row 0 and verify the
    // FLOV hop count and the latency advantage.
    let cfg = small_cfg();
    let script = vec![(5u64, 1u16, 0u8), (40, 1, 1)];
    let w = ScriptedWorkload::new(vec![(100, PacketRequest { src: 0, dst: 2, vnet: 0, len: 4 })]);
    let mut sim = Simulation::new(cfg, Box::new(ManualMech::new(script)), Box::new(w));
    let end = sim.run_until_done(5_000);
    assert!(end < 5_000);
    let s = &sim.core.stats;
    assert_eq!(s.packets, 1);
    assert_eq!(s.flov_hop_sum, 1, "expected one FLOV hop");
    assert_eq!(s.hop_sum, 2, "src and dst routers only");
    // 2 routers (6 cy) + 3 links (3 cy) + 1 latch (1 cy) + serial 3 ~ 13-14.
    assert!(s.avg_latency() <= 16.0, "latency {}", s.avg_latency());
}

#[test]
fn back_to_back_flits_stream_through_latch() {
    // All four flits of one packet cross the sleeping router consecutively:
    // the latch sustains 1 flit/cycle with no conflicts (asserted inside).
    let cfg = small_cfg();
    let script = vec![(5u64, 1u16, 0u8), (40, 1, 1), (5, 2, 0), (40, 2, 1)];
    let w = ScriptedWorkload::new(vec![(100, PacketRequest { src: 0, dst: 3, vnet: 0, len: 4 })]);
    let mut sim = Simulation::new(cfg, Box::new(ManualMech::new(script)), Box::new(w));
    let end = sim.run_until_done(5_000);
    assert!(end < 5_000);
    assert_eq!(sim.core.stats.flov_hop_sum, 2);
    assert_eq!(sim.core.activity.flov_latch_flits, 8); // 4 flits x 2 latches
}

#[test]
fn va_blocks_toward_draining_router_until_it_sleeps() {
    // Router 1 starts draining just before the packet wants to cross it:
    // the packet must wait for the Sleep transition, then fly over.
    let cfg = small_cfg();
    let script = vec![(99u64, 1u16, 0u8), (130, 1, 1)];
    let w = ScriptedWorkload::new(vec![(100, PacketRequest { src: 0, dst: 2, vnet: 0, len: 4 })]);
    let mut sim = Simulation::new(cfg, Box::new(ManualMech::new(script)), Box::new(w));
    let end = sim.run_until_done(5_000);
    assert!(end < 5_000);
    let s = &sim.core.stats;
    // It crossed via the latch (after the sleep at cycle 130), so total
    // latency reflects the ~30-cycle hold.
    assert_eq!(s.flov_hop_sum, 1);
    assert!(s.avg_latency() >= 35.0, "did not wait for the drain: {}", s.avg_latency());
}

#[test]
fn wakeup_request_raised_for_sleeping_destination() {
    let cfg = small_cfg();
    // Sleep router 2, then send a packet *to* node 2; the core must raise a
    // wakeup request (the manual mechanism ignores it, so the packet waits).
    let script = vec![(5u64, 2u16, 0u8), (40, 2, 1)];
    let w = ScriptedWorkload::new(vec![(100, PacketRequest { src: 0, dst: 2, vnet: 0, len: 4 })]);
    let mut sim = Simulation::new(
        NocConfig { watchdog_cycles: 0, ..cfg },
        Box::new(ManualMech::new(script)),
        Box::new(w),
    );
    sim.run(300);
    assert!(
        sim.core.wakeup_requests().contains(&2),
        "no wakeup request for the sleeping destination"
    );
    assert_eq!(sim.core.activity.packets_delivered, 0);
    // Wake it manually; delivery completes.
    sim.core.take_wakeup_requests(&mut Vec::new());
    sim.core.begin_wakeup(2);
    for _ in 0..20 {
        sim.step();
    }
    sim.core.complete_wakeup(2);
    let end = sim.run_until_done(5_000);
    assert!(end < 5_000);
    assert_eq!(sim.core.activity.packets_delivered, 1);
}

#[test]
fn credit_relay_crosses_sleeping_router() {
    // With router 1 asleep, stream enough packets 0 -> 2 that credits must
    // return across the sleeper (buffer depth 6 < 40 flits).
    let cfg = small_cfg();
    let script = vec![(5u64, 1u16, 0u8), (40, 1, 1)];
    let mut events = Vec::new();
    for i in 0..10u64 {
        events.push((100 + i * 2, PacketRequest { src: 0, dst: 2, vnet: 0, len: 4 }));
    }
    let w = ScriptedWorkload::new(events);
    let mut sim = Simulation::new(cfg, Box::new(ManualMech::new(script)), Box::new(w));
    let end = sim.run_until_done(10_000);
    assert!(end < 10_000);
    assert_eq!(sim.core.activity.packets_delivered, 10);
    assert!(sim.core.activity.credit_relays > 0, "credits never relayed across the sleeper");
}

#[test]
fn quiescence_predicates_track_traffic() {
    let cfg = small_cfg();
    let w = ScriptedWorkload::new(vec![(10, PacketRequest { src: 0, dst: 3, vnet: 0, len: 4 })]);
    let mut sim = Simulation::new(cfg, Box::new(AlwaysOnYx), Box::new(w));
    assert!(sim.core.fully_quiescent(1));
    sim.run(14); // packet in flight through router 1's row
    assert!(!sim.core.fully_quiescent(1), "router 1 should see inbound traffic mid-transfer");
    sim.run_until_done(5_000);
    assert!(sim.core.fully_quiescent(1));
    assert!(sim.core.fully_quiescent(2));
}

#[test]
fn watchdog_fires_on_artificial_stall() {
    // Put a router to sleep *with the manual mechanism never waking it* and
    // address traffic to it; the watchdog must detect the stall.
    let cfg = NocConfig { watchdog_cycles: 2_000, ..small_cfg() };
    let script = vec![(5u64, 2u16, 0u8), (40, 2, 1)];
    let w = ScriptedWorkload::new(vec![(100, PacketRequest { src: 0, dst: 2, vnet: 0, len: 4 })]);
    let mut sim = Simulation::new(cfg, Box::new(ManualMech::new(script)), Box::new(w));
    let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        sim.run(10_000);
    }));
    assert!(res.is_err(), "watchdog did not fire");
}

#[test]
fn injection_respects_one_flit_per_cycle() {
    let cfg = small_cfg();
    let mut events = Vec::new();
    for _ in 0..5 {
        events.push((0u64, PacketRequest { src: 0, dst: 5, vnet: 0, len: 4 }));
    }
    let w = ScriptedWorkload::new(events);
    let mut sim = Simulation::new(cfg, Box::new(AlwaysOnYx), Box::new(w));
    // 20 flits at 1 flit/cycle: after 10 cycles, at most 10 injected.
    sim.run(10);
    assert!(
        sim.core.activity.flits_injected <= 10,
        "{} flits injected in 10 cycles",
        sim.core.activity.flits_injected
    );
    sim.run_until_done(5_000);
    assert_eq!(sim.core.activity.flits_injected, 20);
}

#[test]
fn silent_network_stays_silent() {
    let mut sim = Simulation::new(small_cfg(), Box::new(AlwaysOnYx), Box::new(SilentWorkload));
    sim.run(1_000);
    assert_eq!(sim.core.activity.flits_injected, 0);
    assert_eq!(sim.core.flits_in_network(), 0);
    assert_eq!(sim.core.activity.buffer_writes, 0);
    assert!(sim.core.is_empty());
}

/// A busy scenario exercising every active-set path: FLOV latches, credit
/// relays across sleepers, wakeups mid-run, and plain wormhole traffic.
fn gating_scenario(kernel: KernelMode) -> Simulation {
    let cfg = small_cfg();
    let script = vec![
        (5u64, 1u16, 0u8),
        (40, 1, 1),
        (5, 2, 0),
        (40, 2, 1),
        (400, 1, 2),
        (420, 1, 3),
        (430, 2, 2),
        (450, 2, 3),
    ];
    let mut events = Vec::new();
    for i in 0..10u64 {
        // Streams 0 -> 3 cross both sleepers: latches + credit relays.
        events.push((100 + i * 2, PacketRequest { src: 0, dst: 3, vnet: 0, len: 4 }));
    }
    events.push((150, PacketRequest { src: 4, dst: 7, vnet: 0, len: 4 }));
    events.push((500, PacketRequest { src: 3, dst: 0, vnet: 0, len: 4 }));
    events.push((520, PacketRequest { src: 2, dst: 13, vnet: 0, len: 4 }));
    let w = ScriptedWorkload::new(events);
    let mut sim = Simulation::new(cfg, Box::new(ManualMech::new(script)), Box::new(w));
    sim.core.kernel = kernel;
    sim
}

#[test]
fn active_set_kernel_matches_reference_on_gating_scenario() {
    let mut act = gating_scenario(KernelMode::ActiveSet);
    let mut reference = gating_scenario(KernelMode::Reference);
    let end_a = act.run_until_done(10_000);
    let end_r = reference.run_until_done(10_000);
    assert_eq!(end_a, end_r, "kernels finished at different cycles");
    reference.run(end_a + 100 - reference.core.cycle); // align final cycle
    act.run(end_a + 100 - act.core.cycle);
    assert!(act.core.activity.flov_latch_flits > 0, "scenario never used the latches");
    assert!(act.core.activity.credit_relays > 0, "scenario never relayed credits");
    assert_eq!(act.core.activity, reference.core.activity);
    assert_eq!(act.core.residency(), reference.core.residency());
    let (a, r) = (&act.core.stats, &reference.core.stats);
    assert_eq!(a.packets, r.packets);
    assert_eq!(a.avg_latency(), r.avg_latency());
    assert_eq!(a.hop_sum, r.hop_sum);
    assert_eq!(a.flov_hop_sum, r.flov_hop_sum);
    assert_eq!(a.breakdown, r.breakdown);
    assert_eq!(a.histogram, r.histogram);
}

#[test]
fn kernel_mode_can_switch_mid_run() {
    // The scheduling sets are maintained in both modes, so flipping the
    // kernel in the middle of a run must not change the outcome.
    let mut mixed = gating_scenario(KernelMode::Reference);
    mixed.run(300); // latches, relays, and sleepers all live at cycle 300
    mixed.core.kernel = KernelMode::ActiveSet;
    let end_m = mixed.run_until_done(10_000);
    let mut pure = gating_scenario(KernelMode::ActiveSet);
    let end_p = pure.run_until_done(10_000);
    assert_eq!(end_m, end_p);
    assert_eq!(mixed.core.activity, pure.core.activity);
    assert_eq!(mixed.core.stats.packets, pure.core.stats.packets);
    assert_eq!(mixed.core.stats.avg_latency(), pure.core.stats.avg_latency());
    assert_eq!(mixed.core.residency(), pure.core.residency());
}

#[test]
fn lazy_residency_attributes_transition_cycles_like_the_eager_tally() {
    // Sleep router 1 at cycle 40, wake it at 110, observe at 200. The eager
    // per-cycle tally attributed each cycle to the state *after* that
    // cycle's transitions: gated covers [40, 110), powered the rest.
    let script = vec![(5u64, 1u16, 0u8), (40, 1, 1), (100, 1, 2), (110, 1, 3)];
    let mut sim =
        Simulation::new(small_cfg(), Box::new(ManualMech::new(script)), Box::new(SilentWorkload));
    sim.run(200);
    let res = sim.core.residency()[1].clone();
    assert_eq!(res.gated, 70, "gated residency {} != cycles [40, 110)", res.gated);
    assert_eq!(res.powered + res.gated, 200, "every cycle attributed exactly once");
    // Querying is idempotent: settling twice must not double-count.
    let again = sim.core.residency()[1].clone();
    assert_eq!(res, again);
}

#[test]
fn stalled_injection_counts_node_cycles() {
    // A closed injection gate with N backlogged nodes accrues exactly N
    // stall counts per cycle — node-cycles, not cycles.
    struct ClosedGate;
    impl PowerMechanism for ClosedGate {
        fn name(&self) -> &'static str {
            "closed-gate"
        }
        fn step(&mut self, _core: &mut NetworkCore) {}
        fn route(&self, _net: &dyn PowerView, ctx: &RouteCtx) -> Option<Port> {
            Some(yx_route(ctx.at, ctx.dst))
        }
        fn injection_allowed(&self, _net: &dyn PowerView, _node: NodeId) -> bool {
            false
        }
    }
    let events = vec![
        (0u64, PacketRequest { src: 0, dst: 5, vnet: 0, len: 4 }),
        (0, PacketRequest { src: 1, dst: 6, vnet: 0, len: 4 }),
        (0, PacketRequest { src: 2, dst: 7, vnet: 0, len: 4 }),
    ];
    let cfg = NocConfig { watchdog_cycles: 0, ..small_cfg() };
    let w = ScriptedWorkload::new(events);
    let mut sim = Simulation::new(cfg, Box::new(ClosedGate), Box::new(w));
    sim.run(100);
    let first = sim.core.stalled_injection_node_cycles;
    sim.run(50);
    let delta = sim.core.stalled_injection_node_cycles - first;
    assert_eq!(delta, 3 * 50, "3 stalled nodes over 50 cycles");
    assert_eq!(sim.core.activity.flits_injected, 0);
}

#[test]
fn escape_diversion_on_unroutable_is_immediate() {
    // A mechanism that always stalls regular packets forces immediate
    // escape diversion (tested with YX escape = still YX, so delivery works).
    struct Staller;
    impl PowerMechanism for Staller {
        fn name(&self) -> &'static str {
            "staller"
        }
        fn step(&mut self, _core: &mut NetworkCore) {}
        fn route(&self, _net: &dyn PowerView, ctx: &RouteCtx) -> Option<Port> {
            if ctx.escape {
                Some(yx_route(ctx.at, ctx.dst))
            } else {
                None // never route regular packets
            }
        }
    }
    let w = ScriptedWorkload::new(vec![(0, PacketRequest { src: 0, dst: 5, vnet: 0, len: 4 })]);
    let mut sim = Simulation::new(small_cfg(), Box::new(Staller), Box::new(w));
    let end = sim.run_until_done(3_000);
    assert!(end < 3_000, "escape diversion did not rescue the packet");
    assert_eq!(sim.core.escape_diversions, 1);
    assert_eq!(sim.core.stats.escape_packets, 1);
    // Diversion was immediate: total latency stays near the minimum, far
    // below the 128-cycle timeout.
    assert!(sim.core.stats.avg_latency() < 40.0, "latency {}", sim.core.stats.avg_latency());
}

// ---------------------------------------------------------------------------
// Auditor: the release-capable invariant checker (audit.rs).

#[test]
fn clean_run_audits_clean() {
    let mut events = Vec::new();
    for i in 0..20u64 {
        events.push((i * 3, PacketRequest { src: 0, dst: 5, vnet: 0, len: 4 }));
    }
    let w = ScriptedWorkload::new(events);
    let mut sim = Simulation::new(small_cfg(), Box::new(AlwaysOnYx), Box::new(w));
    sim.attach_auditor(16);
    sim.run_until_done(10_000);
    let aud = sim.auditor.as_ref().unwrap();
    assert!(aud.checks() > 0, "auditor never ran");
    assert!(aud.clean(), "violations on a healthy run: {:?}", aud.violations());
}

#[test]
fn auditor_flags_flit_leak() {
    let w = ScriptedWorkload::new(vec![(0, PacketRequest { src: 0, dst: 3, vnet: 0, len: 4 })]);
    let mut sim = Simulation::new(small_cfg(), Box::new(AlwaysOnYx), Box::new(w));
    sim.run_until_done(5_000);
    // Forge the books: one injected flit that never existed.
    sim.core.activity.flits_injected += 1;
    let mut aud = Auditor::with_interval(1, 0);
    aud.check(&sim.core, sim.mech.as_ref());
    let kinds: Vec<AuditKind> = aud.violations().iter().map(|v| v.kind).collect();
    assert!(kinds.contains(&AuditKind::FlitConservation), "got {kinds:?}");
}

#[test]
fn auditor_flags_credit_corruption() {
    let w = ScriptedWorkload::new(vec![(0, PacketRequest { src: 0, dst: 3, vnet: 0, len: 4 })]);
    let mut sim = Simulation::new(small_cfg(), Box::new(AlwaysOnYx), Box::new(w));
    sim.run_until_done(5_000);
    // Steal one credit from router 0's East output, VC 0.
    let slot = sim.core.routers[0].slot(Port::East.index(), 0);
    sim.core.routers[0].out_credits[slot].consume();
    let mut aud = Auditor::with_interval(1, 0);
    aud.check(&sim.core, sim.mech.as_ref());
    let kinds: Vec<AuditKind> = aud.violations().iter().map(|v| v.kind).collect();
    assert!(kinds.contains(&AuditKind::CreditConservation), "got {kinds:?}");
}

#[test]
fn auditor_flags_gated_residency() {
    // Buffer flits inside router 1 mid-transit, then flip it to Sleep
    // behind the transition protocol's back.
    let mut events = Vec::new();
    for _ in 0..6 {
        events.push((0u64, PacketRequest { src: 0, dst: 3, vnet: 0, len: 4 }));
    }
    let w = ScriptedWorkload::new(events);
    let mut sim = Simulation::new(small_cfg(), Box::new(AlwaysOnYx), Box::new(w));
    sim.run(14);
    assert!(sim.core.routers[1].buffered_flits() > 0, "no flits staged in router 1");
    sim.core.routers[1].power = PowerState::Sleep;
    let mut aud = Auditor::with_interval(1, 0);
    aud.check(&sim.core, sim.mech.as_ref());
    let kinds: Vec<AuditKind> = aud.violations().iter().map(|v| v.kind).collect();
    assert!(kinds.contains(&AuditKind::GatedResidency), "got {kinds:?}");
}

#[test]
fn auditor_flags_mechanism_state_violation() {
    // The baseline's audit_state contract: no router ever leaves Active.
    let mut sim = Simulation::new(small_cfg(), Box::new(AlwaysOnYx), Box::new(SilentWorkload));
    sim.run(10);
    sim.core.routers[2].power = PowerState::Draining;
    let mut aud = Auditor::with_interval(1, 0);
    aud.check(&sim.core, sim.mech.as_ref());
    let kinds: Vec<AuditKind> = aud.violations().iter().map(|v| v.kind).collect();
    assert!(kinds.contains(&AuditKind::StateLegality), "got {kinds:?}");
}

#[test]
fn auditor_reports_stall_instead_of_panicking() {
    // The watchdog scenario from `watchdog_fires_on_artificial_stall`,
    // with an auditor attached: same detection, structured report, no
    // panic — and the detail names the stuck flit's location.
    let cfg = NocConfig { watchdog_cycles: 2_000, ..small_cfg() };
    let script = vec![(5u64, 2u16, 0u8), (40, 2, 1)];
    let w = ScriptedWorkload::new(vec![(100, PacketRequest { src: 0, dst: 2, vnet: 0, len: 4 })]);
    let mut sim = Simulation::new(cfg, Box::new(ManualMech::new(script)), Box::new(w));
    sim.attach_auditor(64);
    sim.run(10_000); // must not panic
    let aud = sim.auditor.as_ref().unwrap();
    let stall: Vec<_> =
        aud.violations().iter().filter(|v| v.kind == AuditKind::NoProgress).collect();
    assert!(!stall.is_empty(), "no NoProgress violation: {:?}", aud.violations());
    assert!(stall[0].detail.contains("stuck at ["), "detail: {}", stall[0].detail);
}
