//! The sharded in-run parallel kernel: tile-partitioned execution of the
//! four hot per-cycle phases (FLOV latches, link delivery, NIC injection,
//! router pipelines) with a deterministic boundary exchange, bit-identical
//! to the sequential [`KernelMode::ActiveSet`] kernel.
//!
//! # Partitioning
//!
//! The router grid is cut into a 2-D grid of tiles ([`TilePlan`]): the
//! `ky` rows into `R` contiguous row bands and the `kx` columns into `C`
//! contiguous column bands, tile `(i, j)` owning row band `i` × column
//! band `j`. The planner picks `R×C` by seam-minimizing factorization of
//! the requested tile count (`--threads 8` on a square mesh → a 4×2
//! plan); an explicit geometry (`--tiles RxC`, `FLOV_TILES=RxC`)
//! overrides it. Tile 0 runs on the driving thread and each further tile
//! on a persistent pooled worker ([`Pool`]). Every phase is a fork-join:
//! the driver collects the phase's global active set (ascending, exactly
//! the order the sequential kernel iterates) and every tile walks that
//! snapshot, running the tasks it owns ([`TilePlan::tile_of`]) in the
//! same ascending order. Ownership per phase is single-writer per
//! element, independent of tile geometry:
//!
//! * latch / injection / pipeline phases partition by the *owning* router
//!   — a body touches only its router, its NIC, its outgoing channels and
//!   its ejection channel;
//! * the delivery phase partitions channels by the *receiving* router (a
//!   directed channel has exactly one receiver), so all four inbound
//!   channels of a router are drained by the same tile, in the same
//!   relative (ascending-index) order as the sequential scan.
//!
//! # Boundary exchange
//!
//! Everything a tile would write outside its own elements is buffered in a
//! per-tile [`Delta`] and applied by the driver *after* the join. With 2-D
//! tiles, tile order no longer equals ascending node order, so replay
//! distinguishes two classes. The order-sensitive streams — wakeup
//! requests and NoRD ring enqueues, both tagged with their originating
//! node — are k-way merged across tiles back into ascending origin order,
//! which is exactly the sequential order: per-tile lists are already
//! ascending by origin (tiles walk the snapshot in ascending order) and
//! origins are disjoint across tiles. Everything else — global counters
//! and statistics, delivered-packet records, cross-tile credit relays,
//! and every scheduling-set mark — commutes across tiles or is
//! single-writer (a relayed credit's channel is fed by exactly the tile
//! that owns its sender). Set marks apply all removals before all inserts — an insert from
//! one tile must survive a concurrent lazy removal by the channel's
//! consumer tile, exactly as the sequential kernel's in-order interleaving
//! guarantees (a relayed credit arrives at `now + 1`, so the sequential
//! consumer never removes the mark either). Buffered credit relays are
//! equally invisible intra-phase: nothing with arrival `now + 1` can be
//! received at `now`.
//!
//! # Power snapshot
//!
//! Power states change only in phase 4 (the mechanism step) and are *read*
//! across tile boundaries by routing (`psr`, FLOV chain walks, credit
//! relay checks). Each parallel phase therefore snapshots the power vector
//! up front and evaluates all cross-tile power reads — including the
//! mechanism's [`PowerMechanism::route`] / `injection_allowed` hooks, via
//! [`SnapView`] — against the immutable snapshot, while a tile reads its
//! *own* routers' states directly (identical by construction).
//!
//! # Sharded mechanism control (phase 4)
//!
//! Mechanisms that opt in ([`PowerMechanism::sharded_control`]) split
//! their per-cycle control step into a serial prologue, a per-node FSM
//! body (`control_node`, the exact sequential body), and a serial
//! epilogue. The driver runs the prologue, then a parallel *read-only*
//! verdict pass (`control_quiet`) that flags every node whose body could
//! do anything at all, then replays `control_node` serially over the
//! flagged nodes in ascending node order. Verdicts are computed against
//! pre-phase state and are conservative: the first body that mutates the
//! core (a power transition) invalidates later verdicts, so the driver
//! escalates and runs the body on *every* remaining node — from that
//! point the scan is literally the sequential loop, and id-order
//! arbitration (lower id transitions first, higher id sees `Draining`
//! and backs off) is preserved bit-for-bit. Self-only control-state
//! ticks return `false` and don't escalate: no other node's body or
//! verdict reads them.
//!
//! # Determinism argument (summary; see DESIGN.md §7)
//!
//! Within a phase, bodies of different tiles touch disjoint mutable state,
//! and every shared effect is buffered and replayed in the sequential
//! order. Arbitration (VA/SA round-robins, rotating VC scans) is per
//! router and stays inside a tile. The time-skip horizon reduction runs on
//! the driver over the *global* quiescence predicate and the same
//! mechanism/workload horizons as the sequential kernel, so jumps happen
//! at exactly the same cycles. Hence every cycle's end state — and every
//! `RunResult` — is bit-for-bit identical to the sequential kernel, which
//! is why `KernelMode` stays out of result cache keys.

use super::NetworkCore;
use crate::activity::ActivityCounters;
use crate::config::NocConfig;
use crate::flit::Flit;
use crate::link::{Channel, CreditMsg};
use crate::nic::{InjectState, Nic};
use crate::packet::DeliveredPacket;
use crate::router::{Router, VcOwner};
use crate::routing::RouteCtx;
use crate::topology::{AnyTopology, Topology};
use crate::traits::{PowerMechanism, PowerView};
use crate::types::{Cycle, Dir, NodeId, PacketId, Port, PowerState, NUM_PORTS};
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

// --- Tile plan --------------------------------------------------------------

/// 2-D tile grid over the router grid: the `ky` rows are cut into `R`
/// contiguous row bands (`row_starts`, `R + 1` fenceposts) and the `kx`
/// columns into `C` column bands (`col_starts`); tile `(i, j)` owns row
/// band `i` × column band `j` and has index `i * C + j`. `row_of` /
/// `col_of` are per-row / per-column lookup tables so [`TilePlan::tile_of`]
/// is two loads and a multiply on the hot path.
#[derive(Debug)]
struct TilePlan {
    kx: u16,
    row_starts: Vec<u16>,
    col_starts: Vec<u16>,
    row_of: Vec<u16>,
    col_of: Vec<u16>,
}

/// Seam-minimizing factorization: among all `r × c` grids with `r <= ky`,
/// `c <= kx` and `r * c <= tiles`, maximize the tile count, then minimize
/// the total seam length `(c - 1) * ky + (r - 1) * kx`, then prefer more
/// rows (row seams cut fewer unit-stride node runs). A square mesh at 8
/// tiles plans 4×2; at 2 it stays a row-stripe pair.
fn plan_grid(kx: u16, ky: u16, tiles: usize) -> (u16, u16) {
    let t = tiles.max(1);
    let mut best = (1u16, 1u16);
    let mut best_area = 0usize;
    let mut best_cost = u64::MAX;
    for r in 1..=(ky as usize).min(t) {
        let c = (t / r).min(kx as usize);
        let area = r * c;
        let cost = (c as u64 - 1) * ky as u64 + (r as u64 - 1) * kx as u64;
        let better = area > best_area
            || (area == best_area && cost < best_cost)
            || (area == best_area && cost == best_cost && r as u16 > best.0);
        if better {
            best = (r as u16, c as u16);
            best_area = area;
            best_cost = cost;
        }
    }
    best
}

/// The geometry a `Parallel { tiles, grid }` request actually runs with on
/// a `kx × ky` grid: explicit grids clamp to the grid dimensions, planned
/// grids come from the seam-minimizing factorization.
pub(super) fn planned_geometry(
    kx: u16,
    ky: u16,
    tiles: usize,
    grid: Option<(u16, u16)>,
) -> (u16, u16) {
    match grid {
        Some((r, c)) => (r.clamp(1, ky), c.clamp(1, kx)),
        None => plan_grid(kx, ky, tiles),
    }
}

impl TilePlan {
    fn new(kx: u16, ky: u16, tiles: usize, grid: Option<(u16, u16)>) -> TilePlan {
        let (r, c) = planned_geometry(kx, ky, tiles, grid);
        let (r, c) = (r as usize, c as usize);
        let row_starts: Vec<u16> = (0..=r).map(|i| (i * ky as usize / r) as u16).collect();
        let col_starts: Vec<u16> = (0..=c).map(|j| (j * kx as usize / c) as u16).collect();
        let mut row_of = vec![0u16; ky as usize];
        for (i, w) in row_starts.windows(2).enumerate() {
            for y in w[0]..w[1] {
                row_of[y as usize] = i as u16;
            }
        }
        let mut col_of = vec![0u16; kx as usize];
        for (j, w) in col_starts.windows(2).enumerate() {
            for x in w[0]..w[1] {
                col_of[x as usize] = j as u16;
            }
        }
        TilePlan { kx, row_starts, col_starts, row_of, col_of }
    }

    fn rows(&self) -> usize {
        self.row_starts.len() - 1
    }

    fn cols(&self) -> usize {
        self.col_starts.len() - 1
    }

    fn tiles(&self) -> usize {
        self.rows() * self.cols()
    }

    #[inline]
    fn tile_of(&self, node: u32) -> usize {
        let y = node as usize / self.kx as usize;
        let x = node as usize % self.kx as usize;
        self.row_of[y] as usize * (self.col_starts.len() - 1) + self.col_of[x] as usize
    }

    /// Ordered pairs of tile indices that share a seam, each adjacency in
    /// both directions. Test-only: the proptest checks this against a
    /// brute-force node-adjacency scan.
    #[cfg(test)]
    fn seams(&self) -> Vec<(usize, usize)> {
        let (r, c) = (self.rows(), self.cols());
        let mut out = Vec::new();
        for i in 0..r {
            for j in 0..c {
                let a = i * c + j;
                if j + 1 < c {
                    out.push((a, a + 1));
                    out.push((a + 1, a));
                }
                if i + 1 < r {
                    out.push((a, a + c));
                    out.push((a + c, a));
                }
            }
        }
        out
    }
}

// --- Per-tile delta ---------------------------------------------------------

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum SetId {
    Latch,
    Work,
    Inject,
    Chan,
    Eject,
}

/// Everything a tile body would write outside its own elements, buffered
/// for in-order replay by the driver after the phase join.
#[derive(Default)]
struct Delta {
    act: ActivityCounters,
    delivered: Vec<DeliveredPacket>,
    in_flight_dec: u64,
    stalled: u64,
    escape_diversions: u64,
    progressed: bool,
    /// Wakeup requests as `(origin, sleeper)`; origins ascend within a
    /// tile and are merged across tiles at replay.
    wakes: Vec<(NodeId, NodeId)>,
    /// Ring enqueues as `(origin, flit)`; merged like `wakes`.
    ring_enq: Vec<(NodeId, Flit)>,
    /// Cross-tile credit relays: `(channel, arrival, credit)`.
    credit_sends: Vec<(usize, Cycle, CreditMsg)>,
    removes: Vec<(SetId, u32)>,
    inserts: Vec<(SetId, u32)>,
}

impl Delta {
    /// A delta sized for a tile owning at most `owned` nodes. Deltas are
    /// drained after every phase, so the needed capacity is one phase's
    /// worst burst, which is bandwidth-bounded (per owned node and cycle:
    /// ~1 ejected packet, 4 outgoing channels' worth of flits/credits, a
    /// handful of set transitions) — not resident-state-bounded. Reserving
    /// past any realistic single-cycle burst keeps the steady-state loop
    /// allocation-free (enforced by the `alloc_regression` test); an
    /// extreme burst beyond the reserve still works, it just grows the
    /// arena once and keeps the new high-water mark.
    fn for_tile(owned: usize) -> Delta {
        let mut d = Delta::default();
        d.delivered.reserve(owned * 4);
        d.wakes.reserve(owned * 4);
        d.ring_enq.reserve(owned * 2);
        d.credit_sends.reserve(owned * 4);
        d.removes.reserve(owned * 10);
        d.inserts.reserve(owned * 10);
        d
    }
}

fn add_activity(into: &mut ActivityCounters, d: &ActivityCounters) {
    into.buffer_writes += d.buffer_writes;
    into.buffer_reads += d.buffer_reads;
    into.xbar_traversals += d.xbar_traversals;
    into.sa_grants += d.sa_grants;
    into.va_grants += d.va_grants;
    into.link_flits += d.link_flits;
    into.flov_latch_flits += d.flov_latch_flits;
    into.ring_flits += d.ring_flits;
    into.credit_msgs += d.credit_msgs;
    into.credit_relays += d.credit_relays;
    into.handshake_signals += d.handshake_signals;
    into.gating_events += d.gating_events;
    into.packets_injected += d.packets_injected;
    into.flits_injected += d.flits_injected;
    into.packets_delivered += d.packets_delivered;
    into.flits_delivered += d.flits_delivered;
}

fn sched_set(core: &mut NetworkCore, id: SetId) -> &mut crate::active::ActiveSet {
    match id {
        SetId::Latch => &mut core.sched.latch,
        SetId::Work => &mut core.sched.work,
        SetId::Inject => &mut core.sched.inject,
        SetId::Chan => &mut core.sched.chan,
        SetId::Eject => &mut core.sched.eject,
    }
}

/// K-way merge one per-tile, ascending-by-origin effect stream back into
/// global ascending-origin order. Origins are disjoint across tiles (a
/// node is owned by exactly one tile) and ascend within a tile, so the
/// merge reproduces exactly the sequential kernel's emission order —
/// including the relative order of same-origin entries, which stay in
/// their single tile's list order. `cursors` is persistent scratch.
fn merge_ordered<T: Copy>(
    deltas: &mut [Delta],
    cursors: &mut Vec<usize>,
    stream: impl Fn(&mut Delta) -> &mut Vec<(NodeId, T)>,
    mut apply: impl FnMut(NodeId, T),
) {
    cursors.clear();
    cursors.resize(deltas.len(), 0);
    loop {
        let mut best: Option<(NodeId, usize)> = None;
        for (t, d) in deltas.iter_mut().enumerate() {
            if let Some(&(origin, _)) = stream(d).get(cursors[t]) {
                if best.is_none_or(|(o, _)| origin < o) {
                    best = Some((origin, t));
                }
            }
        }
        let Some((_, t)) = best else { break };
        let (origin, payload) = stream(&mut deltas[t])[cursors[t]];
        cursors[t] += 1;
        apply(origin, payload);
    }
    for d in deltas.iter_mut() {
        stream(d).clear();
    }
}

/// Replay the per-tile deltas into the core. Set removals apply before
/// set inserts (see module docs). Counters, statistics and delivered
/// records commute across tiles; credit sends are single-tile per
/// channel; the two order-sensitive streams — wakeup requests and ring
/// enqueues — are merged back into ascending origin order, which is the
/// sequential kernel's order.
fn apply_deltas(core: &mut NetworkCore, deltas: &mut [Delta], cursors: &mut Vec<usize>) {
    for t in deltas.iter() {
        for &(s, idx) in &t.removes {
            sched_set(core, s).remove(idx as usize);
        }
    }
    for t in deltas.iter() {
        for &(s, idx) in &t.inserts {
            sched_set(core, s).insert(idx as usize);
        }
    }
    for d in deltas.iter_mut() {
        d.removes.clear();
        d.inserts.clear();
        add_activity(&mut core.activity, &d.act);
        d.act = ActivityCounters::default();
        for done in d.delivered.drain(..) {
            core.stats.record(&done);
        }
        core.in_flight_packets -= d.in_flight_dec;
        d.in_flight_dec = 0;
        core.stalled_injection_node_cycles += d.stalled;
        d.stalled = 0;
        core.escape_diversions += d.escape_diversions;
        d.escape_diversions = 0;
        if d.progressed {
            core.last_progress = core.cycle;
            d.progressed = false;
        }
        for (e, t, c) in d.credit_sends.drain(..) {
            core.channels[e].send_credit(t, c);
        }
    }
    merge_ordered(
        deltas,
        cursors,
        |d| &mut d.wakes,
        |_origin, sleeper| {
            core.request_wakeup(sleeper);
        },
    );
    merge_ordered(
        deltas,
        cursors,
        |d| &mut d.ring_enq,
        |origin, flit| {
            core.ring.as_mut().expect("ring enqueue without a ring").enqueue(origin, flit);
        },
    );
}

// --- Shared phase context ---------------------------------------------------

/// Power view over the start-of-phase snapshot.
struct SnapView<'a> {
    powers: &'a [PowerState],
}

impl PowerView for SnapView<'_> {
    #[inline]
    fn nodes(&self) -> usize {
        self.powers.len()
    }

    #[inline]
    fn power(&self, n: NodeId) -> PowerState {
        self.powers[n as usize]
    }
}

/// Raw shard access to the core's element arrays, shared by all tiles of
/// one phase. Soundness: per phase, every element is written by at most
/// one tile (see module docs), and the driver joins all tiles before
/// touching the core again.
struct Shared<'a> {
    now: Cycle,
    cfg: &'a NocConfig,
    topo: &'a AnyTopology,
    powers: &'a [PowerState],
    /// The mechanism, for the injection-gate and routing hooks; `None` in
    /// the latch/delivery phases, which never consult it.
    mech: Option<&'a dyn PowerMechanism>,
    has_ring: bool,
    nodes: usize,
    routers: *mut Router,
    channels: *mut Channel,
    eject: *mut Channel,
    nics: *mut Nic,
    link_util: *mut u64,
    ring_stage: *mut Vec<(PacketId, Vec<Flit>)>,
}

unsafe impl Send for Shared<'_> {}
unsafe impl Sync for Shared<'_> {}

/// One tile's execution context for one phase: shard access plus the
/// tile-private delta and scratch.
struct Lane<'a> {
    sh: &'a Shared<'a>,
    d: &'a mut Delta,
    va_order: &'a mut Vec<u16>,
}

#[allow(clippy::mut_from_ref)] // per-phase single-writer discipline; see Shared
impl Lane<'_> {
    #[inline]
    unsafe fn router(&self, i: usize) -> &mut Router {
        debug_assert!(i < self.sh.nodes);
        &mut *self.sh.routers.add(i)
    }

    #[inline]
    unsafe fn chan(&self, e: usize) -> &mut Channel {
        debug_assert!(e < self.sh.nodes * 4);
        &mut *self.sh.channels.add(e)
    }

    #[inline]
    unsafe fn eject_chan(&self, n: usize) -> &mut Channel {
        debug_assert!(n < self.sh.nodes);
        &mut *self.sh.eject.add(n)
    }

    #[inline]
    unsafe fn nic(&self, n: usize) -> &mut Nic {
        debug_assert!(n < self.sh.nodes);
        &mut *self.sh.nics.add(n)
    }

    #[inline]
    fn neighbor(&self, node: NodeId, d: Dir) -> Option<NodeId> {
        self.sh.topo.neighbor_dir(node, d)
    }

    #[inline]
    fn snap_power(&self, n: NodeId) -> PowerState {
        self.sh.powers[n as usize]
    }

    /// PSR register contents from the snapshot (mirrors `NetworkCore::psr`).
    fn psr(&self, node: NodeId) -> [Option<PowerState>; 4] {
        let mut out = [None; 4];
        for d in Dir::ALL {
            out[d.index()] = self.sh.topo.grid_neighbor(node, d).map(|m| self.snap_power(m));
        }
        out
    }

    /// Snapshot twin of `NetworkCore::chain_walk`.
    fn chain_walk(&self, from: NodeId, d: Dir, dst: NodeId) -> super::ChainTarget {
        use super::ChainTarget;
        let mut cur = from;
        let mut sleepers = 0;
        loop {
            let Some(next) = self.neighbor(cur, d) else {
                return ChainTarget { powered: None, blocked: false, dst_on_chain: None, sleepers };
            };
            if next == from {
                return ChainTarget { powered: None, blocked: true, dst_on_chain: None, sleepers };
            }
            match self.snap_power(next) {
                PowerState::Active => {
                    return ChainTarget {
                        powered: Some(next),
                        blocked: false,
                        dst_on_chain: None,
                        sleepers,
                    }
                }
                PowerState::Draining => {
                    return ChainTarget {
                        powered: Some(next),
                        blocked: true,
                        dst_on_chain: None,
                        sleepers,
                    }
                }
                PowerState::Wakeup => {
                    return ChainTarget {
                        powered: None,
                        blocked: true,
                        dst_on_chain: None,
                        sleepers,
                    };
                }
                PowerState::Sleep => {
                    if next == dst {
                        return ChainTarget {
                            powered: None,
                            blocked: true,
                            dst_on_chain: Some(next),
                            sleepers,
                        };
                    }
                    if self.neighbor(next, d).is_none() {
                        return ChainTarget {
                            powered: None,
                            blocked: false,
                            dst_on_chain: None,
                            sleepers,
                        };
                    }
                    sleepers += 1;
                    cur = next;
                }
            }
        }
    }

    /// Snapshot twin of `NetworkCore::logical_neighbor` (assert diagnostics
    /// in the credit path).
    fn logical_neighbor(&self, node: NodeId, d: Dir) -> Option<(NodeId, u32)> {
        let mut cur = node;
        let mut hops = 0;
        loop {
            let next = self.neighbor(cur, d)?;
            if next == node {
                return None;
            }
            if self.snap_power(next) != PowerState::Sleep {
                return Some((next, hops));
            }
            hops += 1;
            cur = next;
        }
    }

    /// Snapshot twin of `NetworkCore::relay_has_consumer`.
    fn relay_has_consumer(&self, from: NodeId, travel: Dir) -> bool {
        if !self.sh.topo.wraps() {
            return true;
        }
        let mut cur = from;
        loop {
            let Some(next) = self.neighbor(cur, travel) else { return false };
            if next == from {
                return false;
            }
            if self.snap_power(next).is_powered() {
                return true;
            }
            cur = next;
        }
    }

    // --- Phase 2: FLOV latches (partitioned by owner) -----------------------

    /// Active-set latch task for router `i`, including the lazy removal.
    fn latch_task(&mut self, i: usize) {
        unsafe {
            if self.router(i).latches_empty() {
                self.d.removes.push((SetId::Latch, i as u32));
                return;
            }
            self.latch_router(i);
            if self.router(i).latches_empty() {
                self.d.removes.push((SetId::Latch, i as u32));
            }
        }
    }

    /// Body twin of `NetworkCore::latch_router`.
    unsafe fn latch_router(&mut self, i: usize) {
        let now = self.sh.now;
        let link_lat = self.sh.cfg.link_latency as u64;
        for d in Dir::ALL {
            let Some((t0, flit)) = self.router(i).latches[d.index()] else { continue };
            if t0 >= now {
                continue; // latched this cycle; hold for one cycle
            }
            assert!(
                self.neighbor(i as NodeId, d).is_some(),
                "FLOV latch forwarding would leave the mesh"
            );
            let mut f = flit;
            f.hops_link += 1;
            self.d.act.link_flits += 1;
            let e = i * 4 + d.index();
            *self.sh.link_util.add(e) += 1;
            self.chan(e).send_flit(now + link_lat, f);
            self.d.inserts.push((SetId::Chan, e as u32));
            self.router(i).latches[d.index()] = None;
            self.d.progressed = true;
        }
    }

    // --- Phase 3: delivery (partitioned by receiver) ------------------------

    /// Active-set channel-delivery task for channel `e` (its receiver is in
    /// this tile), including the lazy removal.
    fn chan_task(&mut self, e: usize) {
        let now = self.sh.now;
        unsafe {
            match self.chan(e).earliest_arrival() {
                None => {
                    self.d.removes.push((SetId::Chan, e as u32));
                    return;
                }
                Some(a) if a > now => return,
                Some(_) => {}
            }
            let node = (e / 4) as NodeId;
            let d = Dir::from_index(e % 4);
            let target = self.neighbor(node, d).expect("active channel on a mesh edge");
            while let Some(flit) = self.chan(e).recv_flit(now) {
                self.deliver_flit(target, d, flit);
            }
            while let Some(c) = self.chan(e).recv_credit(now) {
                self.deliver_credit(target, d, c);
            }
            if self.chan(e).is_idle() {
                self.d.removes.push((SetId::Chan, e as u32));
            }
        }
    }

    /// Body twin of `NetworkCore::deliver_flit` (`target` is tile-owned).
    unsafe fn deliver_flit(&mut self, target: NodeId, travel: Dir, flit: Flit) {
        let now = self.sh.now;
        let r = self.router(target as usize);
        if r.power.is_flov() {
            debug_assert!(
                r.has_flov(travel),
                "flit flying over router {target} without FLOV capability in {travel:?}"
            );
            debug_assert!(flit.dst != target, "flit for a gated router reached its latch");
            let slot = &mut r.latches[travel.index()];
            assert!(slot.is_none(), "FLOV latch conflict at router {target}");
            let mut f = flit;
            f.hops_flov += 1;
            *slot = Some((now, f));
            self.d.act.flov_latch_flits += 1;
            self.d.inserts.push((SetId::Latch, target as u32));
        } else {
            let in_port = Port::from_dir(travel.opposite());
            let vc_flat = self.sh.cfg.vc_index(flit.vnet as usize, flit.vc as usize);
            let slot = r.slot(in_port.index(), vc_flat);
            r.push_flit(in_port.index(), slot, flit, now);
            self.d.act.buffer_writes += 1;
            self.d.inserts.push((SetId::Work, target as u32));
        }
        self.d.progressed = true;
    }

    /// Body twin of `NetworkCore::deliver_credit` (`target` is tile-owned;
    /// onward relays may target another tile's channel and are buffered).
    unsafe fn deliver_credit(&mut self, target: NodeId, travel: Dir, c: CreditMsg) {
        let now = self.sh.now;
        if self.router(target as usize).power.is_flov() {
            if self.neighbor(target, travel).is_some() && self.relay_has_consumer(target, travel) {
                self.d.act.credit_msgs += 1;
                self.d.act.credit_relays += 1;
                let e = target as usize * 4 + travel.index();
                self.d.credit_sends.push((e, now + 1, c));
                self.d.inserts.push((SetId::Chan, e as u32));
            }
        } else {
            let out_port = Port::from_dir(travel.opposite());
            let vc_flat = self.sh.cfg.vc_index(c.vnet as usize, c.vc as usize);
            let logical = self.logical_neighbor(target, travel.opposite());
            let r = self.router(target as usize);
            let slot = r.slot(out_port.index(), vc_flat);
            assert!(
                r.out_credits[slot].available() < self.sh.cfg.buf_depth,
                "credit overflow at router {target} port {out_port:?} vnet {} vc {} \
                 (cycle {now}, router state {:?}, logical downstream {logical:?})",
                c.vnet,
                c.vc,
                r.power,
            );
            r.out_credits[slot].refund();
            self.d.inserts.push((SetId::Work, target as u32));
        }
    }

    /// Active-set ejection task for node `n`, including the lazy removal.
    fn eject_task(&mut self, n: usize) {
        let now = self.sh.now;
        unsafe {
            if self.eject_chan(n).is_idle() {
                self.d.removes.push((SetId::Eject, n as u32));
                return;
            }
            while let Some(flit) = self.eject_chan(n).recv_flit(now) {
                if flit.dst != n as NodeId {
                    assert!(
                        self.sh.has_ring,
                        "flit misdelivered: dst {} ejected at {n} without a ring",
                        flit.dst
                    );
                    let exit = flit.dst;
                    self.ring_ingress(n as NodeId, flit, exit);
                    continue;
                }
                self.d.act.flits_delivered += 1;
                self.router(n).touch_local(now);
                if let Some(done) = self.nic(n).receive(flit, now, n as NodeId) {
                    self.d.act.packets_delivered += 1;
                    self.d.in_flight_dec += 1;
                    self.d.delivered.push(done);
                }
                self.d.progressed = true;
            }
            if self.eject_chan(n).is_idle() {
                self.d.removes.push((SetId::Eject, n as u32));
            }
        }
    }

    /// Body twin of `NetworkCore::ring_ingress`: staging is tile-owned,
    /// released whole packets are buffered for the driver to enqueue.
    unsafe fn ring_ingress(&mut self, node: NodeId, mut flit: Flit, exit: NodeId) {
        debug_assert!(exit != node);
        flit.vc = exit as u8;
        let is_tail = flit.kind.is_tail();
        let stage = &mut *self.sh.ring_stage.add(node as usize);
        match stage.iter_mut().find(|(p, _)| *p == flit.packet) {
            Some((_, fs)) => fs.push(flit),
            None => stage.push((flit.packet, vec![flit])),
        }
        if is_tail {
            let pos = stage.iter().position(|(p, _)| *p == flit.packet).unwrap();
            let (_, fs) = stage.swap_remove(pos);
            for f in fs {
                self.d.ring_enq.push((node, f));
            }
        }
        self.d.progressed = true;
    }

    // --- Phase 5: NIC injection (partitioned by owner) ----------------------

    /// Active-set injection task for node `n`, including the lazy removal
    /// (gated nodes with backlog stay marked, exactly like the sequential
    /// kernel).
    fn inject_task(&mut self, node: NodeId) {
        let now = self.sh.now;
        let vnets = self.sh.cfg.vnets;
        unsafe {
            if !self.nic(node as usize).pending() {
                self.d.removes.push((SetId::Inject, node as u32));
                return;
            }
            if !self.router(node as usize).power.is_powered() {
                return; // router gated; the mechanism is responsible for waking it
            }
            let mech = self.sh.mech.expect("injection phase requires the mechanism");
            let gate_open = mech.injection_allowed(&SnapView { powers: self.sh.powers }, node);
            if !gate_open && self.nic(node as usize).in_progress.iter().all(|p| p.is_none()) {
                self.d.stalled += 1;
                return;
            }
            let rr0 = self.nic(node as usize).vnet_rr;
            for i in 0..vnets {
                let vn = (rr0 + i) % vnets;
                if self.nic(node as usize).in_progress[vn].is_none() {
                    if !gate_open || self.nic(node as usize).queues[vn].is_empty() {
                        continue;
                    }
                    let reg = self.sh.cfg.regular_vcs - usize::from(self.sh.has_ring);
                    let mut chosen = None;
                    for j in 0..reg {
                        let vc = (now as usize + j) % reg;
                        let flat = self.sh.cfg.vc_index(vn, vc);
                        let r = self.router(node as usize);
                        if r.inputs[r.slot(Port::Local.index(), flat)].buf.free() > 0 {
                            chosen = Some(vc);
                            break;
                        }
                    }
                    let Some(vc) = chosen else { continue };
                    let pkt = self.nic(node as usize).queues[vn].pop_front().unwrap();
                    self.nic(node as usize).in_progress[vn] =
                        Some(InjectState { pkt, next: 0, vc: vc as u8 });
                }
                let st = self.nic(node as usize).in_progress[vn].unwrap();
                let flat = self.sh.cfg.vc_index(vn, st.vc as usize);
                let slot = {
                    let r = self.router(node as usize);
                    r.slot(Port::Local.index(), flat)
                };
                if self.router(node as usize).inputs[slot].buf.free() == 0 {
                    continue;
                }
                let mut f = st.pkt.flit(st.next, now);
                f.vc = st.vc;
                let r = self.router(node as usize);
                r.push_flit(Port::Local.index(), slot, f, now);
                r.touch_local(now);
                self.d.act.buffer_writes += 1;
                self.d.act.flits_injected += 1;
                if st.next == 0 {
                    self.d.act.packets_injected += 1;
                }
                let nic = self.nic(node as usize);
                if st.next + 1 == st.pkt.len {
                    nic.in_progress[vn] = None;
                } else {
                    nic.in_progress[vn] = Some(InjectState { next: st.next + 1, ..st });
                }
                nic.vnet_rr = (vn + 1) % vnets;
                self.d.inserts.push((SetId::Work, node as u32));
                self.d.progressed = true;
                break; // one flit per node per cycle
            }
        }
    }

    // --- Phase 6: router pipelines (partitioned by owner) -------------------

    /// Active-set pipeline task for node `n`, including the lazy removal.
    fn pipeline_task(&mut self, node: NodeId) {
        unsafe {
            if self.router(node as usize).buffered_flits() == 0 {
                self.d.removes.push((SetId::Work, node as u32));
                return;
            }
            debug_assert!(self.router(node as usize).power.is_powered());
        }
        self.va_stage(node);
        self.sa_stage(node);
    }

    fn build_route_ctx(&self, at: NodeId, in_port: Port, dst: NodeId, escape: bool) -> RouteCtx {
        RouteCtx {
            kx: self.sh.topo.kx(),
            ky: self.sh.topo.ky(),
            torus: self.sh.topo.wraps(),
            at: self.sh.topo.coord(at),
            in_port,
            dst: self.sh.topo.coord(dst),
            escape,
            neighbors: self.psr(at),
        }
    }

    /// Body twin of `pipeline::va_stage`.
    fn va_stage(&mut self, node: NodeId) {
        let now = self.sh.now;
        let total_vcs = self.sh.cfg.total_vcs();
        let nslots = NUM_PORTS * total_vcs;
        let start = (now as usize).wrapping_mul(7) % nslots;
        let mut order = std::mem::take(self.va_order);
        order.clear();
        unsafe {
            let r = self.router(node as usize);
            let sp = start / total_vcs;
            let sv = start % total_vcs;
            let low = (1u64 << sv) - 1;
            push_busy(&mut order, sp, r.vc_busy[sp] & !low, total_vcs);
            for off in 1..NUM_PORTS {
                let p = (sp + off) % NUM_PORTS;
                push_busy(&mut order, p, r.vc_busy[p], total_vcs);
            }
            push_busy(&mut order, sp, r.vc_busy[sp] & low, total_vcs);
        }
        for &s in &order {
            let s = s as usize;
            let port = s / total_vcs;
            let (dst, vnet, mut escape, head_since);
            unsafe {
                let invc = &self.router(node as usize).inputs[s];
                if invc.alloc.is_some() {
                    continue;
                }
                let Some(f) = invc.buf.front() else { continue };
                debug_assert!(f.kind.is_head(), "non-head flit at front without an allocation");
                head_since = invc.head_since;
                if now < head_since + 1 {
                    continue; // still in the RC stage
                }
                dst = f.dst;
                vnet = f.vnet as usize;
                escape = f.escape;
            }
            if !escape
                && self.sh.cfg.escape_vcs > 0
                && now - head_since > self.sh.cfg.escape_timeout as u64
            {
                escape = true;
                self.d.escape_diversions += 1;
                unsafe {
                    self.router(node as usize).inputs[s].buf.front_mut().unwrap().escape = true;
                }
            }
            let in_port = Port::from_index(port);
            let ctx = self.build_route_ctx(node, in_port, dst, escape);
            let view = SnapView { powers: self.sh.powers };
            let mech = self.sh.mech.expect("pipeline phase requires the mechanism");
            let mut routed = mech.route(&view, &ctx);
            if routed.is_none() && !escape && self.sh.cfg.escape_vcs > 0 {
                escape = true;
                self.d.escape_diversions += 1;
                unsafe {
                    self.router(node as usize).inputs[s].buf.front_mut().unwrap().escape = true;
                }
                routed = mech.route(&view, &RouteCtx { escape: true, ..ctx });
            }
            let Some(out) = routed else { continue };
            debug_assert!(
                escape || out == Port::Local || out != in_port,
                "mechanism routed a non-escape U-turn at router {node}"
            );
            let cand_range = if escape {
                let e = self.sh.cfg.escape_vc().expect("escape flit but no escape VC configured");
                (e, 1)
            } else {
                (0, self.sh.cfg.regular_vcs)
            };
            if out == Port::Local {
                debug_assert!(
                    dst == node || self.sh.has_ring,
                    "local ejection routed for a non-local flit without a ring"
                );
                self.try_grant(
                    node,
                    s,
                    port,
                    Port::Local.index(),
                    vnet,
                    0,
                    self.sh.cfg.vcs_per_vnet(),
                );
                continue;
            }
            let d = out.dir().unwrap();
            debug_assert!(
                self.neighbor(node, d).is_some(),
                "mechanism routed off the mesh at {node}"
            );
            let walk = self.chain_walk(node, d, dst);
            if let Some(sleeper) = walk.dst_on_chain {
                self.d.wakes.push((node, sleeper));
                continue;
            }
            if walk.blocked || walk.powered.is_none() {
                continue; // retry next cycle; handshakes resolve this
            }
            self.try_grant(node, s, port, out.index(), vnet, cand_range.0, cand_range.1);
        }
        *self.va_order = order;
    }

    /// Body twin of `pipeline::try_grant`.
    #[allow(clippy::too_many_arguments)]
    fn try_grant(
        &mut self,
        node: NodeId,
        s: usize,
        in_port: usize,
        op: usize,
        vnet: usize,
        first: usize,
        count: usize,
    ) {
        let now = self.sh.now as usize;
        for j in 0..count {
            let vc = first + (now + j) % count;
            let flat = self.sh.cfg.vc_index(vnet, vc);
            unsafe {
                let r = self.router(node as usize);
                let oslot = r.slot(op, flat);
                if r.out_vc_state[oslot] == VcOwner::Free {
                    r.out_vc_state[oslot] =
                        VcOwner::Owned { in_port: in_port as u8, in_vc: s as u16 };
                    r.inputs[s].alloc = Some((op as u8, vc as u8));
                    self.d.act.va_grants += 1;
                    return;
                }
            }
        }
    }

    /// Body twin of `pipeline::sa_stage`.
    fn sa_stage(&mut self, node: NodeId) {
        let now = self.sh.now;
        let total_vcs = self.sh.cfg.total_vcs();
        let mut cand: [Option<(usize, usize, u8)>; NUM_PORTS] = [None; NUM_PORTS];
        #[allow(clippy::needless_range_loop)]
        for p in 0..NUM_PORTS {
            unsafe {
                if self.router(node as usize).port_occupancy[p] == 0 {
                    continue;
                }
                let mut mask: u64 = 0;
                {
                    let r = self.router(node as usize);
                    let mut busy = r.vc_busy[p];
                    while busy != 0 {
                        let v = busy.trailing_zeros() as usize;
                        busy &= busy - 1;
                        let s = p * total_vcs + v;
                        let invc = &r.inputs[s];
                        let Some((op, ovc)) = invc.alloc else { continue };
                        let f = invc.buf.front().expect("vc_busy bit set on an empty VC");
                        if f.kind.is_head() && now < invc.head_since + 1 {
                            continue;
                        }
                        if op as usize != Port::Local.index() {
                            let flat = self.sh.cfg.vc_index(f.vnet as usize, ovc as usize);
                            if !r.out_credits[r.slot(op as usize, flat)].has_credit() {
                                continue;
                            }
                        }
                        mask |= 1 << v;
                    }
                }
                if mask == 0 {
                    continue;
                }
                let r = self.router(node as usize);
                let v = r.sa_in[p].grant(|i| mask & (1 << i) != 0).unwrap();
                let (op, ovc) = r.inputs[p * total_vcs + v].alloc.unwrap();
                cand[p] = Some((p * total_vcs + v, op as usize, ovc));
            }
        }
        for op in 0..NUM_PORTS {
            let mut mask: u64 = 0;
            for (p, c) in cand.iter().enumerate() {
                if c.is_some_and(|(_, o, _)| o == op) {
                    mask |= 1 << p;
                }
            }
            if mask == 0 {
                continue;
            }
            let p = unsafe {
                self.router(node as usize).sa_out[op].grant(|i| mask & (1 << i) != 0).unwrap()
            };
            let (s, _, ovc) = cand[p].unwrap();
            self.st_traverse(node, p, s, op, ovc);
        }
    }

    /// Body twin of `pipeline::st_traverse` (all writes are tile-owned:
    /// the router, its outgoing channels, its ejection channel).
    fn st_traverse(&mut self, node: NodeId, in_port: usize, s: usize, op: usize, ovc: u8) {
        let now = self.sh.now;
        let link_lat = self.sh.cfg.link_latency as u64;
        unsafe {
            let mut f = self.router(node as usize).pop_flit(in_port, s);
            self.d.act.buffer_reads += 1;
            self.d.act.xbar_traversals += 1;
            self.d.act.sa_grants += 1;
            f.vc = ovc;
            if op != Port::Local.index() && self.sh.cfg.is_escape_vc(ovc as usize) {
                f.escape = true;
            }
            f.hops_router += 1;
            f.hops_link += 1;
            self.d.act.link_flits += 1;
            let arrival = now + link_lat + 2; // ST next cycle, then the wire
            let vnet = f.vnet as usize;
            let is_tail = f.kind.is_tail();
            if op == Port::Local.index() {
                self.eject_chan(node as usize).send_flit(arrival, f);
                self.d.inserts.push((SetId::Eject, node as u32));
            } else {
                let d = Port::from_index(op).dir().unwrap();
                let flat = self.sh.cfg.vc_index(vnet, ovc as usize);
                {
                    let r = self.router(node as usize);
                    let oslot = r.slot(op, flat);
                    r.out_credits[oslot].consume();
                }
                let e = node as usize * 4 + d.index();
                *self.sh.link_util.add(e) += 1;
                self.chan(e).send_flit(arrival, f);
                self.d.inserts.push((SetId::Chan, e as u32));
            }
            if in_port != Port::Local.index() {
                let d_up = Port::from_index(in_port).dir().unwrap();
                if self.neighbor(node, d_up).is_some() {
                    let (vn, vc) = self.sh.cfg.vc_split(s % self.sh.cfg.total_vcs());
                    let e = node as usize * 4 + d_up.index();
                    self.chan(e).send_credit(now + 3, CreditMsg { vnet: vn as u8, vc: vc as u8 });
                    self.d.inserts.push((SetId::Chan, e as u32));
                    self.d.act.credit_msgs += 1;
                }
            }
            {
                let r = self.router(node as usize);
                if is_tail {
                    let flat = self.sh.cfg.vc_index(vnet, ovc as usize);
                    let oslot = r.slot(op, flat);
                    r.out_vc_state[oslot] = VcOwner::Free;
                    r.inputs[s].alloc = None;
                }
                if let Some(nf) = r.inputs[s].buf.front() {
                    if nf.kind.is_head() {
                        debug_assert!(is_tail, "head flit queued behind an open wormhole");
                        r.inputs[s].head_since = now;
                    }
                }
            }
            self.d.progressed = true;
        }
    }
}

/// Twin of `pipeline::push_busy`.
#[inline]
fn push_busy(order: &mut Vec<u16>, p: usize, mask: u64, total_vcs: usize) {
    let mut m = mask;
    while m != 0 {
        let v = m.trailing_zeros() as usize;
        order.push((p * total_vcs + v) as u16);
        m &= m - 1;
    }
}

// --- Worker pool ------------------------------------------------------------

/// A phase job: type-erased pointer to a [`JobCtx`] on the driver's stack
/// plus the tile-runner entry point and the tile count. Valid only between
/// publication and the join. Executor `x` of `E` runs tiles `x, x + E,
/// x + 2E, ...` — each tile still writes only its own delta slot, so the
/// worker count never has to match the tile count (a single-core host runs
/// every tile inline on the driver).
#[derive(Clone, Copy)]
struct Job {
    ctx: *const (),
    run: unsafe fn(*const (), usize),
    tiles: usize,
}

/// Run this executor's strided share of the job's tiles.
unsafe fn run_stride(job: Job, executor: usize, executors: usize) {
    let mut tile = executor;
    while tile < job.tiles {
        (job.run)(job.ctx, tile);
        tile += executors;
    }
}

struct PoolShared {
    job: UnsafeCell<Option<Job>>,
    /// Bumped (release) to publish the job in `job`.
    epoch: AtomicU64,
    /// Workers that finished the current job (release on increment).
    done: AtomicU64,
    stop: AtomicBool,
    /// True if any worker tile panicked during the current job.
    panicked: AtomicBool,
    panic_msg: Mutex<Option<String>>,
    /// Park/wake for idle workers (pure spinning would steal cores from
    /// the across-run engine parallelism when this kernel is idle).
    lock: Mutex<()>,
    cv: Condvar,
}

// Raw job pointers are handed across threads; the epoch/done protocol is
// what synchronizes access (publish-before-bump, join-before-invalidate).
unsafe impl Send for PoolShared {}
unsafe impl Sync for PoolShared {}

struct Pool {
    shared: Arc<PoolShared>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl Pool {
    /// Spawn `workers` persistent tile threads (executor ids `1..=workers`;
    /// executor 0 is the driving thread). `workers` may be less than
    /// `tiles - 1` — tiles are strided over the executors — and zero runs
    /// everything inline on the driver.
    fn new(workers: usize) -> Pool {
        let shared = Arc::new(PoolShared {
            job: UnsafeCell::new(None),
            epoch: AtomicU64::new(0),
            done: AtomicU64::new(0),
            stop: AtomicBool::new(false),
            panicked: AtomicBool::new(false),
            panic_msg: Mutex::new(None),
            lock: Mutex::new(()),
            cv: Condvar::new(),
        });
        let executors = workers + 1;
        let handles = (1..=workers)
            .map(|executor| {
                let sh = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("flov-tile-{executor}"))
                    .spawn(move || worker_loop(&sh, executor, executors))
                    .expect("spawn tile worker")
            })
            .collect();
        Pool { shared, handles }
    }

    /// Run `job` on all its tiles: workers take their strides, the caller
    /// runs executor 0's stride, then joins. Propagates any worker panic
    /// after the join (so shards are never left concurrently owned).
    fn run(&self, job: Job) {
        let n = self.handles.len() as u64;
        if n == 0 {
            for tile in 0..job.tiles {
                unsafe { (job.run)(job.ctx, tile) };
            }
            return;
        }
        unsafe { *self.shared.job.get() = Some(job) };
        self.shared.epoch.fetch_add(1, Ordering::Release);
        {
            // Pair with the worker's check-then-wait under the same lock:
            // without this, a worker deciding to park right now would miss
            // the notification.
            let _g = self.shared.lock.lock().unwrap();
            self.shared.cv.notify_all();
        }
        // Executor 0's stride on the driving thread, shielded like the
        // workers so a panic still joins the fork before unwinding.
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| unsafe {
            run_stride(job, 0, self.handles.len() + 1)
        }));
        let mut spins = 0u32;
        while self.shared.done.load(Ordering::Acquire) < n {
            spins += 1;
            if spins < 10_000 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
        self.shared.done.store(0, Ordering::Relaxed);
        if let Err(p) = r {
            std::panic::resume_unwind(p);
        }
        if self.shared.panicked.swap(false, Ordering::Relaxed) {
            let msg = self.shared.panic_msg.lock().unwrap().take();
            panic!(
                "parallel kernel tile worker panicked: {}",
                msg.unwrap_or_else(|| "<non-string panic payload>".to_string())
            );
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::Relaxed);
        self.shared.epoch.fetch_add(1, Ordering::Release);
        {
            let _g = self.shared.lock.lock().unwrap();
            self.shared.cv.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(sh: &PoolShared, executor: usize, executors: usize) {
    let mut seen = 0u64;
    loop {
        // Spin briefly (phases arrive every few microseconds mid-run),
        // then yield, then park until the next publication.
        let mut spins = 0u32;
        while sh.epoch.load(Ordering::Acquire) == seen {
            spins += 1;
            if spins < 10_000 {
                std::hint::spin_loop();
            } else if spins < 30_000 {
                std::thread::yield_now();
            } else {
                let mut g = sh.lock.lock().unwrap();
                while sh.epoch.load(Ordering::Acquire) == seen && !sh.stop.load(Ordering::Relaxed) {
                    g = sh.cv.wait(g).unwrap();
                }
                break;
            }
        }
        seen = sh.epoch.load(Ordering::Acquire);
        if sh.stop.load(Ordering::Relaxed) {
            return;
        }
        let Some(job) = (unsafe { *sh.job.get() }) else { continue };
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| unsafe {
            run_stride(job, executor, executors)
        }));
        if let Err(p) = r {
            let msg = p
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| p.downcast_ref::<&str>().map(|s| s.to_string()));
            let mut slot = sh.panic_msg.lock().unwrap();
            if slot.is_none() {
                *slot = msg;
            }
            sh.panicked.store(true, Ordering::Relaxed);
        }
        sh.done.fetch_add(1, Ordering::Release);
    }
}

// --- Phase driver -----------------------------------------------------------

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum PhaseKind {
    Latch,
    Deliver,
    Inject,
    Pipeline,
}

/// The driver-side job context one phase hands to all tiles.
struct JobCtx<'a> {
    sh: Shared<'a>,
    kind: PhaseKind,
    plan: &'a TilePlan,
    /// Node-indexed tasks (ascending). Every tile walks the whole
    /// snapshot and runs the entries it owns, preserving ascending order
    /// per tile. For `Deliver` these are the ejection-channel tasks.
    tasks: &'a [u32],
    /// Channel tasks, ascending (`Deliver` only); owned by the tile of
    /// the *receiving* router.
    chan_tasks: &'a [u32],
    deltas: *mut Delta,
    va_orders: *mut Vec<u16>,
}

unsafe fn run_tile(ctx: *const (), tile: usize) {
    let j = &*(ctx as *const JobCtx);
    let d = &mut *j.deltas.add(tile);
    let va_order = &mut *j.va_orders.add(tile);
    let mut lane = Lane { sh: &j.sh, d, va_order };
    let plan = j.plan;
    match j.kind {
        PhaseKind::Latch => {
            for &i in j.tasks {
                if plan.tile_of(i) == tile {
                    lane.latch_task(i as usize);
                }
            }
        }
        PhaseKind::Deliver => {
            for &e in j.chan_tasks {
                let node = (e / 4) as NodeId;
                let dir = Dir::from_index(e as usize % 4);
                // Edge channels are never sent on, hence never marked.
                let target =
                    j.sh.topo.neighbor_dir(node, dir).expect("active channel on a mesh edge");
                if plan.tile_of(target as u32) == tile {
                    lane.chan_task(e as usize);
                }
            }
            for &n in j.tasks {
                if plan.tile_of(n) == tile {
                    lane.eject_task(n as usize);
                }
            }
        }
        PhaseKind::Inject => {
            for &n in j.tasks {
                if plan.tile_of(n) == tile {
                    lane.inject_task(n as NodeId);
                }
            }
        }
        PhaseKind::Pipeline => {
            for &n in j.tasks {
                if plan.tile_of(n) == tile {
                    lane.pipeline_task(n as NodeId);
                }
            }
        }
    }
}

/// Per-core parallel-kernel state: the tile plan, the worker pool, and all
/// per-tile buffers, built lazily on the first parallel phase (and rebuilt
/// if the requested tile count changes).
pub(super) struct ParState {
    requested: (usize, Option<(u16, u16)>),
    plan: TilePlan,
    pool: Pool,
    deltas: Vec<Delta>,
    powers: Vec<PowerState>,
    tasks: Vec<u32>,
    chan_tasks: Vec<u32>,
    va_orders: Vec<Vec<u16>>,
    /// Per-node not-quiet flags for the sharded control step.
    ctl_flags: Vec<u8>,
    /// Persistent scratch for the ordered replay merges.
    cursors: Vec<usize>,
}

impl ParState {
    fn new(core: &NetworkCore, tiles: usize, grid: Option<(u16, u16)>) -> ParState {
        let plan = TilePlan::new(core.topo.kx(), core.topo.ky(), tiles, grid);
        let t = plan.tiles();
        // Never spawn more workers than the host has spare cores: the
        // partitioning (and hence the result) is fixed by the tile plan,
        // so surplus tiles stride over the executors instead of thrashing
        // an oversubscribed scheduler. On a single-core host every tile
        // runs inline on the driver.
        let avail = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        // Ragged plans leave some tiles larger than nodes/t; 4x covers the
        // worst imbalance a ceil-division grid can produce.
        let nodes = core.routers.len();
        let owned = (nodes.div_ceil(t) * 4).clamp(16, nodes.max(16));
        ParState {
            requested: (tiles, grid),
            pool: Pool::new((t - 1).min(avail.saturating_sub(1))),
            deltas: (0..t).map(|_| Delta::for_tile(owned)).collect(),
            powers: Vec::new(),
            tasks: Vec::new(),
            chan_tasks: Vec::new(),
            va_orders: (0..t).map(|_| Vec::new()).collect(),
            ctl_flags: Vec::new(),
            cursors: Vec::new(),
            plan,
        }
    }
}

/// Take the (lazily created) parallel state out of the core for a phase.
/// Ownership moves out so the driver can alias the core's arrays without
/// borrowing through `core.par`.
fn take_state(core: &mut NetworkCore, tiles: usize, grid: Option<(u16, u16)>) -> Box<ParState> {
    match core.par.take() {
        Some(st) if st.requested == (tiles, grid) => st,
        _ => Box::new(ParState::new(core, tiles, grid)),
    }
}

fn snapshot_powers(core: &NetworkCore, powers: &mut Vec<PowerState>) {
    powers.clear();
    powers.extend(core.routers.iter().map(|r| r.power));
}

fn make_shared<'a>(
    core: &'a mut NetworkCore,
    mech: Option<&'a dyn PowerMechanism>,
    powers: &'a [PowerState],
) -> Shared<'a> {
    Shared {
        now: core.cycle,
        cfg: &core.cfg,
        topo: &core.topo,
        powers,
        mech,
        has_ring: core.ring.is_some(),
        nodes: core.routers.len(),
        routers: core.routers.as_mut_ptr(),
        channels: core.channels.as_mut_ptr(),
        eject: core.eject.as_mut_ptr(),
        nics: core.nics.as_mut_ptr(),
        link_util: core.link_util.as_mut_ptr(),
        ring_stage: core.ring_stage.as_mut_ptr(),
    }
}

/// Fork-join one phase over the prepared task snapshots, then replay the
/// deltas. `st.tasks` and (for `Deliver`) `st.chan_tasks` must be filled
/// before calling. The replay is timed into the `exchange` bucket when
/// phase timing is enabled.
fn run_phase(
    core: &mut NetworkCore,
    mech: Option<&dyn PowerMechanism>,
    st: &mut ParState,
    kind: PhaseKind,
) {
    {
        let deltas = st.deltas.as_mut_ptr();
        let va_orders = st.va_orders.as_mut_ptr();
        let ctx = JobCtx {
            sh: make_shared(core, mech, &st.powers),
            kind,
            plan: &st.plan,
            tasks: &st.tasks,
            chan_tasks: &st.chan_tasks,
            deltas,
            va_orders,
        };
        let tiles = st.plan.tiles();
        st.pool.run(Job { ctx: &ctx as *const JobCtx as *const (), run: run_tile, tiles });
    }
    let t0 = core.phase_nanos.is_some().then(std::time::Instant::now);
    apply_deltas(core, &mut st.deltas, &mut st.cursors);
    if let (Some(t0), Some(pn)) = (t0, core.phase_nanos.as_deref_mut()) {
        pn.exchange += t0.elapsed().as_nanos() as u64;
    }
}

/// Phase 2, parallel: FLOV latch forwarding over the latch set.
pub(super) fn latch_phase(core: &mut NetworkCore, tiles: usize, grid: Option<(u16, u16)>) {
    let mut st = take_state(core, tiles, grid);
    core.sched.latch.collect_into(&mut st.tasks);
    if !st.tasks.is_empty() {
        snapshot_powers(core, &mut st.powers);
        run_phase(core, None, &mut st, PhaseKind::Latch);
    }
    core.par = Some(st);
}

/// Phase 3, parallel: link delivery. Channels partition by *receiver*;
/// ejection channels by node.
pub(super) fn delivery_phase(core: &mut NetworkCore, tiles: usize, grid: Option<(u16, u16)>) {
    let mut st = take_state(core, tiles, grid);
    core.sched.chan.collect_into(&mut st.chan_tasks);
    core.sched.eject.collect_into(&mut st.tasks);
    if !st.tasks.is_empty() || !st.chan_tasks.is_empty() {
        snapshot_powers(core, &mut st.powers);
        run_phase(core, None, &mut st, PhaseKind::Deliver);
    }
    core.par = Some(st);
}

/// Phase 5, parallel: NIC injection over the inject set.
pub(super) fn injection_phase(
    core: &mut NetworkCore,
    mech: &dyn PowerMechanism,
    tiles: usize,
    grid: Option<(u16, u16)>,
) {
    let mut st = take_state(core, tiles, grid);
    core.sched.inject.collect_into(&mut st.tasks);
    if !st.tasks.is_empty() {
        snapshot_powers(core, &mut st.powers);
        run_phase(core, Some(mech), &mut st, PhaseKind::Inject);
    }
    core.par = Some(st);
}

/// Phase 6, parallel: router pipelines over the work set.
pub(super) fn pipeline_phase(
    core: &mut NetworkCore,
    mech: &dyn PowerMechanism,
    tiles: usize,
    grid: Option<(u16, u16)>,
) {
    let mut st = take_state(core, tiles, grid);
    core.sched.work.collect_into(&mut st.tasks);
    if !st.tasks.is_empty() {
        snapshot_powers(core, &mut st.powers);
        run_phase(core, Some(mech), &mut st, PhaseKind::Pipeline);
    }
    core.par = Some(st);
}

// --- Sharded mechanism control (phase 4) ------------------------------------

/// Job context for the control verdict pass: shared read-only core and
/// mechanism, plus the per-node not-quiet flags (each tile writes only
/// its own nodes' flag bytes).
struct ControlCtx<'a> {
    core: &'a NetworkCore,
    mech: &'a dyn PowerMechanism,
    plan: &'a TilePlan,
    nodes: usize,
    flags: *mut u8,
}

// The verdict pass is read-only on `core`/`mech`; `flags` is written
// single-writer per node (the owning tile).
unsafe impl Send for ControlCtx<'_> {}
unsafe impl Sync for ControlCtx<'_> {}

unsafe fn run_control_tile(ctx: *const (), tile: usize) {
    let j = &*(ctx as *const ControlCtx);
    for n in 0..j.nodes {
        if j.plan.tile_of(n as u32) == tile {
            *j.flags.add(n) = u8::from(!j.mech.control_quiet(j.core, n as NodeId));
        }
    }
}

/// Phase 4, sharded: the mechanism control step for mechanisms that opt
/// in via [`PowerMechanism::sharded_control`]. Serial prologue → parallel
/// read-only verdict pass → serial ascending replay of the exact
/// sequential per-node body over the flagged nodes → serial epilogue.
/// Verdicts are computed against pre-phase state, so the first body that
/// mutates the core escalates the scan to every remaining node; see the
/// module docs for why this is bit-identical to the sequential step.
pub(super) fn control_phase(
    core: &mut NetworkCore,
    mech: &mut dyn PowerMechanism,
    tiles: usize,
    grid: Option<(u16, u16)>,
) {
    let mut st = take_state(core, tiles, grid);
    mech.control_prologue(core);
    let nodes = core.routers.len();
    st.ctl_flags.clear();
    st.ctl_flags.resize(nodes, 0);
    {
        let ctx = ControlCtx {
            core,
            mech: &*mech,
            plan: &st.plan,
            nodes,
            flags: st.ctl_flags.as_mut_ptr(),
        };
        let t = st.plan.tiles();
        st.pool.run(Job {
            ctx: &ctx as *const ControlCtx as *const (),
            run: run_control_tile,
            tiles: t,
        });
    }
    let mut escalated = false;
    for n in 0..nodes {
        if (escalated || st.ctl_flags[n] != 0) && mech.control_node(core, n as NodeId) {
            escalated = true;
        }
    }
    mech.control_epilogue(core);
    core.par = Some(st);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tile_plan_covers_grid() {
        for (kx, ky, tiles, grid) in [
            (8u16, 8u16, 4usize, None),
            (8, 8, 8, None),
            (4, 4, 2, None),
            (4, 4, 16, None),
            (16, 3, 4, None),
            (5, 1, 3, None),
            (8, 8, 8, Some((4u16, 2u16))),
            (9, 7, 9, Some((3, 3))),
            (4, 4, 4, Some((16, 16))), // clamps to 4x4
        ] {
            let plan = TilePlan::new(kx, ky, tiles, grid);
            let n = kx as usize * ky as usize;
            let t = plan.tiles();
            assert!(t >= 1);
            if grid.is_none() {
                assert!(t <= tiles.max(1));
            }
            assert!(plan.row_starts.windows(2).all(|w| w[0] < w[1]), "empty row band: {plan:?}");
            assert!(plan.col_starts.windows(2).all(|w| w[0] < w[1]), "empty col band: {plan:?}");
            let mut owned = vec![0usize; t];
            for node in 0..n as u32 {
                owned[plan.tile_of(node)] += 1;
            }
            assert!(owned.iter().all(|&c| c > 0), "empty tile in {plan:?}");
            assert_eq!(owned.iter().sum::<usize>(), n);
        }
    }

    #[test]
    fn planner_minimizes_seams() {
        // 8 tiles on a square mesh: 2x4 and 4x2 tie on seam length and the
        // tie breaks toward more rows.
        assert_eq!(plan_grid(8, 8, 8), (4, 2));
        assert_eq!(plan_grid(8, 8, 4), (2, 2));
        // 2 tiles stay a row-stripe pair (ties break toward rows).
        assert_eq!(plan_grid(8, 8, 2), (2, 1));
        assert_eq!(plan_grid(8, 8, 1), (1, 1));
        // The plan never exceeds the grid.
        assert_eq!(plan_grid(2, 2, 64), (2, 2));
        // Degenerate grids lean into the long axis.
        assert_eq!(plan_grid(1, 16, 4), (4, 1));
        assert_eq!(plan_grid(16, 1, 4), (1, 4));
    }

    #[test]
    fn explicit_geometry_clamps_to_grid() {
        assert_eq!(planned_geometry(8, 8, 8, Some((4, 2))), (4, 2));
        assert_eq!(planned_geometry(8, 8, 64, Some((16, 16))), (8, 8));
        assert_eq!(planned_geometry(8, 8, 1, Some((0, 0))), (1, 1));
        assert_eq!(planned_geometry(5, 3, 6, Some((2, 3))), (2, 3));
    }

    proptest::proptest! {
        #![proptest_config(proptest::ProptestConfig { cases: 64, ..Default::default() })]
        #[test]
        fn tile_plan_ownership_and_seam_symmetry(
            kx in 1u16..13,
            ky in 1u16..13,
            tiles in 1usize..11,
            rows in 1u16..6,
            cols in 1u16..6,
            explicit in 0u32..2,
        ) {
            use proptest::prelude::*;
            let grid = (explicit == 1).then_some((rows, cols));
            let plan = TilePlan::new(kx, ky, tiles, grid);
            let n = kx as usize * ky as usize;
            let t = plan.tiles();
            // Every node is owned by exactly one in-range tile, and no
            // tile is empty.
            let mut owned = vec![0usize; t];
            for node in 0..n as u32 {
                let tile = plan.tile_of(node);
                prop_assert!(tile < t);
                owned[tile] += 1;
            }
            prop_assert_eq!(owned.iter().sum::<usize>(), n);
            prop_assert!(owned.iter().all(|&c| c > 0));
            // Seam enumeration is symmetric and matches a brute-force
            // grid-adjacency scan.
            let seams = plan.seams();
            let seam_set: std::collections::HashSet<_> = seams.iter().copied().collect();
            prop_assert_eq!(seam_set.len(), seams.len());
            for &(a, b) in &seams {
                prop_assert!(seam_set.contains(&(b, a)), "asymmetric seam ({a}, {b})");
            }
            let mut adj = std::collections::HashSet::new();
            for y in 0..ky as u32 {
                for x in 0..kx as u32 {
                    let node = y * kx as u32 + x;
                    let a = plan.tile_of(node);
                    if x + 1 < kx as u32 {
                        let b = plan.tile_of(node + 1);
                        if a != b {
                            adj.insert((a, b));
                            adj.insert((b, a));
                        }
                    }
                    if y + 1 < ky as u32 {
                        let b = plan.tile_of(node + kx as u32);
                        if a != b {
                            adj.insert((a, b));
                            adj.insert((b, a));
                        }
                    }
                }
            }
            prop_assert_eq!(seam_set, adj);
        }
    }

    #[test]
    fn pool_runs_all_tiles_and_propagates_panics() {
        let pool = Pool::new(3);
        let hits: Vec<AtomicU64> = (0..4).map(|_| AtomicU64::new(0)).collect();
        struct Ctx<'a> {
            hits: &'a [AtomicU64],
        }
        unsafe fn bump(ctx: *const (), tile: usize) {
            let c = &*(ctx as *const Ctx);
            c.hits[tile].fetch_add(1, Ordering::Relaxed);
        }
        let ctx = Ctx { hits: &hits };
        for _ in 0..100 {
            pool.run(Job { ctx: &ctx as *const Ctx as *const (), run: bump, tiles: 4 });
        }
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 100));

        unsafe fn boom(_ctx: *const (), tile: usize) {
            if tile == 2 {
                panic!("tile 2 exploded");
            }
        }
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run(Job { ctx: std::ptr::null(), run: boom, tiles: 4 });
        }));
        let payload = r.expect_err("worker panic must propagate");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_else(|| "<non-string panic payload>".to_string());
        assert!(msg.contains("tile 2 exploded"), "panic message lost: {msg}");
        // The pool survives a panicked job.
        pool.run(Job { ctx: &ctx as *const Ctx as *const (), run: bump, tiles: 4 });
        assert_eq!(hits[0].load(Ordering::Relaxed), 101);
    }

    #[test]
    fn pool_strides_tiles_over_fewer_executors() {
        let hits: Vec<AtomicU64> = (0..7).map(|_| AtomicU64::new(0)).collect();
        struct Ctx<'a> {
            hits: &'a [AtomicU64],
        }
        unsafe fn bump(ctx: *const (), tile: usize) {
            let c = &*(ctx as *const Ctx);
            c.hits[tile].fetch_add(1, Ordering::Relaxed);
        }
        let ctx = Ctx { hits: &hits };
        // 7 tiles over 2 executors (1 worker) and over 1 executor (inline).
        for workers in [1usize, 0] {
            let pool = Pool::new(workers);
            pool.run(Job { ctx: &ctx as *const Ctx as *const (), run: bump, tiles: 7 });
        }
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 2));
    }
}
