//! The sharded in-run parallel kernel: tile-partitioned execution of the
//! four hot per-cycle phases (FLOV latches, link delivery, NIC injection,
//! router pipelines) with a deterministic boundary exchange, bit-identical
//! to the sequential [`KernelMode::ActiveSet`] kernel.
//!
//! # Partitioning
//!
//! The router grid is cut into horizontal row stripes ([`TilePlan`]), one
//! per tile; tile 0 runs on the driving thread and each further tile on a
//! persistent pooled worker ([`Pool`]). Every phase is a fork-join: the
//! driver collects the phase's global active set (ascending, exactly the
//! order the sequential kernel iterates), partitions it per tile, runs the
//! tiles concurrently, and joins before the next phase. Ownership per
//! phase is single-writer per element:
//!
//! * latch / injection / pipeline phases partition by the *owning* router
//!   — a body touches only its router, its NIC, its outgoing channels and
//!   its ejection channel;
//! * the delivery phase partitions channels by the *receiving* router (a
//!   directed channel has exactly one receiver), so all four inbound
//!   channels of a router are drained by the same tile, in the same
//!   relative (ascending-index) order as the sequential scan.
//!
//! # Boundary exchange
//!
//! Everything a tile would write outside its own elements is buffered in a
//! per-tile [`Delta`] and applied by the driver *after* the join, in tile
//! order (which equals ascending node order, i.e. the sequential order):
//! global counters and statistics, delivered packets, wakeup requests,
//! NoRD ring enqueues, cross-tile credit relays, and every scheduling-set
//! mark. Set marks apply all removals before all inserts — an insert from
//! one tile must survive a concurrent lazy removal by the channel's
//! consumer tile, exactly as the sequential kernel's in-order interleaving
//! guarantees (a relayed credit arrives at `now + 1`, so the sequential
//! consumer never removes the mark either). Buffered credit relays are
//! equally invisible intra-phase: nothing with arrival `now + 1` can be
//! received at `now`.
//!
//! # Power snapshot
//!
//! Power states change only in phase 4 (the mechanism step) and are *read*
//! across tile boundaries by routing (`psr`, FLOV chain walks, credit
//! relay checks). Each parallel phase therefore snapshots the power vector
//! up front and evaluates all cross-tile power reads — including the
//! mechanism's [`PowerMechanism::route`] / `injection_allowed` hooks, via
//! [`SnapView`] — against the immutable snapshot, while a tile reads its
//! *own* routers' states directly (identical by construction).
//!
//! # Determinism argument (summary; see DESIGN.md §7)
//!
//! Within a phase, bodies of different tiles touch disjoint mutable state,
//! and every shared effect is buffered and replayed in the sequential
//! order. Arbitration (VA/SA round-robins, rotating VC scans) is per
//! router and stays inside a tile. The time-skip horizon reduction runs on
//! the driver over the *global* quiescence predicate and the same
//! mechanism/workload horizons as the sequential kernel, so jumps happen
//! at exactly the same cycles. Hence every cycle's end state — and every
//! `RunResult` — is bit-for-bit identical to the sequential kernel, which
//! is why `KernelMode` stays out of result cache keys.

use super::NetworkCore;
use crate::activity::ActivityCounters;
use crate::config::NocConfig;
use crate::flit::Flit;
use crate::link::{Channel, CreditMsg};
use crate::nic::{InjectState, Nic};
use crate::packet::DeliveredPacket;
use crate::router::{Router, VcOwner};
use crate::routing::RouteCtx;
use crate::topology::{AnyTopology, Topology};
use crate::traits::{PowerMechanism, PowerView};
use crate::types::{Cycle, Dir, NodeId, PacketId, Port, PowerState, NUM_PORTS};
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

// --- Tile plan --------------------------------------------------------------

/// Horizontal row stripes over the router grid: tile `t` owns rows
/// `[t*ky/T, (t+1)*ky/T)`, i.e. the contiguous node range
/// `[starts[t], starts[t+1])`. Contiguity is what lets ascending active-set
/// snapshots be partitioned into per-tile subslices by binary search.
#[derive(Debug)]
struct TilePlan {
    starts: Vec<u32>,
}

impl TilePlan {
    fn new(kx: u16, ky: u16, tiles: usize) -> TilePlan {
        let t = tiles.clamp(1, ky as usize);
        let starts =
            (0..=t).map(|i| (i * ky as usize / t * kx as usize) as u32).collect::<Vec<_>>();
        TilePlan { starts }
    }

    fn tiles(&self) -> usize {
        self.starts.len() - 1
    }

    fn tile_of(&self, node: u32) -> usize {
        // starts is ascending; the owning tile is the last start <= node.
        self.starts.partition_point(|&s| s <= node) - 1
    }
}

// --- Per-tile delta ---------------------------------------------------------

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum SetId {
    Latch,
    Work,
    Inject,
    Chan,
    Eject,
}

/// Everything a tile body would write outside its own elements, buffered
/// for in-order replay by the driver after the phase join.
#[derive(Default)]
struct Delta {
    act: ActivityCounters,
    delivered: Vec<DeliveredPacket>,
    in_flight_dec: u64,
    stalled: u64,
    escape_diversions: u64,
    progressed: bool,
    wakes: Vec<NodeId>,
    ring_enq: Vec<(NodeId, Flit)>,
    /// Cross-tile credit relays: `(channel, arrival, credit)`.
    credit_sends: Vec<(usize, Cycle, CreditMsg)>,
    removes: Vec<(SetId, u32)>,
    inserts: Vec<(SetId, u32)>,
}

fn add_activity(into: &mut ActivityCounters, d: &ActivityCounters) {
    into.buffer_writes += d.buffer_writes;
    into.buffer_reads += d.buffer_reads;
    into.xbar_traversals += d.xbar_traversals;
    into.sa_grants += d.sa_grants;
    into.va_grants += d.va_grants;
    into.link_flits += d.link_flits;
    into.flov_latch_flits += d.flov_latch_flits;
    into.ring_flits += d.ring_flits;
    into.credit_msgs += d.credit_msgs;
    into.credit_relays += d.credit_relays;
    into.handshake_signals += d.handshake_signals;
    into.gating_events += d.gating_events;
    into.packets_injected += d.packets_injected;
    into.flits_injected += d.flits_injected;
    into.packets_delivered += d.packets_delivered;
    into.flits_delivered += d.flits_delivered;
}

fn sched_set(core: &mut NetworkCore, id: SetId) -> &mut crate::active::ActiveSet {
    match id {
        SetId::Latch => &mut core.sched.latch,
        SetId::Work => &mut core.sched.work,
        SetId::Inject => &mut core.sched.inject,
        SetId::Chan => &mut core.sched.chan,
        SetId::Eject => &mut core.sched.eject,
    }
}

/// Replay the per-tile deltas into the core, in tile order. Set removals
/// apply before set inserts (see module docs); everything else commutes
/// across tiles or is ordered ascending by construction.
fn apply_deltas(core: &mut NetworkCore, deltas: &mut [Delta]) {
    for t in deltas.iter() {
        for &(s, idx) in &t.removes {
            sched_set(core, s).remove(idx as usize);
        }
    }
    for t in deltas.iter() {
        for &(s, idx) in &t.inserts {
            sched_set(core, s).insert(idx as usize);
        }
    }
    for d in deltas.iter_mut() {
        d.removes.clear();
        d.inserts.clear();
        add_activity(&mut core.activity, &d.act);
        d.act = ActivityCounters::default();
        for done in d.delivered.drain(..) {
            core.stats.record(&done);
        }
        core.in_flight_packets -= d.in_flight_dec;
        d.in_flight_dec = 0;
        core.stalled_injection_node_cycles += d.stalled;
        d.stalled = 0;
        core.escape_diversions += d.escape_diversions;
        d.escape_diversions = 0;
        if d.progressed {
            core.last_progress = core.cycle;
            d.progressed = false;
        }
        for n in d.wakes.drain(..) {
            core.request_wakeup(n);
        }
        for (e, t, c) in d.credit_sends.drain(..) {
            core.channels[e].send_credit(t, c);
        }
        for (n, f) in d.ring_enq.drain(..) {
            core.ring.as_mut().expect("ring enqueue without a ring").enqueue(n, f);
        }
    }
}

// --- Shared phase context ---------------------------------------------------

/// Power view over the start-of-phase snapshot.
struct SnapView<'a> {
    powers: &'a [PowerState],
}

impl PowerView for SnapView<'_> {
    #[inline]
    fn nodes(&self) -> usize {
        self.powers.len()
    }

    #[inline]
    fn power(&self, n: NodeId) -> PowerState {
        self.powers[n as usize]
    }
}

/// Raw shard access to the core's element arrays, shared by all tiles of
/// one phase. Soundness: per phase, every element is written by at most
/// one tile (see module docs), and the driver joins all tiles before
/// touching the core again.
struct Shared<'a> {
    now: Cycle,
    cfg: &'a NocConfig,
    topo: &'a AnyTopology,
    powers: &'a [PowerState],
    /// The mechanism, for the injection-gate and routing hooks; `None` in
    /// the latch/delivery phases, which never consult it.
    mech: Option<&'a dyn PowerMechanism>,
    has_ring: bool,
    nodes: usize,
    routers: *mut Router,
    channels: *mut Channel,
    eject: *mut Channel,
    nics: *mut Nic,
    link_util: *mut u64,
    ring_stage: *mut Vec<(PacketId, Vec<Flit>)>,
}

unsafe impl Send for Shared<'_> {}
unsafe impl Sync for Shared<'_> {}

/// One tile's execution context for one phase: shard access plus the
/// tile-private delta and scratch.
struct Lane<'a> {
    sh: &'a Shared<'a>,
    d: &'a mut Delta,
    va_order: &'a mut Vec<u16>,
}

#[allow(clippy::mut_from_ref)] // per-phase single-writer discipline; see Shared
impl Lane<'_> {
    #[inline]
    unsafe fn router(&self, i: usize) -> &mut Router {
        debug_assert!(i < self.sh.nodes);
        &mut *self.sh.routers.add(i)
    }

    #[inline]
    unsafe fn chan(&self, e: usize) -> &mut Channel {
        debug_assert!(e < self.sh.nodes * 4);
        &mut *self.sh.channels.add(e)
    }

    #[inline]
    unsafe fn eject_chan(&self, n: usize) -> &mut Channel {
        debug_assert!(n < self.sh.nodes);
        &mut *self.sh.eject.add(n)
    }

    #[inline]
    unsafe fn nic(&self, n: usize) -> &mut Nic {
        debug_assert!(n < self.sh.nodes);
        &mut *self.sh.nics.add(n)
    }

    #[inline]
    fn neighbor(&self, node: NodeId, d: Dir) -> Option<NodeId> {
        self.sh.topo.neighbor_dir(node, d)
    }

    #[inline]
    fn snap_power(&self, n: NodeId) -> PowerState {
        self.sh.powers[n as usize]
    }

    /// PSR register contents from the snapshot (mirrors `NetworkCore::psr`).
    fn psr(&self, node: NodeId) -> [Option<PowerState>; 4] {
        let mut out = [None; 4];
        for d in Dir::ALL {
            out[d.index()] = self.sh.topo.grid_neighbor(node, d).map(|m| self.snap_power(m));
        }
        out
    }

    /// Snapshot twin of `NetworkCore::chain_walk`.
    fn chain_walk(&self, from: NodeId, d: Dir, dst: NodeId) -> super::ChainTarget {
        use super::ChainTarget;
        let mut cur = from;
        let mut sleepers = 0;
        loop {
            let Some(next) = self.neighbor(cur, d) else {
                return ChainTarget { powered: None, blocked: false, dst_on_chain: None, sleepers };
            };
            if next == from {
                return ChainTarget { powered: None, blocked: true, dst_on_chain: None, sleepers };
            }
            match self.snap_power(next) {
                PowerState::Active => {
                    return ChainTarget {
                        powered: Some(next),
                        blocked: false,
                        dst_on_chain: None,
                        sleepers,
                    }
                }
                PowerState::Draining => {
                    return ChainTarget {
                        powered: Some(next),
                        blocked: true,
                        dst_on_chain: None,
                        sleepers,
                    }
                }
                PowerState::Wakeup => {
                    return ChainTarget {
                        powered: None,
                        blocked: true,
                        dst_on_chain: None,
                        sleepers,
                    };
                }
                PowerState::Sleep => {
                    if next == dst {
                        return ChainTarget {
                            powered: None,
                            blocked: true,
                            dst_on_chain: Some(next),
                            sleepers,
                        };
                    }
                    if self.neighbor(next, d).is_none() {
                        return ChainTarget {
                            powered: None,
                            blocked: false,
                            dst_on_chain: None,
                            sleepers,
                        };
                    }
                    sleepers += 1;
                    cur = next;
                }
            }
        }
    }

    /// Snapshot twin of `NetworkCore::logical_neighbor` (assert diagnostics
    /// in the credit path).
    fn logical_neighbor(&self, node: NodeId, d: Dir) -> Option<(NodeId, u32)> {
        let mut cur = node;
        let mut hops = 0;
        loop {
            let next = self.neighbor(cur, d)?;
            if next == node {
                return None;
            }
            if self.snap_power(next) != PowerState::Sleep {
                return Some((next, hops));
            }
            hops += 1;
            cur = next;
        }
    }

    /// Snapshot twin of `NetworkCore::relay_has_consumer`.
    fn relay_has_consumer(&self, from: NodeId, travel: Dir) -> bool {
        if !self.sh.topo.wraps() {
            return true;
        }
        let mut cur = from;
        loop {
            let Some(next) = self.neighbor(cur, travel) else { return false };
            if next == from {
                return false;
            }
            if self.snap_power(next).is_powered() {
                return true;
            }
            cur = next;
        }
    }

    // --- Phase 2: FLOV latches (partitioned by owner) -----------------------

    /// Active-set latch task for router `i`, including the lazy removal.
    fn latch_task(&mut self, i: usize) {
        unsafe {
            if self.router(i).latches_empty() {
                self.d.removes.push((SetId::Latch, i as u32));
                return;
            }
            self.latch_router(i);
            if self.router(i).latches_empty() {
                self.d.removes.push((SetId::Latch, i as u32));
            }
        }
    }

    /// Body twin of `NetworkCore::latch_router`.
    unsafe fn latch_router(&mut self, i: usize) {
        let now = self.sh.now;
        let link_lat = self.sh.cfg.link_latency as u64;
        for d in Dir::ALL {
            let Some((t0, flit)) = self.router(i).latches[d.index()] else { continue };
            if t0 >= now {
                continue; // latched this cycle; hold for one cycle
            }
            assert!(
                self.neighbor(i as NodeId, d).is_some(),
                "FLOV latch forwarding would leave the mesh"
            );
            let mut f = flit;
            f.hops_link += 1;
            self.d.act.link_flits += 1;
            let e = i * 4 + d.index();
            *self.sh.link_util.add(e) += 1;
            self.chan(e).send_flit(now + link_lat, f);
            self.d.inserts.push((SetId::Chan, e as u32));
            self.router(i).latches[d.index()] = None;
            self.d.progressed = true;
        }
    }

    // --- Phase 3: delivery (partitioned by receiver) ------------------------

    /// Active-set channel-delivery task for channel `e` (its receiver is in
    /// this tile), including the lazy removal.
    fn chan_task(&mut self, e: usize) {
        let now = self.sh.now;
        unsafe {
            match self.chan(e).earliest_arrival() {
                None => {
                    self.d.removes.push((SetId::Chan, e as u32));
                    return;
                }
                Some(a) if a > now => return,
                Some(_) => {}
            }
            let node = (e / 4) as NodeId;
            let d = Dir::from_index(e % 4);
            let target = self.neighbor(node, d).expect("active channel on a mesh edge");
            while let Some(flit) = self.chan(e).recv_flit(now) {
                self.deliver_flit(target, d, flit);
            }
            while let Some(c) = self.chan(e).recv_credit(now) {
                self.deliver_credit(target, d, c);
            }
            if self.chan(e).is_idle() {
                self.d.removes.push((SetId::Chan, e as u32));
            }
        }
    }

    /// Body twin of `NetworkCore::deliver_flit` (`target` is tile-owned).
    unsafe fn deliver_flit(&mut self, target: NodeId, travel: Dir, flit: Flit) {
        let now = self.sh.now;
        let r = self.router(target as usize);
        if r.power.is_flov() {
            debug_assert!(
                r.has_flov(travel),
                "flit flying over router {target} without FLOV capability in {travel:?}"
            );
            debug_assert!(flit.dst != target, "flit for a gated router reached its latch");
            let slot = &mut r.latches[travel.index()];
            assert!(slot.is_none(), "FLOV latch conflict at router {target}");
            let mut f = flit;
            f.hops_flov += 1;
            *slot = Some((now, f));
            self.d.act.flov_latch_flits += 1;
            self.d.inserts.push((SetId::Latch, target as u32));
        } else {
            let in_port = Port::from_dir(travel.opposite());
            let vc_flat = self.sh.cfg.vc_index(flit.vnet as usize, flit.vc as usize);
            let slot = r.slot(in_port.index(), vc_flat);
            r.push_flit(in_port.index(), slot, flit, now);
            self.d.act.buffer_writes += 1;
            self.d.inserts.push((SetId::Work, target as u32));
        }
        self.d.progressed = true;
    }

    /// Body twin of `NetworkCore::deliver_credit` (`target` is tile-owned;
    /// onward relays may target another tile's channel and are buffered).
    unsafe fn deliver_credit(&mut self, target: NodeId, travel: Dir, c: CreditMsg) {
        let now = self.sh.now;
        if self.router(target as usize).power.is_flov() {
            if self.neighbor(target, travel).is_some() && self.relay_has_consumer(target, travel) {
                self.d.act.credit_msgs += 1;
                self.d.act.credit_relays += 1;
                let e = target as usize * 4 + travel.index();
                self.d.credit_sends.push((e, now + 1, c));
                self.d.inserts.push((SetId::Chan, e as u32));
            }
        } else {
            let out_port = Port::from_dir(travel.opposite());
            let vc_flat = self.sh.cfg.vc_index(c.vnet as usize, c.vc as usize);
            let logical = self.logical_neighbor(target, travel.opposite());
            let r = self.router(target as usize);
            let slot = r.slot(out_port.index(), vc_flat);
            assert!(
                r.out_credits[slot].available() < self.sh.cfg.buf_depth,
                "credit overflow at router {target} port {out_port:?} vnet {} vc {} \
                 (cycle {now}, router state {:?}, logical downstream {logical:?})",
                c.vnet,
                c.vc,
                r.power,
            );
            r.out_credits[slot].refund();
            self.d.inserts.push((SetId::Work, target as u32));
        }
    }

    /// Active-set ejection task for node `n`, including the lazy removal.
    fn eject_task(&mut self, n: usize) {
        let now = self.sh.now;
        unsafe {
            if self.eject_chan(n).is_idle() {
                self.d.removes.push((SetId::Eject, n as u32));
                return;
            }
            while let Some(flit) = self.eject_chan(n).recv_flit(now) {
                if flit.dst != n as NodeId {
                    assert!(
                        self.sh.has_ring,
                        "flit misdelivered: dst {} ejected at {n} without a ring",
                        flit.dst
                    );
                    let exit = flit.dst;
                    self.ring_ingress(n as NodeId, flit, exit);
                    continue;
                }
                self.d.act.flits_delivered += 1;
                self.router(n).touch_local(now);
                if let Some(done) = self.nic(n).receive(flit, now, n as NodeId) {
                    self.d.act.packets_delivered += 1;
                    self.d.in_flight_dec += 1;
                    self.d.delivered.push(done);
                }
                self.d.progressed = true;
            }
            if self.eject_chan(n).is_idle() {
                self.d.removes.push((SetId::Eject, n as u32));
            }
        }
    }

    /// Body twin of `NetworkCore::ring_ingress`: staging is tile-owned,
    /// released whole packets are buffered for the driver to enqueue.
    unsafe fn ring_ingress(&mut self, node: NodeId, mut flit: Flit, exit: NodeId) {
        debug_assert!(exit != node);
        flit.vc = exit as u8;
        let is_tail = flit.kind.is_tail();
        let stage = &mut *self.sh.ring_stage.add(node as usize);
        match stage.iter_mut().find(|(p, _)| *p == flit.packet) {
            Some((_, fs)) => fs.push(flit),
            None => stage.push((flit.packet, vec![flit])),
        }
        if is_tail {
            let pos = stage.iter().position(|(p, _)| *p == flit.packet).unwrap();
            let (_, fs) = stage.swap_remove(pos);
            for f in fs {
                self.d.ring_enq.push((node, f));
            }
        }
        self.d.progressed = true;
    }

    // --- Phase 5: NIC injection (partitioned by owner) ----------------------

    /// Active-set injection task for node `n`, including the lazy removal
    /// (gated nodes with backlog stay marked, exactly like the sequential
    /// kernel).
    fn inject_task(&mut self, node: NodeId) {
        let now = self.sh.now;
        let vnets = self.sh.cfg.vnets;
        unsafe {
            if !self.nic(node as usize).pending() {
                self.d.removes.push((SetId::Inject, node as u32));
                return;
            }
            if !self.router(node as usize).power.is_powered() {
                return; // router gated; the mechanism is responsible for waking it
            }
            let mech = self.sh.mech.expect("injection phase requires the mechanism");
            let gate_open = mech.injection_allowed(&SnapView { powers: self.sh.powers }, node);
            if !gate_open && self.nic(node as usize).in_progress.iter().all(|p| p.is_none()) {
                self.d.stalled += 1;
                return;
            }
            let rr0 = self.nic(node as usize).vnet_rr;
            for i in 0..vnets {
                let vn = (rr0 + i) % vnets;
                if self.nic(node as usize).in_progress[vn].is_none() {
                    if !gate_open || self.nic(node as usize).queues[vn].is_empty() {
                        continue;
                    }
                    let reg = self.sh.cfg.regular_vcs - usize::from(self.sh.has_ring);
                    let mut chosen = None;
                    for j in 0..reg {
                        let vc = (now as usize + j) % reg;
                        let flat = self.sh.cfg.vc_index(vn, vc);
                        let r = self.router(node as usize);
                        if r.inputs[r.slot(Port::Local.index(), flat)].buf.free() > 0 {
                            chosen = Some(vc);
                            break;
                        }
                    }
                    let Some(vc) = chosen else { continue };
                    let pkt = self.nic(node as usize).queues[vn].pop_front().unwrap();
                    self.nic(node as usize).in_progress[vn] =
                        Some(InjectState { pkt, next: 0, vc: vc as u8 });
                }
                let st = self.nic(node as usize).in_progress[vn].unwrap();
                let flat = self.sh.cfg.vc_index(vn, st.vc as usize);
                let slot = {
                    let r = self.router(node as usize);
                    r.slot(Port::Local.index(), flat)
                };
                if self.router(node as usize).inputs[slot].buf.free() == 0 {
                    continue;
                }
                let mut f = st.pkt.flit(st.next, now);
                f.vc = st.vc;
                let r = self.router(node as usize);
                r.push_flit(Port::Local.index(), slot, f, now);
                r.touch_local(now);
                self.d.act.buffer_writes += 1;
                self.d.act.flits_injected += 1;
                if st.next == 0 {
                    self.d.act.packets_injected += 1;
                }
                let nic = self.nic(node as usize);
                if st.next + 1 == st.pkt.len {
                    nic.in_progress[vn] = None;
                } else {
                    nic.in_progress[vn] = Some(InjectState { next: st.next + 1, ..st });
                }
                nic.vnet_rr = (vn + 1) % vnets;
                self.d.inserts.push((SetId::Work, node as u32));
                self.d.progressed = true;
                break; // one flit per node per cycle
            }
        }
    }

    // --- Phase 6: router pipelines (partitioned by owner) -------------------

    /// Active-set pipeline task for node `n`, including the lazy removal.
    fn pipeline_task(&mut self, node: NodeId) {
        unsafe {
            if self.router(node as usize).buffered_flits() == 0 {
                self.d.removes.push((SetId::Work, node as u32));
                return;
            }
            debug_assert!(self.router(node as usize).power.is_powered());
        }
        self.va_stage(node);
        self.sa_stage(node);
    }

    fn build_route_ctx(&self, at: NodeId, in_port: Port, dst: NodeId, escape: bool) -> RouteCtx {
        RouteCtx {
            kx: self.sh.topo.kx(),
            ky: self.sh.topo.ky(),
            torus: self.sh.topo.wraps(),
            at: self.sh.topo.coord(at),
            in_port,
            dst: self.sh.topo.coord(dst),
            escape,
            neighbors: self.psr(at),
        }
    }

    /// Body twin of `pipeline::va_stage`.
    fn va_stage(&mut self, node: NodeId) {
        let now = self.sh.now;
        let total_vcs = self.sh.cfg.total_vcs();
        let nslots = NUM_PORTS * total_vcs;
        let start = (now as usize).wrapping_mul(7) % nslots;
        let mut order = std::mem::take(self.va_order);
        order.clear();
        unsafe {
            let r = self.router(node as usize);
            let sp = start / total_vcs;
            let sv = start % total_vcs;
            let low = (1u64 << sv) - 1;
            push_busy(&mut order, sp, r.vc_busy[sp] & !low, total_vcs);
            for off in 1..NUM_PORTS {
                let p = (sp + off) % NUM_PORTS;
                push_busy(&mut order, p, r.vc_busy[p], total_vcs);
            }
            push_busy(&mut order, sp, r.vc_busy[sp] & low, total_vcs);
        }
        for &s in &order {
            let s = s as usize;
            let port = s / total_vcs;
            let (dst, vnet, mut escape, head_since);
            unsafe {
                let invc = &self.router(node as usize).inputs[s];
                if invc.alloc.is_some() {
                    continue;
                }
                let Some(f) = invc.buf.front() else { continue };
                debug_assert!(f.kind.is_head(), "non-head flit at front without an allocation");
                head_since = invc.head_since;
                if now < head_since + 1 {
                    continue; // still in the RC stage
                }
                dst = f.dst;
                vnet = f.vnet as usize;
                escape = f.escape;
            }
            if !escape
                && self.sh.cfg.escape_vcs > 0
                && now - head_since > self.sh.cfg.escape_timeout as u64
            {
                escape = true;
                self.d.escape_diversions += 1;
                unsafe {
                    self.router(node as usize).inputs[s].buf.front_mut().unwrap().escape = true;
                }
            }
            let in_port = Port::from_index(port);
            let ctx = self.build_route_ctx(node, in_port, dst, escape);
            let view = SnapView { powers: self.sh.powers };
            let mech = self.sh.mech.expect("pipeline phase requires the mechanism");
            let mut routed = mech.route(&view, &ctx);
            if routed.is_none() && !escape && self.sh.cfg.escape_vcs > 0 {
                escape = true;
                self.d.escape_diversions += 1;
                unsafe {
                    self.router(node as usize).inputs[s].buf.front_mut().unwrap().escape = true;
                }
                routed = mech.route(&view, &RouteCtx { escape: true, ..ctx });
            }
            let Some(out) = routed else { continue };
            debug_assert!(
                escape || out == Port::Local || out != in_port,
                "mechanism routed a non-escape U-turn at router {node}"
            );
            let cand_range = if escape {
                let e = self.sh.cfg.escape_vc().expect("escape flit but no escape VC configured");
                (e, 1)
            } else {
                (0, self.sh.cfg.regular_vcs)
            };
            if out == Port::Local {
                debug_assert!(
                    dst == node || self.sh.has_ring,
                    "local ejection routed for a non-local flit without a ring"
                );
                self.try_grant(
                    node,
                    s,
                    port,
                    Port::Local.index(),
                    vnet,
                    0,
                    self.sh.cfg.vcs_per_vnet(),
                );
                continue;
            }
            let d = out.dir().unwrap();
            debug_assert!(
                self.neighbor(node, d).is_some(),
                "mechanism routed off the mesh at {node}"
            );
            let walk = self.chain_walk(node, d, dst);
            if let Some(sleeper) = walk.dst_on_chain {
                self.d.wakes.push(sleeper);
                continue;
            }
            if walk.blocked || walk.powered.is_none() {
                continue; // retry next cycle; handshakes resolve this
            }
            self.try_grant(node, s, port, out.index(), vnet, cand_range.0, cand_range.1);
        }
        *self.va_order = order;
    }

    /// Body twin of `pipeline::try_grant`.
    #[allow(clippy::too_many_arguments)]
    fn try_grant(
        &mut self,
        node: NodeId,
        s: usize,
        in_port: usize,
        op: usize,
        vnet: usize,
        first: usize,
        count: usize,
    ) {
        let now = self.sh.now as usize;
        for j in 0..count {
            let vc = first + (now + j) % count;
            let flat = self.sh.cfg.vc_index(vnet, vc);
            unsafe {
                let r = self.router(node as usize);
                let oslot = r.slot(op, flat);
                if r.out_vc_state[oslot] == VcOwner::Free {
                    r.out_vc_state[oslot] =
                        VcOwner::Owned { in_port: in_port as u8, in_vc: s as u16 };
                    r.inputs[s].alloc = Some((op as u8, vc as u8));
                    self.d.act.va_grants += 1;
                    return;
                }
            }
        }
    }

    /// Body twin of `pipeline::sa_stage`.
    fn sa_stage(&mut self, node: NodeId) {
        let now = self.sh.now;
        let total_vcs = self.sh.cfg.total_vcs();
        let mut cand: [Option<(usize, usize, u8)>; NUM_PORTS] = [None; NUM_PORTS];
        #[allow(clippy::needless_range_loop)]
        for p in 0..NUM_PORTS {
            unsafe {
                if self.router(node as usize).port_occupancy[p] == 0 {
                    continue;
                }
                let mut mask: u64 = 0;
                {
                    let r = self.router(node as usize);
                    let mut busy = r.vc_busy[p];
                    while busy != 0 {
                        let v = busy.trailing_zeros() as usize;
                        busy &= busy - 1;
                        let s = p * total_vcs + v;
                        let invc = &r.inputs[s];
                        let Some((op, ovc)) = invc.alloc else { continue };
                        let f = invc.buf.front().expect("vc_busy bit set on an empty VC");
                        if f.kind.is_head() && now < invc.head_since + 1 {
                            continue;
                        }
                        if op as usize != Port::Local.index() {
                            let flat = self.sh.cfg.vc_index(f.vnet as usize, ovc as usize);
                            if !r.out_credits[r.slot(op as usize, flat)].has_credit() {
                                continue;
                            }
                        }
                        mask |= 1 << v;
                    }
                }
                if mask == 0 {
                    continue;
                }
                let r = self.router(node as usize);
                let v = r.sa_in[p].grant(|i| mask & (1 << i) != 0).unwrap();
                let (op, ovc) = r.inputs[p * total_vcs + v].alloc.unwrap();
                cand[p] = Some((p * total_vcs + v, op as usize, ovc));
            }
        }
        for op in 0..NUM_PORTS {
            let mut mask: u64 = 0;
            for (p, c) in cand.iter().enumerate() {
                if c.is_some_and(|(_, o, _)| o == op) {
                    mask |= 1 << p;
                }
            }
            if mask == 0 {
                continue;
            }
            let p = unsafe {
                self.router(node as usize).sa_out[op].grant(|i| mask & (1 << i) != 0).unwrap()
            };
            let (s, _, ovc) = cand[p].unwrap();
            self.st_traverse(node, p, s, op, ovc);
        }
    }

    /// Body twin of `pipeline::st_traverse` (all writes are tile-owned:
    /// the router, its outgoing channels, its ejection channel).
    fn st_traverse(&mut self, node: NodeId, in_port: usize, s: usize, op: usize, ovc: u8) {
        let now = self.sh.now;
        let link_lat = self.sh.cfg.link_latency as u64;
        unsafe {
            let mut f = self.router(node as usize).pop_flit(in_port, s);
            self.d.act.buffer_reads += 1;
            self.d.act.xbar_traversals += 1;
            self.d.act.sa_grants += 1;
            f.vc = ovc;
            if op != Port::Local.index() && self.sh.cfg.is_escape_vc(ovc as usize) {
                f.escape = true;
            }
            f.hops_router += 1;
            f.hops_link += 1;
            self.d.act.link_flits += 1;
            let arrival = now + link_lat + 2; // ST next cycle, then the wire
            let vnet = f.vnet as usize;
            let is_tail = f.kind.is_tail();
            if op == Port::Local.index() {
                self.eject_chan(node as usize).send_flit(arrival, f);
                self.d.inserts.push((SetId::Eject, node as u32));
            } else {
                let d = Port::from_index(op).dir().unwrap();
                let flat = self.sh.cfg.vc_index(vnet, ovc as usize);
                {
                    let r = self.router(node as usize);
                    let oslot = r.slot(op, flat);
                    r.out_credits[oslot].consume();
                }
                let e = node as usize * 4 + d.index();
                *self.sh.link_util.add(e) += 1;
                self.chan(e).send_flit(arrival, f);
                self.d.inserts.push((SetId::Chan, e as u32));
            }
            if in_port != Port::Local.index() {
                let d_up = Port::from_index(in_port).dir().unwrap();
                if self.neighbor(node, d_up).is_some() {
                    let (vn, vc) = self.sh.cfg.vc_split(s % self.sh.cfg.total_vcs());
                    let e = node as usize * 4 + d_up.index();
                    self.chan(e).send_credit(now + 3, CreditMsg { vnet: vn as u8, vc: vc as u8 });
                    self.d.inserts.push((SetId::Chan, e as u32));
                    self.d.act.credit_msgs += 1;
                }
            }
            {
                let r = self.router(node as usize);
                if is_tail {
                    let flat = self.sh.cfg.vc_index(vnet, ovc as usize);
                    let oslot = r.slot(op, flat);
                    r.out_vc_state[oslot] = VcOwner::Free;
                    r.inputs[s].alloc = None;
                }
                if let Some(nf) = r.inputs[s].buf.front() {
                    if nf.kind.is_head() {
                        debug_assert!(is_tail, "head flit queued behind an open wormhole");
                        r.inputs[s].head_since = now;
                    }
                }
            }
            self.d.progressed = true;
        }
    }
}

/// Twin of `pipeline::push_busy`.
#[inline]
fn push_busy(order: &mut Vec<u16>, p: usize, mask: u64, total_vcs: usize) {
    let mut m = mask;
    while m != 0 {
        let v = m.trailing_zeros() as usize;
        order.push((p * total_vcs + v) as u16);
        m &= m - 1;
    }
}

// --- Worker pool ------------------------------------------------------------

/// A phase job: type-erased pointer to a [`JobCtx`] on the driver's stack
/// plus the tile-runner entry point and the tile count. Valid only between
/// publication and the join. Executor `x` of `E` runs tiles `x, x + E,
/// x + 2E, ...` — each tile still writes only its own delta slot, so the
/// worker count never has to match the tile count (a single-core host runs
/// every tile inline on the driver).
#[derive(Clone, Copy)]
struct Job {
    ctx: *const (),
    run: unsafe fn(*const (), usize),
    tiles: usize,
}

/// Run this executor's strided share of the job's tiles.
unsafe fn run_stride(job: Job, executor: usize, executors: usize) {
    let mut tile = executor;
    while tile < job.tiles {
        (job.run)(job.ctx, tile);
        tile += executors;
    }
}

struct PoolShared {
    job: UnsafeCell<Option<Job>>,
    /// Bumped (release) to publish the job in `job`.
    epoch: AtomicU64,
    /// Workers that finished the current job (release on increment).
    done: AtomicU64,
    stop: AtomicBool,
    /// True if any worker tile panicked during the current job.
    panicked: AtomicBool,
    panic_msg: Mutex<Option<String>>,
    /// Park/wake for idle workers (pure spinning would steal cores from
    /// the across-run engine parallelism when this kernel is idle).
    lock: Mutex<()>,
    cv: Condvar,
}

// Raw job pointers are handed across threads; the epoch/done protocol is
// what synchronizes access (publish-before-bump, join-before-invalidate).
unsafe impl Send for PoolShared {}
unsafe impl Sync for PoolShared {}

struct Pool {
    shared: Arc<PoolShared>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl Pool {
    /// Spawn `workers` persistent tile threads (executor ids `1..=workers`;
    /// executor 0 is the driving thread). `workers` may be less than
    /// `tiles - 1` — tiles are strided over the executors — and zero runs
    /// everything inline on the driver.
    fn new(workers: usize) -> Pool {
        let shared = Arc::new(PoolShared {
            job: UnsafeCell::new(None),
            epoch: AtomicU64::new(0),
            done: AtomicU64::new(0),
            stop: AtomicBool::new(false),
            panicked: AtomicBool::new(false),
            panic_msg: Mutex::new(None),
            lock: Mutex::new(()),
            cv: Condvar::new(),
        });
        let executors = workers + 1;
        let handles = (1..=workers)
            .map(|executor| {
                let sh = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("flov-tile-{executor}"))
                    .spawn(move || worker_loop(&sh, executor, executors))
                    .expect("spawn tile worker")
            })
            .collect();
        Pool { shared, handles }
    }

    /// Run `job` on all its tiles: workers take their strides, the caller
    /// runs executor 0's stride, then joins. Propagates any worker panic
    /// after the join (so shards are never left concurrently owned).
    fn run(&self, job: Job) {
        let n = self.handles.len() as u64;
        if n == 0 {
            for tile in 0..job.tiles {
                unsafe { (job.run)(job.ctx, tile) };
            }
            return;
        }
        unsafe { *self.shared.job.get() = Some(job) };
        self.shared.epoch.fetch_add(1, Ordering::Release);
        {
            // Pair with the worker's check-then-wait under the same lock:
            // without this, a worker deciding to park right now would miss
            // the notification.
            let _g = self.shared.lock.lock().unwrap();
            self.shared.cv.notify_all();
        }
        // Executor 0's stride on the driving thread, shielded like the
        // workers so a panic still joins the fork before unwinding.
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| unsafe {
            run_stride(job, 0, self.handles.len() + 1)
        }));
        let mut spins = 0u32;
        while self.shared.done.load(Ordering::Acquire) < n {
            spins += 1;
            if spins < 10_000 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
        self.shared.done.store(0, Ordering::Relaxed);
        if let Err(p) = r {
            std::panic::resume_unwind(p);
        }
        if self.shared.panicked.swap(false, Ordering::Relaxed) {
            let msg = self.shared.panic_msg.lock().unwrap().take();
            panic!(
                "parallel kernel tile worker panicked: {}",
                msg.unwrap_or_else(|| "<non-string panic payload>".to_string())
            );
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::Relaxed);
        self.shared.epoch.fetch_add(1, Ordering::Release);
        {
            let _g = self.shared.lock.lock().unwrap();
            self.shared.cv.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(sh: &PoolShared, executor: usize, executors: usize) {
    let mut seen = 0u64;
    loop {
        // Spin briefly (phases arrive every few microseconds mid-run),
        // then yield, then park until the next publication.
        let mut spins = 0u32;
        while sh.epoch.load(Ordering::Acquire) == seen {
            spins += 1;
            if spins < 10_000 {
                std::hint::spin_loop();
            } else if spins < 30_000 {
                std::thread::yield_now();
            } else {
                let mut g = sh.lock.lock().unwrap();
                while sh.epoch.load(Ordering::Acquire) == seen && !sh.stop.load(Ordering::Relaxed) {
                    g = sh.cv.wait(g).unwrap();
                }
                break;
            }
        }
        seen = sh.epoch.load(Ordering::Acquire);
        if sh.stop.load(Ordering::Relaxed) {
            return;
        }
        let Some(job) = (unsafe { *sh.job.get() }) else { continue };
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| unsafe {
            run_stride(job, executor, executors)
        }));
        if let Err(p) = r {
            let msg = p
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| p.downcast_ref::<&str>().map(|s| s.to_string()));
            let mut slot = sh.panic_msg.lock().unwrap();
            if slot.is_none() {
                *slot = msg;
            }
            sh.panicked.store(true, Ordering::Relaxed);
        }
        sh.done.fetch_add(1, Ordering::Release);
    }
}

// --- Phase driver -----------------------------------------------------------

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum PhaseKind {
    Latch,
    Deliver,
    Inject,
    Pipeline,
}

/// The driver-side job context one phase hands to all tiles.
struct JobCtx<'a> {
    sh: Shared<'a>,
    kind: PhaseKind,
    /// Node-indexed tasks (ascending); tile `t` runs
    /// `tasks[bounds[t]..bounds[t + 1]]`. For `Deliver` these are the
    /// ejection-channel tasks.
    tasks: &'a [u32],
    bounds: &'a [usize],
    /// Per-tile channel tasks, ascending within each tile (`Deliver` only).
    chan_tasks: &'a [Vec<u32>],
    deltas: *mut Delta,
    va_orders: *mut Vec<u16>,
}

unsafe fn run_tile(ctx: *const (), tile: usize) {
    let j = &*(ctx as *const JobCtx);
    let d = &mut *j.deltas.add(tile);
    let va_order = &mut *j.va_orders.add(tile);
    let mut lane = Lane { sh: &j.sh, d, va_order };
    let mine = &j.tasks[j.bounds[tile]..j.bounds[tile + 1]];
    match j.kind {
        PhaseKind::Latch => {
            for &i in mine {
                lane.latch_task(i as usize);
            }
        }
        PhaseKind::Deliver => {
            for &e in &j.chan_tasks[tile] {
                lane.chan_task(e as usize);
            }
            for &n in mine {
                lane.eject_task(n as usize);
            }
        }
        PhaseKind::Inject => {
            for &n in mine {
                lane.inject_task(n as NodeId);
            }
        }
        PhaseKind::Pipeline => {
            for &n in mine {
                lane.pipeline_task(n as NodeId);
            }
        }
    }
}

/// Per-core parallel-kernel state: the tile plan, the worker pool, and all
/// per-tile buffers, built lazily on the first parallel phase (and rebuilt
/// if the requested tile count changes).
pub(super) struct ParState {
    requested: usize,
    plan: TilePlan,
    pool: Pool,
    deltas: Vec<Delta>,
    powers: Vec<PowerState>,
    tasks: Vec<u32>,
    bounds: Vec<usize>,
    chan_tasks: Vec<Vec<u32>>,
    va_orders: Vec<Vec<u16>>,
}

impl ParState {
    fn new(core: &NetworkCore, requested: usize) -> ParState {
        let plan = TilePlan::new(core.topo.kx(), core.topo.ky(), requested);
        let t = plan.tiles();
        // Never spawn more workers than the host has spare cores: the
        // partitioning (and hence the result) is fixed by the tile count,
        // so surplus tiles stride over the executors instead of thrashing
        // an oversubscribed scheduler. On a single-core host every tile
        // runs inline on the driver.
        let avail = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        ParState {
            requested,
            pool: Pool::new((t - 1).min(avail.saturating_sub(1))),
            deltas: (0..t).map(|_| Delta::default()).collect(),
            powers: Vec::new(),
            tasks: Vec::new(),
            bounds: vec![0; t + 1],
            chan_tasks: (0..t).map(|_| Vec::new()).collect(),
            va_orders: (0..t).map(|_| Vec::new()).collect(),
            plan,
        }
    }
}

/// Take the (lazily created) parallel state out of the core for a phase.
/// Ownership moves out so the driver can alias the core's arrays without
/// borrowing through `core.par`.
fn take_state(core: &mut NetworkCore, tiles: usize) -> Box<ParState> {
    match core.par.take() {
        Some(st) if st.requested == tiles => st,
        _ => Box::new(ParState::new(core, tiles)),
    }
}

/// Partition the ascending node-task snapshot into per-tile subranges.
fn node_bounds(plan: &TilePlan, tasks: &[u32], bounds: &mut [usize]) {
    let t = plan.tiles();
    bounds[0] = 0;
    for (b, &limit) in bounds[1..=t].iter_mut().zip(&plan.starts[1..=t]) {
        *b = tasks.partition_point(|&n| n < limit);
    }
}

fn snapshot_powers(core: &NetworkCore, powers: &mut Vec<PowerState>) {
    powers.clear();
    powers.extend(core.routers.iter().map(|r| r.power));
}

fn make_shared<'a>(
    core: &'a mut NetworkCore,
    mech: Option<&'a dyn PowerMechanism>,
    powers: &'a [PowerState],
) -> Shared<'a> {
    Shared {
        now: core.cycle,
        cfg: &core.cfg,
        topo: &core.topo,
        powers,
        mech,
        has_ring: core.ring.is_some(),
        nodes: core.routers.len(),
        routers: core.routers.as_mut_ptr(),
        channels: core.channels.as_mut_ptr(),
        eject: core.eject.as_mut_ptr(),
        nics: core.nics.as_mut_ptr(),
        link_util: core.link_util.as_mut_ptr(),
        ring_stage: core.ring_stage.as_mut_ptr(),
    }
}

/// Fork-join one phase over the prepared per-tile tasks, then replay the
/// deltas. `st.tasks`, `st.bounds` and (for `Deliver`) `st.chan_tasks`
/// must be filled before calling.
fn run_phase(
    core: &mut NetworkCore,
    mech: Option<&dyn PowerMechanism>,
    st: &mut ParState,
    kind: PhaseKind,
) {
    {
        let deltas = st.deltas.as_mut_ptr();
        let va_orders = st.va_orders.as_mut_ptr();
        let ctx = JobCtx {
            sh: make_shared(core, mech, &st.powers),
            kind,
            tasks: &st.tasks,
            bounds: &st.bounds,
            chan_tasks: &st.chan_tasks,
            deltas,
            va_orders,
        };
        let tiles = st.plan.tiles();
        st.pool.run(Job { ctx: &ctx as *const JobCtx as *const (), run: run_tile, tiles });
    }
    apply_deltas(core, &mut st.deltas);
}

/// Phase 2, parallel: FLOV latch forwarding over the latch set.
pub(super) fn latch_phase(core: &mut NetworkCore, tiles: usize) {
    let mut st = take_state(core, tiles);
    core.sched.latch.collect_into(&mut st.tasks);
    if !st.tasks.is_empty() {
        node_bounds(&st.plan, &st.tasks, &mut st.bounds);
        snapshot_powers(core, &mut st.powers);
        run_phase(core, None, &mut st, PhaseKind::Latch);
    }
    core.par = Some(st);
}

/// Phase 3, parallel: link delivery. Channels partition by *receiver*;
/// ejection channels by node.
pub(super) fn delivery_phase(core: &mut NetworkCore, tiles: usize) {
    let mut st = take_state(core, tiles);
    let mut scratch = std::mem::take(&mut core.sched.scratch);
    core.sched.chan.collect_into(&mut scratch);
    for v in &mut st.chan_tasks {
        v.clear();
    }
    for &e in &scratch {
        let node = (e / 4) as NodeId;
        let d = Dir::from_index(e as usize % 4);
        // Edge channels are never sent on, hence never marked.
        let target = core.neighbor(node, d).expect("active channel on a mesh edge");
        // Ascending scan order is preserved within each bucket.
        st.chan_tasks[st.plan.tile_of(target as u32)].push(e);
    }
    core.sched.scratch = scratch;
    core.sched.eject.collect_into(&mut st.tasks);
    if !st.tasks.is_empty() || st.chan_tasks.iter().any(|v| !v.is_empty()) {
        node_bounds(&st.plan, &st.tasks, &mut st.bounds);
        snapshot_powers(core, &mut st.powers);
        run_phase(core, None, &mut st, PhaseKind::Deliver);
    }
    core.par = Some(st);
}

/// Phase 5, parallel: NIC injection over the inject set.
pub(super) fn injection_phase(core: &mut NetworkCore, mech: &dyn PowerMechanism, tiles: usize) {
    let mut st = take_state(core, tiles);
    core.sched.inject.collect_into(&mut st.tasks);
    if !st.tasks.is_empty() {
        node_bounds(&st.plan, &st.tasks, &mut st.bounds);
        snapshot_powers(core, &mut st.powers);
        run_phase(core, Some(mech), &mut st, PhaseKind::Inject);
    }
    core.par = Some(st);
}

/// Phase 6, parallel: router pipelines over the work set.
pub(super) fn pipeline_phase(core: &mut NetworkCore, mech: &dyn PowerMechanism, tiles: usize) {
    let mut st = take_state(core, tiles);
    core.sched.work.collect_into(&mut st.tasks);
    if !st.tasks.is_empty() {
        node_bounds(&st.plan, &st.tasks, &mut st.bounds);
        snapshot_powers(core, &mut st.powers);
        run_phase(core, Some(mech), &mut st, PhaseKind::Pipeline);
    }
    core.par = Some(st);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tile_plan_covers_grid_contiguously() {
        for (kx, ky, tiles) in [(8u16, 8u16, 4usize), (4, 4, 2), (4, 4, 16), (16, 3, 4), (5, 1, 3)]
        {
            let plan = TilePlan::new(kx, ky, tiles);
            let n = kx as usize * ky as usize;
            assert_eq!(plan.starts[0], 0);
            assert_eq!(*plan.starts.last().unwrap() as usize, n);
            assert!(plan.tiles() <= tiles.max(1));
            assert!(plan.starts.windows(2).all(|w| w[0] < w[1]), "empty tile in {plan:?}",);
            for node in 0..n as u32 {
                let t = plan.tile_of(node);
                assert!(plan.starts[t] <= node && node < plan.starts[t + 1]);
            }
            // Row stripes: tile boundaries sit on row boundaries.
            assert!(plan.starts.iter().all(|&s| (s as usize).is_multiple_of(kx as usize)));
        }
    }

    #[test]
    fn pool_runs_all_tiles_and_propagates_panics() {
        let pool = Pool::new(3);
        let hits: Vec<AtomicU64> = (0..4).map(|_| AtomicU64::new(0)).collect();
        struct Ctx<'a> {
            hits: &'a [AtomicU64],
        }
        unsafe fn bump(ctx: *const (), tile: usize) {
            let c = &*(ctx as *const Ctx);
            c.hits[tile].fetch_add(1, Ordering::Relaxed);
        }
        let ctx = Ctx { hits: &hits };
        for _ in 0..100 {
            pool.run(Job { ctx: &ctx as *const Ctx as *const (), run: bump, tiles: 4 });
        }
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 100));

        unsafe fn boom(_ctx: *const (), tile: usize) {
            if tile == 2 {
                panic!("tile 2 exploded");
            }
        }
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run(Job { ctx: std::ptr::null(), run: boom, tiles: 4 });
        }));
        let msg = format!("{:?}", r.expect_err("worker panic must propagate"));
        assert!(msg.contains("tile 2 exploded"), "panic message lost: {msg}");
        // The pool survives a panicked job.
        pool.run(Job { ctx: &ctx as *const Ctx as *const (), run: bump, tiles: 4 });
        assert_eq!(hits[0].load(Ordering::Relaxed), 101);
    }

    #[test]
    fn pool_strides_tiles_over_fewer_executors() {
        let hits: Vec<AtomicU64> = (0..7).map(|_| AtomicU64::new(0)).collect();
        struct Ctx<'a> {
            hits: &'a [AtomicU64],
        }
        unsafe fn bump(ctx: *const (), tile: usize) {
            let c = &*(ctx as *const Ctx);
            c.hits[tile].fetch_add(1, Ordering::Relaxed);
        }
        let ctx = Ctx { hits: &hits };
        // 7 tiles over 2 executors (1 worker) and over 1 executor (inline).
        for workers in [1usize, 0] {
            let pool = Pool::new(workers);
            pool.run(Job { ctx: &ctx as *const Ctx as *const (), run: bump, tiles: 7 });
        }
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 2));
    }
}
