//! Release-capable invariant auditor.
//!
//! The datapath's conservation laws are asserted inline with
//! `debug_assert!`, which compiles away in the `--release` builds every
//! figure is generated with. The [`Auditor`] re-checks the *global*
//! invariants over a [`NetworkCore`] snapshot every `interval` cycles, in
//! any build profile, and reports failures as structured
//! [`AuditViolation`]s instead of panicking — so a fuzzer (or a long
//! production sweep) can collect, minimize and replay them.
//!
//! Checked invariants (see DESIGN.md §4c for the full table):
//!
//! 1. **Flit conservation** — every flit ever injected is either still
//!    resident in the fabric ([`NetworkCore::flits_in_network`]: buffers,
//!    latches, wires, ejection, ring) or has been delivered:
//!    `flits_injected == flits_delivered + flits_in_network()`.
//! 2. **Credit conservation** — for every powered router, output
//!    direction and VC, the credit counter equals the audited ground
//!    truth `free slots at the logical downstream owner − flits in
//!    flight toward it − credits in flight back` (the invariant the
//!    power-transition re-seeding maintains; [`NetworkCore::audit_credits`]).
//!    Chains whose logical owner is mid-[`PowerState::Wakeup`] and chains
//!    that dead-end at the mesh edge are skipped: their counters are
//!    transitional (re-seeded on wakeup completion / zeroed and unused).
//! 3. **Gated residency** — a power-gated router (Sleep/Wakeup) may hold
//!    flits only in its FLOV latches: input buffers empty, no output VC
//!    allocated.
//! 4. **Ring conservation** — per bypass-ring edge and VC, credits plus
//!    buffered plus in-flight flits equal the ring buffer depth
//!    ([`crate::ring::BypassRing::audit`]).
//! 5. **State legality** — mechanism-specific power/handshake rules via
//!    [`PowerMechanism::audit_state`] (rFLOV adjacency, gFLOV handshake
//!    pairs, RP's two-state discipline, ...).
//! 6. **No progress** — with packets in flight, *something* must move
//!    within `stall_horizon` cycles: a delivery-path event
//!    (`last_progress`), any churn in the escape sub-network (the
//!    deadlock-recovery lane, tracked by an occupancy digest), or any
//!    churn at the NIC source queues (enqueues and serialization
//!    progress count as movement — a mechanism legitimately holding
//!    traffic at the source, like RP's Phase-I stall, is not a stalled
//!    network). This is the release-mode, non-panicking form of the
//!    step watchdog.
//!
//! The auditor is read-only: attaching it never changes simulation
//! results, so differential (two-kernel) runs stay bit-identical with
//! auditing on.

use super::NetworkCore;
use crate::traits::PowerMechanism;
use crate::types::{Cycle, Dir, Port};

/// Default audit cadence, in cycles. At this interval the audit cost is
/// amortized to a few chain walks per simulated cycle — well under the
/// 10% overhead budget even on a saturated 8×8 mesh.
pub const DEFAULT_AUDIT_INTERVAL: Cycle = 1024;

/// Which invariant a violation breaks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AuditKind {
    FlitConservation,
    CreditConservation,
    GatedResidency,
    RingConservation,
    StateLegality,
    NoProgress,
}

impl AuditKind {
    pub fn as_str(&self) -> &'static str {
        match self {
            AuditKind::FlitConservation => "flit-conservation",
            AuditKind::CreditConservation => "credit-conservation",
            AuditKind::GatedResidency => "gated-residency",
            AuditKind::RingConservation => "ring-conservation",
            AuditKind::StateLegality => "state-legality",
            AuditKind::NoProgress => "no-progress",
        }
    }
}

/// One invariant failure, with enough context to debug it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AuditViolation {
    pub cycle: Cycle,
    pub kind: AuditKind,
    pub detail: String,
}

impl std::fmt::Display for AuditViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cycle {}: [{}] {}", self.cycle, self.kind.as_str(), self.detail)
    }
}

/// Periodic global-invariant checker; see the module docs.
pub struct Auditor {
    /// Cycles between checks.
    pub interval: Cycle,
    /// Stop recording after this many violations (the first few are the
    /// informative ones; a broken invariant usually fails everywhere).
    pub max_violations: usize,
    /// No-progress threshold; 0 disables the check (mirrors
    /// `NocConfig::watchdog_cycles == 0`).
    pub stall_horizon: Cycle,
    next_due: Cycle,
    checks: u64,
    violations: Vec<AuditViolation>,
    suppressed: u64,
    escape_digest: u64,
    escape_move: Cycle,
    stall_reported: bool,
}

impl Auditor {
    /// Auditor at the default interval; the no-progress horizon is taken
    /// from `watchdog_cycles` (same semantics as the panicking watchdog,
    /// which an attached auditor replaces).
    pub fn new(watchdog_cycles: Cycle) -> Auditor {
        Auditor::with_interval(DEFAULT_AUDIT_INTERVAL, watchdog_cycles)
    }

    pub fn with_interval(interval: Cycle, watchdog_cycles: Cycle) -> Auditor {
        Auditor {
            interval: interval.max(1),
            max_violations: 64,
            stall_horizon: watchdog_cycles,
            next_due: 0,
            checks: 0,
            violations: Vec::new(),
            suppressed: 0,
            escape_digest: 0,
            escape_move: 0,
            stall_reported: false,
        }
    }

    /// True when the next step boundary should run a check.
    #[inline]
    pub fn due(&self, cycle: Cycle) -> bool {
        cycle >= self.next_due
    }

    /// Checks performed so far.
    pub fn checks(&self) -> u64 {
        self.checks
    }

    /// Violations recorded so far (capped at `max_violations`).
    pub fn violations(&self) -> &[AuditViolation] {
        &self.violations
    }

    /// Violations found beyond the recording cap.
    pub fn suppressed(&self) -> u64 {
        self.suppressed
    }

    /// True if no invariant has failed yet.
    pub fn clean(&self) -> bool {
        self.violations.is_empty() && self.suppressed == 0
    }

    /// Drain the recorded violations.
    pub fn take_violations(&mut self) -> Vec<AuditViolation> {
        std::mem::take(&mut self.violations)
    }

    fn push(&mut self, cycle: Cycle, kind: AuditKind, detail: String) {
        if self.violations.len() < self.max_violations {
            self.violations.push(AuditViolation { cycle, kind, detail });
        } else {
            self.suppressed += 1;
        }
    }

    /// Run every check against the current (between-steps) core state.
    /// Called by `Simulation::step` when [`Auditor::due`]; callable
    /// directly from tests at any step boundary.
    pub fn check(&mut self, core: &NetworkCore, mech: &dyn PowerMechanism) {
        let cycle = core.cycle;
        self.next_due = cycle + self.interval;
        self.checks += 1;
        self.check_flit_conservation(core);
        self.check_credit_conservation(core);
        self.check_gated_residency(core);
        self.check_ring(core);
        self.check_state_legality(core, mech);
        self.check_progress(core);
    }

    fn check_flit_conservation(&mut self, core: &NetworkCore) {
        let injected = core.activity.flits_injected;
        let delivered = core.activity.flits_delivered;
        let resident = core.flits_in_network();
        if injected != delivered + resident {
            self.push(
                core.cycle,
                AuditKind::FlitConservation,
                format!(
                    "flits_injected {injected} != flits_delivered {delivered} + resident \
                     {resident} (leak of {})",
                    injected as i128 - (delivered + resident) as i128
                ),
            );
        }
    }

    fn check_credit_conservation(&mut self, core: &NetworkCore) {
        let per = core.cfg.vcs_per_vnet();
        for u in 0..core.nodes() {
            let u = u as crate::types::NodeId;
            if !core.power(u).is_powered() {
                continue;
            }
            for d in Dir::ALL {
                if core.neighbor(u, d).is_none() {
                    continue;
                }
                // The counter's owner is the logical downstream: the
                // nearest non-sleeping router, flying over gated ones.
                // A Wakeup owner means the chain's counters are being
                // re-seeded; a dead-end chain (all sleepers to the mesh
                // edge) has zeroed, unused counters. Both are skipped.
                let Some((owner, _)) = core.logical_neighbor(u, d) else { continue };
                if !core.power(owner).is_powered() {
                    continue;
                }
                let port = Port::from_dir(d);
                let r = &core.routers[u as usize];
                for flat in 0..core.cfg.total_vcs() {
                    let (vnet, vc) = (flat / per, flat % per);
                    let have = r.out_credits[r.slot(port.index(), flat)].available();
                    let expect = core.audit_credits(u, owner, d, vnet, vc);
                    if have != expect {
                        self.push(
                            core.cycle,
                            AuditKind::CreditConservation,
                            format!(
                                "router {u} {d:?} vnet {vnet} vc {vc}: counter {have} but audit \
                                 of chain to owner {owner} gives {expect}"
                            ),
                        );
                    }
                }
            }
        }
    }

    fn check_gated_residency(&mut self, core: &NetworkCore) {
        for (i, r) in core.routers.iter().enumerate() {
            if !r.power.is_flov() {
                continue;
            }
            if r.buffered_flits() != 0 || !r.is_drained() {
                self.push(
                    core.cycle,
                    AuditKind::GatedResidency,
                    format!(
                        "router {i} is {:?} with {} buffered flit(s) (drained: {}) — gated \
                         routers may hold flits only in FLOV latches",
                        r.power,
                        r.buffered_flits(),
                        r.is_drained()
                    ),
                );
            }
        }
    }

    fn check_ring(&mut self, core: &NetworkCore) {
        let Some(ring) = &core.ring else { return };
        let cycle = core.cycle;
        let mut found: Vec<String> = Vec::new();
        ring.audit(&mut |msg| found.push(msg));
        for msg in found {
            self.push(cycle, AuditKind::RingConservation, msg);
        }
    }

    fn check_state_legality(&mut self, core: &NetworkCore, mech: &dyn PowerMechanism) {
        let mut found: Vec<String> = Vec::new();
        mech.audit_state(core, &mut |msg| found.push(msg));
        for msg in found {
            self.push(core.cycle, AuditKind::StateLegality, msg);
        }
    }

    /// Digest of the escape sub-network's occupancy: per escape VC, the
    /// buffer length and front flit identity, plus per-channel in-flight
    /// escape counts, plus per-NIC source-queue occupancy (queue length,
    /// head packet identity/age, serialization progress). Any change means
    /// the deadlock-recovery lane — or the injection frontier — moved.
    /// With no escape VCs configured (PowerPunch), every VC participates,
    /// so the digest degrades to "any buffered flit moved".
    ///
    /// The NIC terms matter for mechanisms that legitimately hold traffic
    /// at the source: Router Parking's Phase-I reconfiguration stall parks
    /// whole packets in NIC queues with *zero* flits resident, and a run
    /// whose fabric never carried a flit has `last_progress == 0` — the
    /// stall clock would then measure from cycle 0 and report a
    /// no-progress violation seconds after the first packet was enqueued.
    /// Counting enqueues/serialization advances as movement bounds the
    /// no-progress clock to *actual* frozen-network time.
    fn escape_occupancy_digest(core: &NetworkCore) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325;
        let mut mix = |v: u64| {
            h = (h ^ v).wrapping_mul(0x100000001b3);
        };
        let per = core.cfg.vcs_per_vnet();
        let track_all = core.cfg.escape_vcs == 0;
        for (i, r) in core.routers.iter().enumerate() {
            for slot in 0..r.total_vcs() * crate::types::NUM_PORTS {
                let vc_in_vnet = (slot % r.total_vcs()) % per;
                if !track_all && !core.cfg.is_escape_vc(vc_in_vnet) {
                    continue;
                }
                let buf = &r.inputs[slot].buf;
                if buf.is_empty() {
                    continue;
                }
                mix(i as u64);
                mix(slot as u64);
                mix(buf.len() as u64);
                if let Some(f) = buf.iter().next() {
                    mix(f.packet);
                    mix(f.flit_idx as u64);
                }
            }
        }
        for (e, ch) in core.channels.iter().enumerate() {
            for vnet in 0..core.cfg.vnets {
                let esc = if track_all { 0 } else { core.cfg.regular_vcs };
                let hi = if track_all { per } else { core.cfg.regular_vcs + 1 };
                for vc in esc..hi {
                    let n = ch.flits_in_flight_for(vnet as u8, vc as u8);
                    if n > 0 {
                        mix(e as u64);
                        mix(vnet as u64);
                        mix(vc as u64);
                        mix(n as u64);
                    }
                }
            }
        }
        for (i, nic) in core.nics.iter().enumerate() {
            for (vn, q) in nic.queues.iter().enumerate() {
                if q.is_empty() {
                    continue;
                }
                mix(0x4e49_4351 ^ i as u64); // "NICQ" domain tag
                mix(vn as u64);
                mix(q.len() as u64);
                if let Some(p) = q.front() {
                    mix(p.id);
                    mix(p.birth);
                }
            }
            for (vn, st) in nic.in_progress.iter().enumerate() {
                if let Some(st) = st {
                    mix(0x4e49_4350 ^ i as u64); // "NICP" domain tag
                    mix(vn as u64);
                    mix(st.pkt.id);
                    mix(st.next as u64);
                }
            }
        }
        h
    }

    fn check_progress(&mut self, core: &NetworkCore) {
        if self.stall_horizon == 0 {
            return;
        }
        let digest = Self::escape_occupancy_digest(core);
        if digest != self.escape_digest {
            self.escape_digest = digest;
            self.escape_move = core.cycle;
        }
        let progressed = core.last_progress.max(self.escape_move);
        if core.in_flight_packets > 0 && core.cycle - progressed > self.stall_horizon {
            if !self.stall_reported {
                self.stall_reported = true;
                // Locate the stuck flits (first few occupied buffers) so a
                // repro's detail line already points at the blocked spot.
                let mut stuck: Vec<String> = Vec::new();
                let mut note = |s: String| {
                    if stuck.len() < 8 {
                        stuck.push(s);
                    }
                };
                for (i, r) in core.routers.iter().enumerate() {
                    for slot in 0..r.total_vcs() * crate::types::NUM_PORTS {
                        if let Some(f) = r.inputs[slot].buf.iter().next() {
                            note(format!(
                                "router {i} slot {slot}: packet {} flit {} -> node {} \
                                 (escape: {})",
                                f.packet, f.flit_idx, f.dst, f.escape
                            ));
                        }
                    }
                    for (l, f) in r.latches.iter().enumerate() {
                        if let Some((_, f)) = f {
                            note(format!(
                                "latch {i}/{l}: packet {} flit {} -> node {}",
                                f.packet, f.flit_idx, f.dst
                            ));
                        }
                    }
                }
                for (c, ch) in core.channels.iter().enumerate() {
                    for f in ch.iter_in_flight() {
                        note(format!(
                            "channel {c} wire: packet {} flit {} -> node {}",
                            f.packet, f.flit_idx, f.dst
                        ));
                    }
                }
                for (i, q) in core.ring_transfer.iter().enumerate() {
                    if let Some(f) = q.front() {
                        note(format!(
                            "ring-transfer {i} ({} queued): packet {} flit {} -> node {}",
                            q.len(),
                            f.packet,
                            f.flit_idx,
                            f.dst
                        ));
                    }
                }
                for (i, stage) in core.ring_stage.iter().enumerate() {
                    for (pkt, fs) in stage {
                        note(format!("ring-stage {i}: packet {pkt} ({} flits held)", fs.len()));
                    }
                }
                if let Some(ring) = core.ring.as_ref() {
                    if ring.flits_in_ring() > 0 {
                        note(format!("bypass ring: {} flits circulating", ring.flits_in_ring()));
                    }
                }
                for (i, nic) in core.nics.iter().enumerate() {
                    for (vn, q) in nic.queues.iter().enumerate() {
                        if let Some(p) = q.front() {
                            note(format!(
                                "nic {i} vnet {vn} ({} queued): packet {} -> node {} (born {})",
                                q.len(),
                                p.id,
                                p.dst,
                                p.birth
                            ));
                        }
                    }
                    for (vn, st) in nic.in_progress.iter().enumerate() {
                        if let Some(st) = st {
                            note(format!(
                                "nic {i} vnet {vn} serializing: packet {} at flit {}/{}",
                                st.pkt.id, st.next, st.pkt.len
                            ));
                        }
                    }
                }
                self.push(
                    core.cycle,
                    AuditKind::NoProgress,
                    format!(
                        "no delivery-path progress and no escape-VC or NIC-queue movement for {} \
                         cycles with {} packet(s) in flight ({} flits resident); stuck at [{}]; \
                         power states: {:?}",
                        core.cycle - progressed,
                        core.in_flight_packets,
                        core.flits_in_network(),
                        stuck.join(", "),
                        core.routers.iter().map(|r| r.power).collect::<Vec<_>>()
                    ),
                );
            }
        } else {
            self.stall_reported = false;
        }
    }
}
