//! The 3-stage router pipeline (RC | VA+SA | ST) and NIC injection.
//!
//! Timing model: a head flit visible in an input buffer at cycle `a` does
//! route compute during `a`, may win VA+SA from `a + 1`, traverses the
//! switch the cycle after its SA win and the link after that — so a flit
//! winning SA at `t` becomes visible downstream at `t + 2 + link_latency`,
//! and the unloaded per-hop latency is `pipeline_stages + link_latency`.
//! Body flits stream behind the head at one flit per cycle per VC.

use super::{KernelMode, NetworkCore};
use crate::link::CreditMsg;
use crate::nic::InjectState;
use crate::router::VcOwner;
use crate::routing::RouteCtx;
use crate::traits::PowerMechanism;
use crate::types::{NodeId, Port, NUM_PORTS};

/// Build the routing context a mechanism sees for a head flit at `at`.
pub fn build_route_ctx(
    core: &NetworkCore,
    at: NodeId,
    in_port: Port,
    dst: NodeId,
    escape: bool,
) -> RouteCtx {
    use crate::topology::Topology;
    RouteCtx {
        kx: core.topo.kx(),
        ky: core.topo.ky(),
        torus: core.topo.wraps(),
        at: core.coord(at),
        in_port,
        dst: core.coord(dst),
        escape,
        neighbors: core.psr(at),
    }
}

/// Phase 5: one flit per node per cycle from the NIC source queues into the
/// local input port, subject to the mechanism's injection gate (Router
/// Parking stalls injection during reconfiguration).
pub(super) fn injection_phase(core: &mut NetworkCore, mech: &dyn PowerMechanism) {
    match core.kernel {
        KernelMode::Reference => {
            for node in 0..core.nodes() as NodeId {
                if !core.nics[node as usize].pending() {
                    continue;
                }
                inject_node(core, mech, node);
            }
        }
        KernelMode::ActiveSet => {
            let mut scratch = std::mem::take(&mut core.sched.scratch);
            core.sched.inject.collect_into(&mut scratch);
            for &node in &scratch {
                if !core.nics[node as usize].pending() {
                    core.sched.inject.remove(node as usize);
                    continue;
                }
                // Gated nodes with backlog stay marked: the mechanism will
                // wake the router eventually and injection resumes here.
                inject_node(core, mech, node as NodeId);
            }
            core.sched.scratch = scratch;
        }
        KernelMode::Parallel { tiles, grid } => {
            super::par::injection_phase(core, mech, tiles, grid)
        }
    }
}

/// Injection-phase body for one node with NIC backlog (shared by both
/// kernels).
fn inject_node(core: &mut NetworkCore, mech: &dyn PowerMechanism, node: NodeId) {
    let now = core.cycle;
    let vnets = core.cfg.vnets;
    if !core.routers[node as usize].power.is_powered() {
        return; // router gated; the mechanism is responsible for waking it
    }
    // The injection gate (Router Parking's reconfiguration stall) blocks
    // *starting* packets; committed serializations must finish so the
    // network can drain.
    let gate_open = mech.injection_allowed(core, node);
    if !gate_open && core.nics[node as usize].in_progress.iter().all(|p| p.is_none()) {
        core.stalled_injection_node_cycles += 1;
        return;
    }
    let rr0 = core.nics[node as usize].vnet_rr;
    for i in 0..vnets {
        let vn = (rr0 + i) % vnets;
        // Start a new serialization if this vnet is between packets.
        if core.nics[node as usize].in_progress[vn].is_none() {
            if !gate_open || core.nics[node as usize].queues[vn].is_empty() {
                continue;
            }
            // The ring transfer injector owns the last regular VC of the
            // local port (see `ring_injection_phase`): NIC serializations
            // must stay off it, or a local packet can interleave with a
            // ring-to-mesh transfer wormhole in one VC FIFO — the flits
            // reach the destination NIC interleaved (flit-reordering
            // panic) and debug builds trip the open-wormhole assert.
            let reg = core.cfg.regular_vcs - usize::from(core.ring.is_some());
            let mut chosen = None;
            for j in 0..reg {
                let vc = (now as usize + j) % reg;
                let flat = core.cfg.vc_index(vn, vc);
                let r = &core.routers[node as usize];
                if r.inputs[r.slot(Port::Local.index(), flat)].buf.free() > 0 {
                    chosen = Some(vc);
                    break;
                }
            }
            let Some(vc) = chosen else { continue };
            let pkt = core.nics[node as usize].queues[vn].pop_front().unwrap();
            core.nics[node as usize].in_progress[vn] =
                Some(InjectState { pkt, next: 0, vc: vc as u8 });
        }
        // Push the next flit of the in-progress packet if there is room.
        let st = core.nics[node as usize].in_progress[vn].unwrap();
        let flat = core.cfg.vc_index(vn, st.vc as usize);
        let slot = {
            let r = &core.routers[node as usize];
            r.slot(Port::Local.index(), flat)
        };
        if core.routers[node as usize].inputs[slot].buf.free() == 0 {
            continue;
        }
        let mut f = st.pkt.flit(st.next, now);
        f.vc = st.vc;
        let r = &mut core.routers[node as usize];
        r.push_flit(Port::Local.index(), slot, f, now);
        r.touch_local(now);
        core.activity.buffer_writes += 1;
        core.activity.flits_injected += 1;
        if st.next == 0 {
            core.activity.packets_injected += 1;
        }
        let nic = &mut core.nics[node as usize];
        if st.next + 1 == st.pkt.len {
            nic.in_progress[vn] = None;
        } else {
            nic.in_progress[vn] = Some(InjectState { next: st.next + 1, ..st });
        }
        nic.vnet_rr = (vn + 1) % vnets;
        core.mark_work(node);
        core.note_progress();
        break; // one flit per node per cycle
    }
}

/// Phase 6: VA then SA/ST for every powered router with buffered flits, in
/// id order. The reference kernel scans all routers; the active-set kernel
/// visits the work set (routers with `buffered_flits() > 0`), which is
/// equivalent because an empty router's VA and SA stages have no side
/// effects (every slot is skipped before any arbiter advances).
pub(super) fn pipeline_phase(core: &mut NetworkCore, mech: &dyn PowerMechanism) {
    match core.kernel {
        KernelMode::Reference => {
            for node in 0..core.nodes() as NodeId {
                if !core.routers[node as usize].power.is_powered() {
                    continue;
                }
                va_stage(core, mech, node);
                sa_stage(core, node);
            }
        }
        KernelMode::ActiveSet => {
            let mut scratch = std::mem::take(&mut core.sched.scratch);
            core.sched.work.collect_into(&mut scratch);
            for &node in &scratch {
                let i = node as usize;
                if core.routers[i].buffered_flits() == 0 {
                    core.sched.work.remove(i);
                    continue;
                }
                // Buffered flits imply a powered router: `enter_sleep`
                // asserts the buffers are drained.
                debug_assert!(core.routers[i].power.is_powered());
                va_stage(core, mech, node as NodeId);
                sa_stage(core, node as NodeId);
            }
            core.sched.scratch = scratch;
        }
        KernelMode::Parallel { tiles, grid } => super::par::pipeline_phase(core, mech, tiles, grid),
    }
}

/// VC allocation (with route compute folded in): for each input VC whose
/// front is an unallocated head flit past its RC cycle, compute the route
/// (re-evaluated every cycle until granted, so decisions always use current
/// power states), walk the FLOV chain, and try to claim a downstream VC.
fn va_stage(core: &mut NetworkCore, mech: &dyn PowerMechanism, node: NodeId) {
    let now = core.cycle;
    let total_vcs = core.cfg.total_vcs();
    let nslots = NUM_PORTS * total_vcs;
    let start = (now as usize).wrapping_mul(7) % nslots;
    // Collect the *occupied* slots in the rotated flat-slot scan order from
    // the per-port bitmasks. Equivalent to scanning all slots circularly
    // from `start`: a slot with an empty buffer exits the body before any
    // side effect (either `alloc` is set and body flits are still upstream,
    // or there is no front flit), and buffers don't change during VA.
    let mut order = std::mem::take(&mut core.va_order);
    order.clear();
    {
        let r = &core.routers[node as usize];
        let sp = start / total_vcs;
        let sv = start % total_vcs;
        let low = (1u64 << sv) - 1; // VCs before the rotated origin
        push_busy(&mut order, sp, r.vc_busy[sp] & !low, total_vcs);
        for off in 1..NUM_PORTS {
            let p = (sp + off) % NUM_PORTS;
            push_busy(&mut order, p, r.vc_busy[p], total_vcs);
        }
        push_busy(&mut order, sp, r.vc_busy[sp] & low, total_vcs);
    }
    for &s in &order {
        let s = s as usize;
        let port = s / total_vcs;
        let (dst, vnet, mut escape, head_since);
        {
            let invc = &core.routers[node as usize].inputs[s];
            if invc.alloc.is_some() {
                continue;
            }
            let Some(f) = invc.buf.front() else { continue };
            debug_assert!(f.kind.is_head(), "non-head flit at front without an allocation");
            head_since = invc.head_since;
            if now < head_since + 1 {
                continue; // still in the RC stage
            }
            dst = f.dst;
            vnet = f.vnet as usize;
            escape = f.escape;
        }
        // Duato timeout recovery: divert long-blocked packets to the escape
        // sub-network.
        if !escape && core.cfg.escape_vcs > 0 && now - head_since > core.cfg.escape_timeout as u64 {
            escape = true;
            core.escape_diversions += 1;
            core.routers[node as usize].inputs[s].buf.front_mut().unwrap().escape = true;
        }
        let in_port = Port::from_index(port);
        let ctx = build_route_ctx(core, node, in_port, dst, escape);
        let mut routed = mech.route(core, &ctx);
        if routed.is_none() && !escape && core.cfg.escape_vcs > 0 {
            // The regular routing function has no viable output at all
            // (e.g. FLOV's U-turn trap with both turn candidates gated):
            // divert to the escape sub-network immediately — it guarantees
            // a path — instead of burning the whole deadlock timeout.
            escape = true;
            core.escape_diversions += 1;
            core.routers[node as usize].inputs[s].buf.front_mut().unwrap().escape = true;
            routed = mech.route(core, &RouteCtx { escape: true, ..ctx });
        }
        let Some(out) = routed else { continue };
        debug_assert!(
            escape || out == Port::Local || out != in_port,
            "mechanism routed a non-escape U-turn at router {node}"
        );
        let cand_range = if escape {
            let e = core.cfg.escape_vc().expect("escape flit but no escape VC configured");
            (e, 1)
        } else {
            (0, core.cfg.regular_vcs)
        };
        if out == Port::Local {
            debug_assert!(
                dst == node || core.ring.is_some(),
                "local ejection routed for a non-local flit without a ring"
            );
            // Ejection may use any VC of the vnet (the NIC always drains).
            try_grant(core, node, s, port, Port::Local.index(), vnet, 0, core.cfg.vcs_per_vnet());
            continue;
        }
        let d = out.dir().unwrap();
        debug_assert!(core.neighbor(node, d).is_some(), "mechanism routed off the mesh at {node}");
        let walk = core.chain_walk(node, d, dst);
        if let Some(sleeper) = walk.dst_on_chain {
            // Destination router is power-gated: hold the packet and ask the
            // mechanism to wake it.
            core.request_wakeup(sleeper);
            continue;
        }
        if walk.blocked || walk.powered.is_none() {
            continue; // retry next cycle; handshakes resolve this
        }
        try_grant(core, node, s, port, out.index(), vnet, cand_range.0, cand_range.1);
    }
    core.va_order = order;
}

/// Append the slot indices of the set bits of `mask` (port `p`'s occupied
/// VCs) in ascending VC order.
#[inline]
fn push_busy(order: &mut Vec<u16>, p: usize, mask: u64, total_vcs: usize) {
    let mut m = mask;
    while m != 0 {
        let v = m.trailing_zeros() as usize;
        order.push((p * total_vcs + v) as u16);
        m &= m - 1;
    }
}

/// Claim a free downstream VC among `[first, first + count)` of `vnet` on
/// output `op`, rotating the scan origin for fairness.
#[allow(clippy::too_many_arguments)] // hot path: flat args beat a struct here
fn try_grant(
    core: &mut NetworkCore,
    node: NodeId,
    s: usize,
    in_port: usize,
    op: usize,
    vnet: usize,
    first: usize,
    count: usize,
) {
    let now = core.cycle as usize;
    for j in 0..count {
        let vc = first + (now + j) % count;
        let flat = core.cfg.vc_index(vnet, vc);
        let oslot = {
            let r = &core.routers[node as usize];
            r.slot(op, flat)
        };
        if core.routers[node as usize].out_vc_state[oslot] == VcOwner::Free {
            let r = &mut core.routers[node as usize];
            r.out_vc_state[oslot] = VcOwner::Owned { in_port: in_port as u8, in_vc: s as u16 };
            r.inputs[s].alloc = Some((op as u8, vc as u8));
            core.activity.va_grants += 1;
            return;
        }
    }
}

/// Separable switch allocation: stage 1 picks one VC per input port
/// (round-robin), stage 2 picks one input port per output port
/// (round-robin); winners traverse the switch.
fn sa_stage(core: &mut NetworkCore, node: NodeId) {
    let now = core.cycle;
    let total_vcs = core.cfg.total_vcs();
    let mut cand: [Option<(usize, usize, u8)>; NUM_PORTS] = [None; NUM_PORTS];
    #[allow(clippy::needless_range_loop)] // index mirrors the hardware port id
    for p in 0..NUM_PORTS {
        if core.routers[node as usize].port_occupancy[p] == 0 {
            continue;
        }
        let mut mask: u64 = 0;
        {
            let r = &core.routers[node as usize];
            // Only occupied VCs can bid (an empty VC has no front flit);
            // candidate masks are order-independent, so plain bit order.
            let mut busy = r.vc_busy[p];
            while busy != 0 {
                let v = busy.trailing_zeros() as usize;
                busy &= busy - 1;
                let s = p * total_vcs + v;
                let invc = &r.inputs[s];
                let Some((op, ovc)) = invc.alloc else { continue };
                let f = invc.buf.front().expect("vc_busy bit set on an empty VC");
                if f.kind.is_head() && now < invc.head_since + 1 {
                    continue;
                }
                if op as usize != Port::Local.index() {
                    let flat = core.cfg.vc_index(f.vnet as usize, ovc as usize);
                    if !r.out_credits[r.slot(op as usize, flat)].has_credit() {
                        continue;
                    }
                }
                mask |= 1 << v;
            }
        }
        if mask == 0 {
            continue;
        }
        let r = &mut core.routers[node as usize];
        let v = r.sa_in[p].grant(|i| mask & (1 << i) != 0).unwrap();
        let (op, ovc) = r.inputs[p * total_vcs + v].alloc.unwrap();
        cand[p] = Some((p * total_vcs + v, op as usize, ovc));
    }
    for op in 0..NUM_PORTS {
        let mut mask: u64 = 0;
        for (p, c) in cand.iter().enumerate() {
            if c.is_some_and(|(_, o, _)| o == op) {
                mask |= 1 << p;
            }
        }
        if mask == 0 {
            continue;
        }
        let p = core.routers[node as usize].sa_out[op].grant(|i| mask & (1 << i) != 0).unwrap();
        let (s, _, ovc) = cand[p].unwrap();
        st_traverse(core, node, p, s, op, ovc);
    }
}

/// Switch traversal for one SA winner: move the flit onto the output link,
/// consume the downstream credit, refund the upstream credit for the freed
/// input slot, and close the wormhole on tails.
fn st_traverse(core: &mut NetworkCore, node: NodeId, in_port: usize, s: usize, op: usize, ovc: u8) {
    let now = core.cycle;
    let link_lat = core.cfg.link_latency as u64;
    let mut f = core.routers[node as usize].pop_flit(in_port, s);
    core.activity.buffer_reads += 1;
    core.activity.xbar_traversals += 1;
    core.activity.sa_grants += 1;
    f.vc = ovc;
    if op != Port::Local.index() && core.cfg.is_escape_vc(ovc as usize) {
        f.escape = true;
    }
    f.hops_router += 1;
    f.hops_link += 1;
    core.activity.link_flits += 1;
    let arrival = now + link_lat + 2; // ST next cycle, then the wire
    let vnet = f.vnet as usize;
    let is_tail = f.kind.is_tail();
    if op == Port::Local.index() {
        core.eject[node as usize].send_flit(arrival, f);
        core.mark_eject(node);
    } else {
        let d = Port::from_index(op).dir().unwrap();
        let flat = core.cfg.vc_index(vnet, ovc as usize);
        {
            let r = &mut core.routers[node as usize];
            let oslot = r.slot(op, flat);
            r.out_credits[oslot].consume();
        }
        let e = node as usize * 4 + d.index();
        core.link_util[e] += 1;
        core.channel_mut(node, d).send_flit(arrival, f);
        core.mark_chan(e);
    }
    // Credit for the freed input slot flows back upstream (not for the
    // local port: the NIC observes buffer space directly).
    if in_port != Port::Local.index() {
        let d_up = Port::from_index(in_port).dir().unwrap();
        if core.neighbor(node, d_up).is_some() {
            let (vn, vc) = core.cfg.vc_split(s % core.cfg.total_vcs());
            core.channel_mut(node, d_up)
                .send_credit(now + 3, CreditMsg { vnet: vn as u8, vc: vc as u8 });
            core.mark_chan(node as usize * 4 + d_up.index());
            core.activity.credit_msgs += 1;
        }
    }
    {
        let r = &mut core.routers[node as usize];
        if is_tail {
            let flat = core.cfg.vc_index(vnet, ovc as usize);
            let oslot = r.slot(op, flat);
            r.out_vc_state[oslot] = VcOwner::Free;
            r.inputs[s].alloc = None;
        }
        if let Some(nf) = r.inputs[s].buf.front() {
            if nf.kind.is_head() {
                debug_assert!(is_tail, "head flit queued behind an open wormhole");
                r.inputs[s].head_since = now;
            }
        }
    }
    core.note_progress();
}
