//! Chain walks: resolving the *logical* neighbor relationships that FLOV
//! creates when consecutive routers sleep, and the per-VC credit audits used
//! to re-seed credit counters at power transitions.

use super::NetworkCore;
use crate::types::{Dir, NodeId, PowerState};

/// Result of walking from a router in one direction across any sleeping
/// routers, as the VC allocator and the handshake protocols see it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChainTarget {
    /// Nearest powered router in the direction, if any (the logical
    /// neighbor).
    pub powered: Option<NodeId>,
    /// True if new packet transmissions are currently forbidden on this
    /// chain: the logical neighbor is Draining, or a router on the way is
    /// mid-Wakeup (its latches are being drained).
    pub blocked: bool,
    /// A power-gated router on the chain that is itself the packet's
    /// destination; the packet must wait for it to wake up.
    pub dst_on_chain: Option<NodeId>,
    /// Number of sleeping routers the chain crosses before the target.
    pub sleepers: u32,
}

impl NetworkCore {
    /// Walk from `from` in direction `d`, flying over sleeping routers,
    /// until a powered router, a Wakeup router, or the mesh edge. `dst` is
    /// the packet destination (to detect wake-up-needed cases); pass the
    /// walking router's own id when no packet is involved.
    pub fn chain_walk(&self, from: NodeId, d: Dir, dst: NodeId) -> ChainTarget {
        let mut cur = from;
        let mut sleepers = 0;
        loop {
            let Some(next) = self.neighbor(cur, d) else {
                return ChainTarget { powered: None, blocked: false, dst_on_chain: None, sleepers };
            };
            if next == from {
                // Torus wrap cycle with every other router asleep: there is
                // no powered receiver anywhere in this direction, so new
                // transmissions must hold.
                return ChainTarget { powered: None, blocked: true, dst_on_chain: None, sleepers };
            }
            match self.power(next) {
                PowerState::Active => {
                    return ChainTarget {
                        powered: Some(next),
                        blocked: false,
                        dst_on_chain: None,
                        sleepers,
                    }
                }
                PowerState::Draining => {
                    return ChainTarget {
                        powered: Some(next),
                        blocked: true,
                        dst_on_chain: None,
                        sleepers,
                    }
                }
                PowerState::Wakeup => {
                    // Mid-transition: not passable, not yet a buffer owner.
                    return ChainTarget {
                        powered: None,
                        blocked: true,
                        dst_on_chain: None,
                        sleepers,
                    };
                }
                PowerState::Sleep => {
                    if next == dst {
                        return ChainTarget {
                            powered: None,
                            blocked: true,
                            dst_on_chain: Some(next),
                            sleepers,
                        };
                    }
                    // An intermediate sleeper is geometrically guaranteed to
                    // have FLOV capability in this dimension unless it sits
                    // at the mesh edge, in which case the walk ends anyway.
                    if self.neighbor(next, d).is_none() {
                        return ChainTarget {
                            powered: None,
                            blocked: false,
                            dst_on_chain: None,
                            sleepers,
                        };
                    }
                    debug_assert!(self.routers[next as usize].has_flov(d));
                    sleepers += 1;
                    cur = next;
                }
            }
        }
    }

    /// The logical neighbor of `node` in `d`: the nearest router in that
    /// direction that is not asleep (Draining/Wakeup routers are handshake
    /// participants), together with the sleeping-hop distance.
    pub fn logical_neighbor(&self, node: NodeId, d: Dir) -> Option<(NodeId, u32)> {
        let mut cur = node;
        let mut hops = 0;
        loop {
            let next = self.neighbor(cur, d)?;
            if next == node {
                // Torus wrap cycle of sleepers: no logical neighbor exists.
                return None;
            }
            if self.power(next) != PowerState::Sleep {
                return Some((next, hops));
            }
            hops += 1;
            cur = next;
        }
    }

    /// True if no committed traffic can still arrive at `node` from the
    /// `from` side: walk outward over non-powered routers checking that
    /// every wire and latch on the way is flit-free, and that the first
    /// powered router (if any) has no open wormhole pointed this way.
    ///
    /// This is the condition behind the `drain_done` handshake signal: once
    /// it holds (and the state forbids new transmissions), the segment stays
    /// quiescent.
    pub fn inbound_quiescent(&self, node: NodeId, from: Dir) -> bool {
        let toward = from.opposite(); // direction flits travel to reach node
        let mut cur = node;
        loop {
            let Some(next) = self.neighbor(cur, from) else { return true };
            // Wire next -> cur.
            if self.channel(next, toward).flits_in_flight() > 0 {
                return false;
            }
            if self.power(next).is_powered() {
                // First powered router: no open wormhole toward us. On a
                // torus wrap cycle this may be `node` itself, in which case
                // its own outbound wormholes would circle back around.
                let r = &self.routers[next as usize];
                let port = crate::types::Port::from_dir(toward);
                for v in 0..r.total_vcs() {
                    if r.out_vc_state[r.slot(port.index(), v)] != crate::router::VcOwner::Free {
                        return false;
                    }
                }
                return true;
            }
            // Sleeping or waking intermediate: its pass-through latch toward
            // us must be empty.
            if self.routers[next as usize].latches[toward.index()].is_some() {
                return false;
            }
            if next == node {
                // Unpowered `node` on a fully-unpowered torus wrap cycle:
                // every wire and latch on the cycle has been checked clean.
                return true;
            }
            cur = next;
        }
    }

    /// [`NetworkCore::inbound_quiescent`] in every direction at once.
    pub fn fully_quiescent(&self, node: NodeId) -> bool {
        Dir::ALL.iter().all(|&d| self.inbound_quiescent(node, d))
    }

    /// Audit of one downstream VC as needed to seed an upstream credit
    /// counter. The counter invariant is
    ///
    /// `avail = free slots at owner - flits in flight toward owner
    ///                              - credits in flight back upstream`
    ///
    /// (in-flight flits will consume slots on arrival; in-flight credits
    /// will refund the counter on arrival). `upstream` and `owner` must lie
    /// on one straight line in direction `d` with only non-powered routers
    /// between them.
    pub fn audit_credits(
        &self,
        upstream: NodeId,
        owner: NodeId,
        d: Dir,
        vnet: usize,
        vc: usize,
    ) -> usize {
        let in_port = crate::types::Port::from_dir(d.opposite());
        let owner_r = &self.routers[owner as usize];
        let slot = owner_r.slot(in_port.index(), self.cfg.vc_index(vnet, vc));
        let free = owner_r.inputs[slot].buf.free();
        // Walk the reverse path owner -> upstream counting in-flight flits,
        // latched flits, and in-flight credits for this VC.
        let mut claimed = 0usize;
        let mut cur = owner;
        loop {
            let prev =
                self.neighbor(cur, d.opposite()).expect("audit path must stay inside the mesh");
            // Channel prev -> cur carries flits downstream.
            claimed += self.channel(prev, d).flits_in_flight_for(vnet as u8, vc as u8);
            // Channel cur -> prev carries credits upstream.
            claimed += self.channel(cur, d.opposite()).credits_in_flight_for(vnet as u8, vc as u8);
            if prev == upstream {
                break;
            }
            // Latched flit at the intermediate (non-powered) router.
            if let Some((_, f)) = self.routers[prev as usize].latches[d.index()] {
                if f.vnet as usize == vnet && f.vc as usize == vc {
                    claimed += 1;
                }
            }
            cur = prev;
        }
        free.saturating_sub(claimed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NocConfig;
    use crate::types::Coord;

    fn core() -> NetworkCore {
        NetworkCore::new(NocConfig::small_test()) // 4x4
    }

    fn id(x: u16, y: u16) -> NodeId {
        Coord::new(x, y).id(4)
    }

    #[test]
    fn walk_to_active_neighbor() {
        let c = core();
        let t = c.chain_walk(id(0, 0), Dir::East, id(3, 0));
        assert_eq!(
            t,
            ChainTarget {
                powered: Some(id(1, 0)),
                blocked: false,
                dst_on_chain: None,
                sleepers: 0
            }
        );
    }

    #[test]
    fn walk_over_sleepers() {
        let mut c = core();
        c.routers[id(1, 1) as usize].power = PowerState::Sleep;
        c.routers[id(2, 1) as usize].power = PowerState::Sleep;
        let t = c.chain_walk(id(0, 1), Dir::East, id(3, 3));
        assert_eq!(t.powered, Some(id(3, 1)));
        assert_eq!(t.sleepers, 2);
        assert!(!t.blocked);
    }

    #[test]
    fn walk_blocked_by_draining() {
        let mut c = core();
        c.routers[id(1, 0) as usize].power = PowerState::Draining;
        let t = c.chain_walk(id(0, 0), Dir::East, id(3, 0));
        assert_eq!(t.powered, Some(id(1, 0)));
        assert!(t.blocked);
    }

    #[test]
    fn walk_blocked_by_wakeup() {
        let mut c = core();
        c.routers[id(1, 0) as usize].power = PowerState::Wakeup;
        let t = c.chain_walk(id(0, 0), Dir::East, id(3, 0));
        assert_eq!(t.powered, None);
        assert!(t.blocked);
    }

    #[test]
    fn sleeping_destination_detected() {
        let mut c = core();
        c.routers[id(1, 2) as usize].power = PowerState::Sleep;
        c.routers[id(2, 2) as usize].power = PowerState::Sleep;
        let t = c.chain_walk(id(0, 2), Dir::East, id(2, 2));
        assert_eq!(t.dst_on_chain, Some(id(2, 2)));
        assert!(t.blocked);
        assert_eq!(t.powered, None);
    }

    #[test]
    fn walk_dead_ends_at_edge() {
        let mut c = core();
        c.routers[id(0, 1) as usize].power = PowerState::Sleep;
        let t = c.chain_walk(id(1, 1), Dir::West, id(3, 3));
        assert_eq!(t.powered, None);
        assert!(!t.blocked);
    }

    #[test]
    fn logical_neighbor_skips_sleepers_only() {
        let mut c = core();
        c.routers[id(1, 1) as usize].power = PowerState::Sleep;
        c.routers[id(2, 1) as usize].power = PowerState::Draining;
        assert_eq!(c.logical_neighbor(id(0, 1), Dir::East), Some((id(2, 1), 1)));
        assert_eq!(c.logical_neighbor(id(3, 1), Dir::East), None);
    }

    #[test]
    fn audit_credits_counts_free_slots() {
        let c = core();
        let free = c.audit_credits(id(0, 0), id(1, 0), Dir::East, 0, 0);
        assert_eq!(free, c.cfg.buf_depth);
    }

    #[test]
    fn audit_credits_subtracts_in_flight_credits() {
        let mut c = core();
        let e = id(1, 0) as usize * 4 + Dir::West.index();
        c.channels[e].send_credit(5, crate::link::CreditMsg { vnet: 0, vc: 0 });
        c.channels[e].send_credit(6, crate::link::CreditMsg { vnet: 0, vc: 1 });
        let free = c.audit_credits(id(0, 0), id(1, 0), Dir::East, 0, 0);
        assert_eq!(free, c.cfg.buf_depth - 1);
    }

    #[test]
    fn audit_credits_subtracts_in_flight_flits_over_sleeper() {
        let mut c = core();
        c.routers[id(1, 0) as usize].power = PowerState::Sleep;
        // Flit in flight on the 0->1 hop, headed for owner (2,0), vc 0.
        let e = id(0, 0) as usize * 4 + Dir::East.index();
        let p = crate::packet::Packet {
            id: 1,
            src: id(0, 0),
            dst: id(3, 0),
            vnet: 0,
            len: 1,
            birth: 0,
        };
        c.channels[e].send_flit(3, p.flit(0, 0));
        let free = c.audit_credits(id(0, 0), id(2, 0), Dir::East, 0, 0);
        assert_eq!(free, c.cfg.buf_depth - 1);
    }
}
