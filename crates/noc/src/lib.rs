//! # flov-noc — cycle-accurate 2D-mesh NoC simulator
//!
//! The substrate for the Fly-Over (FLOV) reproduction: a deterministic,
//! single-threaded, flit-level network-on-chip simulator with
//!
//! * wormhole switching over virtual channels with credit-based flow
//!   control (3 regular VCs + 1 escape VC per virtual network, Table I),
//! * a 3-stage router pipeline (route compute | VC+switch allocation |
//!   switch traversal) plus 1-cycle links,
//! * the FLOV router datapath: per-direction output latches that fly flits
//!   straight over power-gated routers in one cycle, with credit relaying
//!   across arbitrarily long sleeping chains,
//! * power-state transitions with contract-checked quiescence and the
//!   credit zero/copy protocol of the paper's Fig. 3,
//! * two interchangeable cycle kernels — a full-scan reference and the
//!   default active-set kernel whose per-cycle cost scales with traffic,
//!   not mesh size, proven bit-identical ([`network::KernelMode`]),
//! * pluggable [`traits::PowerMechanism`]s (Baseline, rFLOV, gFLOV and
//!   Router Parking live in the `flov-core` crate) and
//!   [`traits::Workload`]s (synthetic and PARSEC-proxy traffic live in
//!   `flov-workloads`).
//!
//! Determinism: identical configuration + seed produce bit-identical
//! results on every platform (the kernel carries its own PRNG and uses
//! fixed iteration orders). Parallelism belongs *outside* the kernel —
//! sweep many simulations with rayon, as `flov-bench` does.
//!
//! ## Quick example
//!
//! ```
//! use flov_noc::baseline::AlwaysOnYx;
//! use flov_noc::config::NocConfig;
//! use flov_noc::network::Simulation;
//! use flov_noc::traits::{PacketRequest, ScriptedWorkload};
//!
//! let w = ScriptedWorkload::new(vec![(0, PacketRequest { src: 0, dst: 63, vnet: 0, len: 4 })]);
//! let mut sim = Simulation::new(NocConfig::paper_table1(), Box::new(AlwaysOnYx), Box::new(w));
//! sim.run_until_done(10_000);
//! assert_eq!(sim.core.stats.packets, 1);
//! ```

pub mod active;
pub mod activity;
pub mod baseline;
pub mod buffer;
pub mod config;
pub mod flit;
pub mod link;
pub mod network;
pub mod nic;
pub mod packet;
pub mod render;
pub mod ring;
pub mod rng;
pub mod router;
pub mod routing;
pub mod stats;
pub mod topology;
pub mod traits;
pub mod types;

pub use activity::{ActivityCounters, Residency};
pub use config::{ConfigError, NocConfig};
pub use network::audit;
pub use network::audit::{AuditKind, AuditViolation, Auditor};
pub use network::{KernelMode, NetworkCore, Simulation};
pub use stats::NetStats;
pub use topology::{AnyTopology, Topology, TopologySpec};
pub use traits::{PacketRequest, PowerMechanism, PowerView, Workload};
pub use types::{Coord, Cycle, Dir, NodeId, PacketId, Port, PowerState};
