//! Routing interface shared by all mechanisms, plus baseline YX routing
//! (Table I: "Baseline Routing: YX Routing").

use crate::types::{Coord, Dir, Port, PowerState};

/// Everything a routing function may consult for one head flit at one
/// powered router. Deliberately local: coordinates, destination, the input
/// port, the escape flag, and the *physical neighbor* power states (the
/// router's PSR view) — matching the paper's claim that FLOV routing needs
/// no global network information.
#[derive(Clone, Copy, Debug)]
pub struct RouteCtx {
    /// Mesh radix.
    pub k: u16,
    /// Router doing the route computation.
    pub at: Coord,
    /// Port the packet arrived on (`Local` for freshly injected packets).
    pub in_port: Port,
    /// Destination coordinate.
    pub dst: Coord,
    /// True once the packet is in the escape sub-network.
    pub escape: bool,
    /// Power state of the physical neighbor in each direction
    /// (`None` at mesh edges). This is the PSR register contents.
    pub neighbors: [Option<PowerState>; 4],
}

impl RouteCtx {
    /// True if the physical neighbor in `d` exists and is powered on
    /// (Active or Draining).
    #[inline]
    pub fn neighbor_powered(&self, d: Dir) -> bool {
        self.neighbors[d.index()].is_some_and(|s| s.is_powered())
    }

    /// True if a neighbor exists in `d`.
    #[inline]
    pub fn neighbor_exists(&self, d: Dir) -> bool {
        self.neighbors[d.index()].is_some()
    }
}

/// Dimension-ordered YX routing: traverse Y first, then X.
///
/// Pure function of (current, destination); deadlock-free on a mesh because
/// the only turns it takes are from Y-travel into X-travel.
#[inline]
pub fn yx_route(at: Coord, dst: Coord) -> Port {
    if at == dst {
        Port::Local
    } else if dst.y > at.y {
        Port::North
    } else if dst.y < at.y {
        Port::South
    } else if dst.x > at.x {
        Port::East
    } else {
        Port::West
    }
}

/// XY routing (dual of YX); used by tests and ablations.
#[inline]
pub fn xy_route(at: Coord, dst: Coord) -> Port {
    if at == dst {
        Port::Local
    } else if dst.x > at.x {
        Port::East
    } else if dst.x < at.x {
        Port::West
    } else if dst.y > at.y {
        Port::North
    } else {
        Port::South
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn yx_reaches_destination() {
        let k = 8;
        for s in 0..64u16 {
            for d in 0..64u16 {
                let mut at = Coord::of(s, k);
                let dst = Coord::of(d, k);
                let mut hops = 0;
                loop {
                    let p = yx_route(at, dst);
                    if p == Port::Local {
                        break;
                    }
                    at = at.neighbor(p.dir().unwrap(), k).expect("yx walked off the mesh");
                    hops += 1;
                    assert!(hops <= 14, "yx not minimal");
                }
                assert_eq!(at, dst);
                assert_eq!(hops, Coord::of(s, k).manhattan(dst));
            }
        }
    }

    #[test]
    fn yx_goes_y_first() {
        let at = Coord::new(2, 2);
        let dst = Coord::new(5, 6);
        assert_eq!(yx_route(at, dst), Port::North);
        let dst2 = Coord::new(5, 2);
        assert_eq!(yx_route(at, dst2), Port::East);
    }

    #[test]
    fn xy_goes_x_first() {
        let at = Coord::new(2, 2);
        let dst = Coord::new(5, 6);
        assert_eq!(xy_route(at, dst), Port::East);
        let dst2 = Coord::new(2, 6);
        assert_eq!(xy_route(at, dst2), Port::North);
    }

    #[test]
    fn local_when_arrived() {
        let c = Coord::new(3, 3);
        assert_eq!(yx_route(c, c), Port::Local);
        assert_eq!(xy_route(c, c), Port::Local);
    }

    #[test]
    fn ctx_neighbor_predicates() {
        let ctx = RouteCtx {
            k: 8,
            at: Coord::new(0, 0),
            in_port: Port::Local,
            dst: Coord::new(3, 3),
            escape: false,
            neighbors: [
                Some(PowerState::Active),
                Some(PowerState::Sleep),
                None,
                Some(PowerState::Draining),
            ],
        };
        assert!(ctx.neighbor_powered(Dir::North));
        assert!(!ctx.neighbor_powered(Dir::East)); // asleep
        assert!(!ctx.neighbor_powered(Dir::South)); // edge
        assert!(ctx.neighbor_powered(Dir::West)); // draining counts as powered
        assert!(ctx.neighbor_exists(Dir::East));
        assert!(!ctx.neighbor_exists(Dir::South));
    }
}
