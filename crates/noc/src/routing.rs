//! Routing interface shared by all mechanisms, plus baseline YX routing
//! (Table I: "Baseline Routing: YX Routing").

use crate::types::{Coord, Dir, Port, PowerState};

/// Everything a routing function may consult for one head flit at one
/// powered router. Deliberately local: coordinates, destination, the input
/// port, the escape flag, grid dimensions, and the *grid neighbor* power
/// states (the router's PSR view) — matching the paper's claim that FLOV
/// routing needs no global network information.
#[derive(Clone, Copy, Debug)]
pub struct RouteCtx {
    /// Router-grid width.
    pub kx: u16,
    /// Router-grid height.
    pub ky: u16,
    /// True on a wrapping (torus) fabric: the baseline may route
    /// wrap-minimally; mechanism routing stays grid-semantic either way.
    pub torus: bool,
    /// Router doing the route computation.
    pub at: Coord,
    /// Port the packet arrived on (`Local` for freshly injected packets).
    pub in_port: Port,
    /// Destination coordinate.
    pub dst: Coord,
    /// True once the packet is in the escape sub-network.
    pub escape: bool,
    /// Power state of the grid neighbor in each direction (`None` at grid
    /// edges, even on a torus). This is the PSR register contents.
    pub neighbors: [Option<PowerState>; 4],
}

impl RouteCtx {
    /// True if the physical neighbor in `d` exists and is powered on
    /// (Active or Draining).
    #[inline]
    pub fn neighbor_powered(&self, d: Dir) -> bool {
        self.neighbors[d.index()].is_some_and(|s| s.is_powered())
    }

    /// True if a neighbor exists in `d`.
    #[inline]
    pub fn neighbor_exists(&self, d: Dir) -> bool {
        self.neighbors[d.index()].is_some()
    }
}

/// Dimension-ordered YX routing: traverse Y first, then X.
///
/// Pure function of (current, destination); deadlock-free on a mesh because
/// the only turns it takes are from Y-travel into X-travel.
#[inline]
pub fn yx_route(at: Coord, dst: Coord) -> Port {
    if at == dst {
        Port::Local
    } else if dst.y > at.y {
        Port::North
    } else if dst.y < at.y {
        Port::South
    } else if dst.x > at.x {
        Port::East
    } else {
        Port::West
    }
}

/// XY routing (dual of YX); used by tests and ablations.
#[inline]
pub fn xy_route(at: Coord, dst: Coord) -> Port {
    if at == dst {
        Port::Local
    } else if dst.x > at.x {
        Port::East
    } else if dst.x < at.x {
        Port::West
    } else if dst.y > at.y {
        Port::North
    } else {
        Port::South
    }
}

/// Wrap-minimal dimension-ordered YX routing on a `kx x ky` torus: finish
/// the Y dimension first (shorter wrap direction; ties go North), then X
/// (ties go East). Mirrors [`yx_route`]'s Y-then-X discipline, so the only
/// turns are Y-travel into X-travel; the cyclic dependency that wrap links
/// add within a dimension is broken by the escape sub-network (Duato),
/// which is why torus configs require `escape_vcs >= 1`.
#[inline]
pub fn torus_yx_route(at: Coord, dst: Coord, kx: u16, ky: u16) -> Port {
    if at == dst {
        return Port::Local;
    }
    if at.y != dst.y {
        let up = (dst.y + ky - at.y) % ky;
        let down = ky - up;
        return if up <= down { Port::North } else { Port::South };
    }
    let east = (dst.x + kx - at.x) % kx;
    let west = kx - east;
    if east <= west {
        Port::East
    } else {
        Port::West
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn yx_reaches_destination() {
        let k = 8;
        for s in 0..64u16 {
            for d in 0..64u16 {
                let mut at = Coord::of(s, k);
                let dst = Coord::of(d, k);
                let mut hops = 0;
                loop {
                    let p = yx_route(at, dst);
                    if p == Port::Local {
                        break;
                    }
                    at = at.neighbor(p.dir().unwrap(), k).expect("yx walked off the mesh");
                    hops += 1;
                    assert!(hops <= 14, "yx not minimal");
                }
                assert_eq!(at, dst);
                assert_eq!(hops, Coord::of(s, k).manhattan(dst));
            }
        }
    }

    #[test]
    fn yx_goes_y_first() {
        let at = Coord::new(2, 2);
        let dst = Coord::new(5, 6);
        assert_eq!(yx_route(at, dst), Port::North);
        let dst2 = Coord::new(5, 2);
        assert_eq!(yx_route(at, dst2), Port::East);
    }

    #[test]
    fn xy_goes_x_first() {
        let at = Coord::new(2, 2);
        let dst = Coord::new(5, 6);
        assert_eq!(xy_route(at, dst), Port::East);
        let dst2 = Coord::new(2, 6);
        assert_eq!(xy_route(at, dst2), Port::North);
    }

    #[test]
    fn local_when_arrived() {
        let c = Coord::new(3, 3);
        assert_eq!(yx_route(c, c), Port::Local);
        assert_eq!(xy_route(c, c), Port::Local);
    }

    #[test]
    fn torus_yx_takes_the_short_way_round() {
        let (kx, ky) = (8, 8);
        // (0,0) -> (6,0): west-wrap (2 hops) beats east (6 hops).
        assert_eq!(torus_yx_route(Coord::new(0, 0), Coord::new(6, 0), kx, ky), Port::West);
        // (0,0) -> (0,6): south-wrap.
        assert_eq!(torus_yx_route(Coord::new(0, 0), Coord::new(0, 6), kx, ky), Port::South);
        // Ties (distance 4 either way) go North / East.
        assert_eq!(torus_yx_route(Coord::new(0, 0), Coord::new(0, 4), kx, ky), Port::North);
        assert_eq!(torus_yx_route(Coord::new(0, 0), Coord::new(4, 0), kx, ky), Port::East);
        // Y is finished before X, as in yx_route.
        assert_eq!(torus_yx_route(Coord::new(2, 2), Coord::new(5, 6), kx, ky), Port::North);
        assert_eq!(torus_yx_route(Coord::new(3, 3), Coord::new(3, 3), kx, ky), Port::Local);
    }

    #[test]
    fn torus_yx_reaches_destination_minimally() {
        let (kx, ky) = (5u16, 4u16);
        let wrap = |c: Coord, d: Dir| {
            let (dx, dy) = d.delta();
            Coord::new(
                (c.x as i32 + dx).rem_euclid(kx as i32) as u16,
                (c.y as i32 + dy).rem_euclid(ky as i32) as u16,
            )
        };
        let tdist = |a: Coord, b: Coord| {
            let dx = (b.x + kx - a.x) % kx;
            let dy = (b.y + ky - a.y) % ky;
            dx.min(kx - dx) as u32 + dy.min(ky - dy) as u32
        };
        for s in 0..kx * ky {
            for d in 0..kx * ky {
                let mut at = Coord { x: s % kx, y: s / kx };
                let dst = Coord { x: d % kx, y: d / kx };
                let expect = tdist(at, dst);
                let mut hops = 0;
                loop {
                    let p = torus_yx_route(at, dst, kx, ky);
                    if p == Port::Local {
                        break;
                    }
                    at = wrap(at, p.dir().unwrap());
                    hops += 1;
                    assert!(hops <= expect, "torus yx not minimal for {s}->{d}");
                }
                assert_eq!(at, dst);
                assert_eq!(hops, expect);
            }
        }
    }

    #[test]
    fn ctx_neighbor_predicates() {
        let ctx = RouteCtx {
            kx: 8,
            ky: 8,
            torus: false,
            at: Coord::new(0, 0),
            in_port: Port::Local,
            dst: Coord::new(3, 3),
            escape: false,
            neighbors: [
                Some(PowerState::Active),
                Some(PowerState::Sleep),
                None,
                Some(PowerState::Draining),
            ],
        };
        assert!(ctx.neighbor_powered(Dir::North));
        assert!(!ctx.neighbor_powered(Dir::East)); // asleep
        assert!(!ctx.neighbor_powered(Dir::South)); // edge
        assert!(ctx.neighbor_powered(Dir::West)); // draining counts as powered
        assert!(ctx.neighbor_exists(Dir::East));
        assert!(!ctx.neighbor_exists(Dir::South));
    }
}
