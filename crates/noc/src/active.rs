//! Fixed-capacity index sets for the active-set kernel.
//!
//! The kernel keeps one [`ActiveSet`] per schedulable resource class
//! (routers with latched flits, routers with buffered flits, NICs with
//! backlog, channels with in-flight traffic). Producers *mark* an index
//! whenever they hand that resource work; the consuming phase iterates the
//! marked indices in ascending order — the same relative order as the full
//! scan it replaces, which is what keeps the two kernels bit-identical —
//! and *lazily unmarks* entries it finds idle.
//!
//! Membership is a plain bitset, so marking an already-marked index is a
//! cheap idempotent OR: producers never need to know whether the consumer
//! has already seen the index.

/// A set of indices in `0..capacity`, iterated in ascending order.
#[derive(Clone, Debug)]
pub struct ActiveSet {
    words: Vec<u64>,
    capacity: usize,
}

impl ActiveSet {
    /// An empty set over `0..capacity`.
    pub fn new(capacity: usize) -> ActiveSet {
        ActiveSet { words: vec![0; capacity.div_ceil(64)], capacity }
    }

    /// Number of indices the set can hold.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Mark `i` as active (idempotent).
    #[inline]
    pub fn insert(&mut self, i: usize) {
        debug_assert!(i < self.capacity);
        self.words[i / 64] |= 1 << (i % 64);
    }

    /// Unmark `i` (idempotent).
    #[inline]
    pub fn remove(&mut self, i: usize) {
        debug_assert!(i < self.capacity);
        self.words[i / 64] &= !(1 << (i % 64));
    }

    /// True if `i` is marked.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        debug_assert!(i < self.capacity);
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// Number of marked indices.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True if nothing is marked.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Replace `out` with the marked indices in ascending order. The caller
    /// iterates the snapshot while mutating the set (lazy removal) and the
    /// structures it guards; indices marked mid-iteration are picked up on
    /// the next collection, which is correct for the kernel because every
    /// in-phase send targets a strictly later cycle.
    pub fn collect_into(&self, out: &mut Vec<u32>) {
        out.clear();
        for (wi, &word) in self.words.iter().enumerate() {
            let mut w = word;
            while w != 0 {
                let bit = w.trailing_zeros() as usize;
                out.push((wi * 64 + bit) as u32);
                w &= w - 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = ActiveSet::new(200);
        assert!(s.is_empty());
        s.insert(0);
        s.insert(63);
        s.insert(64);
        s.insert(199);
        s.insert(64); // idempotent
        assert!(s.contains(0) && s.contains(63) && s.contains(64) && s.contains(199));
        assert!(!s.contains(1) && !s.contains(198));
        assert_eq!(s.len(), 4);
        s.remove(63);
        s.remove(63); // idempotent
        assert!(!s.contains(63));
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn collect_is_ascending_and_complete() {
        let mut s = ActiveSet::new(300);
        for i in [257, 3, 128, 64, 63, 0, 299] {
            s.insert(i);
        }
        let mut out = vec![999]; // collect_into must clear stale contents
        s.collect_into(&mut out);
        assert_eq!(out, vec![0, 3, 63, 64, 128, 257, 299]);
    }

    #[test]
    fn empty_and_full_words() {
        let mut s = ActiveSet::new(128);
        for i in 0..128 {
            s.insert(i);
        }
        assert_eq!(s.len(), 128);
        let mut out = Vec::new();
        s.collect_into(&mut out);
        assert_eq!(out.len(), 128);
        assert!(out.windows(2).all(|w| w[0] < w[1]));
        for i in 0..128 {
            s.remove(i);
        }
        assert!(s.is_empty());
    }
}
