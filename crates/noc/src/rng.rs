//! Embedded deterministic PRNG.
//!
//! The simulation kernel must produce bit-identical results across platforms
//! and `rand` versions, so it carries its own xoshiro256** implementation
//! seeded through SplitMix64 (the reference seeding procedure from Blackman &
//! Vigna). Workload crates may still use `rand` for convenience; everything
//! on the simulated critical path uses this generator.

/// SplitMix64 step, used to expand a 64-bit seed into xoshiro state.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256** generator: fast, high quality, and fully deterministic.
#[derive(Clone, Debug)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Create a generator from a 64-bit seed. Any seed (including 0) is valid.
    pub fn new(seed: u64) -> Rng {
        let mut sm = seed;
        let s =
            [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)];
        Rng { s }
    }

    /// Derive an independent stream for a sub-component (e.g. per node).
    pub fn fork(&mut self, tag: u64) -> Rng {
        Rng::new(self.next_u64() ^ tag.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, bound)`. `bound` must be non-zero.
    ///
    /// Uses Lemire's multiply-shift rejection method: unbiased and avoids the
    /// modulo on the hot path.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        let mut x = self.next_u64();
        let mut m = (x as u128).wrapping_mul(bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let t = bound.wrapping_neg() % bound;
            while lo < t {
                x = self.next_u64();
                m = (x as u128).wrapping_mul(bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        // 53 high-quality mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with probability `p`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Number of failures before the first success of a Bernoulli(`p`)
    /// process — a geometric sample with support `{0, 1, 2, ...}` and
    /// `P(X = 0) = p`. Summing `1 + geometric0(p)` reproduces the gap
    /// distribution of per-cycle `chance(p)` trials exactly, which is what
    /// lets the synthetic workload precompute each node's next injection
    /// cycle instead of drawing every cycle. `p` must be in `(0, 1]`.
    #[inline]
    pub fn geometric0(&mut self, p: f64) -> u64 {
        debug_assert!(p > 0.0 && p <= 1.0, "geometric0 needs p in (0, 1], got {p}");
        if p >= 1.0 {
            return 0;
        }
        // Inversion: floor(ln(U) / ln(1-p)) with U in (0, 1]. f64() returns
        // [0, 1); map the (2^-53-probable) zero to a resample rather than
        // ln(0) = -inf. The cast saturates, so tiny p cannot overflow.
        let u = loop {
            let u = self.f64();
            if u > 0.0 {
                break u;
            }
        };
        (u.ln() / (1.0 - p).ln()) as u64
    }

    /// Pick a uniformly random element of a non-empty slice.
    #[inline]
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.below(xs.len() as u64) as usize]
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = Rng::new(0);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(r.next_u64());
        }
        assert_eq!(seen.len(), 100);
    }

    #[test]
    fn below_respects_bound() {
        let mut r = Rng::new(7);
        for bound in [1u64, 2, 3, 10, 63, 64, 1000] {
            for _ in 0..200 {
                assert!(r.below(bound) < bound);
            }
        }
    }

    #[test]
    fn below_is_roughly_uniform() {
        let mut r = Rng::new(11);
        let mut counts = [0usize; 8];
        let n = 80_000;
        for _ in 0..n {
            counts[r.below(8) as usize] += 1;
        }
        let expect = n / 8;
        for c in counts {
            assert!((c as i64 - expect as i64).abs() < expect as i64 / 10);
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::new(3);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v = r.f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02);
    }

    #[test]
    fn chance_extremes() {
        let mut r = Rng::new(9);
        for _ in 0..100 {
            assert!(!r.chance(0.0));
            assert!(r.chance(1.0));
        }
    }

    #[test]
    fn geometric0_matches_bernoulli_gap_distribution() {
        // Mean of geometric0(p) is (1-p)/p; certainty means zero failures.
        let mut r = Rng::new(17);
        for _ in 0..16 {
            assert_eq!(r.geometric0(1.0), 0);
        }
        for p in [0.5, 0.1, 0.01] {
            let n = 40_000;
            let sum: u64 = (0..n).map(|_| r.geometric0(p)).sum();
            let mean = sum as f64 / n as f64;
            let expect = (1.0 - p) / p;
            assert!((mean - expect).abs() < expect * 0.1 + 0.02, "p={p}: mean {mean} vs {expect}");
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Rng::new(5);
        let mut xs: Vec<u32> = (0..50).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut root = Rng::new(1234);
        let mut a = root.fork(1);
        let mut b = root.fork(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn known_reference_values() {
        // Locks the generator output so accidental algorithm changes are
        // caught: reproducibility of every experiment depends on it.
        let mut r = Rng::new(0xDEADBEEF);
        let v: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        let mut r2 = Rng::new(0xDEADBEEF);
        let w: Vec<u64> = (0..4).map(|_| r2.next_u64()).collect();
        assert_eq!(v, w);
        assert_ne!(v[0], v[1]);
    }
}
