//! Input VC buffers and credit counters.

use crate::flit::Flit;
use std::collections::VecDeque;

/// A fixed-capacity FIFO of flits backing one virtual channel.
///
/// Capacity is enforced: pushing into a full buffer is a simulator bug (the
/// credit protocol must prevent it) and panics in debug and release alike,
/// because silent overflow would invalidate every result downstream.
#[derive(Clone, Debug)]
pub struct VcBuffer {
    slots: VecDeque<Flit>,
    cap: usize,
}

impl VcBuffer {
    pub fn new(cap: usize) -> VcBuffer {
        assert!(cap >= 1);
        VcBuffer { slots: VecDeque::with_capacity(cap), cap }
    }

    #[inline]
    pub fn capacity(&self) -> usize {
        self.cap
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    #[inline]
    pub fn is_full(&self) -> bool {
        self.slots.len() == self.cap
    }

    #[inline]
    pub fn free(&self) -> usize {
        self.cap - self.slots.len()
    }

    /// Append a flit. Panics on overflow: credits must have prevented this.
    #[inline]
    pub fn push(&mut self, f: Flit) {
        assert!(
            self.slots.len() < self.cap,
            "VC buffer overflow: credit protocol violated (packet {}, flit {})",
            f.packet,
            f.flit_idx
        );
        self.slots.push_back(f);
    }

    /// Front flit, if any.
    #[inline]
    pub fn front(&self) -> Option<&Flit> {
        self.slots.front()
    }

    /// Mutable front flit, if any.
    #[inline]
    pub fn front_mut(&mut self) -> Option<&mut Flit> {
        self.slots.front_mut()
    }

    /// Remove and return the front flit.
    #[inline]
    pub fn pop(&mut self) -> Option<Flit> {
        self.slots.pop_front()
    }

    /// Iterate over buffered flits front-to-back.
    pub fn iter(&self) -> impl Iterator<Item = &Flit> {
        self.slots.iter()
    }
}

/// Credit counter an upstream router keeps for one downstream VC.
///
/// Tracks the free buffer slots of the *logical* downstream neighbor's input
/// VC; the FLOV credit-copy protocol re-seeds it on power transitions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CreditCounter {
    avail: u16,
    cap: u16,
}

impl CreditCounter {
    pub fn new_full(cap: usize) -> CreditCounter {
        CreditCounter { avail: cap as u16, cap: cap as u16 }
    }

    #[inline]
    pub fn available(&self) -> usize {
        self.avail as usize
    }

    #[inline]
    pub fn has_credit(&self) -> bool {
        self.avail > 0
    }

    /// Consume one credit when a flit is sent downstream.
    #[inline]
    pub fn consume(&mut self) {
        assert!(self.avail > 0, "credit underflow: flow control violated");
        self.avail -= 1;
    }

    /// Return one credit when the downstream frees a slot.
    #[inline]
    pub fn refund(&mut self) {
        assert!(self.avail < self.cap, "credit overflow: more refunds than slots");
        self.avail += 1;
    }

    /// Zero the counter (paper Fig. 3(d): on downstream sleep, credits are
    /// zeroed before the relayed copy arrives).
    #[inline]
    pub fn zero(&mut self) {
        self.avail = 0;
    }

    /// Seed the counter with an absolute value (credit-copy on sleep, or
    /// set-to-full on wakeup).
    #[inline]
    pub fn set(&mut self, avail: usize) {
        assert!(avail <= self.cap as usize, "credit seed above buffer capacity");
        self.avail = avail as u16;
    }

    #[inline]
    pub fn set_full(&mut self) {
        self.avail = self.cap;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flit::FlitKind;
    use crate::types::Cycle;

    fn flit(i: u16) -> Flit {
        Flit {
            packet: 1,
            kind: FlitKind::of(i, 8),
            src: 0,
            dst: 1,
            vnet: 0,
            vc: 0,
            escape: false,
            flit_idx: i,
            pkt_len: 8,
            birth: 0 as Cycle,
            inject: 0,
            hops_router: 0,
            hops_flov: 0,
            hops_link: 0,
            payload: Flit::expected_payload(1, i),
        }
    }

    #[test]
    fn fifo_order_preserved() {
        let mut b = VcBuffer::new(6);
        for i in 0..6 {
            b.push(flit(i));
        }
        assert!(b.is_full());
        for i in 0..6 {
            assert_eq!(b.pop().unwrap().flit_idx, i);
        }
        assert!(b.is_empty());
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn overflow_panics() {
        let mut b = VcBuffer::new(2);
        b.push(flit(0));
        b.push(flit(1));
        b.push(flit(2));
    }

    #[test]
    fn free_tracks_occupancy() {
        let mut b = VcBuffer::new(4);
        assert_eq!(b.free(), 4);
        b.push(flit(0));
        assert_eq!(b.free(), 3);
        b.pop();
        assert_eq!(b.free(), 4);
    }

    #[test]
    fn credit_lifecycle() {
        let mut c = CreditCounter::new_full(6);
        assert_eq!(c.available(), 6);
        c.consume();
        c.consume();
        assert_eq!(c.available(), 4);
        c.refund();
        assert_eq!(c.available(), 5);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn credit_underflow_panics() {
        let mut c = CreditCounter::new_full(1);
        c.consume();
        c.consume();
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn credit_overflow_panics() {
        let mut c = CreditCounter::new_full(1);
        c.refund();
    }

    #[test]
    fn credit_copy_protocol_ops() {
        let mut c = CreditCounter::new_full(6);
        c.zero();
        assert!(!c.has_credit());
        c.set(4);
        assert_eq!(c.available(), 4);
        c.set_full();
        assert_eq!(c.available(), 6);
    }
}
