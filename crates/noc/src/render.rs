//! Diagnostics rendering: ASCII views of the mesh power states, buffer
//! occupancy, and link-utilization hotspots. Used by examples, tests and
//! interactive debugging — not by the hot loop.

use crate::network::NetworkCore;
use crate::types::{Coord, Dir, NodeId, PowerState};
use std::fmt::Write as _;

/// One-character glyph for a router power state.
pub fn power_glyph(s: PowerState) -> char {
    match s {
        PowerState::Active => 'A',
        PowerState::Draining => 'd',
        PowerState::Sleep => '.',
        PowerState::Wakeup => 'w',
    }
}

/// Render the mesh power-state map, north row first.
///
/// ```text
/// y=3  A A . A
/// y=2  A . . A
/// y=1  A A d A
/// y=0  A A A A
/// ```
pub fn power_map(core: &NetworkCore) -> String {
    let (kx, ky) = (core.k(), core.ky());
    let mut out = String::new();
    for y in (0..ky).rev() {
        let _ = write!(out, "y={y:<2} ");
        for x in 0..kx {
            let n = Coord::new(x, y).id(kx);
            let mut g = power_glyph(core.power(n));
            if !core.router_core_active(n) && g == 'A' {
                g = 'a'; // powered router, all attached cores gated
            }
            let _ = write!(out, " {g}");
        }
        out.push('\n');
    }
    out
}

/// Render buffered-flit counts per router (single hex-ish digit, capped).
pub fn occupancy_map(core: &NetworkCore) -> String {
    let (kx, ky) = (core.k(), core.ky());
    let mut out = String::new();
    for y in (0..ky).rev() {
        let _ = write!(out, "y={y:<2} ");
        for x in 0..kx {
            let n = Coord::new(x, y).id(kx);
            let occ = core.routers[n as usize].buffered_flits();
            let c = match occ {
                0 => '.',
                1..=9 => char::from_digit(occ, 10).unwrap(),
                _ => '+',
            };
            let _ = write!(out, " {c}");
        }
        out.push('\n');
    }
    out
}

/// Summary statistics of directed-link utilization: `(max, mean, gini)`.
/// The Gini coefficient quantifies hotspotting — RP's detour concentration
/// shows up as a higher value than FLOV's.
pub fn link_util_summary(core: &NetworkCore) -> (u64, f64, f64) {
    let mut used: Vec<u64> = Vec::new();
    for n in 0..core.nodes() as NodeId {
        for d in Dir::ALL {
            if core.neighbor(n, d).is_some() {
                used.push(core.link_util[n as usize * 4 + d.index()]);
            }
        }
    }
    let max = used.iter().copied().max().unwrap_or(0);
    let sum: u64 = used.iter().sum();
    let mean = sum as f64 / used.len() as f64;
    // Gini via the sorted-rank formula.
    let mut sorted = used.clone();
    sorted.sort_unstable();
    let n = sorted.len() as f64;
    let gini = if sum == 0 {
        0.0
    } else {
        let weighted: f64 =
            sorted.iter().enumerate().map(|(i, &v)| (i as f64 + 1.0) * v as f64).sum();
        (2.0 * weighted) / (n * sum as f64) - (n + 1.0) / n
    };
    (max, mean, gini)
}

/// Render the east-going link utilization as a heatmap of digits 0-9
/// normalized to the maximum (coarse hotspot view).
pub fn eastlink_heatmap(core: &NetworkCore) -> String {
    let (kx, ky) = (core.k(), core.ky());
    let (max, _, _) = link_util_summary(core);
    let mut out = String::new();
    for y in (0..ky).rev() {
        let _ = write!(out, "y={y:<2} ");
        for x in 0..kx - 1 {
            let n = Coord::new(x, y).id(kx);
            let u = core.link_util[n as usize * 4 + Dir::East.index()];
            let level = if max == 0 { 0 } else { (u * 9 / max.max(1)) as u32 };
            let _ = write!(out, " {}", char::from_digit(level, 10).unwrap());
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::AlwaysOnYx;
    use crate::config::NocConfig;
    use crate::network::Simulation;
    use crate::traits::{PacketRequest, ScriptedWorkload};

    fn sim_after_traffic() -> Simulation {
        let cfg = NocConfig::small_test();
        let mut events = Vec::new();
        for i in 0..20u64 {
            events.push((i * 5, PacketRequest { src: 0, dst: 15, vnet: 0, len: 4 }));
        }
        let mut sim =
            Simulation::new(cfg, Box::new(AlwaysOnYx), Box::new(ScriptedWorkload::new(events)));
        sim.run_until_done(20_000);
        sim
    }

    #[test]
    fn power_map_shows_all_active() {
        let sim = sim_after_traffic();
        let map = power_map(&sim.core);
        assert_eq!(map.lines().count(), 4);
        assert_eq!(map.matches('A').count(), 16);
        assert!(!map.contains('.'));
    }

    #[test]
    fn power_map_distinguishes_states() {
        let cfg = NocConfig::small_test();
        let mut sim =
            Simulation::new(cfg, Box::new(AlwaysOnYx), Box::new(crate::traits::SilentWorkload));
        sim.core.begin_drain(5);
        sim.core.core_active[6] = false;
        let map = power_map(&sim.core);
        assert_eq!(map.matches('d').count(), 1);
        assert_eq!(map.matches('a').count(), 1);
    }

    #[test]
    fn occupancy_map_is_empty_after_drain() {
        let sim = sim_after_traffic();
        let map = occupancy_map(&sim.core);
        // Every cell renders '.', i.e. zero buffered flits (the row labels
        // are the only digits).
        assert_eq!(map.matches('.').count(), 16);
        assert!(!map.contains('+'));
    }

    #[test]
    fn link_util_counts_traffic() {
        let sim = sim_after_traffic();
        let (max, mean, gini) = link_util_summary(&sim.core);
        // 20 packets x 4 flits went (0,0)->(3,3) via YX: column 0 north
        // links are hot.
        assert!(max >= 80, "max link util {max}");
        assert!(mean > 0.0);
        // All traffic on one path: highly unequal.
        assert!(gini > 0.5, "gini {gini}");
        let north0 = sim.core.link_util[Dir::North.index()];
        assert_eq!(north0, 80);
    }

    #[test]
    fn heatmap_renders_rows() {
        let sim = sim_after_traffic();
        let hm = eastlink_heatmap(&sim.core);
        assert_eq!(hm.lines().count(), 4);
    }

    #[test]
    fn idle_network_has_zero_gini() {
        let cfg = NocConfig::small_test();
        let sim =
            Simulation::new(cfg, Box::new(AlwaysOnYx), Box::new(crate::traits::SilentWorkload));
        let (max, mean, gini) = link_util_summary(&sim.core);
        assert_eq!(max, 0);
        assert_eq!(mean, 0.0);
        assert_eq!(gini, 0.0);
    }
}
