//! Network interface controllers: per-node source queues (with serialization
//! state) and destination-side packet reassembly.

use crate::flit::Flit;
use crate::packet::{DeliveredPacket, Packet};
use crate::types::{Cycle, PacketId};
use std::collections::{HashMap, VecDeque};

/// Serialization state of the packet currently being injected on one vnet.
#[derive(Clone, Copy, Debug)]
pub struct InjectState {
    pub pkt: Packet,
    /// Next flit index to inject.
    pub next: u16,
    /// Local-port VC (within the vnet) the packet is being written into.
    pub vc: u8,
}

#[derive(Clone, Copy, Debug, Default)]
struct RxState {
    received: u16,
    head_inject: Cycle,
}

/// One node's NIC.
#[derive(Clone, Debug)]
pub struct Nic {
    /// Source queues, one per vnet. Unbounded: generation back-pressure is a
    /// statistic (queueing delay), not a drop.
    pub queues: Vec<VecDeque<Packet>>,
    /// In-flight serialization per vnet.
    pub in_progress: Vec<Option<InjectState>>,
    /// Round-robin pointer over vnets for the 1 flit/cycle injection port.
    pub vnet_rr: usize,
    rx: HashMap<PacketId, RxState>,
    /// Peak source-queue depth observed, in packets (congestion statistic).
    pub peak_queue: usize,
}

impl Nic {
    pub fn new(vnets: usize) -> Nic {
        Nic {
            queues: (0..vnets).map(|_| VecDeque::new()).collect(),
            in_progress: vec![None; vnets],
            vnet_rr: 0,
            rx: HashMap::new(),
            peak_queue: 0,
        }
    }

    /// Queue a packet for injection.
    pub fn enqueue(&mut self, p: Packet) {
        let q = &mut self.queues[p.vnet as usize];
        q.push_back(p);
        let depth: usize = self.queues.iter().map(|q| q.len()).sum();
        self.peak_queue = self.peak_queue.max(depth);
    }

    /// True if any packet is queued or mid-serialization.
    pub fn pending(&self) -> bool {
        self.in_progress.iter().any(|s| s.is_some()) || self.queues.iter().any(|q| !q.is_empty())
    }

    /// Total queued packets (not counting the ones mid-serialization).
    pub fn queued_packets(&self) -> usize {
        self.queues.iter().map(|q| q.len()).sum()
    }

    /// Accept one ejected flit; returns the completed packet record when the
    /// tail arrives. Panics on integrity violations — a corrupted or
    /// misdelivered flit invalidates the whole simulation.
    pub fn receive(&mut self, f: Flit, now: Cycle, at_node: u16) -> Option<DeliveredPacket> {
        assert!(f.integrity_ok(), "flit payload corrupted in transit (packet {})", f.packet);
        assert_eq!(f.dst, at_node, "flit misdelivered: dst {} arrived at {}", f.dst, at_node);
        let st = self.rx.entry(f.packet).or_default();
        assert_eq!(
            st.received, f.flit_idx,
            "flit reordering within packet {}: expected idx {}, got {}",
            f.packet, st.received, f.flit_idx
        );
        if f.kind.is_head() {
            st.head_inject = f.inject;
        }
        st.received += 1;
        if f.kind.is_tail() {
            let st = self.rx.remove(&f.packet).unwrap();
            assert_eq!(
                st.received, f.pkt_len,
                "tail arrived before all flits of packet {}",
                f.packet
            );
            Some(DeliveredPacket {
                id: f.packet,
                src: f.src,
                dst: f.dst,
                vnet: f.vnet,
                len: f.pkt_len,
                birth: f.birth,
                inject: st.head_inject,
                eject: now,
                hops_router: f.hops_router,
                hops_flov: f.hops_flov,
                hops_link: f.hops_link,
                used_escape: f.escape,
            })
        } else {
            None
        }
    }

    /// Packets currently being reassembled (in-flight toward this NIC).
    pub fn partial_rx(&self) -> usize {
        self.rx.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flit::FlitKind;

    fn packet(id: PacketId, len: u16) -> Packet {
        Packet { id, src: 1, dst: 2, vnet: 0, len, birth: 5 }
    }

    #[test]
    fn reassembly_completes_on_tail() {
        let mut nic = Nic::new(1);
        let p = packet(7, 4);
        for i in 0..4 {
            let mut f = p.flit(i, 10 + i as u64);
            f.hops_router = 3;
            let r = nic.receive(f, 20 + i as u64, 2);
            if i < 3 {
                assert!(r.is_none());
            } else {
                let d = r.unwrap();
                assert_eq!(d.id, 7);
                assert_eq!(d.inject, 10);
                assert_eq!(d.eject, 23);
                assert_eq!(d.len, 4);
                assert_eq!(d.hops_router, 3);
            }
        }
        assert_eq!(nic.partial_rx(), 0);
    }

    #[test]
    fn interleaved_packets_reassemble_independently() {
        let mut nic = Nic::new(1);
        let a = packet(1, 2);
        let b = packet(2, 2);
        assert!(nic.receive(a.flit(0, 0), 10, 2).is_none());
        assert!(nic.receive(b.flit(0, 1), 11, 2).is_none());
        assert!(nic.receive(a.flit(1, 2), 12, 2).is_some());
        assert!(nic.receive(b.flit(1, 3), 13, 2).is_some());
    }

    #[test]
    #[should_panic(expected = "corrupted")]
    fn corruption_is_fatal() {
        let mut nic = Nic::new(1);
        let mut f = packet(3, 1).flit(0, 0);
        f.payload ^= 1;
        nic.receive(f, 10, 2);
    }

    #[test]
    #[should_panic(expected = "misdelivered")]
    fn misdelivery_is_fatal() {
        let mut nic = Nic::new(1);
        let f = packet(3, 1).flit(0, 0);
        nic.receive(f, 10, 9);
    }

    #[test]
    #[should_panic(expected = "reordering")]
    fn reordering_is_fatal() {
        let mut nic = Nic::new(1);
        let p = packet(4, 3);
        nic.receive(p.flit(0, 0), 10, 2);
        nic.receive(p.flit(2, 2), 11, 2);
    }

    #[test]
    fn single_flit_packet_completes_immediately() {
        let mut nic = Nic::new(1);
        let p = packet(5, 1);
        let d = nic.receive(p.flit(0, 9), 15, 2).unwrap();
        assert_eq!(d.inject, 9);
        assert_eq!(d.eject, 15);
        assert_eq!(d.serialization_latency(), 0);
    }

    #[test]
    fn queue_accounting() {
        let mut nic = Nic::new(2);
        assert!(!nic.pending());
        nic.enqueue(packet(1, 4));
        nic.enqueue(Packet { vnet: 1, ..packet(2, 4) });
        assert!(nic.pending());
        assert_eq!(nic.queued_packets(), 2);
        assert_eq!(nic.peak_queue, 2);
        assert_eq!(FlitKind::of(0, 4), FlitKind::Head);
    }
}
