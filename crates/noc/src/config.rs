//! Simulation configuration (paper Table I).

use serde::{Deserialize, Serialize};

/// Configuration of the simulated NoC.
///
/// Defaults reproduce Table I of the paper:
/// 8x8 mesh, 3-stage routers at 2 GHz, 6-flit input buffers, 3 regular VCs +
/// 1 escape VC per virtual network, 3 virtual networks, 1-cycle 16-byte
/// links, 10-cycle wakeup latency and 17.7 pJ power-gating overhead.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct NocConfig {
    /// Mesh radix: the network is a `k x k` 2D mesh.
    pub k: u16,
    /// Number of virtual networks (message classes).
    pub vnets: usize,
    /// Regular (non-escape) VCs per vnet per input port.
    pub regular_vcs: usize,
    /// Escape VCs per vnet (Duato deadlock recovery); the escape VC is the
    /// last VC index of each vnet.
    pub escape_vcs: usize,
    /// Input buffer depth, in flits, per VC.
    pub buf_depth: usize,
    /// Router pipeline depth in cycles (RC / VA+SA / ST).
    pub pipeline_stages: u32,
    /// Link traversal latency, cycles.
    pub link_latency: u32,
    /// Cycles a power-gated router needs to ramp power back up.
    pub wakeup_latency: u32,
    /// Cycles of local-port inactivity before a router with a gated core
    /// initiates the drain handshake.
    pub idle_threshold: u32,
    /// Head-flit wait (cycles) after which a packet is diverted into the
    /// escape sub-network (Duato timeout recovery).
    pub escape_timeout: u32,
    /// Flits per packet for synthetic traffic.
    pub synth_packet_len: u16,
    /// Router/link clock frequency in Hz (2 GHz in the paper).
    pub clock_hz: f64,
    /// Maximum queued flits per NIC source queue before generation back-
    /// pressure is reported (statistics only; the queue itself is unbounded).
    pub nic_queue_warn: usize,
    /// Enable the NoRD bypass ring (node-router decoupling): a Hamiltonian
    /// ring over all NICs that keeps gated nodes reachable without FLOV
    /// links. Requires even `k` (no Hamiltonian cycle exists otherwise —
    /// the paper's critique of NoRD), at most 256 nodes, and at least two
    /// regular VCs (ring-to-mesh transfers reserve the last one).
    pub enable_ring: bool,
    /// Seed for all simulation-internal randomness (arbitration tie-breaks
    /// are deterministic; this seeds workload-facing RNG forks).
    pub seed: u64,
    /// Cycles without any network event after which the watchdog declares a
    /// deadlock (0 disables).
    pub watchdog_cycles: u64,
}

impl Default for NocConfig {
    fn default() -> Self {
        NocConfig {
            k: 8,
            vnets: 3,
            regular_vcs: 3,
            escape_vcs: 1,
            buf_depth: 6,
            pipeline_stages: 3,
            link_latency: 1,
            wakeup_latency: 10,
            idle_threshold: 16,
            escape_timeout: 128,
            synth_packet_len: 4,
            clock_hz: 2.0e9,
            nic_queue_warn: 4096,
            enable_ring: false,
            seed: 0xF10F_F10F,
            watchdog_cycles: 50_000,
        }
    }
}

impl NocConfig {
    /// Total VCs per vnet (regular + escape).
    #[inline]
    pub fn vcs_per_vnet(&self) -> usize {
        self.regular_vcs + self.escape_vcs
    }

    /// Total VCs per input port across all vnets.
    #[inline]
    pub fn total_vcs(&self) -> usize {
        self.vnets * self.vcs_per_vnet()
    }

    /// Flattened VC index for `(vnet, vc)`.
    #[inline]
    pub fn vc_index(&self, vnet: usize, vc: usize) -> usize {
        vnet * self.vcs_per_vnet() + vc
    }

    /// Inverse of [`NocConfig::vc_index`].
    #[inline]
    pub fn vc_split(&self, idx: usize) -> (usize, usize) {
        (idx / self.vcs_per_vnet(), idx % self.vcs_per_vnet())
    }

    /// Index (within a vnet) of the escape VC, or `None` if the config has
    /// no escape VCs.
    #[inline]
    pub fn escape_vc(&self) -> Option<usize> {
        if self.escape_vcs > 0 {
            Some(self.regular_vcs)
        } else {
            None
        }
    }

    /// True if `vc` (index within a vnet) is an escape VC.
    #[inline]
    pub fn is_escape_vc(&self, vc: usize) -> bool {
        vc >= self.regular_vcs
    }

    /// Number of nodes in the mesh.
    #[inline]
    pub fn nodes(&self) -> usize {
        self.k as usize * self.k as usize
    }

    /// Validate invariants; panics with a clear message on misconfiguration.
    pub fn validate(&self) {
        assert!(self.k >= 2, "mesh radix must be at least 2");
        assert!(self.vnets >= 1, "at least one vnet required");
        assert!(self.regular_vcs >= 1, "at least one regular VC required");
        assert!(self.escape_vcs <= 1, "at most one escape VC per vnet is supported");
        assert!(self.buf_depth >= 1, "buffers must hold at least one flit");
        assert!(self.pipeline_stages >= 1, "router needs at least one stage");
        assert!(self.link_latency >= 1, "links take at least one cycle");
        assert!(self.synth_packet_len >= 1, "packets have at least one flit");
        assert!(self.escape_timeout >= 1, "escape timeout must be positive");
    }

    /// Convenience: Table I configuration (the defaults).
    pub fn paper_table1() -> Self {
        Self::default()
    }

    /// Small configuration for fast tests: 4x4 mesh, 1 vnet.
    pub fn small_test() -> Self {
        NocConfig { k: 4, vnets: 1, watchdog_cycles: 20_000, ..Self::default() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table1() {
        let c = NocConfig::default();
        assert_eq!(c.k, 8);
        assert_eq!(c.buf_depth, 6);
        assert_eq!(c.regular_vcs, 3);
        assert_eq!(c.escape_vcs, 1);
        assert_eq!(c.vnets, 3);
        assert_eq!(c.pipeline_stages, 3);
        assert_eq!(c.link_latency, 1);
        assert_eq!(c.wakeup_latency, 10);
        assert_eq!(c.synth_packet_len, 4);
        assert_eq!(c.clock_hz, 2.0e9);
        c.validate();
    }

    #[test]
    fn vc_index_roundtrip() {
        let c = NocConfig::default();
        for vnet in 0..c.vnets {
            for vc in 0..c.vcs_per_vnet() {
                let idx = c.vc_index(vnet, vc);
                assert_eq!(c.vc_split(idx), (vnet, vc));
                assert!(idx < c.total_vcs());
            }
        }
    }

    #[test]
    fn escape_vc_is_last() {
        let c = NocConfig::default();
        assert_eq!(c.escape_vc(), Some(3));
        assert!(c.is_escape_vc(3));
        assert!(!c.is_escape_vc(2));
        let no_escape = NocConfig { escape_vcs: 0, ..NocConfig::default() };
        assert_eq!(no_escape.escape_vc(), None);
    }

    #[test]
    #[should_panic(expected = "mesh radix")]
    fn validate_rejects_tiny_mesh() {
        NocConfig { k: 1, ..NocConfig::default() }.validate();
    }

    #[test]
    fn node_count() {
        assert_eq!(NocConfig::default().nodes(), 64);
        assert_eq!(NocConfig::small_test().nodes(), 16);
    }
}
