//! Simulation configuration (paper Table I).

use crate::topology::{AnyTopology, TopologySpec};
use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// A structured configuration rejection from [`NocConfig::validate`].
///
/// The CLI surfaces these as diagnostics instead of panics; library users
/// get them from [`crate::network::NetworkCore::try_new`].
#[derive(Clone, Debug, PartialEq)]
pub enum ConfigError {
    /// Router grid smaller than 2 in some dimension.
    RadixTooSmall { kx: u16, ky: u16 },
    /// Concentrated mesh with zero cores per router.
    ZeroConcentration,
    /// No virtual networks.
    NoVnets,
    /// No regular (non-escape) VCs.
    NoRegularVcs,
    /// More than one escape VC per vnet.
    TooManyEscapeVcs { escape_vcs: usize },
    /// Per-port VC bitmasks hold at most 64 VCs.
    TooManyVcs { total: usize },
    /// Zero-depth input buffers.
    ZeroBufDepth,
    /// Zero-stage router pipeline.
    ZeroPipelineStages,
    /// Zero-cycle links.
    ZeroLinkLatency,
    /// Zero-flit packets.
    ZeroPacketLen,
    /// Zero escape timeout.
    ZeroEscapeTimeout,
    /// NoRD enabled on a topology with no Hamiltonian cycle over its
    /// routers — the paper's §II critique (e.g. an odd-radix mesh).
    RingUnsupported { topology: String },
    /// The ring exit is stamped into the 8-bit flit VC field.
    RingTooLarge { nodes: usize },
    /// Ring-to-mesh transfers reserve the last regular VC.
    RingNeedsTransferVc,
    /// Wrap-minimal torus routing relies on the escape sub-network for
    /// deadlock freedom.
    TorusNeedsEscapeVc,
    /// Synthetic injection rate outside `[0, pkt_len]` flits/cycle/node:
    /// the Bernoulli process caps at one packet per node-cycle, so a
    /// higher request would silently run a clamped experiment.
    OversaturatedRate { rate: f64, pkt_len: u16 },
    /// Ill-formed MMPP/diurnal modulation parameters.
    InvalidModulation { why: &'static str },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::RadixTooSmall { kx, ky } => {
                write!(f, "mesh radix must be at least 2 in each dimension (got {kx}x{ky})")
            }
            ConfigError::ZeroConcentration => {
                write!(f, "concentrated mesh needs at least one core per router")
            }
            ConfigError::NoVnets => write!(f, "at least one vnet required"),
            ConfigError::NoRegularVcs => write!(f, "at least one regular VC required"),
            ConfigError::TooManyEscapeVcs { escape_vcs } => {
                write!(f, "at most one escape VC per vnet is supported (got {escape_vcs})")
            }
            ConfigError::TooManyVcs { total } => {
                write!(f, "per-port VC bitmasks hold at most 64 VCs (got {total})")
            }
            ConfigError::ZeroBufDepth => write!(f, "buffers must hold at least one flit"),
            ConfigError::ZeroPipelineStages => write!(f, "router needs at least one stage"),
            ConfigError::ZeroLinkLatency => write!(f, "links take at least one cycle"),
            ConfigError::ZeroPacketLen => write!(f, "packets have at least one flit"),
            ConfigError::ZeroEscapeTimeout => write!(f, "escape timeout must be positive"),
            ConfigError::RingUnsupported { topology } => write!(
                f,
                "NoRD bypass ring requires a topology with a Hamiltonian cycle over its \
                 routers; {topology} has none (an even mesh radix, one even rectangle side, \
                 or any torus works)"
            ),
            ConfigError::RingTooLarge { nodes } => {
                write!(f, "ring exit stamping supports at most 256 nodes (got {nodes})")
            }
            ConfigError::RingNeedsTransferVc => {
                write!(f, "the ring transfer path reserves one regular VC (need at least 2)")
            }
            ConfigError::TorusNeedsEscapeVc => {
                write!(f, "torus routing needs the escape sub-network (escape_vcs >= 1)")
            }
            ConfigError::OversaturatedRate { rate, pkt_len } => write!(
                f,
                "injection rate {rate} flits/cycle/node exceeds the {pkt_len}-flit packet \
                 length (at most one packet per node-cycle, i.e. rate <= pkt_len) or is not \
                 a finite non-negative number"
            ),
            ConfigError::InvalidModulation { why } => {
                write!(f, "invalid load modulation: {why}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Configuration of the simulated NoC.
///
/// Defaults reproduce Table I of the paper:
/// 8x8 mesh, 3-stage routers at 2 GHz, 6-flit input buffers, 3 regular VCs +
/// 1 escape VC per virtual network, 3 virtual networks, 1-cycle 16-byte
/// links, 10-cycle wakeup latency and 17.7 pJ power-gating overhead.
#[derive(Clone, Debug, PartialEq)]
pub struct NocConfig {
    /// Mesh radix: with no explicit [`NocConfig::topology`], the network is
    /// a square `k x k` 2D mesh (the seed behavior).
    pub k: u16,
    /// Number of virtual networks (message classes).
    pub vnets: usize,
    /// Regular (non-escape) VCs per vnet per input port.
    pub regular_vcs: usize,
    /// Escape VCs per vnet (Duato deadlock recovery); the escape VC is the
    /// last VC index of each vnet.
    pub escape_vcs: usize,
    /// Input buffer depth, in flits, per VC.
    pub buf_depth: usize,
    /// Router pipeline depth in cycles (RC / VA+SA / ST).
    pub pipeline_stages: u32,
    /// Link traversal latency, cycles.
    pub link_latency: u32,
    /// Cycles a power-gated router needs to ramp power back up.
    pub wakeup_latency: u32,
    /// Cycles of local-port inactivity before a router with a gated core
    /// initiates the drain handshake.
    pub idle_threshold: u32,
    /// Head-flit wait (cycles) after which a packet is diverted into the
    /// escape sub-network (Duato timeout recovery).
    pub escape_timeout: u32,
    /// Flits per packet for synthetic traffic.
    pub synth_packet_len: u16,
    /// Router/link clock frequency in Hz (2 GHz in the paper).
    pub clock_hz: f64,
    /// Maximum queued flits per NIC source queue before generation back-
    /// pressure is reported (statistics only; the queue itself is unbounded).
    pub nic_queue_warn: usize,
    /// Enable the NoRD bypass ring (node-router decoupling): a Hamiltonian
    /// ring over all routers that keeps gated nodes reachable without FLOV
    /// links. Requires a topology admitting a Hamiltonian cycle (the
    /// paper's critique of NoRD: a square mesh needs even `k`; a torus or
    /// concentration lifts the restriction), at most 256 routers, and at
    /// least two regular VCs (ring-to-mesh transfers reserve the last one).
    pub enable_ring: bool,
    /// Seed for all simulation-internal randomness (arbitration tie-breaks
    /// are deterministic; this seeds workload-facing RNG forks).
    pub seed: u64,
    /// Cycles without any network event after which the watchdog declares a
    /// deadlock (0 disables).
    pub watchdog_cycles: u64,
    /// Explicit topology selection; `None` means the default square
    /// `k x k` mesh. Serialized (and thus cache-key-affecting) only when
    /// set, so seed configurations keep byte-identical encodings.
    pub topology: Option<TopologySpec>,
}

// `NocConfig` carries a hand-written serde impl instead of the derive:
// the compat shim has no `skip_serializing_if`, and the `topology` field
// must vanish from the encoding when unset so every pre-topology cache
// key and golden JSON stays byte-identical. Field order below mirrors
// the struct declaration (the shim's canonical map order).
impl Serialize for NocConfig {
    fn to_value(&self) -> Value {
        let mut m: Vec<(String, Value)> = vec![
            ("k".into(), self.k.to_value()),
            ("vnets".into(), self.vnets.to_value()),
            ("regular_vcs".into(), self.regular_vcs.to_value()),
            ("escape_vcs".into(), self.escape_vcs.to_value()),
            ("buf_depth".into(), self.buf_depth.to_value()),
            ("pipeline_stages".into(), self.pipeline_stages.to_value()),
            ("link_latency".into(), self.link_latency.to_value()),
            ("wakeup_latency".into(), self.wakeup_latency.to_value()),
            ("idle_threshold".into(), self.idle_threshold.to_value()),
            ("escape_timeout".into(), self.escape_timeout.to_value()),
            ("synth_packet_len".into(), self.synth_packet_len.to_value()),
            ("clock_hz".into(), self.clock_hz.to_value()),
            ("nic_queue_warn".into(), self.nic_queue_warn.to_value()),
            ("enable_ring".into(), self.enable_ring.to_value()),
            ("seed".into(), self.seed.to_value()),
            ("watchdog_cycles".into(), self.watchdog_cycles.to_value()),
        ];
        if let Some(spec) = &self.topology {
            m.push(("topology".into(), spec.to_value()));
        }
        Value::Map(m)
    }
}

impl Deserialize for NocConfig {
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        Ok(NocConfig {
            k: u16::from_value(v.field("k")?)?,
            vnets: usize::from_value(v.field("vnets")?)?,
            regular_vcs: usize::from_value(v.field("regular_vcs")?)?,
            escape_vcs: usize::from_value(v.field("escape_vcs")?)?,
            buf_depth: usize::from_value(v.field("buf_depth")?)?,
            pipeline_stages: u32::from_value(v.field("pipeline_stages")?)?,
            link_latency: u32::from_value(v.field("link_latency")?)?,
            wakeup_latency: u32::from_value(v.field("wakeup_latency")?)?,
            idle_threshold: u32::from_value(v.field("idle_threshold")?)?,
            escape_timeout: u32::from_value(v.field("escape_timeout")?)?,
            synth_packet_len: u16::from_value(v.field("synth_packet_len")?)?,
            clock_hz: f64::from_value(v.field("clock_hz")?)?,
            nic_queue_warn: usize::from_value(v.field("nic_queue_warn")?)?,
            enable_ring: bool::from_value(v.field("enable_ring")?)?,
            seed: u64::from_value(v.field("seed")?)?,
            watchdog_cycles: u64::from_value(v.field("watchdog_cycles")?)?,
            // Absent in every pre-topology encoding.
            topology: match v.field("topology") {
                Ok(t) => Option::<TopologySpec>::from_value(t)?,
                Err(_) => None,
            },
        })
    }
}

impl Default for NocConfig {
    fn default() -> Self {
        NocConfig {
            k: 8,
            vnets: 3,
            regular_vcs: 3,
            escape_vcs: 1,
            buf_depth: 6,
            pipeline_stages: 3,
            link_latency: 1,
            wakeup_latency: 10,
            idle_threshold: 16,
            escape_timeout: 128,
            synth_packet_len: 4,
            clock_hz: 2.0e9,
            nic_queue_warn: 4096,
            enable_ring: false,
            seed: 0xF10F_F10F,
            watchdog_cycles: 50_000,
            topology: None,
        }
    }
}

impl NocConfig {
    /// Total VCs per vnet (regular + escape).
    #[inline]
    pub fn vcs_per_vnet(&self) -> usize {
        self.regular_vcs + self.escape_vcs
    }

    /// Total VCs per input port across all vnets.
    #[inline]
    pub fn total_vcs(&self) -> usize {
        self.vnets * self.vcs_per_vnet()
    }

    /// Flattened VC index for `(vnet, vc)`.
    #[inline]
    pub fn vc_index(&self, vnet: usize, vc: usize) -> usize {
        vnet * self.vcs_per_vnet() + vc
    }

    /// Inverse of [`NocConfig::vc_index`].
    #[inline]
    pub fn vc_split(&self, idx: usize) -> (usize, usize) {
        (idx / self.vcs_per_vnet(), idx % self.vcs_per_vnet())
    }

    /// Index (within a vnet) of the escape VC, or `None` if the config has
    /// no escape VCs.
    #[inline]
    pub fn escape_vc(&self) -> Option<usize> {
        if self.escape_vcs > 0 {
            Some(self.regular_vcs)
        } else {
            None
        }
    }

    /// True if `vc` (index within a vnet) is an escape VC.
    #[inline]
    pub fn is_escape_vc(&self, vc: usize) -> bool {
        vc >= self.regular_vcs
    }

    /// The effective topology selection (`None` means square `k x k` mesh).
    #[inline]
    pub fn topology_spec(&self) -> TopologySpec {
        self.topology.unwrap_or(TopologySpec::Mesh { k: self.k })
    }

    /// Instantiate the configured topology.
    pub fn build_topology(&self) -> AnyTopology {
        self.topology_spec().build()
    }

    /// Router-grid width.
    #[inline]
    pub fn kx(&self) -> u16 {
        self.topology_spec().kx()
    }

    /// Router-grid height.
    #[inline]
    pub fn ky(&self) -> u16 {
        self.topology_spec().ky()
    }

    /// Cores per router (1 except for concentrated meshes).
    #[inline]
    pub fn concentration(&self) -> u16 {
        self.topology_spec().concentration()
    }

    /// Number of routers (= nodes of the fabric).
    #[inline]
    pub fn nodes(&self) -> usize {
        self.topology_spec().routers()
    }

    /// Number of cores (traffic endpoints): routers times concentration.
    #[inline]
    pub fn cores(&self) -> usize {
        self.topology_spec().cores()
    }

    /// Validate invariants, returning a structured [`ConfigError`] on
    /// misconfiguration (surfaced by the CLI as a diagnostic; panicking
    /// entry points wrap this).
    pub fn validate(&self) -> Result<(), ConfigError> {
        let spec = self.topology_spec();
        if spec.kx() < 2 || spec.ky() < 2 {
            return Err(ConfigError::RadixTooSmall { kx: spec.kx(), ky: spec.ky() });
        }
        if spec.concentration() == 0 {
            return Err(ConfigError::ZeroConcentration);
        }
        if self.vnets < 1 {
            return Err(ConfigError::NoVnets);
        }
        if self.regular_vcs < 1 {
            return Err(ConfigError::NoRegularVcs);
        }
        if self.escape_vcs > 1 {
            return Err(ConfigError::TooManyEscapeVcs { escape_vcs: self.escape_vcs });
        }
        if self.total_vcs() > 64 {
            return Err(ConfigError::TooManyVcs { total: self.total_vcs() });
        }
        if self.buf_depth < 1 {
            return Err(ConfigError::ZeroBufDepth);
        }
        if self.pipeline_stages < 1 {
            return Err(ConfigError::ZeroPipelineStages);
        }
        if self.link_latency < 1 {
            return Err(ConfigError::ZeroLinkLatency);
        }
        if self.synth_packet_len < 1 {
            return Err(ConfigError::ZeroPacketLen);
        }
        if self.escape_timeout < 1 {
            return Err(ConfigError::ZeroEscapeTimeout);
        }
        if spec.wraps() && self.escape_vcs == 0 {
            return Err(ConfigError::TorusNeedsEscapeVc);
        }
        if self.enable_ring {
            if !spec.admits_ring() {
                return Err(ConfigError::RingUnsupported { topology: spec.label() });
            }
            if spec.routers() > 256 {
                return Err(ConfigError::RingTooLarge { nodes: spec.routers() });
            }
            if self.regular_vcs < 2 {
                return Err(ConfigError::RingNeedsTransferVc);
            }
        }
        Ok(())
    }

    /// Convenience: Table I configuration (the defaults).
    pub fn paper_table1() -> Self {
        Self::default()
    }

    /// Small configuration for fast tests: 4x4 mesh, 1 vnet.
    pub fn small_test() -> Self {
        NocConfig { k: 4, vnets: 1, watchdog_cycles: 20_000, ..Self::default() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table1() {
        let c = NocConfig::default();
        assert_eq!(c.k, 8);
        assert_eq!(c.buf_depth, 6);
        assert_eq!(c.regular_vcs, 3);
        assert_eq!(c.escape_vcs, 1);
        assert_eq!(c.vnets, 3);
        assert_eq!(c.pipeline_stages, 3);
        assert_eq!(c.link_latency, 1);
        assert_eq!(c.wakeup_latency, 10);
        assert_eq!(c.synth_packet_len, 4);
        assert_eq!(c.clock_hz, 2.0e9);
        assert_eq!(c.topology, None);
        c.validate().unwrap();
    }

    #[test]
    fn vc_index_roundtrip() {
        let c = NocConfig::default();
        for vnet in 0..c.vnets {
            for vc in 0..c.vcs_per_vnet() {
                let idx = c.vc_index(vnet, vc);
                assert_eq!(c.vc_split(idx), (vnet, vc));
                assert!(idx < c.total_vcs());
            }
        }
    }

    #[test]
    fn escape_vc_is_last() {
        let c = NocConfig::default();
        assert_eq!(c.escape_vc(), Some(3));
        assert!(c.is_escape_vc(3));
        assert!(!c.is_escape_vc(2));
        let no_escape = NocConfig { escape_vcs: 0, ..NocConfig::default() };
        assert_eq!(no_escape.escape_vc(), None);
    }

    #[test]
    fn validate_rejects_tiny_mesh() {
        let err = NocConfig { k: 1, ..NocConfig::default() }.validate().unwrap_err();
        assert_eq!(err, ConfigError::RadixTooSmall { kx: 1, ky: 1 });
        assert!(err.to_string().contains("mesh radix"));
    }

    #[test]
    fn validate_gates_the_ring_on_topology() {
        // Odd square mesh: no Hamiltonian cycle — the paper's §II critique.
        let odd = NocConfig { k: 5, enable_ring: true, ..NocConfig::default() };
        assert!(matches!(odd.validate(), Err(ConfigError::RingUnsupported { .. })));
        // The same odd radix on a torus admits the tornado cycle.
        let torus = NocConfig {
            topology: Some(TopologySpec::Torus { k: 5 }),
            enable_ring: true,
            ..NocConfig::default()
        };
        torus.validate().unwrap();
        // Rectangle with one even side is fine; both odd is not.
        let rect_ok = NocConfig {
            topology: Some(TopologySpec::RectMesh { kx: 4, ky: 3 }),
            enable_ring: true,
            ..NocConfig::default()
        };
        rect_ok.validate().unwrap();
        let rect_bad = NocConfig {
            topology: Some(TopologySpec::RectMesh { kx: 5, ky: 3 }),
            enable_ring: true,
            ..NocConfig::default()
        };
        assert!(matches!(rect_bad.validate(), Err(ConfigError::RingUnsupported { .. })));
        // Ring transfer VC and exit-stamping limits.
        let one_vc = NocConfig { k: 4, enable_ring: true, regular_vcs: 1, ..NocConfig::default() };
        assert_eq!(one_vc.validate(), Err(ConfigError::RingNeedsTransferVc));
        let huge = NocConfig { k: 18, enable_ring: true, ..NocConfig::default() };
        assert_eq!(huge.validate(), Err(ConfigError::RingTooLarge { nodes: 324 }));
    }

    #[test]
    fn validate_requires_escape_on_torus() {
        let c = NocConfig {
            topology: Some(TopologySpec::Torus { k: 4 }),
            escape_vcs: 0,
            ..NocConfig::default()
        };
        assert_eq!(c.validate(), Err(ConfigError::TorusNeedsEscapeVc));
    }

    #[test]
    fn validate_bounds_vc_bitmasks() {
        let c = NocConfig { vnets: 13, regular_vcs: 4, escape_vcs: 1, ..NocConfig::default() };
        assert_eq!(c.validate(), Err(ConfigError::TooManyVcs { total: 65 }));
    }

    #[test]
    fn node_count() {
        assert_eq!(NocConfig::default().nodes(), 64);
        assert_eq!(NocConfig::small_test().nodes(), 16);
        let cmesh = NocConfig {
            k: 4,
            topology: Some(TopologySpec::CMesh { k: 4, c: 4 }),
            ..NocConfig::default()
        };
        assert_eq!(cmesh.nodes(), 16);
        assert_eq!(cmesh.cores(), 64);
    }

    #[test]
    fn serialization_is_byte_identical_without_topology() {
        // The seed encoding (no `topology` key) must be preserved exactly:
        // the result cache keys on these bytes.
        let v = NocConfig::default().to_value();
        let Value::Map(entries) = &v else { panic!("config must encode as a map") };
        let keys: Vec<&str> = entries.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(
            keys,
            [
                "k",
                "vnets",
                "regular_vcs",
                "escape_vcs",
                "buf_depth",
                "pipeline_stages",
                "link_latency",
                "wakeup_latency",
                "idle_threshold",
                "escape_timeout",
                "synth_packet_len",
                "clock_hz",
                "nic_queue_warn",
                "enable_ring",
                "seed",
                "watchdog_cycles"
            ]
        );
        // And it round-trips (missing `topology` key tolerated).
        let back = NocConfig::from_value(&v).unwrap();
        assert_eq!(back, NocConfig::default());
    }

    #[test]
    fn serialization_roundtrips_with_topology() {
        let c = NocConfig {
            topology: Some(TopologySpec::CMesh { k: 4, c: 4 }),
            ..NocConfig::default()
        };
        let v = c.to_value();
        let Value::Map(entries) = &v else { panic!("config must encode as a map") };
        assert_eq!(entries.last().unwrap().0, "topology");
        assert_eq!(NocConfig::from_value(&v).unwrap(), c);
    }
}
