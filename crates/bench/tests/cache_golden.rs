//! Golden determinism guarantees for the result cache: a cache-hit replay
//! is bit-identical to the fresh simulation that produced it, and bumping
//! the kernel-version salt invalidates every entry.

use flov_bench::{Engine, RunSpec};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

/// A fresh cache directory per test, safe under parallel test threads.
fn temp_cache_dir() -> PathBuf {
    let n = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("flov-cache-test-{}-{n}", std::process::id()))
}

fn tiny_spec(fraction: f64) -> RunSpec {
    RunSpec::builder().k(4).gated_fraction(fraction).warmup(500).cycles(3_000).drain(10_000).build()
}

#[test]
fn cache_hit_replay_is_bit_identical_to_fresh_simulation() {
    let dir = temp_cache_dir();
    let spec = tiny_spec(0.5);

    let first = Engine::with_cache_dir(&dir).quiet();
    let fresh = first.run_one(&spec);
    assert_eq!(first.stats().simulated, 1);
    assert_eq!(first.stats().cached, 0);

    // A second engine over the same directory must serve the run from
    // disk without simulating...
    let second = Engine::with_cache_dir(&dir).quiet();
    let replay = second.run_one(&spec);
    assert_eq!(second.stats().simulated, 0, "replay must not re-simulate");
    assert_eq!(second.stats().cached, 1);

    // ...and the replay must match the fresh run exactly: headline
    // numbers and the full serialized result, byte for byte.
    assert_eq!(replay.packets, fresh.packets);
    assert_eq!(replay.avg_latency, fresh.avg_latency);
    assert_eq!(replay.power.static_w, fresh.power.static_w);
    assert_eq!(replay.power.dynamic_w, fresh.power.dynamic_w);
    assert_eq!(replay.power.total_w, fresh.power.total_w);
    assert_eq!(
        serde_json::to_string(&replay).unwrap(),
        serde_json::to_string(&fresh).unwrap(),
        "cache-hit replay is not bit-identical"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn kernel_version_bump_invalidates_entries() {
    let dir = temp_cache_dir();
    let spec = tiny_spec(0.3);

    let v1 = Engine::with_cache_dir(&dir).quiet();
    v1.run_one(&spec);
    assert_eq!(v1.stats().simulated, 1);

    // Same directory, bumped salt: the old entry must not match.
    let v2 =
        Engine::with_cache_dir(&dir).quiet().with_kernel_version(flov_bench::KERNEL_VERSION + 1);
    v2.run_one(&spec);
    assert_eq!(v2.stats().simulated, 1, "salt bump must invalidate the entry");
    assert_eq!(v2.stats().cached, 0);

    // The original salt still hits its own entry.
    let v1_again = Engine::with_cache_dir(&dir).quiet();
    v1_again.run_one(&spec);
    assert_eq!(v1_again.stats().cached, 1);
    assert_eq!(v1_again.stats().simulated, 0);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn batch_mixes_hits_and_misses_and_preserves_order() {
    let dir = temp_cache_dir();

    let warm = Engine::with_cache_dir(&dir).quiet();
    warm.run_one(&tiny_spec(0.0));

    // Batch of three: one hit (0.0), two misses (0.25, 0.5), plus a
    // duplicate of the hit — four submitted, three unique.
    let specs = vec![tiny_spec(0.25), tiny_spec(0.0), tiny_spec(0.5), tiny_spec(0.0)];
    let engine = Engine::with_cache_dir(&dir).quiet();
    let results = engine.run_batch(&specs);
    let s = engine.stats();
    assert_eq!(s.submitted, 4);
    assert_eq!(s.unique, 3);
    assert_eq!(s.cached, 1);
    assert_eq!(s.simulated, 2);
    assert_eq!(results.len(), 4);
    // Duplicates resolve to the same result object, in submission order.
    assert_eq!(
        serde_json::to_string(&results[1]).unwrap(),
        serde_json::to_string(&results[3]).unwrap(),
    );

    // Everything hits on the next pass.
    let again = Engine::with_cache_dir(&dir).quiet();
    again.run_batch(&specs);
    assert_eq!(again.stats().cached, 3);
    assert_eq!(again.stats().simulated, 0);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cache_stats_and_clear_track_entries() {
    let dir = temp_cache_dir();
    let engine = Engine::with_cache_dir(&dir).quiet();
    engine.run_batch(&[tiny_spec(0.1), tiny_spec(0.6)]);

    let cache = engine.cache().expect("caching engine");
    let stats = cache.stats();
    assert_eq!(stats.entries, 2);
    assert!(stats.total_bytes > 0);

    assert_eq!(cache.clear().unwrap(), 2);
    assert_eq!(cache.stats().entries, 0);

    let _ = std::fs::remove_dir_all(&dir);
}
