//! Pinned auditor regressions: specs that once produced spurious (or
//! missed) `AuditViolation`s, replayed end-to-end on every kernel.

use flov_bench::spec::RunSpec;
use flov_bench::{run_kernel_audited, KernelMode};
use flov_noc::NocConfig;
use flov_workloads::Pattern;

/// Fuzzer-found no-progress false positive (pre-existing at PR 5; fixed
/// alongside the parallel kernel): RP-aggressive on a 4×4 mesh, Transpose,
/// 80% of cores gated, with two mid-run gating re-draws. The first two
/// active-set draws contain no active transpose pair, so nothing is ever
/// generated and `last_progress` stays 0; the final re-draw at cycle
/// 13696 produces a pair, packets enter the NIC queues during RP's
/// Phase-I injection stall, and the watchdog — measuring from cycle 0 —
/// reported "no progress for 14336 cycles" over packets that were ~600
/// cycles old, with zero flits resident. The movement digest now counts
/// NIC-queue churn, so the stall clock starts from the enqueue instead.
fn rp_nic_parked_spec() -> RunSpec {
    let cfg = NocConfig { k: 4, seed: 4044353807, watchdog_cycles: 10_000, ..NocConfig::default() };
    RunSpec::builder()
        .cfg(cfg)
        .mechanism("RP-aggressive")
        .pattern(Pattern::Transpose)
        .rate(0.02)
        .gated_fraction(0.8)
        .changes(vec![1395, 13696])
        .seed(14426764939842553696)
        .warmup(3788)
        .cycles(18942)
        .drain(30_000)
        .audit(true)
        .build()
}

#[test]
fn rp_phase_i_nic_parked_packets_are_not_a_stall() {
    let spec = rp_nic_parked_spec();
    for (name, kernel) in [
        ("active", KernelMode::ActiveSet),
        ("reference", KernelMode::Reference),
        ("parallel4", KernelMode::Parallel { tiles: 4, grid: None }),
        ("parallel2x2", KernelMode::Parallel { tiles: 4, grid: Some((2, 2)) }),
    ] {
        let run = run_kernel_audited(&spec, kernel);
        assert!(
            run.violations.is_empty(),
            "{name} kernel reported spurious violation(s): {:?}",
            run.violations.iter().map(|v| v.to_string()).collect::<Vec<_>>()
        );
        assert!(run.audit_checks > 0, "{name}: auditor never ran");
        // The run is not trivial: the final gating re-draw produces real
        // traffic that must eventually drain and deliver.
        assert!(run.result.packets > 0, "{name}: no packets delivered");
    }
}
