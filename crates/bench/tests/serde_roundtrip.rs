//! Round-trip guarantees for every serializable experiment type: a value
//! serialized to canonical JSON and deserialized back must equal the
//! original, and re-serializing must reproduce the exact bytes (the
//! property the content-addressed result cache keys on).

use flov_bench::{RunResult, RunSpec, WorkloadSpec};
use flov_noc::NocConfig;
use flov_power::PowerParams;
use flov_workloads::Pattern;
use serde::{Deserialize, Serialize};

fn roundtrip<T: Serialize + Deserialize + PartialEq + std::fmt::Debug>(v: &T) {
    let json = serde_json::to_string(v).expect("serialize");
    let back: T = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(&back, v, "value changed across a round trip");
    let again = serde_json::to_string(&back).expect("re-serialize");
    assert_eq!(json, again, "canonical encoding not byte-stable");
}

#[test]
fn runspec_synthetic_roundtrips() {
    roundtrip(&RunSpec::synthetic_paper("gFLOV", Pattern::Tornado, 0.08, 0.4, 0xF10F));
}

#[test]
fn runspec_parsec_roundtrips() {
    roundtrip(&RunSpec::parsec("RP", "canneal", 7));
}

#[test]
fn runspec_with_changes_and_timeline_roundtrips() {
    roundtrip(
        &RunSpec::builder()
            .mechanism("NoRD")
            .k(12)
            .changes(vec![50_000, 60_000])
            .timeline_width(2_000)
            .build(),
    );
}

#[test]
fn workload_spec_roundtrips() {
    roundtrip(&WorkloadSpec::Synthetic {
        pattern: Pattern::BitComplement,
        rate: 0.02,
        gated_fraction: 0.5,
        seed: 42,
        changes: vec![1, 2, 3],
    });
    roundtrip(&WorkloadSpec::Parsec { name: "swaptions".into(), seed: 9 });
}

#[test]
fn noc_config_roundtrips() {
    roundtrip(&NocConfig::paper_table1());
    roundtrip(&NocConfig::small_test());
}

#[test]
fn pattern_variants_roundtrip() {
    for p in [
        Pattern::UniformRandom,
        Pattern::Tornado,
        Pattern::Transpose,
        Pattern::BitComplement,
        Pattern::Neighbor,
        Pattern::Hotspot { hotspot: 27, p_hot_pct: 15 },
    ] {
        roundtrip(&p);
    }
}

#[test]
fn power_params_roundtrip() {
    roundtrip(&PowerParams::default());
    roundtrip(&PowerParams::dsent_32nm());
}

#[test]
fn run_result_roundtrips_bit_identically() {
    // RunResult has no PartialEq (floats everywhere), so compare the
    // canonical JSON — byte equality is the stronger guarantee anyway.
    let spec = RunSpec::builder()
        .k(4)
        .gated_fraction(0.4)
        .warmup(500)
        .cycles(3_000)
        .drain(10_000)
        .timeline_width(500)
        .build();
    let result = flov_bench::run(&spec);
    assert!(result.packets > 0, "need a non-trivial result to exercise all fields");
    let json = serde_json::to_string(&result).expect("serialize");
    let back: RunResult = serde_json::from_str(&json).expect("deserialize");
    let again = serde_json::to_string(&back).expect("re-serialize");
    assert_eq!(json, again);
}
