//! Property tests for the parallel kernel's cross-tile boundary exchange,
//! against a single-tile oracle.
//!
//! A one-tile `KernelMode::Parallel` run executes the exact same
//! buffered-delta code path with no boundary in the fabric, so it is the
//! natural oracle: any defect in the *exchange* (flits reordered across a
//! tile seam, boundary credits dropped or duplicated, latch/chain state
//! applied in the wrong order) shows up as a divergence from the one-tile
//! run while leaving the one-tile run itself correct. The sharded run
//! draws a random 2-D tile grid, so north/south and east/west seams (and
//! their corners) are all exercised.
//!
//! Two properties per random spec:
//!
//! * **Flit order** — the sharded end state is bit-identical to the
//!   oracle's. Channel delivery is a stable sort by arrival cycle, so any
//!   cross-seam reordering perturbs per-packet latencies, the timeline,
//!   or the delivery digest.
//! * **Credit conservation** — the invariant auditor sweeps the sharded
//!   run (credit counters vs. audited ground truth per router, direction
//!   and VC); a boundary credit leaked or double-applied trips it.

use flov_bench::{run_kernel_audited, AuditedRun, KernelMode, RunSpec};
use flov_workloads::Pattern;
use proptest::prelude::*;

fn digest(r: &AuditedRun) -> String {
    serde_json::to_string(&r.result).expect("result serializes")
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]
    #[test]
    fn boundary_exchange_matches_single_tile_oracle(
        seed in 0u64..u64::MAX,
        rows in 1u16..4,
        cols in 1u16..4,
        rate_steps in 1u32..9,   // 0.01 .. 0.08 flits/cycle/node
        gated_steps in 0u32..7,  // 0.0 .. 0.6 of cores gated
        mech_pick in 0u32..3,
    ) {
        let mech = ["gFLOV", "rFLOV", "NoRD"][mech_pick as usize];
        // Guarantee at least one seam; a 1x1 grid would equal the oracle.
        let rows = if rows * cols == 1 { 2 } else { rows };
        let grid = format!("{rows}x{cols}");
        let spec = RunSpec::builder()
            .mechanism(mech)
            .pattern(Pattern::UniformRandom)
            .rate(rate_steps as f64 / 100.0)
            .gated_fraction(gated_steps as f64 / 10.0)
            .seed(seed)
            .warmup(500)
            .cycles(3_000)
            .drain(20_000)
            .audit(true)
            .build();
        let oracle = run_kernel_audited(&spec, KernelMode::Parallel { tiles: 1, grid: None });
        let sharded = run_kernel_audited(
            &spec,
            KernelMode::Parallel { tiles: rows as usize * cols as usize, grid: Some((rows, cols)) },
        );
        prop_assert!(
            oracle.violations.is_empty(),
            "{mech}: single-tile oracle itself violated invariants: {:?}",
            oracle.violations.iter().map(|v| v.to_string()).collect::<Vec<_>>()
        );
        prop_assert!(
            sharded.violations.is_empty(),
            "{mech}/grid={grid}: boundary exchange broke an invariant \
             (credit conservation or state legality): {:?}",
            sharded.violations.iter().map(|v| v.to_string()).collect::<Vec<_>>()
        );
        prop_assert!(sharded.audit_checks > 0, "auditor never swept the sharded run");
        prop_assert_eq!(
            digest(&oracle),
            digest(&sharded),
            "{}/grid={}: sharded end state diverged from the single-tile oracle",
            mech,
            grid
        );
        prop_assert!(
            sharded.result.delivered_all,
            "{mech}/grid={grid}: packets left in flight after drain"
        );
    }
}
