//! Time-domain skipping must never step over a scheduled event. The
//! deliberately nasty case: a completely silent network (zero injection
//! rate) whose [`GatingSchedule`] flips power states mid-run. The active
//! kernel sees a quiescent fabric and wants to jump the clock all the way
//! to the run deadline — the workload horizon must truncate the jump at
//! the gating boundary so the flip (and every mechanism transition it
//! triggers: drain, handshake, sleep) lands on exactly the same cycle as
//! in the never-jumping reference kernel.

use flov_core::mechanism;
use flov_noc::network::{KernelMode, Simulation};
use flov_noc::NocConfig;
use flov_workloads::{GatingSchedule, Pattern, SyntheticWorkload};

const RUN_CYCLES: u64 = 100_000;
const BOUNDARY: u64 = 50_000;

/// Zero-traffic sim whose only event is a gating flip at `BOUNDARY`.
fn silent_sim_with_boundary(mech_name: &str, kernel: KernelMode) -> Simulation {
    let cfg = NocConfig::default();
    let gated: Vec<u16> = (0..cfg.nodes() as u16).step_by(2).collect();
    let gating = GatingSchedule::explicit(vec![(0, Vec::new()), (BOUNDARY, gated)]);
    let workload = SyntheticWorkload::new(
        cfg.k,
        Pattern::UniformRandom,
        0.0,
        cfg.synth_packet_len,
        RUN_CYCLES,
        gating,
        7,
    );
    let mech = mechanism::by_name(mech_name, &cfg).expect("known mechanism");
    let mut sim = Simulation::new(cfg, mech, Box::new(workload));
    sim.core.kernel = kernel;
    sim
}

fn digest(sim: &mut Simulation) -> String {
    let residency = sim.core.residency().to_vec();
    serde_json::to_string(&(&sim.core.activity, &sim.core.stats, &residency))
        .expect("digest serialization")
}

#[test]
fn gating_boundary_truncates_the_jump() {
    for mech in ["gFLOV", "rFLOV", "RP"] {
        let mut active = silent_sim_with_boundary(mech, KernelMode::ActiveSet);
        active.run(RUN_CYCLES);

        // The flip itself was not stepped over: even-numbered cores are
        // gated after the boundary.
        assert!(!active.core.core_active[0], "{mech}: node 0 should be gated after boundary");
        assert!(active.core.core_active[1], "{mech}: node 1 should stay active");

        // The run is silent, so almost everything outside the boundary's
        // transition window should have been jumped over.
        let skipped = active.core.cycles_skipped;
        assert!(
            skipped > RUN_CYCLES / 2,
            "{mech}: only {skipped}/{RUN_CYCLES} cycles skipped on a silent run"
        );
        assert!(
            skipped < RUN_CYCLES,
            "{mech}: the entire run was skipped — the gating boundary was jumped over"
        );

        // And the jumps are invisible: residency (which integrates *when*
        // each power transition happened), activity, and stats all match
        // the reference kernel bit-for-bit.
        let mut reference = silent_sim_with_boundary(mech, KernelMode::Reference);
        reference.run(RUN_CYCLES);
        assert_eq!(reference.core.cycles_skipped, 0, "{mech}: reference kernel must not jump");
        assert_eq!(
            digest(&mut active),
            digest(&mut reference),
            "{mech}: time-skip changed the end state of a silent run with a gating boundary"
        );
    }
}
