//! The sharded binary cache: format round-trips, index correctness,
//! corruption quarantine, GC eviction order, legacy-JSON compatibility,
//! migration, and work-stealing determinism.

use flov_bench::cache::QUARANTINE_DIR;
use flov_bench::{
    binfmt, CacheEntry, CacheFormat, Engine, GcOptions, ResultCache, RunResult, RunSpec,
    KERNEL_VERSION,
};
use proptest::prelude::*;
use std::fs::{self, FileTimes};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, SystemTime};

static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

/// A fresh cache directory per test, safe under parallel test threads.
fn temp_cache_dir() -> PathBuf {
    let n = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("flov-cache-bin-test-{}-{n}", std::process::id()))
}

fn tiny_spec(fraction: f64, seed: u64) -> RunSpec {
    RunSpec::builder()
        .k(4)
        .gated_fraction(fraction)
        .seed(seed)
        .warmup(200)
        .cycles(1_500)
        .drain(8_000)
        .build()
}

/// Canonical spec JSON + content key for `spec` under the current salt.
fn key_of(spec: &RunSpec) -> String {
    let json = serde_json::to_string(&spec.resolved()).unwrap();
    ResultCache::key(&json, KERNEL_VERSION)
}

/// The on-disk path of a sharded entry.
fn entry_path(dir: &Path, key: &str, ext: &str) -> PathBuf {
    dir.join(&key[..2]).join(format!("{key}.{ext}"))
}

fn binary_engine(dir: &Path) -> Engine {
    Engine::with_cache(ResultCache::new(dir).with_format(CacheFormat::Binary)).quiet()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// A simulated `RunResult` survives JSON ⇄ binary bit-identically:
    /// decoding the binary container yields exactly the result the JSON
    /// round trip yields, down to every float bit (canonical JSON uses
    /// shortest-roundtrip floats, so string equality is bit equality).
    #[test]
    fn runresult_roundtrips_json_and_binary_bit_identically(
        fraction in 0.0f64..0.8,
        seed in 0u64..1_000_000,
    ) {
        let spec = tiny_spec(fraction, seed).resolved();
        let result = flov_bench::run(&spec);
        let json = serde_json::to_string(&result).unwrap();
        let via_json: RunResult = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(&serde_json::to_string(&via_json).unwrap(), &json);

        let spec_json = serde_json::to_string(&spec).unwrap();
        let key = ResultCache::key(&spec_json, KERNEL_VERSION);
        let bytes = binfmt::encode_entry(&key, KERNEL_VERSION, &spec_json, &result);
        let entry = binfmt::decode_entry(&bytes).unwrap();
        prop_assert_eq!(&entry.key, &key);
        prop_assert_eq!(entry.kernel_version, KERNEL_VERSION);
        prop_assert_eq!(&entry.spec_json, &spec_json);
        prop_assert_eq!(&serde_json::to_string(&entry.result).unwrap(), &json);

        // The fast probe path decodes the same result...
        let probed = binfmt::decode_result(&bytes, &key, KERNEL_VERSION).unwrap().unwrap();
        prop_assert_eq!(&serde_json::to_string(&probed).unwrap(), &json);
        // ...and a salt mismatch is a plain miss, not an error.
        prop_assert!(binfmt::decode_result(&bytes, &key, KERNEL_VERSION + 1).unwrap().is_none());
    }
}

#[test]
fn truncated_entry_is_a_quarantined_miss() {
    let dir = temp_cache_dir();
    let spec = tiny_spec(0.4, 7);
    binary_engine(&dir).run_one(&spec);
    let key = key_of(&spec);
    let path = entry_path(&dir, &key, "bin");
    let bytes = fs::read(&path).unwrap();
    fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();

    let cache = ResultCache::new(&dir);
    assert!(cache.get(&key, KERNEL_VERSION).is_none(), "truncated entry must miss");
    assert!(!path.exists(), "truncated entry must be moved out of the shard");
    assert!(dir.join(QUARANTINE_DIR).join(format!("{key}.bin")).exists());
    let s = cache.stats();
    assert_eq!(s.entries, 0);
    assert_eq!(s.quarantined, 1);

    // The engine recovers transparently: the run is simulated afresh and
    // re-persisted under the same key.
    let engine = binary_engine(&dir);
    engine.run_one(&spec);
    assert_eq!(engine.stats().simulated, 1);
    assert!(path.exists());
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn bit_flipped_entry_is_a_quarantined_miss() {
    let dir = temp_cache_dir();
    let spec = tiny_spec(0.2, 8);
    binary_engine(&dir).run_one(&spec);
    let key = key_of(&spec);
    let path = entry_path(&dir, &key, "bin");
    let mut bytes = fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    fs::write(&path, &bytes).unwrap();

    let cache = ResultCache::new(&dir);
    assert!(cache.get(&key, KERNEL_VERSION).is_none(), "corrupt entry must miss, not crash");
    assert_eq!(cache.stats().quarantined, 1);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn index_rebuild_from_scan_matches_incremental_index() {
    let dir = temp_cache_dir();
    let specs: Vec<RunSpec> = (0..6).map(|i| tiny_spec(i as f64 * 0.1, 100 + i)).collect();
    let engine = binary_engine(&dir);
    engine.run_batch(&specs);

    // The engine's cache indexed each entry incrementally as it was
    // written; a fresh cache over the same directory must scan to the
    // exact same key set.
    let incremental = engine.cache().unwrap().known_keys();
    let rescanned = ResultCache::new(&dir).known_keys();
    assert_eq!(incremental.len(), specs.len());
    assert_eq!(incremental, rescanned);
    let mut expected: Vec<String> = specs.iter().map(key_of).collect();
    expected.sort();
    assert_eq!(rescanned, expected);
    let _ = fs::remove_dir_all(&dir);
}

/// Pin an entry's access+modify times (GC orders by the newer of the two).
fn set_entry_times(path: &Path, t: SystemTime) {
    let f = fs::File::options().write(true).open(path).unwrap();
    f.set_times(FileTimes::new().set_accessed(t).set_modified(t)).unwrap();
}

#[test]
fn gc_max_bytes_keeps_most_recently_used_entries() {
    let dir = temp_cache_dir();
    let specs: Vec<RunSpec> = (0..4).map(|i| tiny_spec(0.1 * i as f64, 200 + i)).collect();
    binary_engine(&dir).run_batch(&specs);
    let keys: Vec<String> = specs.iter().map(key_of).collect();
    let now = SystemTime::now();
    // Ages: specs[0] oldest ... specs[3] newest.
    for (i, key) in keys.iter().enumerate() {
        let age = Duration::from_secs(3600 * (specs.len() - i) as u64);
        set_entry_times(&entry_path(&dir, key, "bin"), now - age);
    }

    let cache = ResultCache::new(&dir);
    let sizes: Vec<u64> =
        keys.iter().map(|k| fs::metadata(entry_path(&dir, k, "bin")).unwrap().len()).collect();
    // Budget for exactly the two most recently used entries.
    let budget = sizes[2] + sizes[3];
    let report = cache.gc(&GcOptions { max_bytes: Some(budget), max_age: None }).unwrap();
    assert_eq!(report.scanned, 4);
    assert_eq!(report.removed, 2);
    assert!(!entry_path(&dir, &keys[0], "bin").exists(), "LRU entry must be evicted");
    assert!(!entry_path(&dir, &keys[1], "bin").exists());
    assert!(entry_path(&dir, &keys[2], "bin").exists(), "MRU entries must survive");
    assert!(entry_path(&dir, &keys[3], "bin").exists());
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn gc_max_age_evicts_only_stale_entries() {
    let dir = temp_cache_dir();
    let fresh = tiny_spec(0.3, 300);
    let stale = tiny_spec(0.6, 301);
    binary_engine(&dir).run_batch(&[fresh.clone(), stale.clone()]);
    set_entry_times(
        &entry_path(&dir, &key_of(&stale), "bin"),
        SystemTime::now() - Duration::from_secs(48 * 3600),
    );

    let cache = ResultCache::new(&dir);
    let report = cache
        .gc(&GcOptions { max_bytes: None, max_age: Some(Duration::from_secs(24 * 3600)) })
        .unwrap();
    assert_eq!(report.removed, 1);
    assert!(entry_path(&dir, &key_of(&fresh), "bin").exists());
    assert!(!entry_path(&dir, &key_of(&stale), "bin").exists());
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn legacy_flat_json_entries_are_readable_and_migratable() {
    let dir = temp_cache_dir();
    let specs: Vec<RunSpec> = (0..3).map(|i| tiny_spec(0.2 * i as f64, 400 + i)).collect();

    // Seed-era layout: flat JSON files straight under the cache dir.
    let legacy = Engine::with_cache(ResultCache::legacy_flat_json(&dir)).quiet();
    let original = legacy.run_batch(&specs);
    for spec in &specs {
        assert!(dir.join(format!("{}.json", key_of(spec))).exists());
    }

    // The sharded cache reads them where they are (no migration needed).
    let replay_engine = binary_engine(&dir);
    let replayed = replay_engine.run_batch(&specs);
    assert_eq!(replay_engine.stats().cached, specs.len(), "flat JSON must hit");
    assert_eq!(
        serde_json::to_string(&replayed).unwrap(),
        serde_json::to_string(&original).unwrap(),
    );

    // Migration rewrites them as sharded binary, preserving every key...
    let cache = ResultCache::new(&dir);
    let before = cache.known_keys();
    let report = cache.migrate().unwrap();
    assert_eq!(report.migrated, specs.len());
    assert_eq!(report.quarantined, 0);
    assert_eq!(cache.known_keys(), before, "migration must preserve content hashes");
    for spec in &specs {
        let key = key_of(spec);
        assert!(entry_path(&dir, &key, "bin").exists());
        assert!(!dir.join(format!("{key}.json")).exists(), "source JSON must be consumed");
    }
    // ...verification agrees...
    let verify = cache.verify();
    assert_eq!(verify.checked, specs.len());
    assert_eq!(verify.quarantined, 0);

    // ...and the warm replay still serves identical bytes.
    let after_engine = binary_engine(&dir);
    let after = after_engine.run_batch(&specs);
    assert_eq!(after_engine.stats().cached, specs.len());
    assert_eq!(serde_json::to_string(&after).unwrap(), serde_json::to_string(&original).unwrap(),);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn verify_quarantines_entries_filed_under_the_wrong_key() {
    let dir = temp_cache_dir();
    let spec = tiny_spec(0.5, 500);
    binary_engine(&dir).run_one(&spec);
    let key = key_of(&spec);
    // File a byte-for-byte copy of a valid entry under a different key:
    // structurally sound, wrong address.
    let prefix = if &key[..2] == "ff" { "00" } else { "ff" };
    let bogus = format!("{prefix}{}", &key[2..]);
    let from = entry_path(&dir, &key, "bin");
    let to = entry_path(&dir, &bogus, "bin");
    fs::create_dir_all(to.parent().unwrap()).unwrap();
    fs::copy(&from, &to).unwrap();

    let cache = ResultCache::new(&dir);
    let report = cache.verify();
    assert_eq!(report.checked, 2);
    assert_eq!(report.ok, 1);
    assert_eq!(report.quarantined, 1);
    assert!(from.exists());
    assert!(!to.exists());

    // The misfiled copy is also a hard miss on the probe path (hash
    // mismatch inside the container is corruption, not a silent hit).
    let dir2 = temp_cache_dir();
    let bytes = fs::read(&from).unwrap();
    let c2 = ResultCache::new(&dir2);
    let dest = dir2.join(&bogus[..2]).join(format!("{bogus}.bin"));
    fs::create_dir_all(dest.parent().unwrap()).unwrap();
    fs::write(&dest, &bytes).unwrap();
    assert!(c2.get(&bogus, KERNEL_VERSION).is_none());
    assert_eq!(c2.stats().quarantined, 1);
    let _ = fs::remove_dir_all(&dir);
    let _ = fs::remove_dir_all(&dir2);
}

#[test]
fn work_stealing_batch_matches_sequential_execution() {
    let dir = temp_cache_dir();
    // A mixed batch with duplicates, big enough to spread across workers.
    let mut specs: Vec<RunSpec> = (0..10).map(|i| tiny_spec(0.08 * i as f64, 600 + i)).collect();
    specs.push(specs[2].clone());
    specs.push(specs[0].clone());

    let engine = binary_engine(&dir);
    let batch = engine.run_batch(&specs);

    // Sequential ground truth: each spec simulated in submission order,
    // no scheduler, no cache.
    let sequential: Vec<RunResult> = specs.iter().map(flov_bench::run).collect();
    assert_eq!(
        serde_json::to_string(&batch).unwrap(),
        serde_json::to_string(&sequential).unwrap(),
        "work-stealing execution changed results vs sequential order"
    );

    // And the cache keys are exactly the canonical per-spec hashes.
    let mut expected: Vec<String> = specs.iter().map(key_of).collect();
    expected.sort();
    expected.dedup();
    assert_eq!(engine.cache().unwrap().known_keys(), expected);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn json_write_format_interoperates_with_binary_probes() {
    let dir = temp_cache_dir();
    let spec = tiny_spec(0.35, 700);
    // Write sharded JSON (FLOV_CACHE_FORMAT=json path, minus the env var).
    let json_engine =
        Engine::with_cache(ResultCache::new(&dir).with_format(CacheFormat::Json)).quiet();
    let original = json_engine.run_one(&spec);
    let key = key_of(&spec);
    assert!(entry_path(&dir, &key, "json").exists());

    // A default (binary-writing) cache still hits the sharded JSON entry.
    let replay = binary_engine(&dir);
    let replayed = replay.run_one(&spec);
    assert_eq!(replay.stats().cached, 1);
    assert_eq!(
        serde_json::to_string(&replayed).unwrap(),
        serde_json::to_string(&original).unwrap(),
    );

    // When both formats exist for one key, the index prefers the binary.
    let entry = CacheEntry {
        kernel_version: KERNEL_VERSION,
        spec: spec.resolved(),
        result: original.clone(),
    };
    ResultCache::new(&dir).with_format(CacheFormat::Binary).put(&key, &entry).unwrap();
    let both = ResultCache::new(&dir);
    assert!(both.get(&key, KERNEL_VERSION).is_some());
    assert_eq!(both.known_keys().len(), 1);
    let _ = fs::remove_dir_all(&dir);
}
