//! The active-set kernel is an *optimization*, not a model change: for
//! every mechanism × traffic pattern in this matrix, running the same spec
//! under [`KernelMode::ActiveSet`] and [`KernelMode::Reference`] must yield
//! bit-identical `RunResult`s (latency, power, residency, stall counters,
//! timeline — everything). Because the kernel mode never enters the result
//! cache key, this equivalence is also what keeps existing cache entries
//! valid: `KERNEL_VERSION` stays at 1.

use flov_bench::{run_kernel, KernelMode, RunSpec, KERNEL_VERSION};
use flov_workloads::Pattern;
use rayon::prelude::*;

const MECHANISMS: [&str; 5] = ["Baseline", "rFLOV", "gFLOV", "RP", "NoRD"];

fn patterns() -> [(&'static str, Pattern); 3] {
    [
        ("uniform", Pattern::UniformRandom),
        ("transpose", Pattern::Transpose),
        ("hotspot", Pattern::Hotspot { hotspot: 27, p_hot_pct: 20 }),
    ]
}

fn spec(mech: &str, pattern: Pattern) -> RunSpec {
    // NoRD runs at the paper's base load: at 0.05 flits/cycle/node some
    // seeds trip a latent, pre-existing NoRD routing debug-assert
    // (non-escape U-turn) that exists in the seed revision too and is
    // independent of the kernel mode — out of scope here.
    let rate = if mech == "NoRD" { 0.02 } else { 0.05 };
    RunSpec::builder()
        .mechanism(mech)
        .pattern(pattern)
        .rate(rate)
        .gated_fraction(0.3)
        .seed(0xF10F)
        .warmup(1_500)
        .cycles(6_000)
        .drain(25_000)
        .build()
}

#[test]
fn active_set_kernel_matches_reference_on_the_full_matrix() {
    let cells: Vec<(&str, &str, Pattern)> = MECHANISMS
        .iter()
        .flat_map(|&m| patterns().into_iter().map(move |(pn, p)| (m, pn, p)))
        .collect();
    let failures: Vec<String> = cells
        .par_iter()
        .map(|&(mech, pat_name, pattern)| {
            eprintln!("cell start: {mech}/{pat_name}");
            let s = spec(mech, pattern);
            let active = run_kernel(&s, KernelMode::ActiveSet);
            let reference = run_kernel(&s, KernelMode::Reference);
            let aj = serde_json::to_string(&active).expect("serialize active result");
            let rj = serde_json::to_string(&reference).expect("serialize reference result");
            if active.packets <= 100 {
                return Some(format!(
                    "{mech}/{pat_name}: too little traffic ({} packets) for a meaningful \
                     comparison",
                    active.packets
                ));
            }
            if aj != rj {
                return Some(format!(
                    "{mech}/{pat_name}: active-set and reference kernels diverged"
                ));
            }
            None
        })
        .collect::<Vec<Option<String>>>()
        .into_iter()
        .flatten()
        .collect();
    assert!(failures.is_empty(), "kernel equivalence failures:\n{}", failures.join("\n"));
}

#[test]
fn kernel_equivalence_keeps_cache_entries_valid() {
    // The active-set kernel produces identical results, so the cache salt
    // must not move: bumping it would needlessly invalidate every entry.
    assert_eq!(KERNEL_VERSION, 1);
}
