//! The active-set kernel is an *optimization*, not a model change: for
//! every mechanism × traffic pattern in this matrix, running the same spec
//! under [`KernelMode::ActiveSet`] and [`KernelMode::Reference`] must yield
//! bit-identical `RunResult`s (latency, power, residency, stall counters,
//! timeline — everything). That includes the time-domain skip: when the
//! fabric is quiescent the active kernel jumps the clock to the next
//! event horizon instead of stepping, and the low-rate rows below prove
//! the jumps are invisible in the results even when they cover most of
//! the run.
//!
//! The sharded parallel kernel ([`KernelMode::Parallel`]) joins the same
//! contract: tile-partitioned execution with deterministic boundary
//! exchange must be bit-identical to the sequential active-set kernel at
//! every tile count, on every topology, including across clock jumps.
//!
//! The kernel *mode* never enters the result cache key (both modes agree
//! bit-for-bit), but `KERNEL_VERSION` is at 3: v2 made the synthetic
//! workload draw geometric inter-arrival gaps instead of per-cycle
//! Bernoulli trials (a different RNG stream, so every v1 injection
//! timeline differs), and v3 switched latency percentiles to bucket lower
//! edges and extended the `RunSpec` schema.

use flov_bench::{
    record_trace, run_kernel, tracefmt, KernelMode, RunSpec, WorkloadSpec, KERNEL_VERSION,
};
use flov_core::mechanism;
use flov_noc::network::Simulation;
use flov_noc::{NocConfig, TopologySpec};
use flov_workloads::{
    Dwell, GatingSchedule, ModulatedWorkload, Pattern, PatternSpace, SyntheticWorkload,
};
use rayon::prelude::*;

const MECHANISMS: [&str; 5] = ["Baseline", "rFLOV", "gFLOV", "RP", "NoRD"];

fn patterns() -> [(&'static str, Pattern); 3] {
    [
        ("uniform", Pattern::UniformRandom),
        ("transpose", Pattern::Transpose),
        ("hotspot", Pattern::Hotspot { hotspot: 27, p_hot_pct: 20 }),
    ]
}

fn spec(mech: &str, pattern: Pattern) -> RunSpec {
    RunSpec::builder()
        .mechanism(mech)
        .pattern(pattern)
        .rate(0.05)
        .gated_fraction(0.3)
        .seed(0xF10F)
        .warmup(1_500)
        .cycles(6_000)
        .drain(25_000)
        .build()
}

#[test]
fn active_set_kernel_matches_reference_on_the_full_matrix() {
    let cells: Vec<(&str, &str, Pattern)> = MECHANISMS
        .iter()
        .flat_map(|&m| patterns().into_iter().map(move |(pn, p)| (m, pn, p)))
        .collect();
    let failures: Vec<String> = cells
        .par_iter()
        .map(|&(mech, pat_name, pattern)| {
            eprintln!("cell start: {mech}/{pat_name}");
            let s = spec(mech, pattern);
            let active = run_kernel(&s, KernelMode::ActiveSet);
            let reference = run_kernel(&s, KernelMode::Reference);
            let aj = serde_json::to_string(&active).expect("serialize active result");
            let rj = serde_json::to_string(&reference).expect("serialize reference result");
            if active.packets <= 100 {
                return Some(format!(
                    "{mech}/{pat_name}: too little traffic ({} packets) for a meaningful \
                     comparison",
                    active.packets
                ));
            }
            if aj != rj {
                return Some(format!(
                    "{mech}/{pat_name}: active-set and reference kernels diverged"
                ));
            }
            None
        })
        .collect::<Vec<Option<String>>>()
        .into_iter()
        .flatten()
        .collect();
    assert!(failures.is_empty(), "kernel equivalence failures:\n{}", failures.join("\n"));
}

/// The equivalence contract extends to every topology the selector can
/// produce: torus (wraparound datapath + wrap-minimal routing on regular
/// VCs) and concentrated mesh (core space ≠ router space) must also be
/// bit-identical between kernels for every mechanism that supports them.
/// PowerPunch is structurally excluded on the torus (it requires
/// `escape_vcs == 0`, the torus requires an escape VC), which `validate()`
/// rejects — so the matrix below covers the other five.
#[test]
fn topology_rows_stay_bit_identical_between_kernels() {
    let topologies =
        [("torus8", TopologySpec::Torus { k: 8 }), ("cmesh64", TopologySpec::CMesh { k: 4, c: 4 })];
    let cells: Vec<(&str, TopologySpec, &str, &str, Pattern)> = topologies
        .iter()
        .flat_map(|&(tn, t)| {
            MECHANISMS.iter().flat_map(move |&m| {
                [("uniform", Pattern::UniformRandom), ("transpose", Pattern::Transpose)]
                    .into_iter()
                    .map(move |(pn, p)| (tn, t, m, pn, p))
            })
        })
        .collect();
    let failures: Vec<String> = cells
        .par_iter()
        .map(|&(topo_name, topology, mech, pat_name, pattern)| {
            eprintln!("cell start: {topo_name}/{mech}/{pat_name}");
            let s = RunSpec::builder()
                .mechanism(mech)
                .topology(topology)
                .pattern(pattern)
                .rate(0.05)
                .gated_fraction(0.3)
                .seed(0xF10F)
                .warmup(1_500)
                .cycles(6_000)
                .drain(25_000)
                .build();
            let active = run_kernel(&s, KernelMode::ActiveSet);
            let reference = run_kernel(&s, KernelMode::Reference);
            let aj = serde_json::to_string(&active).expect("serialize active result");
            let rj = serde_json::to_string(&reference).expect("serialize reference result");
            if active.packets <= 100 {
                return Some(format!(
                    "{topo_name}/{mech}/{pat_name}: too little traffic ({} packets)",
                    active.packets
                ));
            }
            if aj != rj {
                return Some(format!(
                    "{topo_name}/{mech}/{pat_name}: active-set and reference kernels diverged"
                ));
            }
            None
        })
        .collect::<Vec<Option<String>>>()
        .into_iter()
        .flatten()
        .collect();
    assert!(failures.is_empty(), "topology equivalence failures:\n{}", failures.join("\n"));
}

/// The sharded parallel kernel is held to the same contract as the
/// active-set kernel: for every mechanism × pattern × tile count, the
/// tile-partitioned simulation with boundary exchange must produce a
/// `RunResult` bit-identical to the sequential active-set kernel. Tile
/// counts 2 and 4 exercise both the single-boundary and multi-boundary
/// partitions of the 8×8 grid.
#[test]
fn parallel_kernel_matches_active_set_on_the_full_matrix() {
    let cells: Vec<(&str, &str, Pattern, usize)> = MECHANISMS
        .iter()
        .flat_map(|&m| {
            patterns()
                .into_iter()
                .flat_map(move |(pn, p)| [2usize, 4].into_iter().map(move |t| (m, pn, p, t)))
        })
        .collect();
    let failures: Vec<String> = cells
        .par_iter()
        .map(|&(mech, pat_name, pattern, tiles)| {
            eprintln!("cell start: {mech}/{pat_name}/tiles={tiles}");
            let s = spec(mech, pattern);
            let active = run_kernel(&s, KernelMode::ActiveSet);
            let parallel = run_kernel(&s, KernelMode::Parallel { tiles, grid: None });
            let aj = serde_json::to_string(&active).expect("serialize active result");
            let pj = serde_json::to_string(&parallel).expect("serialize parallel result");
            if active.packets <= 100 {
                return Some(format!(
                    "{mech}/{pat_name}/tiles={tiles}: too little traffic ({} packets)",
                    active.packets
                ));
            }
            if aj != pj {
                return Some(format!(
                    "{mech}/{pat_name}/tiles={tiles}: parallel and active-set kernels diverged"
                ));
            }
            None
        })
        .collect::<Vec<Option<String>>>()
        .into_iter()
        .flatten()
        .collect();
    assert!(failures.is_empty(), "parallel equivalence failures:\n{}", failures.join("\n"));
}

/// Parallel bit-identity on the non-mesh fabrics: the torus wraparound
/// datapath and the concentrated mesh must shard cleanly too (cross-tile
/// wrap channels are just more boundary channels).
#[test]
fn parallel_kernel_matches_active_set_on_other_topologies() {
    let topologies =
        [("torus8", TopologySpec::Torus { k: 8 }), ("cmesh64", TopologySpec::CMesh { k: 4, c: 4 })];
    let cells: Vec<(&str, TopologySpec, &str, usize)> = topologies
        .iter()
        .flat_map(|&(tn, t)| {
            MECHANISMS
                .iter()
                .flat_map(move |&m| [2usize, 4].into_iter().map(move |k| (tn, t, m, k)))
        })
        .collect();
    let failures: Vec<String> = cells
        .par_iter()
        .map(|&(topo_name, topology, mech, tiles)| {
            eprintln!("cell start: {topo_name}/{mech}/tiles={tiles}");
            let s = RunSpec::builder()
                .mechanism(mech)
                .topology(topology)
                .pattern(Pattern::UniformRandom)
                .rate(0.05)
                .gated_fraction(0.3)
                .seed(0xF10F)
                .warmup(1_500)
                .cycles(6_000)
                .drain(25_000)
                .build();
            let active = run_kernel(&s, KernelMode::ActiveSet);
            let parallel = run_kernel(&s, KernelMode::Parallel { tiles, grid: None });
            let aj = serde_json::to_string(&active).expect("serialize active result");
            let pj = serde_json::to_string(&parallel).expect("serialize parallel result");
            if active.packets <= 100 {
                return Some(format!(
                    "{topo_name}/{mech}/tiles={tiles}: too little traffic ({} packets)",
                    active.packets
                ));
            }
            if aj != pj {
                return Some(format!(
                    "{topo_name}/{mech}/tiles={tiles}: parallel and active-set diverged"
                ));
            }
            None
        })
        .collect::<Vec<Option<String>>>()
        .into_iter()
        .flatten()
        .collect();
    assert!(failures.is_empty(), "parallel topology failures:\n{}", failures.join("\n"));
}

/// Explicit 2-D tile geometries: row stripes (1×4), a square plan (2×2),
/// a tall plan (4×2), and a 3×3 plan that divides nothing evenly — all on
/// the 8×8 mesh, plus the 3×3 plan on an odd-radix rectangular mesh
/// (kx=5, ky=7) where every seam is ragged. Every plan must stay
/// bit-identical to the sequential active-set kernel (NoRD skips the rect
/// lane: an odd×odd mesh has no Hamiltonian ring).
#[test]
fn parallel_kernel_matches_active_set_on_2d_tile_geometries() {
    let geometries: [(u16, u16); 4] = [(1, 4), (2, 2), (4, 2), (3, 3)];
    let rect = TopologySpec::RectMesh { kx: 5, ky: 7 };
    let mut cells: Vec<(&str, Option<TopologySpec>, (u16, u16))> = Vec::new();
    for &m in MECHANISMS.iter() {
        for &g in geometries.iter() {
            cells.push((m, None, g));
        }
        if m != "NoRD" {
            cells.push((m, Some(rect), (3, 3)));
        }
    }
    let failures: Vec<String> = cells
        .par_iter()
        .map(|&(mech, topology, (rows, cols))| {
            let lane = if topology.is_some() { "rect5x7" } else { "mesh8x8" };
            eprintln!("cell start: {lane}/{mech}/grid={rows}x{cols}");
            let mut b = RunSpec::builder()
                .mechanism(mech)
                .pattern(Pattern::UniformRandom)
                .rate(0.05)
                .gated_fraction(0.3)
                .seed(0xF10F)
                .warmup(1_500)
                .cycles(6_000)
                .drain(25_000);
            if let Some(t) = topology {
                b = b.topology(t);
            }
            let s = b.build();
            let kernel = KernelMode::Parallel {
                tiles: rows as usize * cols as usize,
                grid: Some((rows, cols)),
            };
            let active = run_kernel(&s, KernelMode::ActiveSet);
            let parallel = run_kernel(&s, kernel);
            let aj = serde_json::to_string(&active).expect("serialize active result");
            let pj = serde_json::to_string(&parallel).expect("serialize parallel result");
            if active.packets <= 100 {
                return Some(format!(
                    "{lane}/{mech}/grid={rows}x{cols}: too little traffic ({} packets)",
                    active.packets
                ));
            }
            if aj != pj {
                return Some(format!(
                    "{lane}/{mech}/grid={rows}x{cols}: parallel and active-set diverged"
                ));
            }
            None
        })
        .collect::<Vec<Option<String>>>()
        .into_iter()
        .flatten()
        .collect();
    assert!(failures.is_empty(), "2-D geometry failures:\n{}", failures.join("\n"));
}

/// One end-state digest plus the skip counter for the low-rate rows, which
/// need `cycles_skipped` — deliberately *not* part of `RunResult` (it
/// would break the bit-identity the matrix above asserts).
fn run_low_rate(mech_name: &str, kernel: KernelMode) -> (String, u64, u64) {
    let mut cfg = NocConfig::default();
    if mech_name == "NoRD" {
        cfg.enable_ring = true;
    }
    let cycles = 60_000u64;
    let gating = GatingSchedule::static_fraction(cfg.nodes(), 0.3, 0xF10F, &[]);
    let workload = SyntheticWorkload::new(
        cfg.k,
        Pattern::UniformRandom,
        0.001,
        cfg.synth_packet_len,
        cycles,
        gating,
        0xF10F ^ 0xABCD,
    );
    let mech = mechanism::by_name(mech_name, &cfg).expect("known mechanism");
    let mut sim = Simulation::new(cfg, mech, Box::new(workload));
    sim.core.kernel = kernel;
    sim.run(cycles);
    sim.drain(25_000);
    let residency = sim.core.residency().to_vec();
    let digest = serde_json::to_string(&(&sim.core.activity, &sim.core.stats, &residency))
        .expect("digest serialization");
    (digest, sim.core.cycles_skipped, cycles)
}

/// At 0.001 flits/cycle/node the 8×8 fabric drains between packets, so
/// the active kernel should spend most of the run jumping — and still
/// land on a bit-identical end state.
#[test]
fn low_rate_rows_skip_most_cycles_and_stay_bit_identical() {
    let failures: Vec<String> = MECHANISMS
        .par_iter()
        .map(|&mech| {
            let (active, skipped, cycles) = run_low_rate(mech, KernelMode::ActiveSet);
            let (reference, ref_skipped, _) = run_low_rate(mech, KernelMode::Reference);
            let (parallel, par_skipped, _) =
                run_low_rate(mech, KernelMode::Parallel { tiles: 4, grid: None });
            if active != reference {
                return Some(format!("{mech}: low-rate active vs reference end states differ"));
            }
            if ref_skipped != 0 {
                return Some(format!("{mech}: reference kernel skipped {ref_skipped} cycles"));
            }
            if parallel != active {
                return Some(format!("{mech}: low-rate parallel vs active end states differ"));
            }
            if par_skipped != skipped {
                return Some(format!(
                    "{mech}: parallel kernel skipped {par_skipped} cycles, active {skipped} \
                     (jump horizons must agree)"
                ));
            }
            let frac = skipped as f64 / cycles as f64;
            if frac <= 0.5 {
                return Some(format!(
                    "{mech}: only {:.1}% of cycles skipped at rate 0.001 (want >50%)",
                    100.0 * frac
                ));
            }
            None
        })
        .collect::<Vec<Option<String>>>()
        .into_iter()
        .flatten()
        .collect();
    assert!(failures.is_empty(), "low-rate skip failures:\n{}", failures.join("\n"));
}

/// MMPP and diurnal modulated workloads join the bit-identity matrix:
/// phase switches re-seed the injection rate mid-run through
/// `SyntheticWorkload::set_rate`, and the modulator's own RNG draws the
/// next dwell *at the switch cycle* — so the contract only holds if every
/// kernel lands `update_cores` on exactly the same cycles. Any horizon
/// bug (a kernel skipping past a phase switch) desynchronizes the dwell
/// RNG stream and shows up here as a divergence.
#[test]
fn modulated_rows_stay_bit_identical_across_all_kernels() {
    let cells: Vec<(&str, &str)> =
        MECHANISMS.iter().flat_map(|&m| [("mmpp", m), ("diurnal", m)]).collect();
    let failures: Vec<String> = cells
        .par_iter()
        .map(|&(kind, mech)| {
            eprintln!("cell start: {kind}/{mech}");
            let b = RunSpec::builder()
                .mechanism(mech)
                .pattern(Pattern::UniformRandom)
                .gated_fraction(0.3)
                .seed(0xF10F)
                .warmup(1_500)
                .cycles(9_000)
                .drain(25_000);
            let s = match kind {
                "mmpp" => b.mmpp(vec![0.002, 0.15], 1_500),
                _ => b.diurnal(vec![0.002, 0.15], 1_500),
            }
            .build();
            let active = run_kernel(&s, KernelMode::ActiveSet);
            let reference = run_kernel(&s, KernelMode::Reference);
            let parallel = run_kernel(&s, KernelMode::Parallel { tiles: 4, grid: None });
            let aj = serde_json::to_string(&active).expect("serialize active result");
            let rj = serde_json::to_string(&reference).expect("serialize reference result");
            let pj = serde_json::to_string(&parallel).expect("serialize parallel result");
            if active.packets <= 100 {
                return Some(format!(
                    "{kind}/{mech}: too little traffic ({} packets)",
                    active.packets
                ));
            }
            if aj != rj {
                return Some(format!("{kind}/{mech}: active-set and reference diverged"));
            }
            if aj != pj {
                return Some(format!("{kind}/{mech}: parallel and active-set diverged"));
            }
            None
        })
        .collect::<Vec<Option<String>>>()
        .into_iter()
        .flatten()
        .collect();
    assert!(failures.is_empty(), "modulated equivalence failures:\n{}", failures.join("\n"));
}

/// Like [`run_low_rate`], but under a bursty MMPP schedule whose quiet
/// phases are totally silent. The active kernel must still skip cycles
/// inside those phases — the workload horizon (the next sampled phase
/// switch) bounds each jump without forbidding it.
fn run_bursty(mech_name: &str, kernel: KernelMode) -> (String, u64) {
    let mut cfg = NocConfig::default();
    if mech_name == "NoRD" {
        cfg.enable_ring = true;
    }
    let cycles = 60_000u64;
    let gating = GatingSchedule::static_fraction(cfg.nodes(), 0.3, 0xF10F, &[]);
    let workload = ModulatedWorkload::new(
        PatternSpace { kx: cfg.kx(), ky: cfg.ky(), c: cfg.concentration() },
        Pattern::UniformRandom,
        vec![0.0, 0.10],
        Dwell::Geometric { mean: 3_000 },
        cfg.synth_packet_len,
        cycles,
        gating,
        0xF10F ^ 0xABCD,
    );
    let mech = mechanism::by_name(mech_name, &cfg).expect("known mechanism");
    let mut sim = Simulation::new(cfg, mech, Box::new(workload));
    sim.core.kernel = kernel;
    sim.run(cycles);
    sim.drain(25_000);
    let residency = sim.core.residency().to_vec();
    let digest = serde_json::to_string(&(&sim.core.activity, &sim.core.stats, &residency))
        .expect("digest serialization");
    (digest, sim.core.cycles_skipped)
}

#[test]
fn mmpp_quiet_phases_skip_cycles_and_stay_bit_identical() {
    let failures: Vec<String> = MECHANISMS
        .par_iter()
        .map(|&mech| {
            let (active, skipped) = run_bursty(mech, KernelMode::ActiveSet);
            let (reference, ref_skipped) = run_bursty(mech, KernelMode::Reference);
            let (parallel, par_skipped) =
                run_bursty(mech, KernelMode::Parallel { tiles: 4, grid: None });
            if active != reference {
                return Some(format!("{mech}: bursty active vs reference end states differ"));
            }
            if parallel != active {
                return Some(format!("{mech}: bursty parallel vs active end states differ"));
            }
            if ref_skipped != 0 {
                return Some(format!("{mech}: reference kernel skipped {ref_skipped} cycles"));
            }
            if skipped == 0 {
                return Some(format!(
                    "{mech}: active kernel skipped no cycles under the bursty schedule \
                     (silent MMPP phases should be skippable)"
                ));
            }
            if par_skipped != skipped {
                return Some(format!(
                    "{mech}: parallel kernel skipped {par_skipped} cycles, active {skipped} \
                     (jump horizons must agree)"
                ));
            }
            None
        })
        .collect::<Vec<Option<String>>>()
        .into_iter()
        .flatten()
        .collect();
    assert!(failures.is_empty(), "bursty skip failures:\n{}", failures.join("\n"));
}

/// Record→replay closes the loop on the trace container: capturing a
/// run's injection stream and core schedule, then replaying it through a
/// `TraceWorkload`, must reproduce the source `RunResult` byte for byte —
/// on every kernel. (The trace horizon differs from the source
/// workload's, so this also proves results are invariant to *where* the
/// clock jumps land, as long as they are sound.)
#[test]
fn recorded_traces_replay_bit_identical_on_every_kernel() {
    let sources: Vec<(&str, bool)> = vec![("gFLOV", false), ("NoRD", false), ("rFLOV", true)];
    let failures: Vec<String> = sources
        .par_iter()
        .map(|&(mech, bursty)| {
            eprintln!("cell start: replay/{mech}{}", if bursty { "/mmpp" } else { "" });
            let b = RunSpec::builder()
                .mechanism(mech)
                .pattern(Pattern::UniformRandom)
                .gated_fraction(0.3)
                .seed(0xF10F)
                .warmup(1_500)
                .cycles(6_000)
                .drain(25_000);
            let source = if bursty { b.mmpp(vec![0.0, 0.10], 1_000) } else { b.rate(0.05) }
                .build()
                .resolved();
            let (audited, data) =
                record_trace(&source, KernelMode::ActiveSet).expect("source spec is valid");
            let source_json =
                serde_json::to_string(&audited.result).expect("serialize source result");
            let spec_json = serde_json::to_string(&source).expect("spec serializes");
            let bytes = tracefmt::encode_trace(KERNEL_VERSION, &spec_json, &data);
            let path = std::env::temp_dir()
                .join(format!("flov-equiv-trace-{mech}-{bursty}-{}.flovtrace", std::process::id()));
            std::fs::write(&path, &bytes).expect("trace file writes");
            let crc = u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().expect("crc"));
            let mut replay = source.clone();
            replay.workload = WorkloadSpec::Trace {
                path: path.to_string_lossy().into_owned(),
                crc,
                closed_loop: false,
            };
            let kernels = [
                ("active", KernelMode::ActiveSet),
                ("reference", KernelMode::Reference),
                ("parallel", KernelMode::Parallel { tiles: 4, grid: None }),
            ];
            let mut failure = None;
            for (kname, kernel) in kernels {
                let r = run_kernel(&replay, kernel);
                let rj = serde_json::to_string(&r).expect("serialize replay result");
                if rj != source_json {
                    failure = Some(format!(
                        "replay/{mech} (bursty={bursty}): {kname}-kernel replay diverged \
                         from the recorded source result"
                    ));
                    break;
                }
            }
            let _ = std::fs::remove_file(&path);
            if failure.is_none() && audited.result.packets <= 100 {
                failure = Some(format!(
                    "replay/{mech} (bursty={bursty}): too little traffic ({} packets)",
                    audited.result.packets
                ));
            }
            failure
        })
        .collect::<Vec<Option<String>>>()
        .into_iter()
        .flatten()
        .collect();
    assert!(failures.is_empty(), "record→replay failures:\n{}", failures.join("\n"));
}

/// Regression: NoRD at the paper's base load (0.05) with seed 0xF10F used
/// to trip the non-escape U-turn `debug_assert` in the VA stage — a power
/// reconfiguration moves the NoRD proxy/routing table under in-flight
/// packets, and the refreshed table could point a flit straight back out
/// its input port. `NordRouting::route` now diverts that case onto the
/// escape ring (like NO_ROUTE). This pins the exact rate/seed combination
/// that exposed it; debug assertions are active in test builds.
#[test]
fn nord_survives_base_load_without_uturn() {
    let r = run_kernel(&spec("NoRD", Pattern::UniformRandom), KernelMode::ActiveSet);
    assert!(r.packets > 100, "NoRD base-load run delivered only {} packets", r.packets);
    assert!(r.delivered_all, "NoRD base-load run left packets in flight");
}

#[test]
fn kernel_version_reflects_result_schema() {
    // The kernel *mode* still never enters the cache key — both modes are
    // bit-identical (and so is auditing, which is read-only). The salt
    // moved to 3 because latency percentiles switched to bucket lower
    // edges and `RunSpec` grew `audit`/`mech_switches`: v2 entries carry
    // percentile values (and spec serializations) the harness no longer
    // produces.
    assert_eq!(KERNEL_VERSION, 3);
}
