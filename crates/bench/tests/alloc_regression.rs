//! Steady-state allocation regression test for the simulation hot loop.
//!
//! A counting `#[global_allocator]` wraps the system allocator behind an
//! armed flag. Each scenario warms a simulation up (letting every
//! persistent arena — tile delta buffers, NIC queues, active sets, wake
//! scratch — reach its high-water mark), arms the counter, runs 1,000
//! further cycles, and asserts the count stayed at zero. Any `Vec::new`,
//! boxed closure, or format string that sneaks back into `Simulation::step`
//! or the parallel kernel's per-cycle path fails this test immediately.
//!
//! Scope: mesh topologies with the timeline disabled (`interval_width = 0`)
//! and no auditor. The NoRD ring is excluded — ring staging intentionally
//! allocates per multi-flit ring packet (`stage.push((pkt, vec![flit]))`),
//! which is a per-transfer cost, not a hot-loop regression. The counter is
//! global, so every scenario runs inside ONE `#[test]` — concurrent tests
//! in this binary would bleed counts into each other.

use flov_bench::KernelMode;
use flov_core::mechanism;
use flov_noc::network::Simulation;
use flov_noc::NocConfig;
use flov_workloads::{GatingSchedule, Pattern, PatternSpace, SyntheticWorkload};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

struct CountingAlloc;

static ARMED: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicU64 = AtomicU64::new(0);
/// One-shot: the first armed allocation prints its backtrace, so a
/// regression report names the offender instead of just a count.
static TRACE: AtomicBool = AtomicBool::new(false);

fn count_armed() {
    if ARMED.load(Ordering::Relaxed) {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        if TRACE.swap(false, Ordering::Relaxed) {
            // Disarm while capturing: the backtrace itself allocates.
            ARMED.store(false, Ordering::Relaxed);
            let bt = std::backtrace::Backtrace::force_capture();
            eprintln!("first steady-state allocation at:\n{bt}");
            ARMED.store(true, Ordering::Relaxed);
        }
    }
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count_armed();
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        count_armed();
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        count_armed();
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

const WARMUP: u64 = 3_000;
const ARMED_CYCLES: u64 = 1_000;

fn make_sim(mech_name: &str, kernel: KernelMode) -> Simulation {
    let cfg = NocConfig::default(); // 8x8 mesh, no ring
    let space = PatternSpace { kx: cfg.kx(), ky: cfg.ky(), c: cfg.concentration() };
    let gating = GatingSchedule::static_fraction(cfg.cores(), 0.3, 42, &[]);
    let workload = SyntheticWorkload::with_space(
        space,
        Pattern::UniformRandom,
        0.05,
        cfg.synth_packet_len,
        WARMUP + ARMED_CYCLES,
        gating,
        42 ^ 0xABCD,
    );
    let mech = mechanism::by_name(mech_name, &cfg)
        .unwrap_or_else(|| panic!("unknown mechanism {mech_name:?}"));
    let mut sim = Simulation::new(cfg, mech, Box::new(workload));
    sim.core.kernel = kernel;
    sim.core.stats.interval_width = 0; // timeline off: interval buckets grow forever
    sim
}

fn steady_state_allocs(mech_name: &str, kernel: KernelMode) -> u64 {
    let mut sim = make_sim(mech_name, kernel);
    sim.run(WARMUP);
    ALLOCS.store(0, Ordering::SeqCst);
    TRACE.store(true, Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
    sim.run(ARMED_CYCLES);
    ARMED.store(false, Ordering::SeqCst);
    TRACE.store(false, Ordering::SeqCst);
    ALLOCS.load(Ordering::SeqCst)
}

#[test]
fn hot_loop_is_allocation_free_after_warmup() {
    // One test fn, scenarios in sequence: the counter is process-global.
    let kernels: [(&str, KernelMode); 4] = [
        ("active", KernelMode::ActiveSet),
        ("parallel1", KernelMode::Parallel { tiles: 1, grid: None }),
        ("parallel2x2", KernelMode::Parallel { tiles: 4, grid: Some((2, 2)) }),
        ("parallel3x2", KernelMode::Parallel { tiles: 6, grid: Some((3, 2)) }),
    ];
    // Baseline bounds the raw datapath; rFLOV/gFLOV exercise the FLOV
    // latch/chain machinery plus the sharded control path; RP adds the
    // punch scratch vectors and fallback-wakeup buffers.
    let mechanisms = ["Baseline", "rFLOV", "gFLOV", "RP"];
    let mut failures = Vec::new();
    for (kname, kernel) in kernels {
        for mech in mechanisms {
            let n = steady_state_allocs(mech, kernel);
            eprintln!("alloc check {kname:>11}/{mech:>8}: {n} steady-state allocations");
            if n != 0 {
                failures.push(format!(
                    "{kname}/{mech}: {n} allocations in {ARMED_CYCLES} steady-state cycles"
                ));
            }
        }
    }
    assert!(failures.is_empty(), "hot loop allocated after warm-up:\n{}", failures.join("\n"));
}
