//! Criterion wrappers over the ablation studies (reduced scale), so
//! `cargo bench` exercises every sensitivity sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use flov_bench::ablations;
use flov_bench::Engine;
use std::hint::black_box;

const CYCLES: u64 = 5_000;

fn ab_escape_timeout(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_escape_timeout");
    g.sample_size(10);
    g.bench_function("4-point sweep (reduced)", |b| {
        b.iter(|| black_box(ablations::ablate_escape_timeout(&Engine::without_cache(), CYCLES)))
    });
    g.finish();
}

fn ab_idle_threshold(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_idle_threshold");
    g.sample_size(10);
    g.bench_function("4-point sweep (reduced)", |b| {
        b.iter(|| black_box(ablations::ablate_idle_threshold(&Engine::without_cache(), CYCLES)))
    });
    g.finish();
}

fn ab_rp_stall(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_rp_stall");
    g.sample_size(10);
    g.bench_function("3-point sweep (reduced)", |b| {
        b.iter(|| black_box(ablations::ablate_rp_stall(&Engine::without_cache(), CYCLES * 4)))
    });
    g.finish();
}

fn ab_buffers_vcs(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_buffers_and_vcs");
    g.sample_size(10);
    g.bench_function("buffer depth sweep (reduced)", |b| {
        b.iter(|| black_box(ablations::ablate_buffer_depth(&Engine::without_cache(), CYCLES)))
    });
    g.bench_function("vc count sweep (reduced)", |b| {
        b.iter(|| black_box(ablations::ablate_vc_count(&Engine::without_cache(), CYCLES)))
    });
    g.finish();
}

fn ab_policies(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_policies");
    g.sample_size(10);
    g.bench_function("rp policy sweep (reduced)", |b| {
        b.iter(|| black_box(ablations::ablate_rp_policy(&Engine::without_cache(), CYCLES)))
    });
    g.bench_function("handshake rtt sweep (reduced)", |b| {
        b.iter(|| black_box(ablations::ablate_handshake_rtt(&Engine::without_cache(), CYCLES)))
    });
    g.finish();
}

criterion_group!(
    ablations_group,
    ab_escape_timeout,
    ab_idle_threshold,
    ab_rp_stall,
    ab_buffers_vcs,
    ab_policies
);
criterion_main!(ablations_group);
