//! One Criterion group per paper table/figure, running the same generator
//! the `fig*` binaries use, at reduced scale — so `cargo bench` validates
//! every experiment pipeline and tracks the simulator's wall-clock cost of
//! regenerating each figure.

use criterion::{criterion_group, criterion_main, Criterion};
use flov_bench::figures::{
    fig_breakdown, fig_parsec, fig_static, fig_synthetic, fig_timeline, overhead, table1,
    SynthScale,
};
use flov_bench::Engine;
use flov_workloads::Pattern;
use std::hint::black_box;

fn engine() -> Engine {
    Engine::without_cache()
}

fn bench_scale() -> SynthScale {
    SynthScale {
        warmup: 1_000,
        cycles: 6_000,
        drain: 20_000,
        fractions: vec![0.0, 0.5],
        rates: vec![0.02],
        seed: 0xF10F,
    }
}

fn fig6_uniform(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6_uniform_random");
    g.sample_size(10);
    g.bench_function("latency+power sweep (reduced)", |b| {
        b.iter(|| black_box(fig_synthetic(&engine(), Pattern::UniformRandom, &bench_scale())))
    });
    g.finish();
}

fn fig7_tornado(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7_tornado");
    g.sample_size(10);
    g.bench_function("latency+power sweep (reduced)", |b| {
        b.iter(|| black_box(fig_synthetic(&engine(), Pattern::Tornado, &bench_scale())))
    });
    g.finish();
}

fn fig8ab_breakdown(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8ab_latency_breakdown");
    g.sample_size(10);
    g.bench_function("uniform (reduced)", |b| {
        b.iter(|| black_box(fig_breakdown(&engine(), Pattern::UniformRandom, &bench_scale())))
    });
    g.bench_function("tornado (reduced)", |b| {
        b.iter(|| black_box(fig_breakdown(&engine(), Pattern::Tornado, &bench_scale())))
    });
    g.finish();
}

fn fig8cd_parsec(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8cd_parsec_full_system");
    g.sample_size(10);
    g.bench_function("swaptions x 4 mechanisms", |b| {
        b.iter(|| {
            black_box(fig_parsec(
                &engine(),
                &["swaptions"],
                0xF10F,
                &["Baseline", "RP", "rFLOV", "gFLOV"],
            ))
        })
    });
    g.finish();
}

fn fig9_static(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig9_static_power");
    g.sample_size(10);
    g.bench_function("static power sweep (reduced)", |b| {
        b.iter(|| black_box(fig_static(&engine(), &bench_scale())))
    });
    g.finish();
}

fn fig10_reconfig(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig10_reconfiguration_timeline");
    g.sample_size(10);
    let scale = SynthScale { cycles: 20_000, ..bench_scale() };
    g.bench_function("gFLOV vs RP timeline (reduced)", |b| {
        b.iter(|| black_box(fig_timeline(&engine(), &scale)))
    });
    g.finish();
}

fn table1_and_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1_and_overhead");
    g.bench_function("table1", |b| b.iter(|| black_box(table1())));
    g.bench_function("overhead_analysis", |b| b.iter(|| black_box(overhead())));
    g.finish();
}

criterion_group!(
    figures,
    fig6_uniform,
    fig7_tornado,
    fig8ab_breakdown,
    fig8cd_parsec,
    fig9_static,
    fig10_reconfig,
    table1_and_overhead
);
criterion_main!(figures);
