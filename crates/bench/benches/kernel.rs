//! Simulator-kernel micro-benchmarks: cycles/second per mechanism, route
//! computation, arbitration, and PRNG throughput. These guard the
//! performance-engineering discipline of the hot loop (no allocation,
//! compact flits, O(1) channel delivery).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use flov_core::mechanism;
use flov_core::routing::{flov_route_escape, flov_route_regular};
use flov_noc::network::Simulation;
use flov_noc::rng::Rng;
use flov_noc::router::arbiter::RoundRobin;
use flov_noc::routing::{yx_route, RouteCtx};
use flov_noc::types::{Coord, Dir, Port, PowerState};
use flov_noc::NocConfig;
use flov_workloads::{GatingSchedule, Pattern, SyntheticWorkload};
use std::hint::black_box;

fn make_sim(mech: &str, rate: f64, fraction: f64) -> Simulation {
    let cfg = NocConfig::paper_table1();
    let m = mechanism::by_name(mech, &cfg).unwrap();
    let w = SyntheticWorkload::new(
        cfg.k,
        Pattern::UniformRandom,
        rate,
        cfg.synth_packet_len,
        u64::MAX,
        GatingSchedule::static_fraction(cfg.nodes(), fraction, 3, &[]),
        7,
    );
    let mut sim = Simulation::new(cfg, m, Box::new(w));
    sim.run(2_000); // settle power states
    sim
}

fn sim_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernel_cycles_per_sec");
    g.sample_size(10);
    g.throughput(Throughput::Elements(1_000));
    for mech in ["Baseline", "RP", "rFLOV", "gFLOV"] {
        let mut sim = make_sim(mech, 0.05, 0.4);
        g.bench_function(format!("{mech} 8x8 @0.05"), |b| {
            b.iter(|| {
                sim.run(1_000);
                black_box(sim.core.cycle)
            })
        });
    }
    // Idle network: the fast path when nothing moves.
    let mut idle = make_sim("gFLOV", 0.0, 0.4);
    g.bench_function("gFLOV 8x8 idle", |b| {
        b.iter(|| {
            idle.run(1_000);
            black_box(idle.core.cycle)
        })
    });
    g.finish();
}

fn routing_micro(c: &mut Criterion) {
    let mut g = c.benchmark_group("routing_decision");
    g.sample_size(20);
    g.throughput(Throughput::Elements(1));
    let mk_ctx = |gated_n: bool| RouteCtx {
        kx: 8,
        ky: 8,
        torus: false,
        at: Coord::new(3, 3),
        in_port: Port::West,
        dst: Coord::new(6, 6),
        escape: false,
        neighbors: [
            Some(if gated_n { PowerState::Sleep } else { PowerState::Active }),
            Some(PowerState::Active),
            Some(PowerState::Sleep),
            Some(PowerState::Active),
        ],
    };
    g.bench_function("yx_route", |b| {
        b.iter(|| black_box(yx_route(black_box(Coord::new(3, 3)), black_box(Coord::new(6, 6)))))
    });
    g.bench_function("flov_regular_fast_path", |b| {
        let ctx = mk_ctx(false);
        b.iter(|| black_box(flov_route_regular(black_box(&ctx))))
    });
    g.bench_function("flov_regular_gated_neighbors", |b| {
        let ctx = mk_ctx(true);
        b.iter(|| black_box(flov_route_regular(black_box(&ctx))))
    });
    g.bench_function("flov_escape", |b| {
        let ctx = RouteCtx { escape: true, ..mk_ctx(true) };
        b.iter(|| black_box(flov_route_escape(black_box(&ctx))))
    });
    g.finish();
}

fn arbiter_micro(c: &mut Criterion) {
    let mut g = c.benchmark_group("arbitration");
    g.sample_size(20);
    g.throughput(Throughput::Elements(1));
    let mut rr = RoundRobin::new(12);
    g.bench_function("round_robin_12way_dense", |b| b.iter(|| black_box(rr.grant(|_| true))));
    let mut rr2 = RoundRobin::new(12);
    g.bench_function("round_robin_12way_sparse", |b| b.iter(|| black_box(rr2.grant(|i| i == 7))));
    g.finish();
}

fn rng_micro(c: &mut Criterion) {
    let mut g = c.benchmark_group("prng");
    g.sample_size(20);
    g.throughput(Throughput::Elements(1));
    let mut rng = Rng::new(1);
    g.bench_function("next_u64", |b| b.iter(|| black_box(rng.next_u64())));
    g.bench_function("below_64", |b| b.iter(|| black_box(rng.below(64))));
    g.bench_function("chance", |b| b.iter(|| black_box(rng.chance(0.02))));
    g.finish();
}

fn chain_walk_micro(c: &mut Criterion) {
    let mut g = c.benchmark_group("chain_walk");
    g.sample_size(20);
    g.throughput(Throughput::Elements(1));
    let mut sim = make_sim("gFLOV", 0.0, 0.6);
    sim.run(2_000);
    let core = &sim.core;
    g.bench_function("walk_over_sleepers_8x8", |b| {
        b.iter(|| black_box(core.chain_walk(black_box(8), Dir::East, black_box(15))))
    });
    g.finish();
}

criterion_group!(kernel, sim_throughput, routing_micro, arbiter_micro, rng_micro, chain_walk_micro);
criterion_main!(kernel);
