//! Batch-engine throughput measurement behind `flov bench-engine`.
//!
//! Times the full `Engine::run_batch` path — key hashing, cache probing,
//! work-stealing scheduling, persistence — over a ~1000-run sweep of tiny
//! unique specs, in four lanes:
//!
//! - `cold_binary_sharded` / `warm_binary_sharded`: the current engine
//!   (sharded binary cache + in-memory index + work-stealing scheduler),
//!   first populating an empty cache, then replaying it fully warm.
//! - `cold_json_flat` / `warm_json_flat`: the seed engine's layout (flat
//!   per-key JSON files probed by direct reads), as the A/B baseline the
//!   ISSUE's ≥10× warm-replay target is measured against.
//!
//! Every lane must produce byte-identical results (the cache is an
//! implementation detail, never a semantic one), and the warm lanes must
//! serve every run from cache. The report lands in `BENCH_engine.json`;
//! `--min-warm-probe-rate` turns the warm binary lane's probes/sec into a
//! CI regression gate.

use crate::cache::{CacheFormat, ResultCache};
use crate::engine::Engine;
use crate::spec::RunSpec;
use serde::Serialize;
use std::path::PathBuf;
use std::time::Instant;

/// One timed lane.
#[derive(Clone, Debug, Serialize)]
pub struct EngineLane {
    pub name: String,
    pub runs: usize,
    pub cached: usize,
    pub simulated: usize,
    /// Wall seconds for the `run_batch` call (excludes the index scan,
    /// reported separately).
    pub wall_seconds: f64,
    pub runs_per_sec: f64,
    /// Cache probes served per second (warm lanes: every run is a probe).
    pub probes_per_sec: f64,
    /// One-time index build: directory-scan seconds and entries found
    /// (zero for the flat-layout lanes, which keep no index).
    pub index_scan_seconds: f64,
    pub index_entries: usize,
    /// Scheduler counters (cold lanes; warm lanes simulate nothing).
    pub workers: usize,
    pub occupancy: f64,
    pub steals: u64,
    /// Cache footprint after the lane.
    pub bytes_on_disk: u64,
}

/// The full `BENCH_engine.json` payload.
#[derive(Clone, Debug, Serialize)]
pub struct EngineBenchReport {
    pub quick: bool,
    pub host_threads: usize,
    pub runs: usize,
    pub lanes: Vec<EngineLane>,
    /// Warm binary-sharded replay wall time over warm flat-JSON replay
    /// wall time (the acceptance target is ≥10 on a ≥1000-run sweep).
    pub warm_speedup_vs_json_flat: f64,
}

/// The sweep: `n` unique tiny specs. Short runs with a dense timeline
/// (~1200 interval samples, the payload shape of a long production run),
/// so warm-lane probes decode a realistic entry while the cold lane stays
/// cheap to simulate.
pub fn sweep_specs(n: usize) -> Vec<RunSpec> {
    (0..n)
        .map(|i| {
            RunSpec::builder()
                .mechanism(if i % 2 == 0 { "gFLOV" } else { "rFLOV" })
                .k(4)
                .rate(0.10)
                .gated_fraction(0.25)
                .seed(1_000 + i as u64)
                .warmup(0)
                .cycles(6_000)
                .timeline_width(5)
                .drain(5_000)
                .build()
        })
        .collect()
}

fn lane_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("flov-bench-engine-{}-{tag}", std::process::id()))
}

/// Run one lane: build an engine over `cache`, execute the sweep
/// `repeats` times keeping the fastest wall (warm lanes finish in
/// milliseconds, so a single shot is at the mercy of scheduler jitter),
/// and return the lane row plus a canonical digest of every result.
fn run_lane(
    name: &str,
    cache: ResultCache,
    specs: &[RunSpec],
    time_index_scan: bool,
    repeats: usize,
) -> (EngineLane, String) {
    let (index_entries, index_scan_seconds) =
        if time_index_scan { cache.prime_index() } else { (0, 0.0) };
    let mut wall = f64::INFINITY;
    let mut digest = String::new();
    let mut cached = 0;
    let mut simulated = 0;
    let mut sched = None;
    for rep in 0..repeats.max(1) {
        let engine = Engine::with_cache(cache.clone()).quiet();
        let t0 = Instant::now();
        let results = engine.run_batch(specs);
        let w = t0.elapsed().as_secs_f64();
        let d = serde_json::to_string(&results).expect("results serialize");
        assert!(rep == 0 || d == digest, "lane {name} not deterministic across repeats");
        digest = d;
        if w < wall {
            wall = w;
            let s = engine.stats();
            cached = s.cached;
            simulated = s.simulated;
            sched = engine.sched_stats();
        }
    }
    let lane = EngineLane {
        name: name.to_string(),
        runs: specs.len(),
        cached,
        simulated,
        wall_seconds: wall,
        runs_per_sec: specs.len() as f64 / wall.max(1e-9),
        probes_per_sec: cached as f64 / wall.max(1e-9),
        index_scan_seconds,
        index_entries,
        workers: sched.as_ref().map(|x| x.workers).unwrap_or(0),
        occupancy: sched.as_ref().map(|x| x.occupancy()).unwrap_or(0.0),
        steals: sched.as_ref().map(|x| x.steals).unwrap_or(0),
        bytes_on_disk: cache.stats().total_bytes,
    };
    (lane, digest)
}

/// Run the four-lane matrix. Panics if a warm lane misses the cache, if
/// any lane's results diverge from the cold binary lane's, or, when
/// `min_warm_probe_rate` is set, if the warm binary lane probes slower
/// than that floor (probes/sec).
pub fn run_bench(
    quick: bool,
    runs: Option<usize>,
    min_warm_probe_rate: Option<f64>,
) -> EngineBenchReport {
    let n = runs.unwrap_or(if quick { 300 } else { 1_000 });
    let specs = sweep_specs(n);
    let bin_dir = lane_dir("bin");
    let flat_dir = lane_dir("flat");
    for d in [&bin_dir, &flat_dir] {
        let _ = std::fs::remove_dir_all(d);
    }

    let binary = || ResultCache::new(&bin_dir).with_format(CacheFormat::Binary);
    let flat = || ResultCache::legacy_flat_json(&flat_dir);
    // Fresh ResultCache per lane so each warm lane rebuilds its index
    // from a cold directory scan, the way a new `flov` invocation would.
    let warm_repeats = 3;
    let (cold_bin, cold_bin_digest) = run_lane("cold_binary_sharded", binary(), &specs, false, 1);
    eprintln!(
        "[flov] bench-engine cold_binary_sharded: {:.2}s, {:.0} runs/s, \
         {} workers ({:.0}% busy, {} steals)",
        cold_bin.wall_seconds,
        cold_bin.runs_per_sec,
        cold_bin.workers,
        cold_bin.occupancy * 100.0,
        cold_bin.steals,
    );
    let (warm_bin, warm_bin_digest) =
        run_lane("warm_binary_sharded", binary(), &specs, true, warm_repeats);
    eprintln!(
        "[flov] bench-engine warm_binary_sharded: {:.3}s, {:.0} probes/s \
         (index: {} entries in {:.3}s)",
        warm_bin.wall_seconds,
        warm_bin.probes_per_sec,
        warm_bin.index_entries,
        warm_bin.index_scan_seconds,
    );
    let (cold_flat, cold_flat_digest) = run_lane("cold_json_flat", flat(), &specs, false, 1);
    eprintln!(
        "[flov] bench-engine cold_json_flat: {:.2}s, {:.0} runs/s",
        cold_flat.wall_seconds, cold_flat.runs_per_sec,
    );
    let (warm_flat, warm_flat_digest) =
        run_lane("warm_json_flat", flat(), &specs, false, warm_repeats);
    eprintln!(
        "[flov] bench-engine warm_json_flat: {:.3}s, {:.0} probes/s",
        warm_flat.wall_seconds, warm_flat.probes_per_sec,
    );

    // The cache layer must be semantically invisible: every lane, cold or
    // warm, binary or JSON, yields byte-identical results.
    assert_eq!(warm_bin_digest, cold_bin_digest, "binary warm replay diverged from cold run");
    assert_eq!(cold_flat_digest, cold_bin_digest, "flat-JSON lane diverged from binary lane");
    assert_eq!(warm_flat_digest, cold_bin_digest, "flat-JSON warm replay diverged");
    assert_eq!(warm_bin.cached, n, "warm binary lane missed the cache");
    assert_eq!(warm_flat.cached, n, "warm flat lane missed the cache");
    assert_eq!(warm_bin.index_entries, n, "index scan missed entries");

    let warm_speedup = warm_flat.wall_seconds / warm_bin.wall_seconds.max(1e-9);
    eprintln!(
        "[flov] bench-engine: warm replay speedup vs flat JSON: {warm_speedup:.1}x \
         ({:.0} vs {:.0} probes/s)",
        warm_bin.probes_per_sec, warm_flat.probes_per_sec,
    );
    if let Some(floor) = min_warm_probe_rate {
        assert!(
            warm_bin.probes_per_sec >= floor,
            "engine-probe regression: warm binary lane at {:.0} probes/sec < floor {floor:.0}",
            warm_bin.probes_per_sec
        );
    }

    for d in [&bin_dir, &flat_dir] {
        let _ = std::fs::remove_dir_all(d);
    }
    EngineBenchReport {
        quick,
        host_threads: std::thread::available_parallelism().map(|x| x.get()).unwrap_or(1),
        runs: n,
        lanes: vec![cold_bin, warm_bin, cold_flat, warm_flat],
        warm_speedup_vs_json_flat: warm_speedup,
    }
}
