//! Work-stealing job scheduler for the batch engine.
//!
//! `Engine::run_batch` used to hand the compat-rayon pool a fixed-chunk
//! fork-join: worker `w` owned jobs `[w*n/W, (w+1)*n/W)` and idled once
//! its chunk drained, even while a neighbor still held a deep queue of
//! slow simulations. This module replaces that with per-worker deques:
//! each worker pops its own queue from the front (cache-friendly, keeps
//! the submission-contiguous chunks together) and, when empty, steals
//! from the *back* of a neighbor's queue — the classic Chase–Lev shape,
//! here with a `Mutex<VecDeque>` per worker since job bodies are whole
//! simulations (microseconds to seconds) and lock traffic is noise.
//!
//! Determinism: results are written into a slot vector indexed by
//! submission order, so callers observe exactly the sequential ordering
//! no matter which worker ran which job or in what order. The job body
//! receives a [`JobCtx`] exposing the live (not-yet-finished) job count,
//! which the engine uses to arbitrate nested parallelism — many runnable
//! jobs → each run stays single-threaded; a dwindling tail → runs may
//! fan out over in-run tiles.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Handed to each job; describes scheduler state at the moment the job
/// starts.
pub struct JobCtx<'a> {
    remaining: &'a AtomicUsize,
    /// Worker threads serving this batch.
    pub workers: usize,
}

impl JobCtx<'_> {
    /// Jobs not yet completed, including those currently running. An
    /// over-estimate is fine: it only makes nested-parallelism
    /// arbitration more conservative.
    pub fn live_jobs(&self) -> usize {
        self.remaining.load(Ordering::Relaxed)
    }
}

/// Counters describing how a batch was scheduled.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SchedStats {
    pub workers: usize,
    pub jobs: usize,
    /// Jobs executed by a worker other than the one they were seeded to.
    pub steals: u64,
    /// Total nanoseconds workers spent inside job bodies.
    pub busy_nanos: u64,
    /// Wall-clock nanoseconds for the whole batch.
    pub wall_nanos: u64,
}

impl SchedStats {
    /// Fraction of worker-time spent inside job bodies, in [0, 1].
    pub fn occupancy(&self) -> f64 {
        let capacity = self.wall_nanos.saturating_mul(self.workers as u64);
        if capacity == 0 {
            return 0.0;
        }
        (self.busy_nanos as f64 / capacity as f64).min(1.0)
    }
}

/// Worker count for a batch of `jobs`: one thread per job up to the
/// host's parallelism (`FLOV_THREADS` overrides, matching the kernel).
pub fn workers_for(jobs: usize) -> usize {
    let host = std::env::var("FLOV_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1));
    host.min(jobs).max(1)
}

/// Run `f(job_index, ctx)` for every job in `0..jobs` across `workers`
/// threads with work stealing; returns results in submission order plus
/// scheduling counters. Panics in job bodies propagate to the caller.
pub fn run_work_stealing<R, F>(jobs: usize, workers: usize, f: F) -> (Vec<R>, SchedStats)
where
    R: Send,
    F: Fn(usize, &JobCtx) -> R + Sync,
{
    let start = Instant::now();
    let mut stats = SchedStats { workers: workers.max(1), jobs, ..SchedStats::default() };
    if jobs == 0 {
        return (Vec::new(), stats);
    }
    if workers <= 1 || jobs == 1 {
        stats.workers = 1;
        let remaining = AtomicUsize::new(jobs);
        let ctx = JobCtx { remaining: &remaining, workers: 1 };
        let mut out = Vec::with_capacity(jobs);
        for i in 0..jobs {
            out.push(f(i, &ctx));
            remaining.fetch_sub(1, Ordering::Relaxed);
        }
        stats.wall_nanos = start.elapsed().as_nanos() as u64;
        stats.busy_nanos = stats.wall_nanos;
        return (out, stats);
    }

    // Seed each worker's deque with a contiguous chunk of submission
    // indices, same assignment the old fork-join used, so the no-steal
    // fast path touches jobs in the same order.
    let queues: Vec<Mutex<VecDeque<usize>>> = (0..workers)
        .map(|w| {
            let lo = w * jobs / workers;
            let hi = (w + 1) * jobs / workers;
            Mutex::new((lo..hi).collect())
        })
        .collect();
    let remaining = AtomicUsize::new(jobs);
    let steals = AtomicU64::new(0);
    let busy = AtomicU64::new(0);

    // Each worker collects (slot, result) pairs locally; merged after
    // join so `R` needs no Default and slots are written exactly once.
    let mut collected: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let queues = &queues;
                let remaining = &remaining;
                let steals = &steals;
                let busy = &busy;
                let f = &f;
                scope.spawn(move || {
                    let ctx = JobCtx { remaining, workers };
                    let mut local: Vec<(usize, R)> = Vec::new();
                    let mut busy_local = 0u64;
                    loop {
                        // Own queue first (front = submission order)...
                        let mut job = queues[w].lock().expect("deque lock").pop_front();
                        let mut stolen = false;
                        if job.is_none() {
                            // ...then sweep neighbors, stealing from the back.
                            for step in 1..workers {
                                let v = (w + step) % workers;
                                if let Some(j) = queues[v].lock().expect("deque lock").pop_back() {
                                    job = Some(j);
                                    stolen = true;
                                    break;
                                }
                            }
                        }
                        let Some(j) = job else { break };
                        if stolen {
                            steals.fetch_add(1, Ordering::Relaxed);
                        }
                        let t0 = Instant::now();
                        let r = f(j, &ctx);
                        busy_local += t0.elapsed().as_nanos() as u64;
                        remaining.fetch_sub(1, Ordering::Relaxed);
                        local.push((j, r));
                    }
                    busy.fetch_add(busy_local, Ordering::Relaxed);
                    local
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("scheduler worker panicked")).collect()
    });

    // Merge worker-local results into submission-order slots.
    let mut slots: Vec<Option<R>> = (0..jobs).map(|_| None).collect();
    for pairs in collected.drain(..) {
        for (slot, r) in pairs {
            debug_assert!(slots[slot].is_none(), "job {slot} ran twice");
            slots[slot] = Some(r);
        }
    }
    let out: Vec<R> = slots
        .into_iter()
        .enumerate()
        .map(|(i, r)| r.unwrap_or_else(|| panic!("job {i} never ran")))
        .collect();

    stats.steals = steals.load(Ordering::Relaxed);
    stats.busy_nanos = busy.load(Ordering::Relaxed);
    stats.wall_nanos = start.elapsed().as_nanos() as u64;
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn results_arrive_in_submission_order() {
        for workers in [1, 2, 3, 8] {
            let (out, stats) = run_work_stealing(100, workers, |i, _| i * i);
            assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
            assert_eq!(stats.jobs, 100);
        }
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let counters: Vec<AtomicUsize> = (0..257).map(|_| AtomicUsize::new(0)).collect();
        let (out, _) = run_work_stealing(counters.len(), 4, |i, _| {
            counters[i].fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(out.len(), counters.len());
        for (i, c) in counters.iter().enumerate() {
            assert_eq!(c.load(Ordering::Relaxed), 1, "job {i}");
        }
    }

    #[test]
    fn live_jobs_counts_down() {
        let min_seen = AtomicUsize::new(usize::MAX);
        let (_, _) = run_work_stealing(50, 2, |_, ctx| {
            let live = ctx.live_jobs();
            min_seen.fetch_min(live, Ordering::Relaxed);
            assert!(live >= 1, "a running job counts as live");
        });
        assert!(min_seen.load(Ordering::Relaxed) <= 8, "tail should drain");
    }

    #[test]
    fn imbalanced_jobs_get_stolen() {
        // One pathological chunk: jobs 0..50 are slow, the rest instant.
        // With 4 workers the fast workers must steal from the slow chunk
        // owner for the batch to finish; just check totals stay correct.
        let (out, stats) = run_work_stealing(64, 4, |i, _| {
            if i < 16 {
                std::thread::sleep(std::time::Duration::from_micros(200));
            }
            i
        });
        assert_eq!(out, (0..64).collect::<Vec<_>>());
        assert_eq!(stats.workers, 4);
        assert!(stats.wall_nanos > 0 && stats.busy_nanos > 0);
        assert!(stats.occupancy() <= 1.0);
    }

    #[test]
    fn zero_and_one_job_edge_cases() {
        let (out, stats) = run_work_stealing(0, 4, |i, _| i);
        assert!(out.is_empty());
        assert_eq!(stats.jobs, 0);
        let (out, stats) = run_work_stealing(1, 4, |i, _| i + 10);
        assert_eq!(out, vec![10]);
        assert_eq!(stats.workers, 1, "single job runs inline");
    }

    #[test]
    fn workers_for_is_clamped() {
        assert_eq!(workers_for(1), 1);
        assert!(workers_for(10_000) >= 1);
    }
}
