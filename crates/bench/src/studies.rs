//! Beyond-the-paper studies: the NoRD critique quantified, the §II
//! related-work landscape, and mesh-size scaling. Formerly standalone
//! binaries; now library generators driven by `flov {nord,related,scaling}`
//! through a caching [`Engine`].

use crate::engine::Engine;
use crate::report::{f2, mw, Table};
use crate::spec::RunSpec;

/// The six-mechanism §II landscape (Baseline, RP, NoRD, PowerPunch,
/// rFLOV, gFLOV).
pub const LANDSCAPE_MECHS: [&str; 6] = ["Baseline", "RP", "NoRD", "PowerPunch", "rFLOV", "gFLOV"];

fn sweep_spec(mech: &str, k: u16, rate: f64, fraction: f64, cycles: u64) -> RunSpec {
    RunSpec::builder()
        .mechanism(mech)
        .k(k)
        .rate(rate)
        .gated_fraction(fraction)
        .warmup(cycles / 10)
        .cycles(cycles)
        .drain(cycles * 2)
        .build()
}

/// NoRD vs FLOV — quantifying the paper's §II critique of node-router
/// decoupling: a bypass ring is not scalable to large network sizes, and
/// only exists for even `k`. Returns the 8x8 gated-fraction sweep and the
/// mesh-scaling comparison at 75% gated.
pub fn nord_study(engine: &Engine, quick: bool) -> Vec<Table> {
    let cycles = if quick { 12_000 } else { 100_000 };
    let mechs = ["Baseline", "RP", "gFLOV", "NoRD"];

    // Experiment 1: gated-fraction sweep at 8x8.
    let fractions: &[f64] = if quick { &[0.0, 0.5] } else { &[0.0, 0.2, 0.4, 0.6, 0.8] };
    let mut t = Table::new(
        "NoRD vs FLOV — 8x8 UR 0.02, latency / static / total power",
        &["gated %", "mech", "avg lat", "ring flits", "static [mW]", "total [mW]"],
    );
    for &f in fractions {
        let specs: Vec<RunSpec> =
            mechs.iter().map(|&m| sweep_spec(m, 8, 0.02, f, cycles)).collect();
        for r in engine.run_batch(&specs) {
            t.row(vec![
                format!("{:.0}", f * 100.0),
                r.mechanism.clone(),
                if r.packets == 0 { "n/a".into() } else { f2(r.avg_latency) },
                r.ring_flits.to_string(),
                mw(r.power.static_w),
                mw(r.power.total_w),
            ]);
        }
    }

    // Experiment 2: mesh scaling at 75% gated.
    let ks: &[u16] = if quick { &[4, 8] } else { &[4, 8, 12, 16] };
    let mut t2 = Table::new(
        "NoRD scalability — UR 0.02, 75% gated: ring latency grows with k",
        &["k", "mech", "avg lat", "p95 lat", "static [mW]"],
    );
    for &k in ks {
        let specs: Vec<RunSpec> =
            ["gFLOV", "NoRD"].iter().map(|&m| sweep_spec(m, k, 0.02, 0.75, cycles)).collect();
        for r in engine.run_batch(&specs) {
            t2.row(vec![
                k.to_string(),
                r.mechanism.clone(),
                f2(r.avg_latency),
                r.latency_percentiles.1.to_string(),
                mw(r.power.static_w),
            ]);
        }
    }
    vec![t, t2]
}

/// The full §II landscape in one table: all six mechanisms under the
/// paper's synthetic methodology.
pub fn related_landscape(engine: &Engine, quick: bool) -> Table {
    let cycles = if quick { 12_000 } else { 100_000 };
    let fractions: &[f64] = if quick { &[0.5] } else { &[0.2, 0.5, 0.8] };
    let mut t = Table::new(
        "related-work landscape — 8x8, UR 0.02 flits/cycle/node",
        &[
            "gated %",
            "mech",
            "avg lat",
            "p95",
            "static [mW]",
            "dynamic [mW]",
            "total [mW]",
            "gating events",
        ],
    );
    for &f in fractions {
        let specs: Vec<RunSpec> =
            LANDSCAPE_MECHS.iter().map(|&m| sweep_spec(m, 8, 0.02, f, cycles)).collect();
        for r in engine.run_batch(&specs) {
            t.row(vec![
                format!("{:.0}", f * 100.0),
                r.mechanism.clone(),
                f2(r.avg_latency),
                r.latency_percentiles.1.to_string(),
                mw(r.power.static_w),
                mw(r.power.dynamic_w),
                mw(r.power.total_w),
                r.gating_events.to_string(),
            ]);
        }
    }
    t
}

/// Mesh-size scaling (beyond the paper's 8x8): gFLOV vs RP vs Baseline on
/// 4x4 … 16x16 meshes at 50% gated, with one mid-run reconfiguration.
pub fn mesh_scaling(engine: &Engine, quick: bool) -> Table {
    let (cycles, warmup) = if quick { (12_000, 2_000) } else { (100_000, 10_000) };
    let ks: &[u16] = if quick { &[4, 8] } else { &[4, 8, 12, 16] };
    let mechs = ["Baseline", "RP", "gFLOV"];
    let mut t = Table::new(
        "mesh-size scaling: UR 0.02 flits/cycle/node, 50% cores gated",
        &["k", "mech", "avg lat", "avg hops", "flov hops", "static [mW]", "total [mW]", "stall cy"],
    );
    for &k in ks {
        let specs: Vec<RunSpec> = mechs
            .iter()
            .map(|&m| {
                RunSpec::builder()
                    .mechanism(m)
                    .k(k)
                    .gated_fraction(0.5)
                    .seed(0xF10F ^ k as u64)
                    .changes(vec![cycles / 2])
                    .warmup(warmup)
                    .cycles(cycles)
                    .drain(cycles * 2)
                    .build()
            })
            .collect();
        for r in engine.run_batch(&specs) {
            t.row(vec![
                k.to_string(),
                r.mechanism.clone(),
                f2(r.avg_latency),
                f2(r.avg_hops),
                f2(r.avg_flov_hops),
                mw(r.power.static_w),
                mw(r.power.total_w),
                r.stalled_injection_cycles.to_string(),
            ]);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn related_landscape_covers_all_mechanisms() {
        let t = related_landscape(&Engine::without_cache(), true);
        assert_eq!(t.rows.len(), LANDSCAPE_MECHS.len()); // one fraction x 6 mechs
        for (row, mech) in t.rows.iter().zip(LANDSCAPE_MECHS) {
            assert_eq!(row[1], mech);
        }
    }
}
