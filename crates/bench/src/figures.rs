//! One generator per paper table/figure. The `flov` CLI runs these at
//! paper scale through a caching [`Engine`]; the criterion benches run
//! them at reduced scale (cacheless) so `cargo bench` exercises every
//! generator.

use crate::engine::Engine;
use crate::report::{f2, f3, mw, Table};
use crate::spec::{RunResult, RunSpec};
use flov_noc::NocConfig;
use flov_power::{AreaModel, PowerParams};
use flov_workloads::{Pattern, PARSEC_BENCHMARKS};

/// The four mechanisms in presentation order for the synthetic figures.
pub const SYNTH_MECHS: [&str; 4] = ["Baseline", "RP", "rFLOV", "gFLOV"];
/// Fig. 9 uses aggressive RP (workload-independent parking).
pub const STATIC_MECHS: [&str; 4] = ["Baseline", "RP-aggressive", "rFLOV", "gFLOV"];

/// Scale knobs so benches can run miniatures of each figure.
#[derive(Clone, Debug)]
pub struct SynthScale {
    pub warmup: u64,
    pub cycles: u64,
    pub drain: u64,
    pub fractions: Vec<f64>,
    pub rates: Vec<f64>,
    pub seed: u64,
}

impl SynthScale {
    /// Paper methodology: 10k warmup, 100k cycles, gated 0..80%,
    /// rates 0.02 and 0.08.
    pub fn paper() -> SynthScale {
        SynthScale {
            warmup: 10_000,
            cycles: 100_000,
            drain: 100_000,
            fractions: crate::axes::GATED_FRACTIONS.to_vec(),
            rates: crate::axes::INJECTION_RATES.to_vec(),
            seed: 0xF10F,
        }
    }

    /// Miniature for benches and smoke tests.
    pub fn quick() -> SynthScale {
        SynthScale {
            warmup: 2_000,
            cycles: 12_000,
            drain: 30_000,
            fractions: vec![0.0, 0.4, 0.8],
            rates: vec![0.02],
            seed: 0xF10F,
        }
    }

    /// Pick scale from CLI args (`--quick` anywhere selects the miniature).
    pub fn from_args() -> SynthScale {
        if std::env::args().any(|a| a == "--quick") {
            SynthScale::quick()
        } else {
            SynthScale::paper()
        }
    }
}

fn synth_spec(
    mech: &str,
    pattern: Pattern,
    rate: f64,
    fraction: f64,
    scale: &SynthScale,
) -> RunSpec {
    RunSpec::builder()
        .mechanism(mech)
        .pattern(pattern)
        .rate(rate)
        .gated_fraction(fraction)
        .seed(scale.seed)
        .warmup(scale.warmup)
        .cycles(scale.cycles)
        .drain(scale.drain)
        .build()
}

/// Figs. 6 & 7: for each injection rate, three tables — average latency,
/// dynamic power, total power — across gated fractions and mechanisms.
pub fn fig_synthetic(engine: &Engine, pattern: Pattern, scale: &SynthScale) -> Vec<Table> {
    let mut tables = Vec::new();
    for &rate in &scale.rates {
        let specs: Vec<RunSpec> = scale
            .fractions
            .iter()
            .flat_map(|&f| SYNTH_MECHS.iter().map(move |&m| (f, m)))
            .map(|(f, m)| synth_spec(m, pattern, rate, f, scale))
            .collect();
        let results = engine.run_batch(&specs);
        let chunk = SYNTH_MECHS.len();
        // A sweep point can have no measurable traffic (e.g. Tornado at 80%
        // gating may leave no active pair): render latency as "n/a".
        let lat = |r: &RunResult| -> String {
            if r.packets == 0 {
                "n/a".into()
            } else {
                f2(r.avg_latency)
            }
        };
        for (what, get) in [
            ("avg latency [cycles]", lat as fn(&RunResult) -> String),
            ("dynamic power [mW]", |r: &RunResult| mw(r.power.dynamic_w)),
            ("total power [mW]", |r: &RunResult| mw(r.power.total_w)),
        ] {
            let mut headers = vec!["gated %".to_string()];
            headers.extend(SYNTH_MECHS.iter().map(|m| m.to_string()));
            let mut t = Table {
                title: format!("{} — {} traffic, {} flits/cycle/node", what, pattern.name(), rate),
                headers,
                rows: Vec::new(),
            };
            for (i, &f) in scale.fractions.iter().enumerate() {
                let mut row = vec![format!("{:.0}", f * 100.0)];
                for j in 0..chunk {
                    row.push(get(&results[i * chunk + j]));
                }
                t.row(row);
            }
            tables.push(t);
        }
    }
    tables
}

/// Fig. 8(a)/(b): latency breakdown (router / link / serialization /
/// contention / FLOV) per mechanism and gated fraction, at the lower rate.
pub fn fig_breakdown(engine: &Engine, pattern: Pattern, scale: &SynthScale) -> Table {
    let rate = scale.rates[0];
    let specs: Vec<RunSpec> = scale
        .fractions
        .iter()
        .flat_map(|&f| SYNTH_MECHS.iter().map(move |&m| (f, m)))
        .map(|(f, m)| synth_spec(m, pattern, rate, f, scale))
        .collect();
    let results = engine.run_batch(&specs);
    let mut t = Table::new(
        &format!(
            "latency breakdown [cycles/packet] — {} traffic, {} flits/cycle/node",
            pattern.name(),
            rate
        ),
        &["gated %", "mech", "router", "link", "serial", "contention", "flov", "total"],
    );
    let chunk = SYNTH_MECHS.len();
    for (i, &f) in scale.fractions.iter().enumerate() {
        for j in 0..chunk {
            let r = &results[i * chunk + j];
            let b = r.breakdown;
            t.row(vec![
                format!("{:.0}", f * 100.0),
                r.mechanism.clone(),
                f2(b[0]),
                f2(b[1]),
                f2(b[2]),
                f2(b[3]),
                f2(b[4]),
                f2(b.iter().sum()),
            ]);
        }
    }
    t
}

/// Fig. 9: static power vs gated fraction (aggressive RP; workload- and
/// rate-independent for FLOV by construction).
pub fn fig_static(engine: &Engine, scale: &SynthScale) -> Table {
    let rate = scale.rates[0];
    let specs: Vec<RunSpec> = scale
        .fractions
        .iter()
        .flat_map(|&f| STATIC_MECHS.iter().map(move |&m| (f, m)))
        .map(|(f, m)| synth_spec(m, Pattern::UniformRandom, rate, f, scale))
        .collect();
    let results = engine.run_batch(&specs);
    let mut headers = vec!["gated %".to_string()];
    headers.extend(STATIC_MECHS.iter().map(|m| m.to_string()));
    let mut t = Table {
        title: "static power [mW] vs fraction of power-gated cores".into(),
        headers,
        rows: Vec::new(),
    };
    let chunk = STATIC_MECHS.len();
    for (i, &f) in scale.fractions.iter().enumerate() {
        let mut row = vec![format!("{:.0}", f * 100.0)];
        for j in 0..chunk {
            row.push(mw(results[i * chunk + j].power.static_w));
        }
        t.row(row);
    }
    t
}

/// Fig. 10: average-latency timeline under gating reconfigurations at 50%
/// and 60% of the run, UR traffic at 0.02, 10% gated — gFLOV vs RP.
pub fn fig_timeline(engine: &Engine, scale: &SynthScale) -> Table {
    let changes = vec![scale.cycles / 2, scale.cycles * 6 / 10];
    let bucket = (scale.cycles / 50).max(100);
    let mechs = ["gFLOV", "RP"];
    let specs: Vec<RunSpec> = mechs
        .iter()
        .map(|&m| {
            RunSpec::builder()
                .mechanism(m)
                .gated_fraction(0.1)
                .seed(scale.seed)
                .changes(changes.clone())
                .warmup(scale.warmup)
                .cycles(scale.cycles)
                .drain(scale.drain)
                .timeline_width(bucket)
                .build()
        })
        .collect();
    let results = engine.run_batch(&specs);
    let mut t = Table::new(
        &format!(
            "avg packet latency [cycles] over time (reconfigurations at {} and {})",
            changes[0], changes[1]
        ),
        &["cycle", "gFLOV", "RP", "gFLOV pkts", "RP pkts"],
    );
    let n = results[0].timeline.len().max(results[1].timeline.len());
    for b in 0..n {
        let g = results[0].timeline.get(b);
        let r = results[1].timeline.get(b);
        t.row(vec![
            format!("{}", b as u64 * bucket),
            g.map_or("-".into(), |s| f2(s.avg_latency())),
            r.map_or("-".into(), |s| f2(s.avg_latency())),
            g.map_or("-".into(), |s| s.packets.to_string()),
            r.map_or("-".into(), |s| s.packets.to_string()),
        ]);
    }
    t
}

/// Summary statistics of the full-system comparison (paper's headline).
#[derive(Clone, Copy, Debug, Default)]
pub struct ParsecSummary {
    /// gFLOV vs RP total energy (negative = savings), geometric mean.
    pub flov_vs_rp_total: f64,
    /// gFLOV vs RP static energy.
    pub flov_vs_rp_static: f64,
    /// gFLOV vs Baseline static energy.
    pub flov_vs_base_static: f64,
    /// gFLOV vs Baseline runtime (positive = slowdown).
    pub flov_vs_base_runtime: f64,
}

/// Fig. 8(c)/(d): full-system PARSEC-proxy runs — runtime and energy,
/// normalized to Baseline. Returns the table and the headline summary.
pub fn fig_parsec(
    engine: &Engine,
    benches: &[&str],
    seed: u64,
    mechs: &[&str],
) -> (Table, ParsecSummary) {
    let specs: Vec<RunSpec> = benches
        .iter()
        .flat_map(|&b| mechs.iter().map(move |&m| (b, m)))
        .map(|(b, m)| RunSpec::parsec(m, b, seed))
        .collect();
    let results = engine.run_batch(&specs);
    let chunk = mechs.len();
    let mut t = Table::new(
        "PARSEC full-system: runtime and energy normalized to Baseline",
        &["benchmark", "mech", "runtime", "static E", "dynamic E", "total E", "cycles"],
    );
    let base_idx = mechs.iter().position(|&m| m == "Baseline").expect("Baseline required");
    let mut geo = ParsecSummary::default();
    let mut n_ok = 0usize;
    let rp_idx = mechs.iter().position(|&m| m == "RP");
    let flov_idx = mechs.iter().position(|&m| m == "gFLOV");
    let (mut s_rp_t, mut s_rp_s, mut s_b_s, mut s_b_r) = (0.0f64, 0.0, 0.0, 0.0);
    for (bi, &b) in benches.iter().enumerate() {
        let base = &results[bi * chunk + base_idx];
        let bs = base.power.static_j();
        let bd = base.power.dynamic_j();
        let bt = base.power.total_j();
        let br = base.runtime_cycles as f64;
        for (mi, &m) in mechs.iter().enumerate() {
            let r = &results[bi * chunk + mi];
            t.row(vec![
                b.into(),
                m.into(),
                f3(r.runtime_cycles as f64 / br),
                f3(r.power.static_j() / bs),
                f3(r.power.dynamic_j() / bd),
                f3(r.power.total_j() / bt),
                r.runtime_cycles.to_string(),
            ]);
        }
        if let (Some(ri), Some(fi)) = (rp_idx, flov_idx) {
            let rp = &results[bi * chunk + ri];
            let fl = &results[bi * chunk + fi];
            s_rp_t += (fl.power.total_j() / rp.power.total_j()).ln();
            s_rp_s += (fl.power.static_j() / rp.power.static_j()).ln();
            s_b_s += (fl.power.static_j() / bs).ln();
            s_b_r += (fl.runtime_cycles as f64 / br).ln();
            n_ok += 1;
        }
    }
    if n_ok > 0 {
        let n = n_ok as f64;
        geo.flov_vs_rp_total = (s_rp_t / n).exp() - 1.0;
        geo.flov_vs_rp_static = (s_rp_s / n).exp() - 1.0;
        geo.flov_vs_base_static = (s_b_s / n).exp() - 1.0;
        geo.flov_vs_base_runtime = (s_b_r / n).exp() - 1.0;
    }
    (t, geo)
}

/// The default benchmark set (all nine) and mechanisms for Fig. 8(c)/(d).
pub fn parsec_default() -> (Vec<&'static str>, Vec<&'static str>) {
    (PARSEC_BENCHMARKS.iter().map(|b| b.name).collect(), vec!["Baseline", "RP", "rFLOV", "gFLOV"])
}

/// Table I: the simulation testbed parameters.
pub fn table1() -> Table {
    let cfg = NocConfig::paper_table1();
    let p = PowerParams::default();
    let mut t = Table::new("Table I — simulation testbed parameters", &["parameter", "value"]);
    let rows: Vec<(&str, String)> = vec![
        ("Network Topology", {
            use flov_noc::TopologySpec as T;
            match cfg.topology_spec() {
                T::Mesh { k } => format!("{k}x{k} Mesh"),
                T::RectMesh { kx, ky } => format!("{kx}x{ky} Mesh"),
                T::Torus { k } => format!("{k}x{k} Torus"),
                T::CMesh { k, c } => format!("{k}x{k} CMesh, {c} cores/router"),
            }
        }),
        ("Input Buffer Depth", format!("{} flits", cfg.buf_depth)),
        (
            "Router",
            format!("{}-stage ({} cycles) router", cfg.pipeline_stages, cfg.pipeline_stages),
        ),
        (
            "Virtual Channel",
            format!(
                "{} regular VCs and {} escape VC per vnet, {} vnets",
                cfg.regular_vcs, cfg.escape_vcs, cfg.vnets
            ),
        ),
        ("Packet Size", format!("{} flits/packet for synthetic workload", cfg.synth_packet_len)),
        (
            "Memory Hierarchy",
            "32KB L1 I/D $, 8MB L2 $, MESI, 4 MCs at 4 corners (traffic model)".into(),
        ),
        ("Technology", "32nm".into()),
        ("Clock Frequency", format!("{} GHz", cfg.clock_hz / 1e9)),
        ("Link", format!("1mm, {} cycle, 16B width", cfg.link_latency)),
        (
            "Power-Gating Parameters",
            format!(
                "overhead = {} pJ, wakeup latency = {} cycles",
                p.e_gating_event * 1e12,
                cfg.wakeup_latency
            ),
        ),
        ("Baseline Routing", "YX Routing".into()),
    ];
    for (k, v) in rows {
        t.row(vec![k.into(), v]);
    }
    t
}

/// §V-A overhead analysis.
pub fn overhead() -> Table {
    let m = AreaModel::default();
    let mut t = Table::new("FLOV router overhead analysis (paper §V-A)", &["quantity", "value"]);
    t.row(vec!["PSR storage".into(), format!("{} bits (2 sets x 4 entries x 2 bits)", m.psr_bits)]);
    t.row(vec!["HSC wires per neighbor".into(), format!("{} bits", AreaModel::HSC_WIRE_BITS)]);
    t.row(vec![
        "HSC wiring area".into(),
        format!(
            "{:.1e} mm^2 ({:.2}% of baseline router)",
            m.hsc_wires_mm2,
            m.hsc_wire_fraction() * 100.0
        ),
    ]);
    t.row(vec!["FLOV additions total".into(), format!("{:.2e} mm^2", m.flov_overhead_mm2())]);
    t.row(vec![
        "relative to baseline router".into(),
        format!("{:.1}%", m.flov_overhead_fraction() * 100.0),
    ]);
    t.row(vec!["baseline router area".into(), format!("{:.4} mm^2", m.baseline_router_mm2)]);
    t
}

/// Quick sanity run used by a few benches and tests.
pub fn smoke(mech: &str) -> RunResult {
    crate::run(&synth_spec(mech, Pattern::UniformRandom, 0.02, 0.3, &SynthScale::quick()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig_synthetic_quick_has_expected_shape() {
        let tables =
            fig_synthetic(&Engine::without_cache(), Pattern::UniformRandom, &SynthScale::quick());
        assert_eq!(tables.len(), 3); // one rate x 3 metrics
        for t in &tables {
            assert_eq!(t.rows.len(), 3); // three fractions
            assert_eq!(t.headers.len(), 5); // fraction + 4 mechanisms
        }
    }

    #[test]
    fn table1_lists_all_parameters() {
        let t = table1();
        assert_eq!(t.rows.len(), 11);
        let text = t.render();
        assert!(text.contains("8x8 Mesh"));
        assert!(text.contains("YX Routing"));
        assert!(text.contains("17.7 pJ"));
    }

    #[test]
    fn overhead_matches_paper() {
        let text = overhead().render();
        assert!(text.contains("16 bits"));
        assert!(text.contains("6 bits"));
        assert!(text.contains("3.0%") || text.contains("2.9%") || text.contains("3.1%"));
    }

    #[test]
    fn smoke_runs_for_every_mechanism() {
        for m in SYNTH_MECHS {
            let r = smoke(m);
            assert!(r.delivered_all, "{m} left packets in flight");
        }
    }
}
