//! On-disk flit-trace container (`flov trace record` / `replay`).
//!
//! Layout (all integers little-endian or LEB128 varints):
//!
//! ```text
//! magic        8 bytes   "FLOVTR1\n"
//! kernel       u32 LE    KERNEL_VERSION of the recorder (advisory)
//! spec_len     u32 LE    length of the source-spec JSON
//! spec         bytes     canonical RunSpec JSON of the recorded run
//! n_core       uvarint   core-flip events: (Δcycle, node, active-byte)*
//! n_changed    uvarint   change-pulse cycles: (Δcycle)*
//! n_packets    uvarint   injections: (Δcycle, src, dst, vnet, len)*
//! crc          u32 LE    CRC-32C over everything above
//! ```
//!
//! Cycles are delta-encoded per section (first record is the absolute
//! cycle), which keeps dense traces near one byte per record field. The
//! CRC is the same Castagnoli polynomial as the result-cache container
//! ([`crate::binfmt::crc32`]); [`WorkloadSpec::Trace`]'s `crc` field pins
//! it into the cache key so a rewritten trace file can never alias a
//! cached result. The kernel-version salt is advisory — replay across
//! versions is legal (the trace is pure data) but the mismatch is
//! surfaced so bit-identity claims are scoped honestly.

use crate::binfmt::{crc32, write_uvarint, BinError, Reader};
use flov_noc::traits::PacketRequest;
use flov_noc::types::{Cycle, NodeId};
use flov_workloads::trace::TraceData;

/// Trace container magic (the result-cache container uses `FLOVBC1\n`).
pub const TRACE_MAGIC: [u8; 8] = *b"FLOVTR1\n";

/// A decoded trace file.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceFile {
    /// `KERNEL_VERSION` of the recording build.
    pub kernel_version: u32,
    /// Canonical JSON of the recorded run's `RunSpec`.
    pub source_spec_json: String,
    pub data: TraceData,
    /// CRC-32C of the file (the value `WorkloadSpec::Trace` pins).
    pub crc: u32,
}

fn err<T>(msg: impl Into<String>) -> Result<T, BinError> {
    Err(BinError(msg.into()))
}

/// Encode a capture into the container bytes (ready to write to disk).
pub fn encode_trace(kernel_version: u32, source_spec_json: &str, data: &TraceData) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 + source_spec_json.len() + data.packets.len() * 6);
    out.extend_from_slice(&TRACE_MAGIC);
    out.extend_from_slice(&kernel_version.to_le_bytes());
    out.extend_from_slice(&(source_spec_json.len() as u32).to_le_bytes());
    out.extend_from_slice(source_spec_json.as_bytes());

    write_uvarint(data.core_events.len() as u128, &mut out);
    let mut prev: Cycle = 0;
    for &(cycle, node, on) in &data.core_events {
        write_uvarint((cycle - prev) as u128, &mut out);
        write_uvarint(node as u128, &mut out);
        out.push(on as u8);
        prev = cycle;
    }

    write_uvarint(data.changed_cycles.len() as u128, &mut out);
    prev = 0;
    for &cycle in &data.changed_cycles {
        write_uvarint((cycle - prev) as u128, &mut out);
        prev = cycle;
    }

    write_uvarint(data.packets.len() as u128, &mut out);
    prev = 0;
    for &(cycle, req) in &data.packets {
        write_uvarint((cycle - prev) as u128, &mut out);
        write_uvarint(req.src as u128, &mut out);
        write_uvarint(req.dst as u128, &mut out);
        out.push(req.vnet);
        write_uvarint(req.len as u128, &mut out);
        prev = cycle;
    }

    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

fn cycle_of(v: u128) -> Result<Cycle, BinError> {
    u64::try_from(v).map_err(|_| BinError("cycle overflows u64".into()))
}

fn node_of(v: u128) -> Result<NodeId, BinError> {
    NodeId::try_from(u64::try_from(v).unwrap_or(u64::MAX))
        .map_err(|_| BinError(format!("node id {v} overflows u16")))
}

/// Decode and CRC-check a trace container.
pub fn decode_trace(bytes: &[u8]) -> Result<TraceFile, BinError> {
    if bytes.len() < TRACE_MAGIC.len() + 4 + 4 + 4 {
        return err("trace file too short for header");
    }
    let (body, crc_bytes) = bytes.split_at(bytes.len() - 4);
    let stored_crc = u32::from_le_bytes(crc_bytes.try_into().unwrap());
    let actual = crc32(body);
    if stored_crc != actual {
        return err(format!("trace CRC mismatch: stored {stored_crc:08x}, computed {actual:08x}"));
    }

    let mut r = Reader { bytes: body, pos: 0 };
    if r.take(TRACE_MAGIC.len())? != TRACE_MAGIC {
        return err("bad trace magic (not a flov trace file)");
    }
    let kernel_version = u32::from_le_bytes(r.take(4)?.try_into().unwrap());
    let spec_len = u32::from_le_bytes(r.take(4)?.try_into().unwrap()) as usize;
    let source_spec_json = std::str::from_utf8(r.take(spec_len)?)
        .map_err(|_| BinError("source spec is not UTF-8".into()))?
        .to_string();

    let mut data = TraceData::default();
    let n_core = r.bounded_len()?;
    let mut prev: Cycle = 0;
    for _ in 0..n_core {
        let cycle = prev
            .checked_add(cycle_of(r.uvarint()?)?)
            .ok_or_else(|| BinError("core-event cycle overflows u64".into()))?;
        let node = node_of(r.uvarint()?)?;
        let on = match r.byte()? {
            0 => false,
            1 => true,
            b => return err(format!("bad active flag {b}")),
        };
        data.core_events.push((cycle, node, on));
        prev = cycle;
    }

    let n_changed = r.bounded_len()?;
    prev = 0;
    for _ in 0..n_changed {
        let cycle = prev
            .checked_add(cycle_of(r.uvarint()?)?)
            .ok_or_else(|| BinError("change-pulse cycle overflows u64".into()))?;
        data.changed_cycles.push(cycle);
        prev = cycle;
    }

    let n_packets = r.bounded_len()?;
    prev = 0;
    for _ in 0..n_packets {
        let cycle = prev
            .checked_add(cycle_of(r.uvarint()?)?)
            .ok_or_else(|| BinError("packet cycle overflows u64".into()))?;
        let src = node_of(r.uvarint()?)?;
        let dst = node_of(r.uvarint()?)?;
        let vnet = r.byte()?;
        let len = u16::try_from(r.uvarint()?)
            .map_err(|_| BinError("packet length overflows u16".into()))?;
        data.packets.push((cycle, PacketRequest { src, dst, vnet, len }));
        prev = cycle;
    }

    if r.pos != body.len() {
        return err(format!("{} trailing bytes after trace records", body.len() - r.pos));
    }
    Ok(TraceFile { kernel_version, source_spec_json, data, crc: stored_crc })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TraceData {
        let req = |src, dst, vnet, len| PacketRequest { src, dst, vnet, len };
        TraceData {
            packets: vec![
                (0, req(0, 5, 0, 4)),
                (0, req(3, 1, 2, 4)),
                (17, req(5, 0, 0, 1)),
                (100_000, req(63, 62, 1, 9)),
            ],
            core_events: vec![(0, 2, false), (50, 2, true), (50, 7, false)],
            changed_cycles: vec![0, 50, 99_999],
        }
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let data = sample();
        let spec = "{\"fake\":\"spec\"}";
        let bytes = encode_trace(3, spec, &data);
        let file = decode_trace(&bytes).unwrap();
        assert_eq!(file.kernel_version, 3);
        assert_eq!(file.source_spec_json, spec);
        assert_eq!(file.data, data);
        assert_eq!(file.crc, u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().unwrap()));
    }

    #[test]
    fn empty_trace_roundtrips() {
        let bytes = encode_trace(3, "{}", &TraceData::default());
        let file = decode_trace(&bytes).unwrap();
        assert_eq!(file.data, TraceData::default());
    }

    #[test]
    fn corruption_is_detected() {
        let mut bytes = encode_trace(3, "{}", &sample());
        // Flip one payload bit: the CRC must catch it.
        bytes[TRACE_MAGIC.len() + 2] ^= 0x40;
        let e = decode_trace(&bytes).unwrap_err();
        assert!(e.0.contains("CRC"), "unexpected error: {}", e.0);

        // Truncation is caught too (either by length or CRC).
        let bytes = encode_trace(3, "{}", &sample());
        assert!(decode_trace(&bytes[..bytes.len() - 5]).is_err());
        assert!(decode_trace(&bytes[..4]).is_err());
    }

    #[test]
    fn foreign_magic_is_rejected() {
        let mut bytes = encode_trace(3, "{}", &TraceData::default());
        bytes[..8].copy_from_slice(b"FLOVBC1\n");
        // Re-stamp a valid CRC so the magic check itself is exercised.
        let body_len = bytes.len() - 4;
        let crc = crc32(&bytes[..body_len]).to_le_bytes();
        bytes[body_len..].copy_from_slice(&crc);
        let e = decode_trace(&bytes).unwrap_err();
        assert!(e.0.contains("magic"), "unexpected error: {}", e.0);
    }

    #[test]
    fn delta_encoding_is_compact() {
        // 1000 densely-spaced packets should cost ~6 bytes each, not 20+.
        let req = PacketRequest { src: 1, dst: 2, vnet: 0, len: 4 };
        let data =
            TraceData { packets: (0..1000).map(|c| (c * 3, req)).collect(), ..Default::default() };
        let bytes = encode_trace(3, "{}", &data);
        assert!(bytes.len() < 1000 * 8, "trace encoding too fat: {} bytes", bytes.len());
    }
}
