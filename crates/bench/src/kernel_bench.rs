//! Kernel-throughput measurement behind `flov bench-kernel`.
//!
//! Times raw `Simulation::run` throughput (cycles/sec and flit-events/sec)
//! for idle, mid-load and saturated 8×8 configurations, per mechanism, for
//! both the active-set and the reference kernel, and verifies along the way
//! that the two kernels stay bit-identical on every measured pair. A second
//! matrix times the sharded parallel kernel on larger meshes (16×16, 32×32,
//! 64×64) at 2 and 4 tiles (planner-chosen 2-D geometries) against the
//! sequential active-set baseline, asserting bit-identity and recording
//! per-lane speedup and scaling efficiency. Every row also carries a
//! per-phase wall-time breakdown (latch / delivery / inject / pipeline /
//! mechanism / exchange-replay) so serial-fraction regressions show up in
//! the perf trajectory. The report is written to `BENCH_kernel.json`.

use crate::KernelMode;
use flov_core::mechanism;
use flov_noc::network::{PhaseNanos, Simulation};
use flov_noc::{NocConfig, TopologySpec};
use flov_workloads::{
    Dwell, GatingSchedule, ModulatedWorkload, Pattern, PatternSpace, SyntheticWorkload,
};
use serde::Serialize;
use std::time::Instant;

/// Mechanisms measured (the paper's main matrix; PowerPunch shares the
/// rFLOV datapath and adds nothing kernel-wise).
pub const MECHANISMS: [&str; 5] = ["Baseline", "RP", "rFLOV", "gFLOV", "NoRD"];

/// Topology lanes: the seed 8×8 mesh matrix plus a concentrated-mesh lane
/// (64 cores on 16 routers) exercising the kernels on a fabric where core
/// space and router space differ.
pub const LANES: [(&str, Option<TopologySpec>); 2] =
    [("mesh8x8", None), ("cmesh64", Some(TopologySpec::CMesh { k: 4, c: 4 }))];

/// Parallel-scaling lanes: larger meshes where per-cycle work dwarfs the
/// barrier cost, timed with the sharded kernel at each tile count.
pub const PARALLEL_LANES: [(&str, TopologySpec); 3] = [
    ("mesh16x16", TopologySpec::Mesh { k: 16 }),
    ("mesh32x32", TopologySpec::Mesh { k: 32 }),
    ("mesh64x64", TopologySpec::Mesh { k: 64 }),
];

/// Mechanisms timed in the parallel matrix (a subset: Baseline bounds the
/// raw datapath, rFLOV adds the FLOV latch/chain machinery).
pub const PARALLEL_MECHANISMS: [&str; 2] = ["Baseline", "rFLOV"];

/// Tile counts timed in the parallel matrix.
pub const PARALLEL_TILES: [usize; 2] = [2, 4];

/// `(name, injection rate flits/cycle/node, gated core fraction)`.
///
/// `lowload` is the time-skip showcase: only ~5% of cores inject, so the
/// fabric drains between packets and the active kernel jumps the clock
/// across the quiescent gaps (`cycles_skipped` in the report).
pub const LOADS: [(&str, f64, f64); 4] =
    [("idle", 0.0, 0.5), ("lowload", 0.02, 0.95), ("midload", 0.02, 0.3), ("saturated", 0.30, 0.0)];

/// Bursty lane: a two-phase MMPP alternating silence with a mid-load
/// burst (random geometric dwells, mean [`BURSTY_MEAN_DWELL`]). The quiet
/// phases are where the active kernel's time-skip must keep paying off
/// even though the *workload horizon* — the sampled phase-switch cycle —
/// now bounds each jump, not just the injector gaps.
pub const BURSTY_RATES: [f64; 2] = [0.0, 0.10];
pub const BURSTY_MEAN_DWELL: u64 = 3_000;
/// Mechanisms timed in the bursty matrix (Baseline bounds the datapath;
/// gFLOV adds handshake traffic that must not break quiet-phase skips).
pub const BURSTY_MECHANISMS: [&str; 2] = ["Baseline", "gFLOV"];

/// One timed measurement.
#[derive(Clone, Debug, Serialize)]
pub struct BenchRow {
    pub lane: String,
    pub mechanism: String,
    pub load: String,
    pub kernel: String,
    /// Worker-thread count (tile count for the parallel kernel; 1 for the
    /// sequential kernels).
    pub threads: usize,
    /// Effective tile geometry `RxC` the planner chose for this lane's
    /// grid (parallel rows only) — may cover fewer tiles than `threads`
    /// requested when the grid cannot host them.
    pub tile_geometry: Option<String>,
    pub cycles: u64,
    /// Cycles the kernel jumped over without stepping (always 0 for the
    /// reference kernel, which never jumps).
    pub cycles_skipped: u64,
    pub seconds: f64,
    pub cycles_per_sec: f64,
    pub flit_events_per_sec: f64,
    /// Per-phase wall time (nanoseconds) over the timed window: latch /
    /// delivery / inject / pipeline / mechanism, plus the boundary-exchange
    /// replay sub-bucket on parallel rows. Timing is observational only —
    /// it never enters the equivalence digests.
    pub phases: PhaseNanos,
}

/// Active-vs-reference summary for one `(mechanism, load)` cell.
#[derive(Clone, Debug, Serialize)]
pub struct SpeedupRow {
    pub lane: String,
    pub mechanism: String,
    pub load: String,
    pub active_cps: f64,
    pub reference_cps: f64,
    pub speedup: f64,
}

/// Parallel-vs-sequential summary for one `(lane, mechanism, load, tiles)`
/// cell. `efficiency` is `speedup / threads` (1.0 = perfect scaling).
#[derive(Clone, Debug, Serialize)]
pub struct ParallelRow {
    pub lane: String,
    pub mechanism: String,
    pub load: String,
    pub threads: usize,
    /// Effective `RxC` geometry the seam-minimizing planner chose for
    /// `threads` tiles on this lane's grid.
    pub tile_geometry: String,
    pub base_cps: f64,
    pub parallel_cps: f64,
    pub speedup: f64,
    pub efficiency: f64,
}

/// The full `BENCH_kernel.json` payload.
#[derive(Clone, Debug, Serialize)]
pub struct BenchReport {
    pub mesh: String,
    pub quick: bool,
    /// Host hardware parallelism at measurement time. Parallel speedups in
    /// this report are only meaningful when this is >= the row's `threads`
    /// (the kernel stays bit-identical regardless; it just runs surplus
    /// tiles inline).
    pub host_threads: usize,
    pub rows: Vec<BenchRow>,
    pub speedups: Vec<SpeedupRow>,
    pub parallel: Vec<ParallelRow>,
}

fn make_sim(
    topology: Option<TopologySpec>,
    mech_name: &str,
    rate: f64,
    gated_fraction: f64,
    total_cycles: u64,
) -> Simulation {
    // Table I defaults (8x8) unless a lane overrides the topology.
    let mut cfg = NocConfig { topology, ..NocConfig::default() };
    if mech_name == "NoRD" {
        cfg.enable_ring = true;
    }
    let space = PatternSpace { kx: cfg.kx(), ky: cfg.ky(), c: cfg.concentration() };
    let gating = GatingSchedule::static_fraction(cfg.cores(), gated_fraction, 42, &[]);
    let workload = SyntheticWorkload::with_space(
        space,
        Pattern::UniformRandom,
        rate,
        cfg.synth_packet_len,
        total_cycles,
        gating,
        42 ^ 0xABCD,
    );
    let mech = mechanism::by_name(mech_name, &cfg)
        .unwrap_or_else(|| panic!("unknown mechanism {mech_name:?}"));
    Simulation::new(cfg, mech, Box::new(workload))
}

/// An 8×8 mesh under the bursty MMPP schedule ([`BURSTY_RATES`]).
fn make_bursty_sim(mech_name: &str, total_cycles: u64) -> Simulation {
    let cfg = NocConfig::default();
    let space = PatternSpace { kx: cfg.kx(), ky: cfg.ky(), c: cfg.concentration() };
    let gating = GatingSchedule::static_fraction(cfg.cores(), 0.5, 42, &[]);
    let workload = ModulatedWorkload::new(
        space,
        Pattern::UniformRandom,
        BURSTY_RATES.to_vec(),
        Dwell::Geometric { mean: BURSTY_MEAN_DWELL },
        cfg.synth_packet_len,
        total_cycles,
        gating,
        42 ^ 0xABCD,
    );
    let mech = mechanism::by_name(mech_name, &cfg)
        .unwrap_or_else(|| panic!("unknown mechanism {mech_name:?}"));
    Simulation::new(cfg, mech, Box::new(workload))
}

/// Time `cycles` simulated cycles after `warmup`; returns the row plus a
/// digest of the end state (activity + stats) for equivalence checking.
fn measure_one(
    lane: &str,
    topology: Option<TopologySpec>,
    mech_name: &str,
    load: (&str, f64, f64),
    kernel: KernelMode,
    warmup: u64,
    cycles: u64,
) -> (BenchRow, String) {
    let (load, rate, gated_fraction) = load;
    let sim = make_sim(topology, mech_name, rate, gated_fraction, warmup + cycles);
    measure_sim(lane, mech_name, load, kernel, warmup, cycles, sim)
}

fn measure_sim(
    lane: &str,
    mech_name: &str,
    load: &str,
    kernel: KernelMode,
    warmup: u64,
    cycles: u64,
    mut sim: Simulation,
) -> (BenchRow, String) {
    sim.core.kernel = kernel;
    sim.run(warmup);
    let act0 = sim.core.activity.clone();
    let skipped0 = sim.core.cycles_skipped;
    // Phase accumulators cover exactly the timed window.
    sim.core.phase_nanos = Some(Box::default());
    let t0 = Instant::now();
    sim.run(cycles);
    let seconds = t0.elapsed().as_secs_f64();
    let phases = *sim.core.phase_nanos.take().expect("phase timing enabled above");
    let cycles_skipped = sim.core.cycles_skipped - skipped0;
    let d = sim.core.activity.delta_since(&act0);
    let flit_events = d.buffer_writes
        + d.buffer_reads
        + d.link_flits
        + d.flov_latch_flits
        + d.ring_flits
        + d.flits_injected
        + d.flits_delivered;
    let residency = sim.core.residency().to_vec();
    let digest = serde_json::to_string(&(&sim.core.activity, &sim.core.stats, &residency))
        .expect("digest serialization");
    let row = BenchRow {
        lane: lane.to_string(),
        mechanism: mech_name.to_string(),
        load: load.to_string(),
        kernel: match kernel {
            KernelMode::ActiveSet => "active".to_string(),
            KernelMode::Reference => "reference".to_string(),
            KernelMode::Parallel { tiles, .. } => format!("parallel{tiles}"),
        },
        threads: match kernel {
            KernelMode::Parallel { tiles, .. } => tiles,
            _ => 1,
        },
        tile_geometry: kernel
            .planned_grid(sim.core.cfg.kx(), sim.core.cfg.ky())
            .map(|(r, c)| format!("{r}x{c}")),
        cycles,
        cycles_skipped,
        seconds,
        cycles_per_sec: cycles as f64 / seconds.max(1e-9),
        flit_events_per_sec: flit_events as f64 / seconds.max(1e-9),
        phases,
    };
    (row, digest)
}

/// Run the full measurement matrix. Panics if any active/reference pair
/// diverges (the cheap always-on equivalence check), or, when `min_cps` is
/// set, if any active-kernel row falls below the cycles/sec floor, or,
/// when `min_skip` is set, if any `lowload` active-kernel row skips less
/// than that fraction of its timed cycles, or, when
/// `min_parallel_speedup` is set, if the saturated 2-tile mesh32x32 lane
/// falls below that speedup over the sequential active-set kernel. Every
/// parallel row is also checked bit-identical against its sequential
/// baseline.
pub fn run_bench(
    quick: bool,
    min_cps: Option<f64>,
    min_skip: Option<f64>,
    min_parallel_speedup: Option<f64>,
) -> BenchReport {
    let warmup = 2_000u64;
    let base = if quick { 20_000u64 } else { 200_000u64 };
    let mut rows = Vec::new();
    let mut speedups = Vec::new();
    for (lane, topology) in LANES {
        for mech in MECHANISMS {
            for (load, rate, gated) in LOADS {
                // Idle runs are cheap; stretch them so the timer has signal.
                let cycles = if rate == 0.0 { base * 5 } else { base };
                let cell = (load, rate, gated);
                let (act, act_digest) =
                    measure_one(lane, topology, mech, cell, KernelMode::ActiveSet, warmup, cycles);
                let (reference, ref_digest) =
                    measure_one(lane, topology, mech, cell, KernelMode::Reference, warmup, cycles);
                assert_eq!(
                    act_digest, ref_digest,
                    "kernel divergence: {lane}/{mech}/{load} active vs reference end states differ"
                );
                eprintln!(
                    "[flov] bench-kernel {lane:>7} {mech:>8} {load:>9}: active {:>12.0} cyc/s, \
                     reference {:>12.0} cyc/s ({:.2}x), {:.0}% skipped",
                    act.cycles_per_sec,
                    reference.cycles_per_sec,
                    act.cycles_per_sec / reference.cycles_per_sec,
                    100.0 * act.cycles_skipped as f64 / act.cycles as f64,
                );
                speedups.push(SpeedupRow {
                    lane: lane.to_string(),
                    mechanism: mech.to_string(),
                    load: load.to_string(),
                    active_cps: act.cycles_per_sec,
                    reference_cps: reference.cycles_per_sec,
                    speedup: act.cycles_per_sec / reference.cycles_per_sec,
                });
                rows.push(act);
                rows.push(reference);
            }
        }
    }
    // Bursty matrix: the MMPP schedule on the seed 8×8 mesh, all three
    // kernels digest-checked against each other. The active kernel must
    // still skip cycles inside the quiet phases (asserted below) — the
    // phase-switch horizon bounds each jump but must not kill skipping.
    for mech in BURSTY_MECHANISMS {
        let cycles = base;
        let bursty = |kernel| {
            let sim = make_bursty_sim(mech, warmup + cycles);
            measure_sim("mesh8x8", mech, "bursty", kernel, warmup, cycles, sim)
        };
        let (act, act_digest) = bursty(KernelMode::ActiveSet);
        let (reference, ref_digest) = bursty(KernelMode::Reference);
        let (par, par_digest) = bursty(KernelMode::Parallel { tiles: 2, grid: None });
        assert_eq!(
            act_digest, ref_digest,
            "kernel divergence: mesh8x8/{mech}/bursty active vs reference end states differ"
        );
        assert_eq!(
            act_digest, par_digest,
            "kernel divergence: mesh8x8/{mech}/bursty active vs parallel(2) end states differ"
        );
        assert!(
            act.cycles_skipped > 0,
            "time-skip regression: {mech}/bursty active kernel skipped no cycles at all \
             (MMPP quiet phases should be skippable)"
        );
        eprintln!(
            "[flov] bench-kernel mesh8x8 {mech:>8}    bursty: active {:>12.0} cyc/s, \
             reference {:>12.0} cyc/s ({:.2}x), {:.0}% skipped",
            act.cycles_per_sec,
            reference.cycles_per_sec,
            act.cycles_per_sec / reference.cycles_per_sec,
            100.0 * act.cycles_skipped as f64 / act.cycles as f64,
        );
        speedups.push(SpeedupRow {
            lane: "mesh8x8".to_string(),
            mechanism: mech.to_string(),
            load: "bursty".to_string(),
            active_cps: act.cycles_per_sec,
            reference_cps: reference.cycles_per_sec,
            speedup: act.cycles_per_sec / reference.cycles_per_sec,
        });
        rows.push(act);
        rows.push(reference);
        rows.push(par);
    }
    // Parallel-scaling matrix: larger meshes, saturated load, 2 and 4
    // tiles against the sequential active-set baseline.
    let mut parallel = Vec::new();
    for (lane, topology) in PARALLEL_LANES {
        let cycles = match (lane, quick) {
            ("mesh64x64", true) => 500u64,
            ("mesh64x64", false) => 2_000,
            ("mesh32x32", true) => 2_000,
            ("mesh32x32", false) => 8_000,
            (_, true) => 5_000,
            (_, false) => 20_000,
        };
        let par_warmup = 500u64;
        for mech in PARALLEL_MECHANISMS {
            let cell = ("saturated", 0.30, 0.0);
            let (base, base_digest) = measure_one(
                lane,
                Some(topology),
                mech,
                cell,
                KernelMode::ActiveSet,
                par_warmup,
                cycles,
            );
            for tiles in PARALLEL_TILES {
                let (par, par_digest) = measure_one(
                    lane,
                    Some(topology),
                    mech,
                    cell,
                    KernelMode::Parallel { tiles, grid: None },
                    par_warmup,
                    cycles,
                );
                assert_eq!(
                    base_digest, par_digest,
                    "kernel divergence: {lane}/{mech} parallel({tiles}) vs active \
                     end states differ"
                );
                let geometry = par.tile_geometry.clone().unwrap_or_default();
                let speedup = par.cycles_per_sec / base.cycles_per_sec;
                eprintln!(
                    "[flov] bench-kernel {lane:>9} {mech:>8} saturated: active {:>12.0} cyc/s, \
                     parallel x{tiles} ({geometry}) {:>12.0} cyc/s ({speedup:.2}x, \
                     {:.0}% efficiency)",
                    base.cycles_per_sec,
                    par.cycles_per_sec,
                    100.0 * speedup / tiles as f64,
                );
                parallel.push(ParallelRow {
                    lane: lane.to_string(),
                    mechanism: mech.to_string(),
                    load: "saturated".to_string(),
                    threads: tiles,
                    tile_geometry: geometry,
                    base_cps: base.cycles_per_sec,
                    parallel_cps: par.cycles_per_sec,
                    speedup,
                    efficiency: speedup / tiles as f64,
                });
                rows.push(par);
            }
            rows.push(base);
        }
    }
    let host_threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    if let Some(floor) = min_parallel_speedup {
        if host_threads < 2 {
            eprintln!(
                "[flov] bench-kernel: host has {host_threads} hardware thread(s); \
                 skipping the --min-parallel-speedup {floor} gate (scaling is \
                 unmeasurable without spare cores)"
            );
        } else {
            for r in parallel.iter().filter(|r| r.lane == "mesh32x32" && r.threads == 2) {
                assert!(
                    r.speedup >= floor,
                    "parallel-scaling regression: {}/{} at {} tiles reached only {:.2}x \
                     over sequential < floor {floor:.2}x",
                    r.lane,
                    r.mechanism,
                    r.threads,
                    r.speedup
                );
            }
        }
    }
    // The cps/skip floors are calibrated for the seed-scale lanes; the
    // large parallel-scaling lanes are gated by relative speedup instead.
    let seq_lane = |r: &&BenchRow| LANES.iter().any(|(l, _)| r.lane == *l);
    if let Some(floor) = min_cps {
        for r in rows.iter().filter(seq_lane).filter(|r| r.kernel == "active") {
            assert!(
                r.cycles_per_sec >= floor,
                "perf floor regression: {}/{} active kernel at {:.0} cycles/sec < floor {floor:.0}",
                r.mechanism,
                r.load,
                r.cycles_per_sec
            );
        }
    }
    if let Some(floor) = min_skip {
        for r in rows
            .iter()
            .filter(seq_lane)
            .filter(|r| r.kernel == "active" && (r.load == "lowload" || r.load == "bursty"))
        {
            // The bursty lane only spends ~half its cycles in quiet MMPP
            // phases (symmetric two-phase schedule), and burst drain tails
            // eat into those; a quarter of the lowload floor is the honest
            // quiet-phase expectation.
            let lane_floor = if r.load == "bursty" { floor * 0.25 } else { floor };
            let frac = r.cycles_skipped as f64 / r.cycles as f64;
            assert!(
                frac >= lane_floor,
                "time-skip regression: {}/{} active kernel skipped {:.1}% of cycles \
                 < floor {:.1}%",
                r.mechanism,
                r.load,
                100.0 * frac,
                100.0 * lane_floor
            );
        }
    }
    BenchReport {
        mesh: "mesh8x8+cmesh64+mesh16x16+mesh32x32+mesh64x64".to_string(),
        quick,
        host_threads,
        rows,
        speedups,
        parallel,
    }
}
