//! Ablation studies for the design choices DESIGN.md calls out:
//! escape-timeout threshold, idle-detection threshold, Router Parking's
//! Phase-I stall length, buffer depth, VC count, and RP parking policy.
//! Each returns a [`Table`]; `flov ablations` prints them all and the
//! criterion bench exercises them at reduced scale.
//!
//! Sweeps whose knob lives in the [`RunSpec`] go through the [`Engine`]
//! (and therefore the result cache). Sweeps that tweak mechanism-internal
//! parameters the spec cannot see (`min_stall`, `handshake_rtt`) call
//! [`run_with`] directly — caching them by spec would conflate distinct
//! experiments under one key.

use crate::engine::Engine;
use crate::report::{f2, mw, Table};
use crate::run_with;
use crate::spec::{RunSpec, WorkloadSpec};
use flov_core::{Flov, FlovParams, RouterParking, RpMode};
use flov_workloads::Pattern;

/// Common scenario for the ablations: UR at the paper's low rate, 50%
/// cores gated.
fn base_spec(cycles: u64) -> RunSpec {
    RunSpec::builder()
        .gated_fraction(0.5)
        .warmup(cycles / 10)
        .cycles(cycles)
        .drain(cycles * 2)
        .build()
}

/// Escape-timeout sensitivity: too low floods the single escape VC, too
/// high leaves blocked packets waiting (pre-diversion latency).
pub fn ablate_escape_timeout(engine: &Engine, cycles: u64) -> Table {
    let mut t = Table::new(
        "ablation: escape timeout (gFLOV, UR 0.02, 50% gated)",
        &["timeout [cy]", "avg lat", "max lat", "escape pkts", "diversions"],
    );
    for timeout in [16u32, 64, 128, 512] {
        let mut spec = base_spec(cycles);
        spec.cfg.escape_timeout = timeout;
        let r = engine.run_one(&spec);
        t.row(vec![
            timeout.to_string(),
            f2(r.avg_latency),
            r.max_latency.to_string(),
            r.escape_packets.to_string(),
            r.escape_diversions.to_string(),
        ]);
    }
    t
}

/// Idle-detection threshold: how long a router waits for local silence
/// before draining. Lower = more sleep residency but more gating churn.
pub fn ablate_idle_threshold(_engine: &Engine, cycles: u64) -> Table {
    let mut t = Table::new(
        "ablation: idle-detect threshold before draining (gFLOV)",
        &["threshold [cy]", "avg lat", "gating events", "static [mW]", "total [mW]"],
    );
    for thr in [4u32, 16, 64, 256] {
        let mut spec = base_spec(cycles);
        spec.cfg.idle_threshold = thr;
        spec.warmup = 0; // count the gating churn
        let mech = Box::new(Flov::generalized(&spec.cfg));
        let r = run_with(&spec, mech);
        t.row(vec![
            thr.to_string(),
            f2(r.avg_latency),
            r.gating_events.to_string(),
            mw(r.power.static_w),
            mw(r.power.total_w),
        ]);
    }
    t
}

/// Router Parking Phase-I stall length: the paper measures >700 cycles;
/// what would a faster Fabric Manager buy?
pub fn ablate_rp_stall(_engine: &Engine, cycles: u64) -> Table {
    let mut t = Table::new(
        "ablation: RP Phase-I minimum stall (UR 0.02, 10% gated, 2 reconfigs)",
        &["min stall [cy]", "avg lat", "max lat", "stalled node-cycles"],
    );
    for stall in [100u64, 700, 2000] {
        let mut spec = base_spec(cycles);
        spec.workload = WorkloadSpec::Synthetic {
            pattern: Pattern::UniformRandom,
            rate: 0.02,
            gated_fraction: 0.1,
            seed: 0xF10F,
            changes: vec![cycles / 2, cycles * 6 / 10],
        };
        spec.mechanism = "RP".into();
        let mut rp = RouterParking::new(&spec.cfg, RpMode::Aggressive);
        rp.min_stall = stall;
        let r = run_with(&spec, Box::new(rp));
        t.row(vec![
            stall.to_string(),
            f2(r.avg_latency),
            r.max_latency.to_string(),
            r.stalled_injection_cycles.to_string(),
        ]);
    }
    t
}

/// Buffer-depth sensitivity under gFLOV: credit round trips across FLOV
/// chains grow with chain length, so shallow buffers throttle fly-over
/// throughput (the paper's round-trip-credit-latency discussion).
pub fn ablate_buffer_depth(engine: &Engine, cycles: u64) -> Table {
    let mut t = Table::new(
        "ablation: input buffer depth (gFLOV, UR 0.08, 50% gated)",
        &["depth [flits]", "avg lat", "throughput [f/cy]", "contention"],
    );
    for depth in [2usize, 4, 6, 8] {
        let mut spec = base_spec(cycles);
        spec.cfg.buf_depth = depth;
        if let WorkloadSpec::Synthetic { ref mut rate, .. } = spec.workload {
            *rate = 0.08;
        }
        let r = engine.run_one(&spec);
        t.row(vec![depth.to_string(), f2(r.avg_latency), f2(r.throughput), f2(r.breakdown[3])]);
    }
    t
}

/// VC-count sensitivity: regular VCs per vnet.
pub fn ablate_vc_count(engine: &Engine, cycles: u64) -> Table {
    let mut t = Table::new(
        "ablation: regular VCs per vnet (gFLOV, UR 0.08, 50% gated)",
        &["regular VCs", "avg lat", "throughput [f/cy]"],
    );
    for vcs in [1usize, 2, 3, 4] {
        let mut spec = base_spec(cycles);
        spec.cfg.regular_vcs = vcs;
        if let WorkloadSpec::Synthetic { ref mut rate, .. } = spec.workload {
            *rate = 0.08;
        }
        let r = engine.run_one(&spec);
        t.row(vec![vcs.to_string(), f2(r.avg_latency), f2(r.throughput)]);
    }
    t
}

/// RP parking policy: aggressive vs adaptive at both paper rates.
pub fn ablate_rp_policy(engine: &Engine, cycles: u64) -> Table {
    let mut t = Table::new(
        "ablation: RP parking policy (UR, 50% gated)",
        &["rate", "policy", "avg lat", "static [mW]", "total [mW]"],
    );
    for rate in [0.02f64, 0.08] {
        for (name, mech) in [("aggressive", "RP-aggressive"), ("adaptive", "RP")] {
            let mut spec = base_spec(cycles);
            spec.mechanism = mech.into();
            if let WorkloadSpec::Synthetic { rate: ref mut r, .. } = spec.workload {
                *r = rate;
            }
            let r = engine.run_one(&spec);
            t.row(vec![
                format!("{rate}"),
                name.into(),
                f2(r.avg_latency),
                mw(r.power.static_w),
                mw(r.power.total_w),
            ]);
        }
    }
    t
}

/// gFLOV handshake-window sensitivity (the drain/wake signal RTT model).
pub fn ablate_handshake_rtt(_engine: &Engine, cycles: u64) -> Table {
    let mut t = Table::new(
        "ablation: handshake RTT window (gFLOV, UR 0.02, 50% gated)",
        &["rtt [cy]", "avg lat", "gating events", "static [mW]"],
    );
    for rtt in [1u32, 2, 8, 32] {
        let mut spec = base_spec(cycles);
        spec.warmup = 0;
        let mut params = FlovParams::for_config(&spec.cfg);
        params.handshake_rtt = rtt;
        let mech = Box::new(Flov::new(flov_core::FlovMode::Generalized, params, spec.cfg.nodes()));
        let r = run_with(&spec, mech);
        t.row(vec![
            rtt.to_string(),
            f2(r.avg_latency),
            r.gating_events.to_string(),
            mw(r.power.static_w),
        ]);
    }
    t
}

/// Run every ablation at the given scale.
pub fn all(engine: &Engine, cycles: u64) -> Vec<Table> {
    vec![
        ablate_escape_timeout(engine, cycles),
        ablate_idle_threshold(engine, cycles),
        ablate_rp_stall(engine, cycles),
        ablate_buffer_depth(engine, cycles),
        ablate_vc_count(engine, cycles),
        ablate_rp_policy(engine, cycles),
        ablate_handshake_rtt(engine, cycles),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_timeout_ablation_has_rows() {
        let t = ablate_escape_timeout(&Engine::without_cache(), 6_000);
        assert_eq!(t.rows.len(), 4);
    }

    #[test]
    fn rp_stall_ablation_orders_latency() {
        let t = ablate_rp_stall(&Engine::without_cache(), 20_000);
        // Longer stalls => more stalled node-cycles.
        let stalled: Vec<u64> = t.rows.iter().map(|r| r[3].parse().unwrap()).collect();
        assert!(stalled[0] < stalled[2], "stall cycles not increasing: {stalled:?}");
    }

    #[test]
    fn deeper_buffers_do_not_hurt() {
        let t = ablate_buffer_depth(&Engine::without_cache(), 6_000);
        let lat: Vec<f64> = t.rows.iter().map(|r| r[1].parse().unwrap()).collect();
        assert!(lat[3] <= lat[0] * 1.1, "depth-8 latency {} vs depth-2 {}", lat[3], lat[0]);
    }
}
