//! Run specifications and results.

use flov_noc::stats::IntervalSample;
use flov_noc::types::Cycle;
use flov_noc::NocConfig;
use flov_power::{PowerParams, PowerReport};
use flov_workloads::Pattern;
use serde::Serialize;

/// Workload selection for one run.
#[derive(Clone, Debug)]
pub enum WorkloadSpec {
    /// §VI-B synthetic traffic.
    Synthetic {
        pattern: Pattern,
        /// flits/cycle/node.
        rate: f64,
        /// Fraction of cores power-gated.
        gated_fraction: f64,
        seed: u64,
        /// Cycles at which the gated set is re-randomized (Fig. 10).
        changes: Vec<Cycle>,
    },
    /// §VI-B-3 full-system traffic (PARSEC proxy); runs to completion.
    Parsec { name: String, seed: u64 },
}

/// Everything needed to execute one simulation.
#[derive(Clone, Debug)]
pub struct RunSpec {
    pub cfg: NocConfig,
    /// "Baseline" | "RP" | "RP-aggressive" | "rFLOV" | "gFLOV".
    pub mechanism: String,
    pub workload: WorkloadSpec,
    /// Warmup cycles excluded from measurement (paper: 10k).
    pub warmup: Cycle,
    /// Synthetic: total run length (paper: 100k). Parsec: cycle cap.
    pub cycles: Cycle,
    /// Extra cycles allowed for in-flight packets after a synthetic run.
    pub drain: Cycle,
    /// Latency-timeline bucket width (0 = off); used by Fig. 10.
    pub timeline_width: u64,
    pub power_params: PowerParams,
}

impl RunSpec {
    /// The paper's synthetic methodology: 10k warmup, 100k cycles.
    pub fn synthetic_paper(
        mechanism: &str,
        pattern: Pattern,
        rate: f64,
        gated_fraction: f64,
        seed: u64,
    ) -> RunSpec {
        RunSpec {
            cfg: NocConfig::paper_table1(),
            mechanism: mechanism.into(),
            workload: WorkloadSpec::Synthetic {
                pattern,
                rate,
                gated_fraction,
                seed,
                changes: vec![],
            },
            warmup: 10_000,
            cycles: 100_000,
            drain: 100_000,
            timeline_width: 0,
            power_params: PowerParams::default(),
        }
    }

    /// Full-system run of one PARSEC-proxy benchmark to completion.
    pub fn parsec(mechanism: &str, bench: &str, seed: u64) -> RunSpec {
        RunSpec {
            cfg: NocConfig::paper_table1(),
            mechanism: mechanism.into(),
            workload: WorkloadSpec::Parsec { name: bench.into(), seed },
            warmup: 0,
            cycles: 3_000_000,
            drain: 0,
            timeline_width: 0,
            power_params: PowerParams::default(),
        }
    }
}

/// Everything a figure needs from one run.
#[derive(Clone, Debug, Serialize)]
pub struct RunResult {
    pub mechanism: String,
    /// Packets measured (born inside the window).
    pub packets: u64,
    /// Mean total packet latency \[cycles\].
    pub avg_latency: f64,
    pub max_latency: u64,
    /// Conservative (p50, p95, p99) latency upper bounds.
    pub latency_percentiles: (u64, u64, u64),
    /// Per-packet averages: \[router, link, serialization, contention, flov\].
    pub breakdown: [f64; 5],
    pub avg_hops: f64,
    pub avg_flov_hops: f64,
    pub escape_packets: u64,
    pub escape_diversions: u64,
    /// Delivered flits/cycle over the window.
    pub throughput: f64,
    pub power: PowerReport,
    /// Cycle count at the end of the measured portion (Parsec: completion).
    pub runtime_cycles: u64,
    pub stalled_injection_cycles: u64,
    pub gating_events: u64,
    pub flov_latch_flits: u64,
    /// Flit hops on the NoRD bypass ring over the window.
    pub ring_flits: u64,
    /// Per-vnet (packets, avg latency) for the first three message classes.
    pub vnet_latency: [(u64, f64); 3],
    pub timeline: Vec<IntervalSample>,
    /// True if every injected packet was delivered by the end of the run.
    pub delivered_all: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_spec_defaults_match_methodology() {
        let s = RunSpec::synthetic_paper("gFLOV", Pattern::UniformRandom, 0.02, 0.3, 1);
        assert_eq!(s.warmup, 10_000);
        assert_eq!(s.cycles, 100_000);
        assert_eq!(s.cfg.k, 8);
        assert_eq!(s.mechanism, "gFLOV");
    }

    #[test]
    fn parsec_spec_runs_to_completion() {
        let s = RunSpec::parsec("RP", "canneal", 2);
        assert_eq!(s.warmup, 0);
        assert!(matches!(s.workload, WorkloadSpec::Parsec { .. }));
    }
}
