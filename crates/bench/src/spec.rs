//! Run specifications and results.
//!
//! A [`RunSpec`] is a complete, serializable description of one
//! simulation: config, mechanism, workload, measurement window, and power
//! model. Specs round-trip through JSON with a canonical encoding, which
//! is what the result cache keys on — two specs that serialize to the
//! same bytes are the same experiment. Build them with
//! [`RunSpec::builder`] (paper defaults, fluent overrides) or the
//! [`RunSpec::synthetic_paper`] / [`RunSpec::parsec`] shorthands.

use flov_noc::config::ConfigError;
use flov_noc::stats::IntervalSample;
use flov_noc::topology::TopologySpec;
use flov_noc::types::Cycle;
use flov_noc::NocConfig;
use flov_power::{PowerParams, PowerReport};
use flov_workloads::Pattern;
use serde::{Deserialize, Serialize};

/// Workload selection for one run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum WorkloadSpec {
    /// §VI-B synthetic traffic.
    Synthetic {
        pattern: Pattern,
        /// flits/cycle/node.
        rate: f64,
        /// Fraction of cores power-gated.
        gated_fraction: f64,
        seed: u64,
        /// Cycles at which the gated set is re-randomized (Fig. 10).
        changes: Vec<Cycle>,
    },
    /// §VI-B-3 full-system traffic (PARSEC proxy); runs to completion.
    Parsec { name: String, seed: u64 },
    /// MMPP bursty traffic: synthetic injection whose rate walks `rates`
    /// cyclically, dwelling geometrically with mean `mean_dwell` cycles.
    Mmpp {
        pattern: Pattern,
        /// Per-phase rates \[flits/cycle/node\], visited cyclically.
        rates: Vec<f64>,
        /// Mean phase dwell \[cycles\] (geometric, >= 1).
        mean_dwell: Cycle,
        gated_fraction: f64,
        seed: u64,
    },
    /// Diurnal load curve: like [`WorkloadSpec::Mmpp`] but with fixed
    /// `dwell`-cycle phases (a deterministic day/night rate schedule).
    Diurnal {
        pattern: Pattern,
        rates: Vec<f64>,
        /// Exact phase length \[cycles\] (>= 1).
        dwell: Cycle,
        gated_fraction: f64,
        seed: u64,
    },
    /// Replay a recorded flit trace (see `flov trace record`). The CRC-32C
    /// of the trace file ties the cache key to the trace *content*, not
    /// just its path; `closed_loop` runs to trace completion instead of
    /// the fixed cycle window.
    Trace { path: String, crc: u32, closed_loop: bool },
}

/// Everything needed to execute one simulation.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RunSpec {
    pub cfg: NocConfig,
    /// "Baseline" | "RP" | "RP-aggressive" | "rFLOV" | "gFLOV" | "NoRD" |
    /// "PowerPunch".
    pub mechanism: String,
    pub workload: WorkloadSpec,
    /// Warmup cycles excluded from measurement (paper: 10k).
    pub warmup: Cycle,
    /// Synthetic: total run length (paper: 100k). Parsec: cycle cap.
    pub cycles: Cycle,
    /// Extra cycles allowed for in-flight packets after a synthetic run.
    pub drain: Cycle,
    /// Latency-timeline bucket width (0 = off); used by Fig. 10.
    pub timeline_width: u64,
    pub power_params: PowerParams,
    /// Attach the invariant auditor ([`flov_noc::audit`]) at its default
    /// interval. Auditing is read-only — results are bit-identical either
    /// way — but the periodic sweep costs time, so it is off by default.
    /// The `FLOV_AUDIT` environment variable overrides this (see
    /// [`crate::audit_override`]).
    pub audit: bool,
    /// Mid-run mechanism switches: at each `(cycle, name)`, in order, the
    /// running mechanism is replaced by `name` (same config; mechanism
    /// state starts fresh). Only legal "loosening" switches are accepted
    /// — Baseline→{rFLOV,gFLOV} and rFLOV→gFLOV — since a stricter
    /// protocol's invariants do not hold over a looser one's fabric.
    /// Synthetic workloads only. Empty = never switch.
    pub mech_switches: Vec<(Cycle, String)>,
}

impl RunSpec {
    /// A builder pre-loaded with the paper's synthetic methodology
    /// (Table 1 config, uniform random at 0.02 flits/cycle/node, 10k
    /// warmup / 100k cycles, gFLOV).
    pub fn builder() -> RunSpecBuilder {
        RunSpecBuilder::default()
    }

    /// The paper's synthetic methodology: 10k warmup, 100k cycles.
    pub fn synthetic_paper(
        mechanism: &str,
        pattern: Pattern,
        rate: f64,
        gated_fraction: f64,
        seed: u64,
    ) -> RunSpec {
        RunSpec::builder()
            .mechanism(mechanism)
            .pattern(pattern)
            .rate(rate)
            .gated_fraction(gated_fraction)
            .seed(seed)
            .build()
    }

    /// Full-system run of one PARSEC-proxy benchmark to completion.
    pub fn parsec(mechanism: &str, bench: &str, seed: u64) -> RunSpec {
        RunSpec::builder().mechanism(mechanism).parsec(bench).seed(seed).build()
    }

    /// Canonicalize mechanism-implied config requirements, in place:
    /// NoRD needs the bypass ring, PowerPunch models no escape VCs. Both
    /// the builder and the runner apply this, so a spec constructed by
    /// hand, deserialized from JSON, or built fluently all execute — and
    /// cache — identically. Idempotent.
    pub fn resolve(&mut self) {
        if self.mechanism == "NoRD" {
            self.cfg.enable_ring = true;
        }
        if self.mechanism == "PowerPunch" {
            self.cfg = flov_core::punch_config(&self.cfg);
        }
    }

    /// [`RunSpec::resolve`], by value.
    pub fn resolved(&self) -> RunSpec {
        let mut s = self.clone();
        s.resolve();
        s
    }

    /// Full spec validation: the resolved config's structural checks plus
    /// workload-level sanity — notably rejecting over-saturated injection
    /// rates, which `SyntheticWorkload` would otherwise silently clamp to
    /// one packet per node-cycle (a different experiment than requested).
    pub fn validate(&self) -> Result<(), ConfigError> {
        let resolved = self.resolved();
        resolved.cfg.validate()?;
        let pkt_len = resolved.cfg.synth_packet_len;
        let rate_ok = |rate: f64| {
            if rate.is_finite() && (0.0..=pkt_len as f64).contains(&rate) {
                Ok(())
            } else {
                Err(ConfigError::OversaturatedRate { rate, pkt_len })
            }
        };
        let rates_ok = |rates: &[f64]| {
            if rates.is_empty() {
                return Err(ConfigError::InvalidModulation {
                    why: "at least one phase rate is required",
                });
            }
            rates.iter().try_for_each(|&r| rate_ok(r))
        };
        match &self.workload {
            WorkloadSpec::Synthetic { rate, .. } => rate_ok(*rate),
            WorkloadSpec::Parsec { .. } | WorkloadSpec::Trace { .. } => Ok(()),
            WorkloadSpec::Mmpp { rates, mean_dwell, .. } => {
                rates_ok(rates)?;
                if *mean_dwell == 0 {
                    return Err(ConfigError::InvalidModulation {
                        why: "mean phase dwell must be at least one cycle",
                    });
                }
                Ok(())
            }
            WorkloadSpec::Diurnal { rates, dwell, .. } => {
                rates_ok(rates)?;
                if *dwell == 0 {
                    return Err(ConfigError::InvalidModulation {
                        why: "phase dwell must be at least one cycle",
                    });
                }
                Ok(())
            }
        }
    }
}

/// Fluent constructor for [`RunSpec`]; see [`RunSpec::builder`].
#[derive(Clone, Debug)]
pub struct RunSpecBuilder {
    cfg: NocConfig,
    mechanism: String,
    pattern: Pattern,
    rate: f64,
    gated_fraction: f64,
    seed: u64,
    changes: Vec<Cycle>,
    parsec: Option<String>,
    mmpp: Option<(Vec<f64>, Cycle)>,
    diurnal: Option<(Vec<f64>, Cycle)>,
    trace: Option<(String, u32, bool)>,
    warmup: Cycle,
    cycles: Cycle,
    drain: Cycle,
    timeline_width: u64,
    power_params: PowerParams,
    audit: bool,
    mech_switches: Vec<(Cycle, String)>,
}

impl Default for RunSpecBuilder {
    fn default() -> Self {
        RunSpecBuilder {
            cfg: NocConfig::paper_table1(),
            mechanism: "gFLOV".into(),
            pattern: Pattern::UniformRandom,
            rate: 0.02,
            gated_fraction: 0.0,
            seed: 0xF10F,
            changes: Vec::new(),
            parsec: None,
            mmpp: None,
            diurnal: None,
            trace: None,
            warmup: 10_000,
            cycles: 100_000,
            drain: 100_000,
            timeline_width: 0,
            power_params: PowerParams::default(),
            audit: false,
            mech_switches: Vec::new(),
        }
    }
}

impl RunSpecBuilder {
    /// Power-gating mechanism by name (see `flov_core::mechanism`).
    pub fn mechanism(mut self, m: &str) -> Self {
        self.mechanism = m.into();
        self
    }

    /// Replace the whole NoC config.
    pub fn cfg(mut self, cfg: NocConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Mesh radix shorthand: a `k x k` network.
    pub fn k(mut self, k: u16) -> Self {
        self.cfg.k = k;
        self
    }

    /// Select the fabric topology. `Mesh { k }` is spelled as the bare
    /// `k` field instead, keeping the serialized spec — and so the result
    /// cache key — byte-identical to the pre-topology encoding.
    pub fn topology(mut self, t: TopologySpec) -> Self {
        if let TopologySpec::Mesh { k } = t {
            self.cfg.k = k;
            self.cfg.topology = None;
        } else {
            self.cfg.topology = Some(t);
        }
        self
    }

    /// Synthetic traffic pattern.
    pub fn pattern(mut self, p: Pattern) -> Self {
        self.pattern = p;
        self
    }

    /// Injection rate \[flits/cycle/node\].
    pub fn rate(mut self, r: f64) -> Self {
        self.rate = r;
        self
    }

    /// Fraction of cores power-gated.
    pub fn gated_fraction(mut self, f: f64) -> Self {
        self.gated_fraction = f;
        self
    }

    /// Workload seed (also salts the injection-process PRNG).
    pub fn seed(mut self, s: u64) -> Self {
        self.seed = s;
        self
    }

    /// Cycles at which the gated set is re-randomized (Fig. 10).
    pub fn changes(mut self, c: Vec<Cycle>) -> Self {
        self.changes = c;
        self
    }

    /// Switch to the PARSEC-proxy workload `name`, adopting the
    /// full-system methodology (no warmup, 3M-cycle cap, no drain).
    /// Call [`cycles`](Self::cycles) *after* this to change the cap.
    pub fn parsec(mut self, name: &str) -> Self {
        self.parsec = Some(name.into());
        self.warmup = 0;
        self.cycles = 3_000_000;
        self.drain = 0;
        self
    }

    /// Switch to MMPP bursty traffic: the injection rate walks `rates`
    /// cyclically with geometric phase dwells of mean `mean_dwell` cycles.
    /// Keeps the synthetic run shape (warmup / cycles / drain).
    pub fn mmpp(mut self, rates: Vec<f64>, mean_dwell: Cycle) -> Self {
        self.mmpp = Some((rates, mean_dwell));
        self
    }

    /// Switch to a diurnal load curve: `rates` phases of exactly `dwell`
    /// cycles each. Keeps the synthetic run shape.
    pub fn diurnal(mut self, rates: Vec<f64>, dwell: Cycle) -> Self {
        self.diurnal = Some((rates, dwell));
        self
    }

    /// Replay a recorded flit trace. `crc` is the trace file's CRC-32C
    /// (cache-key content binding; `flov trace record` prints it);
    /// `closed_loop` runs to trace completion instead of the cycle window.
    pub fn trace(mut self, path: &str, crc: u32, closed_loop: bool) -> Self {
        self.trace = Some((path.into(), crc, closed_loop));
        self
    }

    /// Warmup cycles excluded from measurement.
    pub fn warmup(mut self, w: Cycle) -> Self {
        self.warmup = w;
        self
    }

    /// Synthetic: total run length. Parsec: cycle cap.
    pub fn cycles(mut self, c: Cycle) -> Self {
        self.cycles = c;
        self
    }

    /// Extra cycles allowed for in-flight packets after a synthetic run.
    pub fn drain(mut self, d: Cycle) -> Self {
        self.drain = d;
        self
    }

    /// Latency-timeline bucket width (0 = off).
    pub fn timeline_width(mut self, w: u64) -> Self {
        self.timeline_width = w;
        self
    }

    /// Replace the power model parameters.
    pub fn power_params(mut self, p: PowerParams) -> Self {
        self.power_params = p;
        self
    }

    /// Attach the invariant auditor (see [`RunSpec::audit`]).
    pub fn audit(mut self, on: bool) -> Self {
        self.audit = on;
        self
    }

    /// Mid-run mechanism switches (see [`RunSpec::mech_switches`]).
    pub fn mech_switches(mut self, s: Vec<(Cycle, String)>) -> Self {
        self.mech_switches = s;
        self
    }

    /// Assemble the spec, applying [`RunSpec::resolve`]. Workload
    /// precedence when several selectors were called: trace, then PARSEC,
    /// then MMPP, then diurnal, then plain synthetic.
    pub fn build(self) -> RunSpec {
        let workload = if let Some((path, crc, closed_loop)) = self.trace {
            WorkloadSpec::Trace { path, crc, closed_loop }
        } else if let Some(name) = self.parsec {
            WorkloadSpec::Parsec { name, seed: self.seed }
        } else if let Some((rates, mean_dwell)) = self.mmpp {
            WorkloadSpec::Mmpp {
                pattern: self.pattern,
                rates,
                mean_dwell,
                gated_fraction: self.gated_fraction,
                seed: self.seed,
            }
        } else if let Some((rates, dwell)) = self.diurnal {
            WorkloadSpec::Diurnal {
                pattern: self.pattern,
                rates,
                dwell,
                gated_fraction: self.gated_fraction,
                seed: self.seed,
            }
        } else {
            WorkloadSpec::Synthetic {
                pattern: self.pattern,
                rate: self.rate,
                gated_fraction: self.gated_fraction,
                seed: self.seed,
                changes: self.changes,
            }
        };
        let mut spec = RunSpec {
            cfg: self.cfg,
            mechanism: self.mechanism,
            workload,
            warmup: self.warmup,
            cycles: self.cycles,
            drain: self.drain,
            timeline_width: self.timeline_width,
            power_params: self.power_params,
            audit: self.audit,
            mech_switches: self.mech_switches,
        };
        spec.resolve();
        spec
    }
}

/// Everything a figure needs from one run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RunResult {
    pub mechanism: String,
    /// Packets measured (born inside the window).
    pub packets: u64,
    /// Mean total packet latency \[cycles\].
    pub avg_latency: f64,
    pub max_latency: u64,
    /// (p50, p95, p99) latency bucket *lower* edges (powers of two; see
    /// `LatencyHistogram::quantile_lower` for the exact convention).
    pub latency_percentiles: (u64, u64, u64),
    /// Per-packet averages: \[router, link, serialization, contention, flov\].
    pub breakdown: [f64; 5],
    pub avg_hops: f64,
    pub avg_flov_hops: f64,
    pub escape_packets: u64,
    pub escape_diversions: u64,
    /// Delivered flits/cycle over the window.
    pub throughput: f64,
    pub power: PowerReport,
    /// Cycle count at the end of the measured portion (Parsec: completion).
    pub runtime_cycles: u64,
    /// Node-cycles of mechanism-stalled injection: each node with backlog
    /// blocked by the injection gate counts once per cycle. (The field name
    /// predates the node-cycle clarification; it is kept for cache-entry
    /// compatibility.)
    pub stalled_injection_cycles: u64,
    pub gating_events: u64,
    pub flov_latch_flits: u64,
    /// Flit hops on the NoRD bypass ring over the window.
    pub ring_flits: u64,
    /// Per-vnet (packets, avg latency) for the first three message classes.
    pub vnet_latency: [(u64, f64); 3],
    pub timeline: Vec<IntervalSample>,
    /// True if every injected packet was delivered by the end of the run.
    pub delivered_all: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_spec_defaults_match_methodology() {
        let s = RunSpec::synthetic_paper("gFLOV", Pattern::UniformRandom, 0.02, 0.3, 1);
        assert_eq!(s.warmup, 10_000);
        assert_eq!(s.cycles, 100_000);
        assert_eq!(s.cfg.k, 8);
        assert_eq!(s.mechanism, "gFLOV");
    }

    #[test]
    fn parsec_spec_runs_to_completion() {
        let s = RunSpec::parsec("RP", "canneal", 2);
        assert_eq!(s.warmup, 0);
        assert!(matches!(s.workload, WorkloadSpec::Parsec { .. }));
    }

    #[test]
    fn builder_defaults_match_paper_constructor() {
        let b = RunSpec::builder().mechanism("rFLOV").gated_fraction(0.3).seed(7).build();
        let c = RunSpec::synthetic_paper("rFLOV", Pattern::UniformRandom, 0.02, 0.3, 7);
        assert_eq!(b, c);
    }

    #[test]
    fn builder_parsec_matches_parsec_constructor() {
        let b = RunSpec::builder().mechanism("RP").parsec("canneal").seed(2).build();
        assert_eq!(b, RunSpec::parsec("RP", "canneal", 2));
    }

    #[test]
    fn resolve_enables_ring_for_nord() {
        let s = RunSpec::builder().mechanism("NoRD").build();
        assert!(s.cfg.enable_ring);
        // Idempotent: resolving an already-resolved spec changes nothing.
        assert_eq!(s.resolved(), s);
    }

    #[test]
    fn resolve_strips_escape_vcs_for_powerpunch() {
        let s = RunSpec::builder().mechanism("PowerPunch").build();
        assert_eq!(s.cfg.escape_vcs, 0);
        assert_eq!(s.resolved(), s);
    }

    #[test]
    fn builder_k_shorthand_sets_mesh_radix() {
        let s = RunSpec::builder().k(4).build();
        assert_eq!(s.cfg.k, 4);
    }

    #[test]
    fn validate_rejects_oversaturated_rate() {
        // Table I packets are 4 flits: a 5 flits/cycle/node request would
        // silently clamp to one packet per node-cycle. Validation rejects
        // it instead of running the wrong experiment.
        let s = RunSpec::builder().rate(5.0).build();
        assert_eq!(s.validate(), Err(ConfigError::OversaturatedRate { rate: 5.0, pkt_len: 4 }));
        // The saturation boundary itself (rate == pkt_len) is legal.
        assert_eq!(RunSpec::builder().rate(4.0).build().validate(), Ok(()));
        // Negative and non-finite rates are the same class of error.
        assert!(RunSpec::builder().rate(-0.1).build().validate().is_err());
        assert!(RunSpec::builder().rate(f64::NAN).build().validate().is_err());
        // validate() includes the structural config checks.
        let mut bad = RunSpec::builder().build();
        bad.cfg.vnets = 0;
        assert_eq!(bad.validate(), Err(ConfigError::NoVnets));
    }

    #[test]
    fn validate_checks_modulated_workloads() {
        assert_eq!(RunSpec::builder().mmpp(vec![0.001, 0.3], 2_000).build().validate(), Ok(()));
        assert_eq!(RunSpec::builder().diurnal(vec![0.0, 0.2], 5_000).build().validate(), Ok(()));
        // Every phase rate is checked, not just the first.
        assert_eq!(
            RunSpec::builder().mmpp(vec![0.001, 9.0], 2_000).build().validate(),
            Err(ConfigError::OversaturatedRate { rate: 9.0, pkt_len: 4 })
        );
        assert!(matches!(
            RunSpec::builder().mmpp(vec![], 2_000).build().validate(),
            Err(ConfigError::InvalidModulation { .. })
        ));
        assert!(matches!(
            RunSpec::builder().mmpp(vec![0.1], 0).build().validate(),
            Err(ConfigError::InvalidModulation { .. })
        ));
        assert!(matches!(
            RunSpec::builder().diurnal(vec![0.1], 0).build().validate(),
            Err(ConfigError::InvalidModulation { .. })
        ));
    }

    #[test]
    fn builder_workload_precedence_and_shapes() {
        let s = RunSpec::builder().mmpp(vec![0.01, 0.3], 1_000).build();
        assert!(matches!(&s.workload, WorkloadSpec::Mmpp { rates, mean_dwell: 1_000, .. }
            if rates == &[0.01, 0.3]));
        // The modulated workloads keep the synthetic run shape.
        assert_eq!(s.warmup, 10_000);
        assert_eq!(s.cycles, 100_000);

        let s = RunSpec::builder().trace("results/t.flovtrace", 0xDEAD_BEEF, true).build();
        assert!(
            matches!(&s.workload, WorkloadSpec::Trace { crc: 0xDEAD_BEEF, closed_loop: true, path }
            if path == "results/t.flovtrace")
        );

        // Trace wins over every other selector (it *is* the recorded run).
        let s = RunSpec::builder().mmpp(vec![0.1], 10).trace("t", 1, false).build();
        assert!(matches!(s.workload, WorkloadSpec::Trace { .. }));
    }

    #[test]
    fn legacy_workload_encodings_are_stable() {
        // Adding WorkloadSpec variants must not perturb the serialized form
        // of the existing ones: the result cache keys on these bytes.
        let synth = RunSpec::builder().build();
        let json = serde_json::to_string(&synth.workload).unwrap();
        assert_eq!(
            json,
            "{\"Synthetic\":{\"pattern\":\"UniformRandom\",\"rate\":0.02,\
             \"gated_fraction\":0.0,\"seed\":61711,\"changes\":[]}}"
        );
        let parsec = RunSpec::parsec("RP", "canneal", 2);
        let json = serde_json::to_string(&parsec.workload).unwrap();
        assert_eq!(json, "{\"Parsec\":{\"name\":\"canneal\",\"seed\":2}}");
    }
}
