//! Plain-text table + CSV rendering for the figure binaries.

/// A simple aligned-column table that can also emit CSV.
#[derive(Clone, Debug, Default)]
pub struct Table {
    pub title: String,
    pub headers: Vec<String>,
    pub rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(title: &str, headers: &[&str]) -> Table {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Render as CSV.
    pub fn csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.headers.iter().map(|h| csv_escape(h)).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| csv_escape(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Print the table, then the CSV block (for easy scraping), then write
    /// the CSV to `results/<slug>.csv` if the directory is writable.
    pub fn emit(&self, slug: &str) {
        println!("{}", self.render());
        let _ = std::fs::create_dir_all("results");
        let path = format!("results/{slug}.csv");
        if std::fs::write(&path, self.csv()).is_ok() {
            println!("[csv written to {path}]\n");
        }
    }
}

/// Minimal CSV escaping.
pub fn csv_escape(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Format a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Format a float with 3 decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Format watts as milliwatts with 1 decimal.
pub fn mw(x: f64) -> String {
    format!("{:.1}", x * 1e3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["a", "long_header"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["100".into(), "2000".into()]);
        let r = t.render();
        assert!(r.contains("demo"));
        assert!(r.contains("long_header"));
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 5);
        // Columns align: both data lines have the same width.
        assert_eq!(lines[3].len(), lines[4].len());
    }

    #[test]
    fn csv_roundtrip_basics() {
        let mut t = Table::new("x", &["h1", "h2"]);
        t.row(vec!["a,b".into(), "plain".into()]);
        let csv = t.csv();
        assert_eq!(csv, "h1,h2\n\"a,b\",plain\n");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        let mut t = Table::new("x", &["h1", "h2"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn escape_rules() {
        assert_eq!(csv_escape("plain"), "plain");
        assert_eq!(csv_escape("a\"b"), "\"a\"\"b\"");
        assert_eq!(csv_escape("a\nb"), "\"a\nb\"");
    }

    #[test]
    fn number_formats() {
        assert_eq!(f2(1.2345), "1.23");
        assert_eq!(f3(1.2345), "1.234");
        assert_eq!(mw(0.01234), "12.3");
    }
}
