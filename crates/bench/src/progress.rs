//! Live progress for batch runs, written to stderr so CSV/table output on
//! stdout stays clean and pipeable.

use std::io::Write;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Throttled `\r`-style progress line plus a final machine-parseable
/// summary. All methods take `&self`; safe to tick from worker threads.
pub struct Progress {
    total: usize,
    done: AtomicUsize,
    cached: AtomicUsize,
    start: Instant,
    last_draw: Mutex<Instant>,
    enabled: bool,
}

impl Progress {
    pub fn new(total: usize, enabled: bool) -> Progress {
        let now = Instant::now();
        Progress {
            total,
            done: AtomicUsize::new(0),
            cached: AtomicUsize::new(0),
            start: now,
            // Backdate so the first tick draws immediately.
            last_draw: Mutex::new(now - Duration::from_secs(1)),
            enabled,
        }
    }

    /// Record one finished run. `from_cache` runs count toward the cached
    /// tally shown in parentheses.
    pub fn tick(&self, from_cache: bool) {
        let done = self.done.fetch_add(1, Ordering::Relaxed) + 1;
        if from_cache {
            self.cached.fetch_add(1, Ordering::Relaxed);
        }
        if !self.enabled {
            return;
        }
        // Redraw at most every 200ms (always on the last run); skip the
        // draw entirely if another thread holds the throttle lock.
        let Ok(mut last) = self.last_draw.try_lock() else { return };
        if done < self.total && last.elapsed() < Duration::from_millis(200) {
            return;
        }
        *last = Instant::now();
        let cached = self.cached.load(Ordering::Relaxed);
        let elapsed = self.start.elapsed().as_secs_f64();
        let rate = done as f64 / elapsed.max(1e-9);
        let eta = (self.total - done) as f64 / rate.max(1e-9);
        eprint!(
            "\r[flov] {done}/{} runs ({cached} cached) | {rate:.1} runs/s | ETA {eta:.0}s   ",
            self.total,
        );
        let _ = std::io::stderr().flush();
    }

    /// Clear the progress line. Call before printing the batch summary.
    pub fn clear_line(&self) {
        if self.enabled && self.total > 0 {
            eprint!("\r{:76}\r", "");
            let _ = std::io::stderr().flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_progress_still_counts() {
        let p = Progress::new(3, false);
        p.tick(true);
        p.tick(false);
        p.tick(false);
        assert_eq!(p.done.load(Ordering::Relaxed), 3);
        assert_eq!(p.cached.load(Ordering::Relaxed), 1);
        p.clear_line();
    }
}
