//! Live progress for batch runs, written to stderr so CSV/table output on
//! stdout stays clean and pipeable.

use std::io::Write;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Throttled `\r`-style progress line plus a final machine-parseable
/// summary. All methods take `&self`; safe to tick from worker threads.
pub struct Progress {
    total: usize,
    done: AtomicUsize,
    cached: AtomicUsize,
    draws: AtomicUsize,
    start: Instant,
    last_draw: Mutex<Instant>,
    enabled: bool,
}

/// Minimum interval between stderr redraws. Fully-cached batches tick tens
/// of thousands of runs per second; without the throttle the batch becomes
/// syscall-bound on stderr writes.
const DRAW_INTERVAL: Duration = Duration::from_millis(50);

impl Progress {
    pub fn new(total: usize, enabled: bool) -> Progress {
        let now = Instant::now();
        Progress {
            total,
            done: AtomicUsize::new(0),
            cached: AtomicUsize::new(0),
            draws: AtomicUsize::new(0),
            start: now,
            // Backdate so the first tick draws immediately.
            last_draw: Mutex::new(now - Duration::from_secs(1)),
            enabled,
        }
    }

    /// Number of stderr redraws so far (throttle observability).
    pub fn draws(&self) -> usize {
        self.draws.load(Ordering::Relaxed)
    }

    /// Record one finished run. `from_cache` runs count toward the cached
    /// tally shown in parentheses.
    pub fn tick(&self, from_cache: bool) {
        let done = self.done.fetch_add(1, Ordering::Relaxed) + 1;
        if from_cache {
            self.cached.fetch_add(1, Ordering::Relaxed);
        }
        if !self.enabled {
            return;
        }
        // Redraw at most once per DRAW_INTERVAL (always on the last run);
        // skip the draw entirely if another thread holds the throttle lock.
        let Ok(mut last) = self.last_draw.try_lock() else { return };
        if done < self.total && last.elapsed() < DRAW_INTERVAL {
            return;
        }
        *last = Instant::now();
        self.draws.fetch_add(1, Ordering::Relaxed);
        let cached = self.cached.load(Ordering::Relaxed);
        let elapsed = self.start.elapsed().as_secs_f64();
        let rate = done as f64 / elapsed.max(1e-9);
        let eta = (self.total - done) as f64 / rate.max(1e-9);
        eprint!(
            "\r[flov] {done}/{} runs ({cached} cached) | {rate:.1} runs/s | ETA {eta:.0}s   ",
            self.total,
        );
        let _ = std::io::stderr().flush();
    }

    /// Clear the progress line. Call before printing the batch summary.
    pub fn clear_line(&self) {
        if self.enabled && self.total > 0 {
            eprint!("\r{:76}\r", "");
            let _ = std::io::stderr().flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rapid_ticks_are_draw_throttled() {
        // 10k instantaneous ticks must produce at most a handful of stderr
        // writes: the first (backdated) draw, the guaranteed final draw,
        // and at most one per elapsed DRAW_INTERVAL in between.
        let p = Progress::new(10_000, true);
        for i in 0..10_000 {
            p.tick(i % 2 == 0);
        }
        assert_eq!(p.done.load(Ordering::Relaxed), 10_000);
        let draws = p.draws();
        assert!(draws >= 1, "final tick must draw");
        assert!(draws <= 4, "throttle failed: {draws} draws for 10k instant ticks");
        p.clear_line();
    }

    #[test]
    fn disabled_progress_still_counts() {
        let p = Progress::new(3, false);
        p.tick(true);
        p.tick(false);
        p.tick(false);
        assert_eq!(p.done.load(Ordering::Relaxed), 3);
        assert_eq!(p.cached.load(Ordering::Relaxed), 1);
        p.clear_line();
    }
}
