//! Live progress for batch runs, written to stderr so CSV/table output on
//! stdout stays clean and pipeable.
//!
//! Three modes, picked automatically:
//! - **Interactive** (stderr is a terminal): a throttled `\r`-redrawn
//!   status line, as before.
//! - **Plain** (stderr redirected — CI logs, `2>file`): one plain line
//!   per 5% of the batch, so a 10k-run sweep logs ≤20 lines instead of
//!   thousands of carriage-return redraws.
//! - **Silent** (`--quiet`, `FLOV_QUIET`, or a quiet engine): counters
//!   only, no output.

use std::io::{IsTerminal, Write};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// How progress reaches stderr. See the module docs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    Interactive,
    Plain,
    Silent,
}

/// Throttled `\r`-style progress line (or per-5% plain lines). All
/// methods take `&self`; safe to tick from worker threads.
pub struct Progress {
    total: usize,
    done: AtomicUsize,
    cached: AtomicUsize,
    draws: AtomicUsize,
    /// Last 5% milestone printed (Plain mode): `done * 20 / total`.
    milestone: AtomicUsize,
    start: Instant,
    last_draw: Mutex<Instant>,
    mode: Mode,
}

/// Minimum interval between stderr redraws. Fully-cached batches tick tens
/// of thousands of runs per second; without the throttle the batch becomes
/// syscall-bound on stderr writes.
const DRAW_INTERVAL: Duration = Duration::from_millis(50);

impl Progress {
    /// `enabled = false` is Silent; otherwise the mode follows whether
    /// stderr is a terminal.
    pub fn new(total: usize, enabled: bool) -> Progress {
        let mode = if !enabled {
            Mode::Silent
        } else if std::io::stderr().is_terminal() {
            Mode::Interactive
        } else {
            Mode::Plain
        };
        Progress::with_mode(total, mode)
    }

    /// Explicit-mode constructor (tests pin a mode regardless of where
    /// stderr points).
    pub fn with_mode(total: usize, mode: Mode) -> Progress {
        let now = Instant::now();
        Progress {
            total,
            done: AtomicUsize::new(0),
            cached: AtomicUsize::new(0),
            draws: AtomicUsize::new(0),
            milestone: AtomicUsize::new(0),
            start: now,
            // Backdate so the first tick draws immediately.
            last_draw: Mutex::new(now - Duration::from_secs(1)),
            mode,
        }
    }

    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// Number of stderr writes so far (throttle observability).
    pub fn draws(&self) -> usize {
        self.draws.load(Ordering::Relaxed)
    }

    /// Record one finished run. `from_cache` runs count toward the cached
    /// tally shown in parentheses.
    pub fn tick(&self, from_cache: bool) {
        let done = self.done.fetch_add(1, Ordering::Relaxed) + 1;
        if from_cache {
            self.cached.fetch_add(1, Ordering::Relaxed);
        }
        match self.mode {
            Mode::Silent => {}
            Mode::Plain => self.tick_plain(done),
            Mode::Interactive => self.tick_interactive(done),
        }
    }

    /// Plain mode: one line each time the batch crosses a 5% boundary
    /// (and on the final run). A CAS on the milestone counter ensures
    /// exactly one thread prints each boundary.
    fn tick_plain(&self, done: usize) {
        let step = (done * 20).checked_div(self.total).unwrap_or(20);
        let prev = self.milestone.load(Ordering::Relaxed);
        if step <= prev
            || self
                .milestone
                .compare_exchange(prev, step, Ordering::Relaxed, Ordering::Relaxed)
                .is_err()
        {
            return;
        }
        self.draws.fetch_add(1, Ordering::Relaxed);
        let cached = self.cached.load(Ordering::Relaxed);
        let elapsed = self.start.elapsed().as_secs_f64();
        let rate = done as f64 / elapsed.max(1e-9);
        eprintln!(
            "[flov] progress {done}/{} runs ({}%), {cached} cached, {rate:.1} runs/s",
            self.total,
            step * 5,
        );
    }

    fn tick_interactive(&self, done: usize) {
        // Redraw at most once per DRAW_INTERVAL (always on the last run);
        // skip the draw entirely if another thread holds the throttle lock.
        let Ok(mut last) = self.last_draw.try_lock() else { return };
        if done < self.total && last.elapsed() < DRAW_INTERVAL {
            return;
        }
        *last = Instant::now();
        self.draws.fetch_add(1, Ordering::Relaxed);
        let cached = self.cached.load(Ordering::Relaxed);
        let elapsed = self.start.elapsed().as_secs_f64();
        let rate = done as f64 / elapsed.max(1e-9);
        let eta = (self.total - done) as f64 / rate.max(1e-9);
        eprint!(
            "\r[flov] {done}/{} runs ({cached} cached) | {rate:.1} runs/s | ETA {eta:.0}s   ",
            self.total,
        );
        let _ = std::io::stderr().flush();
    }

    /// Clear the progress line. Call before printing the batch summary.
    pub fn clear_line(&self) {
        if self.mode == Mode::Interactive && self.total > 0 {
            eprint!("\r{:76}\r", "");
            let _ = std::io::stderr().flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rapid_ticks_are_draw_throttled() {
        // 10k instantaneous ticks must produce at most a handful of stderr
        // writes: the first (backdated) draw, the guaranteed final draw,
        // and at most one per elapsed DRAW_INTERVAL in between.
        let p = Progress::with_mode(10_000, Mode::Interactive);
        for i in 0..10_000 {
            p.tick(i % 2 == 0);
        }
        assert_eq!(p.done.load(Ordering::Relaxed), 10_000);
        let draws = p.draws();
        assert!(draws >= 1, "final tick must draw");
        assert!(draws <= 4, "throttle failed: {draws} draws for 10k instant ticks");
        p.clear_line();
    }

    #[test]
    fn plain_mode_prints_one_line_per_five_percent() {
        let p = Progress::with_mode(10_000, Mode::Plain);
        for _ in 0..10_000 {
            p.tick(false);
        }
        let draws = p.draws();
        assert!(draws >= 1, "must log at least the final milestone");
        assert!(draws <= 21, "plain mode leaked past 5% milestones: {draws} lines");
        p.clear_line();
    }

    #[test]
    fn plain_mode_small_batch_never_exceeds_run_count() {
        let p = Progress::with_mode(3, Mode::Plain);
        p.tick(false);
        p.tick(true);
        p.tick(false);
        assert!(p.draws() <= 3);
    }

    #[test]
    fn disabled_progress_still_counts() {
        let p = Progress::new(3, false);
        assert_eq!(p.mode(), Mode::Silent);
        p.tick(true);
        p.tick(false);
        p.tick(false);
        assert_eq!(p.done.load(Ordering::Relaxed), 3);
        assert_eq!(p.cached.load(Ordering::Relaxed), 1);
        assert_eq!(p.draws(), 0);
        p.clear_line();
    }
}
