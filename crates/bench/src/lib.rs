//! # flov-bench — the experiment harness
//!
//! [`run`] executes one fully specified simulation and returns every
//! number the paper's figures need (latency + breakdown,
//! static/dynamic/total power, runtime, timeline). Batches go through the
//! [`Engine`], which deduplicates specs, runs them in parallel, and
//! persists results in a content-addressed cache so repeated sweeps are
//! served from disk. The `flov` CLI (`src/bin/flov.rs`) exposes one
//! subcommand per paper table/figure plus the studies; each prints an
//! aligned table and CSV. Every individual simulation is deterministic.

pub mod ablations;
pub mod binfmt;
pub mod cache;
pub mod engine;
pub mod engine_bench;
pub mod figures;
pub mod fuzz;
pub mod kernel_bench;
pub mod progress;
pub mod report;
pub mod scheduler;
pub mod spec;
pub mod studies;
pub mod tracefmt;

pub use cache::{
    CacheEntry, CacheFormat, CacheStats, GcOptions, GcReport, MigrateReport, ResultCache,
    VerifyReport,
};
pub use engine::{Engine, EngineStats, KERNEL_VERSION};
pub use flov_noc::audit::{AuditViolation, DEFAULT_AUDIT_INTERVAL};
pub use flov_noc::network::KernelMode;
pub use fuzz::{FuzzOptions, FuzzReport};
pub use report::{csv_escape, Table};
pub use scheduler::SchedStats;
pub use spec::{RunResult, RunSpec, RunSpecBuilder, WorkloadSpec};

use flov_core::mechanism;
use flov_noc::network::Simulation;
use flov_noc::stats::IntervalSample;
use flov_noc::topology::Topology;
use flov_noc::traits::Workload;
use flov_noc::types::Cycle;
use flov_noc::ConfigError;
use flov_power::GatedResidual;
use flov_workloads::trace::TraceData;
use flov_workloads::{
    Dwell, GatingSchedule, ModulatedWorkload, ParsecWorkload, PatternSpace, RecordingWorkload,
    SyntheticWorkload, TraceWorkload,
};
use std::cell::RefCell;
use std::rc::Rc;

/// Kernel selected by the `FLOV_KERNEL` environment variable (`active` |
/// `reference` | `parallel`); defaults to the active-set kernel. For
/// `parallel`, `FLOV_TILES=RxC` pins an explicit 2-D tile geometry
/// (clamped to the grid per network); otherwise `FLOV_THREADS` sets the
/// tile budget (default 4) and the seam-minimizing planner picks the
/// grid. All kernels produce bit-identical results (enforced by the
/// equivalence suite), so this is a debugging/benchmarking switch, not an
/// experiment parameter — it never enters the result cache key.
pub fn kernel_from_env() -> KernelMode {
    match std::env::var("FLOV_KERNEL").ok().as_deref() {
        None | Some("") | Some("active") | Some("active-set") => KernelMode::ActiveSet,
        Some("reference") | Some("ref") => KernelMode::Reference,
        Some("parallel") | Some("par") => {
            if let Some(v) = std::env::var("FLOV_TILES").ok().filter(|v| !v.is_empty()) {
                let (r, c) = parse_tile_geometry(&v)
                    .unwrap_or_else(|| panic!("bad FLOV_TILES value {v:?} (use RxC, e.g. 4x2)"));
                return KernelMode::Parallel { tiles: r as usize * c as usize, grid: Some((r, c)) };
            }
            let tiles =
                match std::env::var("FLOV_THREADS").ok().as_deref() {
                    None | Some("") => 4,
                    Some(v) => v.parse::<usize>().ok().filter(|&t| t >= 1).unwrap_or_else(|| {
                        panic!("bad FLOV_THREADS value {v:?} (positive integer)")
                    }),
                };
            KernelMode::Parallel { tiles, grid: None }
        }
        Some(other) => {
            panic!("unknown FLOV_KERNEL value {other:?} (use active|reference|parallel)")
        }
    }
}

/// Parse an explicit `RxC` tile geometry (e.g. `4x2`); both axes must be
/// positive. Shared by `FLOV_TILES` and the `--tiles` CLI flag.
pub fn parse_tile_geometry(v: &str) -> Option<(u16, u16)> {
    let (r, c) = v.split_once(['x', 'X'])?;
    let r = r.trim().parse::<u16>().ok().filter(|&r| r >= 1)?;
    let c = c.trim().parse::<u16>().ok().filter(|&c| c >= 1)?;
    Some((r, c))
}

/// Auditor override from the `FLOV_AUDIT` environment variable:
/// * unset / empty — `None` (defer to [`RunSpec::audit`]);
/// * `0` / `off` — `Some(None)` (force auditing off);
/// * `1` / `on` — `Some(Some(DEFAULT_AUDIT_INTERVAL))`;
/// * any other integer `n >= 2` — `Some(Some(n))` (audit every `n` cycles).
///
/// Like `FLOV_KERNEL` this never enters the result cache key: auditing is
/// read-only, so results are bit-identical with or without it.
pub fn audit_override() -> Option<Option<Cycle>> {
    match std::env::var("FLOV_AUDIT").ok().as_deref() {
        None | Some("") => None,
        Some("0") | Some("off") => Some(None),
        Some("1") | Some("on") => Some(Some(DEFAULT_AUDIT_INTERVAL)),
        Some(other) => match other.parse::<Cycle>() {
            Ok(n) if n >= 2 => Some(Some(n)),
            _ => panic!("unknown FLOV_AUDIT value {other:?} (use 0|1|off|on|<interval>)"),
        },
    }
}

/// One run plus everything its invariant auditor observed. When auditing
/// was disabled, `violations` is empty and `audit_checks` is 0.
#[derive(Clone, Debug)]
pub struct AuditedRun {
    pub result: RunResult,
    /// Violations in detection order (capped inside the [`flov_noc::audit::Auditor`];
    /// `suppressed` counts the overflow).
    pub violations: Vec<AuditViolation>,
    pub suppressed: u64,
    /// Full audit sweeps performed.
    pub audit_checks: u64,
}

/// Execute one simulation per `spec`, resolving the mechanism by name.
pub fn run(spec: &RunSpec) -> RunResult {
    run_kernel(spec, kernel_from_env())
}

/// [`run`] with an explicit kernel mode (the equivalence suite and
/// `bench-kernel` compare the two modes directly).
pub fn run_kernel(spec: &RunSpec, kernel: KernelMode) -> RunResult {
    run_kernel_audited(spec, kernel).result
}

/// [`run_kernel`], keeping the auditor's findings instead of just warning
/// about them. The differential fuzzer ([`fuzz`]) is the main consumer.
pub fn run_kernel_audited(spec: &RunSpec, kernel: KernelMode) -> AuditedRun {
    try_run_kernel_audited(spec, kernel)
        .unwrap_or_else(|e| panic!("invalid run spec ({}): {e}", spec.mechanism))
}

/// [`run_kernel_audited`] with config validation up front: a misconfigured
/// spec (e.g. NoRD on a topology with no Hamiltonian ring) comes back as a
/// structured [`ConfigError`] instead of a panic. The CLI surfaces these as
/// diagnostics.
pub fn try_run_kernel_audited(
    spec: &RunSpec,
    kernel: KernelMode,
) -> Result<AuditedRun, ConfigError> {
    let spec = spec.resolved();
    spec.validate()?;
    let mech = mechanism::by_name(&spec.mechanism, &spec.cfg)
        .unwrap_or_else(|| panic!("unknown mechanism {:?}", spec.mechanism));
    Ok(run_with_kernel_audited(&spec, mech, kernel))
}

/// Run `spec` while capturing its workload's full observable behaviour —
/// the injection stream, the active-core flips, and the change pulses —
/// as a [`TraceData`] (serialize it with [`tracefmt::encode_trace`]).
/// The recording wrapper is transparent, so the returned result is
/// bit-identical to an unrecorded run of the same spec.
pub fn record_trace(
    spec: &RunSpec,
    kernel: KernelMode,
) -> Result<(AuditedRun, TraceData), ConfigError> {
    let spec = spec.resolved();
    spec.validate()?;
    let mech = mechanism::by_name(&spec.mechanism, &spec.cfg)
        .unwrap_or_else(|| panic!("unknown mechanism {:?}", spec.mechanism));
    let log = Rc::new(RefCell::new(TraceData::default()));
    let audited = run_audited_inner(&spec, mech, kernel, Some(Rc::clone(&log)));
    let data = Rc::try_unwrap(log).expect("recording log still shared after the run").into_inner();
    Ok((audited, data))
}

/// Execute one simulation with an explicitly constructed mechanism (used by
/// the ablation studies, which tweak mechanism-internal parameters).
pub fn run_with(spec: &RunSpec, mech: Box<dyn flov_noc::PowerMechanism>) -> RunResult {
    run_with_kernel(spec, mech, kernel_from_env())
}

/// [`run_with`] with an explicit kernel mode. Auditor violations (if
/// auditing is enabled) are reported on stderr; use
/// [`run_with_kernel_audited`] to consume them programmatically.
pub fn run_with_kernel(
    spec: &RunSpec,
    mech: Box<dyn flov_noc::PowerMechanism>,
    kernel: KernelMode,
) -> RunResult {
    let audited = run_with_kernel_audited(spec, mech, kernel);
    for v in &audited.violations {
        eprintln!("[flov] audit violation ({}): {v}", spec.mechanism);
    }
    audited.result
}

/// [`run_with_kernel`], returning the auditor's findings alongside the
/// result.
pub fn run_with_kernel_audited(
    spec: &RunSpec,
    mech: Box<dyn flov_noc::PowerMechanism>,
    kernel: KernelMode,
) -> AuditedRun {
    run_audited_inner(spec, mech, kernel, None)
}

/// Construct the workload a spec describes (the single source of truth for
/// spec→workload semantics; every run and recording goes through it).
fn build_workload(spec: &RunSpec) -> Box<dyn Workload> {
    let cfg = &spec.cfg;
    let space = PatternSpace { kx: cfg.kx(), ky: cfg.ky(), c: cfg.concentration() };
    let static_gating = |gated_fraction: &f64, seed: &u64| {
        GatingSchedule::static_fraction(cfg.cores(), *gated_fraction, *seed, &[])
    };
    match &spec.workload {
        WorkloadSpec::Synthetic { pattern, rate, gated_fraction, seed, changes } => {
            let gating = if changes.is_empty() {
                static_gating(gated_fraction, seed)
            } else {
                GatingSchedule::rerandomized_at(cfg.cores(), *gated_fraction, *seed, changes, &[])
            };
            Box::new(SyntheticWorkload::with_space(
                space,
                *pattern,
                *rate,
                cfg.synth_packet_len,
                spec.cycles,
                gating,
                *seed ^ 0xABCD,
            ))
        }
        WorkloadSpec::Mmpp { pattern, rates, mean_dwell, gated_fraction, seed } => {
            Box::new(ModulatedWorkload::new(
                space,
                *pattern,
                rates.clone(),
                Dwell::Geometric { mean: *mean_dwell },
                cfg.synth_packet_len,
                spec.cycles,
                static_gating(gated_fraction, seed),
                *seed ^ 0xABCD,
            ))
        }
        WorkloadSpec::Diurnal { pattern, rates, dwell, gated_fraction, seed } => {
            Box::new(ModulatedWorkload::new(
                space,
                *pattern,
                rates.clone(),
                Dwell::Fixed { cycles: *dwell },
                cfg.synth_packet_len,
                spec.cycles,
                static_gating(gated_fraction, seed),
                *seed ^ 0xABCD,
            ))
        }
        WorkloadSpec::Parsec { name, seed } => {
            // The PARSEC proxy places memory controllers at the corners of
            // a square k x k grid with one core per router; other fabrics
            // have no defined MC placement.
            assert!(
                cfg.kx() == cfg.ky() && cfg.concentration() == 1,
                "PARSEC workload requires a square non-concentrated mesh, got {}",
                cfg.topology_spec().label(),
            );
            let profile = flov_workloads::benchmark(name)
                .unwrap_or_else(|| panic!("unknown PARSEC benchmark {name:?}"));
            Box::new(ParsecWorkload::new(cfg.kx(), profile, *seed))
        }
        WorkloadSpec::Trace { path, crc, .. } => {
            let bytes = std::fs::read(path)
                .unwrap_or_else(|e| panic!("cannot read trace file {path:?}: {e}"));
            let file = tracefmt::decode_trace(&bytes)
                .unwrap_or_else(|e| panic!("bad trace file {path:?}: {}", e.0));
            assert_eq!(
                file.crc, *crc,
                "trace file {path:?} CRC {:08x} does not match the spec's {crc:08x} \
                 (the file changed since the spec was written)",
                file.crc,
            );
            if let Some(max) = file.data.max_node() {
                assert!(
                    (max as usize) < cfg.cores(),
                    "trace references node {max} but the config has {} cores",
                    cfg.cores(),
                );
            }
            if file.kernel_version != KERNEL_VERSION {
                eprintln!(
                    "[flov] note: trace {path:?} was recorded under kernel version {} \
                     (this build is {KERNEL_VERSION}); replay is well-defined but \
                     cross-version bit-identity is not guaranteed",
                    file.kernel_version,
                );
            }
            Box::new(TraceWorkload::new(file.data))
        }
    }
}

fn run_audited_inner(
    spec: &RunSpec,
    mech: Box<dyn flov_noc::PowerMechanism>,
    kernel: KernelMode,
    record: Option<Rc<RefCell<TraceData>>>,
) -> AuditedRun {
    let cfg = spec.cfg.clone();
    let mut workload = build_workload(spec);
    if let Some(log) = record {
        workload = Box::new(RecordingWorkload::new(workload, log));
    }
    let mut sim = Simulation::new(cfg, mech, workload);
    sim.core.kernel = kernel;
    sim.measure_from(spec.warmup);
    sim.core.stats.interval_width = spec.timeline_width;
    let audit_interval = match audit_override() {
        Some(forced) => forced,
        None => spec.audit.then_some(DEFAULT_AUDIT_INTERVAL),
    };
    if let Some(interval) = audit_interval {
        sim.attach_auditor(interval);
    }
    if !spec.mech_switches.is_empty() {
        assert!(
            !matches!(spec.workload, WorkloadSpec::Parsec { .. }),
            "mech_switches do not apply to closed-loop PARSEC runs"
        );
    }
    // Closed-loop runs (PARSEC; trace replays of such runs) execute to
    // workload completion under a cycle cap; open-loop runs execute the
    // fixed warmup/measure/drain window.
    let closed_loop = match &spec.workload {
        WorkloadSpec::Parsec { .. } => true,
        WorkloadSpec::Trace { closed_loop, .. } => *closed_loop,
        _ => false,
    };
    // Warmup.
    run_switched(&mut sim, spec, spec.warmup);
    let act0 = sim.core.activity.clone();
    let res0 = sim.core.residency().to_vec();
    // Measured portion.
    let measured_end;
    if closed_loop {
        let end = sim.run_until_done(spec.cycles);
        assert!(
            sim.core.is_empty(),
            "closed-loop run hit the cycle cap ({end} cycles) before completing"
        );
        measured_end = end;
    } else {
        run_switched(&mut sim, spec, spec.cycles);
        measured_end = sim.core.cycle;
        sim.core.stats.measure_until = spec.cycles;
        sim.drain(spec.drain);
    }
    // A final sweep so short runs (or a deadlocked drain) are audited even
    // when the run length never crossed an interval boundary.
    if let Some(aud) = sim.auditor.as_deref_mut() {
        aud.check(&sim.core, sim.mech.as_ref());
    }
    let window = measured_end - spec.warmup;
    let activity = sim.core.activity.delta_since(&act0);
    let residency = flov_power::residency_delta(sim.core.residency(), &res0);
    let power = flov_power::compute_links(
        &spec.power_params,
        sim.core.topo.links().len() as u64,
        &activity,
        &residency,
        window.max(1),
        GatedResidual::for_mechanism(&spec.mechanism),
    );
    let (violations, suppressed, audit_checks) = match sim.auditor.as_deref_mut() {
        Some(aud) => (aud.take_violations(), aud.suppressed(), aud.checks()),
        None => (Vec::new(), 0, 0),
    };
    let s = &sim.core.stats;
    let result = RunResult {
        mechanism: spec.mechanism.clone(),
        packets: s.packets,
        avg_latency: s.avg_latency(),
        max_latency: s.latency_max,
        latency_percentiles: s.histogram.percentiles(),
        breakdown: s.breakdown.averages(s.packets),
        avg_hops: s.avg_hops(),
        avg_flov_hops: s.avg_flov_hops(),
        escape_packets: s.escape_packets,
        escape_diversions: sim.core.escape_diversions,
        throughput: s.throughput(window.max(1)),
        power,
        runtime_cycles: measured_end,
        stalled_injection_cycles: sim.core.stalled_injection_node_cycles,
        gating_events: activity.gating_events,
        flov_latch_flits: activity.flov_latch_flits,
        ring_flits: activity.ring_flits,
        vnet_latency: [
            (s.per_vnet[0].0, s.vnet_avg_latency(0)),
            (s.per_vnet[1].0, s.vnet_avg_latency(1)),
            (s.per_vnet[2].0, s.vnet_avg_latency(2)),
        ],
        timeline: sim.core.stats.timeline.clone(),
        delivered_all: sim.core.is_empty(),
    };
    AuditedRun { result, violations, suppressed, audit_checks }
}

/// Advance `sim` to absolute cycle `until`, applying any
/// [`RunSpec::mech_switches`] that fall in `[sim.core.cycle, until)` at
/// their exact cycle. Illegal switches (anything but Baseline→rFLOV,
/// Baseline→gFLOV, rFLOV→gFLOV) panic: a stricter protocol's invariants
/// do not hold over the looser fabric it would inherit.
fn run_switched(sim: &mut Simulation, spec: &RunSpec, until: Cycle) {
    for (at, name) in &spec.mech_switches {
        if *at < sim.core.cycle || *at >= until {
            continue;
        }
        sim.run(*at - sim.core.cycle);
        let from = sim.mech.name();
        assert!(
            matches!((from, name.as_str()), ("Baseline", "rFLOV" | "gFLOV") | ("rFLOV", "gFLOV")),
            "illegal mechanism switch {from} -> {name} at cycle {at}"
        );
        sim.mech = mechanism::by_name(name, &sim.core.cfg)
            .unwrap_or_else(|| panic!("unknown mechanism {name:?} in mech_switches"));
    }
    sim.run(until.saturating_sub(sim.core.cycle));
}

/// Run many specs in parallel, preserving order. Equivalent to a batch on
/// an [`Engine::without_cache`]: deduplicated, but never cached — use an
/// [`Engine`] when results should persist across invocations.
pub fn run_all(specs: &[RunSpec]) -> Vec<RunResult> {
    Engine::without_cache().run_batch(specs)
}

/// Convenience: the paper's synthetic sweep axes.
pub mod axes {
    /// Gated-core fractions of Figs. 6–9 (0%..80%).
    pub const GATED_FRACTIONS: [f64; 9] = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8];
    /// Injection rates of Figs. 6–7 (flits/cycle/node).
    pub const INJECTION_RATES: [f64; 2] = [0.02, 0.08];
}

/// Timeline helper for Fig. 10: bucketed average latency.
pub fn timeline_rows(t: &[IntervalSample]) -> Vec<(u64, f64, u64)> {
    t.iter().map(|s| (s.start, s.avg_latency(), s.packets)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_spec(mech: &str, fraction: f64) -> RunSpec {
        RunSpec::builder()
            .mechanism(mech)
            .gated_fraction(fraction)
            .seed(42)
            .warmup(2_000)
            .cycles(10_000)
            .drain(30_000)
            .build()
    }

    #[test]
    fn all_mechanisms_complete_a_quick_run() {
        for mech in mechanism::ALL {
            let r = run(&quick_spec(mech, 0.3));
            assert!(r.packets > 50, "{mech}: only {} packets measured", r.packets);
            assert!(r.delivered_all, "{mech}: packets left in flight");
            assert!(r.avg_latency > 8.0, "{mech}: implausible latency {}", r.avg_latency);
            assert!(r.power.total_w > 0.0);
        }
    }

    #[test]
    fn gflov_saves_static_power_vs_baseline() {
        let base = run(&quick_spec("Baseline", 0.5));
        let g = run(&quick_spec("gFLOV", 0.5));
        assert!(
            g.power.static_w < base.power.static_w * 0.8,
            "gFLOV static {} vs baseline {}",
            g.power.static_w,
            base.power.static_w
        );
    }

    #[test]
    fn runs_are_deterministic() {
        let a = run(&quick_spec("gFLOV", 0.4));
        let b = run(&quick_spec("gFLOV", 0.4));
        assert_eq!(a.packets, b.packets);
        assert_eq!(a.avg_latency, b.avg_latency);
        assert_eq!(a.power.static_w, b.power.static_w);
    }

    #[test]
    fn parallel_sweep_matches_serial() {
        let specs: Vec<RunSpec> = [0.0, 0.4].iter().map(|&f| quick_spec("rFLOV", f)).collect();
        let par = run_all(&specs);
        let ser: Vec<RunResult> = specs.iter().map(run).collect();
        for (p, s) in par.iter().zip(&ser) {
            assert_eq!(p.avg_latency, s.avg_latency);
            assert_eq!(p.packets, s.packets);
        }
    }
}
