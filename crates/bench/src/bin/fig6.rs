//! Fig. 6 — Uniform Random traffic: average latency, dynamic power and
//! total power at injection rates 0.02 and 0.08 flits/cycle/node, across
//! 0–80% power-gated cores, for Baseline / RP / rFLOV / gFLOV.
//!
//! Usage: `cargo run --release -p flov-bench --bin fig6 [--quick]`

use flov_bench::figures::{fig_synthetic, SynthScale};
use flov_workloads::Pattern;

fn main() {
    let scale = SynthScale::from_args();
    let tables = fig_synthetic(Pattern::UniformRandom, &scale);
    for (i, t) in tables.iter().enumerate() {
        t.emit(&format!("fig6_{i}"));
    }
}
