//! The full §II landscape in one table: Baseline, Router Parking (HPCA'13),
//! NoRD (MICRO'12), Power Punch (HPCA'15), rFLOV and gFLOV, under the
//! paper's synthetic methodology. This positions FLOV exactly as the paper
//! argues: NoRD-class static savings, Power-Punch-class latency, without a
//! ring, without punch churn, and without a fabric manager.
//!
//! Usage: `cargo run --release -p flov-bench --bin related [--quick]`

use flov_bench::report::{f2, mw, Table};
use flov_bench::{run_all, RunSpec, WorkloadSpec};
use flov_noc::NocConfig;
use flov_power::PowerParams;
use flov_workloads::Pattern;

const MECHS: [&str; 6] = ["Baseline", "RP", "NoRD", "PowerPunch", "rFLOV", "gFLOV"];

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let cycles = if quick { 12_000 } else { 100_000 };
    let fractions: &[f64] = if quick { &[0.5] } else { &[0.2, 0.5, 0.8] };
    let mut t = Table::new(
        "related-work landscape — 8x8, UR 0.02 flits/cycle/node",
        &[
            "gated %",
            "mech",
            "avg lat",
            "p95",
            "static [mW]",
            "dynamic [mW]",
            "total [mW]",
            "gating events",
        ],
    );
    for &f in fractions {
        let specs: Vec<RunSpec> = MECHS
            .iter()
            .map(|&m| RunSpec {
                cfg: NocConfig::paper_table1(),
                mechanism: m.into(),
                workload: WorkloadSpec::Synthetic {
                    pattern: Pattern::UniformRandom,
                    rate: 0.02,
                    gated_fraction: f,
                    seed: 0xF10F,
                    changes: vec![],
                },
                warmup: cycles / 10,
                cycles,
                drain: cycles * 2,
                timeline_width: 0,
                power_params: PowerParams::default(),
            })
            .collect();
        for r in run_all(&specs) {
            t.row(vec![
                format!("{:.0}", f * 100.0),
                r.mechanism.clone(),
                f2(r.avg_latency),
                r.latency_percentiles.1.to_string(),
                mw(r.power.static_w),
                mw(r.power.dynamic_w),
                mw(r.power.total_w),
                r.gating_events.to_string(),
            ]);
        }
    }
    t.emit("related");
    println!("Reading guide: NoRD = lowest static, worst latency (ring trips).");
    println!("PowerPunch = good latency, but wake/sleep churn (gating events, 17.7 pJ each)");
    println!("and punched paths stay powered. gFLOV = near-NoRD static at near-Baseline");
    println!("latency with zero per-packet wakeups — the paper's positioning.");
}
