//! Ablation studies over the design choices of the reproduction: escape
//! timeout, idle-detect threshold, RP Phase-I stall, buffer depth, VC
//! count, RP parking policy, handshake RTT.
//!
//! Usage: `cargo run --release -p flov-bench --bin ablations [--quick]`

use flov_bench::ablations;

fn main() {
    let cycles = if std::env::args().any(|a| a == "--quick") { 12_000 } else { 100_000 };
    for (i, t) in ablations::all(cycles).iter().enumerate() {
        t.emit(&format!("ablation_{i}"));
    }
}
