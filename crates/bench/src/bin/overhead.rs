//! §V-A — area/overhead analysis of the FLOV router additions (PSRs, HSC,
//! latches, muxes): reproduces the paper's 2.8e-3 mm² / 3% quantization.
//!
//! Usage: `cargo run --release -p flov-bench --bin overhead`

use flov_bench::figures::overhead;

fn main() {
    overhead().emit("overhead");
}
