//! Mesh-size scaling study (beyond the paper's 8x8): latency and power of
//! gFLOV vs Router Parking vs Baseline on 4x4 … 16x16 meshes at 50% gated
//! cores. The paper motivates FLOV's distributed control by the
//! scalability limits of centralized reconfiguration (RP) and ring bypasses
//! (NoRD); this experiment quantifies the first claim: RP's stall cost and
//! detour length grow with the mesh, FLOV's handshakes stay local.
//!
//! Usage: `cargo run --release -p flov-bench --bin scaling [--quick]`

use flov_bench::report::{f2, mw, Table};
use flov_bench::{run_all, RunSpec, WorkloadSpec};
use flov_noc::NocConfig;
use flov_power::PowerParams;
use flov_workloads::Pattern;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (cycles, warmup) = if quick { (12_000, 2_000) } else { (100_000, 10_000) };
    let ks: &[u16] = if quick { &[4, 8] } else { &[4, 8, 12, 16] };
    let mechs = ["Baseline", "RP", "gFLOV"];
    let mut t = Table::new(
        "mesh-size scaling: UR 0.02 flits/cycle/node, 50% cores gated",
        &["k", "mech", "avg lat", "avg hops", "flov hops", "static [mW]", "total [mW]", "stall cy"],
    );
    for &k in ks {
        let specs: Vec<RunSpec> = mechs
            .iter()
            .map(|&m| RunSpec {
                cfg: NocConfig { k, ..NocConfig::paper_table1() },
                mechanism: m.into(),
                workload: WorkloadSpec::Synthetic {
                    pattern: Pattern::UniformRandom,
                    rate: 0.02,
                    gated_fraction: 0.5,
                    seed: 0xF10F ^ k as u64,
                    changes: vec![cycles / 2],
                },
                warmup,
                cycles,
                drain: cycles * 2,
                timeline_width: 0,
                power_params: PowerParams::default(),
            })
            .collect();
        for r in run_all(&specs) {
            t.row(vec![
                k.to_string(),
                r.mechanism.clone(),
                f2(r.avg_latency),
                f2(r.avg_hops),
                f2(r.avg_flov_hops),
                mw(r.power.static_w),
                mw(r.power.total_w),
                r.stalled_injection_cycles.to_string(),
            ]);
        }
    }
    t.emit("scaling");
    println!("Expected shape: RP's stall node-cycles and latency penalty grow with k;");
    println!("gFLOV's latency stays near Baseline at every size (local handshakes).");
}
