//! NoRD vs FLOV — quantifying the paper's §II critique of node-router
//! decoupling: "a bypass ring is not scalable to large network sizes" and
//! "a bypass can be constructed in a (k x k) mesh, if and only if k is
//! even".
//!
//! Two experiments:
//!  1. 8x8 gated-fraction sweep (UR, 0.02): latency + power of NoRD vs
//!     gFLOV vs RP vs Baseline. NoRD gates *more* routers than anyone (no
//!     AON column, no adjacency/connectivity limits) so its static power is
//!     the lowest — but ring trips cost latency.
//!  2. Mesh scaling at 75% gated cores: the ring's O(N) trips make NoRD's
//!     latency blow up with k while gFLOV stays near Baseline.
//!
//! Usage: `cargo run --release -p flov-bench --bin nord [--quick]`

use flov_bench::report::{f2, mw, Table};
use flov_bench::{run_all, RunSpec, WorkloadSpec};
use flov_noc::NocConfig;
use flov_power::PowerParams;
use flov_workloads::Pattern;

fn spec(mech: &str, k: u16, rate: f64, fraction: f64, cycles: u64) -> RunSpec {
    RunSpec {
        cfg: NocConfig { k, ..NocConfig::paper_table1() },
        mechanism: mech.into(),
        workload: WorkloadSpec::Synthetic {
            pattern: Pattern::UniformRandom,
            rate,
            gated_fraction: fraction,
            seed: 0xF10F,
            changes: vec![],
        },
        warmup: cycles / 10,
        cycles,
        drain: cycles * 2,
        timeline_width: 0,
        power_params: PowerParams::default(),
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let cycles = if quick { 12_000 } else { 100_000 };
    let mechs = ["Baseline", "RP", "gFLOV", "NoRD"];

    // Experiment 1: gated-fraction sweep at 8x8.
    let fractions: &[f64] =
        if quick { &[0.0, 0.5] } else { &[0.0, 0.2, 0.4, 0.6, 0.8] };
    let mut t = Table::new(
        "NoRD vs FLOV — 8x8 UR 0.02, latency / static / total power",
        &["gated %", "mech", "avg lat", "ring flits", "static [mW]", "total [mW]"],
    );
    for &f in fractions {
        let specs: Vec<RunSpec> =
            mechs.iter().map(|&m| spec(m, 8, 0.02, f, cycles)).collect();
        for r in run_all(&specs) {
            t.row(vec![
                format!("{:.0}", f * 100.0),
                r.mechanism.clone(),
                if r.packets == 0 { "n/a".into() } else { f2(r.avg_latency) },
                r.ring_flits.to_string(),
                mw(r.power.static_w),
                mw(r.power.total_w),
            ]);
        }
    }
    t.emit("nord_sweep");

    // Experiment 2: mesh scaling at 75% gated.
    let ks: &[u16] = if quick { &[4, 8] } else { &[4, 8, 12, 16] };
    let mut t2 = Table::new(
        "NoRD scalability — UR 0.02, 75% gated: ring latency grows with k",
        &["k", "mech", "avg lat", "p95 lat", "static [mW]"],
    );
    for &k in ks {
        let specs: Vec<RunSpec> = ["gFLOV", "NoRD"]
            .iter()
            .map(|&m| spec(m, k, 0.02, 0.75, cycles))
            .collect();
        for r in run_all(&specs) {
            t2.row(vec![
                k.to_string(),
                r.mechanism.clone(),
                f2(r.avg_latency),
                r.latency_percentiles.1.to_string(),
                mw(r.power.static_w),
            ]);
        }
    }
    t2.emit("nord_scaling");
    println!("Expected: NoRD's static power is the lowest (gates everything, no AON");
    println!("column) but its latency diverges with k — the paper's scalability point.");
}
