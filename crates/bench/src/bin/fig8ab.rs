//! Fig. 8(a)/(b) — per-packet latency breakdown (accumulated router
//! latency, link latency, serialization, contention, FLOV latency) under
//! Uniform Random and Tornado traffic at 0.02 flits/cycle/node.
//!
//! Usage: `cargo run --release -p flov-bench --bin fig8ab [--quick]`

use flov_bench::figures::{fig_breakdown, SynthScale};
use flov_workloads::Pattern;

fn main() {
    let scale = SynthScale::from_args();
    fig_breakdown(Pattern::UniformRandom, &scale).emit("fig8a");
    fig_breakdown(Pattern::Tornado, &scale).emit("fig8b");
}
