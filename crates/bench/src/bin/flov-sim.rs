//! `flov-sim` — a general-purpose command-line front end for one-off
//! simulations: pick the mechanism, traffic, rate, gating level, and get a
//! full report (latency breakdown, power, hotspot summary, mesh map), with
//! optional JSON output for scripting.
//!
//! Usage:
//!   cargo run --release -p flov-bench --bin flov-sim -- \
//!       [--mech gFLOV] [--pattern uniform] [--rate 0.02] [--gated 0.5] \
//!       [--cycles 100000] [--warmup 10000] [--seed 61711] [--k 8] \
//!       [--parsec canneal] [--json] [--map]

use flov_bench::{run, RunSpec, WorkloadSpec};
use flov_core::mechanism;
use flov_noc::network::Simulation;
use flov_noc::render;
use flov_noc::NocConfig;
use flov_power::PowerParams;
use flov_workloads::{GatingSchedule, Pattern, SyntheticWorkload};

struct Args {
    mech: String,
    pattern: Pattern,
    rate: f64,
    gated: f64,
    cycles: u64,
    warmup: u64,
    seed: u64,
    k: u16,
    parsec: Option<String>,
    json: bool,
    map: bool,
}

fn parse_args() -> Args {
    let mut a = Args {
        mech: "gFLOV".into(),
        pattern: Pattern::UniformRandom,
        rate: 0.02,
        gated: 0.5,
        cycles: 100_000,
        warmup: 10_000,
        seed: 0xF10F,
        k: 8,
        parsec: None,
        json: false,
        map: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let usage = || -> ! {
        eprintln!(
            "usage: flov-sim [--mech NAME] [--pattern P] [--rate R] [--gated F] \
             [--cycles N] [--warmup N] [--seed S] [--k K] [--parsec BENCH] [--json] [--map]"
        );
        std::process::exit(2);
    };
    while i < argv.len() {
        let val = |i: &mut usize| -> String {
            *i += 1;
            argv.get(*i).cloned().unwrap_or_else(|| usage())
        };
        match argv[i].as_str() {
            "--mech" => a.mech = val(&mut i),
            "--pattern" => {
                a.pattern = match val(&mut i).as_str() {
                    "uniform" => Pattern::UniformRandom,
                    "tornado" => Pattern::Tornado,
                    "transpose" => Pattern::Transpose,
                    "bitcomp" => Pattern::BitComplement,
                    "neighbor" => Pattern::Neighbor,
                    _ => usage(),
                }
            }
            "--rate" => a.rate = val(&mut i).parse().unwrap_or_else(|_| usage()),
            "--gated" => a.gated = val(&mut i).parse().unwrap_or_else(|_| usage()),
            "--cycles" => a.cycles = val(&mut i).parse().unwrap_or_else(|_| usage()),
            "--warmup" => a.warmup = val(&mut i).parse().unwrap_or_else(|_| usage()),
            "--seed" => a.seed = val(&mut i).parse().unwrap_or_else(|_| usage()),
            "--k" => a.k = val(&mut i).parse().unwrap_or_else(|_| usage()),
            "--parsec" => a.parsec = Some(val(&mut i)),
            "--json" => a.json = true,
            "--map" => a.map = true,
            "--help" | "-h" => usage(),
            _ => usage(),
        }
        i += 1;
    }
    a
}

fn main() {
    let a = parse_args();
    let cfg = NocConfig { k: a.k, ..NocConfig::paper_table1() };
    let spec = RunSpec {
        cfg: cfg.clone(),
        mechanism: a.mech.clone(),
        workload: match &a.parsec {
            Some(bench) => WorkloadSpec::Parsec { name: bench.clone(), seed: a.seed },
            None => WorkloadSpec::Synthetic {
                pattern: a.pattern,
                rate: a.rate,
                gated_fraction: a.gated,
                seed: a.seed,
                changes: vec![],
            },
        },
        warmup: if a.parsec.is_some() { 0 } else { a.warmup },
        cycles: if a.parsec.is_some() { 5_000_000 } else { a.cycles },
        drain: a.cycles,
        timeline_width: 0,
        power_params: PowerParams::default(),
    };
    let r = run(&spec);
    if a.json {
        println!("{}", serde_json::to_string_pretty(&r).expect("serialize result"));
    } else {
        println!("mechanism        {}", r.mechanism);
        println!("packets          {}", r.packets);
        println!("avg latency      {:.2} cycles (max {})", r.avg_latency, r.max_latency);
        let (p50, p95, p99) = r.latency_percentiles;
        println!("  percentiles    p50<={p50} p95<={p95} p99<={p99}");
        println!(
            "  breakdown      router {:.2} | link {:.2} | serial {:.2} | contention {:.2} | flov {:.2}",
            r.breakdown[0], r.breakdown[1], r.breakdown[2], r.breakdown[3], r.breakdown[4]
        );
        println!("avg hops         {:.2} routers + {:.2} flov latches", r.avg_hops, r.avg_flov_hops);
        println!("throughput       {:.4} flits/cycle", r.throughput);
        println!("escape           {} packets ({} diversions)", r.escape_packets, r.escape_diversions);
        println!("static power     {:.1} mW", r.power.static_w * 1e3);
        println!("dynamic power    {:.1} mW", r.power.dynamic_w * 1e3);
        println!("total power      {:.1} mW", r.power.total_w * 1e3);
        println!("total energy     {:.3} uJ over {} cycles", r.power.total_j() * 1e6, r.power.cycles);
        println!("gating events    {}", r.gating_events);
        println!("stalled inj      {} node-cycles", r.stalled_injection_cycles);
        if a.parsec.is_some() {
            println!(
                "per-class lat    req {:.1} ({} pkts) | data {:.1} ({}) | ctrl {:.1} ({})",
                r.vnet_latency[0].1, r.vnet_latency[0].0,
                r.vnet_latency[1].1, r.vnet_latency[1].0,
                r.vnet_latency[2].1, r.vnet_latency[2].0
            );
        }
    }
    if a.map {
        // Re-run briefly to render the steady-state map (run() consumed the sim).
        let mech = mechanism::by_name(&a.mech, &cfg).expect("mechanism");
        let w = SyntheticWorkload::new(
            cfg.k,
            a.pattern,
            a.rate,
            cfg.synth_packet_len,
            20_000,
            GatingSchedule::static_fraction(cfg.nodes(), a.gated, a.seed, &[]),
            a.seed ^ 0xABCD,
        );
        let mut sim = Simulation::new(cfg, mech, Box::new(w));
        sim.run(20_000);
        println!("\npower map (A=active, a=active router/gated core, d=draining, w=waking, .=asleep):");
        print!("{}", render::power_map(&sim.core));
        let (max, mean, gini) = render::link_util_summary(&sim.core);
        println!("link utilization: max {max}, mean {mean:.1}, gini {gini:.3}");
        println!("east-link heatmap (0-9 relative):");
        print!("{}", render::eastlink_heatmap(&sim.core));
        sim.drain(100_000);
    }
}
