//! `flov` — the single command-line front end for every experiment in
//! this reproduction. One subcommand per paper table/figure plus the
//! beyond-the-paper studies, a one-off simulator (`sim`), a batch runner
//! over serialized specs (`sweep`), and result-cache maintenance.
//!
//! Every subcommand runs through the caching sweep [`Engine`]: results
//! persist under `results/cache/` keyed by the content of each spec, so
//! re-generating a figure costs one cache read per run instead of one
//! simulation.
//!
//! Usage: `cargo run --release -p flov-bench --bin flov -- <subcommand>`
//!
//! Global flags (valid after any subcommand):
//!   --quick        reduced-scale sweep (benches/smoke)
//!   --cache-dir D  cache location (default $FLOV_CACHE_DIR or results/cache)
//!   --no-cache     always simulate; touch no files
//!   --quiet        suppress stderr progress + engine summary

use flov_bench::engine::Engine;
use flov_bench::figures::{
    fig_breakdown, fig_parsec, fig_static, fig_synthetic, fig_timeline, overhead, parsec_default,
    table1, SynthScale,
};
use flov_bench::{ablations, studies, tracefmt, ResultCache, RunResult, RunSpec, WorkloadSpec};
use flov_core::mechanism;
use flov_noc::network::Simulation;
use flov_noc::{render, TopologySpec};
use flov_workloads::{GatingSchedule, Pattern, PatternSpace, SyntheticWorkload};

const USAGE: &str = "\
flov — FLOV reproduction experiment runner

usage: flov <subcommand> [options]

paper figures and tables:
  fig6        Uniform Random latency/power sweep       (was: fig6)
  fig7        Tornado latency/power sweep              (was: fig7)
  fig8ab      latency breakdown, UR + Tornado          (was: fig8ab)
  fig8cd      PARSEC full-system + headline summary    (was: fig8cd)
  fig9        static power vs gated fraction           (was: fig9)
  fig10       reconfiguration timeline                 (was: fig10)
  table1      testbed parameters                       (was: table1)
  overhead    router area/overhead analysis            (was: overhead)

studies:
  ablations   design-choice sensitivity sweeps         (was: ablations)
  nord        NoRD vs FLOV critique, 2 experiments     (was: nord)
  related     six-mechanism landscape                  (was: related)
  scaling     4x4..16x16 mesh scaling                  (was: scaling)

tools:
  parsec      selectable PARSEC subset
              [--bench NAME]... [--mech NAME]... [--seed S]
  sim         one-off simulation with a full report    (was: flov-sim)
              [--mech M] [--pattern P] [--rate R] [--gated F] [--cycles N]
              [--warmup N] [--seed S] [--k K] [--parsec BENCH] [--json] [--map]
              [--audit] [--topology mesh|torus|cmesh:C|rect:KXxKY]
              [--mmpp R1,R2,..] (MMPP bursty traffic: random-dwell phases)
              [--diurnal R1,R2,..] (fixed-dwell load phases)
              [--dwell N] (mean [mmpp] / exact [diurnal] phase length)
              [--threads N] (sharded parallel kernel, planner-chosen grid)
              [--tiles RxC] (sharded parallel kernel, explicit 2-D geometry)
  trace       record/replay compact binary flit traces (.flovtrace:
              varint delta records + CRC-32C, source spec embedded)
              record: capture a run's injection stream + core schedule
                [any sim workload flag] [--out FILE.flovtrace] [--json]
              replay: re-run a recorded stream, bit-identical on every
              kernel (pair with --no-cache when comparing kernels)
                --in FILE.flovtrace [--json] [--closed-loop]
  sweep       run a batch of serialized RunSpecs
              --spec FILE.json (one spec or an array); JSON results on stdout
  bench-kernel  time the cycle kernels (active-set vs reference) on 8x8
              idle/low-load/mid-load/saturated traffic, plus the sharded
              parallel kernel (2/4 tiles, planner-chosen 2-D grids) on
              16x16/32x32/64x64; verifies all kernels stay bit-identical;
              per-phase wall-time breakdown per row; report to stdout and
              --out (BENCH_kernel.json)
              [--quick] [--min-cps N] [--min-skip FRAC]
              [--min-parallel-speedup X] [--out PATH]
  bench-engine  time the batch engine end to end: cold + warm sweeps over
              the sharded binary cache (work-stealing scheduler, indexed
              probes) against the legacy flat-JSON layout; asserts all
              lanes byte-identical; report to stdout and --out
              (BENCH_engine.json)
              [--quick] [--runs N] [--min-warm-probe-rate R] [--out PATH]
  fuzz        differential fuzzer: random specs through all three kernels
              (active-set, reference, sharded parallel) with
              the invariant auditor on; failures shrink to repro JSONs in
              results/fuzz/ and exit nonzero
              [--runs N] [--max-cycles N] [--seed S] [--out DIR]
              [--replay FILE.json]
  cache       result-cache maintenance
              stats | clear | verify | migrate
              | gc [--max-bytes N[K|M|G]] [--max-age N[s|m|h|d]]
              (verify re-derives every entry's content hash; migrate
              rewrites JSON entries as sharded binary, hash-preserving;
              gc evicts oldest-first by last use)

global flags: [--quick] [--cache-dir DIR] [--no-cache] [--quiet]
              (FLOV_QUIET=1 also silences progress; non-TTY stderr gets
              plain per-5% progress lines instead of redraws)
";

fn usage() -> ! {
    eprint!("{USAGE}");
    std::process::exit(2);
}

/// The value following `flag`, if present.
fn flag_value(argv: &[String], flag: &str) -> Option<String> {
    argv.iter().position(|a| a == flag).map(|i| {
        argv.get(i + 1).cloned().unwrap_or_else(|| {
            eprintln!("error: {flag} needs a value");
            std::process::exit(2);
        })
    })
}

/// Every value of a repeatable `flag`.
fn flag_values(argv: &[String], flag: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < argv.len() {
        if argv[i] == flag {
            match argv.get(i + 1) {
                Some(v) => out.push(v.clone()),
                None => {
                    eprintln!("error: {flag} needs a value");
                    std::process::exit(2);
                }
            }
            i += 1;
        }
        i += 1;
    }
    out
}

fn parse_pattern(name: &str) -> Pattern {
    match name {
        "uniform" => Pattern::UniformRandom,
        "tornado" => Pattern::Tornado,
        "transpose" => Pattern::Transpose,
        "bitcomp" => Pattern::BitComplement,
        "neighbor" => Pattern::Neighbor,
        _ => {
            eprintln!(
                "error: unknown pattern {name:?} (uniform|tornado|transpose|bitcomp|neighbor)"
            );
            std::process::exit(2);
        }
    }
}

fn parse_or_die<T: std::str::FromStr>(what: &str, v: &str) -> T {
    v.parse().unwrap_or_else(|_| {
        eprintln!("error: invalid {what}: {v:?}");
        std::process::exit(2);
    })
}

/// Parse `--topology` (`mesh` | `torus` | `cmesh:C` | `rect:KXxKY`); the
/// square variants take their radix from `--k`.
fn parse_topology(v: &str, k: u16) -> TopologySpec {
    if v == "mesh" {
        TopologySpec::Mesh { k }
    } else if v == "torus" {
        TopologySpec::Torus { k }
    } else if let Some(c) = v.strip_prefix("cmesh:") {
        TopologySpec::CMesh { k, c: parse_or_die("--topology cmesh concentration", c) }
    } else if let Some(dims) = v.strip_prefix("rect:") {
        let Some((kx, ky)) = dims.split_once('x') else {
            eprintln!("error: rect topology needs KXxKY, got {dims:?}");
            std::process::exit(2);
        };
        TopologySpec::RectMesh {
            kx: parse_or_die("--topology rect width", kx),
            ky: parse_or_die("--topology rect height", ky),
        }
    } else {
        eprintln!("error: unknown topology {v:?} (mesh|torus|cmesh:C|rect:KXxKY)");
        std::process::exit(2);
    }
}

/// Parse a byte budget with an optional `K`/`M`/`G` suffix (powers of
/// 1024), e.g. `64M`.
fn parse_bytes(v: &str) -> u64 {
    let (digits, mult) = match v.as_bytes().last() {
        Some(b'K' | b'k') => (&v[..v.len() - 1], 1u64 << 10),
        Some(b'M' | b'm') => (&v[..v.len() - 1], 1u64 << 20),
        Some(b'G' | b'g') => (&v[..v.len() - 1], 1u64 << 30),
        _ => (v, 1),
    };
    let n: u64 = parse_or_die("--max-bytes", digits);
    n.checked_mul(mult).unwrap_or_else(|| {
        eprintln!("error: --max-bytes overflows: {v:?}");
        std::process::exit(2);
    })
}

/// Parse an age with an optional `s`/`m`/`h`/`d` suffix (default
/// seconds), e.g. `30d`.
fn parse_age(v: &str) -> std::time::Duration {
    let (digits, mult) = match v.as_bytes().last() {
        Some(b's') => (&v[..v.len() - 1], 1u64),
        Some(b'm') => (&v[..v.len() - 1], 60),
        Some(b'h') => (&v[..v.len() - 1], 3_600),
        Some(b'd') => (&v[..v.len() - 1], 86_400),
        _ => (v, 1),
    };
    let n: u64 = parse_or_die("--max-age", digits);
    std::time::Duration::from_secs(n.checked_mul(mult).unwrap_or_else(|| {
        eprintln!("error: --max-age overflows: {v:?}");
        std::process::exit(2);
    }))
}

/// Surface a config problem as a diagnostic instead of a panic. This is
/// full spec-level validation (`RunSpec::validate`): NoC shape problems
/// *and* workload problems — an over-saturated injection rate, an empty
/// MMPP rate list — all exit 2 with the structured `ConfigError` text.
fn validate_or_die(spec: &RunSpec) {
    if let Err(e) = spec.validate() {
        eprintln!("error: invalid configuration for {}: {e}", spec.mechanism);
        std::process::exit(2);
    }
}

/// Every name `RunSpec::resolve` + `mechanism::by_name` can build (the
/// resolve step supplies NoRD's ring and PowerPunch's VC rearrangement).
const MECH_NAMES: [&str; 7] =
    ["Baseline", "RP", "RP-aggressive", "rFLOV", "gFLOV", "NoRD", "PowerPunch"];

fn check_mech(name: &str) {
    if !MECH_NAMES.contains(&name) {
        eprintln!("error: unknown mechanism {name:?} (one of: {})", MECH_NAMES.join("|"));
        std::process::exit(2);
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = argv.first().cloned() else { usage() };
    let rest = &argv[1..];

    let quick = argv.iter().any(|a| a == "--quick");
    let quiet = argv.iter().any(|a| a == "--quiet");
    let no_cache = argv.iter().any(|a| a == "--no-cache");
    let cache_dir = flag_value(&argv, "--cache-dir")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(ResultCache::default_dir);

    let mut engine = if no_cache {
        Engine::without_cache().verbose()
    } else {
        Engine::with_cache_dir(&cache_dir)
    };
    if quiet {
        engine = engine.quiet();
    }

    match cmd.as_str() {
        "fig6" | "fig7" => {
            let pattern = if cmd == "fig6" { Pattern::UniformRandom } else { Pattern::Tornado };
            let scale = SynthScale::from_args();
            for (i, t) in fig_synthetic(&engine, pattern, &scale).iter().enumerate() {
                t.emit(&format!("{cmd}_{i}"));
            }
        }
        "fig8ab" => {
            let scale = SynthScale::from_args();
            fig_breakdown(&engine, Pattern::UniformRandom, &scale).emit("fig8a");
            fig_breakdown(&engine, Pattern::Tornado, &scale).emit("fig8b");
        }
        "fig8cd" => {
            let (benches, mechs) = parsec_default();
            let benches: Vec<&str> = if quick { benches[..2].to_vec() } else { benches };
            let (table, s) = fig_parsec(&engine, &benches, 0xF10F, &mechs);
            table.emit("fig8cd");
            println!("== headline summary (geometric means over {} benchmarks) ==", benches.len());
            println!(
                "paper: FLOV vs RP       total energy  -18%   | measured: {:+.1}%",
                s.flov_vs_rp_total * 100.0
            );
            println!(
                "paper: FLOV vs RP       static energy -22%   | measured: {:+.1}%",
                s.flov_vs_rp_static * 100.0
            );
            println!(
                "paper: FLOV vs Baseline static energy -43%   | measured: {:+.1}%",
                s.flov_vs_base_static * 100.0
            );
            println!(
                "paper: FLOV vs Baseline runtime       +1%    | measured: {:+.1}%",
                s.flov_vs_base_runtime * 100.0
            );
        }
        "fig9" => {
            fig_static(&engine, &SynthScale::from_args()).emit("fig9");
        }
        "fig10" => {
            fig_timeline(&engine, &SynthScale::from_args()).emit("fig10");
        }
        "table1" => {
            table1().emit("table1");
        }
        "overhead" => {
            overhead().emit("overhead");
        }
        "ablations" => {
            let cycles = if quick { 12_000 } else { 100_000 };
            for (i, t) in ablations::all(&engine, cycles).iter().enumerate() {
                t.emit(&format!("ablation_{i}"));
            }
        }
        "nord" => {
            let tables = studies::nord_study(&engine, quick);
            tables[0].emit("nord_sweep");
            tables[1].emit("nord_scaling");
            println!("Expected: NoRD's static power is the lowest (gates everything, no AON");
            println!("column) but its latency diverges with k — the paper's scalability point.");
        }
        "related" => {
            studies::related_landscape(&engine, quick).emit("related");
            println!("Reading guide: NoRD = lowest static, worst latency (ring trips).");
            println!(
                "PowerPunch = good latency, but wake/sleep churn (gating events, 17.7 pJ each)"
            );
            println!("and punched paths stay powered. gFLOV = near-NoRD static at near-Baseline");
            println!("latency with zero per-packet wakeups — the paper's positioning.");
        }
        "scaling" => {
            studies::mesh_scaling(&engine, quick).emit("scaling");
            println!("Expected shape: RP's stall node-cycles and latency penalty grow with k;");
            println!("gFLOV's latency stays near Baseline at every size (local handshakes).");
        }
        "parsec" => {
            let (default_benches, default_mechs) = parsec_default();
            let bench_args = flag_values(rest, "--bench");
            let mech_args = flag_values(rest, "--mech");
            let benches: Vec<&str> = if bench_args.is_empty() {
                if quick {
                    default_benches[..2].to_vec()
                } else {
                    default_benches
                }
            } else {
                bench_args.iter().map(|s| s.as_str()).collect()
            };
            let mut mechs: Vec<&str> = if mech_args.is_empty() {
                default_mechs
            } else {
                mech_args.iter().map(|s| s.as_str()).collect()
            };
            mechs.iter().for_each(|m| check_mech(m));
            // The normalization column needs Baseline even when the user
            // only asked for one mechanism.
            if !mechs.contains(&"Baseline") {
                mechs.insert(0, "Baseline");
            }
            let seed =
                flag_value(rest, "--seed").map(|v| parse_or_die("--seed", &v)).unwrap_or(0xF10F);
            let (table, _) = fig_parsec(&engine, &benches, seed, &mechs);
            table.emit("parsec");
        }
        "sim" => sim(&engine, rest),
        "trace" => match rest.first().map(|s| s.as_str()) {
            Some("record") => trace_record(&rest[1..]),
            Some("replay") => trace_replay(&engine, &rest[1..]),
            _ => {
                eprintln!("error: trace needs a record or replay subcommand\n");
                usage();
            }
        },
        "sweep" => {
            let path = flag_value(rest, "--spec").unwrap_or_else(|| {
                eprintln!("error: sweep needs --spec FILE.json");
                std::process::exit(2);
            });
            let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
                eprintln!("error: cannot read {path}: {e}");
                std::process::exit(1);
            });
            // Accept a single spec object or an array of specs.
            let specs: Vec<RunSpec> = match serde_json::from_str::<Vec<RunSpec>>(&text) {
                Ok(s) => s,
                Err(_) => match serde_json::from_str::<RunSpec>(&text) {
                    Ok(s) => vec![s],
                    Err(e) => {
                        eprintln!("error: {path} is not a RunSpec or a list of them: {e}");
                        std::process::exit(1);
                    }
                },
            };
            specs.iter().for_each(validate_or_die);
            let results: Vec<RunResult> = engine.run_batch(&specs);
            println!("{}", serde_json::to_string_pretty(&results).expect("results serialize"));
        }
        "bench-kernel" => {
            let min_cps: Option<f64> =
                flag_value(rest, "--min-cps").map(|v| parse_or_die("--min-cps", &v));
            let min_skip: Option<f64> =
                flag_value(rest, "--min-skip").map(|v| parse_or_die("--min-skip", &v));
            let min_parallel_speedup: Option<f64> = flag_value(rest, "--min-parallel-speedup")
                .map(|v| parse_or_die("--min-parallel-speedup", &v));
            let out = flag_value(rest, "--out").unwrap_or_else(|| "BENCH_kernel.json".into());
            let report =
                flov_bench::kernel_bench::run_bench(quick, min_cps, min_skip, min_parallel_speedup);
            let json = serde_json::to_string_pretty(&report).expect("bench report serialization");
            std::fs::write(&out, format!("{json}\n")).unwrap_or_else(|e| {
                eprintln!("error: cannot write {out}: {e}");
                std::process::exit(1);
            });
            println!("{json}");
            eprintln!("[flov] bench-kernel report written to {out}");
        }
        "fuzz" => {
            if let Some(path) = flag_value(rest, "--replay") {
                match flov_bench::fuzz::replay(std::path::Path::new(&path)) {
                    Ok(None) => println!("repro {path}: no longer reproduces (clean)"),
                    Ok(Some((kind, detail))) => {
                        println!("repro {path}: still fails\n  kind:   {kind}\n  detail: {detail}");
                        std::process::exit(1);
                    }
                    Err(e) => {
                        eprintln!("error: {e}");
                        std::process::exit(2);
                    }
                }
                return;
            }
            let mut opts = flov_bench::fuzz::FuzzOptions::default();
            if let Some(v) = flag_value(rest, "--runs") {
                opts.runs = parse_or_die("--runs", &v);
            }
            if let Some(v) = flag_value(rest, "--max-cycles") {
                opts.max_cycles = parse_or_die("--max-cycles", &v);
            }
            if let Some(v) = flag_value(rest, "--seed") {
                opts.seed = parse_or_die("--seed", &v);
            }
            if let Some(v) = flag_value(rest, "--out") {
                opts.out_dir = std::path::PathBuf::from(v);
            }
            let report = flov_bench::fuzz::fuzz(&opts);
            println!(
                "fuzz: {} cases (seed {:#x}, max {} cycles), {} finding(s)",
                report.cases,
                opts.seed,
                opts.max_cycles,
                report.findings.len()
            );
            for f in &report.findings {
                println!("  case {:>4}  {}", f.case, f.kind);
                println!("    detail: {}", f.detail);
                match &f.path {
                    Some(p) => println!("    repro:  {}", p.display()),
                    None => println!("    repro:  (write failed)"),
                }
            }
            if !report.clean() {
                std::process::exit(1);
            }
        }
        "cache" => {
            let cache = ResultCache::new(&cache_dir);
            match rest.first().map(|s| s.as_str()) {
                Some("stats") => {
                    let s = cache.stats();
                    println!("cache dir    {}", cache.dir().display());
                    println!("entries      {}", s.entries);
                    println!("total size   {} bytes", s.total_bytes);
                    println!("  binary     {} (sharded)", s.binary_entries);
                    println!(
                        "  json       {} sharded, {} legacy flat",
                        s.json_sharded, s.json_flat
                    );
                    println!("shard dirs   {}", s.shard_dirs);
                    println!("quarantined  {} ({} bytes)", s.quarantined, s.quarantined_bytes);
                    if s.atime_bump_failures > 0 {
                        println!(
                            "atime bumps  {} failed — access times are stale \
                             (noatime/read-only mount?); gc orders by mtime",
                            s.atime_bump_failures
                        );
                    } else {
                        println!("atime bumps  ok (gc orders by last use)");
                    }
                }
                Some("clear") => {
                    let n = cache.clear().unwrap_or_else(|e| {
                        eprintln!("error: clearing cache: {e}");
                        std::process::exit(1);
                    });
                    println!("removed {n} entries from {}", cache.dir().display());
                }
                Some("verify") => {
                    let r = cache.verify();
                    println!(
                        "verified {} entries: {} ok, {} quarantined",
                        r.checked, r.ok, r.quarantined
                    );
                    if r.quarantined > 0 {
                        std::process::exit(1);
                    }
                }
                Some("migrate") => {
                    let r = cache.migrate().unwrap_or_else(|e| {
                        eprintln!("error: migrating cache: {e}");
                        std::process::exit(1);
                    });
                    println!(
                        "migrated {} JSON entries to binary, {} already binary, \
                         {} resharded, {} quarantined",
                        r.migrated, r.already_binary, r.resharded, r.quarantined
                    );
                }
                Some("gc") => {
                    let opts = flov_bench::GcOptions {
                        max_bytes: flag_value(rest, "--max-bytes").map(|v| parse_bytes(&v)),
                        max_age: flag_value(rest, "--max-age").map(|v| parse_age(&v)),
                    };
                    if opts.max_bytes.is_none() && opts.max_age.is_none() {
                        eprintln!("error: gc needs --max-bytes and/or --max-age");
                        std::process::exit(2);
                    }
                    let r = cache.gc(&opts).unwrap_or_else(|e| {
                        eprintln!("error: gc: {e}");
                        std::process::exit(1);
                    });
                    println!(
                        "gc: scanned {} entries ({} bytes), removed {} ({} bytes)",
                        r.scanned, r.scanned_bytes, r.removed, r.removed_bytes
                    );
                }
                _ => usage(),
            }
        }
        "bench-engine" => {
            let runs: Option<usize> =
                flag_value(rest, "--runs").map(|v| parse_or_die("--runs", &v));
            let min_warm_probe_rate: Option<f64> = flag_value(rest, "--min-warm-probe-rate")
                .map(|v| parse_or_die("--min-warm-probe-rate", &v));
            let out = flag_value(rest, "--out").unwrap_or_else(|| "BENCH_engine.json".into());
            let report = flov_bench::engine_bench::run_bench(quick, runs, min_warm_probe_rate);
            let json = serde_json::to_string_pretty(&report).expect("bench report serialization");
            std::fs::write(&out, format!("{json}\n")).unwrap_or_else(|e| {
                eprintln!("error: cannot write {out}: {e}");
                std::process::exit(1);
            });
            println!("{json}");
            eprintln!("[flov] bench-engine report written to {out}");
        }
        "help" | "--help" | "-h" => usage(),
        other => {
            eprintln!("error: unknown subcommand {other:?}\n");
            usage();
        }
    }
}

/// Workload/run-shape flags shared by `sim` and `trace record`.
struct SimArgs {
    mech: String,
    pattern: Pattern,
    rate: f64,
    gated: f64,
    cycles: u64,
    warmup: u64,
    seed: u64,
    k: u16,
    topology: Option<String>,
    parsec: Option<String>,
    mmpp: Option<Vec<f64>>,
    diurnal: Option<Vec<f64>>,
    dwell: u64,
    json: bool,
    map: bool,
    audit: bool,
    threads: Option<usize>,
    tiles: Option<String>,
    out: Option<String>,
}

/// Comma-separated per-phase injection rates (values are validated by
/// `RunSpec::validate`, so an over-saturated phase still exits 2).
fn parse_rates(flag: &str, v: &str) -> Vec<f64> {
    v.split(',').map(|r| parse_or_die(flag, r)).collect()
}

fn parse_sim_args(rest: &[String]) -> SimArgs {
    let mut a = SimArgs {
        mech: "gFLOV".to_string(),
        pattern: Pattern::UniformRandom,
        rate: 0.02,
        gated: 0.5,
        cycles: 100_000,
        warmup: 10_000,
        seed: 0xF10F,
        k: 8,
        topology: None,
        parsec: None,
        mmpp: None,
        diurnal: None,
        dwell: 10_000,
        json: false,
        map: false,
        audit: false,
        threads: None,
        tiles: None,
        out: None,
    };
    let mut i = 0;
    while i < rest.len() {
        let val = |i: &mut usize| -> String {
            *i += 1;
            rest.get(*i).cloned().unwrap_or_else(|| {
                eprintln!("error: {} needs a value", rest[*i - 1]);
                std::process::exit(2);
            })
        };
        match rest[i].as_str() {
            "--mech" => a.mech = val(&mut i),
            "--pattern" => a.pattern = parse_pattern(&val(&mut i)),
            "--rate" => a.rate = parse_or_die("--rate", &val(&mut i)),
            "--gated" => a.gated = parse_or_die("--gated", &val(&mut i)),
            "--cycles" => a.cycles = parse_or_die("--cycles", &val(&mut i)),
            "--warmup" => a.warmup = parse_or_die("--warmup", &val(&mut i)),
            "--seed" => a.seed = parse_or_die("--seed", &val(&mut i)),
            "--k" => a.k = parse_or_die("--k", &val(&mut i)),
            "--topology" => a.topology = Some(val(&mut i)),
            "--parsec" => a.parsec = Some(val(&mut i)),
            "--mmpp" => a.mmpp = Some(parse_rates("--mmpp", &val(&mut i))),
            "--diurnal" => a.diurnal = Some(parse_rates("--diurnal", &val(&mut i))),
            "--dwell" => a.dwell = parse_or_die("--dwell", &val(&mut i)),
            "--json" => a.json = true,
            "--map" => a.map = true,
            "--audit" => a.audit = true,
            "--threads" => a.threads = Some(parse_or_die("--threads", &val(&mut i))),
            "--tiles" => a.tiles = Some(val(&mut i)),
            "--out" => a.out = Some(val(&mut i)),
            // Global flags were already consumed in main.
            "--quick" | "--no-cache" | "--quiet" => {}
            "--cache-dir" => {
                val(&mut i);
            }
            _ => usage(),
        }
        i += 1;
    }
    if a.mmpp.is_some() && a.diurnal.is_some() {
        eprintln!("error: --mmpp and --diurnal are mutually exclusive");
        std::process::exit(2);
    }
    a
}

fn build_sim_spec(a: &SimArgs) -> RunSpec {
    check_mech(&a.mech);
    let mut b = RunSpec::builder().mechanism(&a.mech).k(a.k).seed(a.seed).audit(a.audit);
    if let Some(t) = &a.topology {
        b = b.topology(parse_topology(t, a.k));
    }
    b = match &a.parsec {
        Some(bench) => b.parsec(bench),
        None => {
            let mut b = b
                .pattern(a.pattern)
                .gated_fraction(a.gated)
                .warmup(a.warmup)
                .cycles(a.cycles)
                .drain(a.cycles);
            b = if let Some(rates) = &a.mmpp {
                b.mmpp(rates.clone(), a.dwell)
            } else if let Some(rates) = &a.diurnal {
                b.diurnal(rates.clone(), a.dwell)
            } else {
                b.rate(a.rate)
            };
            b
        }
    };
    b.build()
}

/// Apply `--threads`/`--tiles` by selecting the parallel kernel via env.
fn apply_kernel_flags(a: &SimArgs) {
    if let Some(t) = a.threads {
        // Reject t == 0 here: a cache hit would otherwise skip the kernel
        // lookup (kernel mode is not in the cache key) and mask the error.
        if t == 0 {
            eprintln!("error: --threads must be >= 1");
            std::process::exit(2);
        }
        // Route the run through the sharded parallel kernel. Kernel choice
        // never enters the cache key (all kernels are bit-identical), so
        // env selection is safe for cached engines too.
        std::env::set_var("FLOV_KERNEL", "parallel");
        std::env::set_var("FLOV_THREADS", t.to_string());
    }
    if let Some(g) = &a.tiles {
        // Validate eagerly for the same cache-hit reason as --threads.
        if flov_bench::parse_tile_geometry(g).is_none() {
            eprintln!("error: --tiles wants RxC (e.g. 4x2), got {g:?}");
            std::process::exit(2);
        }
        std::env::set_var("FLOV_KERNEL", "parallel");
        std::env::set_var("FLOV_TILES", g);
    }
}

/// `flov trace record` — run a spec (same workload flags as `sim`) with
/// the recording wrapper on, then persist the captured stream as a
/// `.flovtrace` container. The run itself is bit-identical to `sim`.
fn trace_record(rest: &[String]) {
    let a = parse_sim_args(rest);
    let out = a.out.clone().unwrap_or_else(|| "trace.flovtrace".to_string());
    // Embed the *resolved* spec so replay rebuilds the exact run shape
    // (mechanism parameters included) without re-resolving.
    let spec = build_sim_spec(&a).resolved();
    validate_or_die(&spec);
    apply_kernel_flags(&a);
    let (audited, data) = flov_bench::record_trace(&spec, flov_bench::kernel_from_env())
        .unwrap_or_else(|e| {
            eprintln!("error: invalid configuration for {}: {e}", spec.mechanism);
            std::process::exit(2);
        });
    for v in &audited.violations {
        eprintln!("[flov] audit violation ({}): {v}", spec.mechanism);
    }
    let spec_json = serde_json::to_string(&spec).expect("spec serializes");
    let bytes = tracefmt::encode_trace(flov_bench::KERNEL_VERSION, &spec_json, &data);
    let crc = u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().expect("crc trailer"));
    std::fs::write(&out, &bytes).unwrap_or_else(|e| {
        eprintln!("error: cannot write {out}: {e}");
        std::process::exit(1);
    });
    eprintln!(
        "[flov] trace: {} packets, {} core events, {} change pulses -> {out} \
         ({} bytes, crc {crc:08x})",
        data.packets.len(),
        data.core_events.len(),
        data.changed_cycles.len(),
        bytes.len()
    );
    if a.json {
        println!("{}", serde_json::to_string_pretty(&audited.result).expect("result serializes"));
    } else {
        println!("recorded {} run -> {out} (crc {crc:08x})", spec.mechanism);
    }
}

/// `flov trace replay` — rebuild the recorded run with its workload
/// swapped for the trace stream. Results are bit-identical to the source
/// run on every kernel (use `--no-cache` when comparing kernels: kernel
/// mode is not part of the cache key).
fn trace_replay(engine: &Engine, rest: &[String]) {
    let input = flag_value(rest, "--in").unwrap_or_else(|| {
        eprintln!("error: trace replay needs --in FILE.flovtrace");
        std::process::exit(2);
    });
    let json = rest.iter().any(|a| a == "--json");
    let bytes = std::fs::read(&input).unwrap_or_else(|e| {
        eprintln!("error: cannot read {input}: {e}");
        std::process::exit(1);
    });
    let file = tracefmt::decode_trace(&bytes).unwrap_or_else(|e| {
        eprintln!("error: {input}: {}", e.0);
        std::process::exit(1);
    });
    let mut spec: RunSpec = serde_json::from_str(&file.source_spec_json).unwrap_or_else(|e| {
        eprintln!("error: {input}: embedded source spec does not parse: {e}");
        std::process::exit(1);
    });
    // A PARSEC source ran closed-loop (until delivery), so its replay
    // must too; synthetic sources replay open-loop unless overridden.
    let closed_loop = rest.iter().any(|a| a == "--closed-loop")
        || matches!(spec.workload, WorkloadSpec::Parsec { .. });
    spec.workload = WorkloadSpec::Trace { path: input.clone(), crc: file.crc, closed_loop };
    validate_or_die(&spec);
    let r = engine.run_one(&spec);
    if json {
        println!("{}", serde_json::to_string_pretty(&r).expect("result serializes"));
    } else {
        println!(
            "replayed {} ({} packets recorded): {} delivered, avg latency {:.2}, \
             total power {:.1} mW",
            input,
            file.data.packets.len(),
            r.packets,
            r.avg_latency,
            r.power.total_w * 1e3
        );
    }
}

/// `flov sim` — one-off simulation with a human-readable report, JSON
/// output for scripting, and an optional steady-state mesh map.
fn sim(engine: &Engine, rest: &[String]) {
    let a = parse_sim_args(rest);
    let (pattern, rate, gated, seed) = (a.pattern, a.rate, a.gated, a.seed);
    let (json, map, parsec) = (a.json, a.map, a.parsec.clone());
    let mech = a.mech.clone();
    let spec = build_sim_spec(&a);
    validate_or_die(&spec);
    apply_kernel_flags(&a);
    let r = engine.run_one(&spec);
    if json {
        println!("{}", serde_json::to_string_pretty(&r).expect("result serializes"));
    } else {
        println!("mechanism        {}", r.mechanism);
        println!("packets          {}", r.packets);
        println!("avg latency      {:.2} cycles (max {})", r.avg_latency, r.max_latency);
        let (p50, p95, p99) = r.latency_percentiles;
        println!("  percentiles    p50<={p50} p95<={p95} p99<={p99}");
        println!(
            "  breakdown      router {:.2} | link {:.2} | serial {:.2} | contention {:.2} | flov {:.2}",
            r.breakdown[0], r.breakdown[1], r.breakdown[2], r.breakdown[3], r.breakdown[4]
        );
        println!(
            "avg hops         {:.2} routers + {:.2} flov latches",
            r.avg_hops, r.avg_flov_hops
        );
        println!("throughput       {:.4} flits/cycle", r.throughput);
        println!(
            "escape           {} packets ({} diversions)",
            r.escape_packets, r.escape_diversions
        );
        println!("static power     {:.1} mW", r.power.static_w * 1e3);
        println!("dynamic power    {:.1} mW", r.power.dynamic_w * 1e3);
        println!("total power      {:.1} mW", r.power.total_w * 1e3);
        println!(
            "total energy     {:.3} uJ over {} cycles",
            r.power.total_j() * 1e6,
            r.power.cycles
        );
        println!("gating events    {}", r.gating_events);
        println!("stalled inj      {} node-cycles", r.stalled_injection_cycles);
        if parsec.is_some() {
            println!(
                "per-class lat    req {:.1} ({} pkts) | data {:.1} ({}) | ctrl {:.1} ({})",
                r.vnet_latency[0].1,
                r.vnet_latency[0].0,
                r.vnet_latency[1].1,
                r.vnet_latency[1].0,
                r.vnet_latency[2].1,
                r.vnet_latency[2].0
            );
        }
    }
    if map {
        // Re-run briefly to render the steady-state map (the engine run
        // consumed its simulation).
        let cfg = spec.cfg.clone();
        let m = mechanism::by_name(&mech, &cfg).expect("mechanism");
        let w = SyntheticWorkload::with_space(
            PatternSpace { kx: cfg.kx(), ky: cfg.ky(), c: cfg.concentration() },
            pattern,
            rate,
            cfg.synth_packet_len,
            20_000,
            GatingSchedule::static_fraction(cfg.cores(), gated, seed, &[]),
            seed ^ 0xABCD,
        );
        let mut sim = Simulation::new(cfg, m, Box::new(w));
        sim.run(20_000);
        println!(
            "\npower map (A=active, a=active router/gated core, d=draining, w=waking, .=asleep):"
        );
        print!("{}", render::power_map(&sim.core));
        let (max, mean, gini) = render::link_util_summary(&sim.core);
        println!("link utilization: max {max}, mean {mean:.1}, gini {gini:.3}");
        println!("east-link heatmap (0-9 relative):");
        print!("{}", render::eastlink_heatmap(&sim.core));
        sim.drain(100_000);
    }
}
