//! Fig. 8(c)/(d) + headline numbers — full-system PARSEC-proxy evaluation:
//! per-benchmark runtime and energy normalized to Baseline, plus the
//! geometric-mean summary the paper reports (FLOV vs RP total/static
//! energy; FLOV vs Baseline static energy and performance degradation).
//!
//! Usage: `cargo run --release -p flov-bench --bin fig8cd [--quick]`

use flov_bench::figures::{fig_parsec, parsec_default};

fn main() {
    let (benches, mechs) = parsec_default();
    let quick = std::env::args().any(|a| a == "--quick");
    let benches: Vec<&str> = if quick { benches[..2].to_vec() } else { benches };
    let (table, s) = fig_parsec(&benches, 0xF10F, &mechs);
    table.emit("fig8cd");
    println!("== headline summary (geometric means over {} benchmarks) ==", benches.len());
    println!("paper: FLOV vs RP       total energy  -18%   | measured: {:+.1}%", s.flov_vs_rp_total * 100.0);
    println!("paper: FLOV vs RP       static energy -22%   | measured: {:+.1}%", s.flov_vs_rp_static * 100.0);
    println!("paper: FLOV vs Baseline static energy -43%   | measured: {:+.1}%", s.flov_vs_base_static * 100.0);
    println!("paper: FLOV vs Baseline runtime       +1%    | measured: {:+.1}%", s.flov_vs_base_runtime * 100.0);
}
