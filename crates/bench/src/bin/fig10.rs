//! Fig. 10 — reconfiguration overhead: average packet latency over the
//! execution timeline with gating-configuration changes mid-run (Uniform
//! Random, 0.02 flits/cycle/node, 10% gated cores), gFLOV vs Router
//! Parking. RP's Fabric-Manager Phase I stalls all new injections for
//! >700 cycles at each change; gFLOV reconfigures routers independently.
//!
//! Usage: `cargo run --release -p flov-bench --bin fig10 [--quick]`

use flov_bench::figures::{fig_timeline, SynthScale};

fn main() {
    let scale = SynthScale::from_args();
    fig_timeline(&scale).emit("fig10");
}
