//! Fig. 9 — static power vs fraction of power-gated cores, for Baseline,
//! aggressive Router Parking, rFLOV and gFLOV. (FLOV static power is
//! injection-rate and workload independent; RP is compared in its
//! aggressive configuration, as in the paper.)
//!
//! Usage: `cargo run --release -p flov-bench --bin fig9 [--quick]`

use flov_bench::figures::{fig_static, SynthScale};

fn main() {
    let scale = SynthScale::from_args();
    fig_static(&scale).emit("fig9");
}
