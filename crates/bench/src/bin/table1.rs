//! Table I — prints the simulation testbed parameters this reproduction
//! runs with (and verifies they match the paper's configuration).
//!
//! Usage: `cargo run --release -p flov-bench --bin table1`

use flov_bench::figures::table1;

fn main() {
    table1().emit("table1");
}
