//! Content-addressed on-disk result cache.
//!
//! Every completed simulation is persisted as
//! `results/cache/<key>.json`, where `<key>` is a 128-bit hash of the
//! run's *canonical spec JSON* plus the engine's kernel-version salt.
//! Canonical means: declaration-ordered map keys and shortest-roundtrip
//! float formatting (see the workspace `serde_json` shim), so equal specs
//! always hash identically. Bumping [`crate::engine::KERNEL_VERSION`]
//! changes every key, which is how simulator-behavior changes invalidate
//! stale results without touching the cache directory.

use crate::spec::{RunResult, RunSpec};
use serde::{Deserialize, Serialize};
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

/// What one cache file holds: enough to audit a result without re-running
/// it (the spec is stored alongside, not just its hash).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CacheEntry {
    pub kernel_version: u32,
    pub spec: RunSpec,
    pub result: RunResult,
}

/// Summary of what's on disk, for `flov cache stats`.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CacheStats {
    pub entries: usize,
    pub total_bytes: u64,
}

/// A directory of content-addressed [`CacheEntry`] files.
#[derive(Clone, Debug)]
pub struct ResultCache {
    dir: PathBuf,
}

/// 64-bit FNV-1a over `bytes`, from a caller-chosen basis.
fn fnv1a(basis: u64, bytes: &[u8]) -> u64 {
    let mut h = basis;
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(0x100000001b3);
    }
    h
}

impl ResultCache {
    /// A cache rooted at `dir` (created lazily on first write).
    pub fn new(dir: impl Into<PathBuf>) -> ResultCache {
        ResultCache { dir: dir.into() }
    }

    /// The default location: `$FLOV_CACHE_DIR`, or `results/cache`.
    pub fn default_dir() -> PathBuf {
        std::env::var_os("FLOV_CACHE_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("results/cache"))
    }

    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The content address of a run: 128-bit hex over the canonical spec
    /// JSON, salted by the kernel version. Two independent FNV-1a streams
    /// (distinct bases, salt mixed in differently) make accidental
    /// collisions across a realistic sweep negligible.
    pub fn key(canonical_spec_json: &str, kernel_version: u32) -> String {
        let bytes = canonical_spec_json.as_bytes();
        let salt = kernel_version as u64;
        let h1 = fnv1a(0xcbf29ce484222325 ^ salt, bytes);
        let h2 = fnv1a(0x6c62272e07bb0142 ^ salt.rotate_left(32), bytes);
        format!("{h1:016x}{h2:016x}")
    }

    fn path_for(&self, key: &str) -> PathBuf {
        self.dir.join(format!("{key}.json"))
    }

    /// Fetch the result stored under `key`, verifying the salt. Corrupt
    /// or mismatched entries read as misses (and will be overwritten).
    pub fn get(&self, key: &str, kernel_version: u32) -> Option<RunResult> {
        let text = fs::read_to_string(self.path_for(key)).ok()?;
        let entry: CacheEntry = serde_json::from_str(&text).ok()?;
        (entry.kernel_version == kernel_version).then_some(entry.result)
    }

    /// Persist `entry` under `key` atomically (tmp file + rename), so a
    /// crashed or concurrent run never leaves a half-written entry.
    pub fn put(&self, key: &str, entry: &CacheEntry) -> std::io::Result<()> {
        fs::create_dir_all(&self.dir)?;
        let tmp = self.dir.join(format!(".{key}.tmp-{}", std::process::id()));
        {
            let json = serde_json::to_string(entry).expect("cache entry serializes");
            let mut f = fs::File::create(&tmp)?;
            f.write_all(json.as_bytes())?;
            f.sync_all()?;
        }
        fs::rename(&tmp, self.path_for(key))
    }

    /// Count the entries (and bytes) currently on disk.
    pub fn stats(&self) -> CacheStats {
        let mut s = CacheStats::default();
        let Ok(rd) = fs::read_dir(&self.dir) else { return s };
        for e in rd.flatten() {
            let p = e.path();
            if p.extension().is_some_and(|x| x == "json") {
                s.entries += 1;
                s.total_bytes += e.metadata().map(|m| m.len()).unwrap_or(0);
            }
        }
        s
    }

    /// Delete every entry; returns how many were removed.
    pub fn clear(&self) -> std::io::Result<usize> {
        let mut n = 0;
        let Ok(rd) = fs::read_dir(&self.dir) else { return Ok(0) };
        for e in rd.flatten() {
            let p = e.path();
            if p.extension().is_some_and(|x| x == "json") {
                fs::remove_file(&p)?;
                n += 1;
            }
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn canonical(spec: &RunSpec) -> String {
        serde_json::to_string(spec).unwrap()
    }

    #[test]
    fn key_is_stable_and_salt_sensitive() {
        let json = canonical(&RunSpec::builder().seed(1).build());
        let a = ResultCache::key(&json, 1);
        let b = ResultCache::key(&json, 1);
        assert_eq!(a, b);
        assert_eq!(a.len(), 32);
        assert!(a.chars().all(|c| c.is_ascii_hexdigit()));
        assert_ne!(a, ResultCache::key(&json, 2), "salt must change the key");
        let other = canonical(&RunSpec::builder().seed(2).build());
        assert_ne!(a, ResultCache::key(&other, 1), "spec must change the key");
    }

    #[test]
    fn equal_specs_share_a_key() {
        let a = RunSpec::builder().mechanism("rFLOV").rate(0.08).build();
        let b = RunSpec::builder().rate(0.08).mechanism("rFLOV").build();
        assert_eq!(ResultCache::key(&canonical(&a), 1), ResultCache::key(&canonical(&b), 1),);
    }
}
