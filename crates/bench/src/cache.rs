//! Content-addressed on-disk result cache: sharded, indexed, binary.
//!
//! Every completed simulation is persisted under `results/cache/`, keyed
//! by a 128-bit hash of the run's *canonical spec JSON* plus the engine's
//! kernel-version salt. Canonical means: declaration-ordered map keys and
//! shortest-roundtrip float formatting (see the workspace `serde_json`
//! shim), so equal specs always hash identically. Bumping
//! [`crate::engine::KERNEL_VERSION`] changes every key, which is how
//! simulator-behavior changes invalidate stale results without touching
//! the cache directory.
//!
//! Layout: entries fan out into 256 hash-prefix shard subdirectories
//! (`<dir>/<first two hex chars>/<key>.bin`), created lazily and written
//! atomically (temp file + same-directory rename), so a killed sweep
//! never leaves a partial entry behind. The default on-disk format is the
//! compact binary container of [`crate::binfmt`]; JSON entries — sharded
//! or in the legacy flat layout the seed engine wrote — remain fully
//! readable, and `flov cache migrate` upgrades them in place without
//! changing their content hashes.
//!
//! Probing is O(1): the first probe scans the directory tree once into an
//! in-memory index (key → path), after which a warm 10k-run sweep never
//! stats a file that is not there. Corrupt or truncated entries (bad
//! magic, CRC mismatch, unparseable JSON) are treated as misses and moved
//! to `<dir>/quarantine/` for inspection — never a panic. Cache hits bump
//! the entry's access time (best-effort) so `flov cache gc` can evict
//! least-recently-used entries first.

use crate::binfmt;
use crate::spec::{RunResult, RunSpec};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fs;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, SystemTime};

/// Subdirectory corrupt entries are moved into.
pub const QUARANTINE_DIR: &str = "quarantine";

/// What one cache file holds: enough to audit a result without re-running
/// it (the spec is stored alongside, not just its hash).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CacheEntry {
    pub kernel_version: u32,
    pub spec: RunSpec,
    pub result: RunResult,
}

/// On-disk encoding for newly written entries.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CacheFormat {
    /// Compact binary container ([`crate::binfmt`]); the default.
    #[default]
    Binary,
    /// One pretty-printed-free canonical JSON [`CacheEntry`] per file.
    Json,
}

/// Summary of what's on disk, for `flov cache stats`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Readable entries across every layout and format.
    pub entries: usize,
    pub total_bytes: u64,
    /// Binary entries in shard subdirectories.
    pub binary_entries: usize,
    /// JSON entries in shard subdirectories.
    pub json_sharded: usize,
    /// JSON entries in the legacy flat layout (pre-shard engine).
    pub json_flat: usize,
    /// Shard subdirectories present.
    pub shard_dirs: usize,
    /// Files parked in `quarantine/`.
    pub quarantined: usize,
    pub quarantined_bytes: u64,
    /// LRU atime bumps that failed since this cache handle was created
    /// (noatime/read-only mounts). Non-zero means access times are stale
    /// and GC recency falls back to modification times.
    pub atime_bump_failures: u64,
}

/// Knobs for [`ResultCache::gc`]. Unset fields do not evict.
#[derive(Clone, Copy, Debug, Default)]
pub struct GcOptions {
    /// Evict least-recently-used entries until the cache fits.
    pub max_bytes: Option<u64>,
    /// Evict entries not touched within this window.
    pub max_age: Option<Duration>,
}

/// What [`ResultCache::gc`] did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GcReport {
    pub scanned: usize,
    pub scanned_bytes: u64,
    pub removed: usize,
    pub removed_bytes: u64,
}

/// What [`ResultCache::verify`] found.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct VerifyReport {
    pub checked: usize,
    pub ok: usize,
    /// Entries that failed structural or content-hash checks and were
    /// moved to `quarantine/`.
    pub quarantined: usize,
}

/// What [`ResultCache::migrate`] did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MigrateReport {
    /// JSON entries rewritten as sharded binary (hash-preserving).
    pub migrated: usize,
    /// Entries already in the binary sharded layout, left alone.
    pub already_binary: usize,
    /// Misplaced binary entries moved into their shard directory.
    pub resharded: usize,
    /// Unreadable or hash-mismatched entries moved to `quarantine/`.
    pub quarantined: usize,
}

/// A directory of content-addressed cache entries. Cloning shares the
/// in-memory index.
#[derive(Clone, Debug)]
pub struct ResultCache {
    dir: PathBuf,
    write_format: CacheFormat,
    /// Seed-era behavior for A/B benchmarking: flat `<key>.json` files,
    /// probed by direct filesystem reads with no index.
    legacy_flat: bool,
    /// Lazily built key → path map; `None` until the first probe.
    index: Arc<Mutex<Option<HashMap<String, PathBuf>>>>,
    /// How many LRU atime bumps have failed (shared across clones, like
    /// the index). The first failure also latches `atime_unreliable`.
    atime_failures: Arc<AtomicU64>,
    /// Once an atime bump fails (noatime/read-only mount), access times
    /// can no longer be trusted to reflect use: recency ordering falls
    /// back to modification times for the rest of this handle's life.
    atime_unreliable: Arc<AtomicBool>,
    /// Test-only failure injection: filesystem-owner semantics let root
    /// set times even on read-only files, so the failure path cannot be
    /// provoked from the outside in a root-run test suite.
    #[cfg(test)]
    fail_atime_bumps: Arc<AtomicBool>,
}

/// 64-bit FNV-1a over `bytes`, from a caller-chosen basis.
fn fnv1a(basis: u64, bytes: &[u8]) -> u64 {
    let mut h = basis;
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(0x100000001b3);
    }
    h
}

/// `Some(key)` when `name` is `<32 hex>.bin` or `<32 hex>.json`.
fn entry_key(name: &str) -> Option<&str> {
    let key = name.strip_suffix(".bin").or_else(|| name.strip_suffix(".json"))?;
    (key.len() == 32 && key.bytes().all(|b| b.is_ascii_hexdigit() && !b.is_ascii_uppercase()))
        .then_some(key)
}

impl ResultCache {
    /// A sharded cache rooted at `dir` (created lazily on first write).
    /// New entries are written in the binary format unless
    /// `FLOV_CACHE_FORMAT=json` asks for JSON.
    pub fn new(dir: impl Into<PathBuf>) -> ResultCache {
        let write_format = match std::env::var("FLOV_CACHE_FORMAT").ok().as_deref() {
            Some("json") => CacheFormat::Json,
            None | Some("") | Some("binary") | Some("bin") => CacheFormat::Binary,
            Some(other) => panic!("unknown FLOV_CACHE_FORMAT value {other:?} (use binary|json)"),
        };
        Self::make(dir.into(), write_format, false)
    }

    fn make(dir: PathBuf, write_format: CacheFormat, legacy_flat: bool) -> ResultCache {
        ResultCache {
            dir,
            write_format,
            legacy_flat,
            index: Arc::new(Mutex::new(None)),
            atime_failures: Arc::new(AtomicU64::new(0)),
            atime_unreliable: Arc::new(AtomicBool::new(false)),
            #[cfg(test)]
            fail_atime_bumps: Arc::new(AtomicBool::new(false)),
        }
    }

    /// Override the write format (probing always reads every format).
    pub fn with_format(mut self, f: CacheFormat) -> ResultCache {
        self.write_format = f;
        self
    }

    /// The seed engine's layout, kept as the A/B baseline for
    /// `flov bench-engine`: flat pretty-free JSON files probed by direct
    /// reads, no shards, no index, no quarantine, no atime bumps.
    pub fn legacy_flat_json(dir: impl Into<PathBuf>) -> ResultCache {
        Self::make(dir.into(), CacheFormat::Json, true)
    }

    /// The default location: `$FLOV_CACHE_DIR`, or `results/cache`.
    pub fn default_dir() -> PathBuf {
        std::env::var_os("FLOV_CACHE_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("results/cache"))
    }

    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The content address of a run: 128-bit hex over the canonical spec
    /// JSON, salted by the kernel version. Two independent FNV-1a streams
    /// (distinct bases, salt mixed in differently) make accidental
    /// collisions across a realistic sweep negligible.
    pub fn key(canonical_spec_json: &str, kernel_version: u32) -> String {
        let bytes = canonical_spec_json.as_bytes();
        let salt = kernel_version as u64;
        let h1 = fnv1a(0xcbf29ce484222325 ^ salt, bytes);
        let h2 = fnv1a(0x6c62272e07bb0142 ^ salt.rotate_left(32), bytes);
        format!("{h1:016x}{h2:016x}")
    }

    /// Shard subdirectory for `key`: its first two hex characters.
    fn shard_dir(&self, key: &str) -> PathBuf {
        self.dir.join(&key[..2])
    }

    fn write_path(&self, key: &str) -> PathBuf {
        if self.legacy_flat {
            return self.dir.join(format!("{key}.json"));
        }
        let ext = match self.write_format {
            CacheFormat::Binary => "bin",
            CacheFormat::Json => "json",
        };
        self.shard_dir(key).join(format!("{key}.{ext}"))
    }

    // ------------------------------------------------------------- index

    /// One directory scan building the key → path map. Binary entries win
    /// when a key exists in both formats; tmp files and `quarantine/` are
    /// skipped.
    fn scan(&self) -> HashMap<String, PathBuf> {
        let mut map: HashMap<String, PathBuf> = HashMap::new();
        let insert = |map: &mut HashMap<String, PathBuf>, p: PathBuf| {
            let Some(name) = p.file_name().and_then(|n| n.to_str()) else { return };
            let Some(key) = entry_key(name) else { return };
            match map.get(key) {
                Some(existing) if existing.extension().is_some_and(|e| e == "bin") => {}
                _ => {
                    map.insert(key.to_string(), p);
                }
            }
        };
        let Ok(rd) = fs::read_dir(&self.dir) else { return map };
        for e in rd.flatten() {
            let p = e.path();
            let name = e.file_name();
            let name = name.to_string_lossy();
            if p.is_dir() {
                if name.len() == 2 && name.bytes().all(|b| b.is_ascii_hexdigit()) {
                    let Ok(shard) = fs::read_dir(&p) else { continue };
                    for f in shard.flatten() {
                        insert(&mut map, f.path());
                    }
                }
            } else {
                insert(&mut map, p);
            }
        }
        map
    }

    /// Build the index now (normally it builds on the first probe) and
    /// report `(entries, seconds)` — `flov cache stats` and
    /// `bench-engine` surface the scan cost.
    pub fn prime_index(&self) -> (usize, f64) {
        let t0 = std::time::Instant::now();
        let mut guard = self.index.lock().expect("cache index lock");
        if guard.is_none() {
            *guard = Some(self.scan());
        }
        (guard.as_ref().map(|m| m.len()).unwrap_or(0), t0.elapsed().as_secs_f64())
    }

    /// Indexed keys, sorted (test/diagnostic surface).
    pub fn known_keys(&self) -> Vec<String> {
        self.prime_index();
        let guard = self.index.lock().expect("cache index lock");
        let mut keys: Vec<String> =
            guard.as_ref().map(|m| m.keys().cloned().collect()).unwrap_or_default();
        keys.sort();
        keys
    }

    fn index_lookup(&self, key: &str) -> Option<PathBuf> {
        let mut guard = self.index.lock().expect("cache index lock");
        if guard.is_none() {
            *guard = Some(self.scan());
        }
        guard.as_ref().and_then(|m| m.get(key).cloned())
    }

    fn index_insert(&self, key: &str, path: PathBuf) {
        let mut guard = self.index.lock().expect("cache index lock");
        if let Some(m) = guard.as_mut() {
            m.insert(key.to_string(), path);
        }
    }

    fn index_forget(&self, key: &str) {
        let mut guard = self.index.lock().expect("cache index lock");
        if let Some(m) = guard.as_mut() {
            m.remove(key);
        }
    }

    /// Drop the in-memory index (after gc/migrate/clear rearrange disk);
    /// the next probe rescans.
    fn index_reset(&self) {
        *self.index.lock().expect("cache index lock") = None;
    }

    // ------------------------------------------------------------ probing

    /// Fetch the result stored under `key`, verifying the salt. Corrupt
    /// or truncated entries read as misses and are quarantined; a hit
    /// bumps the entry's access time for LRU eviction.
    pub fn get(&self, key: &str, kernel_version: u32) -> Option<RunResult> {
        if self.legacy_flat {
            let text = fs::read_to_string(self.dir.join(format!("{key}.json"))).ok()?;
            let entry: CacheEntry = serde_json::from_str(&text).ok()?;
            return (entry.kernel_version == kernel_version).then_some(entry.result);
        }
        let path = self.index_lookup(key)?;
        // One open serves both the read and, on a hit, the LRU atime bump
        // (the probe path runs thousands of times per warm sweep, so the
        // second path lookup a reopen would cost is worth avoiding).
        let Ok(mut file) = fs::File::open(&path) else {
            // Deleted since the scan (concurrent gc/clear): a plain miss.
            self.index_forget(key);
            return None;
        };
        let mut bytes =
            Vec::with_capacity(file.metadata().map(|m| m.len() as usize + 1).unwrap_or(0));
        if file.read_to_end(&mut bytes).is_err() {
            self.index_forget(key);
            return None;
        }
        let is_binary = path.extension().is_some_and(|e| e == "bin");
        let outcome = if is_binary {
            binfmt::decode_result(&bytes, key, kernel_version)
        } else {
            match serde_json::from_slice::<CacheEntry>(&bytes) {
                Ok(entry) => Ok((entry.kernel_version == kernel_version).then_some(entry.result)),
                Err(e) => Err(binfmt::BinError(format!("JSON entry does not parse: {e}"))),
            }
        };
        match outcome {
            Ok(Some(result)) => {
                self.bump_atime(&file);
                Some(result)
            }
            Ok(None) => None,
            Err(e) => {
                drop(file);
                self.quarantine(&path, &e.0);
                None
            }
        }
    }

    /// Bump `file`'s access time so `gc` can evict least-recently-*used*
    /// first. LRU accuracy only — a failure (noatime or read-only mount)
    /// never fails the probe — but failures are *counted*, surfaced in
    /// [`ResultCache::stats`], and latch the mtime-ordering fallback for
    /// [`ResultCache::gc`] recency (stale access times would otherwise
    /// make "LRU" eviction arbitrary).
    fn bump_atime(&self, file: &fs::File) {
        #[cfg(test)]
        let outcome = if self.fail_atime_bumps.load(Ordering::Relaxed) {
            Err(std::io::Error::other("injected atime failure"))
        } else {
            file.set_times(fs::FileTimes::new().set_accessed(SystemTime::now()))
        };
        #[cfg(not(test))]
        let outcome = file.set_times(fs::FileTimes::new().set_accessed(SystemTime::now()));
        if outcome.is_err() {
            self.atime_failures.fetch_add(1, Ordering::Relaxed);
            self.atime_unreliable.store(true, Ordering::Relaxed);
        }
    }

    /// LRU atime bumps that failed through this handle (and its clones).
    pub fn atime_bump_failures(&self) -> u64 {
        self.atime_failures.load(Ordering::Relaxed)
    }

    /// Whether GC recency has fallen back to modification-time ordering
    /// (latched by the first failed atime bump).
    pub fn atime_unreliable(&self) -> bool {
        self.atime_unreliable.load(Ordering::Relaxed)
    }

    /// Persist `entry` under `key` atomically: the shard directory is
    /// created lazily, the bytes land in a same-directory temp file, and
    /// a rename publishes the entry — a crashed or concurrent run never
    /// leaves a half-written entry under a probed name.
    pub fn put(&self, key: &str, entry: &CacheEntry) -> std::io::Result<()> {
        let path = self.write_path(key);
        let parent = path.parent().expect("entry path has a parent");
        fs::create_dir_all(parent)?;
        let bytes = match (self.legacy_flat, self.write_format) {
            (false, CacheFormat::Binary) => {
                let spec_json = serde_json::to_string(&entry.spec).expect("spec serializes");
                binfmt::encode_entry(key, entry.kernel_version, &spec_json, &entry.result)
            }
            _ => serde_json::to_string(entry).expect("cache entry serializes").into_bytes(),
        };
        let tmp = parent.join(format!(".{key}.tmp-{}", std::process::id()));
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(&bytes)?;
            f.sync_all()?;
        }
        fs::rename(&tmp, &path)?;
        if !self.legacy_flat {
            self.index_insert(key, path);
        }
        Ok(())
    }

    /// Move a corrupt entry to `quarantine/` (fall back to deleting it),
    /// so it stops being probed but stays available for inspection.
    fn quarantine(&self, path: &Path, reason: &str) {
        let qdir = self.dir.join(QUARANTINE_DIR);
        let _ = fs::create_dir_all(&qdir);
        let moved = match path.file_name() {
            Some(name) => fs::rename(path, qdir.join(name)).is_ok(),
            None => false,
        };
        if !moved {
            let _ = fs::remove_file(path);
        }
        eprintln!("[flov] cache: quarantined {} ({reason})", path.display());
        if let Some(key) = path.file_name().and_then(|n| n.to_str()).and_then(entry_key) {
            self.index_forget(key);
        }
    }

    // -------------------------------------------------------- maintenance

    /// Every entry on disk as `(key, path, bytes, last use)`.
    fn inventory(&self) -> Vec<(String, PathBuf, u64, SystemTime)> {
        self.index_reset();
        // Once a bump has failed, access times no longer track use: an
        // entry replayed a thousand times can look untouched. Ordering by
        // modification time alone is then the honest recency signal.
        let trust_atime = !self.atime_unreliable();
        self.scan()
            .into_iter()
            .map(|(key, path)| {
                let meta = fs::metadata(&path).ok();
                let len = meta.as_ref().map(|m| m.len()).unwrap_or(0);
                let recency = meta
                    .map(|m| {
                        let modi = m.modified().unwrap_or(SystemTime::UNIX_EPOCH);
                        if trust_atime {
                            m.accessed().unwrap_or(SystemTime::UNIX_EPOCH).max(modi)
                        } else {
                            modi
                        }
                    })
                    .unwrap_or(SystemTime::UNIX_EPOCH);
                (key, path, len, recency)
            })
            .collect()
    }

    /// Count the entries (and bytes) currently on disk.
    pub fn stats(&self) -> CacheStats {
        let mut s =
            CacheStats { atime_bump_failures: self.atime_bump_failures(), ..Default::default() };
        let Ok(rd) = fs::read_dir(&self.dir) else { return s };
        let tally = |s: &mut CacheStats, path: &Path, flat: bool| {
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else { return };
            if entry_key(name).is_none() {
                return;
            }
            let len = fs::metadata(path).map(|m| m.len()).unwrap_or(0);
            s.entries += 1;
            s.total_bytes += len;
            if name.ends_with(".bin") {
                s.binary_entries += 1;
            } else if flat {
                s.json_flat += 1;
            } else {
                s.json_sharded += 1;
            }
        };
        for e in rd.flatten() {
            let p = e.path();
            let name = e.file_name();
            let name = name.to_string_lossy();
            if p.is_dir() {
                if name == QUARANTINE_DIR {
                    let Ok(q) = fs::read_dir(&p) else { continue };
                    for f in q.flatten() {
                        s.quarantined += 1;
                        s.quarantined_bytes += f.metadata().map(|m| m.len()).unwrap_or(0);
                    }
                } else if name.len() == 2 && name.bytes().all(|b| b.is_ascii_hexdigit()) {
                    s.shard_dirs += 1;
                    let Ok(shard) = fs::read_dir(&p) else { continue };
                    for f in shard.flatten() {
                        tally(&mut s, &f.path(), false);
                    }
                }
            } else {
                tally(&mut s, &p, true);
            }
        }
        s
    }

    /// Delete every entry (and quarantined file); returns how many
    /// entries were removed.
    pub fn clear(&self) -> std::io::Result<usize> {
        let mut n = 0;
        for (_, path, _, _) in self.inventory() {
            fs::remove_file(&path)?;
            n += 1;
        }
        let qdir = self.dir.join(QUARANTINE_DIR);
        if let Ok(q) = fs::read_dir(&qdir) {
            for f in q.flatten() {
                let _ = fs::remove_file(f.path());
            }
            let _ = fs::remove_dir(&qdir);
        }
        if let Ok(rd) = fs::read_dir(&self.dir) {
            for e in rd.flatten() {
                if e.path().is_dir() {
                    let _ = fs::remove_dir(e.path()); // only if now empty
                }
            }
        }
        self.index_reset();
        Ok(n)
    }

    /// Evict entries per `opts`: first everything older than `max_age`,
    /// then — least-recently-used first — until the survivors fit in
    /// `max_bytes`. Cache hits bump access times, so recently replayed
    /// entries survive.
    pub fn gc(&self, opts: &GcOptions) -> std::io::Result<GcReport> {
        let mut entries = self.inventory();
        let mut report = GcReport {
            scanned: entries.len(),
            scanned_bytes: entries.iter().map(|(_, _, len, _)| len).sum(),
            ..GcReport::default()
        };
        let evict = |path: &Path, len: u64, report: &mut GcReport| -> std::io::Result<()> {
            fs::remove_file(path)?;
            report.removed += 1;
            report.removed_bytes += len;
            Ok(())
        };
        if let Some(age) = opts.max_age {
            let cutoff = SystemTime::now().checked_sub(age).unwrap_or(SystemTime::UNIX_EPOCH);
            let mut kept = Vec::with_capacity(entries.len());
            for (key, path, len, recency) in entries {
                if recency < cutoff {
                    evict(&path, len, &mut report)?;
                } else {
                    kept.push((key, path, len, recency));
                }
            }
            entries = kept;
        }
        if let Some(budget) = opts.max_bytes {
            // Most-recently-used first; evict from the tail once over budget.
            entries.sort_by(|a, b| b.3.cmp(&a.3).then_with(|| a.0.cmp(&b.0)));
            let mut used = 0u64;
            for (_, path, len, _) in entries {
                used += len;
                if used > budget {
                    evict(&path, len, &mut report)?;
                }
            }
        }
        self.index_reset();
        Ok(report)
    }

    /// Re-read every entry, re-deriving its content hash from the stored
    /// spec: structural corruption (bad magic/CRC/JSON) and hash
    /// mismatches (entry filed under a key its spec does not hash to)
    /// both quarantine the file.
    pub fn verify(&self) -> VerifyReport {
        let mut report = VerifyReport::default();
        for (key, path, _, _) in self.inventory() {
            report.checked += 1;
            match self.verify_one(&key, &path) {
                Ok(()) => report.ok += 1,
                Err(reason) => {
                    self.quarantine(&path, &reason);
                    report.quarantined += 1;
                }
            }
        }
        self.index_reset();
        report
    }

    fn verify_one(&self, key: &str, path: &Path) -> Result<(), String> {
        let bytes = fs::read(path).map_err(|e| format!("unreadable: {e}"))?;
        let (kernel_version, spec_json, stored_key) =
            if path.extension().is_some_and(|e| e == "bin") {
                let entry = binfmt::decode_entry(&bytes).map_err(|e| e.0)?;
                (entry.kernel_version, entry.spec_json, Some(entry.key))
            } else {
                let entry: CacheEntry = serde_json::from_slice(&bytes)
                    .map_err(|e| format!("JSON entry does not parse: {e}"))?;
                let spec_json = serde_json::to_string(&entry.spec).expect("spec serializes");
                (entry.kernel_version, spec_json, None)
            };
        if let Some(stored) = stored_key {
            if stored != key {
                return Err(format!("stored hash {stored} does not match filename"));
            }
        }
        let derived = ResultCache::key(&spec_json, kernel_version);
        if derived != key {
            return Err(format!("spec hashes to {derived}, filed under {key}"));
        }
        Ok(())
    }

    /// Rewrite every JSON entry (flat or sharded) as sharded binary and
    /// move any misplaced binary entry into its shard — preserving every
    /// content hash, so a warm sweep replays identically before and
    /// after. Unreadable or hash-mismatched entries are quarantined.
    pub fn migrate(&self) -> std::io::Result<MigrateReport> {
        let mut report = MigrateReport::default();
        for (key, path, _, _) in self.inventory() {
            let in_shard = path.parent() == Some(self.shard_dir(&key).as_path());
            let is_binary = path.extension().is_some_and(|e| e == "bin");
            if is_binary {
                if in_shard {
                    report.already_binary += 1;
                } else {
                    let dest = self.shard_dir(&key).join(format!("{key}.bin"));
                    fs::create_dir_all(dest.parent().expect("shard dir"))?;
                    fs::rename(&path, &dest)?;
                    report.resharded += 1;
                }
                continue;
            }
            match self.migrate_one(&key, &path) {
                Ok(()) => report.migrated += 1,
                Err(reason) => {
                    self.quarantine(&path, &reason);
                    report.quarantined += 1;
                }
            }
        }
        self.index_reset();
        Ok(report)
    }

    fn migrate_one(&self, key: &str, path: &Path) -> Result<(), String> {
        let bytes = fs::read(path).map_err(|e| format!("unreadable: {e}"))?;
        let entry: CacheEntry = serde_json::from_slice(&bytes)
            .map_err(|e| format!("JSON entry does not parse: {e}"))?;
        let spec_json = serde_json::to_string(&entry.spec).expect("spec serializes");
        let derived = ResultCache::key(&spec_json, entry.kernel_version);
        if derived != key {
            return Err(format!("spec hashes to {derived}, filed under {key}"));
        }
        let encoded = binfmt::encode_entry(key, entry.kernel_version, &spec_json, &entry.result);
        let dest = self.shard_dir(key).join(format!("{key}.bin"));
        let parent = dest.parent().expect("shard dir");
        fs::create_dir_all(parent).map_err(|e| format!("cannot create shard dir: {e}"))?;
        let tmp = parent.join(format!(".{key}.tmp-{}", std::process::id()));
        fs::write(&tmp, &encoded).map_err(|e| format!("cannot write: {e}"))?;
        fs::rename(&tmp, &dest).map_err(|e| format!("cannot publish: {e}"))?;
        let _ = fs::remove_file(path);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn canonical(spec: &RunSpec) -> String {
        serde_json::to_string(spec).unwrap()
    }

    #[test]
    fn key_is_stable_and_salt_sensitive() {
        let json = canonical(&RunSpec::builder().seed(1).build());
        let a = ResultCache::key(&json, 1);
        let b = ResultCache::key(&json, 1);
        assert_eq!(a, b);
        assert_eq!(a.len(), 32);
        assert!(a.chars().all(|c| c.is_ascii_hexdigit()));
        assert_ne!(a, ResultCache::key(&json, 2), "salt must change the key");
        let other = canonical(&RunSpec::builder().seed(2).build());
        assert_ne!(a, ResultCache::key(&other, 1), "spec must change the key");
    }

    #[test]
    fn equal_specs_share_a_key() {
        let a = RunSpec::builder().mechanism("rFLOV").rate(0.08).build();
        let b = RunSpec::builder().rate(0.08).mechanism("rFLOV").build();
        assert_eq!(ResultCache::key(&canonical(&a), 1), ResultCache::key(&canonical(&b), 1),);
    }

    fn tiny_entry(seed: u64) -> (String, CacheEntry) {
        let spec = RunSpec::builder().k(2).seed(seed).warmup(50).cycles(300).drain(5_000).build();
        let result = crate::run_kernel(&spec, crate::KernelMode::ActiveSet);
        let key = ResultCache::key(&canonical(&spec), 1);
        (key, CacheEntry { kernel_version: 1, spec, result })
    }

    fn temp_cache(tag: &str) -> (PathBuf, ResultCache) {
        let dir =
            std::env::temp_dir().join(format!("flov-cache-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        (dir.clone(), ResultCache::new(dir))
    }

    #[test]
    fn atime_bump_failures_are_counted_and_surfaced() {
        let (dir, cache) = temp_cache("atime");
        let (key, entry) = tiny_entry(1);
        cache.put(&key, &entry).unwrap();

        assert!(cache.get(&key, 1).is_some());
        assert_eq!(cache.atime_bump_failures(), 0);
        assert!(!cache.atime_unreliable());

        cache.fail_atime_bumps.store(true, Ordering::Relaxed);
        // A failed bump never fails the probe itself...
        assert!(cache.get(&key, 1).is_some(), "hit must survive a failed atime bump");
        assert!(cache.get(&key, 1).is_some());
        // ...but it is counted, latches the unreliable flag, and shows up
        // in `cache stats` (the satellite bug: `let _ =` swallowed it all).
        assert_eq!(cache.atime_bump_failures(), 2);
        assert!(cache.atime_unreliable());
        assert_eq!(cache.stats().atime_bump_failures, 2);
        // Clones share the counters, like the index.
        assert_eq!(cache.clone().atime_bump_failures(), 2);

        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn gc_recency_falls_back_to_mtime_when_atime_unreliable() {
        let (dir, cache) = temp_cache("recency");
        let (key_a, entry_a) = tiny_entry(2);
        let (key_b, entry_b) = tiny_entry(3);
        cache.put(&key_a, &entry_a).unwrap();
        cache.put(&key_b, &entry_b).unwrap();

        let stamp = |key: &str, mtime_s: u64, atime_s: u64| {
            let path = cache.index_lookup(key).expect("entry indexed");
            let at = |s| SystemTime::UNIX_EPOCH + Duration::from_secs(s);
            let f = fs::File::options().write(true).open(path).unwrap();
            f.set_times(fs::FileTimes::new().set_modified(at(mtime_s)).set_accessed(at(atime_s)))
                .unwrap();
        };
        // A: written long ago but heavily replayed (fresh atime).
        // B: written later, never replayed.
        stamp(&key_a, 1_000, 9_000);
        stamp(&key_b, 5_000, 5_000);

        let recency = |cache: &ResultCache| -> HashMap<String, SystemTime> {
            cache.inventory().into_iter().map(|(k, _, _, r)| (k, r)).collect()
        };
        // Healthy atimes: replay recency counts, A is the fresher entry.
        let r = recency(&cache);
        assert!(r[&key_a] > r[&key_b], "atime-trusting recency inverted");

        // After a bump failure, access times are stale by assumption:
        // ordering must degrade to modification times (B is fresher).
        cache.fail_atime_bumps.store(true, Ordering::Relaxed);
        assert!(cache.get(&key_a, 1).is_some());
        assert!(cache.atime_unreliable());
        let r = recency(&cache);
        assert!(r[&key_a] < r[&key_b], "mtime fallback not applied");

        let _ = fs::remove_dir_all(&dir);
    }

    #[cfg(unix)]
    #[test]
    fn probes_survive_a_read_only_shard_dir() {
        use std::os::unix::fs::PermissionsExt;
        let (dir, cache) = temp_cache("readonly");
        let (key, entry) = tiny_entry(4);
        cache.put(&key, &entry).unwrap();
        let shard = cache.shard_dir(&key);
        let entry_path = cache.index_lookup(&key).unwrap();
        let restore = |p: &Path, mode: u32| {
            let mut perm = fs::metadata(p).unwrap().permissions();
            perm.set_mode(mode);
            fs::set_permissions(p, perm).unwrap();
        };
        restore(&entry_path, 0o444);
        restore(&shard, 0o555);
        // A read-only layout must never fail the probe. (Whether the bump
        // itself fails is owner-dependent — root may set times regardless
        // — so the counter is exercised via injection above, not here.)
        assert!(cache.get(&key, 1).is_some(), "read-only shard broke probing");
        restore(&shard, 0o755);
        restore(&entry_path, 0o644);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn entry_key_accepts_entries_and_rejects_noise() {
        assert_eq!(
            entry_key("0123456789abcdef0123456789abcdef.bin"),
            Some("0123456789abcdef0123456789abcdef")
        );
        assert_eq!(
            entry_key("0123456789abcdef0123456789abcdef.json"),
            Some("0123456789abcdef0123456789abcdef")
        );
        assert_eq!(entry_key(".0123456789abcdef0123456789abcdef.tmp-123"), None);
        assert_eq!(entry_key("0123456789ABCDEF0123456789ABCDEF.bin"), None);
        assert_eq!(entry_key("short.json"), None);
        assert_eq!(entry_key("notes.txt"), None);
    }
}
