//! Compact binary on-disk encoding for cache entries.
//!
//! A binary entry is a self-describing container:
//!
//! ```text
//! offset  size  field
//! 0       8     magic + format version (b"FLOVBC1\n")
//! 8       4     kernel_version, u32 LE
//! 12      16    content hash (the cache key's 128-bit value)
//! 28      4     spec_len, u32 LE
//! 32      n     canonical spec JSON, UTF-8 (exact bytes the key hashes)
//! 32+n    4     result_len, u32 LE
//! 36+n    m     RunResult as a binary Value tree (see below)
//! end-4   4     CRC-32C (Castagnoli) over every preceding byte, u32 LE
//! ```
//!
//! The result section encodes the workspace serde shim's [`Value`] tree
//! directly — one tag byte per node, zigzag-LEB128 varints for integers
//! and lengths, raw little-endian bits for floats — so any change to
//! `RunResult`'s fields round-trips with zero codec maintenance, floats
//! come back bit-for-bit (including NaN payloads, which JSON cannot
//! represent), and a warm cache probe decodes *only* the result: the spec
//! JSON is length-skipped, never parsed. Storing the spec's exact
//! canonical JSON bytes is what lets `flov cache verify` and `migrate`
//! recompute the content hash without trusting the filename.
//!
//! Every decode path is bounds-checked and returns [`BinError`] instead of
//! panicking: a truncated or bit-flipped entry must read as a cache miss
//! (the cache quarantines it), never as a crash.

use crate::spec::RunResult;
use serde::{Deserialize, Serialize, Value};

/// Magic + format version. Bump the trailing digit for incompatible
/// layout changes; readers reject anything else as corrupt.
pub const MAGIC: [u8; 8] = *b"FLOVBC1\n";

/// Fixed-size prefix before the spec JSON.
const HEADER_LEN: usize = 8 + 4 + 16 + 4;

/// Smallest well-formed entry: header + empty spec + result length + CRC.
const MIN_LEN: usize = HEADER_LEN + 4 + 4;

/// Why a binary entry failed to decode. The message names the first
/// offending structure for `flov cache verify` output.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BinError(pub String);

impl std::fmt::Display for BinError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for BinError {}

fn err<T>(msg: impl Into<String>) -> Result<T, BinError> {
    Err(BinError(msg.into()))
}

// ---------------------------------------------------------------- CRC-32

/// Slice-by-16 lookup tables for CRC-32C (Castagnoli, reflected poly
/// `0x82F63B78`): `T[0]` is the classic byte-at-a-time table; `T[j][b]`
/// advances a byte `j` positions further along. Sixteen table lookups per
/// 16 input bytes have the same dependent-chain depth as byte-at-a-time
/// per iteration, so throughput scales with the stride. This is the
/// portable fallback; x86-64 hosts with SSE4.2 use the dedicated `crc32`
/// instruction instead (the reason Castagnoli was chosen over IEEE).
const fn crc32_tables() -> [[u32; 256]; 16] {
    let mut t = [[0u32; 256]; 16];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0x82F6_3B78 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        t[0][i] = c;
        i += 1;
    }
    let mut j = 1;
    while j < 16 {
        let mut i = 0;
        while i < 256 {
            t[j][i] = (t[j - 1][i] >> 8) ^ t[0][(t[j - 1][i] & 0xFF) as usize];
            i += 1;
        }
        j += 1;
    }
    t
}

static CRC_TABLES: [[u32; 256]; 16] = crc32_tables();

fn crc32_sw(bytes: &[u8]) -> u32 {
    let t = &CRC_TABLES;
    let mut c = 0xFFFF_FFFFu32;
    let mut chunks = bytes.chunks_exact(16);
    for ch in &mut chunks {
        let a = u32::from_le_bytes(ch[0..4].try_into().expect("4 bytes")) ^ c;
        let b = u32::from_le_bytes(ch[4..8].try_into().expect("4 bytes"));
        let d = u32::from_le_bytes(ch[8..12].try_into().expect("4 bytes"));
        let e = u32::from_le_bytes(ch[12..16].try_into().expect("4 bytes"));
        c = t[15][(a & 0xFF) as usize]
            ^ t[14][((a >> 8) & 0xFF) as usize]
            ^ t[13][((a >> 16) & 0xFF) as usize]
            ^ t[12][(a >> 24) as usize]
            ^ t[11][(b & 0xFF) as usize]
            ^ t[10][((b >> 8) & 0xFF) as usize]
            ^ t[9][((b >> 16) & 0xFF) as usize]
            ^ t[8][(b >> 24) as usize]
            ^ t[7][(d & 0xFF) as usize]
            ^ t[6][((d >> 8) & 0xFF) as usize]
            ^ t[5][((d >> 16) & 0xFF) as usize]
            ^ t[4][(d >> 24) as usize]
            ^ t[3][(e & 0xFF) as usize]
            ^ t[2][((e >> 8) & 0xFF) as usize]
            ^ t[1][((e >> 16) & 0xFF) as usize]
            ^ t[0][(e >> 24) as usize];
    }
    for &b in chunks.remainder() {
        c = t[0][((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// SSE4.2 `crc32` instruction path, 8 bytes per instruction.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse4.2")]
unsafe fn crc32_hw(bytes: &[u8]) -> u32 {
    use std::arch::x86_64::{_mm_crc32_u64, _mm_crc32_u8};
    let mut c = 0xFFFF_FFFFu64;
    let mut chunks = bytes.chunks_exact(8);
    for ch in &mut chunks {
        c = _mm_crc32_u64(c, u64::from_le_bytes(ch.try_into().expect("8 bytes")));
    }
    let mut c = c as u32;
    for &b in chunks.remainder() {
        c = _mm_crc32_u8(c, b);
    }
    !c
}

/// CRC-32C (Castagnoli) over `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("sse4.2") {
        // SAFETY: feature detection just confirmed SSE4.2 is present.
        return unsafe { crc32_hw(bytes) };
    }
    crc32_sw(bytes)
}

// ------------------------------------------------------------ Value codec

const TAG_NULL: u8 = 0;
const TAG_FALSE: u8 = 1;
const TAG_TRUE: u8 = 2;
const TAG_INT: u8 = 3;
const TAG_FLOAT: u8 = 4;
const TAG_STR: u8 = 5;
const TAG_SEQ: u8 = 6;
const TAG_MAP: u8 = 7;

pub(crate) fn write_uvarint(mut v: u128, out: &mut Vec<u8>) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn zigzag(v: i128) -> u128 {
    ((v << 1) ^ (v >> 127)) as u128
}

fn unzigzag(v: u128) -> i128 {
    ((v >> 1) as i128) ^ -((v & 1) as i128)
}

pub(crate) struct Reader<'a> {
    pub(crate) bytes: &'a [u8],
    pub(crate) pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn take(&mut self, n: usize) -> Result<&'a [u8], BinError> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.bytes.len());
        match end {
            Some(end) => {
                let s = &self.bytes[self.pos..end];
                self.pos = end;
                Ok(s)
            }
            None => err(format!("truncated: wanted {n} bytes at offset {}", self.pos)),
        }
    }

    pub(crate) fn byte(&mut self) -> Result<u8, BinError> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn uvarint(&mut self) -> Result<u128, BinError> {
        let mut v: u128 = 0;
        for shift in (0..).step_by(7) {
            if shift >= 128 {
                return err("varint overflows u128");
            }
            let b = self.byte()?;
            v |= ((b & 0x7F) as u128) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
        }
        unreachable!()
    }

    /// A length that must fit in the remaining input (each encoded element
    /// is at least one byte), so corrupt counts can't trigger huge
    /// allocations before the read fails.
    pub(crate) fn bounded_len(&mut self) -> Result<usize, BinError> {
        let n = self.uvarint()?;
        let remaining = (self.bytes.len() - self.pos) as u128;
        if n > remaining {
            return err(format!("length {n} exceeds {remaining} remaining bytes"));
        }
        Ok(n as usize)
    }
}

/// Append the binary encoding of `v` to `out`.
pub fn write_value(v: &Value, out: &mut Vec<u8>) {
    match v {
        Value::Null => out.push(TAG_NULL),
        Value::Bool(false) => out.push(TAG_FALSE),
        Value::Bool(true) => out.push(TAG_TRUE),
        Value::Int(i) => {
            out.push(TAG_INT);
            write_uvarint(zigzag(*i), out);
        }
        Value::Float(x) => {
            out.push(TAG_FLOAT);
            out.extend_from_slice(&x.to_bits().to_le_bytes());
        }
        Value::Str(s) => {
            out.push(TAG_STR);
            write_uvarint(s.len() as u128, out);
            out.extend_from_slice(s.as_bytes());
        }
        Value::Seq(items) => {
            out.push(TAG_SEQ);
            write_uvarint(items.len() as u128, out);
            for item in items {
                write_value(item, out);
            }
        }
        Value::Map(entries) => {
            out.push(TAG_MAP);
            write_uvarint(entries.len() as u128, out);
            for (k, v) in entries {
                write_uvarint(k.len() as u128, out);
                out.extend_from_slice(k.as_bytes());
                write_value(v, out);
            }
        }
    }
}

fn read_str(r: &mut Reader) -> Result<String, BinError> {
    let n = r.bounded_len()?;
    let bytes = r.take(n)?;
    match std::str::from_utf8(bytes) {
        Ok(s) => Ok(s.to_string()),
        Err(e) => err(format!("invalid UTF-8 in string: {e}")),
    }
}

fn read_value(r: &mut Reader) -> Result<Value, BinError> {
    match r.byte()? {
        TAG_NULL => Ok(Value::Null),
        TAG_FALSE => Ok(Value::Bool(false)),
        TAG_TRUE => Ok(Value::Bool(true)),
        TAG_INT => Ok(Value::Int(unzigzag(r.uvarint()?))),
        TAG_FLOAT => {
            let bits = u64::from_le_bytes(r.take(8)?.try_into().expect("8 bytes"));
            Ok(Value::Float(f64::from_bits(bits)))
        }
        TAG_STR => Ok(Value::Str(read_str(r)?)),
        TAG_SEQ => {
            let n = r.bounded_len()?;
            let mut items = Vec::with_capacity(n);
            for _ in 0..n {
                items.push(read_value(r)?);
            }
            Ok(Value::Seq(items))
        }
        TAG_MAP => {
            let n = r.bounded_len()?;
            let mut entries = Vec::with_capacity(n);
            for _ in 0..n {
                let k = read_str(r)?;
                entries.push((k, read_value(r)?));
            }
            Ok(Value::Map(entries))
        }
        t => err(format!("unknown value tag {t}")),
    }
}

/// Decode one binary `Value` from `bytes` (must consume them exactly).
pub fn value_from_bytes(bytes: &[u8]) -> Result<Value, BinError> {
    let mut r = Reader { bytes, pos: 0 };
    let v = read_value(&mut r)?;
    if r.pos != bytes.len() {
        return err(format!("{} trailing bytes after value", bytes.len() - r.pos));
    }
    Ok(v)
}

// --------------------------------------------------------- entry container

/// Parse a 32-hex-character cache key into its 16 raw bytes.
pub fn key_bytes(key: &str) -> Option<[u8; 16]> {
    let key = key.as_bytes();
    if key.len() != 32 {
        return None;
    }
    let mut out = [0u8; 16];
    for (i, pair) in key.chunks_exact(2).enumerate() {
        let hex = std::str::from_utf8(pair).ok()?;
        out[i] = u8::from_str_radix(hex, 16).ok()?;
    }
    Some(out)
}

/// Encode one cache entry. `spec_json` must be the spec's *canonical*
/// JSON — the exact bytes `key` was hashed from.
pub fn encode_entry(
    key: &str,
    kernel_version: u32,
    spec_json: &str,
    result: &RunResult,
) -> Vec<u8> {
    let hash = key_bytes(key).expect("cache key is 32 hex chars");
    let mut out = Vec::with_capacity(HEADER_LEN + spec_json.len() + 512);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&kernel_version.to_le_bytes());
    out.extend_from_slice(&hash);
    out.extend_from_slice(&(spec_json.len() as u32).to_le_bytes());
    out.extend_from_slice(spec_json.as_bytes());
    let result_at = out.len();
    out.extend_from_slice(&[0u8; 4]); // result_len back-patched below
    write_value(&result.to_value(), &mut out);
    let result_len = (out.len() - result_at - 4) as u32;
    out[result_at..result_at + 4].copy_from_slice(&result_len.to_le_bytes());
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// A fully decoded binary entry (`flov cache verify` / `migrate` path).
#[derive(Clone, Debug)]
pub struct BinEntry {
    pub kernel_version: u32,
    /// The stored content hash, re-rendered as the 32-hex key.
    pub key: String,
    /// The canonical spec JSON exactly as hashed.
    pub spec_json: String,
    pub result: RunResult,
}

/// Section boundaries of a validated container:
/// `(kernel_version, key, spec_range, result_range)`.
type Frame = (u32, [u8; 16], std::ops::Range<usize>, std::ops::Range<usize>);

/// Validate the container (magic, CRC, lengths) and return its [`Frame`].
fn frame(bytes: &[u8]) -> Result<Frame, BinError> {
    if bytes.len() < MIN_LEN {
        return err(format!("entry too short ({} bytes)", bytes.len()));
    }
    if bytes[..8] != MAGIC {
        return err("bad magic (not a FLOV binary cache entry)");
    }
    let body = &bytes[..bytes.len() - 4];
    let stored_crc = u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().expect("4 bytes"));
    let actual_crc = crc32(body);
    if stored_crc != actual_crc {
        return err(format!("CRC mismatch (stored {stored_crc:08x}, computed {actual_crc:08x})"));
    }
    let kernel_version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    let hash: [u8; 16] = bytes[12..28].try_into().expect("16 bytes");
    let spec_len = u32::from_le_bytes(bytes[28..32].try_into().expect("4 bytes")) as usize;
    let spec_start = HEADER_LEN;
    let spec_end = spec_start.checked_add(spec_len).filter(|&e| e + 4 <= body.len());
    let Some(spec_end) = spec_end else {
        return err(format!("spec length {spec_len} exceeds entry"));
    };
    let result_len =
        u32::from_le_bytes(bytes[spec_end..spec_end + 4].try_into().expect("4 bytes")) as usize;
    let result_start = spec_end + 4;
    if result_start + result_len != body.len() {
        return err(format!(
            "result length {result_len} does not close the entry \
             ({} bytes remain)",
            body.len() - result_start
        ));
    }
    Ok((kernel_version, hash, spec_start..spec_end, result_start..result_start + result_len))
}

fn hex(hash: &[u8; 16]) -> String {
    hash.iter().map(|b| format!("{b:02x}")).collect()
}

/// Fast cache-probe decode: verify the container, check the stored
/// content hash against `expect_key`, and decode *only* the result
/// section (the spec JSON is skipped, not parsed).
///
/// `Ok(None)` means a well-formed entry for a different kernel version —
/// a plain miss. `Err` means corruption; the caller quarantines the file.
pub fn decode_result(
    bytes: &[u8],
    expect_key: &str,
    expect_kernel_version: u32,
) -> Result<Option<RunResult>, BinError> {
    let (kernel_version, hash, _spec, result) = frame(bytes)?;
    match key_bytes(expect_key) {
        Some(expect) if expect == hash => {}
        _ => return err(format!("stored hash {} does not match key {expect_key}", hex(&hash))),
    }
    if kernel_version != expect_kernel_version {
        return Ok(None);
    }
    // The layout-pinned direct decoder first (an order of magnitude
    // cheaper than materializing the Value tree); any mismatch falls back
    // to the generic path, which also produces the precise error message
    // for genuinely corrupt payloads.
    if let Some(r) = fast::run_result(&bytes[result.clone()]) {
        return Ok(Some(r));
    }
    let value = value_from_bytes(&bytes[result])?;
    match RunResult::from_value(&value) {
        Ok(r) => Ok(Some(r)),
        Err(e) => err(format!("result does not deserialize: {e}")),
    }
}

/// Zero-allocation-per-node direct decode of a [`RunResult`] from the
/// binary Value encoding. The warm-sweep probe path spends nearly all its
/// time here, so instead of building the intermediate `Value` tree (one
/// heap allocation per map key and per node — tens of microseconds for a
/// dense timeline), this module walks the bytes once, comparing field
/// names in place and writing straight into the struct.
///
/// The layout is pinned to the serde shim's derive: structs encode as
/// declaration-ordered maps, so fields arrive in a known order. Any
/// deviation — extra field, reordered field, unexpected tag — returns
/// `None` and [`decode_result`] falls back to the generic `Value` path,
/// which stays the source of truth for correctness (the proptest suite
/// asserts the two paths agree bit-for-bit).
mod fast {
    use super::{unzigzag, TAG_FLOAT, TAG_INT, TAG_MAP, TAG_SEQ, TAG_STR};
    use crate::spec::RunResult;
    use flov_noc::stats::IntervalSample;
    use flov_power::model::{DynamicEnergy, PowerReport};

    struct Cur<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl<'a> Cur<'a> {
        fn byte(&mut self) -> Option<u8> {
            let b = *self.bytes.get(self.pos)?;
            self.pos += 1;
            Some(b)
        }

        fn uvarint(&mut self) -> Option<u128> {
            let mut v: u128 = 0;
            for shift in (0..128).step_by(7) {
                let b = self.byte()?;
                v |= ((b & 0x7F) as u128) << shift;
                if b & 0x80 == 0 {
                    return Some(v);
                }
            }
            None
        }

        fn tag(&mut self, t: u8) -> Option<()> {
            (self.byte()? == t).then_some(())
        }

        /// A map header with exactly `n` entries.
        fn map(&mut self, n: usize) -> Option<()> {
            self.tag(TAG_MAP)?;
            (self.uvarint()? == n as u128).then_some(())
        }

        /// A seq header with exactly `n` elements.
        fn seq(&mut self, n: usize) -> Option<()> {
            self.tag(TAG_SEQ)?;
            (self.uvarint()? == n as u128).then_some(())
        }

        /// A seq header of any length.
        fn seq_len(&mut self) -> Option<usize> {
            self.tag(TAG_SEQ)?;
            let n = self.uvarint()?;
            // Each element is at least one byte.
            (n <= (self.bytes.len() - self.pos) as u128).then_some(n as usize)
        }

        /// A map key that must equal `name`, compared in place.
        fn key(&mut self, name: &str) -> Option<()> {
            let n = self.uvarint()?;
            let end = self.pos.checked_add(usize::try_from(n).ok()?)?;
            let s = self.bytes.get(self.pos..end)?;
            if s == name.as_bytes() {
                self.pos = end;
                Some(())
            } else {
                None
            }
        }

        fn u64_raw(&mut self) -> Option<u64> {
            self.tag(TAG_INT)?;
            u64::try_from(unzigzag(self.uvarint()?)).ok()
        }

        fn f64_raw(&mut self) -> Option<f64> {
            self.tag(TAG_FLOAT)?;
            let end = self.pos.checked_add(8)?;
            let bits = u64::from_le_bytes(self.bytes.get(self.pos..end)?.try_into().ok()?);
            self.pos = end;
            Some(f64::from_bits(bits))
        }

        fn u64(&mut self, name: &str) -> Option<u64> {
            self.key(name)?;
            self.u64_raw()
        }

        fn f64(&mut self, name: &str) -> Option<f64> {
            self.key(name)?;
            self.f64_raw()
        }

        fn string(&mut self, name: &str) -> Option<String> {
            self.key(name)?;
            self.tag(TAG_STR)?;
            let n = self.uvarint()?;
            let end = self.pos.checked_add(usize::try_from(n).ok()?)?;
            let s = std::str::from_utf8(self.bytes.get(self.pos..end)?).ok()?;
            self.pos = end;
            Some(s.to_string())
        }

        fn bool(&mut self, name: &str) -> Option<bool> {
            self.key(name)?;
            match self.byte()? {
                super::TAG_FALSE => Some(false),
                super::TAG_TRUE => Some(true),
                _ => None,
            }
        }
    }

    fn dynamic_energy(c: &mut Cur) -> Option<DynamicEnergy> {
        c.map(9)?;
        Some(DynamicEnergy {
            buffers: c.f64("buffers")?,
            ring: c.f64("ring")?,
            crossbar: c.f64("crossbar")?,
            arbitration: c.f64("arbitration")?,
            links: c.f64("links")?,
            flov_latches: c.f64("flov_latches")?,
            credits: c.f64("credits")?,
            handshake: c.f64("handshake")?,
            gating: c.f64("gating")?,
        })
    }

    fn power(c: &mut Cur) -> Option<PowerReport> {
        c.key("power")?;
        c.map(8)?;
        Some(PowerReport {
            cycles: c.u64("cycles")?,
            seconds: c.f64("seconds")?,
            static_w: c.f64("static_w")?,
            static_router_w: c.f64("static_router_w")?,
            static_link_w: c.f64("static_link_w")?,
            dynamic_w: c.f64("dynamic_w")?,
            dynamic_energy: {
                c.key("dynamic_energy")?;
                dynamic_energy(c)?
            },
            total_w: c.f64("total_w")?,
        })
    }

    // Every timeline sample serializes to the same byte pattern apart
    // from the three varint values, so the hot loop (a dense sweep entry
    // carries hundreds to thousands of samples) matches the fixed runs —
    // map header, length-prefixed key, int tag — with single constant
    // memcmps instead of re-parsing each key.
    const TL_START: &[u8] = &[TAG_MAP, 3, 5, b's', b't', b'a', b'r', b't', TAG_INT];
    const TL_PACKETS: &[u8] = &[7, b'p', b'a', b'c', b'k', b'e', b't', b's', TAG_INT];
    const TL_LATENCY: &[u8] =
        &[11, b'l', b'a', b't', b'e', b'n', b'c', b'y', b'_', b's', b'u', b'm', TAG_INT];

    impl<'a> Cur<'a> {
        fn lit(&mut self, pat: &[u8]) -> Option<()> {
            let end = self.pos.checked_add(pat.len())?;
            if self.bytes.get(self.pos..end)? == pat {
                self.pos = end;
                Some(())
            } else {
                None
            }
        }

        /// The varint payload of an already-tagged non-negative int,
        /// accumulated in u64 (zigzag of a u64 needs at most 65 bits;
        /// anything wider than 63 bits takes the exact u128 path).
        fn int_u64(&mut self) -> Option<u64> {
            let mut v: u64 = 0;
            for shift in (0..63).step_by(7) {
                let b = self.byte()?;
                v |= ((b & 0x7F) as u64) << shift;
                if b & 0x80 == 0 {
                    // Zigzag: even = non-negative.
                    return (v & 1 == 0).then_some(v >> 1);
                }
            }
            self.pos -= 9;
            u64::try_from(super::unzigzag(self.uvarint()?)).ok()
        }
    }

    fn timeline(c: &mut Cur) -> Option<Vec<IntervalSample>> {
        c.key("timeline")?;
        let n = c.seq_len()?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            c.lit(TL_START)?;
            let start = c.int_u64()?;
            c.lit(TL_PACKETS)?;
            let packets = c.int_u64()?;
            c.lit(TL_LATENCY)?;
            let latency_sum = c.int_u64()?;
            out.push(IntervalSample { start, packets, latency_sum });
        }
        Some(out)
    }

    /// Decode a complete `RunResult`; `None` on any layout mismatch.
    pub(super) fn run_result(bytes: &[u8]) -> Option<RunResult> {
        let mut c = Cur { bytes, pos: 0 };
        c.map(20)?;
        let r = RunResult {
            mechanism: c.string("mechanism")?,
            packets: c.u64("packets")?,
            avg_latency: c.f64("avg_latency")?,
            max_latency: c.u64("max_latency")?,
            latency_percentiles: {
                c.key("latency_percentiles")?;
                c.seq(3)?;
                (c.u64_raw()?, c.u64_raw()?, c.u64_raw()?)
            },
            breakdown: {
                c.key("breakdown")?;
                c.seq(5)?;
                [c.f64_raw()?, c.f64_raw()?, c.f64_raw()?, c.f64_raw()?, c.f64_raw()?]
            },
            avg_hops: c.f64("avg_hops")?,
            avg_flov_hops: c.f64("avg_flov_hops")?,
            escape_packets: c.u64("escape_packets")?,
            escape_diversions: c.u64("escape_diversions")?,
            throughput: c.f64("throughput")?,
            power: power(&mut c)?,
            runtime_cycles: c.u64("runtime_cycles")?,
            stalled_injection_cycles: c.u64("stalled_injection_cycles")?,
            gating_events: c.u64("gating_events")?,
            flov_latch_flits: c.u64("flov_latch_flits")?,
            ring_flits: c.u64("ring_flits")?,
            vnet_latency: {
                c.key("vnet_latency")?;
                c.seq(3)?;
                let mut v = [(0u64, 0f64); 3];
                for slot in &mut v {
                    c.seq(2)?;
                    *slot = (c.u64_raw()?, c.f64_raw()?);
                }
                v
            },
            timeline: timeline(&mut c)?,
            delivered_all: c.bool("delivered_all")?,
        };
        // The result section must be consumed exactly; trailing bytes
        // mean a layout this decoder does not understand.
        (c.pos == bytes.len()).then_some(r)
    }
}

/// Full decode for `verify` and `migrate`: every section parsed, the
/// spec JSON returned verbatim so the caller can recompute the key.
pub fn decode_entry(bytes: &[u8]) -> Result<BinEntry, BinError> {
    let (kernel_version, hash, spec, result) = frame(bytes)?;
    let spec_json = match std::str::from_utf8(&bytes[spec]) {
        Ok(s) => s.to_string(),
        Err(e) => return err(format!("spec JSON is not UTF-8: {e}")),
    };
    let value = value_from_bytes(&bytes[result])?;
    let result = match RunResult::from_value(&value) {
        Ok(r) => r,
        Err(e) => return err(format!("result does not deserialize: {e}")),
    };
    Ok(BinEntry { kernel_version, key: hex(&hash), spec_json, result })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // The classic CRC-32C check value.
        assert_eq!(crc32(b"123456789"), 0xE306_9283);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn varints_roundtrip_extremes() {
        for v in [
            0i128,
            1,
            -1,
            63,
            -64,
            i128::from(u64::MAX),
            -i128::from(u64::MAX),
            i128::MAX,
            i128::MIN,
        ] {
            let mut buf = Vec::new();
            write_uvarint(zigzag(v), &mut buf);
            let mut r = Reader { bytes: &buf, pos: 0 };
            assert_eq!(unzigzag(r.uvarint().unwrap()), v, "varint roundtrip for {v}");
            assert_eq!(r.pos, buf.len());
        }
    }

    #[test]
    fn values_roundtrip_bit_exactly() {
        let v = Value::Map(vec![
            ("s".into(), Value::Str("héllo\n\"".into())),
            ("neg_zero".into(), Value::Float(-0.0)),
            ("nan".into(), Value::Float(f64::NAN)),
            ("big".into(), Value::Int(i128::from(u64::MAX))),
            ("seq".into(), Value::Seq(vec![Value::Null, Value::Bool(true), Value::Bool(false)])),
            ("empty".into(), Value::Map(vec![])),
        ]);
        let mut buf = Vec::new();
        write_value(&v, &mut buf);
        let back = value_from_bytes(&buf).unwrap();
        // PartialEq on floats would reject NaN; compare structurally.
        fn same(a: &Value, b: &Value) -> bool {
            match (a, b) {
                (Value::Float(x), Value::Float(y)) => x.to_bits() == y.to_bits(),
                (Value::Seq(x), Value::Seq(y)) => {
                    x.len() == y.len() && x.iter().zip(y).all(|(a, b)| same(a, b))
                }
                (Value::Map(x), Value::Map(y)) => {
                    x.len() == y.len()
                        && x.iter().zip(y).all(|((ka, va), (kb, vb))| ka == kb && same(va, vb))
                }
                (a, b) => a == b,
            }
        }
        assert!(same(&v, &back));
    }

    #[test]
    fn truncated_values_error_cleanly() {
        let v = Value::Seq(vec![Value::Int(7); 20]);
        let mut buf = Vec::new();
        write_value(&v, &mut buf);
        for cut in 0..buf.len() {
            assert!(value_from_bytes(&buf[..cut]).is_err(), "truncation at {cut} must error");
        }
    }

    #[test]
    fn key_bytes_parses_and_rejects() {
        let key = "00ff102030405060708090a0b0c0d0e0";
        let bytes = key_bytes(key).unwrap();
        assert_eq!(bytes[0], 0x00);
        assert_eq!(bytes[1], 0xff);
        assert_eq!(hex(&bytes), key);
        assert!(key_bytes("short").is_none());
        assert!(key_bytes("zz ff102030405060708090a0b0c0d0e0").is_none());
    }
}
