//! Differential fuzzer: random [`RunSpec`]s through the cycle kernels
//! (active-set, reference, and the sharded parallel kernel) with the
//! invariant auditor attached, results diffed bit-for-bit.
//!
//! Release builds compile out every `debug_assert!` in the simulator, so
//! a protocol bug that only trips an assertion ships silently. This
//! module closes that gap three ways, all release-capable:
//!
//! 1. every sampled run executes with the [`flov_noc::audit::Auditor`]
//!    attached, so the global invariants (flit/credit conservation, gated
//!    residency, ring conservation, per-mechanism state legality, and the
//!    no-progress watchdog) are checked structurally;
//! 2. every sampled run executes under **all three** [`KernelMode`]s (the
//!    parallel kernel at a spec-derived 2-D tile geometry between 1×2 and
//!    3×3, clamped to the fabric) and the serialized [`RunResult`]s must
//!    match byte-for-byte — the active-set, time-skip, and tile-sharding
//!    optimizations are only correct if invisible;
//! 3. panics (from either kernel) are caught and reported as findings
//!    instead of killing the campaign.
//!
//! Any failure is shrunk greedily (halve cycles, drop gating changes and
//! mechanism switches, zero the gated fraction, shrink the mesh) to a
//! minimal spec that still fails *the same way*, then written to
//! `results/fuzz/repro-<hash>.json` as a replayable [`Repro`]. Replay
//! with `flov fuzz --replay <file>`.

use crate::cache::ResultCache;
use crate::spec::{RunSpec, WorkloadSpec};
use crate::{run_kernel_audited, KernelMode, KERNEL_VERSION};
use flov_noc::rng::Rng;
use flov_noc::types::{Cycle, NodeId};
use flov_noc::{NocConfig, TopologySpec};
use flov_workloads::Pattern;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};

/// Campaign parameters; see [`fuzz`].
#[derive(Clone, Debug)]
pub struct FuzzOptions {
    /// Specs to sample.
    pub runs: u64,
    /// Campaign seed; each case derives its own deterministic PRNG.
    pub seed: u64,
    /// Upper bound on a sampled spec's `cycles` (smoke budgets cap this).
    pub max_cycles: Cycle,
    /// Where minimized repros are written.
    pub out_dir: PathBuf,
}

impl Default for FuzzOptions {
    fn default() -> Self {
        FuzzOptions {
            runs: 25,
            seed: 0xF1E5,
            max_cycles: 20_000,
            out_dir: PathBuf::from("results/fuzz"),
        }
    }
}

/// A minimal replayable reproduction of one finding.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Repro {
    /// [`KERNEL_VERSION`] at write time; a replay under a different
    /// version may legitimately behave differently.
    pub kernel_version: u32,
    /// Failure class (stable across shrinking): `panic:<kernel>`,
    /// `audit:<kernel>`, or `divergence`.
    pub kind: String,
    /// Human-readable evidence from the original (pre-shrink) failure.
    pub detail: String,
    pub spec: RunSpec,
}

/// One failing case, after shrinking.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Index of the sampled case within the campaign.
    pub case: u64,
    pub kind: String,
    pub detail: String,
    pub spec: RunSpec,
    /// Where the repro was written (`None` if the write failed).
    pub path: Option<PathBuf>,
}

/// Campaign summary.
#[derive(Clone, Debug, Default)]
pub struct FuzzReport {
    pub cases: u64,
    pub findings: Vec<Finding>,
}

impl FuzzReport {
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }
}

const RATES: [f64; 7] = [0.0, 0.005, 0.02, 0.05, 0.08, 0.15, 0.30];
const GATED: [f64; 5] = [0.0, 0.1, 0.3, 0.5, 0.8];
const MECHS: [&str; 7] =
    ["Baseline", "RP", "RP-aggressive", "rFLOV", "gFLOV", "NoRD", "PowerPunch"];

/// Sample one random spec. Every sampled spec is *legal by construction*
/// (NoRD only lands on ring-admitting topologies, PowerPunch never on a
/// torus, hotspots land inside the core space, mechanism switches only
/// loosen the protocol), so any failure is a simulator bug, never a
/// malformed input.
pub fn sample_spec(rng: &mut Rng, max_cycles: Cycle) -> RunSpec {
    let mechanism = *rng.pick(&MECHS);
    let mut k = *rng.pick(&[2u16, 3, 4, 4, 5, 6, 8]);
    // Topology draw (mesh-weighted), constrained by the mechanism: a torus
    // needs its escape VCs (which PowerPunch models away), and NoRD's
    // bypass ring needs a Hamiltonian cycle.
    let topology = match rng.below(8) {
        0 if mechanism != "PowerPunch" => Some(TopologySpec::Torus { k }),
        1 => {
            if mechanism == "NoRD" && !k.is_multiple_of(2) {
                k += 1;
            }
            Some(TopologySpec::CMesh { k, c: if rng.chance(0.5) { 2 } else { 4 } })
        }
        2 => {
            let mut ky = *rng.pick(&[2u16, 3, 4, 5]);
            if mechanism == "NoRD" && !k.is_multiple_of(2) && !ky.is_multiple_of(2) {
                ky += 1;
            }
            Some(TopologySpec::RectMesh { kx: k, ky })
        }
        _ => {
            if mechanism == "NoRD" && !k.is_multiple_of(2) {
                k += 1;
            }
            None
        }
    };
    let cores = topology.unwrap_or(TopologySpec::Mesh { k }).cores() as u64;
    let pattern = match rng.below(6) {
        0 => Pattern::Tornado,
        1 => Pattern::Transpose,
        2 => Pattern::BitComplement,
        3 => Pattern::Neighbor,
        4 => Pattern::Hotspot {
            hotspot: rng.below(cores) as NodeId,
            p_hot_pct: 5 + rng.below(30) as u8,
        },
        _ => Pattern::UniformRandom,
    };
    let cycles = 2_000 + rng.below(max_cycles.saturating_sub(2_000).max(1));
    let mut cfg = NocConfig { k, topology, ..NocConfig::default() };
    cfg.vnets = if rng.chance(0.25) { 3 } else { 1 };
    // Short fuse on the no-progress watchdog: a deadlock must surface as a
    // structured NoProgress violation *within* the drain window.
    cfg.watchdog_cycles = 10_000;
    let mut changes = Vec::new();
    for _ in 0..rng.below(3) {
        changes.push(rng.below(cycles.max(1)));
    }
    changes.sort_unstable();
    changes.dedup();
    // Mid-run mechanism switches, only in the legal "loosening" direction.
    let mut mech_switches: Vec<(Cycle, String)> = Vec::new();
    if rng.chance(0.5) {
        let at = rng.below(cycles.max(1));
        match mechanism {
            "Baseline" => {
                let to = if rng.chance(0.5) { "rFLOV" } else { "gFLOV" };
                mech_switches.push((at, to.into()));
            }
            "rFLOV" => mech_switches.push((at, "gFLOV".into())),
            _ => {}
        }
    }
    let mut builder = RunSpec::builder()
        .cfg(cfg)
        .mechanism(mechanism)
        .pattern(pattern)
        .rate(*rng.pick(&RATES))
        .gated_fraction(*rng.pick(&GATED))
        .changes(changes)
        .mech_switches(mech_switches)
        .seed(rng.next_u64())
        .warmup(cycles / 5)
        .cycles(cycles)
        .drain(30_000)
        .audit(true);
    // Bursty lanes: a slice of the campaign drives the same fabric through
    // the MMPP / diurnal load modulators instead of a stationary rate —
    // their quiet phases are where the time-skip kernels earn their keep,
    // so that is where divergence would hide.
    match rng.below(8) {
        0 => {
            let n = 2 + rng.below(2) as usize;
            let phase_rates: Vec<f64> = (0..n).map(|_| *rng.pick(&RATES)).collect();
            builder = builder.mmpp(phase_rates, 1 + rng.below(2_000));
        }
        1 => {
            let n = 2 + rng.below(2) as usize;
            let phase_rates: Vec<f64> = (0..n).map(|_| *rng.pick(&RATES)).collect();
            builder = builder.diurnal(phase_rates, 1 + rng.below(2_000));
        }
        _ => {}
    }
    builder.build()
}

/// Sample a trace-replay spec: record a (small) sampled run into a trace
/// file under `dir`, then return a spec that replays that file with the
/// recorded run's exact shape. Differential failures on such a spec are
/// record/replay bugs by construction. Returns `None` when recording
/// itself fails (the plain sampled spec already covers that case).
pub fn sample_trace_spec(rng: &mut Rng, max_cycles: Cycle, dir: &Path) -> Option<RunSpec> {
    let source = sample_spec(rng, max_cycles.min(6_000)).resolved();
    let recorded =
        catch_unwind(AssertUnwindSafe(|| crate::record_trace(&source, KernelMode::ActiveSet)));
    let (_, data) = recorded.ok()?.ok()?;
    let json = serde_json::to_string(&source).expect("spec serializes");
    let bytes = crate::tracefmt::encode_trace(KERNEL_VERSION, &json, &data);
    let crc = u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().unwrap());
    std::fs::create_dir_all(dir).ok()?;
    let path = dir.join(format!("trace-{crc:08x}.flovtrace"));
    std::fs::write(&path, &bytes).ok()?;
    let mut spec = source;
    spec.workload =
        WorkloadSpec::Trace { path: path.to_string_lossy().into_owned(), crc, closed_loop: false };
    Some(spec)
}

/// Run `spec` through all three kernels — active-set, reference, and the
/// sharded parallel kernel at a spec-derived tile count — auditor
/// attached, and classify the outcome: `None` means clean,
/// `Some((kind, detail))` is a finding. Failure precedence:
/// panic > audit violation > kernel divergence.
pub fn check_spec(spec: &RunSpec) -> Option<(String, String)> {
    // 2-D tile geometry sampled deterministically from the workload seed,
    // so a replayed repro exercises the same kernel trio that found it.
    // The explicit grid is allowed to exceed the fabric (the planner
    // clamps per axis), which keeps the clamping path under test too.
    let seed = match &spec.workload {
        WorkloadSpec::Synthetic { seed, .. }
        | WorkloadSpec::Parsec { seed, .. }
        | WorkloadSpec::Mmpp { seed, .. }
        | WorkloadSpec::Diurnal { seed, .. } => *seed,
        // Trace replays have no workload seed; the content CRC is just as
        // good a deterministic geometry picker.
        WorkloadSpec::Trace { crc, .. } => *crc as u64,
    };
    let (rows, cols) = (1 + (seed >> 1) % 3, 1 + (seed >> 3) % 3);
    let rows = if rows * cols == 1 { 2 } else { rows } as u16;
    let cols = cols as u16;
    let parallel_name = format!("parallel{rows}x{cols}");
    let parallel =
        KernelMode::Parallel { tiles: rows as usize * cols as usize, grid: Some((rows, cols)) };
    let mut outcomes = Vec::with_capacity(3);
    for (name, mode) in [
        ("active", KernelMode::ActiveSet),
        ("reference", KernelMode::Reference),
        (parallel_name.as_str(), parallel),
    ] {
        let run = catch_unwind(AssertUnwindSafe(|| run_kernel_audited(spec, mode)));
        match run {
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                    .unwrap_or_else(|| "non-string panic payload".into());
                return Some((format!("panic:{name}"), msg));
            }
            Ok(run) => outcomes.push((name, run)),
        }
    }
    for (name, run) in &outcomes {
        if !run.violations.is_empty() {
            let detail =
                run.violations.iter().map(|v| v.to_string()).collect::<Vec<_>>().join("; ");
            return Some((format!("audit:{name}"), detail));
        }
    }
    let a = serde_json::to_string(&outcomes[0].1.result).expect("result serializes");
    for (name, run) in &outcomes[1..] {
        let b = serde_json::to_string(&run.result).expect("result serializes");
        if a != b {
            return Some((
                "divergence".into(),
                format!(
                    "kernels disagree: active {} bytes vs {name} {} bytes of JSON",
                    a.len(),
                    b.len()
                ),
            ));
        }
    }
    None
}

/// Shrink candidates for `spec`, most aggressive first. Each candidate is
/// legal by construction (same guarantees as [`sample_spec`]).
fn shrink_candidates(spec: &RunSpec) -> Vec<RunSpec> {
    let mut out = Vec::new();
    let WorkloadSpec::Synthetic { pattern, rate, gated_fraction, seed, changes } = &spec.workload
    else {
        return out;
    };
    let rebuild = |cycles: Cycle,
                   k: u16,
                   topology: Option<TopologySpec>,
                   gated: f64,
                   changes: Vec<Cycle>,
                   switches: Vec<(Cycle, String)>| {
        let mut cfg = spec.cfg.clone();
        cfg.k = k;
        cfg.topology = topology;
        let cores = cfg.cores() as NodeId;
        let pattern = match *pattern {
            // Keep the hotspot inside a shrunken fabric.
            Pattern::Hotspot { hotspot, p_hot_pct } => {
                Pattern::Hotspot { hotspot: hotspot % cores, p_hot_pct }
            }
            p => p,
        };
        RunSpec::builder()
            .cfg(cfg)
            .mechanism(&spec.mechanism)
            .pattern(pattern)
            .rate(*rate)
            .gated_fraction(gated)
            .changes(changes.iter().copied().filter(|&c| c < cycles).collect())
            .mech_switches(switches.into_iter().filter(|(c, _)| *c < cycles).collect())
            .seed(*seed)
            .warmup(spec.warmup.min(cycles / 5))
            .cycles(cycles)
            .drain(spec.drain)
            .audit(true)
            .build()
    };
    let topo = spec.cfg.topology;
    if topo.is_some() {
        // Try the plain mesh first: most bugs are not topology-specific.
        let mut k = spec.cfg.kx().max(spec.cfg.ky());
        if spec.mechanism == "NoRD" && !k.is_multiple_of(2) {
            k += 1;
        }
        out.push(rebuild(
            spec.cycles,
            k,
            None,
            *gated_fraction,
            changes.clone(),
            spec.mech_switches.clone(),
        ));
    }
    if spec.cycles > 2_000 {
        out.push(rebuild(
            (spec.cycles / 2).max(2_000),
            spec.cfg.k,
            topo,
            *gated_fraction,
            changes.clone(),
            spec.mech_switches.clone(),
        ));
    }
    if topo.is_none() && spec.cfg.k > 2 {
        // NoRD's ring needs an even radix; everything else can step by 1.
        let k = if spec.mechanism == "NoRD" { spec.cfg.k - 2 } else { spec.cfg.k - 1 };
        if k >= 2 {
            out.push(rebuild(
                spec.cycles,
                k,
                None,
                *gated_fraction,
                changes.clone(),
                spec.mech_switches.clone(),
            ));
        }
    }
    if !spec.mech_switches.is_empty() {
        let mut s = spec.mech_switches.clone();
        s.pop();
        out.push(rebuild(spec.cycles, spec.cfg.k, topo, *gated_fraction, changes.clone(), s));
    }
    if !changes.is_empty() {
        let mut c = changes.clone();
        c.pop();
        out.push(rebuild(
            spec.cycles,
            spec.cfg.k,
            topo,
            *gated_fraction,
            c,
            spec.mech_switches.clone(),
        ));
    }
    if *gated_fraction > 0.0 {
        out.push(rebuild(
            spec.cycles,
            spec.cfg.k,
            topo,
            0.0,
            changes.clone(),
            spec.mech_switches.clone(),
        ));
    }
    out
}

/// Greedy shrink: repeatedly accept the first candidate that still fails
/// with `kind`, spending at most `budget` candidate evaluations (each of
/// which is two full simulations, so the budget is the cost knob).
pub fn shrink_with(
    spec: &RunSpec,
    kind: &str,
    check: &dyn Fn(&RunSpec) -> Option<String>,
    mut budget: u32,
) -> RunSpec {
    let mut cur = spec.clone();
    loop {
        let mut improved = false;
        for cand in shrink_candidates(&cur) {
            if budget == 0 {
                return cur;
            }
            budget -= 1;
            if check(&cand).as_deref() == Some(kind) {
                cur = cand;
                improved = true;
                break;
            }
        }
        if !improved {
            return cur;
        }
    }
}

/// Content-addressed repro filename stem for `spec` (shortened cache key:
/// equal minimized specs collide on purpose, so re-finding a known bug
/// overwrites its repro instead of piling up duplicates).
pub fn repro_stem(spec: &RunSpec) -> String {
    let json = serde_json::to_string(spec).expect("spec serializes");
    let key = ResultCache::key(&json, KERNEL_VERSION);
    format!("repro-{}", &key[..16])
}

fn write_repro(dir: &Path, finding: &Repro) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{}.json", repro_stem(&finding.spec)));
    let json = serde_json::to_string(finding).expect("repro serializes");
    std::fs::write(&path, json)?;
    Ok(path)
}

/// Re-run a stored repro. Returns the finding if it still fails, `None`
/// if the bug no longer reproduces, or an error for unreadable files.
pub fn replay(path: &Path) -> Result<Option<(String, String)>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path:?}: {e}"))?;
    let repro: Repro = serde_json::from_str(&text).map_err(|e| format!("parse {path:?}: {e}"))?;
    if repro.kernel_version != KERNEL_VERSION {
        eprintln!(
            "[flov] fuzz: repro was written under kernel version {} (now {}); \
             a changed outcome may be expected",
            repro.kernel_version, KERNEL_VERSION
        );
    }
    Ok(check_spec(&repro.spec))
}

/// Run a fuzzing campaign: sample, differentially execute, shrink, and
/// persist repros. Cases run in parallel; the report lists findings in
/// case order.
pub fn fuzz(opts: &FuzzOptions) -> FuzzReport {
    let cases: Vec<u64> = (0..opts.runs).collect();
    let mut findings: Vec<Finding> = cases
        .par_iter()
        .map(|&case| {
            let mut rng = Rng::new(opts.seed ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            // Every fifth case exercises the record→replay path end to end;
            // the rest sample live workloads (synthetic, MMPP, diurnal).
            let spec = if case % 5 == 4 {
                sample_trace_spec(&mut rng, opts.max_cycles, &opts.out_dir)
                    .unwrap_or_else(|| sample_spec(&mut rng, opts.max_cycles))
            } else {
                sample_spec(&mut rng, opts.max_cycles)
            };
            let (kind, detail) = check_spec(&spec)?;
            eprintln!("[flov] fuzz: case {case} failed ({kind}); shrinking");
            let minimized = shrink_with(&spec, &kind, &|s| check_spec(s).map(|(k, _)| k), 32);
            let repro = Repro {
                kernel_version: KERNEL_VERSION,
                kind: kind.clone(),
                detail: detail.clone(),
                spec: minimized.clone(),
            };
            let path = match write_repro(&opts.out_dir, &repro) {
                Ok(p) => Some(p),
                Err(e) => {
                    eprintln!("[flov] fuzz: could not write repro: {e}");
                    None
                }
            };
            Some(Finding { case, kind, detail, spec: minimized, path })
        })
        .collect::<Vec<Option<Finding>>>()
        .into_iter()
        .flatten()
        .collect();
    findings.sort_by_key(|f| f.case);
    FuzzReport { cases: opts.runs, findings }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flov_core::mechanism;

    #[test]
    fn sampled_specs_are_legal_by_construction() {
        let mut rng = Rng::new(7);
        let mut modulated = 0;
        for _ in 0..200 {
            let spec = sample_spec(&mut rng, 20_000).resolved();
            assert_eq!(spec.cfg.validate(), Ok(()), "invalid sample: {}", spec.mechanism);
            assert_eq!(spec.validate(), Ok(()), "spec-level invalid sample: {}", spec.mechanism);
            if matches!(spec.workload, WorkloadSpec::Mmpp { .. } | WorkloadSpec::Diurnal { .. }) {
                modulated += 1;
            }
            assert!(
                mechanism::by_name(&spec.mechanism, &spec.cfg).is_some(),
                "unconstructible sample: {} on {}",
                spec.mechanism,
                spec.cfg.topology_spec().label()
            );
            if spec.mechanism == "NoRD" {
                assert!(
                    spec.cfg.topology_spec().admits_ring(),
                    "NoRD sampled on a ring-less topology"
                );
            }
            if spec.mechanism == "PowerPunch" {
                assert!(!spec.cfg.topology_spec().wraps(), "PowerPunch sampled on a torus");
            }
            if let WorkloadSpec::Synthetic { pattern: Pattern::Hotspot { hotspot, .. }, .. } =
                &spec.workload
            {
                assert!((*hotspot as usize) < spec.cfg.cores(), "hotspot off-fabric");
            }
            for (at, to) in &spec.mech_switches {
                assert!(*at < spec.cycles);
                assert!(
                    matches!(
                        (spec.mechanism.as_str(), to.as_str()),
                        ("Baseline", "rFLOV" | "gFLOV") | ("rFLOV", "gFLOV")
                    ),
                    "illegal sampled switch {} -> {to}",
                    spec.mechanism
                );
            }
            assert!(spec.audit, "fuzz specs must audit");
        }
        // The bursty lanes actually fire (~25% of 200 draws).
        assert!(modulated >= 20, "only {modulated}/200 modulated samples");
    }

    #[test]
    fn trace_samples_replay_clean_across_kernels() {
        let dir = std::env::temp_dir().join("flov-fuzz-trace-test");
        let mut rng = Rng::new(0x7ACE);
        let spec = sample_trace_spec(&mut rng, 4_000, &dir).expect("recording failed");
        assert!(matches!(spec.workload, WorkloadSpec::Trace { .. }));
        assert_eq!(check_spec(&spec), None, "trace replay diverged across kernels");
    }

    #[test]
    fn shrinker_minimizes_against_a_synthetic_predicate() {
        // Stand-in for a real failure: "fails" iff the run is long and the
        // mesh is bigger than 3. The shrinker should strip everything else
        // (switches, changes, gating) and walk both knobs to their floor.
        let mut rng = Rng::new(3);
        let mut spec = sample_spec(&mut rng, 64_000);
        while spec.cfg.k <= 3
            || spec.mechanism == "NoRD"
            || !matches!(spec.workload, WorkloadSpec::Synthetic { .. })
        {
            spec = sample_spec(&mut rng, 64_000);
        }
        let pred = |s: &RunSpec| (s.cycles >= 2_000 && s.cfg.k > 3).then(|| "synthetic".into());
        let min = shrink_with(&spec, "synthetic", &pred, 64);
        assert_eq!(min.cycles, 2_000, "cycles not minimized: {}", min.cycles);
        assert_eq!(min.cfg.k, 4, "radix not minimized: {}", min.cfg.k);
        assert!(min.mech_switches.is_empty());
        if let WorkloadSpec::Synthetic { gated_fraction, changes, .. } = &min.workload {
            assert_eq!(*gated_fraction, 0.0);
            assert!(changes.is_empty());
        } else {
            panic!("shrunk spec is not synthetic");
        }
        // The shrinker never crosses failure classes.
        assert_eq!(pred(&min).as_deref(), Some("synthetic"));
    }

    #[test]
    fn repro_round_trips_through_json() {
        let mut rng = Rng::new(11);
        let spec = sample_spec(&mut rng, 10_000);
        let repro = Repro {
            kernel_version: KERNEL_VERSION,
            kind: "divergence".into(),
            detail: "example".into(),
            spec: spec.clone(),
        };
        let json = serde_json::to_string(&repro).unwrap();
        let back: Repro = serde_json::from_str(&json).unwrap();
        assert_eq!(back.spec, spec);
        assert_eq!(back.kind, "divergence");
        // Equal specs address the same repro file.
        assert_eq!(repro_stem(&spec), repro_stem(&back.spec));
    }

    #[test]
    fn healthy_build_fuzzes_clean() {
        // A tiny campaign (deterministic seed) on the real simulator: both
        // kernels, auditor on. Anything it finds is a real bug.
        let dir = std::env::temp_dir().join("flov-fuzz-test");
        let opts = FuzzOptions { runs: 3, seed: 0xACE5, max_cycles: 6_000, out_dir: dir };
        let report = fuzz(&opts);
        assert_eq!(report.cases, 3);
        assert!(
            report.clean(),
            "fuzz findings on a healthy build: {:?}",
            report.findings.iter().map(|f| (&f.kind, &f.detail)).collect::<Vec<_>>()
        );
    }
}
