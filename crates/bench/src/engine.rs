//! The sweep engine: deduplicating, caching, parallel batch execution.
//!
//! Callers submit batches of [`RunSpec`]s; the engine resolves each spec
//! to canonical form, deduplicates identical specs, serves previously
//! executed runs from the content-addressed [`ResultCache`], simulates
//! the rest across a work-stealing scheduler (streaming progress to
//! stderr), persists every fresh result, and hands back one [`RunResult`]
//! per submitted spec, in order. Every figure generator, study, and the
//! `flov` CLI run through here — a figure regenerated twice costs one
//! simulation sweep.
//!
//! Nested parallelism is arbitrated per job: while many runs are live the
//! requested in-run tiling (`FLOV_KERNEL=parallel`) is demoted to the
//! single-threaded active-set kernel — one core per run beats
//! oversubscribing — and as the batch drains to its last few stragglers,
//! each surviving run is granted a share of the freed cores. All kernels
//! are bit-identical (enforced by the equivalence suite), so arbitration
//! can never change a result, only its wall-clock cost.

use crate::cache::{CacheEntry, ResultCache};
use crate::progress::Progress;
use crate::scheduler::{run_work_stealing, workers_for, SchedStats};
use crate::spec::{RunResult, RunSpec};
use flov_noc::network::KernelMode;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Salt mixed into every cache key. Bump this whenever a simulator or
/// power-model change alters results, so stale cache entries (same spec,
/// different behavior) stop matching.
///
/// v2: the synthetic workload switched from per-cycle Bernoulli draws to
/// geometric inter-arrival sampling — statistically the same process, but
/// a different RNG draw sequence, so every v1 result's injection timeline
/// differs. (The time-domain skip itself is result-neutral and needs no
/// salt: both kernel modes produce bit-identical results under v2.)
///
/// v3: `latency_percentiles` switched from bucket upper edges to lower
/// edges (the old convention overstated p50/p95/p99 by up to 2×), and
/// `RunSpec` grew the `audit` / `mech_switches` fields, which change
/// every spec's canonical serialization.
pub const KERNEL_VERSION: u32 = 3;

/// Cumulative accounting across every batch an engine has run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Specs submitted to `run_batch`, including duplicates.
    pub submitted: usize,
    /// Distinct specs after canonicalization.
    pub unique: usize,
    /// Unique specs served from the result cache.
    pub cached: usize,
    /// Unique specs actually simulated.
    pub simulated: usize,
}

/// `FLOV_QUIET` set to anything non-empty except `0` silences progress.
fn quiet_from_env() -> bool {
    std::env::var("FLOV_QUIET").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// Demote or trim a run's requested in-run tiling against current batch
/// load: `live` not-yet-finished runs sharing `workers` cores. Only the
/// parallel kernel is affected, and only downward — a run never gets more
/// tiles than it asked for.
fn arbitrate(requested: KernelMode, live: usize, workers: usize) -> KernelMode {
    match requested {
        KernelMode::Parallel { tiles, grid } if tiles > 1 => {
            if live >= workers {
                // Saturated: one core per run, zero tiling overhead.
                return KernelMode::ActiveSet;
            }
            let share = (workers / live.max(1)).max(1);
            let t = tiles.min(share);
            if t <= 1 {
                KernelMode::ActiveSet
            } else if t == tiles {
                // Full grant: keep any explicitly pinned geometry.
                KernelMode::Parallel { tiles, grid }
            } else {
                // Partial grant: let the planner re-fit the smaller budget.
                KernelMode::Parallel { tiles: t, grid: None }
            }
        }
        other => other,
    }
}

/// See the module docs. Construct with [`Engine::new`] (caching, default
/// directory), [`Engine::with_cache_dir`], [`Engine::with_cache`], or
/// [`Engine::without_cache`].
pub struct Engine {
    cache: Option<ResultCache>,
    kernel_version: u32,
    verbose: bool,
    submitted: AtomicUsize,
    unique: AtomicUsize,
    cached: AtomicUsize,
    simulated: AtomicUsize,
    /// Scheduling counters from the most recent batch's compute phase.
    last_sched: Mutex<Option<SchedStats>>,
}

impl Default for Engine {
    fn default() -> Self {
        Engine::new()
    }
}

impl Engine {
    /// Caching engine rooted at [`ResultCache::default_dir`]
    /// (`$FLOV_CACHE_DIR` or `results/cache`), with progress output
    /// (unless `FLOV_QUIET` is set).
    pub fn new() -> Engine {
        Engine::with_cache_dir(ResultCache::default_dir())
    }

    /// Caching engine rooted at `dir`, with progress output (unless
    /// `FLOV_QUIET` is set).
    pub fn with_cache_dir(dir: impl Into<PathBuf>) -> Engine {
        Engine::with_cache(ResultCache::new(dir))
    }

    /// Caching engine over an explicitly configured cache (format,
    /// legacy layout, shared index).
    pub fn with_cache(cache: ResultCache) -> Engine {
        Engine {
            cache: Some(cache),
            kernel_version: KERNEL_VERSION,
            verbose: !quiet_from_env(),
            submitted: AtomicUsize::new(0),
            unique: AtomicUsize::new(0),
            cached: AtomicUsize::new(0),
            simulated: AtomicUsize::new(0),
            last_sched: Mutex::new(None),
        }
    }

    /// Engine that always simulates and never touches the filesystem;
    /// silent. Used by tests, benches, and `--no-cache`.
    pub fn without_cache() -> Engine {
        Engine {
            cache: None,
            kernel_version: KERNEL_VERSION,
            verbose: false,
            submitted: AtomicUsize::new(0),
            unique: AtomicUsize::new(0),
            cached: AtomicUsize::new(0),
            simulated: AtomicUsize::new(0),
            last_sched: Mutex::new(None),
        }
    }

    /// Override the cache-key salt (tests exercise invalidation with this).
    pub fn with_kernel_version(mut self, v: u32) -> Engine {
        self.kernel_version = v;
        self
    }

    /// Suppress the stderr progress line and batch summary.
    pub fn quiet(mut self) -> Engine {
        self.verbose = false;
        self
    }

    /// Re-enable progress output (e.g. on a `without_cache` engine).
    pub fn verbose(mut self) -> Engine {
        self.verbose = true;
        self
    }

    /// The cache this engine reads and writes, if any.
    pub fn cache(&self) -> Option<&ResultCache> {
        self.cache.as_ref()
    }

    /// Cumulative stats across every batch run so far.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            submitted: self.submitted.load(Ordering::Relaxed),
            unique: self.unique.load(Ordering::Relaxed),
            cached: self.cached.load(Ordering::Relaxed),
            simulated: self.simulated.load(Ordering::Relaxed),
        }
    }

    /// Scheduling counters (workers, steals, occupancy) from the most
    /// recent batch that simulated anything; `None` before that.
    pub fn sched_stats(&self) -> Option<SchedStats> {
        *self.last_sched.lock().expect("sched stats lock")
    }

    /// Convenience for a single spec.
    pub fn run_one(&self, spec: &RunSpec) -> RunResult {
        self.run_batch(std::slice::from_ref(spec)).pop().expect("one spec in, one result out")
    }

    /// Execute a batch: one result per submitted spec, in submission
    /// order. Duplicate specs are simulated once; cache hits are served
    /// without simulating; fresh results are persisted before return.
    pub fn run_batch(&self, specs: &[RunSpec]) -> Vec<RunResult> {
        if specs.is_empty() {
            return Vec::new();
        }
        let batch_start = std::time::Instant::now();
        let resolved: Vec<RunSpec> = specs.iter().map(|s| s.resolved()).collect();
        let keys: Vec<String> = resolved
            .iter()
            .map(|s| {
                let json = serde_json::to_string(s).expect("spec serializes");
                ResultCache::key(&json, self.kernel_version)
            })
            .collect();

        // Deduplicate by content address, keeping first-seen order.
        let mut slot_by_key: HashMap<&str, usize> = HashMap::new();
        let mut assignment = Vec::with_capacity(specs.len());
        let mut uniques: Vec<usize> = Vec::new();
        for (i, key) in keys.iter().enumerate() {
            let slot = *slot_by_key.entry(key).or_insert_with(|| {
                uniques.push(i);
                uniques.len() - 1
            });
            assignment.push(slot);
        }

        // Probe the cache across the scheduler — each probe is one
        // indexed read+decode, and a large fully-cached batch would
        // otherwise be single-thread-bound. Results come back in slot
        // order, so the miss list is deterministic.
        let progress = Progress::new(uniques.len(), self.verbose);
        let (probed, _) =
            run_work_stealing(uniques.len(), workers_for(uniques.len()), |slot, _| {
                let i = uniques[slot];
                let hit = self.cache.as_ref().and_then(|c| c.get(&keys[i], self.kernel_version));
                if hit.is_some() {
                    progress.tick(true);
                }
                hit
            });
        let mut slots: Vec<Option<RunResult>> = probed;
        let misses: Vec<usize> = (0..uniques.len()).filter(|&slot| slots[slot].is_none()).collect();
        let n_cached = uniques.len() - misses.len();

        // Simulate the misses over the work-stealing scheduler; each job
        // re-arbitrates its kernel against the live-job count at start.
        let requested_kernel = crate::kernel_from_env();
        let workers = workers_for(misses.len());
        let (computed, sched) = run_work_stealing(misses.len(), workers, |j, ctx| {
            let i = uniques[misses[j]];
            let kernel = arbitrate(requested_kernel, ctx.live_jobs(), ctx.workers);
            let result = crate::run_kernel(&resolved[i], kernel);
            if let Some(cache) = &self.cache {
                let entry = CacheEntry {
                    kernel_version: self.kernel_version,
                    spec: resolved[i].clone(),
                    result: result.clone(),
                };
                if let Err(e) = cache.put(&keys[i], &entry) {
                    eprintln!("[flov] warning: could not persist {}: {e}", &keys[i]);
                }
            }
            progress.tick(false);
            result
        });
        if !misses.is_empty() {
            *self.last_sched.lock().expect("sched stats lock") = Some(sched);
        }
        let sim_cycles: u64 = computed.iter().map(|r| r.runtime_cycles).sum();
        for (&slot, result) in misses.iter().zip(computed) {
            slots[slot] = Some(result);
        }
        progress.clear_line();

        self.submitted.fetch_add(specs.len(), Ordering::Relaxed);
        self.unique.fetch_add(uniques.len(), Ordering::Relaxed);
        self.cached.fetch_add(n_cached, Ordering::Relaxed);
        self.simulated.fetch_add(misses.len(), Ordering::Relaxed);
        if self.verbose {
            // Keep this line's shape stable: CI greps it to assert hit
            // rates. New fields go at the end, after the grepped ones.
            let wall = batch_start.elapsed().as_secs_f64();
            // Under the parallel kernel, report the effective tile
            // geometry (requested vs planned) instead of clamping
            // silently; batches can mix topologies, hence the set.
            let geometry = match requested_kernel {
                KernelMode::Parallel { tiles, .. } if !uniques.is_empty() => {
                    let mut geoms: Vec<String> = uniques
                        .iter()
                        .filter_map(|&i| {
                            let cfg = &resolved[i].cfg;
                            requested_kernel.planned_grid(cfg.kx(), cfg.ky())
                        })
                        .map(|(r, c)| format!("{r}x{c}"))
                        .collect();
                    geoms.sort();
                    geoms.dedup();
                    format!(", parallel tiles {} ({tiles} requested)", geoms.join("|"))
                }
                _ => String::new(),
            };
            let sched_note = if misses.is_empty() {
                String::new()
            } else {
                format!(
                    ", {} workers ({:.0}% busy, {} steals)",
                    sched.workers,
                    sched.occupancy() * 100.0,
                    sched.steals,
                )
            };
            eprintln!(
                "[flov] engine: {} specs ({} unique): {} cached, {} simulated, \
                 {wall:.1}s wall, {:.0} sim-cycles/sec{geometry}{sched_note}",
                specs.len(),
                uniques.len(),
                n_cached,
                misses.len(),
                if wall > 0.0 { sim_cycles as f64 / wall } else { 0.0 },
            );
        }

        // Hand each slot's result to its last user without cloning — a
        // dense timeline makes RunResult a multi-kilobyte value, and the
        // common case is one submission per unique spec.
        let mut last_use: Vec<usize> = vec![usize::MAX; slots.len()];
        for (i, &slot) in assignment.iter().enumerate() {
            last_use[slot] = i;
        }
        assignment
            .iter()
            .enumerate()
            .map(|(i, &slot)| {
                if last_use[slot] == i {
                    slots[slot].take().expect("every unique slot filled")
                } else {
                    slots[slot].clone().expect("every unique slot filled")
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(mech: &str, fraction: f64) -> RunSpec {
        RunSpec::builder()
            .mechanism(mech)
            .k(4)
            .gated_fraction(fraction)
            .warmup(500)
            .cycles(3_000)
            .drain(10_000)
            .build()
    }

    #[test]
    fn dedup_simulates_each_unique_spec_once() {
        let e = Engine::without_cache();
        let specs =
            vec![tiny("gFLOV", 0.0), tiny("gFLOV", 0.5), tiny("gFLOV", 0.0), tiny("gFLOV", 0.0)];
        let results = e.run_batch(&specs);
        assert_eq!(results.len(), 4);
        let s = e.stats();
        assert_eq!(s, EngineStats { submitted: 4, unique: 2, cached: 0, simulated: 2 });
        // Duplicates get the same numbers, in submission order.
        assert_eq!(results[0].avg_latency, results[2].avg_latency);
        assert_eq!(results[0].packets, results[3].packets);
        assert_ne!(results[0].power.static_w, results[1].power.static_w);
    }

    #[test]
    fn batch_preserves_submission_order() {
        let e = Engine::without_cache();
        let specs: Vec<RunSpec> =
            ["Baseline", "RP", "gFLOV"].iter().map(|m| tiny(m, 0.4)).collect();
        let results = e.run_batch(&specs);
        let mechs: Vec<&str> = results.iter().map(|r| r.mechanism.as_str()).collect();
        assert_eq!(mechs, ["Baseline", "RP", "gFLOV"]);
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let e = Engine::without_cache();
        assert!(e.run_batch(&[]).is_empty());
        assert_eq!(e.stats(), EngineStats::default());
    }

    #[test]
    fn batch_records_scheduler_stats() {
        let e = Engine::without_cache();
        assert!(e.sched_stats().is_none());
        let specs: Vec<RunSpec> = (0..4).map(|i| tiny("gFLOV", i as f64 * 0.1)).collect();
        e.run_batch(&specs);
        let s = e.sched_stats().expect("compute phase ran");
        assert_eq!(s.jobs, 4);
        assert!(s.workers >= 1);
        assert!(s.occupancy() > 0.0 && s.occupancy() <= 1.0);
    }

    #[test]
    fn arbitrate_demotes_under_load_and_grants_on_drain() {
        let req = KernelMode::Parallel { tiles: 8, grid: None };
        // Saturated batch: every run single-threaded.
        assert_eq!(arbitrate(req, 16, 8), KernelMode::ActiveSet);
        assert_eq!(arbitrate(req, 8, 8), KernelMode::ActiveSet);
        // Draining: the share grows; never beyond the request.
        assert_eq!(arbitrate(req, 4, 8), KernelMode::Parallel { tiles: 2, grid: None });
        assert_eq!(arbitrate(req, 1, 8), KernelMode::Parallel { tiles: 8, grid: None });
        let pinned = KernelMode::Parallel { tiles: 4, grid: Some((2, 2)) };
        // Full grant keeps a pinned geometry; partial grant re-plans.
        assert_eq!(arbitrate(pinned, 1, 8), pinned);
        assert_eq!(arbitrate(pinned, 2, 8), KernelMode::Parallel { tiles: 4, grid: Some((2, 2)) });
        assert_eq!(arbitrate(pinned, 3, 8), KernelMode::Parallel { tiles: 2, grid: None });
        // Non-parallel kernels pass through untouched.
        assert_eq!(arbitrate(KernelMode::ActiveSet, 1, 8), KernelMode::ActiveSet);
        assert_eq!(arbitrate(KernelMode::Reference, 1, 8), KernelMode::Reference);
    }

    #[test]
    fn arbitration_never_changes_results() {
        // The same batch, saturated (ActiveSet) vs fully granted parallel
        // tiles, must be bit-identical — the kernel-equivalence guarantee
        // the arbiter relies on.
        let spec = tiny("rFLOV", 0.3);
        let a = crate::run_kernel(
            &spec,
            arbitrate(KernelMode::Parallel { tiles: 4, grid: None }, 16, 4),
        );
        let b = crate::run_kernel(
            &spec,
            arbitrate(KernelMode::Parallel { tiles: 4, grid: None }, 1, 4),
        );
        assert_eq!(a.avg_latency, b.avg_latency);
        assert_eq!(a.packets, b.packets);
        assert_eq!(a.power.total_w, b.power.total_w);
    }
}
