//! Property tests for the Router Parking routing substrate: for *arbitrary*
//! parked sets produced by the parking selector, the up*/down* tables must
//! route every pair in the keep component, never cross a parked router,
//! never loop, and never take an up move after a down move.

use flov_core::rp::parking::{self, ParkPolicy};
use flov_core::rp::updown;
use flov_noc::rng::Rng;
use flov_noc::types::{Coord, NodeId, Port};
use proptest::prelude::*;

fn random_keep(kx: u16, ky: u16, keep_count: usize, seed: u64) -> Vec<bool> {
    let n = (kx as usize) * (ky as usize);
    let mut rng = Rng::new(seed);
    let mut ids: Vec<usize> = (0..n).collect();
    rng.shuffle(&mut ids);
    let mut keep = vec![false; n];
    for &i in ids.iter().take(keep_count.max(1)) {
        keep[i] = true;
    }
    keep
}

fn check_tables(kx: u16, ky: u16, keep: &[bool], policy: ParkPolicy) {
    let parked = parking::select_parked(kx, ky, keep, policy);
    let on: Vec<bool> = parked.iter().map(|&p| !p).collect();
    let table = updown::build_table(kx, ky, &on);
    let n = (kx as usize) * (ky as usize);
    let level = updown::component_levels(kx, ky, &on);
    for s in 0..n as NodeId {
        for d in 0..n as NodeId {
            if s == d || !keep[s as usize] || !keep[d as usize] {
                continue;
            }
            // Keep nodes are mutually connected by construction, so the
            // table must route them.
            let mut cur = s;
            let mut hops = 0u32;
            let mut went_down = false;
            while cur != d {
                let e = table[cur as usize * n + d as usize];
                assert_ne!(e, updown::NO_ROUTE, "no route {s}->{d} at {cur}");
                let dir = Port::from_index(e as usize).dir().expect("local mid-route");
                let next =
                    flov_noc::topology::grid_step(Coord { x: cur % kx, y: cur / kx }, dir, kx, ky)
                        .map(|c| c.y * kx + c.x)
                        .expect("walked off grid");
                assert!(on[next as usize], "route {s}->{d} crosses parked {next}");
                let up = updown::hop_is_up(&level, cur, next);
                assert!(!(up && went_down), "up after down on {s}->{d} at {cur}");
                if !up {
                    went_down = true;
                }
                cur = next;
                hops += 1;
                assert!(hops <= 4 * n as u32, "loop on {s}->{d}");
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 40, ..ProptestConfig::default() })]

    #[test]
    fn aggressive_tables_route_all_keep_pairs(
        keep_count in 1usize..30,
        seed in 0u64..1_000_000,
    ) {
        check_tables(8, 8, &random_keep(8, 8, keep_count, seed), ParkPolicy::Aggressive);
    }

    #[test]
    fn spread_tables_route_all_keep_pairs(
        keep_count in 1usize..30,
        seed in 0u64..1_000_000,
    ) {
        check_tables(8, 8, &random_keep(8, 8, keep_count, seed), ParkPolicy::Spread);
    }

    #[test]
    fn smaller_meshes_work_too(
        k in 2u16..6,
        seed in 0u64..100_000,
    ) {
        let n = (k as usize) * (k as usize);
        check_tables(k, k, &random_keep(k, k, n / 3, seed), ParkPolicy::Aggressive);
    }

    #[test]
    fn rectangular_grids_work_too(
        kx in 2u16..7,
        ky in 2u16..5,
        seed in 0u64..100_000,
    ) {
        let n = (kx as usize) * (ky as usize);
        check_tables(kx, ky, &random_keep(kx, ky, n / 3, seed), ParkPolicy::Aggressive);
    }

    #[test]
    fn parking_never_parks_keep_nodes(
        keep_count in 1usize..40,
        seed in 0u64..1_000_000,
    ) {
        let keep = random_keep(8, 8, keep_count, seed);
        for policy in [ParkPolicy::Aggressive, ParkPolicy::Spread] {
            let parked = parking::select_parked(8, 8, &keep, policy);
            for i in 0..64 {
                prop_assert!(!(keep[i] && parked[i]), "keep node {i} parked");
            }
        }
    }

    #[test]
    fn aggressive_parks_at_least_as_much_as_spread(
        keep_count in 1usize..40,
        seed in 0u64..1_000_000,
    ) {
        let keep = random_keep(8, 8, keep_count, seed);
        let agg = parking::select_parked(8, 8, &keep, ParkPolicy::Aggressive)
            .iter().filter(|&&p| p).count();
        let spr = parking::select_parked(8, 8, &keep, ParkPolicy::Spread)
            .iter().filter(|&&p| p).count();
        prop_assert!(agg >= spr, "aggressive {agg} < spread {spr}");
    }
}
