//! The partition-based dynamic routing algorithm (paper §V), for regular
//! VCs and for the escape sub-network.
//!
//! Regular VCs: straight partitions forward directly (FLOV links guarantee
//! the destination is reachable along the line); quadrant partitions prefer
//! the Y neighbor (YX order) if powered, else the X neighbor if powered and
//! not the input port, else fall back East toward the always-on column. The
//! packet never turns back out the port it arrived on; when no legal output
//! exists the packet stalls (and the escape timeout eventually diverts it).
//!
//! Escape sub-network: straight partitions forward directly; quadrant
//! partitions go East until the always-on column, turn toward the
//! destination row, then go West — using only the turns
//! {E->N, E->S, N->W, S->W}, which contain no cycle (Fig. 4b), so the
//! escape network is deadlock-free.

use crate::partition::Partition;
use flov_noc::routing::RouteCtx;
use flov_noc::types::{Dir, Port};

/// Route a regular-VC head flit. `None` stalls the packet for this cycle.
pub fn flov_route_regular(ctx: &RouteCtx) -> Option<Port> {
    let Some(p) = Partition::of(ctx.at, ctx.dst) else {
        return Some(Port::Local);
    };
    if let Some(d) = p.straight_dir() {
        // Straight: forward directly; FLOV links carry the packet over any
        // power-gated routers on the line.
        debug_assert!(ctx.neighbor_exists(d));
        return Some(Port::from_dir(d));
    }
    let y = p.quadrant_y().expect("quadrant partition");
    let x = p.quadrant_x().expect("quadrant partition");
    debug_assert!(ctx.neighbor_exists(y) && ctx.neighbor_exists(x));
    if ctx.neighbor_powered(y) {
        // YX preference: the turn will happen at (or beyond) this powered
        // router.
        return Some(Port::from_dir(y));
    }
    let xp = Port::from_dir(x);
    if ctx.neighbor_powered(x) && xp != ctx.in_port {
        return Some(xp);
    }
    // Both turn candidates unusable: head East toward the always-on column,
    // where a turn is guaranteed to be possible — unless that would be a
    // U-turn, in which case stall.
    if ctx.neighbor_exists(Dir::East) && ctx.in_port != Port::East {
        return Some(Port::East);
    }
    None
}

/// Route an escape-VC head flit. Deterministic and deadlock-free; never
/// stalls. May return the input port only on the first escape hop (the
/// diversion itself), never afterwards (see module docs).
pub fn flov_route_escape(ctx: &RouteCtx) -> Option<Port> {
    let Some(p) = Partition::of(ctx.at, ctx.dst) else {
        return Some(Port::Local);
    };
    if let Some(d) = p.straight_dir() {
        return Some(Port::from_dir(d));
    }
    // Quadrant: East toward the AON column; once there (no East neighbor or
    // the AON boundary), move in Y toward the destination row.
    if ctx.neighbor_exists(Dir::East) {
        Some(Port::East)
    } else {
        let y = p.quadrant_y().expect("quadrant partition");
        Some(Port::from_dir(y))
    }
}

/// Combined FLOV routing entry point.
pub fn flov_route(ctx: &RouteCtx) -> Option<Port> {
    if ctx.escape {
        flov_route_escape(ctx)
    } else {
        flov_route_regular(ctx)
    }
}

/// The set of (in, out) direction pairs the escape routing is allowed to
/// take (paper Fig. 4b). `in` is the direction of travel when *entering*
/// the router, `out` when leaving.
pub const ESCAPE_ALLOWED_TURNS: [(Dir, Dir); 4] = [
    (Dir::East, Dir::North),
    (Dir::East, Dir::South),
    (Dir::North, Dir::West),
    (Dir::South, Dir::West),
];

/// True if travelling `t_in` then `t_out` is legal in the escape network
/// (straight moves are always legal; U-turns and the turns outside
/// [`ESCAPE_ALLOWED_TURNS`] are not).
pub fn escape_turn_legal(t_in: Dir, t_out: Dir) -> bool {
    t_in == t_out || ESCAPE_ALLOWED_TURNS.contains(&(t_in, t_out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use flov_noc::types::{Coord, PowerState};

    fn ctx(at: (u16, u16), dst: (u16, u16), in_port: Port, escape: bool) -> RouteCtx {
        ctx_with(at, dst, in_port, escape, [Some(PowerState::Active); 4])
    }

    fn ctx_with(
        at: (u16, u16),
        dst: (u16, u16),
        in_port: Port,
        escape: bool,
        mut neighbors: [Option<PowerState>; 4],
    ) -> RouteCtx {
        let k = 8;
        let atc = Coord::new(at.0, at.1);
        for d in Dir::ALL {
            if atc.neighbor(d, k).is_none() {
                neighbors[d.index()] = None;
            }
        }
        RouteCtx {
            kx: k,
            ky: k,
            torus: false,
            at: atc,
            in_port,
            dst: Coord::new(dst.0, dst.1),
            escape,
            neighbors,
        }
    }

    #[test]
    fn straight_partitions_forward_directly_even_when_gated() {
        let mut n = [Some(PowerState::Active); 4];
        n[Dir::East.index()] = Some(PowerState::Sleep);
        let c = ctx_with((2, 2), (6, 2), Port::Local, false, n);
        assert_eq!(flov_route_regular(&c), Some(Port::East)); // paper Fig. 5(a)
    }

    #[test]
    fn quadrant_prefers_y_when_powered() {
        let c = ctx((2, 2), (5, 5), Port::Local, false);
        assert_eq!(flov_route_regular(&c), Some(Port::North));
    }

    #[test]
    fn quadrant_takes_x_when_y_gated() {
        // Paper Fig. 5(b): Y-direction router gated, X powered.
        let mut n = [Some(PowerState::Active); 4];
        n[Dir::South.index()] = Some(PowerState::Sleep);
        let c = ctx_with((1, 2), (4, 0), Port::Local, false, n);
        assert_eq!(flov_route_regular(&c), Some(Port::East));
    }

    #[test]
    fn quadrant_falls_back_east_when_both_gated() {
        let mut n = [Some(PowerState::Active); 4];
        n[Dir::North.index()] = Some(PowerState::Sleep);
        n[Dir::West.index()] = Some(PowerState::Sleep);
        let c = ctx_with((2, 2), (0, 5), Port::Local, false, n);
        assert_eq!(flov_route_regular(&c), Some(Port::East));
    }

    #[test]
    fn never_returns_to_arrival_port() {
        // Paper Fig. 5(c) at "Router 6": dst NW, Y gated, came from West —
        // cannot go back West, so East.
        let mut n = [Some(PowerState::Active); 4];
        n[Dir::North.index()] = Some(PowerState::Sleep);
        let c = ctx_with((2, 2), (1, 5), Port::West, false, n);
        assert_eq!(flov_route_regular(&c), Some(Port::East));
    }

    #[test]
    fn stalls_when_only_option_is_uturn() {
        // Arrived from East, dst NW, Y and X both gated: East fallback
        // would be a U-turn, so stall.
        let mut n = [Some(PowerState::Active); 4];
        n[Dir::North.index()] = Some(PowerState::Sleep);
        n[Dir::West.index()] = Some(PowerState::Sleep);
        let c = ctx_with((2, 2), (1, 5), Port::East, false, n);
        assert_eq!(flov_route_regular(&c), None);
    }

    #[test]
    fn draining_neighbor_counts_as_powered_for_turns() {
        let mut n = [Some(PowerState::Active); 4];
        n[Dir::North.index()] = Some(PowerState::Draining);
        let c = ctx_with((2, 2), (5, 5), Port::Local, false, n);
        assert_eq!(flov_route_regular(&c), Some(Port::North));
    }

    #[test]
    fn escape_quadrants_go_east() {
        let c = ctx((2, 2), (0, 5), Port::South, true);
        assert_eq!(flov_route_escape(&c), Some(Port::East));
    }

    #[test]
    fn escape_turns_y_at_aon_column() {
        let c = ctx((7, 2), (3, 6), Port::West, true);
        assert_eq!(flov_route_escape(&c), Some(Port::North));
        let c2 = ctx((7, 6), (3, 2), Port::West, true);
        assert_eq!(flov_route_escape(&c2), Some(Port::South));
    }

    #[test]
    fn escape_goes_west_in_destination_row() {
        let c = ctx((7, 4), (3, 4), Port::North, true);
        assert_eq!(flov_route_escape(&c), Some(Port::West));
    }

    #[test]
    fn escape_route_reaches_destination_with_legal_turns_only() {
        // Walk the escape route (ignoring power states, as escape routing
        // does) from every source to every destination; verify delivery and
        // the Fig. 4b turn discipline after the first hop.
        let k = 8u16;
        for s in 0..64u16 {
            for d in 0..64u16 {
                if s == d {
                    continue;
                }
                let mut at = Coord::of(s, k);
                let dst = Coord::of(d, k);
                let mut travel: Option<Dir> = None;
                let mut hops = 0;
                loop {
                    let c = RouteCtx {
                        kx: k,
                        ky: k,
                        torus: false,
                        at,
                        in_port: travel.map_or(Port::Local, |t| Port::from_dir(t.opposite())),
                        dst,
                        escape: true,
                        neighbors: std::array::from_fn(|i| {
                            at.neighbor(Dir::from_index(i), k).map(|_| PowerState::Active)
                        }),
                    };
                    let out = flov_route_escape(&c).unwrap();
                    if out == Port::Local {
                        break;
                    }
                    let t_out = out.dir().unwrap();
                    if let Some(t_in) = travel {
                        assert!(
                            escape_turn_legal(t_in, t_out),
                            "illegal escape turn {t_in:?}->{t_out:?} at {at:?} toward {dst:?}"
                        );
                    }
                    at = at.neighbor(t_out, k).expect("escape walked off the mesh");
                    travel = Some(t_out);
                    hops += 1;
                    assert!(hops <= 30, "escape route too long from {s} to {d}");
                }
                assert_eq!(at, dst);
            }
        }
    }

    #[test]
    fn escape_turn_set_has_no_cycle() {
        // A routing turn set permits deadlock only if it can close a cycle:
        // check all 4-turn direction cycles (both rotations) need a turn we
        // forbid.
        let cw = [Dir::North, Dir::East, Dir::South, Dir::West];
        let ccw = [Dir::North, Dir::West, Dir::South, Dir::East];
        for cyc in [cw, ccw] {
            let mut all_legal = true;
            for i in 0..4 {
                if !escape_turn_legal(cyc[i], cyc[(i + 1) % 4]) {
                    all_legal = false;
                }
            }
            assert!(!all_legal, "escape turns permit a cycle {cyc:?}");
        }
    }

    #[test]
    fn regular_route_delivers_on_fully_powered_mesh() {
        // With everything powered, the dynamic routing degenerates to
        // minimal YX.
        let k = 8u16;
        for s in 0..64u16 {
            for d in 0..64u16 {
                if s == d {
                    continue;
                }
                let mut at = Coord::of(s, k);
                let dst = Coord::of(d, k);
                let mut in_port = Port::Local;
                let mut hops = 0;
                loop {
                    let c = RouteCtx {
                        kx: k,
                        ky: k,
                        torus: false,
                        at,
                        in_port,
                        dst,
                        escape: false,
                        neighbors: std::array::from_fn(|i| {
                            at.neighbor(Dir::from_index(i), k).map(|_| PowerState::Active)
                        }),
                    };
                    let out = flov_route_regular(&c).unwrap();
                    if out == Port::Local {
                        break;
                    }
                    let t = out.dir().unwrap();
                    at = at.neighbor(t, k).unwrap();
                    in_port = Port::from_dir(t.opposite());
                    hops += 1;
                    assert!(hops <= 14);
                }
                assert_eq!(at, dst);
                assert_eq!(hops, Coord::of(s, k).manhattan(dst), "not minimal");
            }
        }
    }
}
