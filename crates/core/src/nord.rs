//! NoRD — node-router decoupling (Chen & Pinkston, MICRO'12), the second
//! prior-art power-gating scheme the paper discusses: every node keeps a
//! bypass connecting its injection/ejection channels into a Hamiltonian
//! ring (`flov_noc::ring`), so a router can gate *regardless of adjacency
//! or connectivity* — packets from/to gated nodes ride the ring.
//!
//! Model (simplifications documented in DESIGN.md):
//! * gating policy: a router drains when its core is gated and the local
//!   port is idle; it wakes when its core reactivates (deliveries
//!   never need a wakeup — the ring reaches every NIC) or when ring-exit
//!   flits are stranded in its mesh-transfer queue: the ring freezes a
//!   flit's mesh-entry node at ingress, so the node can gate between
//!   ingress and arrival, and only powering the router back up can move
//!   the queued flits into the mesh;
//! * mesh routing between powered routers uses up*/down* tables over the
//!   powered subgraph, rebuilt instantly on power changes (generous to
//!   NoRD: its distributed reconfiguration cost is not charged);
//! * a packet to a gated destination D leaves the mesh at `proxy(D)` — the
//!   nearest powered node ring-upstream of D — and rides the ring to D's
//!   bypass ejection; a packet from a gated source rides the ring to the
//!   first powered node and enters the mesh there;
//! * when the mesh cannot help (no route / nothing powered), the ring
//!   alone delivers — NoRD's connectivity guarantee.

use crate::rp::updown;
use flov_noc::network::NetworkCore;
use flov_noc::routing::RouteCtx;
use flov_noc::traits::{PowerMechanism, PowerView};
use flov_noc::types::{Cycle, NodeId, Port, PowerState};
use flov_noc::Topology;

/// Per-router controller state.
#[derive(Clone, Copy, Debug, Default)]
struct NodeCtl {
    drain_since: Cycle,
    stable: u32,
    ramp: u32,
    /// Earliest cycle the next drain attempt may start (backoff after a
    /// timed-out drain, so blocked traffic can clear).
    retry_after: Cycle,
}

/// The NoRD mechanism. Requires `cfg.enable_ring` (and therefore a topology
/// that admits a Hamiltonian cycle — see `NocConfig::validate`).
pub struct Nord {
    /// Idle threshold before draining.
    pub idle_threshold: u32,
    /// Drain give-up timeout.
    pub drain_timeout: u32,
    /// Handshake window (conditions must hold this long).
    pub handshake_rtt: u32,
    ctl: Vec<NodeCtl>,
    /// Ring predecessor map (for proxy computation).
    pred: Vec<NodeId>,
    /// up*/down* next hops over the powered subgraph.
    table: Vec<u8>,
    /// Power snapshot the table was built for.
    snapshot: Vec<PowerState>,
    wake_buf: Vec<NodeId>,
}

impl Nord {
    pub fn new(cfg: &flov_noc::NocConfig) -> Nord {
        assert!(cfg.enable_ring, "NoRD requires cfg.enable_ring");
        let topo = cfg.build_topology();
        let succ = topo
            .ring_successors()
            .expect("NoRD bypass ring requires a Hamiltonian topology (see NocConfig::validate)");
        let n = cfg.nodes();
        let mut pred = vec![0 as NodeId; n];
        for (a, &b) in succ.iter().enumerate() {
            pred[b as usize] = a as NodeId;
        }
        Nord {
            idle_threshold: cfg.idle_threshold,
            drain_timeout: 256,
            handshake_rtt: 2,
            ctl: vec![NodeCtl::default(); n],
            pred,
            table: updown::build_table(cfg.kx(), cfg.ky(), &vec![true; n]),
            snapshot: vec![PowerState::Active; n],
            wake_buf: Vec::new(),
        }
    }

    /// Nearest powered node at or ring-upstream of `dst` (the mesh exit
    /// proxy for a gated destination). Returns `dst` itself if powered, or
    /// if nothing on the ring is powered.
    fn proxy(&self, net: &dyn PowerView, dst: NodeId) -> NodeId {
        let mut cur = dst;
        loop {
            if net.power(cur).is_powered() {
                return cur;
            }
            cur = self.pred[cur as usize];
            if cur == dst {
                return dst; // nothing powered: full ring delivery
            }
        }
    }

    fn rebuild_if_changed(&mut self, core: &NetworkCore) {
        let mut changed = false;
        for n in 0..core.nodes() {
            let p = core.power(n as NodeId);
            if self.snapshot[n] != p {
                self.snapshot[n] = p;
                changed = true;
            }
        }
        if changed {
            let on: Vec<bool> = self.snapshot.iter().map(|p| p.is_powered()).collect();
            self.table = updown::build_table(core.cfg.kx(), core.cfg.ky(), &on);
        }
    }
}

impl PowerMechanism for Nord {
    fn name(&self) -> &'static str {
        "NoRD"
    }

    fn step(&mut self, core: &mut NetworkCore) {
        // Exactly prologue + per-node scan in id order + epilogue — the
        // contract that lets the parallel kernel shard this step.
        self.control_prologue(core);
        for n in 0..core.nodes() as NodeId {
            self.control_node(core, n);
        }
        self.control_epilogue(core);
    }

    fn sharded_control(&self) -> bool {
        true
    }

    fn control_prologue(&mut self, core: &mut NetworkCore) {
        // Defensive: drain any wakeup requests (routing never targets
        // sleeping routers under NoRD, so these should not occur).
        let mut wake = std::mem::take(&mut self.wake_buf);
        core.take_wakeup_requests(&mut wake);
        self.wake_buf = wake;
    }

    fn control_quiet(&self, core: &NetworkCore, n: NodeId) -> bool {
        let now = core.cycle;
        match core.power(n) {
            // The neighbor-draining blocker is deliberately excluded: it
            // reads neighbor power states that a lower-id node may change
            // this phase, so `control_node` re-evaluates it at its serial
            // position. The remaining conditions are node-local.
            PowerState::Active => {
                !(!core.router_core_active(n)
                    && core.routers[n as usize].local_idle(now) >= self.idle_threshold as u64
                    && now >= self.ctl[n as usize].retry_after
                    && !core.nic_pending(n)
                    && !core.ring_transfer_pending(n))
            }
            // Mid-handshake FSMs tick their own control state every cycle.
            PowerState::Draining | PowerState::Wakeup => false,
            PowerState::Sleep => !(core.router_core_active(n) || core.ring_transfer_pending(n)),
        }
    }

    fn control_node(&mut self, core: &mut NetworkCore, n: NodeId) -> bool {
        let now = core.cycle;
        match core.power(n) {
            PowerState::Active => {
                let gated = !core.router_core_active(n);
                let idle = core.routers[n as usize].local_idle(now) >= self.idle_threshold as u64;
                // No AON column and no sleep-adjacency limit — but two
                // *physically adjacent* routers must not drain at the
                // same time (each would block the other's egress and
                // both drains would starve; the id-ordered scan
                // arbitrates simultaneous attempts).
                let neighbor_draining = flov_noc::types::Dir::ALL.iter().any(|&d| {
                    core.neighbor(n, d).is_some_and(|m| core.power(m) == PowerState::Draining)
                });
                if gated
                    && idle
                    && !neighbor_draining
                    && now >= self.ctl[n as usize].retry_after
                    && !core.nic_pending(n)
                    && !core.ring_transfer_pending(n)
                {
                    core.begin_drain(n);
                    let c = &mut self.ctl[n as usize];
                    c.drain_since = now;
                    c.stable = 0;
                    return true;
                }
                false
            }
            PowerState::Draining => {
                if core.router_core_active(n) || core.nic_pending(n) {
                    core.abort_drain(n);
                    return true;
                }
                if now - self.ctl[n as usize].drain_since > self.drain_timeout as u64 {
                    core.abort_drain(n);
                    // Back off: let the traffic this drain was blocking
                    // clear before trying again.
                    self.ctl[n as usize].retry_after = now + 4 * self.drain_timeout as u64;
                    return true;
                }
                let ready = core.routers[n as usize].is_drained()
                    && core.fully_quiescent(n)
                    && !core.ring_transfer_pending(n);
                let c = &mut self.ctl[n as usize];
                if ready {
                    c.stable += 1;
                    if c.stable >= self.handshake_rtt {
                        core.enter_sleep(n);
                        return true;
                    }
                } else {
                    c.stable = 0;
                }
                false
            }
            PowerState::Sleep => {
                // Wake for the core (deliveries ride the ring) — or for
                // ring-exit flits stranded in the transfer queue: the
                // ring froze their mesh-entry node at ingress and this
                // router gated before they arrived (see module docs).
                if core.router_core_active(n) || core.ring_transfer_pending(n) {
                    core.begin_wakeup(n);
                    let c = &mut self.ctl[n as usize];
                    c.ramp = core.cfg.wakeup_latency;
                    c.stable = 0;
                    return true;
                }
                false
            }
            PowerState::Wakeup => {
                let c = &mut self.ctl[n as usize];
                if c.ramp > 0 {
                    c.ramp -= 1;
                    return false;
                }
                let ready = core.routers[n as usize].latches_empty() && core.fully_quiescent(n);
                let c = &mut self.ctl[n as usize];
                if ready {
                    c.stable += 1;
                    if c.stable >= self.handshake_rtt {
                        core.complete_wakeup(n);
                        return true;
                    }
                } else {
                    c.stable = 0;
                }
                false
            }
        }
    }

    fn control_epilogue(&mut self, core: &mut NetworkCore) {
        self.rebuild_if_changed(core);
    }

    fn route(&self, net: &dyn PowerView, ctx: &RouteCtx) -> Option<Port> {
        let kx = ctx.kx;
        let at = ctx.at.y * kx + ctx.at.x;
        let dst = ctx.dst.y * kx + ctx.dst.x;
        if at == dst {
            return Some(Port::Local);
        }
        // Mesh target: the destination if powered, else its ring proxy.
        let target = if net.power(dst).is_powered() { dst } else { self.proxy(net, dst) };
        if target == at {
            // We are the proxy: eject to the bypass ring.
            return Some(Port::Local);
        }
        let n = net.nodes();
        let e = self.table[at as usize * n + target as usize];
        if e == updown::NO_ROUTE {
            // Mesh cannot reach the target (split powered subgraph): the
            // ring rescues — eject here and ride it the rest of the way.
            return Some(Port::Local);
        }
        let out = Port::from_index(e as usize);
        if out == ctx.in_port {
            // Power changes move the proxy and rebuild the up*/down* table
            // while packets are en route, so the fresh next hop can point
            // straight back where the flit came from. A mesh U-turn is
            // forbidden (livelock guard); let the ring rescue instead,
            // exactly like the NO_ROUTE case.
            return Some(Port::Local);
        }
        Some(out)
    }

    fn next_event(&self, core: &NetworkCore) -> Option<Cycle> {
        let now = core.cycle;
        let mut next: Option<Cycle> = None;
        for n in 0..core.nodes() as NodeId {
            match core.power(n) {
                // Mid-handshake FSMs count stable/ramp cycles every step.
                PowerState::Draining | PowerState::Wakeup => return Some(now),
                PowerState::Active => {
                    if core.router_core_active(n) {
                        continue;
                    }
                    // The neighbor-draining blocker is covered: a Draining
                    // neighbor pinned the horizon to `now` above.
                    let t = (core.routers[n as usize].last_local_activity
                        + self.idle_threshold as u64)
                        .max(self.ctl[n as usize].retry_after)
                        .max(now);
                    next = Some(next.map_or(t, |b| b.min(t)));
                }
                PowerState::Sleep => {
                    // Wakes when its core reactivates (a stepped workload
                    // event; an already-active core is transient) or when
                    // stranded ring transfers demand a flush — transfers
                    // only land while the ring is live, which also keeps
                    // the fabric non-quiescent, but pin the horizon anyway.
                    if core.router_core_active(n) || core.ring_transfer_pending(n) {
                        return Some(now);
                    }
                }
            }
        }
        next
    }

    fn audit_state(&self, core: &NetworkCore, report: &mut dyn FnMut(String)) {
        for n in 0..core.nodes() as NodeId {
            // No adjacency/AON constraints, but two physically adjacent
            // routers must never drain at once (each would starve the
            // other); the id-ordered scan guarantees this. Edges once.
            if core.power(n) == PowerState::Draining {
                for d in flov_noc::types::Dir::ALL {
                    if let Some(m) = core.neighbor(n, d) {
                        if m > n && core.power(m) == PowerState::Draining {
                            report(format!(
                                "NoRD arbitration: adjacent routers {n} and {m} both Draining"
                            ));
                        }
                    }
                }
            }
            // The up*/down* table is rebuilt at the end of every step, so
            // between steps its power snapshot mirrors the fabric.
            if self.snapshot[n as usize] != core.power(n) {
                report(format!(
                    "NoRD routing table is stale: snapshot says {:?} for router {n} but power \
                     is {:?}",
                    self.snapshot[n as usize],
                    core.power(n)
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flov_noc::network::Simulation;
    use flov_noc::traits::{PacketRequest, ScriptedWorkload};
    use flov_noc::NocConfig;

    fn cfg() -> NocConfig {
        NocConfig {
            k: 4,
            vnets: 1,
            enable_ring: true,
            watchdog_cycles: 20_000,
            ..NocConfig::default()
        }
    }

    fn gate_all_but(active: &[u16]) -> Vec<(u64, NodeId, bool)> {
        (0..16).filter(|n| !active.contains(n)).map(|n| (0u64, n, false)).collect()
    }

    #[test]
    fn odd_mesh_has_no_ring() {
        // The paper's critique of NoRD, as an API contract: an odd-radix
        // mesh admits no Hamiltonian cycle, so the config is rejected with
        // a structured error instead of a panic.
        let c = NocConfig { k: 5, enable_ring: true, ..NocConfig::default() };
        match flov_noc::network::NetworkCore::try_new(c) {
            Err(flov_noc::ConfigError::RingUnsupported { topology }) => {
                assert_eq!(topology, "mesh5x5");
            }
            Err(other) => panic!("expected RingUnsupported, got {other:?}"),
            Ok(_) => panic!("odd-radix mesh ring config must not validate"),
        }
    }

    #[test]
    fn torus_admits_a_ring_at_odd_radix() {
        // The wrap links remove NoRD's even-radix restriction: a 5x5 torus
        // has a Hamiltonian cycle, so the same config validates once the
        // topology is a torus (with the escape VC the torus requires).
        let c = NocConfig {
            k: 5,
            enable_ring: true,
            topology: Some(flov_noc::TopologySpec::Torus { k: 5 }),
            ..NocConfig::default()
        };
        assert!(c.validate().is_ok());
        let _ = Nord::new(&c);
    }

    #[test]
    fn nord_gates_without_adjacency_or_aon_limits() {
        let c = cfg();
        let w = ScriptedWorkload::new(vec![]).with_core_events(gate_all_but(&[]));
        let mut sim = Simulation::new(c.clone(), Box::new(Nord::new(&c)), Box::new(w));
        sim.run(3_000);
        // Every single router sleeps — more than gFLOV (AON column) or
        // rFLOV (adjacency) can ever gate.
        let asleep = (0..16u16).filter(|&n| sim.core.power(n) == PowerState::Sleep).count();
        assert_eq!(asleep, 16, "NoRD should gate all routers of gated cores");
    }

    #[test]
    fn ring_delivers_between_gated_nodes() {
        // Source and destination both gated, everything else gated too:
        // pure ring delivery.
        let c = cfg();
        let gates = gate_all_but(&[]);
        let w = ScriptedWorkload::new(vec![(
            4_000,
            PacketRequest { src: 2, dst: 11, vnet: 0, len: 4 },
        )])
        .with_core_events(gates);
        let mut sim = Simulation::new(c.clone(), Box::new(Nord::new(&c)), Box::new(w));
        sim.run(3_500);
        assert!((0..16u16).all(|n| sim.core.power(n) == PowerState::Sleep));
        let end = sim.run_until_done(20_000);
        assert!(end < 20_000, "ring failed to deliver with all routers off");
        assert_eq!(sim.core.activity.packets_delivered, 1);
        assert!(sim.core.activity.ring_flits > 0);
        // No router woke up for the delivery.
        assert!((0..16u16).all(|n| sim.core.power(n) == PowerState::Sleep));
    }

    #[test]
    fn mesh_mixes_with_ring_for_gated_destination() {
        // Powered source, gated destination: mesh to the proxy, ring to D.
        let c = cfg();
        let gates = vec![(0u64, 10u16, false)];
        let w = ScriptedWorkload::new(vec![(
            2_000,
            PacketRequest { src: 0, dst: 10, vnet: 0, len: 4 },
        )])
        .with_core_events(gates);
        let mut sim = Simulation::new(c.clone(), Box::new(Nord::new(&c)), Box::new(w));
        sim.run(1_500);
        assert_eq!(sim.core.power(10), PowerState::Sleep);
        let end = sim.run_until_done(20_000);
        assert!(end < 20_000);
        assert_eq!(sim.core.activity.packets_delivered, 1);
        // Destination never woke (NoRD's defining property vs FLOV).
        assert_eq!(sim.core.power(10), PowerState::Sleep);
        assert!(sim.core.activity.ring_flits > 0);
    }

    #[test]
    fn gated_source_enters_mesh_at_first_powered_node() {
        let c = cfg();
        let gates = vec![(0u64, 5u16, false)];
        let w = ScriptedWorkload::new(vec![(
            2_000,
            PacketRequest { src: 5, dst: 15, vnet: 0, len: 4 },
        )])
        .with_core_events(gates);
        let mut sim = Simulation::new(c.clone(), Box::new(Nord::new(&c)), Box::new(w));
        sim.run(1_500);
        assert_eq!(sim.core.power(5), PowerState::Sleep);
        let end = sim.run_until_done(20_000);
        assert!(end < 20_000);
        assert_eq!(sim.core.activity.packets_delivered, 1);
        // The source stayed asleep: the bypass injected for it.
        assert_eq!(sim.core.power(5), PowerState::Sleep);
    }

    #[test]
    fn steady_traffic_under_heavy_gating() {
        let c = cfg();
        let gates = gate_all_but(&[0, 15]);
        let mut events = Vec::new();
        for i in 0..60u64 {
            events.push((2_000 + i * 23, PacketRequest { src: 0, dst: 15, vnet: 0, len: 4 }));
            events.push((2_000 + i * 29, PacketRequest { src: 15, dst: 0, vnet: 0, len: 4 }));
        }
        let w = ScriptedWorkload::new(events).with_core_events(gates);
        let mut sim = Simulation::new(c.clone(), Box::new(Nord::new(&c)), Box::new(w));
        let end = sim.run_until_done(60_000);
        assert!(end < 60_000);
        assert_eq!(sim.core.activity.packets_delivered, 120);
    }

    #[test]
    fn core_reactivation_wakes_router() {
        let c = cfg();
        let gates = vec![(0u64, 6u16, false), (4_000, 6, true)];
        let w = ScriptedWorkload::new(vec![]).with_core_events(gates);
        let mut sim = Simulation::new(c.clone(), Box::new(Nord::new(&c)), Box::new(w));
        sim.run(3_000);
        assert_eq!(sim.core.power(6), PowerState::Sleep);
        sim.run(3_000);
        assert_eq!(sim.core.power(6), PowerState::Active);
    }
}
