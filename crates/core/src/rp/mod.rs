//! Router Parking (Samih et al., HPCA'13) — the state-of-the-art baseline
//! the paper compares against, reimplemented from its description:
//!
//! * a centralized Fabric Manager (FM) watches core power states;
//! * on any change it runs a reconfiguration epoch: Phase I stalls all new
//!   injections network-wide (paper §VI-C measures this at >700 cycles),
//!   drains the fabric, parks/unparks routers, and distributes fresh
//!   routing tables;
//! * routing between powered routers uses deadlock-free up*/down* tables
//!   over the irregular active subgraph — non-minimal detours and routing
//!   hotspots are inherent, which is precisely the behavior FLOV improves on;
//! * parked routers are completely off: no FLOV latches, no fly-over.

pub mod parking;
pub mod updown;

pub use parking::ParkPolicy;

use flov_noc::network::NetworkCore;
use flov_noc::routing::RouteCtx;
use flov_noc::traits::{PowerMechanism, PowerView};
use flov_noc::types::{Cycle, NodeId, Port, PowerState};

/// Parking aggressiveness policy across the run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum RpMode {
    /// Always park as much as connectivity allows (the configuration the
    /// paper uses for the workload-independent static-power comparison).
    Aggressive,
    /// Watch the offered load; above `load_threshold` (flits/cycle/node)
    /// switch to spread parking, trading static power for latency (the
    /// behavior visible in the paper's Fig. 6 at 30% gated cores, 0.08
    /// injection).
    Adaptive { load_threshold: f64 },
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    Running,
    /// Phase I of the reconfiguration protocol: injections stalled. The
    /// parking policy is latched at stall entry — measured load collapses
    /// during the stall itself, so deciding at apply time would flap.
    Stalling {
        since: Cycle,
        policy: ParkPolicy,
    },
}

/// The Router Parking mechanism.
pub struct RouterParking {
    pub mode: RpMode,
    /// Minimum Phase-I duration in cycles (>700 per the paper).
    pub min_stall: u64,
    phase: Phase,
    /// The core-activity set the current configuration was built for.
    applied: Vec<bool>,
    table: Vec<u8>,
    parked: Vec<bool>,
    // Offered-load measurement for the adaptive mode.
    load_probe_cycle: Cycle,
    load_probe_flits: u64,
    measured_load: f64,
    /// Number of reconfigurations performed.
    pub reconfigs: u64,
    /// Recorded Phase-I windows `(start, end)` for the Fig. 10 analysis.
    pub stall_windows: Vec<(Cycle, Cycle)>,
    /// Parking policy the current configuration was built with.
    applied_policy: ParkPolicy,
    /// Earliest cycle at which a pure policy change (load shift without a
    /// core change) may trigger another reconfiguration — hysteresis
    /// against flapping, since the stall itself depresses measured load.
    policy_cooldown_until: Cycle,
}

impl RouterParking {
    pub fn new(cfg: &flov_noc::NocConfig, mode: RpMode) -> RouterParking {
        let n = cfg.nodes();
        RouterParking {
            mode,
            min_stall: 700,
            phase: Phase::Running,
            // Tracks the core-activity vector (core-space under CMesh).
            applied: vec![true; cfg.cores()],
            table: updown::build_table(cfg.kx(), cfg.ky(), &vec![true; n]),
            parked: vec![false; n],
            load_probe_cycle: 0,
            load_probe_flits: 0,
            measured_load: 0.0,
            reconfigs: 0,
            stall_windows: Vec::new(),
            applied_policy: ParkPolicy::Aggressive,
            policy_cooldown_until: 0,
        }
    }

    /// Aggressive RP with defaults.
    pub fn aggressive(cfg: &flov_noc::NocConfig) -> RouterParking {
        RouterParking::new(cfg, RpMode::Aggressive)
    }

    /// Adaptive RP with the default load threshold (0.05 flits/cycle/node).
    pub fn adaptive(cfg: &flov_noc::NocConfig) -> RouterParking {
        RouterParking::new(cfg, RpMode::Adaptive { load_threshold: 0.05 })
    }

    /// Which routers are currently parked.
    pub fn parked(&self) -> &[bool] {
        &self.parked
    }

    fn fabric_empty(core: &NetworkCore) -> bool {
        core.flits_in_network() == 0
            && core.nics.iter().all(|nic| nic.in_progress.iter().all(|p| p.is_none()))
    }

    fn effective_policy(&self) -> ParkPolicy {
        match self.mode {
            RpMode::Aggressive => ParkPolicy::Aggressive,
            RpMode::Adaptive { load_threshold } => {
                if self.measured_load > load_threshold {
                    ParkPolicy::Spread
                } else {
                    ParkPolicy::Aggressive
                }
            }
        }
    }

    fn apply_reconfig(&mut self, core: &mut NetworkCore, policy: ParkPolicy) {
        let (kx, ky) = (core.cfg.kx(), core.cfg.ky());
        let n = core.nodes();
        // Keep-set (router-space): routers with any active core, plus
        // endpoints of still-queued traffic (the FM quiesces outstanding
        // traffic before parking a router).
        let mut keep: Vec<bool> =
            (0..n as NodeId).map(|node| core.router_core_active(node)).collect();
        for (node, nic) in core.nics.iter().enumerate() {
            if nic.pending() {
                keep[node] = true;
            }
            for q in &nic.queues {
                for pkt in q.iter() {
                    keep[pkt.dst as usize] = true;
                }
            }
        }
        let parked = parking::select_parked(kx, ky, &keep, policy);
        for node in 0..n as NodeId {
            let want_off = parked[node as usize];
            match (core.power(node), want_off) {
                (PowerState::Active, true) => {
                    core.begin_drain(node);
                    core.enter_sleep(node);
                }
                (PowerState::Sleep, false) => {
                    core.begin_wakeup(node);
                    core.complete_wakeup(node);
                }
                (PowerState::Active, false) | (PowerState::Sleep, true) => {}
                (other, _) => panic!("RP router {node} in unexpected state {other:?}"),
            }
        }
        let on: Vec<bool> = parked.iter().map(|&p| !p).collect();
        self.table = updown::build_table(kx, ky, &on);
        self.parked = parked;
        self.applied = core.core_active.clone();
        self.applied_policy = policy;
        self.policy_cooldown_until = core.cycle + 8_000;
        self.reconfigs += 1;
        // Table distribution to every active router, one FM message each.
        core.activity.handshake_signals += on.iter().filter(|&&b| b).count() as u64;
    }
}

impl PowerMechanism for RouterParking {
    fn name(&self) -> &'static str {
        "RP"
    }

    fn step(&mut self, core: &mut NetworkCore) {
        let now = core.cycle;
        // Periodic offered-load probe (adaptive mode input).
        if now >= self.load_probe_cycle + 1024 {
            let flits = core.generated_flits();
            let dc = (now - self.load_probe_cycle) as f64;
            let active = core.core_active.iter().filter(|&&a| a).count().max(1);
            // Offered load per *active* node: the FM's congestion signal
            // should not be diluted by how many cores happen to be gated.
            self.measured_load = (flits - self.load_probe_flits) as f64 / (dc * active as f64);
            self.load_probe_cycle = now;
            self.load_probe_flits = flits;
        }
        // Reconfigure on a core-activity change, or — the adaptive policy —
        // when the offered load has shifted enough that the FM would now
        // choose a different parking aggressiveness (paper Fig. 6: "RP
        // dynamically turns on additional routers ... to negate the impact
        // of higher traffic").
        let pending = core.core_active != self.applied
            || (self.effective_policy() != self.applied_policy
                && now >= self.policy_cooldown_until
                && core.core_active.iter().any(|&a| !a));
        match self.phase {
            Phase::Running => {
                if pending {
                    self.phase = Phase::Stalling { since: now, policy: self.effective_policy() };
                }
            }
            Phase::Stalling { since, policy } => {
                if now.saturating_sub(since) >= self.min_stall && Self::fabric_empty(core) {
                    self.apply_reconfig(core, policy);
                    self.stall_windows.push((since, now));
                    self.phase = Phase::Running;
                }
            }
        }
    }

    fn route(&self, net: &dyn PowerView, ctx: &RouteCtx) -> Option<Port> {
        if ctx.at == ctx.dst {
            return Some(Port::Local);
        }
        // With nothing parked the topology is the full mesh: use minimal
        // dimension-order routing, exactly like the Baseline (the up*/down*
        // tree is only needed once the topology is irregular).
        if !self.parked.iter().any(|&p| p) {
            return Some(flov_noc::routing::yx_route(ctx.at, ctx.dst));
        }
        let n = net.nodes();
        let src = (ctx.at.y * ctx.kx + ctx.at.x) as usize;
        let dst = (ctx.dst.y * ctx.kx + ctx.dst.x) as usize;
        let e = self.table[src * n + dst];
        assert_ne!(
            e,
            updown::NO_ROUTE,
            "RP routed a packet between disconnected routers {src}->{dst}"
        );
        Some(Port::from_index(e as usize))
    }

    fn injection_allowed(&self, _net: &dyn PowerView, _node: NodeId) -> bool {
        matches!(self.phase, Phase::Running)
    }

    fn next_event(&self, core: &NetworkCore) -> Option<Cycle> {
        let now = core.cycle;
        // The periodic offered-load probe rewrites FM state (measured load,
        // probe counters) even across an idle fabric, so it is always an
        // event; this bounds any RP jump to the probe period.
        let mut h = self.load_probe_cycle + 1024;
        match self.phase {
            Phase::Running => {
                if core.core_active != self.applied {
                    return Some(now);
                }
                // A pure policy-shift reconfiguration waits out the
                // cooldown; measured load cannot move before a probe.
                if self.effective_policy() != self.applied_policy
                    && core.core_active.iter().any(|&a| !a)
                {
                    h = h.min(self.policy_cooldown_until);
                }
            }
            Phase::Stalling { since, .. } => {
                // Quiescence means the fabric-empty condition already
                // holds; only the minimum stall window gates the apply.
                h = h.min(since + self.min_stall);
            }
        }
        Some(h.max(now))
    }

    fn audit_state(&self, core: &NetworkCore, report: &mut dyn FnMut(String)) {
        // RP reconfigures atomically (drain+sleep or wakeup+complete in the
        // same step), so between steps every router is Active or Sleep, and
        // the FM's parked table mirrors the fabric exactly.
        for n in 0..core.nodes() as NodeId {
            let p = core.power(n);
            if !matches!(p, PowerState::Active | PowerState::Sleep) {
                report(format!("RP router {n} is {p:?}; RP transitions are atomic"));
            }
            let parked = self.parked[n as usize];
            if parked != (p == PowerState::Sleep) {
                report(format!("RP table says parked={parked} for router {n} but power is {p:?}"));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flov_noc::config::NocConfig;
    use flov_noc::network::Simulation;
    use flov_noc::traits::{PacketRequest, ScriptedWorkload};

    fn cfg() -> NocConfig {
        NocConfig::small_test()
    }

    #[test]
    fn parks_after_core_gating_with_stall() {
        let c = cfg();
        let gates: Vec<(u64, NodeId, bool)> =
            vec![(100, 5, false), (100, 6, false), (100, 9, false)];
        let w = ScriptedWorkload::new(vec![]).with_core_events(gates);
        let mut sim = Simulation::new(c, Box::new(RouterParking::aggressive(&cfg())), Box::new(w));
        sim.run(120);
        // Mid-stall: nothing parked yet.
        assert_eq!(sim.core.power(5), PowerState::Active);
        sim.run(1_000);
        // After >700-cycle Phase I the routers are parked.
        let parked =
            [5u16, 6, 9].iter().filter(|&&n| sim.core.power(n) == PowerState::Sleep).count();
        assert!(parked >= 2, "only {parked} of 3 candidates parked");
    }

    #[test]
    fn injection_stalls_during_reconfiguration() {
        let c = cfg();
        let gates = vec![(500u64, 10u16, false)];
        // A packet generated right at the change gets held at the NIC.
        let w =
            ScriptedWorkload::new(vec![(501, PacketRequest { src: 0, dst: 15, vnet: 0, len: 4 })])
                .with_core_events(gates);
        let mut sim = Simulation::new(c, Box::new(RouterParking::aggressive(&cfg())), Box::new(w));
        sim.run(900); // inside the >=700-cycle stall
        assert_eq!(sim.core.activity.packets_injected, 0, "injection not stalled");
        assert!(sim.core.stalled_injection_node_cycles > 0);
        let end = sim.run_until_done(20_000);
        assert!(end < 20_000);
        assert_eq!(sim.core.activity.packets_delivered, 1);
        // The queueing delay shows up in total latency.
        assert!(sim.core.stats.avg_latency() > 300.0);
    }

    #[test]
    fn traffic_routes_around_parked_routers() {
        let c = cfg();
        // Gate the center 2x2 block.
        let gates: Vec<(u64, NodeId, bool)> =
            [5u16, 6, 9, 10].iter().map(|&n| (0u64, n, false)).collect();
        let mut events = Vec::new();
        for i in 0..40u64 {
            events.push((2_000 + i * 11, PacketRequest { src: 0, dst: 15, vnet: 0, len: 4 }));
        }
        let w = ScriptedWorkload::new(events).with_core_events(gates);
        let mut sim = Simulation::new(c, Box::new(RouterParking::aggressive(&cfg())), Box::new(w));
        let end = sim.run_until_done(40_000);
        assert!(end < 40_000, "packets lost around parked region");
        assert_eq!(sim.core.activity.packets_delivered, 40);
        // No FLOV latch was ever used: RP has no fly-over.
        assert_eq!(sim.core.activity.flov_latch_flits, 0);
    }

    #[test]
    fn reactivation_unparks() {
        let c = cfg();
        let gates = vec![(0u64, 5u16, false), (5_000u64, 5u16, true)];
        let w = ScriptedWorkload::new(vec![]).with_core_events(gates);
        let mut sim = Simulation::new(c, Box::new(RouterParking::aggressive(&cfg())), Box::new(w));
        sim.run(3_000);
        assert_eq!(sim.core.power(5), PowerState::Sleep);
        sim.run(4_000);
        assert_eq!(sim.core.power(5), PowerState::Active);
        let mech_reconfigs = 2; // initial gating + reactivation
        let _ = mech_reconfigs;
    }

    #[test]
    fn queued_traffic_keeps_endpoints_on() {
        let c = cfg();
        // Core 15 gates while a packet for it is still queued at node 0
        // behind the stall: RP must keep router 15 on.
        let gates = vec![(100u64, 15u16, false), (100u64, 5u16, false)];
        let w =
            ScriptedWorkload::new(vec![(90, PacketRequest { src: 0, dst: 15, vnet: 0, len: 4 })])
                .with_core_events(gates);
        let mut sim = Simulation::new(c, Box::new(RouterParking::aggressive(&cfg())), Box::new(w));
        let end = sim.run_until_done(20_000);
        assert!(end < 20_000);
        assert_eq!(sim.core.activity.packets_delivered, 1);
    }
}
