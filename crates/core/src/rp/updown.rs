//! Up*/down* routing over the powered-on subgraph.
//!
//! Router Parking distributes routing tables computed by the central Fabric
//! Manager. We realize them with the classic up*/down* scheme: orient every
//! link of the active subgraph by BFS level toward a root (ties by id); a
//! legal path never takes an up-link after a down-link. This is cycle-free
//! (hence deadlock-free) on arbitrary connected subgraphs — exactly what RP
//! needs after parking an irregular set of routers — at the price of
//! non-minimal detours, which is the RP behavior the paper measures against.
//!
//! Tables are built over the *grid* view of the fabric (`kx x ky`, no wrap
//! links): on a torus the wrap edges are simply not used, which keeps the
//! orientation argument untouched.

use flov_noc::topology::grid_step;
use flov_noc::types::{Coord, Dir, NodeId, Port};
use std::collections::VecDeque;

/// Marker for "no route" in the next-hop table.
pub const NO_ROUTE: u8 = u8::MAX;

#[inline]
fn coord(n: NodeId, kx: u16) -> Coord {
    Coord { x: n % kx, y: n / kx }
}

/// Grid neighbor of `n` in `d`, as a node id.
#[inline]
fn step(n: NodeId, d: Dir, kx: u16, ky: u16) -> Option<NodeId> {
    grid_step(coord(n, kx), d, kx, ky).map(|c| c.y * kx + c.x)
}

/// BFS levels from `root` over the on-subgraph; `u32::MAX` = unreachable.
fn bfs_levels(kx: u16, ky: u16, on: &[bool], root: NodeId) -> Vec<u32> {
    let n = (kx as usize) * (ky as usize);
    let mut level = vec![u32::MAX; n];
    let mut q = VecDeque::new();
    level[root as usize] = 0;
    q.push_back(root);
    while let Some(cur) = q.pop_front() {
        for d in Dir::ALL {
            if let Some(m) = step(cur, d, kx, ky) {
                if on[m as usize] && level[m as usize] == u32::MAX {
                    level[m as usize] = level[cur as usize] + 1;
                    q.push_back(m);
                }
            }
        }
    }
    level
}

/// True if the hop `a -> b` is an *up* move (toward the root): lower level
/// wins, ties broken by smaller id.
#[inline]
fn is_up(level: &[u32], a: NodeId, b: NodeId) -> bool {
    let (la, lb) = (level[a as usize], level[b as usize]);
    lb < la || (lb == la && b < a)
}

/// Pick the root: the on-router closest to the grid center (deterministic
/// tie-break by id). Returns `None` when no router is on.
pub fn pick_root(kx: u16, ky: u16, on: &[bool]) -> Option<NodeId> {
    let cx = (kx - 1) as f64 / 2.0;
    let cy = (ky - 1) as f64 / 2.0;
    (0..on.len() as NodeId).filter(|&n| on[n as usize]).min_by(|&a, &b| {
        let da = {
            let c = coord(a, kx);
            (c.x as f64 - cx).abs() + (c.y as f64 - cy).abs()
        };
        let db = {
            let c = coord(b, kx);
            (c.x as f64 - cx).abs() + (c.y as f64 - cy).abs()
        };
        da.partial_cmp(&db).unwrap().then(a.cmp(&b))
    })
}

/// BFS levels of every on-router, per connected component, each component
/// rooted at its own center-most router (the up/down orientation input).
/// The on-subgraph may legally have several components: parking can strand
/// powered routers that no kept traffic needs.
pub fn component_levels(kx: u16, ky: u16, on: &[bool]) -> Vec<u32> {
    let n = (kx as usize) * (ky as usize);
    let mut level = vec![u32::MAX; n];
    loop {
        let mut remaining = vec![false; n];
        let mut any = false;
        for i in 0..n {
            if on[i] && level[i] == u32::MAX {
                remaining[i] = true;
                any = true;
            }
        }
        if !any {
            break;
        }
        let root = pick_root(kx, ky, &remaining).expect("non-empty remaining set");
        let part = bfs_levels(kx, ky, on, root);
        for i in 0..n {
            if part[i] != u32::MAX && level[i] == u32::MAX {
                level[i] = part[i];
            }
        }
    }
    level
}

/// True if the hop `a -> b` is an *up* move under `level` (public so tests
/// can verify the up*/down* discipline against the real orientation).
pub fn hop_is_up(level: &[u32], a: NodeId, b: NodeId) -> bool {
    is_up(level, a, b)
}

/// Build the full next-hop table: `table[src * nodes + dst]` is the output
/// port index, or [`NO_ROUTE`]. Diagonal entries hold the local port.
///
/// Construction (per destination, the classic consistent formulation):
/// * the *D-set* is every node with an all-down path to the destination;
///   D-nodes route along a shortest all-down path;
/// * every other node routes *up* toward the cheapest neighbor (up edges
///   form a DAG toward the root, so a pass in topological order suffices).
///
/// Because D-nodes only ever forward down and non-D nodes only ever forward
/// up, a packet's trajectory is up\*down\* no matter where it is picked up —
/// per-hop table lookups can never produce an up move after a down move, so
/// no down→up channel dependency exists anywhere and the routing is
/// deadlock-free on any connected subgraph.
pub fn build_table(kx: u16, ky: u16, on: &[bool]) -> Vec<u8> {
    let n = (kx as usize) * (ky as usize);
    let mut table = vec![NO_ROUTE; n * n];
    if pick_root(kx, ky, on).is_none() {
        return table;
    }
    let level = component_levels(kx, ky, on);
    // Topological order for up edges: an up move strictly decreases
    // (level, id), so scanning in increasing (level, id) sees every
    // up-target before the nodes that climb to it.
    let mut topo: Vec<NodeId> =
        (0..n as NodeId).filter(|&x| on[x as usize] && level[x as usize] != u32::MAX).collect();
    topo.sort_by_key(|&x| (level[x as usize], x));
    let mut dist_down = vec![u32::MAX; n];
    let mut dist_total = vec![u32::MAX; n];
    for dst in 0..n as NodeId {
        if !on[dst as usize] || level[dst as usize] == u32::MAX {
            continue;
        }
        // Pass 1: the D-set via backward BFS over down edges (p -> m is a
        // down move iff m -> p is an up move).
        dist_down.iter_mut().for_each(|d| *d = u32::MAX);
        dist_down[dst as usize] = 0;
        let mut q = VecDeque::new();
        q.push_back(dst);
        while let Some(m) = q.pop_front() {
            for d in Dir::ALL {
                let Some(p) = step(m, d, kx, ky) else { continue };
                if !on[p as usize] || level[p as usize] == u32::MAX {
                    continue;
                }
                if is_up(&level, m, p) && dist_down[p as usize] == u32::MAX {
                    dist_down[p as usize] = dist_down[m as usize] + 1;
                    q.push_back(p);
                }
            }
        }
        // Pass 2: climb costs for non-D nodes in topological order.
        for &x in &topo {
            dist_total[x as usize] = dist_down[x as usize];
        }
        for &x in &topo {
            if dist_down[x as usize] != u32::MAX {
                continue; // D-node: final
            }
            let mut best = u32::MAX;
            for d in Dir::ALL {
                let Some(m) = step(x, d, kx, ky) else { continue };
                if !on[m as usize] || level[m as usize] == u32::MAX {
                    continue;
                }
                if is_up(&level, x, m) && dist_total[m as usize] != u32::MAX {
                    best = best.min(dist_total[m as usize].saturating_add(1));
                }
            }
            dist_total[x as usize] = best;
        }
        // Emit next hops, rotating the direction scan by dst to spread
        // equal-cost choices across destinations (hotspot mitigation).
        for src in 0..n as NodeId {
            if !on[src as usize] || level[src as usize] == u32::MAX {
                continue;
            }
            let row = src as usize * n + dst as usize;
            if src == dst {
                table[row] = Port::Local.index() as u8;
                continue;
            }
            if dist_total[src as usize] == u32::MAX {
                continue; // stays NO_ROUTE
            }
            let in_d = dist_down[src as usize] != u32::MAX;
            let mut best: Option<(u32, u8)> = None;
            for i in 0..4 {
                let d = Dir::from_index((i + dst as usize) % 4);
                let Some(m) = step(src, d, kx, ky) else { continue };
                if !on[m as usize] || level[m as usize] == u32::MAX {
                    continue;
                }
                let up = is_up(&level, src, m);
                let cand = if in_d {
                    // D-node: all-down continuation only.
                    if up || dist_down[m as usize] == u32::MAX {
                        continue;
                    }
                    dist_down[m as usize]
                } else {
                    // Climbing node: up moves only.
                    if !up || dist_total[m as usize] == u32::MAX {
                        continue;
                    }
                    dist_total[m as usize]
                };
                if best.is_none_or(|(b, _)| cand < b) {
                    best = Some((cand, Port::from_dir(d).index() as u8));
                }
            }
            table[row] = best.expect("reachable node must have a legal next hop").1;
        }
    }
    table
}

/// Walk the table from `src` to `dst`, returning the hop count, or `None`
/// if the table has a gap or a loop. Test/diagnostic helper.
pub fn walk(table: &[u8], kx: u16, ky: u16, src: NodeId, dst: NodeId) -> Option<u32> {
    let n = (kx as usize) * (ky as usize);
    let mut cur = src;
    let mut hops = 0;
    while cur != dst {
        let e = table[cur as usize * n + dst as usize];
        if e == NO_ROUTE || e == Port::Local.index() as u8 {
            return None;
        }
        let d = Port::from_index(e as usize).dir().unwrap();
        cur = step(cur, d, kx, ky)?;
        hops += 1;
        if hops > 4 * n as u32 {
            return None; // loop
        }
    }
    Some(hops)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_mesh_all_pairs_routable() {
        let k = 4;
        let on = vec![true; 16];
        let table = build_table(k, k, &on);
        for s in 0..16u16 {
            for d in 0..16u16 {
                if s == d {
                    assert_eq!(table[s as usize * 16 + d as usize], Port::Local.index() as u8);
                } else {
                    let hops = walk(&table, k, k, s, d).expect("unroutable pair");
                    assert!(hops >= Coord::of(s, k).manhattan(Coord::of(d, k)));
                }
            }
        }
    }

    #[test]
    fn rectangular_grid_all_pairs_routable() {
        let (kx, ky) = (5u16, 3u16);
        let n = (kx * ky) as usize;
        let on = vec![true; n];
        let table = build_table(kx, ky, &on);
        for s in 0..n as u16 {
            for d in 0..n as u16 {
                if s == d {
                    continue;
                }
                let hops = walk(&table, kx, ky, s, d).expect("unroutable pair on 5x3");
                let (sc, dc) = (coord(s, kx), coord(d, kx));
                let min = sc.x.abs_diff(dc.x) as u32 + sc.y.abs_diff(dc.y) as u32;
                assert!(hops >= min);
            }
        }
    }

    #[test]
    fn holes_force_detours_but_stay_routable() {
        let k = 4;
        let mut on = vec![true; 16];
        // Park a plus-shaped hole in the middle: (1,1),(2,1),(1,2).
        for n in [5u16, 6, 9] {
            on[n as usize] = false;
        }
        let table = build_table(k, k, &on);
        for s in 0..16u16 {
            for d in 0..16u16 {
                if s == d || !on[s as usize] || !on[d as usize] {
                    continue;
                }
                let hops = walk(&table, k, k, s, d).expect("unroutable with holes");
                // Paths exist and never cross parked routers (walk uses the
                // table; verify the path avoids holes).
                let mut cur = s;
                for _ in 0..hops {
                    let e = table[cur as usize * 16 + d as usize];
                    let dir = Port::from_index(e as usize).dir().unwrap();
                    cur = Coord::of(cur, k).neighbor(dir, k).unwrap().id(k);
                    assert!(on[cur as usize], "route crosses parked router {cur}");
                }
            }
        }
        // Detour check: (0,1) -> (3,1) is 3 hops minimal but the hole forces
        // at least one extra hop... actually row 1 has (1,1),(2,1) parked:
        // going along row 1 is impossible, so > 3 hops.
        let hops = walk(&table, k, k, 4, 7).unwrap();
        assert!(hops > 3, "expected a detour, got {hops}");
    }

    #[test]
    fn no_up_after_down_anywhere() {
        let k = 4;
        let mut on = vec![true; 16];
        on[5] = false;
        on[10] = false;
        let table = build_table(k, k, &on);
        let root = pick_root(k, k, &on).unwrap();
        let level = bfs_levels(k, k, &on, root);
        for s in 0..16u16 {
            for d in 0..16u16 {
                if s == d || !on[s as usize] || !on[d as usize] {
                    continue;
                }
                let mut cur = s;
                let mut went_down = false;
                while cur != d {
                    let e = table[cur as usize * 16 + d as usize];
                    let dir = Port::from_index(e as usize).dir().unwrap();
                    let next = Coord::of(cur, k).neighbor(dir, k).unwrap().id(k);
                    let up = is_up(&level, cur, next);
                    assert!(!(up && went_down), "up after down on {s}->{d}");
                    if !up {
                        went_down = true;
                    }
                    cur = next;
                }
            }
        }
    }

    #[test]
    fn disconnected_nodes_marked_unroutable() {
        let k = 4;
        let mut on = vec![true; 16];
        // Isolate corner (0,0) by parking (1,0) and (0,1).
        on[1] = false;
        on[4] = false;
        let table = build_table(k, k, &on);
        // Root is center-ish, so corner 0 is the disconnected one.
        assert_eq!(table[15], NO_ROUTE);
        assert_eq!(table[15 * 16], NO_ROUTE);
        // The rest still routes.
        assert!(walk(&table, k, k, 2, 15).is_some());
    }

    #[test]
    fn empty_on_set_is_all_no_route() {
        let table = build_table(4, 4, &[false; 16]);
        assert!(table.iter().all(|&e| e == NO_ROUTE));
    }

    #[test]
    fn root_prefers_center() {
        let on = vec![true; 16];
        let root = pick_root(4, 4, &on).unwrap();
        // Center candidates of a 4x4 are (1,1),(2,1),(1,2),(2,2) = 5,6,9,10;
        // deterministic tie-break picks the smallest id.
        assert_eq!(root, 5);
    }
}
