//! Parking-set selection: which routers the Fabric Manager turns off.
//!
//! Candidates are routers whose core is gated (and which no pending traffic
//! needs). Aggressive mode parks as many as connectivity allows — the
//! configuration the paper compares static power against. Spread mode
//! additionally refuses to park a router next to an already-parked one,
//! which caps detour length; the adaptive policy (paper: RP "dynamically
//! decides whether to conservatively or aggressively power-gate") switches
//! to it under high load.

use flov_noc::topology::grid_step;
use flov_noc::types::{Coord, Dir, NodeId};
use std::collections::VecDeque;

/// Grid neighbor of `n` in `d`, as a node id.
#[inline]
fn step(n: NodeId, d: Dir, kx: u16, ky: u16) -> Option<NodeId> {
    grid_step(Coord { x: n % kx, y: n / kx }, d, kx, ky).map(|c| c.y * kx + c.x)
}

/// Parking aggressiveness for one reconfiguration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ParkPolicy {
    /// Park every candidate that keeps the active subgraph connected.
    Aggressive,
    /// Additionally require no physically adjacent parked router.
    Spread,
}

/// True if all `keep` nodes are mutually reachable over non-parked routers.
fn keeps_connected(kx: u16, ky: u16, parked: &[bool], keep: &[bool]) -> bool {
    let n = (kx as usize) * (ky as usize);
    let Some(start) = (0..n).find(|&i| keep[i]) else { return true };
    let mut seen = vec![false; n];
    let mut q = VecDeque::new();
    seen[start] = true;
    q.push_back(start as NodeId);
    while let Some(cur) = q.pop_front() {
        for d in Dir::ALL {
            if let Some(m) = step(cur, d, kx, ky) {
                if !parked[m as usize] && !seen[m as usize] {
                    seen[m as usize] = true;
                    q.push_back(m);
                }
            }
        }
    }
    keep.iter().enumerate().all(|(i, &kp)| !kp || seen[i])
}

/// Select the parked set. `keep[n]` marks routers that must stay on (active
/// cores, pending traffic endpoints). Deterministic: candidates are
/// considered in ascending id order.
pub fn select_parked(kx: u16, ky: u16, keep: &[bool], policy: ParkPolicy) -> Vec<bool> {
    let n = (kx as usize) * (ky as usize);
    debug_assert_eq!(keep.len(), n);
    let mut parked = vec![false; n];
    for cand in 0..n {
        if keep[cand] {
            continue;
        }
        if policy == ParkPolicy::Spread {
            let adjacent_parked = Dir::ALL
                .iter()
                .any(|&d| step(cand as NodeId, d, kx, ky).is_some_and(|m| parked[m as usize]));
            if adjacent_parked {
                continue;
            }
        }
        parked[cand] = true;
        if !keeps_connected(kx, ky, &parked, keep) {
            parked[cand] = false;
        }
    }
    parked
}

#[cfg(test)]
mod tests {
    use super::*;

    fn count(v: &[bool]) -> usize {
        v.iter().filter(|&&b| b).count()
    }

    #[test]
    fn nothing_parked_when_all_kept() {
        let keep = vec![true; 16];
        let parked = select_parked(4, 4, &keep, ParkPolicy::Aggressive);
        assert_eq!(count(&parked), 0);
    }

    #[test]
    fn everything_parked_when_nothing_kept() {
        let keep = vec![false; 16];
        let parked = select_parked(4, 4, &keep, ParkPolicy::Aggressive);
        assert_eq!(count(&parked), 16);
    }

    #[test]
    fn aggressive_preserves_connectivity() {
        // Keep the four corners of a 4x4: a connected path must survive.
        let mut keep = vec![false; 16];
        for n in [0usize, 3, 12, 15] {
            keep[n] = true;
        }
        let parked = select_parked(4, 4, &keep, ParkPolicy::Aggressive);
        assert!(keeps_connected(4, 4, &parked, &keep));
        for n in [0usize, 3, 12, 15] {
            assert!(!parked[n]);
        }
        // Aggressive parks a good number of the 12 candidates.
        assert!(count(&parked) >= 6, "only {} parked", count(&parked));
    }

    #[test]
    fn spread_never_parks_adjacent_pairs() {
        let keep = vec![false; 64];
        let parked = select_parked(8, 8, &keep, ParkPolicy::Spread);
        for n in 0..64u16 {
            if !parked[n as usize] {
                continue;
            }
            let c = Coord::of(n, 8);
            for d in Dir::ALL {
                if let Some(m) = c.neighbor(d, 8) {
                    assert!(!parked[m.id(8) as usize], "adjacent parked pair");
                }
            }
        }
        assert!(count(&parked) > 0);
    }

    #[test]
    fn spread_parks_fewer_than_aggressive() {
        let mut keep = vec![false; 64];
        keep[0] = true;
        keep[63] = true;
        let a = count(&select_parked(8, 8, &keep, ParkPolicy::Aggressive));
        let s = count(&select_parked(8, 8, &keep, ParkPolicy::Spread));
        assert!(a > s, "aggressive {a} <= spread {s}");
    }

    #[test]
    fn keep_nodes_never_parked() {
        let mut keep = vec![false; 16];
        keep[5] = true;
        keep[10] = true;
        let parked = select_parked(4, 4, &keep, ParkPolicy::Aggressive);
        assert!(!parked[5] && !parked[10]);
        assert!(keeps_connected(4, 4, &parked, &keep));
    }

    #[test]
    fn connectivity_helper_detects_partitions() {
        // Wall of parked routers down column 1 disconnects column 0.
        let k = 4;
        let mut parked = vec![false; 16];
        for y in 0..4u16 {
            parked[(y * 4 + 1) as usize] = true;
        }
        let mut keep = vec![false; 16];
        keep[0] = true; // (0,0)
        keep[3] = true; // (3,0)
        assert!(!keeps_connected(k, k, &parked, &keep));
        parked[1] = false; // open a gap
        assert!(keeps_connected(k, k, &parked, &keep));
    }
}
