//! The FLOV power-gating mechanism: the distributed handshake protocols
//! (restricted and generalized, paper §IV) driving the router power FSM
//! (Fig. 2), combined with the partition-based dynamic routing of §V.
//!
//! Control is strictly local: every decision uses only the router's own
//! state, its PSR view of physical neighbors, and (for gFLOV) its logical
//! neighbors reached by relayed handshake signals. Timing costs of the
//! handshake — one cycle per signal hop, relaying across sleepers — are
//! modeled by requiring conditions to hold for a handshake-latency window
//! before a transition commits.

use crate::routing::flov_route;
use flov_noc::network::NetworkCore;
use flov_noc::routing::RouteCtx;
use flov_noc::traits::{PowerMechanism, PowerView};
use flov_noc::types::{Cycle, Dir, NodeId, Port, PowerState};
use serde::{Deserialize, Serialize};

/// Which handshake protocol to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum FlovMode {
    /// rFLOV: no two physically adjacent routers may be power-gated; all
    /// handshakes are between physical neighbors.
    Restricted,
    /// gFLOV: consecutive routers may sleep; handshakes run between logical
    /// neighbors with signals relayed across the sleeping routers.
    Generalized,
}

/// Tunable protocol parameters.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct FlovParams {
    /// Cycles of local-port silence before a gated-core router tries to
    /// drain (paper: "waits ... for a certain number of cycles").
    pub idle_threshold: u32,
    /// Give up on a drain that cannot complete (e.g. a buffered packet
    /// waiting on a sleeping destination) and return to Active.
    pub drain_timeout: u32,
    /// Base handshake latency: the drain_done / wakeup signal exchange
    /// between immediate neighbors (one cycle out, one back).
    pub handshake_rtt: u32,
    /// Column of always-on routers (`None` disables — ablation only; the
    /// routing algorithm's East fallback assumes it exists).
    pub aon_column: Option<u16>,
}

impl FlovParams {
    pub fn for_config(cfg: &flov_noc::NocConfig) -> FlovParams {
        FlovParams {
            idle_threshold: cfg.idle_threshold,
            drain_timeout: 256,
            handshake_rtt: 2,
            aon_column: Some(cfg.kx() - 1),
        }
    }
}

/// Per-router controller state.
#[derive(Clone, Copy, Debug, Default)]
struct NodeCtl {
    /// Cycle the current drain began.
    drain_since: Cycle,
    /// Consecutive cycles the transition conditions have held.
    stable: u32,
    /// Remaining power-ramp cycles during Wakeup.
    ramp: u32,
    /// Earliest cycle the next drain attempt may start (post-timeout
    /// backoff: a timed-out drain was blocking someone — let them pass).
    retry_after: Cycle,
}

/// The FLOV mechanism (rFLOV or gFLOV).
pub struct Flov {
    pub mode: FlovMode,
    pub params: FlovParams,
    ctl: Vec<NodeCtl>,
    wake_buf: Vec<NodeId>,
}

impl Flov {
    pub fn new(mode: FlovMode, params: FlovParams, nodes: usize) -> Flov {
        Flov { mode, params, ctl: vec![NodeCtl::default(); nodes], wake_buf: Vec::new() }
    }

    /// rFLOV with parameters derived from the config.
    pub fn restricted(cfg: &flov_noc::NocConfig) -> Flov {
        Flov::new(FlovMode::Restricted, FlovParams::for_config(cfg), cfg.nodes())
    }

    /// gFLOV with parameters derived from the config.
    pub fn generalized(cfg: &flov_noc::NocConfig) -> Flov {
        Flov::new(FlovMode::Generalized, FlovParams::for_config(cfg), cfg.nodes())
    }

    /// True if `node` sits in the always-on column.
    fn is_aon(&self, core: &NetworkCore, node: NodeId) -> bool {
        self.params.aon_column.is_some_and(|col| core.coord(node).x == col)
    }

    /// Handshake-window length for `node`: base RTT plus (gFLOV) the extra
    /// relay hops to the farthest logical neighbor.
    fn handshake_window(&self, core: &NetworkCore, node: NodeId) -> u32 {
        let mut w = self.params.handshake_rtt;
        if self.mode == FlovMode::Generalized {
            let mut extra = 0;
            for d in Dir::ALL {
                if let Some((_, hops)) = core.logical_neighbor(node, d) {
                    extra = extra.max(hops);
                }
            }
            w += extra;
        }
        w
    }

    /// Is `node` allowed to *start* draining right now?
    fn drain_permitted(&self, core: &NetworkCore, node: NodeId) -> bool {
        if self.is_aon(core, node) {
            return false;
        }
        match self.mode {
            FlovMode::Restricted => {
                // No physically adjacent router may be anything but Active:
                // this both enforces the no-two-consecutive-sleepers rule
                // and resolves simultaneous drain attempts (the in-order
                // scan means the smaller id transitioned first this cycle,
                // so the larger id sees Draining and backs off — the
                // paper's id-based arbitration).
                Dir::ALL.iter().all(|&d| {
                    core.neighbor(node, d).is_none_or(|m| core.power(m) == PowerState::Active)
                })
            }
            FlovMode::Generalized => {
                // Logical neighbors must not be Draining (Draining–Draining
                // forbidden; id arbitration via scan order) nor Wakeup
                // (Draining–Wakeup forbidden; Wakeup has priority).
                Dir::ALL.iter().all(|&d| {
                    core.logical_neighbor(node, d).is_none_or(|(m, _)| {
                        !matches!(core.power(m), PowerState::Draining | PowerState::Wakeup)
                    })
                })
            }
        }
    }

    /// Is `node` (asleep) allowed to start waking right now?
    fn wakeup_permitted(&self, core: &NetworkCore, node: NodeId) -> bool {
        match self.mode {
            FlovMode::Restricted => true,
            FlovMode::Generalized => {
                // A sleeper with a Draining logical neighbor defers its
                // wakeup until that drain resolves (paper §IV-B).
                Dir::ALL.iter().all(|&d| {
                    core.logical_neighbor(node, d)
                        .is_none_or(|(m, _)| core.power(m) != PowerState::Draining)
                })
            }
        }
    }

    /// Returns `true` iff the wakeup actually began (core mutated).
    fn try_begin_wakeup(&mut self, core: &mut NetworkCore, node: NodeId) -> bool {
        if core.power(node) != PowerState::Sleep || !self.wakeup_permitted(core, node) {
            return false;
        }
        core.begin_wakeup(node);
        core.activity.handshake_signals += self.signal_cost(core, node);
        let c = &mut self.ctl[node as usize];
        c.ramp = core.cfg.wakeup_latency;
        c.stable = 0;
        true
    }

    /// HSC wire activations for one broadcast from `node` (one per physical
    /// neighbor, plus relay hops to logical neighbors under gFLOV).
    fn signal_cost(&self, core: &NetworkCore, node: NodeId) -> u64 {
        let mut cost = 0u64;
        for d in Dir::ALL {
            if core.neighbor(node, d).is_none() {
                continue;
            }
            cost += 1;
            if self.mode == FlovMode::Generalized {
                if let Some((_, hops)) = core.logical_neighbor(node, d) {
                    cost += hops as u64;
                }
            }
        }
        cost
    }
}

impl PowerMechanism for Flov {
    fn name(&self) -> &'static str {
        match self.mode {
            FlovMode::Restricted => "rFLOV",
            FlovMode::Generalized => "gFLOV",
        }
    }

    fn step(&mut self, core: &mut NetworkCore) {
        // Exactly prologue + per-node scan in id order (which realizes the
        // paper's smaller-id-wins drain arbitration) — the contract that
        // lets the parallel kernel shard this step.
        self.control_prologue(core);
        for n in 0..core.nodes() as NodeId {
            self.control_node(core, n);
        }
    }

    fn sharded_control(&self) -> bool {
        true
    }

    fn control_prologue(&mut self, core: &mut NetworkCore) {
        // Wakeup requests raised by blocked packets whose destination
        // router is asleep.
        let mut wake = std::mem::take(&mut self.wake_buf);
        core.take_wakeup_requests(&mut wake);
        for &n in wake.iter() {
            self.try_begin_wakeup(core, n);
        }
        self.wake_buf = wake;
    }

    // The negated conjunction mirrors `control_node`'s Active-arm trigger
    // verbatim; De Morganing it would hide the correspondence the quiet
    // contract depends on.
    #[allow(clippy::nonminimal_bool)]
    fn control_quiet(&self, core: &NetworkCore, n: NodeId) -> bool {
        let now = core.cycle;
        match core.power(n) {
            // `drain_permitted` is deliberately excluded: it reads neighbor
            // power states that a lower-id node may change this phase, so
            // `control_node` re-evaluates it at its serial position. The
            // remaining conditions read only node-local state no other
            // node's body mutates.
            PowerState::Active => {
                !(!core.router_core_active(n)
                    && core.routers[n as usize].local_idle(now)
                        >= self.params.idle_threshold as u64
                    && now >= self.ctl[n as usize].retry_after
                    && !core.nic_pending(n))
            }
            // Mid-handshake FSMs tick their own control state every cycle.
            PowerState::Draining | PowerState::Wakeup => false,
            PowerState::Sleep => !(core.router_core_active(n) || core.nic_pending(n)),
        }
    }

    fn control_node(&mut self, core: &mut NetworkCore, n: NodeId) -> bool {
        let now = core.cycle;
        match core.power(n) {
            PowerState::Active => {
                let gated_core = !core.router_core_active(n);
                let idle =
                    core.routers[n as usize].local_idle(now) >= self.params.idle_threshold as u64;
                if gated_core
                    && idle
                    && now >= self.ctl[n as usize].retry_after
                    && !core.nic_pending(n)
                    && self.drain_permitted(core, n)
                {
                    core.begin_drain(n);
                    core.activity.handshake_signals += self.signal_cost(core, n);
                    let c = &mut self.ctl[n as usize];
                    c.drain_since = now;
                    c.stable = 0;
                    return true;
                }
                false
            }
            PowerState::Draining => {
                // Local traffic reappeared: the drain must abort.
                if core.router_core_active(n) || core.nic_pending(n) {
                    core.abort_drain(n);
                    core.activity.handshake_signals += self.signal_cost(core, n);
                    return true;
                }
                let timed_out =
                    now - self.ctl[n as usize].drain_since > self.params.drain_timeout as u64;
                if timed_out {
                    // E.g. a buffered packet waits on a sleeping
                    // destination: give up, back off, retry later.
                    core.abort_drain(n);
                    self.ctl[n as usize].retry_after = now + 4 * self.params.drain_timeout as u64;
                    core.activity.handshake_signals += self.signal_cost(core, n);
                    return true;
                }
                let ready = core.routers[n as usize].is_drained() && core.fully_quiescent(n);
                let c = &mut self.ctl[n as usize];
                if ready {
                    c.stable += 1;
                    if c.stable >= self.handshake_window(core, n) {
                        core.enter_sleep(n);
                        core.activity.handshake_signals += self.signal_cost(core, n);
                        return true;
                    }
                } else {
                    c.stable = 0;
                }
                false
            }
            PowerState::Sleep => {
                if core.router_core_active(n) || core.nic_pending(n) {
                    return self.try_begin_wakeup(core, n);
                }
                false
            }
            PowerState::Wakeup => {
                let c = &mut self.ctl[n as usize];
                if c.ramp > 0 {
                    c.ramp -= 1;
                    return false;
                }
                let ready = core.routers[n as usize].latches_empty() && core.fully_quiescent(n);
                let c = &mut self.ctl[n as usize];
                if ready {
                    c.stable += 1;
                    if c.stable >= self.handshake_window(core, n) {
                        core.complete_wakeup(n);
                        core.activity.handshake_signals += self.signal_cost(core, n);
                        return true;
                    }
                } else {
                    c.stable = 0;
                }
                false
            }
        }
    }

    fn route(&self, _net: &dyn PowerView, ctx: &RouteCtx) -> Option<Port> {
        flov_route(ctx)
    }

    fn next_event(&self, core: &NetworkCore) -> Option<Cycle> {
        let now = core.cycle;
        let mut next: Option<Cycle> = None;
        for n in 0..core.nodes() as NodeId {
            match core.power(n) {
                // Mid-handshake FSMs count stable/ramp cycles every step.
                PowerState::Draining | PowerState::Wakeup => return Some(now),
                PowerState::Active => {
                    if core.router_core_active(n) || self.is_aon(core, n) {
                        continue;
                    }
                    // A permission-blocked drain re-arms only through a
                    // neighbor transition, and any Draining/Wakeup neighbor
                    // already pinned the horizon to `now` above; Sleep
                    // neighbors cannot change without their own event.
                    if !self.drain_permitted(core, n) {
                        continue;
                    }
                    let t = (core.routers[n as usize].last_local_activity
                        + self.params.idle_threshold as u64)
                        .max(self.ctl[n as usize].retry_after)
                        .max(now);
                    next = Some(next.map_or(t, |b| b.min(t)));
                }
                PowerState::Sleep => {
                    // Wake triggers (core reactivation, NIC backlog) arrive
                    // only via stepped events; a sleeper whose core is
                    // already active is transient — resolve it now.
                    if core.router_core_active(n) {
                        return Some(now);
                    }
                }
            }
        }
        next
    }

    fn audit_state(&self, core: &NetworkCore, report: &mut dyn FnMut(String)) {
        for n in 0..core.nodes() as NodeId {
            let p = core.power(n);
            // The always-on column never leaves Active (drain_permitted
            // refuses AON routers, so anything else is a protocol breach).
            if self.is_aon(core, n) && p != PowerState::Active {
                report(format!("AON router {n} is {p:?}; column must stay Active"));
            }
            match self.mode {
                FlovMode::Restricted => {
                    // No two physically adjacent routers may be non-Active
                    // at the same time: drains start only with all-Active
                    // neighbors, and a Sleep->Wakeup flip never changes the
                    // non-Active set. Check each edge once (n < m).
                    if p == PowerState::Active {
                        continue;
                    }
                    for d in Dir::ALL {
                        if let Some(m) = core.neighbor(n, d) {
                            if m > n && core.power(m) != PowerState::Active {
                                report(format!(
                                    "rFLOV adjacency: routers {n} ({p:?}) and {m} ({:?}) are \
                                     physical neighbors and both non-Active",
                                    core.power(m)
                                ));
                            }
                        }
                    }
                }
                FlovMode::Generalized => {
                    // A Draining router may not have a Draining or Wakeup
                    // logical neighbor: drain_permitted refuses to start
                    // next to one, and wakeup_permitted defers wakeups
                    // beside an in-progress drain.
                    if p != PowerState::Draining {
                        continue;
                    }
                    for d in Dir::ALL {
                        if let Some((m, _)) = core.logical_neighbor(n, d) {
                            if matches!(core.power(m), PowerState::Draining | PowerState::Wakeup)
                                && (core.power(m) != PowerState::Draining || m > n)
                            {
                                report(format!(
                                    "gFLOV handshake: Draining router {n} has {:?} logical \
                                     neighbor {m}",
                                    core.power(m)
                                ));
                            }
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flov_noc::baseline::AlwaysOnYx;
    use flov_noc::config::NocConfig;
    use flov_noc::network::Simulation;
    use flov_noc::traits::{PacketRequest, ScriptedWorkload, SilentWorkload};

    fn cfg() -> NocConfig {
        NocConfig::small_test() // 4x4, 1 vnet
    }

    fn gate_all_but(active: &[u16], k: u16) -> Vec<(u64, NodeId, bool)> {
        (0..k * k).filter(|n| !active.contains(n)).map(|n| (0u64, n, false)).collect()
    }

    #[test]
    fn idle_gated_cores_send_routers_to_sleep_gflov() {
        let c = cfg();
        let w = ScriptedWorkload::new(vec![]).with_core_events(gate_all_but(&[], 4));
        let mech = Flov::generalized(&c);
        let mut sim = Simulation::new(c, Box::new(mech), Box::new(w));
        sim.run(2_000);
        // Everything but the AON column (x = 3) should sleep.
        for n in 0..16u16 {
            let x = n % 4;
            if x == 3 {
                assert_eq!(sim.core.power(n), PowerState::Active, "AON router {n} gated");
            } else {
                assert_eq!(sim.core.power(n), PowerState::Sleep, "router {n} not gated");
            }
        }
    }

    #[test]
    fn rflov_never_gates_adjacent_routers() {
        let c = cfg();
        let w = ScriptedWorkload::new(vec![]).with_core_events(gate_all_but(&[], 4));
        let mech = Flov::restricted(&c);
        let mut sim = Simulation::new(c, Box::new(mech), Box::new(w));
        for _ in 0..2_000 {
            sim.step();
            for n in 0..16u16 {
                if sim.core.power(n) != PowerState::Sleep {
                    continue;
                }
                for d in Dir::ALL {
                    if let Some(m) = sim.core.neighbor(n, d) {
                        assert_ne!(
                            sim.core.power(m),
                            PowerState::Sleep,
                            "adjacent sleepers {n} and {m} under rFLOV"
                        );
                    }
                }
            }
        }
        // And rFLOV does gate *something*.
        let asleep = (0..16u16).filter(|&n| sim.core.power(n) == PowerState::Sleep).count();
        assert!(asleep >= 4, "rFLOV gated only {asleep} routers");
    }

    #[test]
    fn packet_flies_over_sleeping_row_segment() {
        let c = cfg();
        // Gate cores (1,1) and (2,1); keep senders/receivers in row 1 active.
        let gates = vec![(0u64, 5u16, false), (0u64, 6u16, false)];
        let w =
            ScriptedWorkload::new(vec![(1_500, PacketRequest { src: 4, dst: 7, vnet: 0, len: 4 })])
                .with_core_events(gates);
        let mech = Flov::generalized(&c);
        let mut sim = Simulation::new(c, Box::new(mech), Box::new(w));
        sim.run(1_400);
        assert_eq!(sim.core.power(5), PowerState::Sleep);
        assert_eq!(sim.core.power(6), PowerState::Sleep);
        let end = sim.run_until_done(20_000);
        assert!(end < 20_000, "packet not delivered over FLOV links");
        let s = &sim.core.stats;
        assert_eq!(s.packets, 1);
        assert_eq!(s.flov_hop_sum, 2, "expected exactly two FLOV latch hops");
        // Routers (1,1) and (2,1) stayed asleep: a through packet must not
        // wake them.
        assert_eq!(sim.core.power(5), PowerState::Sleep);
        assert_eq!(sim.core.power(6), PowerState::Sleep);
        // 2 powered routers (src, dst) + 2 FLOV hops; 3 links + ejection.
        assert_eq!(s.hop_sum, 2);
        assert_eq!(s.breakdown.flov, 2);
    }

    #[test]
    fn packet_to_sleeping_destination_wakes_it() {
        let c = cfg();
        let gates = vec![(0u64, 6u16, false)];
        let w =
            ScriptedWorkload::new(vec![(1_500, PacketRequest { src: 4, dst: 6, vnet: 0, len: 4 })])
                .with_core_events(gates);
        let mech = Flov::generalized(&c);
        let mut sim = Simulation::new(c, Box::new(mech), Box::new(w));
        sim.run(1_400);
        assert_eq!(sim.core.power(6), PowerState::Sleep);
        let end = sim.run_until_done(20_000);
        assert!(end < 20_000, "packet to sleeping router never delivered");
        assert_eq!(sim.core.stats.packets, 1);
        // The destination router woke up to take delivery, then (core still
        // gated, idle) eventually drains again.
        sim.run(2_000);
        assert_eq!(sim.core.power(6), PowerState::Sleep, "router did not re-gate after delivery");
    }

    #[test]
    fn core_reactivation_wakes_router() {
        let c = cfg();
        let gates = vec![(0u64, 5u16, false), (3_000u64, 5u16, true)];
        let w = ScriptedWorkload::new(vec![]).with_core_events(gates);
        let mech = Flov::generalized(&c);
        let mut sim = Simulation::new(c, Box::new(mech), Box::new(w));
        sim.run(2_000);
        assert_eq!(sim.core.power(5), PowerState::Sleep);
        sim.run(2_000);
        assert_eq!(sim.core.power(5), PowerState::Active);
    }

    #[test]
    fn gflov_gates_more_than_rflov() {
        let all_gated = gate_all_but(&[], 4);
        let count_asleep = |mode: FlovMode| {
            let mech = Flov::new(mode, FlovParams::for_config(&cfg()), 16);
            let w = ScriptedWorkload::new(vec![]).with_core_events(all_gated.clone());
            let mut sim = Simulation::new(cfg(), Box::new(mech), Box::new(w));
            sim.run(3_000);
            (0..16u16).filter(|&n| sim.core.power(n) == PowerState::Sleep).count()
        };
        let r = count_asleep(FlovMode::Restricted);
        let g = count_asleep(FlovMode::Generalized);
        assert!(g > r, "gFLOV ({g}) should gate more than rFLOV ({r})");
        assert_eq!(g, 12); // all but the AON column
    }

    #[test]
    fn active_cores_keep_routers_on() {
        let c = cfg();
        let w = SilentWorkload;
        let mech = Flov::generalized(&c);
        let mut sim = Simulation::new(c, Box::new(mech), Box::new(w));
        sim.run(2_000);
        for n in 0..16u16 {
            assert_eq!(sim.core.power(n), PowerState::Active);
        }
    }

    #[test]
    fn baseline_name_vs_flov_names() {
        assert_eq!(Flov::restricted(&cfg()).name(), "rFLOV");
        assert_eq!(Flov::generalized(&cfg()).name(), "gFLOV");
        assert_eq!(AlwaysOnYx.name(), "Baseline");
    }

    #[test]
    fn traffic_between_active_cores_delivered_under_heavy_gating() {
        let c = cfg();
        // Only nodes 0 and 15 active; everything else gated.
        let gates = gate_all_but(&[0, 15], 4);
        let mut events = Vec::new();
        for i in 0..50u64 {
            events.push((2_000 + i * 17, PacketRequest { src: 0, dst: 15, vnet: 0, len: 4 }));
            events.push((2_000 + i * 19, PacketRequest { src: 15, dst: 0, vnet: 0, len: 4 }));
        }
        let w = ScriptedWorkload::new(events).with_core_events(gates);
        let mech = Flov::generalized(&c);
        let mut sim = Simulation::new(c, Box::new(mech), Box::new(w));
        let end = sim.run_until_done(60_000);
        assert!(end < 60_000, "packets lost under heavy gating");
        assert_eq!(sim.core.activity.packets_delivered, 100);
    }
}
